#!/usr/bin/env python3
"""Prometheus text-exposition validator for the uniq scrape endpoint
(stdlib only).

Validates a document in exposition format 0.0.4 against the subset the
repo emits (see docs/OBSERVABILITY.md, "Scrape endpoint"):

  - line grammar: ``# TYPE`` comments, then ``name[{labels}] value``
  - metric names match ``[a-zA-Z_:][a-zA-Z0-9_:]*``
  - every sample belongs to a declared ``# TYPE`` family (the family name
    for ``*_bucket``/``*_sum``/``*_count`` histogram series is the base)
  - no family is declared twice; no identical series appears twice
  - values parse as floats (``+Inf``/``-Inf``/``NaN`` allowed)
  - histogram families are internally consistent: ``le`` buckets are
    cumulative (non-decreasing in ascending edge order), a ``+Inf`` bucket
    exists and equals ``_count``, and ``_sum``/``_count`` are present
  - counters (``_total``) and histogram counts are non-negative

Usage:
  tools/check_exposition.py FILE       # validate a saved scrape
  ... | tools/check_exposition.py -    # validate stdin

Exit status: 0 when the document is valid, 1 otherwise (problems are
listed on stderr). An empty document is valid (an empty registry scrapes
to an empty body).
"""

from __future__ import annotations

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# name{label="value",...} value  — label values may contain escaped quotes.
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{(?:[a-zA-Z_][a-zA-Z0-9_]*=\"(?:\\.|[^\"\\])*\",?)*\})?"
    r" (?P<value>\S+)$"
)
TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r" (?P<kind>counter|gauge|histogram|summary|untyped)$"
)


def parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)  # raises ValueError on garbage


def family_of(name: str) -> str:
    """Family a sample belongs to: histogram series fold to their base."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_labels(text: str | None) -> dict[str, str]:
    if not text:
        return {}
    labels: dict[str, str] = {}
    for match in re.finditer(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:\\.|[^"\\])*)"', text):
        labels[match.group(1)] = match.group(2)
    return labels


def check(text: str) -> list[str]:
    """Validate an exposition document; returns a list of problems."""
    problems: list[str] = []
    families: dict[str, str] = {}  # name -> kind
    seen_series: set[str] = set()
    # histogram family -> {"buckets": [(le, count)], "sum": v, "count": v}
    histograms: dict[str, dict] = {}

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE "):
                m = TYPE_RE.match(line)
                if not m:
                    problems.append(f"line {lineno}: malformed TYPE line: {line!r}")
                    continue
                name = m.group("name")
                if name in families:
                    problems.append(f"line {lineno}: duplicate TYPE for {name}")
                families[name] = m.group("kind")
            # Other comments (# HELP, ...) are legal and ignored.
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        if not NAME_RE.match(name):
            problems.append(f"line {lineno}: illegal metric name {name!r}")
            continue
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            problems.append(
                f"line {lineno}: bad sample value {m.group('value')!r}"
            )
            continue

        series = f"{name}{m.group('labels') or ''}"
        if series in seen_series:
            problems.append(f"line {lineno}: duplicate series {series!r}")
        seen_series.add(series)

        family = family_of(name)
        kind = families.get(family) or families.get(name)
        if kind is None:
            problems.append(
                f"line {lineno}: sample {name!r} has no # TYPE declaration"
            )
            continue

        if kind == "counter":
            if not (value >= 0):
                problems.append(
                    f"line {lineno}: counter {name} is negative ({value})"
                )
        if kind == "histogram" and family != name:
            h = histograms.setdefault(
                family, {"buckets": [], "sum": None, "count": None}
            )
            if name.endswith("_bucket"):
                labels = parse_labels(m.group("labels"))
                if "le" not in labels:
                    problems.append(
                        f"line {lineno}: histogram bucket without le label"
                    )
                    continue
                h["buckets"].append((parse_value(labels["le"]), value))
            elif name.endswith("_sum"):
                h["sum"] = value
            elif name.endswith("_count"):
                h["count"] = value

    for family, h in sorted(histograms.items()):
        buckets = sorted(h["buckets"], key=lambda b: b[0])
        if not buckets or buckets[-1][0] != math.inf:
            problems.append(f"histogram {family}: missing +Inf bucket")
            continue
        prev = 0.0
        for le, cum in buckets:
            if cum < prev:
                problems.append(
                    f"histogram {family}: bucket le={le} count {cum} "
                    f"below previous bucket ({prev}) — not cumulative"
                )
            prev = cum
        if h["count"] is None:
            problems.append(f"histogram {family}: missing _count")
        elif buckets[-1][1] != h["count"]:
            problems.append(
                f"histogram {family}: +Inf bucket {buckets[-1][1]} != "
                f"_count {h['count']}"
            )
        if h["sum"] is None:
            problems.append(f"histogram {family}: missing _sum")

    return problems


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    if sys.argv[1] == "-":
        text = sys.stdin.read()
    else:
        with open(sys.argv[1], encoding="utf-8") as f:
            text = f.read()
    problems = check(text)
    for p in problems:
        print(f"check_exposition: {p}", file=sys.stderr)
    if problems:
        print(f"check_exposition: FAIL ({len(problems)} problem(s))",
              file=sys.stderr)
        return 1
    samples = sum(
        1
        for line in text.splitlines()
        if line.strip() and not line.startswith("#")
    )
    print(f"check_exposition: OK ({samples} sample(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
