#!/usr/bin/env python3
"""End-to-end smoke test for the continuous-telemetry stack (stdlib only).

Drives the real `uniq serve-load` binary twice:

Run 1 — live scrape:
  - starts serve-load with the background sampler and an ephemeral scrape
    port (--scrape-port 0), discovers the port from the flushed
    "scrape endpoint: http://127.0.0.1:PORT/metrics" stdout line,
  - polls the endpoint while the load runs and validates every response
    with check_exposition (name charset, TYPE coverage, cumulative
    buckets, +Inf == _count),
  - runs `uniq monitor` once against the live endpoint,
  - asserts exit 0, validates the --exposition-out file, and checks the
    load-report JSON for the telemetry/estimator_check/slo sections.

Run 2 — SLO gate:
  - same load with a rules file whose quantile threshold is impossibly
    low (any completed lookup breaches it) plus --fail-on-slo,
  - asserts the documented exit code 5 and a breach in the report.

Usage:  tools/telemetry_smoke.py /path/to/uniq [workdir]
Exit status: 0 on success, 1 on any failure.
"""

from __future__ import annotations

import json
import pathlib
import re
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import check_exposition  # noqa: E402  (sibling module, stdlib only)

ENDPOINT_RE = re.compile(
    r"scrape endpoint: http://127\.0\.0\.1:(\d+)/metrics"
)
LOAD_ARGS = [
    "--users", "500", "--duration-s", "2", "--threads", "2",
    "--shards", "2", "--warm", "64", "--cache-capacity", "256",
    "--sample-interval-ms", "100",
]

# Any lookup that completes at all has a latency above this threshold, so
# the rule must breach — what pins the --fail-on-slo exit-code contract.
BREACH_RULES = {
    "rules": [
        {
            "name": "impossible-lookup-p50",
            "metric": "serve.load.lookup_ms",
            "objective": "quantile",
            "quantile": 0.5,
            "threshold": 1e-9,
            "window_s": 1,
        }
    ]
}


def fail(message: str) -> None:
    print(f"telemetry_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


class LineCollector:
    """Drains a pipe on a thread so the child never blocks on stdout."""

    def __init__(self, pipe):
        self.lines: list[str] = []
        self._thread = threading.Thread(target=self._drain, args=(pipe,))
        self._thread.daemon = True
        self._thread.start()

    def _drain(self, pipe) -> None:
        for line in pipe:
            self.lines.append(line.rstrip("\n"))

    def join(self) -> None:
        self._thread.join(timeout=10)


def wait_for_port(collector: LineCollector, deadline_s: float) -> int:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        for line in collector.lines:
            m = ENDPOINT_RE.search(line)
            if m:
                return int(m.group(1))
        time.sleep(0.05)
    fail("scrape endpoint line never appeared on stdout")
    raise AssertionError  # unreachable


def scrape(port: int) -> str:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/metrics", timeout=5
    ) as response:
        return response.read().decode("utf-8")


def validate(text: str, context: str) -> None:
    problems = check_exposition.check(text)
    if problems:
        for p in problems:
            print(f"telemetry_smoke: {context}: {p}", file=sys.stderr)
        fail(f"{context}: invalid exposition ({len(problems)} problem(s))")


def run_live_scrape(uniq: str, workdir: pathlib.Path) -> None:
    report_path = workdir / "report.json"
    exposition_path = workdir / "final.prom"
    proc = subprocess.Popen(
        [uniq, "serve-load", *LOAD_ARGS,
         "--scrape-port", "0",
         "--load-report", str(report_path),
         "--exposition-out", str(exposition_path)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    collector = LineCollector(proc.stdout)
    try:
        port = wait_for_port(collector, deadline_s=30)
        print(f"telemetry_smoke: endpoint on port {port}")

        # Start the monitor while the endpoint is live; it polls twice and
        # exits well before the 2 s load finishes. Collected below.
        monitor = subprocess.Popen(
            [uniq, "monitor", "--port", str(port),
             "--interval-ms", "100", "--iterations", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)

        scrapes = 0
        while proc.poll() is None:
            try:
                body = scrape(port)
            except (urllib.error.URLError, OSError):
                break  # run finished between poll() and the request
            validate(body, f"scrape #{scrapes}")
            scrapes += 1
            time.sleep(0.2)
        if scrapes == 0:
            fail("never managed a scrape while the load ran")
        print(f"telemetry_smoke: {scrapes} live scrape(s) validated")

        monitor_out, _ = monitor.communicate(timeout=30)
        # Exit 1 means the very first poll failed; a mid-run endpoint
        # shutdown exits 0 by contract.
        if monitor.returncode != 0:
            fail(f"uniq monitor exited {monitor.returncode}:\n{monitor_out}")
        print("telemetry_smoke: uniq monitor ran against the live endpoint")

        code = proc.wait(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
        collector.join()
    if code != 0:
        fail(f"serve-load exited {code}:\n" + "\n".join(collector.lines))

    validate(exposition_path.read_text(encoding="utf-8"), "exposition-out")

    report = json.loads(report_path.read_text(encoding="utf-8"))
    for key in ("telemetry", "estimator_check", "slo"):
        if key not in report:
            fail(f"load report is missing the {key!r} section")
    if report["telemetry"]["windows"] < 2:
        fail("sampler produced fewer than 2 windows over a 2 s run")
    est = report["estimator_check"]
    for q in ("p50", "p99"):
        reservoir = est[f"reservoir_{q}_ms"]
        histogram = est[f"histogram_{q}_ms"]
        if reservoir > 0 and not (0.4 <= histogram / reservoir <= 2.5):
            fail(f"estimator disagreement at {q}: reservoir {reservoir}, "
                 f"histogram {histogram}")
    print("telemetry_smoke: report sections and estimator agreement OK")


def run_slo_gate(uniq: str, workdir: pathlib.Path) -> None:
    rules_path = workdir / "breach_rules.json"
    rules_path.write_text(json.dumps(BREACH_RULES), encoding="utf-8")
    report_path = workdir / "breach_report.json"
    proc = subprocess.run(
        [uniq, "serve-load", *LOAD_ARGS,
         "--slo-rules", str(rules_path), "--fail-on-slo",
         "--load-report", str(report_path)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        timeout=300)
    if proc.returncode != 5:
        fail(f"--fail-on-slo run exited {proc.returncode}, expected 5:\n"
             f"{proc.stdout}")
    report = json.loads(report_path.read_text(encoding="utf-8"))
    if not report["slo"]["breached"]:
        fail("report does not record the guaranteed breach")
    if not report["slo"]["breaches"]:
        fail("report has no breach events")
    print("telemetry_smoke: --fail-on-slo exit-code contract holds")


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    uniq = sys.argv[1]
    if len(sys.argv) > 2:
        workdir = pathlib.Path(sys.argv[2])
        workdir.mkdir(parents=True, exist_ok=True)
        run_live_scrape(uniq, workdir)
        run_slo_gate(uniq, workdir)
    else:
        with tempfile.TemporaryDirectory(prefix="telemetry_smoke_") as tmp:
            workdir = pathlib.Path(tmp)
            run_live_scrape(uniq, workdir)
            run_slo_gate(uniq, workdir)
    print("telemetry_smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
