#!/usr/bin/env python3
"""Markdown link checker for the repo docs (stdlib only).

Scans the given markdown files (or every ``*.md`` under a given directory)
for inline links/images and reference definitions, and fails when a
relative link points at a file that does not exist or an in-document
anchor that matches no heading.

Checked:
  - relative file links: ``[text](docs/PERF.md)``, ``![img](figs/a.png)``
  - file + anchor links: ``[text](DESIGN.md#layout)``
  - in-document anchors: ``[text](#metrics)``
Skipped (reported only with --verbose):
  - absolute URLs (http/https/mailto) — no network access in CI
  - bare autolinks ``<https://...>``
  - targets that resolve outside the working tree (e.g. the CI badge's
    ``../../actions/...`` path, which is a GitHub web route, not a file)

Anchors are matched against GitHub-style heading slugs (lowercase, spaces
to dashes, punctuation dropped) plus explicit ``<a name="...">`` tags.

Usage:
  tools/check_markdown_links.py README.md DESIGN.md docs
  tools/check_markdown_links.py --verbose <files-or-dirs...>

Exit status: 0 when every relative link resolves, 1 otherwise.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# Inline links/images: [text](target) / ![alt](target "title").
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)\s>]+)>?(?:\s+\"[^\"]*\")?\s*\)")
# Reference definitions: [label]: target
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+<?(\S+?)>?(?:\s+\"[^\"]*\")?\s*$")
HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*#*\s*$")
ANCHOR_TAG = re.compile(r"<a\s+(?:name|id)=\"([^\"]+)\"")
FENCE = re.compile(r"^\s*(```|~~~)")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def slugify(heading: str) -> str:
    """GitHub-style slug: strip formatting, lowercase, spaces to dashes."""
    text = re.sub(r"[`*_]|\[|\]|\([^)]*\)", "", heading)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: pathlib.Path) -> set[str]:
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if match:
            slug = slugify(match.group(1))
            # Duplicate headings get -1, -2, ... suffixes on GitHub.
            count = seen.get(slug, 0)
            seen[slug] = count + 1
            anchors.add(slug if count == 0 else f"{slug}-{count}")
        for tag in ANCHOR_TAG.finditer(line):
            anchors.add(tag.group(1))
    return anchors


def links_of(path: pathlib.Path) -> list[tuple[int, str]]:
    links: list[tuple[int, str]] = []
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in INLINE_LINK.finditer(line):
            links.append((lineno, match.group(1)))
        ref = REF_DEF.match(line)
        if ref:
            links.append((lineno, ref.group(1)))
    return links


def collect_files(args: list[str]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for arg in args:
        path = pathlib.Path(arg)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.suffix == ".md":
            files.append(path)
        else:
            print(f"warning: skipping non-markdown argument {arg}",
                  file=sys.stderr)
    return files


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+",
                        help="markdown files or directories to scan")
    parser.add_argument("--verbose", action="store_true",
                        help="also list skipped external links")
    opts = parser.parse_args()

    files = collect_files(opts.paths)
    if not files:
        print("error: no markdown files found", file=sys.stderr)
        return 1

    root = pathlib.Path.cwd().resolve()
    anchor_cache: dict[pathlib.Path, set[str]] = {}
    errors = 0
    checked = 0
    for source in files:
        for lineno, target in links_of(source):
            if target.startswith(EXTERNAL):
                if opts.verbose:
                    print(f"  skip {source}:{lineno}: external {target}")
                continue
            raw_path, _, fragment = target.partition("#")
            dest = (source if not raw_path
                    else (source.parent / raw_path).resolve())
            if not dest.resolve().is_relative_to(root):
                if opts.verbose:
                    print(f"  skip {source}:{lineno}: outside tree {target}")
                continue
            checked += 1
            if not dest.exists():
                print(f"{source}:{lineno}: broken link: {target} "
                      f"(no such file {raw_path})")
                errors += 1
                continue
            if fragment and dest.suffix == ".md":
                if dest not in anchor_cache:
                    anchor_cache[dest] = anchors_of(dest)
                if fragment not in anchor_cache[dest]:
                    print(f"{source}:{lineno}: broken anchor: {target} "
                          f"(no heading slug '{fragment}' in {dest.name})")
                    errors += 1

    label = "error" if errors == 1 else "errors"
    print(f"checked {checked} relative link(s) across {len(files)} file(s): "
          f"{errors} {label}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
