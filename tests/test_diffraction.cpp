#include "geometry/diffraction.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "geometry/polar.h"

namespace uniq::geo {
namespace {

class DiffractionTest : public ::testing::Test {
 protected:
  HeadBoundary head_{0.075, 0.10, 0.09, 512};
};

TEST_F(DiffractionTest, VisibleEarUsesLineOfSight) {
  // Source directly left of the head: left ear fully visible.
  const Vec2 source{-0.4, 0.0};
  const auto path = nearFieldPath(head_, source, Ear::kLeft);
  EXPECT_FALSE(path.diffracted);
  EXPECT_NEAR(path.length, distance(source, head_.leftEar()), 1e-9);
  EXPECT_NEAR(path.arcLength, 0.0, 1e-12);
  // Arrival direction points from source toward the ear.
  EXPECT_GT(path.arrivalDirection.x, 0.9);
}

TEST_F(DiffractionTest, ShadowedEarDiffracts) {
  const Vec2 source{-0.4, 0.0};
  const auto path = nearFieldPath(head_, source, Ear::kRight);
  EXPECT_TRUE(path.diffracted);
  EXPECT_GT(path.arcLength, 0.05);  // creeps over a good part of the head
  EXPECT_GT(path.length, distance(source, head_.rightEar()));
}

TEST_F(DiffractionTest, DiffractedPathTakesShorterWayAround) {
  // Source front-left: the right ear's creep should go around the front
  // (through the nose side), not the longer back way.
  const Vec2 source = pointFromPolarDeg(45.0, 0.4);
  const auto path = nearFieldPath(head_, source, Ear::kRight);
  ASSERT_TRUE(path.diffracted);
  EXPECT_GT(path.tangentPoint.y, 0.0) << "tangent point should be frontal";
}

class PathPropertyTest : public ::testing::TestWithParam<double> {
 protected:
  HeadBoundary head_{0.075, 0.10, 0.09, 512};
};

TEST_P(PathPropertyTest, PathAtLeastEuclideanAndAtMostAroundPerimeter) {
  const double theta = GetParam();
  for (double r : {0.2, 0.35, 0.6}) {
    const Vec2 source = pointFromPolarDeg(theta, r);
    for (Ear ear : {Ear::kLeft, Ear::kRight}) {
      const auto path = nearFieldPath(head_, source, ear);
      const double euclid = distance(source, earPosition(head_, ear));
      EXPECT_GE(path.length, euclid - 1e-9);
      EXPECT_LE(path.length, euclid + head_.perimeter() / 2 + 1e-9);
      EXPECT_NEAR(path.arrivalDirection.norm(), 1.0, 1e-6);
    }
  }
}

TEST_P(PathPropertyTest, PathContinuousInSourcePosition) {
  const double theta = GetParam();
  const double r = 0.35;
  for (Ear ear : {Ear::kLeft, Ear::kRight}) {
    const auto a = nearFieldPath(head_, pointFromPolarDeg(theta, r), ear);
    const auto b =
        nearFieldPath(head_, pointFromPolarDeg(theta + 0.5, r), ear);
    EXPECT_LT(std::fabs(a.length - b.length), 0.01)
        << "discontinuity at theta=" << theta << " ear "
        << (ear == Ear::kLeft ? "L" : "R");
  }
}

INSTANTIATE_TEST_SUITE_P(Angles, PathPropertyTest,
                         ::testing::Values(0.0, 20.0, 45.0, 60.0, 85.0, 90.0,
                                           95.0, 120.0, 150.0, 180.0));

TEST_F(DiffractionTest, SymmetricHeadGivesSymmetricPaths) {
  // A head with b == c is front/back symmetric: source at theta and
  // 180-theta give mirrored paths.
  const HeadBoundary sym(0.075, 0.095, 0.095, 512);
  for (double theta : {20.0, 50.0, 80.0}) {
    const auto front =
        nearFieldPath(sym, pointFromPolarDeg(theta, 0.35), Ear::kRight);
    const auto back =
        nearFieldPath(sym, pointFromPolarDeg(180.0 - theta, 0.35), Ear::kRight);
    EXPECT_NEAR(front.length, back.length, 1e-3) << "theta " << theta;
  }
}

TEST_F(DiffractionTest, LeftRightEarSymmetryAtFront) {
  // Source straight ahead: both ears equidistant.
  const Vec2 source{0.0, 0.4};
  const auto left = nearFieldPath(head_, source, Ear::kLeft);
  const auto right = nearFieldPath(head_, source, Ear::kRight);
  EXPECT_NEAR(left.length, right.length, 1e-6);
}

TEST_F(DiffractionTest, FarFieldLitEarDelayIsProjection) {
  // Wave from the left: left ear lit.
  const Vec2 d{1.0, 0.0};  // propagating +x (source on the left)
  const auto path = farFieldPath(head_, d, Ear::kLeft);
  EXPECT_FALSE(path.diffracted);
  EXPECT_NEAR(path.length, dot(d, head_.leftEar()), 1e-9);
  EXPECT_LT(path.length, 0.0);  // reaches the near ear before the center
}

TEST_F(DiffractionTest, FarFieldShadowedEarCreeps) {
  const Vec2 d{1.0, 0.0};
  const auto path = farFieldPath(head_, d, Ear::kRight);
  EXPECT_TRUE(path.diffracted);
  EXPECT_GT(path.arcLength, 0.03);
  // Total exceeds the lit-side projection of the far ear.
  EXPECT_GT(path.length, dot(d, head_.rightEar()));
}

TEST_F(DiffractionTest, FarFieldInterauralDelayPeaksNearNinety) {
  auto itd = [&](double theta) {
    const Vec2 d = -directionFromAzimuthDeg(theta);
    const auto l = farFieldPath(head_, d, Ear::kLeft);
    const auto r = farFieldPath(head_, d, Ear::kRight);
    return (r.length - l.length) / kSpeedOfSound;
  };
  EXPECT_NEAR(itd(0.0), 0.0, 2e-5);
  EXPECT_NEAR(itd(180.0), 0.0, 2e-5);
  EXPECT_GT(itd(90.0), itd(30.0));
  EXPECT_GT(itd(90.0), itd(150.0));
  EXPECT_GT(itd(90.0), 0.5e-3);  // a head this size: ITD ~0.6-0.8 ms
  EXPECT_LT(itd(90.0), 1.0e-3);
}

TEST_F(DiffractionTest, FarFieldContinuousAcrossLitShadowTransition) {
  // Sweep the direction; the ear delay must vary continuously through the
  // lit/shadow boundary.
  double prev = 0.0;
  bool first = true;
  for (double theta = 0.0; theta <= 180.0; theta += 1.0) {
    const Vec2 d = -directionFromAzimuthDeg(theta);
    const auto r = farFieldPath(head_, d, Ear::kRight);
    if (!first) {
      EXPECT_LT(std::fabs(r.length - prev), 0.004) << theta;
    }
    prev = r.length;
    first = false;
  }
}

TEST_F(DiffractionTest, NearFieldApproachesFarFieldAtLargeRadius) {
  // Relative interaural path difference at r = 5 m should be close to the
  // far-field value.
  const double theta = 60.0;
  const Vec2 d = -directionFromAzimuthDeg(theta);
  const auto farL = farFieldPath(head_, d, Ear::kLeft);
  const auto farR = farFieldPath(head_, d, Ear::kRight);
  const Vec2 source = pointFromPolarDeg(theta, 5.0);
  const auto nearL = nearFieldPath(head_, source, Ear::kLeft);
  const auto nearR = nearFieldPath(head_, source, Ear::kRight);
  EXPECT_NEAR(nearR.length - nearL.length, farR.length - farL.length, 1e-3);
}

TEST_F(DiffractionTest, RejectsInteriorSource) {
  const Vec2 interior{0.0, 0.0};
  EXPECT_THROW(nearFieldPath(head_, interior, Ear::kLeft),
               uniq::InvalidArgument);
}

}  // namespace
}  // namespace uniq::geo
