// Streaming-calibration tests: the BoundedQueue dataflow edge (FIFO,
// backpressure, close semantics), the StreamingSession's equality contract
// against the batch pipeline (bitwise-identical tables when every stop
// arrives, in any order), cancellation, coverage monotonicity, the
// convergence-based early stop, and the stream.* metrics surface.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "core/sensor_fusion.h"
#include "head/subject.h"
#include "obs/metrics.h"
#include "sim/measurement_session.h"
#include "stream/bounded_queue.h"
#include "stream/streaming_session.h"

namespace uniq {
namespace {

sim::CalibrationCapture makeCapture(std::uint64_t seed,
                                    std::size_t stops = 10) {
  const auto subject = head::makePopulation(1, seed)[0];
  const sim::MeasurementSession session;
  auto gesture = sim::defaultGesture();
  gesture.stops = stops;
  return session.run(subject, gesture);
}

/// Bitwise table equality: exact double comparison on every HRIR sample and
/// tap position of both tiers, plus the head estimate. This is the
/// streaming equality contract from docs/STREAMING.md — not "close", equal.
void expectTablesBitwiseEqual(const core::PersonalHrtf& a,
                              const core::PersonalHrtf& b) {
  EXPECT_EQ(a.headParams.a, b.headParams.a);
  EXPECT_EQ(a.headParams.b, b.headParams.b);
  EXPECT_EQ(a.headParams.c, b.headParams.c);

  const auto& an = a.table.nearTable();
  const auto& bn = b.table.nearTable();
  ASSERT_EQ(an.byDegree.size(), bn.byDegree.size());
  for (std::size_t i = 0; i < an.byDegree.size(); ++i) {
    EXPECT_EQ(an.byDegree[i].left, bn.byDegree[i].left) << "near deg " << i;
    EXPECT_EQ(an.byDegree[i].right, bn.byDegree[i].right) << "near deg " << i;
  }

  const auto& af = a.table.farTable();
  const auto& bf = b.table.farTable();
  ASSERT_EQ(af.byDegree.size(), bf.byDegree.size());
  for (std::size_t i = 0; i < af.byDegree.size(); ++i) {
    EXPECT_EQ(af.byDegree[i].left, bf.byDegree[i].left) << "far deg " << i;
    EXPECT_EQ(af.byDegree[i].right, bf.byDegree[i].right) << "far deg " << i;
  }
  EXPECT_EQ(af.tapLeftSamples, bf.tapLeftSamples);
  EXPECT_EQ(af.tapRightSamples, bf.tapRightSamples);
}

/// Block until the session has extracted `n` stops (the graph is
/// asynchronous; tests that assert on per-stop state need to let the nodes
/// drain first).
void waitForExtracted(const stream::StreamingSession& session,
                      std::size_t n) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (session.coverage().stopsExtracted < n) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "timed out waiting for " << n << " extracted stops";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// --- BoundedQueue -------------------------------------------------------

TEST(BoundedQueue, FifoOrderAndCloseDrainSemantics) {
  stream::BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  q.close();
  EXPECT_FALSE(q.push(4));  // closed: refused

  int v = 0;
  EXPECT_TRUE(q.pop(v));  // pending items still drain after close
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 3);
  EXPECT_FALSE(q.pop(v));  // drained + closed: consumer shutdown signal
}

TEST(BoundedQueue, PushBlocksAtCapacityUntilPopMakesRoom) {
  stream::BoundedQueue<int> q(2);
  EXPECT_TRUE(q.push(10));
  EXPECT_TRUE(q.push(11));
  EXPECT_EQ(q.size(), 2u);

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(12));  // backpressure: blocks until the pop below
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // still blocked at capacity

  int v = 0;
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 10);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 11);
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 12);
}

TEST(BoundedQueue, CloseWakesBlockedProducer) {
  stream::BoundedQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    EXPECT_FALSE(q.push(2));  // blocked at capacity, then woken by close
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
  EXPECT_TRUE(returned.load());
}

// --- SensorFusion::solveIncremental -------------------------------------

TEST(SolveIncremental, WarmSeedSolvesAndEmptyIsUnusable) {
  const auto capture = makeCapture(11);
  const core::CalibrationPipeline pipeline;
  const auto channels = pipeline.extractChannels(capture);
  const auto measurements =
      core::CalibrationPipeline::toFusionMeasurements(capture, channels);
  ASSERT_GE(measurements.size(), 6u);

  const core::SensorFusion fusion;
  EXPECT_FALSE(fusion.solveIncremental({}).usable);

  const auto cold = fusion.solveIncremental(measurements);
  EXPECT_TRUE(cold.usable);
  EXPECT_EQ(cold.restartsUsed, 1u);

  // Seeding with the cold answer must stay at (or improve on) it, and the
  // same instance's geometry cache makes the re-solve a warm pass.
  const auto warm = fusion.solveIncremental(measurements, cold.headParams);
  EXPECT_TRUE(warm.usable);
  EXPECT_LE(warm.finalObjectiveDeg2, cold.finalObjectiveDeg2 + 1e-9);
}

// --- StreamingSession ---------------------------------------------------

TEST(StreamingSession, FullReplayMatchesBatchBitwise) {
  const auto capture = makeCapture(21, 10);
  stream::StreamingSessionOptions opts;
  stream::StreamingSession session(
      stream::CaptureHeader::fromCapture(capture), opts);
  for (std::size_t i = 0; i < capture.stops.size(); ++i)
    ASSERT_TRUE(session.push(capture.stops[i], i));
  const auto streamed = session.finalize();

  const core::CalibrationPipeline pipeline;
  const auto batch = pipeline.run(capture);

  EXPECT_EQ(streamed.personal.status, batch.status);
  EXPECT_EQ(streamed.stopsIngested, capture.stops.size());
  expectTablesBitwiseEqual(streamed.personal, batch);
}

TEST(StreamingSession, OutOfOrderArrivalMatchesBatchBitwise) {
  const auto capture = makeCapture(22, 10);
  // A fixed shuffle: late IMU packets and retransmits deliver stops out of
  // order; seq re-sorting at finalize must erase any trace of that.
  const std::size_t order[] = {7, 2, 9, 0, 5, 3, 8, 1, 6, 4};
  stream::StreamingSessionOptions opts;
  stream::StreamingSession session(
      stream::CaptureHeader::fromCapture(capture), opts);
  for (const std::size_t i : order)
    ASSERT_TRUE(session.push(capture.stops[i], i));
  const auto streamed = session.finalize();

  const core::CalibrationPipeline pipeline;
  const auto batch = pipeline.run(capture);
  EXPECT_EQ(streamed.personal.status, batch.status);
  expectTablesBitwiseEqual(streamed.personal, batch);
}

TEST(StreamingSession, CancelMidStreamFallsBackAborted) {
  const auto capture = makeCapture(23, 10);
  stream::StreamingSessionOptions opts;
  stream::StreamingSession session(
      stream::CaptureHeader::fromCapture(capture), opts);
  for (std::size_t i = 0; i < 4; ++i)
    ASSERT_TRUE(session.push(capture.stops[i], i));
  session.cancel();
  EXPECT_FALSE(session.push(capture.stops[4], 4));  // refused after cancel

  obs::RunReport report;
  const auto out = session.finalize(&report);
  EXPECT_TRUE(out.personal.aborted);
  EXPECT_EQ(out.personal.status, core::PipelineStatus::kFailed);
  // Same contract as a batch abort: the fallback table is still usable.
  EXPECT_FALSE(out.personal.table.farTable().byDegree.empty());
  EXPECT_FALSE(out.personal.diagnostics.empty());
}

TEST(StreamingSession, EmptySessionFinalizesToFallback) {
  const auto capture = makeCapture(24, 6);
  stream::StreamingSession session(
      stream::CaptureHeader::fromCapture(capture));
  const auto out = session.finalize();
  EXPECT_EQ(out.personal.status, core::PipelineStatus::kFailed);
  EXPECT_FALSE(out.personal.aborted);  // not cancelled, just empty
  EXPECT_FALSE(out.personal.table.farTable().byDegree.empty());
}

TEST(StreamingSession, CoverageIsMonotoneAndHintsNameThinArcs) {
  const auto capture = makeCapture(25, 12);
  stream::StreamingSessionOptions opts;
  stream::StreamingSession session(
      stream::CaptureHeader::fromCapture(capture), opts);

  double lastCovered = 0.0;
  for (std::size_t i = 0; i < capture.stops.size(); ++i) {
    ASSERT_TRUE(session.push(capture.stops[i], i));
    waitForExtracted(session, i + 1);
    const auto snap = session.coverage();
    // Latched bins: the covered fraction never decreases over a session.
    EXPECT_GE(snap.coveredFraction, lastCovered) << "after stop " << i;
    lastCovered = snap.coveredFraction;
    EXPECT_FALSE(snap.hint.empty());
    EXPECT_EQ(snap.stopsIngested, i + 1);
  }
  EXPECT_GT(lastCovered, 0.0);

  const auto out = session.finalize();
  EXPECT_NE(out.personal.status, core::PipelineStatus::kFailed);
}

TEST(StreamingSession, ConvergenceEarlyStopIsDegradedAtWorst) {
  // A rich sweep with relaxed convergence knobs: the running estimate must
  // stabilize before the capture runs out, and finalizing at that point —
  // with stops left unpushed — still personalizes (degraded at worst,
  // never the failed fallback).
  const auto capture = makeCapture(26, 24);
  stream::StreamingSessionOptions opts;
  opts.minStopsBeforeConverge = 6;
  opts.minCoverageForConverge = 0.4;
  opts.convergeStreak = 2;
  opts.convergeDeltaM = 2e-3;
  stream::StreamingSession session(
      stream::CaptureHeader::fromCapture(capture), opts);

  std::size_t pushed = 0;
  for (std::size_t i = 0; i < capture.stops.size(); ++i) {
    ASSERT_TRUE(session.push(capture.stops[i], i));
    ++pushed;
    waitForExtracted(session, i + 1);
    if (session.converged()) break;
  }
  EXPECT_TRUE(session.converged())
      << "rich capture should converge before the sweep ends";
  EXPECT_LT(pushed, capture.stops.size());

  const auto out = session.finalize();
  EXPECT_TRUE(out.convergedEarly);
  EXPECT_GT(out.timeToConvergeMs, 0.0);
  EXPECT_NE(out.personal.status, core::PipelineStatus::kFailed);
  EXPECT_GE(out.incrementalSolves, opts.convergeStreak);
}

TEST(StreamingSession, ExportsStreamMetrics) {
  const auto capture = makeCapture(27, 8);
  stream::StreamingSession session(
      stream::CaptureHeader::fromCapture(capture));
  for (std::size_t i = 0; i < capture.stops.size(); ++i)
    ASSERT_TRUE(session.push(capture.stops[i], i));
  obs::RunReport report;
  (void)session.finalize(&report);

  const auto snapshot = obs::registry().snapshot();
  EXPECT_GE(snapshot.counter("stream.stops.ingested"),
            capture.stops.size());
  EXPECT_GE(snapshot.counter("stream.solve.incremental_restarts"), 1u);
  EXPECT_GE(snapshot.counter("stream.sessions.finalized"), 1u);
  // The queue gauges exist (depth returns to 0 after the drain; the
  // high-water mark proves items actually flowed through the edges).
  EXPECT_GE(snapshot.gauge("stream.queue_depth.ingest.max"), 1.0);
  EXPECT_GE(snapshot.gauge("stream.queue_depth.fused.max"), 1.0);
  EXPECT_EQ(snapshot.gauge("stream.queue_depth.ingest"), 0.0);

  // The streaming finalize fills the report like a batch run, with the
  // accumulated per-stop extraction time on the "extract" stage.
  ASSERT_NE(report.find("extract"), nullptr);
  EXPECT_GT(report.find("extract")->wallMs, 0.0);
  ASSERT_NE(report.find("fusion"), nullptr);
}

}  // namespace
}  // namespace uniq
