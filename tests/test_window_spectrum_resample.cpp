#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "dsp/resample.h"
#include "dsp/spectrum.h"
#include "dsp/window.h"

namespace uniq::dsp {
namespace {

constexpr double kFs = 48000.0;

TEST(Window, HannEndpointsAndPeak) {
  const auto w = makeWindow(WindowType::kHann, 65);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);
}

TEST(Window, AllTypesSymmetric) {
  for (auto type : {WindowType::kHann, WindowType::kHamming,
                    WindowType::kBlackman, WindowType::kTukey}) {
    const auto w = makeWindow(type, 64);
    for (std::size_t i = 0; i < 32; ++i)
      EXPECT_NEAR(w[i], w[63 - i], 1e-12) << "type " << static_cast<int>(type);
  }
}

TEST(Window, RectangularIsAllOnes) {
  const auto w = makeWindow(WindowType::kRectangular, 16);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Window, TukeyAlphaZeroIsRectangular) {
  const auto w = makeWindow(WindowType::kTukey, 32, 0.0);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Window, TukeyAlphaOneIsHannLike) {
  const auto t = makeWindow(WindowType::kTukey, 64, 1.0);
  const auto h = makeWindow(WindowType::kHann, 64);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_NEAR(t[i], h[i], 1e-9);
}

TEST(Window, RejectsBadArgs) {
  EXPECT_THROW(makeWindow(WindowType::kHann, 0), InvalidArgument);
  EXPECT_THROW(makeWindow(WindowType::kTukey, 16, 1.5), InvalidArgument);
  std::vector<double> sig(8, 1.0);
  const auto w = makeWindow(WindowType::kHann, 4);
  EXPECT_THROW(applyWindow(sig, w), InvalidArgument);
}

TEST(Window, ApplyMultiplies) {
  std::vector<double> sig(16, 2.0);
  const auto w = makeWindow(WindowType::kHann, 16);
  applyWindow(sig, w);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_NEAR(sig[i], 2.0 * w[i], 1e-12);
}

TEST(Spectrum, BinFrequencyRoundTrip) {
  for (double f : {0.0, 100.0, 1000.0, 12345.0, 23999.0}) {
    const std::size_t bin = frequencyToBin(f, 4096, kFs);
    EXPECT_NEAR(binFrequency(bin, 4096, kFs), f, kFs / 4096.0);
  }
}

TEST(Spectrum, FrequencyToBinClamps) {
  EXPECT_EQ(frequencyToBin(-100.0, 64, kFs), 0u);
  EXPECT_EQ(frequencyToBin(1e9, 64, kFs), 63u);
}

TEST(Spectrum, ApplyIdentityResponseKeepsSignal) {
  std::vector<double> sig(256);
  for (std::size_t i = 0; i < sig.size(); ++i)
    sig[i] = std::sin(kTwoPi * 1000.0 * static_cast<double>(i) / kFs);
  std::vector<Complex> identity(1024, Complex(1, 0));
  const auto out = applyFrequencyResponse(sig, identity);
  ASSERT_EQ(out.size(), sig.size());
  for (std::size_t i = 0; i < sig.size(); ++i)
    EXPECT_NEAR(out[i], sig[i], 1e-9);
}

TEST(Spectrum, ApplyScalingResponseScales) {
  std::vector<double> sig(128, 0.0);
  sig[10] = 1.0;
  std::vector<Complex> half(512, Complex(0.5, 0));
  const auto out = applyFrequencyResponse(sig, half);
  EXPECT_NEAR(out[10], 0.5, 1e-9);
}

TEST(Spectrum, MagnitudeAndDb) {
  std::vector<Complex> spec{Complex(3, 4), Complex(0, 0)};
  const auto mag = magnitudeSpectrum(spec);
  EXPECT_NEAR(mag[0], 5.0, 1e-12);
  const auto db = magnitudeSpectrumDb(spec);
  EXPECT_NEAR(db[0], 20.0 * std::log10(5.0), 1e-9);
  EXPECT_LT(db[1], -250.0);
}

TEST(Resample, UpsamplePreservesSinusoid) {
  std::vector<double> sig(480);
  for (std::size_t i = 0; i < sig.size(); ++i)
    sig[i] = std::sin(kTwoPi * 1000.0 * static_cast<double>(i) / kFs);
  const auto up = resample(sig, kFs, 2 * kFs);
  ASSERT_EQ(up.size(), 960u);
  // Compare interior against the analytically expected samples.
  double maxErr = 0.0;
  for (std::size_t i = 100; i + 100 < up.size(); ++i) {
    const double expected =
        std::sin(kTwoPi * 1000.0 * static_cast<double>(i) / (2 * kFs));
    maxErr = std::max(maxErr, std::fabs(up[i] - expected));
  }
  EXPECT_LT(maxErr, 0.01);
}

TEST(Resample, DownsampleRemovesAliasedTone) {
  // 20 kHz tone cannot survive a downsample to 16 kHz (Nyquist 8 kHz).
  std::vector<double> sig(4800);
  for (std::size_t i = 0; i < sig.size(); ++i)
    sig[i] = std::sin(kTwoPi * 20000.0 * static_cast<double>(i) / kFs);
  const auto down = resample(sig, kFs, 16000.0);
  double e = 0.0;
  for (std::size_t i = 100; i + 100 < down.size(); ++i) e += down[i] * down[i];
  EXPECT_LT(e / static_cast<double>(down.size() - 200), 0.01);
}

TEST(Resample, RejectsBadArgs) {
  std::vector<double> sig(10, 1.0);
  std::vector<double> empty;
  EXPECT_THROW(resample(empty, kFs, kFs), InvalidArgument);
  EXPECT_THROW(resample(sig, 0.0, kFs), InvalidArgument);
  EXPECT_THROW(resample(sig, kFs, kFs, 1), InvalidArgument);
}

TEST(Resample, IntegerUpsampleFactorLength) {
  std::vector<double> sig(100, 1.0);
  const auto up = upsampleInteger(sig, 3);
  EXPECT_EQ(up.size(), 300u);
}

}  // namespace
}  // namespace uniq::dsp
