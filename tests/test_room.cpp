#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "core/near_far.h"
#include "dsp/peak_picking.h"
#include "head/hrtf_database.h"
#include "room/binaural_reverb.h"
#include "room/image_source.h"

namespace uniq::room {
namespace {

TEST(ImageSource, OrderZeroIsTheRealSource) {
  RoomGeometry geom;
  const geo::Vec2 src{2.0, 1.5};
  const auto images = computeImageSources(geom, src);
  ASSERT_FALSE(images.empty());
  EXPECT_EQ(images.front().order, 0);
  EXPECT_NEAR(images.front().position.x, 2.0, 1e-12);
  EXPECT_NEAR(images.front().position.y, 1.5, 1e-12);
  EXPECT_DOUBLE_EQ(images.front().gain, 1.0);
}

TEST(ImageSource, FirstOrderImagesMirrorOverWalls) {
  RoomGeometry geom;
  geom.widthM = 6.0;
  geom.depthM = 4.0;
  geom.maxOrder = 1;
  const geo::Vec2 src{2.0, 1.5};
  const auto images = computeImageSources(geom, src);
  // 1 direct + 4 first-order images.
  ASSERT_EQ(images.size(), 5u);
  bool foundLeft = false, foundRight = false, foundFront = false,
       foundBack = false;
  for (const auto& img : images) {
    if (img.order != 1) continue;
    EXPECT_NEAR(img.gain, geom.wallReflection, 1e-12);
    if (std::fabs(img.position.x + 2.0) < 1e-9) foundLeft = true;    // x=-s
    if (std::fabs(img.position.x - 10.0) < 1e-9) foundRight = true;  // 2W-s
    if (std::fabs(img.position.y + 1.5) < 1e-9) foundFront = true;
    if (std::fabs(img.position.y - 6.5) < 1e-9) foundBack = true;
  }
  EXPECT_TRUE(foundLeft);
  EXPECT_TRUE(foundRight);
  EXPECT_TRUE(foundFront);
  EXPECT_TRUE(foundBack);
}

TEST(ImageSource, GainDecaysWithOrder) {
  RoomGeometry geom;
  geom.maxOrder = 3;
  const auto images = computeImageSources(geom, {3.0, 2.0});
  for (const auto& img : images) {
    EXPECT_NEAR(img.gain, std::pow(geom.wallReflection, img.order), 1e-12);
    EXPECT_LE(img.order, geom.maxOrder);
  }
}

TEST(ImageSource, CountGrowsWithOrder) {
  RoomGeometry geom;
  geom.maxOrder = 1;
  const auto low = computeImageSources(geom, {3.0, 2.0});
  geom.maxOrder = 4;
  const auto high = computeImageSources(geom, {3.0, 2.0});
  EXPECT_GT(high.size(), low.size());
}

TEST(ImageSource, RejectsBadInput) {
  RoomGeometry geom;
  EXPECT_THROW(computeImageSources(geom, {-1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(computeImageSources(geom, {7.0, 2.0}), InvalidArgument);
  geom.wallReflection = 1.0;
  EXPECT_THROW(computeImageSources(geom, {3.0, 2.0}), InvalidArgument);
}

TEST(ImageSource, ReverbRatioGrowsWithReflectivity) {
  RoomGeometry dead;
  dead.wallReflection = 0.2;
  RoomGeometry live;
  live.wallReflection = 0.8;
  const geo::Vec2 src{2.0, 1.5};
  const geo::Vec2 listener{4.0, 2.5};
  const double deadRatio =
      reverberantToDirectRatio(computeImageSources(dead, src), listener);
  const double liveRatio =
      reverberantToDirectRatio(computeImageSources(live, src), listener);
  EXPECT_GT(liveRatio, 4.0 * deadRatio);
}

class BinauralReverbTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    head::Subject s;
    s.headParams = {0.074, 0.104, 0.09};
    s.pinnaSeed = 71;
    head::HrtfDatabase::Options dbOpts;
    db_ = new head::HrtfDatabase(s, dbOpts);
    table_ = new core::FarFieldTable(core::farTableFromDatabase(*db_));
  }
  static void TearDownTestSuite() {
    delete db_;
    delete table_;
  }
  static head::HrtfDatabase* db_;
  static core::FarFieldTable* table_;
};

head::HrtfDatabase* BinauralReverbTest::db_ = nullptr;
core::FarFieldTable* BinauralReverbTest::table_ = nullptr;

TEST_F(BinauralReverbTest, DirectPathArrivesFirstAtCorrectDelay) {
  RoomGeometry geom;
  const BinauralRoomRenderer renderer(*table_, geom);
  const geo::Vec2 listener{3.0, 2.0};
  const geo::Vec2 source{3.0, 3.5};  // 1.5 m straight ahead
  const auto rir = renderer.roomImpulseResponse(listener, 0.0, source);
  const auto tap = dsp::findFirstTap(rir.left);
  ASSERT_TRUE(tap.has_value());
  const double expected = 1.5 / 343.0 * rir.sampleRate;
  EXPECT_NEAR(tap->position, expected, 40.0);  // within the HRIR anchor slack
  EXPECT_GT(rir.length(), expected);
}

TEST_F(BinauralReverbTest, ReverbTailLongerInLiveRoom) {
  RoomGeometry dead;
  dead.wallReflection = 0.1;
  RoomGeometry live;
  live.wallReflection = 0.8;
  const geo::Vec2 listener{3.0, 2.0};
  const geo::Vec2 source{1.5, 3.0};
  const auto deadRir = BinauralRoomRenderer(*table_, dead)
                           .roomImpulseResponse(listener, 0.0, source);
  const auto liveRir = BinauralRoomRenderer(*table_, live)
                           .roomImpulseResponse(listener, 0.0, source);
  // Energy beyond 12 ms compared between rooms.
  const auto lateStart = static_cast<std::size_t>(0.012 * deadRir.sampleRate);
  auto lateEnergy = [&](const std::vector<double>& ch) {
    double e = 0.0;
    for (std::size_t i = lateStart; i < ch.size(); ++i) e += ch[i] * ch[i];
    return e;
  };
  EXPECT_GT(lateEnergy(liveRir.left), 10.0 * lateEnergy(deadRir.left));
}

TEST_F(BinauralReverbTest, SourceOnLeftGivesLeftLeadingItd) {
  RoomGeometry geom;
  geom.wallReflection = 0.2;  // keep the direct path dominant
  const BinauralRoomRenderer renderer(*table_, geom);
  const geo::Vec2 listener{3.0, 2.0};
  const geo::Vec2 source{1.0, 2.0};  // directly left of the listener
  const auto rir = renderer.roomImpulseResponse(listener, 0.0, source);
  const auto tapL = dsp::findFirstTap(rir.left);
  const auto tapR = dsp::findFirstTap(rir.right);
  ASSERT_TRUE(tapL && tapR);
  EXPECT_LT(tapL->position, tapR->position);
}

TEST_F(BinauralReverbTest, YawRotatesTheScene) {
  RoomGeometry geom;
  geom.wallReflection = 0.2;
  const BinauralRoomRenderer renderer(*table_, geom);
  const geo::Vec2 listener{3.0, 2.0};
  const geo::Vec2 source{3.0, 3.5};  // ahead when yaw = 0
  // Turn the head 90 degrees right: the source ends up on the LEFT side.
  const auto rir = renderer.roomImpulseResponse(listener, -90.0, source);
  const auto tapL = dsp::findFirstTap(rir.left);
  const auto tapR = dsp::findFirstTap(rir.right);
  ASSERT_TRUE(tapL && tapR);
  EXPECT_LT(tapL->position, tapR->position);
}

TEST_F(BinauralReverbTest, RenderConvolvesSource) {
  RoomGeometry geom;
  const BinauralRoomRenderer renderer(*table_, geom);
  const std::vector<double> click{1.0};
  const auto out =
      renderer.render({3.0, 2.0}, 0.0, {2.0, 3.0}, click);
  EXPECT_GT(head::channelEnergy(out.left), 0.0);
  EXPECT_GT(head::channelEnergy(out.right), 0.0);
  EXPECT_THROW(renderer.render({3.0, 2.0}, 0.0, {2.0, 3.0}, {}),
               InvalidArgument);
}

TEST_F(BinauralReverbTest, ListenerOutsideRoomRejected) {
  RoomGeometry geom;
  const BinauralRoomRenderer renderer(*table_, geom);
  EXPECT_THROW(
      renderer.roomImpulseResponse({-1.0, 2.0}, 0.0, {2.0, 3.0}),
      InvalidArgument);
}

}  // namespace
}  // namespace uniq::room
