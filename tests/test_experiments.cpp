#include "eval/experiments.h"

#include <gtest/gtest.h>

#include "core/near_far.h"
#include "dsp/signal_generators.h"
#include "eval/metrics.h"

namespace uniq::eval {
namespace {

TEST(StudyPopulation, FiveVolunteersWithConstrainedTail) {
  ExperimentConfig config;
  const auto pop = makeStudyPopulation(config);
  ASSERT_EQ(pop.size(), 5u);
  // Volunteers 4 and 5 use the constrained-arm profile.
  EXPECT_EQ(pop[0].gesture.armDroopM, 0.0);
  EXPECT_EQ(pop[1].gesture.armDroopM, 0.0);
  EXPECT_EQ(pop[2].gesture.armDroopM, 0.0);
  EXPECT_GT(pop[3].gesture.armDroopM, 0.0);
  EXPECT_GT(pop[4].gesture.armDroopM, 0.0);
}

TEST(StudyPopulation, Deterministic) {
  ExperimentConfig config;
  const auto a = makeStudyPopulation(config);
  const auto b = makeStudyPopulation(config);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].subject.pinnaSeed, b[i].subject.pinnaSeed);
}

TEST(MakeSignal, AllKindsProduceEnergy) {
  Pcg32 rng(1);
  for (auto kind : {SignalKind::kWhiteNoise, SignalKind::kMusic,
                    SignalKind::kSpeech, SignalKind::kChirp}) {
    Pcg32 local = rng.fork(static_cast<std::uint64_t>(kind));
    const auto sig = makeSignal(kind, 4800, 48000.0, local);
    EXPECT_EQ(sig.size(), 4800u) << signalKindName(kind);
    EXPECT_GT(dsp::rms(sig), 0.01) << signalKindName(kind);
  }
}

TEST(MakeSignal, NamesAreStable) {
  EXPECT_STREQ(signalKindName(SignalKind::kWhiteNoise), "white-noise");
  EXPECT_STREQ(signalKindName(SignalKind::kMusic), "music");
  EXPECT_STREQ(signalKindName(SignalKind::kSpeech), "speech");
  EXPECT_STREQ(signalKindName(SignalKind::kChirp), "chirp");
}

TEST(AoaTrials, TruthTemplatesNearPerfectOnChirp) {
  head::Subject s;
  s.headParams = {0.076, 0.107, 0.094};
  s.pinnaSeed = 91;
  head::HrtfDatabase::Options dbOpts;
  const head::HrtfDatabase db(s, dbOpts);
  const auto table = core::farTableFromDatabase(db);
  AoaExperimentOptions opts;
  opts.trialAnglesDeg = {30.0, 90.0, 150.0};
  const auto trials =
      runAoaTrials(db, table, true, SignalKind::kChirp, opts);
  ASSERT_EQ(trials.size(), 3u);
  for (const auto& t : trials) {
    EXPECT_LT(t.absErrorDeg, 8.0) << t.truthDeg;
    EXPECT_TRUE(t.frontBackCorrect);
  }
  EXPECT_DOUBLE_EQ(frontBackAccuracy(trials), 1.0);
  EXPECT_EQ(absErrors(trials).size(), 3u);
}

TEST(AoaTrials, FrontBackAccuracyCounts) {
  std::vector<AoaTrial> trials(4);
  trials[0].frontBackCorrect = true;
  trials[1].frontBackCorrect = false;
  trials[2].frontBackCorrect = true;
  trials[3].frontBackCorrect = true;
  EXPECT_DOUBLE_EQ(frontBackAccuracy(trials), 0.75);
  EXPECT_DOUBLE_EQ(frontBackAccuracy({}), 0.0);
}

}  // namespace
}  // namespace uniq::eval
