#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/constants.h"
#include "common/error.h"
#include "common/math_util.h"
#include "common/random.h"

namespace uniq {
namespace {

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextU32(), b.nextU32());
}

TEST(Pcg32, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.nextU32() == b.nextU32()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Pcg32, UniformInRange) {
  Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Pcg32, NextDoubleInUnitInterval) {
  Pcg32 rng(8);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.nextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Pcg32, GaussianMoments) {
  Pcg32 rng(9);
  double sum = 0.0, sumSq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian();
    sum += v;
    sumSq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumSq / n, 1.0, 0.05);
}

TEST(Pcg32, GaussianMeanStd) {
  Pcg32 rng(10);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Pcg32, NextBoundedWithinBound) {
  Pcg32 rng(11);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.nextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values reached
  EXPECT_EQ(rng.nextBounded(0), 0u);
}

TEST(Pcg32, ForkDecorrelates) {
  Pcg32 base(12);
  Pcg32 a = base.fork(1);
  Pcg32 b = base.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.nextU32() == b.nextU32()) ++same;
  EXPECT_LT(same, 3);
}

TEST(MathUtil, DegreeRadianRoundTrip) {
  for (double d : {-720.0, -90.0, 0.0, 45.0, 180.0, 1234.5}) {
    EXPECT_NEAR(radToDeg(degToRad(d)), d, 1e-9);
  }
}

TEST(MathUtil, WrapTwoPi) {
  EXPECT_NEAR(wrapTwoPi(0.0), 0.0, 1e-12);
  EXPECT_NEAR(wrapTwoPi(kTwoPi + 0.5), 0.5, 1e-12);
  EXPECT_NEAR(wrapTwoPi(-0.5), kTwoPi - 0.5, 1e-12);
}

TEST(MathUtil, WrapPi) {
  EXPECT_NEAR(wrapPi(kPi + 0.1), -kPi + 0.1, 1e-12);
  EXPECT_NEAR(wrapPi(-kPi - 0.1), kPi - 0.1, 1e-12);
  EXPECT_NEAR(wrapPi(0.25), 0.25, 1e-12);
}

TEST(MathUtil, AngularDistance) {
  EXPECT_NEAR(angularDistanceDeg(10.0, 350.0), 20.0, 1e-12);
  EXPECT_NEAR(angularDistanceDeg(0.0, 180.0), 180.0, 1e-12);
  EXPECT_NEAR(angularDistanceDeg(90.0, 95.0), 5.0, 1e-12);
  EXPECT_NEAR(angularDistanceDeg(-10.0, 10.0), 20.0, 1e-12);
}

TEST(MathUtil, LerpAndInverse) {
  EXPECT_DOUBLE_EQ(lerp(2.0, 6.0, 0.25), 3.0);
  EXPECT_DOUBLE_EQ(inverseLerp(2.0, 6.0, 3.0), 0.25);
}

TEST(MathUtil, DbConversionsRoundTrip) {
  for (double amp : {0.001, 0.5, 1.0, 10.0}) {
    EXPECT_NEAR(dbToAmplitude(amplitudeToDb(amp)), amp, 1e-9 * amp);
  }
}

TEST(Errors, RequireThrowsInvalidArgument) {
  EXPECT_THROW(
      [] { UNIQ_REQUIRE(false, "boom"); }(), InvalidArgument);
  EXPECT_NO_THROW([] { UNIQ_REQUIRE(true, "fine"); }());
}

TEST(Errors, CheckThrowsNumericalFailure) {
  try {
    UNIQ_CHECK(1 == 2, "mismatch");
    FAIL() << "should have thrown";
  } catch (const NumericalFailure& e) {
    EXPECT_NE(std::string(e.what()).find("mismatch"), std::string::npos);
  }
}

}  // namespace
}  // namespace uniq
