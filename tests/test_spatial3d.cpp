#include "spatial3d/elevation_renderer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "dsp/fft.h"
#include "dsp/peak_picking.h"
#include "dsp/spectrum.h"
#include "eval/metrics.h"
#include "head/hrtf_database.h"

namespace uniq::spatial3d {
namespace {

class ElevationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    head::Subject s;
    s.headParams = {0.074, 0.105, 0.09};
    s.pinnaSeed = 91;
    head::HrtfDatabase::Options dbOpts;
    db_ = new head::HrtfDatabase(s, dbOpts);
    table_ = new core::FarFieldTable(core::farTableFromDatabase(*db_));
    renderer_ = new ElevationRenderer(*table_, s.pinnaSeed);
  }
  static void TearDownTestSuite() {
    delete renderer_;
    delete table_;
    delete db_;
  }
  static head::HrtfDatabase* db_;
  static core::FarFieldTable* table_;
  static ElevationRenderer* renderer_;

  static double itdSamples(const head::Hrir& hrir) {
    const auto tapL = dsp::findFirstTap(hrir.left);
    const auto tapR = dsp::findFirstTap(hrir.right);
    return (tapR && tapL) ? tapR->position - tapL->position : 0.0;
  }
};

head::HrtfDatabase* ElevationTest::db_ = nullptr;
core::FarFieldTable* ElevationTest::table_ = nullptr;
ElevationRenderer* ElevationTest::renderer_ = nullptr;

TEST_F(ElevationTest, HorizonEqualsTable) {
  const auto synthesized = renderer_->hrirAt(60.0, 0.0);
  const auto& raw = table_->at(60.0);
  ASSERT_EQ(synthesized.left.size(), raw.left.size());
  for (std::size_t i = 0; i < raw.left.size(); ++i) {
    EXPECT_DOUBLE_EQ(synthesized.left[i], raw.left[i]);
    EXPECT_DOUBLE_EQ(synthesized.right[i], raw.right[i]);
  }
}

TEST_F(ElevationTest, LateralAngleMapping) {
  // At the horizon the mapping is the identity.
  EXPECT_NEAR(renderer_->equivalentLateralAngleDeg(50.0, 0.0), 50.0, 1e-9);
  // Straight overhead every azimuth collapses to the median plane, whose
  // lateral angle for a front source is 0 (and 180 for a back source).
  EXPECT_NEAR(renderer_->equivalentLateralAngleDeg(50.0, 80.0), 8.6, 1.0);
  EXPECT_NEAR(renderer_->equivalentLateralAngleDeg(130.0, 80.0), 171.4, 1.0);
  // Elevation shrinks the lateral angle monotonically.
  const double at0 = renderer_->equivalentLateralAngleDeg(70.0, 0.0);
  const double at30 = renderer_->equivalentLateralAngleDeg(70.0, 30.0);
  const double at60 = renderer_->equivalentLateralAngleDeg(70.0, 60.0);
  EXPECT_GT(at0, at30);
  EXPECT_GT(at30, at60);
}

TEST_F(ElevationTest, ItdShrinksWithElevation) {
  const double itd0 = itdSamples(renderer_->hrirAt(90.0, 0.0));
  const double itd45 = itdSamples(renderer_->hrirAt(90.0, 45.0));
  const double itd75 = itdSamples(renderer_->hrirAt(90.0, 75.0));
  EXPECT_GT(itd0, itd45);
  EXPECT_GT(itd45, itd75);
  EXPECT_GT(itd0, 20.0);  // full lateral ITD at the horizon
}

TEST_F(ElevationTest, NotchFrequencyRisesWithElevation) {
  // Isolate the elevation filter itself: the ratio of the synthesized
  // spectrum to the underlying 2D-table spectrum at the equivalent lateral
  // angle (the raw HRIR carries its own pinna notches, which would
  // confound a direct dip search).
  const auto notchFreq = [&](double el) {
    const auto hrir = renderer_->hrirAt(10.0, el);
    const auto& base =
        table_->at(renderer_->equivalentLateralAngleDeg(10.0, el));
    const auto padTo = [](std::vector<double> v) {
      v.resize(2048, 0.0);
      return v;
    };
    const auto specEl = dsp::fftReal(padTo(hrir.left));
    const auto specBase = dsp::fftReal(padTo(base.left));
    const double fs = hrir.sampleRate;
    double bestFreq = 0.0, bestDip = 1e18;
    for (double f = 3000.0; f <= 13000.0; f += 50.0) {
      const std::size_t bin = dsp::frequencyToBin(f, 2048, fs);
      const double ratio =
          std::abs(specEl[bin]) / (std::abs(specBase[bin]) + 1e-9);
      if (ratio < bestDip) {
        bestDip = ratio;
        bestFreq = f;
      }
    }
    return bestFreq;
  };
  const double low = notchFreq(-30.0);
  const double high = notchFreq(60.0);
  EXPECT_GT(high, low + 1000.0);
}

TEST_F(ElevationTest, ElevationChangesAreAudibleButSmooth) {
  const auto a = renderer_->hrirAt(45.0, 20.0);
  const auto b = renderer_->hrirAt(45.0, 25.0);
  const auto c = renderer_->hrirAt(45.0, 70.0);
  const double nearSim = eval::hrirSimilarity(a, b);
  const double farSim = eval::hrirSimilarity(a, c);
  EXPECT_GT(nearSim, 0.9);      // 5-degree step: smooth
  EXPECT_LT(farSim, nearSim);   // 50-degree step: clearly different
}

TEST_F(ElevationTest, DifferentUsersGetDifferentElevationCues) {
  const ElevationRenderer other(*table_, 424242);
  const auto mine = renderer_->hrirAt(45.0, 50.0);
  const auto theirs = other.hrirAt(45.0, 50.0);
  double diff = 0.0;
  for (std::size_t i = 0; i < mine.left.size(); ++i)
    diff += std::fabs(mine.left[i] - theirs.left[i]);
  EXPECT_GT(diff, 1e-3);
}

TEST_F(ElevationTest, RenderAndValidation) {
  const std::vector<double> click{1.0, 0.0, -0.5};
  const auto out = renderer_->render(30.0, 40.0, click);
  EXPECT_GT(head::channelEnergy(out.left), 0.0);
  EXPECT_THROW(renderer_->hrirAt(30.0, 89.0), InvalidArgument);
  EXPECT_THROW(renderer_->hrirAt(30.0, -60.0), InvalidArgument);
  EXPECT_THROW(renderer_->render(30.0, 10.0, {}), InvalidArgument);
}

}  // namespace
}  // namespace uniq::spatial3d
