#include "core/sensor_fusion.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/random.h"
#include "geometry/diffraction.h"
#include "geometry/polar.h"

namespace uniq::core {
namespace {

/// Synthetic measurements straight from the forward model: delays computed
/// on the true head, IMU angles equal to truth plus optional noise.
std::vector<FusionMeasurement> makeMeasurements(
    const head::HeadParameters& truth, double imuNoiseDeg, Pcg32& rng,
    std::size_t count = 30) {
  const geo::HeadBoundary head(truth.a, truth.b, truth.c, 256);
  std::vector<FusionMeasurement> out;
  for (std::size_t i = 0; i < count; ++i) {
    const double theta =
        5.0 + 170.0 * static_cast<double>(i) / static_cast<double>(count - 1);
    const double r = 0.32 + 0.05 * std::sin(0.3 * static_cast<double>(i));
    const geo::Vec2 pos = geo::pointFromPolarDeg(theta, r);
    FusionMeasurement m;
    m.delayLeftSec =
        geo::nearFieldPath(head, pos, geo::Ear::kLeft).length / kSpeedOfSound;
    m.delayRightSec =
        geo::nearFieldPath(head, pos, geo::Ear::kRight).length /
        kSpeedOfSound;
    m.imuAngleDeg = theta + rng.gaussian(0.0, imuNoiseDeg);
    m.sourceIndex = i;
    out.push_back(m);
  }
  return out;
}

TEST(SensorFusion, NoiselessMeasurementsNearZeroObjectiveAtTruth) {
  const head::HeadParameters truth{0.070, 0.105, 0.090};
  Pcg32 rng(1);
  const auto measurements = makeMeasurements(truth, 0.0, rng);
  SensorFusionOptions opts;
  opts.priorWeight = 0.0;
  const SensorFusion fusion(opts);
  EXPECT_LT(fusion.objective(truth, measurements), 1.0);
}

TEST(SensorFusion, ObjectiveWorseForWrongHead) {
  const head::HeadParameters truth{0.070, 0.105, 0.090};
  Pcg32 rng(2);
  const auto measurements = makeMeasurements(truth, 0.0, rng);
  SensorFusionOptions opts;
  opts.priorWeight = 0.0;
  const SensorFusion fusion(opts);
  const double atTruth = fusion.objective(truth, measurements);
  const head::HeadParameters wrong{0.085, 0.090, 0.105};
  EXPECT_GT(fusion.objective(wrong, measurements), atTruth + 1.0);
}

TEST(SensorFusion, SolveRecoversEarWidthNoiseless) {
  const head::HeadParameters truth{0.068, 0.108, 0.092};
  Pcg32 rng(3);
  const auto measurements = makeMeasurements(truth, 0.0, rng);
  SensorFusionOptions opts;
  opts.priorWeight = 0.0;
  const SensorFusion fusion(opts);
  const auto result = fusion.solve(measurements);
  EXPECT_TRUE(result.headParams.isPlausible());
  // The ear-to-ear axis is the best-identified parameter.
  EXPECT_NEAR(result.headParams.a, truth.a, 0.006);
  EXPECT_EQ(result.localizedCount, measurements.size());
  EXPECT_LT(result.meanSquaredResidualDeg2, 4.0);
}

TEST(SensorFusion, FusedAnglesAverageImuAndAcoustic) {
  const head::HeadParameters truth{0.072, 0.100, 0.088};
  Pcg32 rng(4);
  const auto measurements = makeMeasurements(truth, 3.0, rng);
  const SensorFusion fusion;
  const auto result = fusion.solve(measurements);
  for (std::size_t i = 0; i < result.stops.size(); ++i) {
    if (!result.stops[i].localized) continue;
    EXPECT_NEAR(result.stops[i].angleDeg,
                0.5 * (result.stops[i].imuAngleDeg +
                       result.stops[i].acousticAngleDeg),
                1e-9);
  }
}

TEST(SensorFusion, FusionBeatsImuAloneUnderImuNoise) {
  const head::HeadParameters truth{0.071, 0.103, 0.090};
  Pcg32 rng(5);
  const auto measurements = makeMeasurements(truth, 6.0, rng, 32);
  const SensorFusion fusion;
  const auto result = fusion.solve(measurements);
  // Compare per-stop angular errors: fused vs IMU-only against the truth
  // grid used by makeMeasurements.
  double fusedErr = 0.0, imuErr = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < result.stops.size(); ++i) {
    if (!result.stops[i].localized) continue;
    const double truthAngle =
        5.0 + 170.0 * static_cast<double>(i) /
                  static_cast<double>(measurements.size() - 1);
    fusedErr += std::fabs(result.stops[i].angleDeg - truthAngle);
    imuErr += std::fabs(result.stops[i].imuAngleDeg - truthAngle);
    ++n;
  }
  ASSERT_GT(n, measurements.size() / 2);
  EXPECT_LT(fusedErr, imuErr);
}

TEST(SensorFusion, PriorPullsTowardAverageWhenDataWeak) {
  const head::HeadParameters truth{0.0665, 0.116, 0.078};  // extreme head
  Pcg32 rng(6);
  // Heavy IMU noise: data barely constrains (b, c).
  const auto measurements = makeMeasurements(truth, 10.0, rng, 12);
  SensorFusionOptions weak;
  weak.priorWeight = 0.0;
  SensorFusionOptions strong;
  strong.priorWeight = 1.0e6;
  const auto weakResult = SensorFusion(weak).solve(measurements);
  const auto strongResult = SensorFusion(strong).solve(measurements);
  const auto avg = head::HeadParameters::average();
  EXPECT_LT(head::maxAxisError(strongResult.headParams, avg),
            head::maxAxisError(weakResult.headParams, avg) + 1e-9);
}

TEST(SensorFusion, RejectsTooFewMeasurements) {
  const SensorFusion fusion;
  std::vector<FusionMeasurement> few(3);
  EXPECT_THROW(fusion.solve(few), InvalidArgument);
}

TEST(SensorFusion, SolveRobustUnusableInsteadOfThrowingOnTooFew) {
  const SensorFusion fusion;
  std::vector<FusionMeasurement> few(4);
  SensorFusionResult result;
  EXPECT_NO_THROW(result = fusion.solveRobust(few));
  EXPECT_FALSE(result.usable);
  EXPECT_TRUE(result.rejectedSourceIndices.empty());
}

TEST(SensorFusion, SolveRobustRejectsPlantedOutlier) {
  const head::HeadParameters truth{0.072, 0.104, 0.089};
  Pcg32 rng(7);
  auto measurements = makeMeasurements(truth, 1.0, rng, 24);
  // One stop's gyro integration went wild: IMU disagrees with the acoustic
  // angle by ~55 deg, far beyond both the MAD gate and the 10-deg floor.
  measurements[9].imuAngleDeg += 55.0;
  const SensorFusion fusion;
  const auto result = fusion.solveRobust(measurements);
  EXPECT_TRUE(result.usable);
  ASSERT_EQ(result.rejectedSourceIndices.size(), 1u);
  EXPECT_EQ(result.rejectedSourceIndices[0], 9u);
  EXPECT_GE(result.rejectRounds, 1u);
  // The rejected stop stays visible downstream, just unlocalized.
  ASSERT_EQ(result.stops.size(), measurements.size());
  EXPECT_FALSE(result.stops[9].localized);
  EXPECT_EQ(result.stops[9].sourceIndex, 9u);
  // With the outlier trimmed the head estimate stays sane.
  EXPECT_TRUE(result.headParams.isPlausible());
  EXPECT_NEAR(result.headParams.a, truth.a, 0.008);
}

TEST(SensorFusion, SolveRobustKeepsEveryCleanStop) {
  const head::HeadParameters truth{0.070, 0.102, 0.091};
  Pcg32 rng(8);
  const auto measurements = makeMeasurements(truth, 0.5, rng, 20);
  const SensorFusion fusion;
  const auto result = fusion.solveRobust(measurements);
  EXPECT_TRUE(result.usable);
  EXPECT_TRUE(result.rejectedSourceIndices.empty());
  EXPECT_EQ(result.rejectRounds, 0u);
  EXPECT_EQ(result.localizedCount, measurements.size());
  // Stops come back sorted by their originating capture index.
  for (std::size_t i = 0; i < result.stops.size(); ++i)
    EXPECT_EQ(result.stops[i].sourceIndex, i);
}

}  // namespace
}  // namespace uniq::core
