// Serving-layer tests: the concurrent CalibrationService (admission
// control, cancellation, deadlines, failure isolation), the LRU TableCache
// (eviction, hit accounting, disk tier, population fallback), and the
// BatchAoaEngine (grouping, determinism, fallback flagging). Pipeline runs
// here use small captures — the service's correctness must not depend on
// job duration, only its *timing-sensitive* assertions do, and those are
// written to hold on either side of the race.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/math_util.h"
#include "core/aoa.h"
#include "core/pipeline.h"
#include "core/table_io.h"
#include "dsp/signal_generators.h"
#include "head/subject.h"
#include "obs/metrics.h"
#include "serve/batch_aoa.h"
#include "serve/calibration_service.h"
#include "serve/table_cache.h"
#include "sim/measurement_session.h"

namespace uniq {
namespace {

/// A small but personalizable capture for subject `seed` (8 stops clears
/// the pipeline's minUsableStops=6 gate, so jobs land kOk or kDegraded).
sim::CalibrationCapture makeCapture(std::uint64_t seed,
                                    std::size_t stops = 8) {
  const auto subject = head::makePopulation(1, seed)[0];
  const sim::MeasurementSession session;
  auto gesture = sim::defaultGesture();
  gesture.stops = stops;
  return session.run(subject, gesture);
}

/// Iteration scale for the stress tests. CI's default smoke runs at 1; the
/// nightly soak job sets UNIQ_STRESS_MULTIPLIER to push more jobs through
/// the same assertions.
std::size_t stressMultiplier() {
  if (const char* env = std::getenv("UNIQ_STRESS_MULTIPLIER")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 1;
}

TEST(RunAbortToken, CancelAndDeadlineBothMakeItDue) {
  core::RunAbortToken token;
  EXPECT_FALSE(token.due());
  token.setDeadline(std::chrono::steady_clock::now() +
                    std::chrono::hours(1));
  EXPECT_FALSE(token.due());
  token.setDeadline(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1));
  EXPECT_TRUE(token.due());

  core::RunAbortToken cancelled;
  cancelled.requestCancel();
  EXPECT_TRUE(cancelled.cancelRequested());
  EXPECT_TRUE(cancelled.due());
}

TEST(RunAbortToken, PreCancelledPipelineRunReturnsAbortedFallback) {
  const auto capture = makeCapture(7);
  core::RunAbortToken token;
  token.requestCancel();
  const core::CalibrationPipeline pipeline;
  const auto out = pipeline.run(capture, nullptr, &token);
  EXPECT_TRUE(out.aborted);
  EXPECT_EQ(out.status, core::PipelineStatus::kFailed);
  // The abort still yields a usable (population-average) table.
  EXPECT_FALSE(out.table.farTable().byDegree.empty());
  EXPECT_FALSE(out.diagnostics.empty());
}

// --- TableCache ---------------------------------------------------------

TEST(TableCache, LruEvictionOrderAndStats) {
  serve::TableCache cache(2);
  const auto table = serve::TableCache::populationAverageTable(48000.0);
  cache.put("a", table);
  cache.put("b", table);
  EXPECT_EQ(cache.size(), 2u);

  // Touch "a" so "b" is the LRU entry, then overflow.
  EXPECT_NE(cache.get("a"), nullptr);
  cache.put("c", table);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("c"));

  EXPECT_EQ(cache.get("b"), nullptr);  // miss after eviction
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(TableCache, FallbackIsSharedAndNotCountedAsPersonalized) {
  serve::TableCache cache(4);
  const auto fallback = cache.getOrFallback("nobody", 48000.0);
  ASSERT_NE(fallback, nullptr);
  // Same process-wide instance every time — uncalibrated users share it.
  EXPECT_EQ(fallback.get(),
            serve::TableCache::populationAverageTable(48000.0).get());
  EXPECT_FALSE(cache.contains("nobody"));
  EXPECT_EQ(cache.stats().fallbacks, 1u);
}

TEST(TableCache, DiskTierSurvivesEviction) {
  const std::string dir = ::testing::TempDir();
  serve::TableCache cache(1, dir);
  const auto table = serve::TableCache::populationAverageTable(48000.0);
  cache.put("alice", table);
  cache.put("bob", table);  // evicts alice from memory, not from disk
  EXPECT_FALSE(cache.contains("alice"));

  const auto reloaded = cache.get("alice");
  ASSERT_NE(reloaded, nullptr);  // disk hit, promoted back into memory
  EXPECT_TRUE(cache.contains("alice"));
  EXPECT_GE(cache.stats().diskHits, 1u);
  EXPECT_EQ(reloaded->sampleRate(), table->sampleRate());

  // A fresh cache over the same directory is warm from disk too.
  serve::TableCache second(4, dir);
  EXPECT_NE(second.get("bob"), nullptr);
  std::remove((dir + "/alice.uniq").c_str());
  std::remove((dir + "/bob.uniq").c_str());
}

TEST(TableCache, ShardedCacheSharesOneCapacityBudget) {
  serve::TableCacheOptions opts;
  opts.capacity = 8;
  opts.shards = 4;
  serve::TableCache cache(opts);
  EXPECT_EQ(cache.shardCount(), 4u);

  const auto table = serve::TableCache::populationAverageTable(48000.0);
  for (int i = 0; i < 64; ++i) cache.put("user" + std::to_string(i), table);
  // However the 64 users hashed across the 4 shards, the shared budget
  // holds: never more than `capacity` entries in memory, and one eviction
  // per over-budget insert.
  EXPECT_EQ(cache.size(), 8u);
  EXPECT_GE(cache.stats().evictions, 56u);
}

TEST(TableCache, RejectsNonPowerOfTwoShardCount) {
  serve::TableCacheOptions opts;
  opts.shards = 6;
  EXPECT_THROW(serve::TableCache cache(opts), InvalidArgument);
}

TEST(TableCache, DiskTierWritesQuantizedAndStillReadsLegacy) {
  const std::string dir = ::testing::TempDir();
  serve::TableCacheOptions opts;
  opts.capacity = 1;
  opts.persistDir = dir;
  serve::TableCache cache(opts);
  const auto table = serve::TableCache::populationAverageTable(48000.0);

  // put() persists the compact quantized container, not the float64 one.
  cache.put("quser", table);
  EXPECT_TRUE(std::ifstream(dir + "/quser.uniqq").good());
  EXPECT_FALSE(std::ifstream(dir + "/quser.uniq").good());

  cache.put("other", table);  // evicts quser from memory
  EXPECT_FALSE(cache.contains("quser"));
  serve::CacheTier tier = serve::CacheTier::kMiss;
  const auto back = cache.get("quser", &tier);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(tier, serve::CacheTier::kDisk);
  // The rescued table is the quantized round trip: within the pinned
  // budget of the original at every compared sample.
  const auto& a = table->farAt(90);
  const auto& b = back->farAt(90);
  ASSERT_EQ(a.left.size(), b.left.size());
  double peak = 0.0;
  for (const double v : a.left) peak = std::max(peak, std::abs(v));
  for (const double v : a.right) peak = std::max(peak, std::abs(v));
  for (std::size_t i = 0; i < a.left.size(); ++i)
    EXPECT_NEAR(a.left[i], b.left[i], core::kQuantSampleError * peak);

  // A pre-quantization directory (bare .uniq) still serves disk hits.
  core::saveHrtfTable(dir + "/legacy.uniq", *table);
  tier = serve::CacheTier::kMiss;
  EXPECT_NE(cache.get("legacy", &tier), nullptr);
  EXPECT_EQ(tier, serve::CacheTier::kDisk);

  // Lookup attribution covers the remaining tiers too.
  tier = serve::CacheTier::kMiss;
  cache.get("legacy", &tier);
  EXPECT_EQ(tier, serve::CacheTier::kMemory);
  tier = serve::CacheTier::kMemory;
  EXPECT_EQ(cache.get("nobody", &tier), nullptr);
  EXPECT_EQ(tier, serve::CacheTier::kMiss);
  tier = serve::CacheTier::kMiss;
  cache.getOrFallback("nobody", 48000.0, &tier);
  EXPECT_EQ(tier, serve::CacheTier::kFallback);

  std::remove((dir + "/quser.uniqq").c_str());
  std::remove((dir + "/other.uniqq").c_str());
  std::remove((dir + "/legacy.uniq").c_str());
}

// --- CalibrationService -------------------------------------------------

TEST(CalibrationService, StressConcurrentSubmissionsMatchSerial) {
  // 8 jobs over a 2-worker pool (>= 4x pool size) cycling 4 distinct
  // captures. Every job must land kDone with exactly the table a serial
  // pipeline run produces for its capture — concurrency must not change
  // results bit for bit.
  constexpr std::size_t kWorkers = 2;
  constexpr std::size_t kCaptures = 4;
  const std::size_t kJobs = 4 * kWorkers * stressMultiplier();

  std::vector<std::shared_ptr<const sim::CalibrationCapture>> captures;
  for (std::size_t i = 0; i < kCaptures; ++i)
    captures.push_back(std::make_shared<const sim::CalibrationCapture>(
        makeCapture(100 + i)));

  const core::CalibrationPipeline serial;
  std::vector<core::PersonalHrtf> expected;
  for (const auto& c : captures) expected.push_back(serial.run(*c));

  serve::CalibrationServiceOptions opts;
  opts.workers = kWorkers;
  opts.maxQueued = kJobs;
  opts.cacheCapacity = kCaptures;
  serve::CalibrationService service(opts);
  EXPECT_EQ(service.workerCount(), kWorkers);

  std::vector<std::uint64_t> ids;
  for (std::size_t j = 0; j < kJobs; ++j) {
    const auto id = service.submit("user" + std::to_string(j % kCaptures),
                                   captures[j % kCaptures]);
    ASSERT_NE(id, serve::kInvalidJobId);
    ids.push_back(id);
  }
  const auto results = service.drain();
  ASSERT_EQ(results.size(), kJobs);

  for (std::size_t j = 0; j < kJobs; ++j) {
    const auto& r = results[j];
    ASSERT_EQ(r.state, serve::JobState::kDone) << "job " << j;
    EXPECT_EQ(r.id, ids[j]);  // drain() preserves submission order
    const auto& want = expected[j % kCaptures];
    EXPECT_EQ(r.status, want.status);
    ASSERT_NE(r.table, nullptr);
    const auto& got = r.table->farTable().byDegree;
    const auto& ref = want.table.farTable().byDegree;
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t d = 0; d < ref.size(); d += 45) {
      ASSERT_EQ(got[d].left.size(), ref[d].left.size());
      for (std::size_t t = 0; t < ref[d].left.size(); ++t) {
        EXPECT_EQ(got[d].left[t], ref[d].left[t])
            << "job " << j << " deg " << d << " tap " << t;
        EXPECT_EQ(got[d].right[t], ref[d].right[t])
            << "job " << j << " deg " << d << " tap " << t;
      }
    }
    EXPECT_GE(r.runMs, 0.0);
    EXPECT_GE(r.queueMs, 0.0);
  }
  // All four users finished at least once -> personalized tables cached.
  for (std::size_t i = 0; i < kCaptures; ++i)
    EXPECT_TRUE(service.cache().contains("user" + std::to_string(i)));
}

TEST(CalibrationService, ShardedRunMatchesSerialBitwise) {
  // The 8-job stress over a 4-shard service. Together with
  // StressConcurrentSubmissionsMatchSerial (which runs the identical
  // workload on the default single shard against the same serial
  // reference), this pins shards=4 == shards=1 == serial, bit for bit —
  // sharding must be a pure concurrency change.
  constexpr std::size_t kWorkers = 2;
  constexpr std::size_t kCaptures = 4;
  constexpr std::size_t kShards = 4;
  const std::size_t kJobs = 4 * kWorkers * stressMultiplier();

  std::vector<std::shared_ptr<const sim::CalibrationCapture>> captures;
  for (std::size_t i = 0; i < kCaptures; ++i)
    captures.push_back(std::make_shared<const sim::CalibrationCapture>(
        makeCapture(100 + i)));

  const core::CalibrationPipeline serial;
  std::vector<core::PersonalHrtf> expected;
  for (const auto& c : captures) expected.push_back(serial.run(*c));

  serve::CalibrationServiceOptions opts;
  opts.workers = kWorkers;
  opts.shards = kShards;
  // The admission budget splits across shards; give every shard room for
  // the whole batch so user->shard skew cannot cause rejections here.
  opts.maxQueued = kJobs * kShards;
  opts.cacheCapacity = kCaptures;
  serve::CalibrationService service(opts);
  EXPECT_EQ(service.shardCount(), kShards);
  EXPECT_EQ(service.cache().shardCount(), kShards);

  std::vector<std::uint64_t> ids;
  for (std::size_t j = 0; j < kJobs; ++j) {
    const auto id = service.submit("user" + std::to_string(j % kCaptures),
                                   captures[j % kCaptures]);
    ASSERT_NE(id, serve::kInvalidJobId);
    // Shard-encoded ids stay unique across shards.
    EXPECT_EQ(std::find(ids.begin(), ids.end(), id), ids.end());
    ids.push_back(id);
  }
  const auto results = service.drain();
  ASSERT_EQ(results.size(), kJobs);

  for (std::size_t j = 0; j < kJobs; ++j) {
    const auto& r = results[j];
    ASSERT_EQ(r.state, serve::JobState::kDone) << "job " << j;
    EXPECT_EQ(r.id, ids[j]);  // drain() preserves global submission order
    const auto& want = expected[j % kCaptures];
    EXPECT_EQ(r.status, want.status);
    ASSERT_NE(r.table, nullptr);
    const auto& got = r.table->farTable().byDegree;
    const auto& ref = want.table.farTable().byDegree;
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t d = 0; d < ref.size(); d += 45) {
      ASSERT_EQ(got[d].left.size(), ref[d].left.size());
      for (std::size_t t = 0; t < ref[d].left.size(); ++t) {
        EXPECT_EQ(got[d].left[t], ref[d].left[t])
            << "job " << j << " deg " << d << " tap " << t;
        EXPECT_EQ(got[d].right[t], ref[d].right[t])
            << "job " << j << " deg " << d << " tap " << t;
      }
    }
  }
  for (std::size_t i = 0; i < kCaptures; ++i)
    EXPECT_TRUE(service.cache().contains("user" + std::to_string(i)));
}

TEST(CalibrationService, RejectsNonPowerOfTwoShardCount) {
  serve::CalibrationServiceOptions opts;
  opts.shards = 3;
  EXPECT_THROW(serve::CalibrationService service(opts), InvalidArgument);
}

TEST(CalibrationService, ShardMetricsExposeDepthAndRejections) {
  auto counterValue = [](const obs::MetricsSnapshot& snap,
                         const std::string& name) -> double {
    for (const auto& c : snap.counters)
      if (c.name == name) return c.value;
    return -1.0;
  };
  const auto before = obs::registry().snapshot();
  const double rejectedBefore =
      std::max(0.0, counterValue(before, "serve.jobs.rejected_by_shard"));

  serve::CalibrationServiceOptions opts;
  opts.workers = 1;
  opts.shards = 2;
  opts.maxQueued = 2;  // per-shard quota: max(1, 2/2) = 1
  serve::CalibrationService service(opts);
  const auto capture = std::make_shared<const sim::CalibrationCapture>(
      makeCapture(41));

  // Pin the single worker on a real job so nothing drains the queues while
  // we probe admission. Then: same user -> same shard, quota of one queued
  // job, so of three rapid submissions at least one must bounce.
  ASSERT_NE(service.submit("blocker", capture), serve::kInvalidJobId);
  while (service.runningCount() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  serve::JobOptions fast;
  fast.deadlineMs = 1e-6;  // expire instead of running: keeps the test quick
  std::size_t rejected = 0;
  for (int i = 0; i < 3; ++i)
    if (service.submit("sharduser", capture, fast) == serve::kInvalidJobId)
      ++rejected;
  EXPECT_GE(rejected, 1u);
  service.drain();

  const auto after = obs::registry().snapshot();
  EXPECT_GE(counterValue(after, "serve.jobs.rejected_by_shard"),
            rejectedBefore + 1.0);
  bool sawShardDepth = false, sawShardRejected = false;
  for (const auto& g : after.gauges)
    if (g.name.rfind("serve.shard.", 0) == 0 &&
        g.name.find(".queue_depth") != std::string::npos)
      sawShardDepth = true;
  for (const auto& c : after.counters)
    if (c.name.rfind("serve.shard.", 0) == 0 &&
        c.name.find(".rejected") != std::string::npos &&
        c.value >= 1.0)
      sawShardRejected = true;
  EXPECT_TRUE(sawShardDepth);
  EXPECT_TRUE(sawShardRejected);
}

TEST(CalibrationService, AdmissionControlRejectsWhenQueueFull) {
  serve::CalibrationServiceOptions opts;
  opts.workers = 1;
  opts.maxQueued = 1;
  serve::CalibrationService service(opts);
  const auto capture = std::make_shared<const sim::CalibrationCapture>(
      makeCapture(11));

  std::vector<std::uint64_t> accepted;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    const auto id = service.submit("u" + std::to_string(i), capture);
    if (id == serve::kInvalidJobId)
      ++rejected;
    else
      accepted.push_back(id);
  }
  // One job can be running and one queued; submits are microseconds while
  // jobs are ~a second, so at least one of the six must bounce.
  EXPECT_GE(rejected, 1u);
  EXPECT_GE(accepted.size(), 1u);
  EXPECT_EQ(accepted.size() + rejected, 6u);

  const auto results = service.drain();
  EXPECT_EQ(results.size(), accepted.size());
  for (const auto& r : results) EXPECT_EQ(r.state, serve::JobState::kDone);
}

TEST(CalibrationService, CancelQueuedJobNeverRuns) {
  serve::CalibrationServiceOptions opts;
  opts.workers = 1;
  opts.maxQueued = 4;
  serve::CalibrationService service(opts);
  const auto capture = std::make_shared<const sim::CalibrationCapture>(
      makeCapture(12));

  const auto a = service.submit("first", capture);
  const auto b = service.submit("second", capture);
  ASSERT_NE(a, serve::kInvalidJobId);
  ASSERT_NE(b, serve::kInvalidJobId);
  // The single worker is busy with `a`, so `b` is still queued; whichever
  // side of the race we land on, a true cancel() must end in kCancelled.
  const bool cancelable = service.cancel(b);
  const auto rb = service.wait(b);
  if (cancelable) {
    EXPECT_EQ(rb.state, serve::JobState::kCancelled);
    EXPECT_EQ(rb.table, nullptr);
  } else {
    EXPECT_EQ(rb.state, serve::JobState::kDone);
  }
  EXPECT_FALSE(service.cancel(b));  // terminal jobs refuse a second cancel

  const auto ra = service.wait(a);
  EXPECT_EQ(ra.state, serve::JobState::kDone);
  service.drain();
}

TEST(CalibrationService, ExpiredDeadlineJobTerminatesAsExpired) {
  serve::CalibrationServiceOptions opts;
  opts.workers = 1;
  serve::CalibrationService service(opts);
  const auto capture = std::make_shared<const sim::CalibrationCapture>(
      makeCapture(13));

  serve::JobOptions job;
  job.deadlineMs = 1e-6;  // already past by the time any worker looks
  const auto id = service.submit("late", capture, job);
  ASSERT_NE(id, serve::kInvalidJobId);
  const auto r = service.wait(id);
  EXPECT_EQ(r.state, serve::JobState::kExpired);
  EXPECT_EQ(r.table, nullptr);
  EXPECT_FALSE(service.cache().contains("late"));
  service.drain();
}

TEST(CalibrationService, FailedJobIsIsolatedAndNeverCached) {
  // A 4-stop capture is below minUsableStops=6: the pipeline fails over to
  // the population-average table. The job must still report kDone (the
  // *service* worked; the *calibration* failed), its fallback table must
  // stay out of the cache, and surrounding healthy jobs must be untouched.
  serve::CalibrationServiceOptions opts;
  opts.workers = 2;
  serve::CalibrationService service(opts);

  const auto poisoned = std::make_shared<const sim::CalibrationCapture>(
      makeCapture(21, /*stops=*/4));
  const auto healthy = std::make_shared<const sim::CalibrationCapture>(
      makeCapture(22));

  const auto h1 = service.submit("healthy1", healthy);
  const auto bad = service.submit("poisoned", poisoned);
  const auto h2 = service.submit("healthy2", healthy);
  ASSERT_NE(bad, serve::kInvalidJobId);

  const auto rBad = service.wait(bad);
  EXPECT_EQ(rBad.state, serve::JobState::kDone);
  EXPECT_EQ(rBad.status, core::PipelineStatus::kFailed);
  ASSERT_NE(rBad.table, nullptr);  // fallback handed to the caller...
  EXPECT_FALSE(service.cache().contains("poisoned"));  // ...never cached

  for (const auto id : {h1, h2}) {
    const auto r = service.wait(id);
    EXPECT_EQ(r.state, serve::JobState::kDone);
    EXPECT_NE(r.status, core::PipelineStatus::kFailed);
  }
  EXPECT_TRUE(service.cache().contains("healthy1"));
  service.drain();
}

TEST(CalibrationService, MetricsAccountForEveryTerminalState) {
  const auto& before = obs::registry().snapshot();
  auto counterValue = [](const obs::MetricsSnapshot& snap,
                         const std::string& name) -> double {
    for (const auto& c : snap.counters)
      if (c.name == name) return c.value;
    return 0.0;
  };
  const double doneBefore = counterValue(before, "serve.jobs.done");
  const double submittedBefore = counterValue(before, "serve.jobs.submitted");

  serve::CalibrationServiceOptions opts;
  opts.workers = 1;
  serve::CalibrationService service(opts);
  const auto capture = std::make_shared<const sim::CalibrationCapture>(
      makeCapture(31));
  service.submit("metered", capture);
  const auto results = service.drain();
  ASSERT_EQ(results.size(), 1u);

  const auto& after = obs::registry().snapshot();
  EXPECT_GE(counterValue(after, "serve.jobs.submitted"),
            submittedBefore + 1.0);
  EXPECT_GE(counterValue(after, "serve.jobs.done"), doneBefore + 1.0);
  bool sawQueueDepthGauge = false;
  for (const auto& g : after.gauges)
    if (g.name == "serve.queue.depth") sawQueueDepthGauge = true;
  EXPECT_TRUE(sawQueueDepthGauge);
}

// --- BatchAoaEngine -----------------------------------------------------

TEST(BatchAoaEngine, MatchesSingleEstimatorBitForBit) {
  serve::TableCache cache(4);
  const auto table = serve::TableCache::populationAverageTable(48000.0);
  cache.put("alice", table);

  const double fs = table->sampleRate();
  const auto chirp =
      dsp::linearChirp(200.0, 16000.0, static_cast<std::size_t>(0.05 * fs),
                       fs);
  const std::vector<double> angles = {40.0, 75.0, 120.0};
  std::vector<serve::AoaQuery> queries;
  for (const double a : angles) {
    const auto rendered = table->renderFar(a, chirp);
    serve::AoaQuery q;
    q.userId = "alice";
    q.left = rendered.left;
    q.right = rendered.right;
    q.source = chirp;
    queries.push_back(std::move(q));
  }

  const serve::BatchAoaEngine engine(cache);
  const auto batch = engine.run(queries);
  ASSERT_EQ(batch.size(), angles.size());

  const core::AoaEstimator reference(table->farTable());
  for (std::size_t i = 0; i < angles.size(); ++i) {
    EXPECT_TRUE(batch[i].personalized);
    const auto want = reference.estimateKnown(queries[i].left,
                                              queries[i].right,
                                              queries[i].source);
    // The template-spectrum cache must be a pure speedup.
    EXPECT_EQ(batch[i].estimate.angleDeg, want.angleDeg) << angles[i];
    EXPECT_LT(angularDistanceDeg(batch[i].estimate.angleDeg,
                                         angles[i]),
              10.0);
  }
}

TEST(BatchAoaEngine, UncachedUserFallsBackAndIsFlagged) {
  serve::TableCache cache(4);
  const auto table = serve::TableCache::populationAverageTable(48000.0);
  const double fs = table->sampleRate();
  const auto chirp =
      dsp::linearChirp(200.0, 16000.0, static_cast<std::size_t>(0.05 * fs),
                       fs);
  const auto rendered = table->renderFar(60.0, chirp);

  serve::AoaQuery q;
  q.userId = "stranger";
  q.left = rendered.left;
  q.right = rendered.right;
  q.source = chirp;

  const serve::BatchAoaEngine engine(cache);
  const auto batch = engine.run({q});
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_FALSE(batch[0].personalized);
  // Fallback *is* the table the signal was rendered with here, so the
  // answer should still be close.
  EXPECT_LT(angularDistanceDeg(batch[0].estimate.angleDeg, 60.0),
            10.0);
}

TEST(BatchAoaEngine, UnknownSourceQueriesAreGroupedPerUser) {
  serve::TableCache cache(4);
  const auto table = serve::TableCache::populationAverageTable(48000.0);
  cache.put("a", table);
  cache.put("b", table);

  const double fs = table->sampleRate();
  Pcg32 rng(99);
  const auto music =
      dsp::musicLike(static_cast<std::size_t>(0.4 * fs), fs, rng);

  std::vector<serve::AoaQuery> queries;
  for (const auto* user : {"a", "b", "a", "b"}) {
    const double angle = queries.size() * 25.0 + 40.0;
    const auto rendered = table->renderFar(angle, music);
    serve::AoaQuery q;
    q.userId = user;
    q.left = rendered.left;
    q.right = rendered.right;  // no source -> unknown-source path
    queries.push_back(std::move(q));
  }
  const serve::BatchAoaEngine engine(cache);
  const auto batch = engine.run(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(batch[i].personalized);
    const double want = i * 25.0 + 40.0;
    EXPECT_LT(angularDistanceDeg(batch[i].estimate.angleDeg, want),
              25.0)
        << "query " << i;
  }
}

}  // namespace
}  // namespace uniq
