#include "dsp/deconvolution.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/random.h"
#include "dsp/convolution.h"
#include "dsp/peak_picking.h"
#include "dsp/signal_generators.h"

namespace uniq::dsp {
namespace {

TEST(SpectralDivide, IdentityWhenDividingBySelf) {
  Pcg32 rng(1);
  std::vector<Complex> x(64);
  for (auto& v : x) v = Complex(rng.gaussian() + 2.0, rng.gaussian());
  const auto out = regularizedSpectralDivide(x, x, 1e-9);
  for (const auto& v : out) EXPECT_NEAR(std::abs(v - Complex(1, 0)), 0.0, 1e-4);
}

TEST(SpectralDivide, RejectsBadArgs) {
  std::vector<Complex> a(8), b(4);
  EXPECT_THROW(regularizedSpectralDivide(a, b, 1e-3), InvalidArgument);
  std::vector<Complex> c(8);
  EXPECT_THROW(regularizedSpectralDivide(a, c, 0.0), InvalidArgument);
}

TEST(Deconvolve, RecoversSparseChannelFromChirp) {
  const double fs = 48000.0;
  const auto chirp = linearChirp(100.0, 20000.0, 960, fs);
  // Channel: taps at 30 and 55 samples.
  std::vector<double> channel(128, 0.0);
  channel[30] = 1.0;
  channel[55] = -0.5;
  const auto received = convolve(chirp, channel);
  DeconvolutionOptions opts;
  opts.responseLength = 128;
  const auto estimated = deconvolve(received, chirp, opts);
  ASSERT_EQ(estimated.size(), 128u);
  // The chirp only probes 100 Hz - 20 kHz, so the regularized estimate
  // loses the out-of-band part of each tap; the relative tap structure is
  // preserved accurately.
  EXPECT_NEAR(estimated[30], 1.0, 0.2);
  EXPECT_NEAR(estimated[55], -0.5, 0.12);
  EXPECT_NEAR(estimated[55] / estimated[30], -0.5, 0.02);
  // Everything else small.
  double offPeak = 0.0;
  for (std::size_t i = 0; i < estimated.size(); ++i) {
    if (i >= 28 && i <= 32) continue;
    if (i >= 53 && i <= 57) continue;
    offPeak = std::max(offPeak, std::fabs(estimated[i]));
  }
  // Regularization leaves small sidelobes around sharp taps.
  EXPECT_LT(offPeak, 0.15);
}

TEST(Deconvolve, StableUnderNoise) {
  const double fs = 48000.0;
  Pcg32 rng(9);
  const auto chirp = linearChirp(100.0, 20000.0, 960, fs);
  std::vector<double> channel(64, 0.0);
  channel[20] = 1.0;
  auto received = convolve(chirp, channel);
  addNoiseSnrDb(received, 20.0, rng);
  DeconvolutionOptions opts;
  opts.responseLength = 64;
  const auto estimated = deconvolve(received, chirp, opts);
  const auto tap = findFirstTap(estimated);
  ASSERT_TRUE(tap.has_value());
  EXPECT_NEAR(tap->position, 20.0, 0.5);
}

TEST(Deconvolve, FractionalTapPositionRecoveredSubSample) {
  const double fs = 48000.0;
  const auto chirp = linearChirp(100.0, 20000.0, 2048, fs);
  std::vector<double> channel(96, 0.0);
  // A fractional tap at 33.37 samples.
  for (int k = -8; k <= 8; ++k) {
    const double x = static_cast<double>(k) - 0.37;
    const double sinc = std::fabs(x) < 1e-12 ? 1.0
                                             : std::sin(3.14159265358979 * x) /
                                                   (3.14159265358979 * x);
    channel[static_cast<std::size_t>(33 + k)] += sinc;
  }
  const auto received = convolve(chirp, channel);
  DeconvolutionOptions opts;
  opts.responseLength = 96;
  const auto estimated = deconvolve(received, chirp, opts);
  const auto tap = findFirstTap(estimated);
  ASSERT_TRUE(tap.has_value());
  EXPECT_NEAR(tap->position, 33.37, 0.15);
}

TEST(Deconvolve, RejectsEmpty) {
  std::vector<double> a{1.0};
  std::vector<double> empty;
  EXPECT_THROW(deconvolve(empty, a), InvalidArgument);
  EXPECT_THROW(deconvolve(a, empty), InvalidArgument);
}

}  // namespace
}  // namespace uniq::dsp
