#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "dsp/fft.h"
#include "geometry/polar.h"
#include "dsp/signal_generators.h"
#include "dsp/spectrum.h"
#include "sim/hardware_model.h"
#include "sim/imu_sim.h"
#include "sim/measurement_session.h"
#include "sim/recorder.h"
#include "sim/room_model.h"
#include "sim/trajectory.h"

namespace uniq::sim {
namespace {

TEST(HardwareModel, BandpassShape) {
  const HardwareModel hw;
  // Paper Figure 16: unusable below ~50 Hz, stable in 100 Hz - 10 kHz.
  EXPECT_LT(hw.magnitudeDbAt(20.0), -20.0);
  EXPECT_GT(hw.magnitudeDbAt(1000.0), -6.0);
  EXPECT_GT(hw.magnitudeDbAt(8000.0), -6.0);
  EXPECT_LT(hw.magnitudeDbAt(22000.0), hw.magnitudeDbAt(8000.0));
}

TEST(HardwareModel, RippleBoundedInBand) {
  HardwareModel::Options opts;
  opts.rippleDb = 2.0;
  const HardwareModel hw(opts);
  double minDb = 1e9, maxDb = -1e9;
  for (double f = 500.0; f <= 8000.0; f *= 1.1) {
    const double db = hw.magnitudeDbAt(f);
    minDb = std::min(minDb, db);
    maxDb = std::max(maxDb, db);
  }
  EXPECT_LT(maxDb - minDb, 4.0);
}

TEST(HardwareModel, ApplyAttenuatesOutOfBand) {
  const HardwareModel hw;
  const double fs = hw.sampleRate();
  std::vector<double> low(4800), mid(4800);
  for (std::size_t i = 0; i < low.size(); ++i) {
    low[i] = std::sin(kTwoPi * 25.0 * static_cast<double>(i) / fs);
    mid[i] = std::sin(kTwoPi * 1000.0 * static_cast<double>(i) / fs);
  }
  const auto lowOut = hw.apply(low);
  const auto midOut = hw.apply(mid);
  EXPECT_LT(dsp::rms(lowOut), 0.25 * dsp::rms(midOut));
}

TEST(HardwareModel, EstimateCloseToTruth) {
  const HardwareModel hw;
  Pcg32 rng(4);
  const auto estimate = hw.estimateResponse(40.0, rng);
  ASSERT_EQ(estimate.size(), hw.response().size());
  // Compare magnitudes over the usable band.
  const std::size_t n = estimate.size();
  for (double f = 300.0; f <= 10000.0; f *= 1.5) {
    const std::size_t bin = dsp::frequencyToBin(f, n, hw.sampleRate());
    const double trueMag = std::abs(hw.response()[bin]);
    const double estMag = std::abs(estimate[bin]);
    EXPECT_NEAR(estMag / trueMag, 1.0, 0.15) << "f=" << f;
  }
}

TEST(RoomModel, IdentityTapPlusLateEchoes) {
  RoomModel::Options opts;
  const RoomModel room(opts);
  const auto& ir = room.impulseResponse();
  EXPECT_DOUBLE_EQ(ir[0], 1.0);
  const auto minDelaySamples =
      static_cast<std::size_t>(opts.minDelaySec * opts.sampleRate);
  for (std::size_t i = 1; i + 16 < minDelaySamples; ++i)
    EXPECT_NEAR(ir[i], 0.0, 1e-9) << "early energy at " << i;
  double lateEnergy = 0.0;
  for (std::size_t i = minDelaySamples; i < ir.size(); ++i)
    lateEnergy += ir[i] * ir[i];
  EXPECT_GT(lateEnergy, 0.01);
}

TEST(RoomModel, AnechoicIsPureDelta) {
  const auto room = RoomModel::anechoic();
  const auto& ir = room.impulseResponse();
  EXPECT_DOUBLE_EQ(ir[0], 1.0);
  for (std::size_t i = 1; i < ir.size(); ++i) EXPECT_DOUBLE_EQ(ir[i], 0.0);
  std::vector<double> sig{1.0, 2.0, 3.0};
  const auto out = room.apply(sig);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 3.0);
}

TEST(Trajectory, CoversRequestedRangeInOrder) {
  Pcg32 rng(5);
  const auto traj = generateTrajectory(defaultGesture(), rng);
  ASSERT_EQ(traj.size(), defaultGesture().stops);
  EXPECT_LT(traj.front().trueAngleDeg, 15.0);
  EXPECT_GT(traj.back().trueAngleDeg, 165.0);
  for (std::size_t i = 1; i < traj.size(); ++i) {
    EXPECT_GT(traj[i].timeSec, traj[i - 1].timeSec);
    EXPECT_GE(traj[i].trueAngleDeg, 0.0);
    EXPECT_LE(traj[i].trueAngleDeg, 180.0);
  }
}

TEST(Trajectory, RadiusStaysPhysical) {
  Pcg32 rng(6);
  for (const auto& profile : {defaultGesture(), constrainedGesture()}) {
    const auto traj = generateTrajectory(profile, rng);
    for (const auto& p : traj) {
      EXPECT_GT(p.radiusM, 0.13);
      EXPECT_LT(p.radiusM, 0.5);
      EXPECT_NEAR(geo::radiusOfPoint(p.position), p.radiusM, 1e-9);
    }
  }
}

TEST(Trajectory, ConstrainedGestureDroopsAtBack) {
  Pcg32 rng(7);
  const auto traj = generateTrajectory(constrainedGesture(), rng);
  double frontAvg = 0.0, backAvg = 0.0;
  int frontN = 0, backN = 0;
  for (const auto& p : traj) {
    if (p.trueAngleDeg < 60.0) {
      frontAvg += p.radiusM;
      ++frontN;
    } else if (p.trueAngleDeg > 150.0) {
      backAvg += p.radiusM;
      ++backN;
    }
  }
  ASSERT_GT(frontN, 0);
  ASSERT_GT(backN, 0);
  EXPECT_LT(backAvg / backN, frontAvg / frontN - 0.02);
}

TEST(Trajectory, RejectsBadProfiles) {
  Pcg32 rng(8);
  GestureProfile p;
  p.stops = 2;
  EXPECT_THROW(generateTrajectory(p, rng), InvalidArgument);
  GestureProfile q;
  q.angleStartDeg = 100;
  q.angleEndDeg = 50;
  EXPECT_THROW(generateTrajectory(q, rng), InvalidArgument);
}

TEST(ImuSim, NoiselessGyroIntegratesExactly) {
  Pcg32 trajRng(9);
  const auto traj = generateTrajectory(defaultGesture(), trajRng);
  ImuNoiseModel noiseless;
  noiseless.biasDegPerSec = 0.0;
  noiseless.noiseDegPerSec = 0.0;
  noiseless.facingErrorDeg = 0.0;
  noiseless.aimJitterDeg = 0.0;
  Pcg32 imuRng(10);
  const auto trace = simulateGyro(traj, noiseless, imuRng);
  const auto angles = anglesAtStops(trace, traj.front().trueAngleDeg, traj);
  ASSERT_EQ(angles.size(), traj.size());
  for (std::size_t i = 0; i < traj.size(); ++i) {
    EXPECT_NEAR(angles[i], traj[i].trueAngleDeg, 1.5) << "stop " << i;
  }
}

TEST(ImuSim, BiasCausesGrowingDrift) {
  Pcg32 trajRng(11);
  const auto traj = generateTrajectory(defaultGesture(), trajRng);
  ImuNoiseModel biased;
  biased.biasDegPerSec = 2.0;
  biased.noiseDegPerSec = 0.0;
  biased.facingErrorDeg = 0.0;
  biased.aimJitterDeg = 0.0;
  Pcg32 imuRng(12);
  const auto trace = simulateGyro(traj, biased, imuRng);
  const auto angles = anglesAtStops(trace, traj.front().trueAngleDeg, traj);
  const double earlyErr = std::fabs(angles[1] - traj[1].trueAngleDeg);
  const double lateErr =
      std::fabs(angles.back() - traj.back().trueAngleDeg);
  EXPECT_GT(lateErr, earlyErr + 5.0);
}

TEST(Recorder, RecordingHasExpectedStructure) {
  head::Subject s;
  s.headParams = {0.075, 0.1, 0.09};
  s.pinnaSeed = 13;
  const head::HrtfDatabase db(s);
  const HardwareModel hw;
  const RoomModel room;
  const BinauralRecorder recorder(db, hw, room);
  Pcg32 rng(14);
  const auto chirp = dsp::linearChirp(100.0, 20000.0, 960, 48000.0);
  const auto rec = recorder.recordNearField({-0.3, 0.1}, chirp, rng);
  EXPECT_EQ(rec.left.size(), rec.right.size());
  EXPECT_GT(rec.left.size(), chirp.size());
  EXPECT_GT(dsp::rms(rec.left), 0.0);
  // Source on the left: left ear should be louder.
  EXPECT_GT(dsp::rms(rec.left), dsp::rms(rec.right));
}

TEST(Recorder, SharedNoiseFloorHurtsShadowedEar) {
  head::Subject s;
  s.headParams = {0.075, 0.1, 0.09};
  s.pinnaSeed = 15;
  const head::HrtfDatabase db(s);
  const HardwareModel hw;
  const auto room = RoomModel::anechoic();
  BinauralRecorder::Options opts;
  opts.snrDb = 20.0;
  const BinauralRecorder recorder(db, hw, room, opts);
  Pcg32 rngA(16), rngB(16);
  const auto chirp = dsp::linearChirp(100.0, 20000.0, 960, 48000.0);
  // Record twice with identical noise seeds; difference isolates noise.
  const auto noisy = recorder.recordNearField({-0.35, 0.0}, chirp, rngA);
  BinauralRecorder::Options cleanOpts;
  cleanOpts.snrDb = 300.0;  // effectively noiseless
  const BinauralRecorder cleanRec(db, hw, room, cleanOpts);
  const auto clean = cleanRec.recordNearField({-0.35, 0.0}, chirp, rngB);
  auto snrOf = [&](const std::vector<double>& noisyCh,
                   const std::vector<double>& cleanCh) {
    double sig = 0.0, noise = 0.0;
    const std::size_t n = std::min(noisyCh.size(), cleanCh.size());
    for (std::size_t i = 0; i < n; ++i) {
      sig += cleanCh[i] * cleanCh[i];
      noise += (noisyCh[i] - cleanCh[i]) * (noisyCh[i] - cleanCh[i]);
    }
    return 10.0 * std::log10(sig / noise);
  };
  const double snrLeft = snrOf(noisy.left, clean.left);
  const double snrRight = snrOf(noisy.right, clean.right);
  EXPECT_GT(snrLeft, snrRight + 5.0);  // right ear is shadowed at 90 deg
}

TEST(MeasurementSession, CaptureIsComplete) {
  MeasurementSession::Options opts;
  const MeasurementSession session(opts);
  head::Subject s;
  s.headParams = {0.072, 0.104, 0.088};
  s.pinnaSeed = 17;
  const auto capture = session.run(s, defaultGesture());
  EXPECT_EQ(capture.sampleRate, opts.sampleRate);
  EXPECT_FALSE(capture.sourceSignal.empty());
  EXPECT_FALSE(capture.hardwareResponseEstimate.empty());
  ASSERT_EQ(capture.stops.size(), defaultGesture().stops);
  ASSERT_EQ(capture.truth.trajectory.size(), defaultGesture().stops);
  for (const auto& stop : capture.stops) {
    EXPECT_FALSE(stop.recording.left.empty());
    EXPECT_FALSE(stop.recording.right.empty());
  }
  EXPECT_EQ(capture.truth.subject.pinnaSeed, s.pinnaSeed);
}

TEST(MeasurementSession, RejectsChirpBeyondNyquist) {
  MeasurementSession::Options opts;
  opts.chirpF1Hz = 24000.0;
  EXPECT_THROW((MeasurementSession(opts)), InvalidArgument);
}

}  // namespace
}  // namespace uniq::sim
