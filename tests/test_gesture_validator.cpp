#include "core/gesture_validator.h"

#include <gtest/gtest.h>

namespace uniq::core {
namespace {

SensorFusionResult goodFusion() {
  SensorFusionResult r;
  r.headParams = head::HeadParameters::average();
  r.meanSquaredResidualDeg2 = 9.0;  // RMS 3 deg
  for (int i = 0; i < 30; ++i) {
    FusedStop s;
    s.localized = true;
    s.angleDeg = 6.0 * i;
    s.radiusM = 0.34;
    r.stops.push_back(s);
  }
  r.localizedCount = 30;
  return r;
}

TEST(GestureValidator, AcceptsGoodSweep) {
  const GestureValidator validator;
  const auto report = validator.validate(goodFusion());
  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.issues.empty());
}

TEST(GestureValidator, FlagsPhoneTooClose) {
  auto fusion = goodFusion();
  for (auto& s : fusion.stops) s.radiusM = 0.18;
  const GestureValidator validator;
  const auto report = validator.validate(fusion);
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.issues.empty());
  EXPECT_NE(report.issues[0].find("too close"), std::string::npos);
}

TEST(GestureValidator, FlagsArmDroopOnManyStops) {
  auto fusion = goodFusion();
  // A third of the stops collapse toward the head.
  for (std::size_t i = 0; i < fusion.stops.size(); i += 3)
    fusion.stops[i].radiusM = 0.14;
  const GestureValidator validator;
  const auto report = validator.validate(fusion);
  EXPECT_FALSE(report.ok);
}

TEST(GestureValidator, FlagsLargeResidual) {
  auto fusion = goodFusion();
  fusion.meanSquaredResidualDeg2 = 200.0;  // RMS ~14 deg
  const GestureValidator validator;
  const auto report = validator.validate(fusion);
  EXPECT_FALSE(report.ok);
  bool mentionsDisagree = false;
  for (const auto& issue : report.issues)
    if (issue.find("disagree") != std::string::npos) mentionsDisagree = true;
  EXPECT_TRUE(mentionsDisagree);
}

TEST(GestureValidator, FlagsLowLocalizedFraction) {
  auto fusion = goodFusion();
  for (std::size_t i = 0; i < fusion.stops.size(); ++i)
    fusion.stops[i].localized = i < 10;
  fusion.localizedCount = 10;
  const GestureValidator validator;
  const auto report = validator.validate(fusion);
  EXPECT_FALSE(report.ok);
}

TEST(GestureValidator, CustomThresholds) {
  GestureValidatorOptions opts;
  opts.minMedianRadiusM = 0.10;  // lax
  opts.maxRmsResidualDeg = 30.0;
  const GestureValidator lax(opts);
  auto fusion = goodFusion();
  for (auto& s : fusion.stops) s.radiusM = 0.18;
  fusion.meanSquaredResidualDeg2 = 200.0;
  EXPECT_TRUE(lax.validate(fusion).ok);
}

}  // namespace
}  // namespace uniq::core
