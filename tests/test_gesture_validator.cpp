#include "core/gesture_validator.h"

#include <gtest/gtest.h>

namespace uniq::core {
namespace {

SensorFusionResult goodFusion() {
  SensorFusionResult r;
  r.headParams = head::HeadParameters::average();
  r.meanSquaredResidualDeg2 = 9.0;  // RMS 3 deg
  for (int i = 0; i < 30; ++i) {
    FusedStop s;
    s.localized = true;
    s.angleDeg = 6.0 * i;
    s.radiusM = 0.34;
    r.stops.push_back(s);
  }
  r.localizedCount = 30;
  return r;
}

TEST(GestureValidator, AcceptsGoodSweep) {
  const GestureValidator validator;
  const auto report = validator.validate(goodFusion());
  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.issues.empty());
}

TEST(GestureValidator, FlagsPhoneTooClose) {
  auto fusion = goodFusion();
  for (auto& s : fusion.stops) s.radiusM = 0.18;
  const GestureValidator validator;
  const auto report = validator.validate(fusion);
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.issues.empty());
  EXPECT_NE(report.issues[0].find("too close"), std::string::npos);
}

TEST(GestureValidator, FlagsArmDroopOnManyStops) {
  auto fusion = goodFusion();
  // A third of the stops collapse toward the head.
  for (std::size_t i = 0; i < fusion.stops.size(); i += 3)
    fusion.stops[i].radiusM = 0.14;
  const GestureValidator validator;
  const auto report = validator.validate(fusion);
  EXPECT_FALSE(report.ok);
}

TEST(GestureValidator, FlagsLargeResidual) {
  auto fusion = goodFusion();
  fusion.meanSquaredResidualDeg2 = 200.0;  // RMS ~14 deg
  const GestureValidator validator;
  const auto report = validator.validate(fusion);
  EXPECT_FALSE(report.ok);
  bool mentionsDisagree = false;
  for (const auto& issue : report.issues)
    if (issue.find("disagree") != std::string::npos) mentionsDisagree = true;
  EXPECT_TRUE(mentionsDisagree);
}

TEST(GestureValidator, FlagsLowLocalizedFraction) {
  auto fusion = goodFusion();
  for (std::size_t i = 0; i < fusion.stops.size(); ++i)
    fusion.stops[i].localized = i < 10;
  fusion.localizedCount = 10;
  const GestureValidator validator;
  const auto report = validator.validate(fusion);
  EXPECT_FALSE(report.ok);
}

// A textbook sweep log: monotone clock, monotone 0..170 deg arc.
void cleanLog(std::vector<double>& times, std::vector<double>& angles,
              std::size_t n = 20) {
  times.clear();
  angles.clear();
  for (std::size_t i = 0; i < n; ++i) {
    times.push_back(0.1 * static_cast<double>(i));
    angles.push_back(170.0 * static_cast<double>(i) /
                     static_cast<double>(n - 1));
  }
}

TEST(GestureValidator, ImuLogAcceptsCleanSweep) {
  std::vector<double> times, angles;
  cleanLog(times, angles);
  const GestureValidator validator;
  const auto report = validator.validateImuLog(times, angles);
  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.issues.empty());
}

TEST(GestureValidator, ImuLogRejectsEmptyLog) {
  const GestureValidator validator;
  const auto report = validator.validateImuLog({}, {});
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_NE(report.issues[0].find("empty"), std::string::npos);
}

TEST(GestureValidator, ImuLogRejectsCountMismatch) {
  const GestureValidator validator;
  const auto report = validator.validateImuLog({0.0, 0.1}, {0.0});
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_NE(report.issues[0].find("mismatch"), std::string::npos);
}

TEST(GestureValidator, ImuLogRejectsSingleSample) {
  const GestureValidator validator;
  const auto report = validator.validateImuLog({0.0}, {42.0});
  EXPECT_FALSE(report.ok);
  bool tooShort = false;
  for (const auto& issue : report.issues)
    if (issue.find("too short") != std::string::npos) tooShort = true;
  EXPECT_TRUE(tooShort);
}

TEST(GestureValidator, ImuLogRejectsNonMonotonicTimestamps) {
  std::vector<double> times, angles;
  cleanLog(times, angles);
  times[7] = times[6];  // frozen clock for one sample
  const GestureValidator validator;
  const auto report = validator.validateImuLog(times, angles);
  EXPECT_FALSE(report.ok);
  bool clockIssue = false;
  for (const auto& issue : report.issues)
    if (issue.find("not strictly increasing") != std::string::npos)
      clockIssue = true;
  EXPECT_TRUE(clockIssue);
}

TEST(GestureValidator, ImuLogRejectsMidArcReversal) {
  std::vector<double> times, angles;
  cleanLog(times, angles);
  // The user swings back 40 deg mid-arc before continuing.
  angles[10] = angles[9] - 40.0;
  const GestureValidator validator;
  const auto report = validator.validateImuLog(times, angles);
  EXPECT_FALSE(report.ok);
  bool reversal = false;
  for (const auto& issue : report.issues)
    if (issue.find("reversed direction") != std::string::npos)
      reversal = true;
  EXPECT_TRUE(reversal);
}

TEST(GestureValidator, ImuLogRejectsShortSpan) {
  std::vector<double> times, angles;
  cleanLog(times, angles);
  for (auto& a : angles) a *= 0.3;  // 0..51 deg, well under 120
  const GestureValidator validator;
  const auto report = validator.validateImuLog(times, angles);
  EXPECT_FALSE(report.ok);
  bool span = false;
  for (const auto& issue : report.issues)
    if (issue.find("covers only") != std::string::npos) span = true;
  EXPECT_TRUE(span);
}

TEST(GestureValidator, CustomThresholds) {
  GestureValidatorOptions opts;
  opts.minMedianRadiusM = 0.10;  // lax
  opts.maxRmsResidualDeg = 30.0;
  const GestureValidator lax(opts);
  auto fusion = goodFusion();
  for (auto& s : fusion.stops) s.radiusM = 0.18;
  fusion.meanSquaredResidualDeg2 = 200.0;
  EXPECT_TRUE(lax.validate(fusion).ok);
}

}  // namespace
}  // namespace uniq::core
