#include "core/aoa.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/math_util.h"
#include "dsp/signal_generators.h"
#include "eval/experiments.h"
#include "head/hrtf_database.h"
#include "sim/recorder.h"

namespace uniq::core {
namespace {

constexpr double kFs = 48000.0;

head::Subject testSubject() {
  head::Subject s;
  s.headParams = {0.074, 0.106, 0.091};
  s.pinnaSeed = 61;
  return s;
}

class AoaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    head::HrtfDatabase::Options dbOpts;
    dbOpts.sampleRate = kFs;
    db_ = new head::HrtfDatabase(testSubject(), dbOpts);
    table_ = new FarFieldTable(farTableFromDatabase(*db_));
    hardware_ = new sim::HardwareModel();
    room_ = new sim::RoomModel();
  }
  static void TearDownTestSuite() {
    delete db_;
    delete table_;
    delete hardware_;
    delete room_;
  }

  sim::BinauralRecording record(double angleDeg,
                                const std::vector<double>& signal,
                                bool throughHardware, double snrDb,
                                std::uint64_t seed) const {
    sim::BinauralRecorder::Options opts;
    opts.snrDb = snrDb;
    const sim::BinauralRecorder recorder(*db_, *hardware_, *room_, opts);
    Pcg32 rng(seed);
    return recorder.recordFarField(angleDeg, signal, rng, throughHardware);
  }

  static head::HrtfDatabase* db_;
  static FarFieldTable* table_;
  static sim::HardwareModel* hardware_;
  static sim::RoomModel* room_;
};

head::HrtfDatabase* AoaTest::db_ = nullptr;
FarFieldTable* AoaTest::table_ = nullptr;
sim::HardwareModel* AoaTest::hardware_ = nullptr;
sim::RoomModel* AoaTest::room_ = nullptr;

TEST_F(AoaTest, TemplateDelayMonotoneUpToNinety) {
  const AoaEstimator est(*table_);
  // t(theta) = tapLeft - tapRight: negative on the left side, decreasing
  // toward 90 then rising again (front/back ambiguity).
  EXPECT_NEAR(est.templateDelaySec(0.0), 0.0, 5e-5);
  EXPECT_NEAR(est.templateDelaySec(180.0), 0.0, 5e-5);
  EXPECT_LT(est.templateDelaySec(90.0), est.templateDelaySec(30.0));
  EXPECT_LT(est.templateDelaySec(90.0), est.templateDelaySec(150.0));
  EXPECT_LT(est.templateDelaySec(90.0), -5e-4);
}

class KnownSourceSweep : public AoaTest,
                         public ::testing::WithParamInterface<double> {};

TEST_P(KnownSourceSweep, TrueTemplatesGiveAccurateAoa) {
  const double truth = GetParam();
  const auto chirp = dsp::linearChirp(100.0, 20000.0, 4800, kFs);
  const auto rec = record(truth, chirp, true, 25.0,
                          static_cast<std::uint64_t>(truth * 7 + 1));
  const AoaEstimator est(*table_);
  const auto result = est.estimateKnown(rec.left, rec.right, chirp);
  EXPECT_LT(angularDistanceDeg(result.angleDeg, truth), 6.0);
}

INSTANTIATE_TEST_SUITE_P(Angles, KnownSourceSweep,
                         ::testing::Values(10.0, 35.0, 60.0, 90.0, 120.0,
                                           145.0, 170.0));

TEST_F(AoaTest, KnownSourcePersonalBeatsWrongTemplates) {
  head::Subject other;
  other.headParams = {0.065, 0.112, 0.080};
  other.pinnaSeed = 777;
  head::HrtfDatabase::Options dbOpts;
  dbOpts.sampleRate = kFs;
  const head::HrtfDatabase otherDb(other, dbOpts);
  const auto otherTable = farTableFromDatabase(otherDb);

  const auto chirp = dsp::linearChirp(100.0, 20000.0, 4800, kFs);
  double errPersonal = 0.0, errOther = 0.0;
  for (double truth : {20.0, 55.0, 75.0, 110.0, 140.0, 165.0}) {
    const auto rec = record(truth, chirp, true, 25.0,
                            static_cast<std::uint64_t>(truth) * 3 + 5);
    const AoaEstimator personal(*table_);
    const AoaEstimator mismatched(otherTable);
    errPersonal += angularDistanceDeg(
        personal.estimateKnown(rec.left, rec.right, chirp).angleDeg, truth);
    errOther += angularDistanceDeg(
        mismatched.estimateKnown(rec.left, rec.right, chirp).angleDeg, truth);
  }
  EXPECT_LT(errPersonal, errOther);
}

class UnknownSourceSweep : public AoaTest,
                           public ::testing::WithParamInterface<double> {};

TEST_P(UnknownSourceSweep, WhiteNoiseUnknownSourceAccurate) {
  const double truth = GetParam();
  Pcg32 sigRng(static_cast<std::uint64_t>(truth) + 11);
  const auto noise = dsp::whiteNoise(24000, sigRng, 0.25);
  const auto rec = record(truth, noise, false, 25.0,
                          static_cast<std::uint64_t>(truth) * 13 + 3);
  const AoaEstimator est(*table_);
  const auto result = est.estimateUnknown(rec.left, rec.right);
  EXPECT_LT(angularDistanceDeg(result.angleDeg, truth), 15.0);
  EXPECT_EQ(truth <= 90.0, result.angleDeg <= 90.0) << "front/back flip";
}

INSTANTIATE_TEST_SUITE_P(Angles, UnknownSourceSweep,
                         ::testing::Values(15.0, 45.0, 75.0, 105.0, 140.0,
                                           165.0));

TEST_F(AoaTest, UnknownSourceRejectsEmpty) {
  const AoaEstimator est(*table_);
  std::vector<double> empty;
  std::vector<double> some(100, 0.1);
  EXPECT_THROW(est.estimateUnknown(empty, some), InvalidArgument);
  EXPECT_THROW(est.estimateKnown(some, some, empty), InvalidArgument);
}

TEST_F(AoaTest, TrainLambdaReturnsGridMember) {
  const auto chirp = dsp::linearChirp(100.0, 20000.0, 4800, kFs);
  std::vector<double> truths{30.0, 90.0, 150.0};
  std::vector<std::vector<double>> lefts, rights;
  for (double t : truths) {
    const auto rec =
        record(t, chirp, true, 25.0, static_cast<std::uint64_t>(t) + 29);
    lefts.push_back(rec.left);
    rights.push_back(rec.right);
  }
  const std::vector<double> grid{500.0, 3000.0, 10000.0};
  const double lambda =
      trainLambda(*table_, grid, truths, lefts, rights, chirp);
  EXPECT_TRUE(lambda == 500.0 || lambda == 3000.0 || lambda == 10000.0);
}

TEST_F(AoaTest, KnownSourceDegradesGracefullyOnDeadChannel) {
  // A dead left channel means no detectable first tap: the Eq. 9 path has
  // nothing to anchor on. The estimator must fall back instead of throwing
  // and mark the result as degraded with reduced confidence.
  const auto chirp = dsp::linearChirp(100.0, 20000.0, 4800, kFs);
  const auto rec = record(60.0, chirp, true, 25.0, 17);
  const std::vector<double> dead(rec.left.size(), 0.0);
  const AoaEstimator est(*table_);
  AoaEstimate result;
  EXPECT_NO_THROW(result = est.estimateKnown(dead, rec.right, chirp));
  EXPECT_TRUE(result.degraded);
  EXPECT_LE(result.confidence, 0.5);
  EXPECT_GE(result.angleDeg, 0.0);
  EXPECT_LE(result.angleDeg, 180.0);
}

TEST_F(AoaTest, HealthyEstimateCarriesConfidence) {
  const auto chirp = dsp::linearChirp(100.0, 20000.0, 4800, kFs);
  const auto rec = record(90.0, chirp, true, 25.0, 23);
  const AoaEstimator est(*table_);
  const auto result = est.estimateKnown(rec.left, rec.right, chirp);
  EXPECT_FALSE(result.degraded);
  EXPECT_GE(result.scoreMargin, 0.0);
  EXPECT_GT(result.confidence, 0.0);
  EXPECT_LT(result.confidence, 1.0);
}

TEST_F(AoaTest, EstimatorRejectsBadTable) {
  FarFieldTable bad = *table_;
  bad.byDegree.resize(10);
  EXPECT_THROW(AoaEstimator{bad}, InvalidArgument);
}

}  // namespace
}  // namespace uniq::core
