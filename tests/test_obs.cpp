// Tests for the observability layer (src/obs): trace spans, the metrics
// registry, the exporters, and the pipeline RunReport integration.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "head/subject.h"
#include "obs/export.h"
#include "obs/json_check.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sim/measurement_session.h"

namespace uniq {
namespace {

const obs::SpanRecord* findSpan(const std::vector<obs::SpanRecord>& spans,
                                const std::string& name) {
  for (const auto& s : spans)
    if (s.name == name) return &s;
  return nullptr;
}

TEST(ObsTrace, RecordsNestingParentAndDepth) {
  obs::setTraceEnabled(true);
  obs::clearTrace();
  {
    UNIQ_SPAN("outer");
    {
      UNIQ_SPAN("middle");
      { UNIQ_SPAN("inner"); }
    }
    { UNIQ_SPAN("sibling"); }
  }
  const auto spans = obs::collectSpans();
  ASSERT_EQ(spans.size(), 4u);

  const auto* outer = findSpan(spans, "outer");
  const auto* middle = findSpan(spans, "middle");
  const auto* inner = findSpan(spans, "inner");
  const auto* sibling = findSpan(spans, "sibling");
  ASSERT_TRUE(outer && middle && inner && sibling);

  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(middle->parent, outer->id);
  EXPECT_EQ(middle->depth, 1u);
  EXPECT_EQ(inner->parent, middle->id);
  EXPECT_EQ(inner->depth, 2u);
  EXPECT_EQ(sibling->parent, outer->id);
  EXPECT_EQ(sibling->depth, 1u);

  // Children are contained in the parent's interval, with tolerance for
  // clock granularity.
  EXPECT_GE(middle->startUs + 1e-3, outer->startUs);
  EXPECT_LE(middle->startUs + middle->durUs,
            outer->startUs + outer->durUs + 1e-3);
  // collectSpans() sorts by start time.
  for (std::size_t i = 1; i < spans.size(); ++i)
    EXPECT_LE(spans[i - 1].startUs, spans[i].startUs);
}

TEST(ObsTrace, RuntimeDisableRecordsNothing) {
  obs::setTraceEnabled(true);
  obs::clearTrace();
  obs::setTraceEnabled(false);
  { UNIQ_SPAN("invisible"); }
  EXPECT_TRUE(obs::collectSpans().empty());
  obs::setTraceEnabled(true);
  { UNIQ_SPAN("visible"); }
  EXPECT_EQ(obs::collectSpans().size(), 1u);
}

TEST(ObsTrace, SpansFromPoolThreadsCarryTheirOwnTid) {
  obs::setTraceEnabled(true);
  obs::clearTrace();
  common::ThreadPool pool(2);
  pool.parallelFor(0, 8, [](std::size_t) { UNIQ_SPAN("task"); });
  const auto spans = obs::collectSpans();
  ASSERT_EQ(spans.size(), 8u);
  for (const auto& s : spans) {
    EXPECT_EQ(s.name, "task");
    // Pool-thread spans are roots of their own threads.
    EXPECT_EQ(s.parent, 0u);
    EXPECT_EQ(s.depth, 0u);
  }
}

TEST(ObsMetrics, HistogramBinningEdges) {
  // Buckets: [1,2) [2,4) [4,8) [8,16), plus underflow (<1) and
  // overflow (>=16).
  obs::Histogram h(obs::HistogramOptions{1.0, 2.0, 4});
  ASSERT_EQ(h.edges().size(), 5u);
  EXPECT_DOUBLE_EQ(h.edges().front(), 1.0);
  EXPECT_DOUBLE_EQ(h.edges().back(), 16.0);

  h.observe(0.999);  // underflow
  h.observe(0.0);    // underflow (below lo)
  h.observe(-3.0);   // underflow
  h.observe(1.0);    // exactly lower edge of bucket 0
  h.observe(1.999);  // still bucket 0
  h.observe(2.0);    // edge value lands in the bucket that starts there
  h.observe(15.999); // last finite bucket
  h.observe(16.0);   // overflow edge
  h.observe(1e9);    // overflow
  h.observe(std::nan(""));  // NaN counts as underflow, never throws

  EXPECT_EQ(h.underflow(), 4u);
  EXPECT_EQ(h.binCount(0), 2u);
  EXPECT_EQ(h.binCount(1), 1u);
  EXPECT_EQ(h.binCount(2), 0u);
  EXPECT_EQ(h.binCount(3), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 10u);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.binCount(0), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(ObsMetrics, ConcurrentCounterIncrementsFromPool) {
  obs::Counter counter;
  obs::Histogram hist(obs::HistogramOptions{1.0, 2.0, 8});
  common::ThreadPool pool(4);
  constexpr std::size_t kIters = 20000;
  pool.parallelFor(0, kIters, [&](std::size_t i) {
    counter.inc();
    hist.observe(static_cast<double>(i % 100));
  });
  EXPECT_EQ(counter.value(), kIters);
  EXPECT_EQ(hist.count(), kIters);
  std::uint64_t total = hist.underflow() + hist.overflow();
  for (std::size_t k = 0; k + 1 < hist.edges().size(); ++k)
    total += hist.binCount(k);
  EXPECT_EQ(total, kIters);
}

TEST(ObsMetrics, GaugeSetMaxIsAHighWaterMark) {
  obs::Gauge g;
  g.setMax(3.0);
  g.setMax(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.setMax(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(ObsMetrics, RegistryFindsOrCreatesAndSnapshots) {
  obs::Registry reg;
  reg.counter("b.count").inc(2);
  reg.counter("a.count").inc(1);
  EXPECT_EQ(&reg.counter("a.count"), &reg.counter("a.count"));
  reg.gauge("g").set(4.5);
  reg.histogram("h", obs::HistogramOptions{1.0, 2.0, 4}).observe(3.0);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  // Snapshot entries are sorted by name.
  EXPECT_EQ(snap.counters[0].name, "a.count");
  EXPECT_EQ(snap.counters[1].name, "b.count");
  EXPECT_EQ(snap.counter("b.count"), 2u);
  EXPECT_DOUBLE_EQ(snap.gauge("g"), 4.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);

  reg.resetAll();
  const auto zeroed = reg.snapshot();
  EXPECT_EQ(zeroed.counter("b.count"), 0u);
  EXPECT_DOUBLE_EQ(zeroed.gauge("g"), 0.0);
  EXPECT_EQ(zeroed.histograms[0].count, 0u);
}

TEST(ObsExport, TraceAndMetricsJsonAreWellFormed) {
  obs::setTraceEnabled(true);
  obs::clearTrace();
  {
    UNIQ_SPAN("json.outer");
    UNIQ_SPAN("json \"quoted\" \\ name\nnewline");
  }
  const auto traceJson = obs::traceEventJson(obs::collectSpans());
  std::string error;
  EXPECT_TRUE(obs::validateJson(traceJson, &error)) << error;
  EXPECT_NE(traceJson.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(traceJson.find("json.outer"), std::string::npos);

  obs::Registry reg;
  reg.counter("weird \"name\"\t").inc();
  reg.gauge("inf.gauge").set(std::numeric_limits<double>::infinity());
  reg.histogram("h", obs::HistogramOptions{0.5, 4.0, 3}).observe(2.0);
  const auto metricsJson = obs::metricsJson(reg.snapshot());
  EXPECT_TRUE(obs::validateJson(metricsJson, &error)) << error;
  EXPECT_NE(metricsJson.find("\"counters\""), std::string::npos);
  EXPECT_NE(metricsJson.find("\"histograms\""), std::string::npos);

  // Empty inputs still serialize to valid documents.
  EXPECT_TRUE(obs::validateJson(obs::traceEventJson({}), &error)) << error;
  EXPECT_TRUE(obs::validateJson(obs::metricsJson(obs::MetricsSnapshot{}),
                                &error))
      << error;
}

TEST(ObsExport, ValidatorRejectsMalformedJson) {
  std::string error;
  EXPECT_FALSE(obs::validateJson("", &error));
  EXPECT_FALSE(obs::validateJson("{", &error));
  EXPECT_FALSE(obs::validateJson("{\"a\":1,}", &error));
  EXPECT_FALSE(obs::validateJson("[1 2]", &error));
  EXPECT_FALSE(obs::validateJson("{\"a\":01}", &error));
  EXPECT_FALSE(obs::validateJson("\"unterminated", &error));
  EXPECT_FALSE(obs::validateJson("nul", &error));
  EXPECT_FALSE(obs::validateJson("[1] trailing", &error));
  EXPECT_TRUE(obs::validateJson("[1,2,{\"k\":null},true,-1.5e3]", &error))
      << error;
}

TEST(ObsReport, StageTimerIsANoOpWithoutAReport) {
  obs::StageTimer timer(nullptr, "ignored");
  EXPECT_EQ(timer.stage(), nullptr);
  timer.stop();  // must not crash
}

TEST(ObsReport, SummaryTableListsStagesInOrder) {
  obs::RunReport report;
  report.stage("alpha").wallMs = 1.25;
  report.stage("alpha").set("k", 3.0);
  report.stage("beta").wallMs = 0.5;
  EXPECT_EQ(report.stageNames(),
            (std::vector<std::string>{"alpha", "beta"}));
  const auto table = report.summaryTable();
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
  EXPECT_NE(table.find("k=3"), std::string::npos);
  EXPECT_LT(table.find("alpha"), table.find("beta"));
  EXPECT_EQ(report.find("gamma"), nullptr);
}

TEST(ObsReport, SummarizeMetricsFiltersByPrefix) {
  obs::Registry reg;
  reg.counter("fft.plan.hits").inc(3);
  reg.counter("other.count").inc(9);
  reg.gauge("pool.threads").set(2.0);
  const auto all = obs::summarizeMetrics(reg.snapshot());
  EXPECT_NE(all.find("other.count"), std::string::npos);
  const auto filtered =
      obs::summarizeMetrics(reg.snapshot(), {"fft.", "pool."});
  EXPECT_NE(filtered.find("fft.plan.hits 3"), std::string::npos);
  EXPECT_NE(filtered.find("pool.threads 2"), std::string::npos);
  EXPECT_EQ(filtered.find("other.count"), std::string::npos);
}

// End-to-end: a small calibrate run reports every pipeline stage, and the
// trace contains the stage spans the docs promise.
TEST(ObsReport, SeverityNamesAreLowercaseLabels) {
  EXPECT_STREQ(obs::severityName(obs::Severity::kInfo), "info");
  EXPECT_STREQ(obs::severityName(obs::Severity::kWarning), "warning");
  EXPECT_STREQ(obs::severityName(obs::Severity::kError), "error");
}

TEST(ObsReport, DiagnosticsWorstSeverityAndText) {
  obs::RunReport report;
  EXPECT_EQ(report.worstSeverity(), obs::Severity::kInfo);
  EXPECT_TRUE(report.diagnosticsText().empty());

  report.diagnose("fusion", obs::Severity::kInfo, "rejected 1 outlier stop",
                  {30});
  EXPECT_EQ(report.worstSeverity(), obs::Severity::kInfo);
  report.diagnose("extract", obs::Severity::kWarning, "2 stops clipped",
                  {3, 7});
  EXPECT_EQ(report.worstSeverity(), obs::Severity::kWarning);
  report.diagnose("pipeline", obs::Severity::kError, "stage failed");
  EXPECT_EQ(report.worstSeverity(), obs::Severity::kError);

  const auto text = report.diagnosticsText();
  EXPECT_NE(
      text.find("[info] fusion: rejected 1 outlier stop (stops 30)"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("[warning] extract: 2 stops clipped (stops 3, 7)"),
            std::string::npos)
      << text;
  // No "(stops ...)" suffix when a diagnostic names no stops.
  EXPECT_NE(text.find("[error] pipeline: stage failed\n"), std::string::npos)
      << text;
}

TEST(ObsReport, SummaryTableCarriesStatusLine) {
  obs::RunReport report;
  report.stage("fusion").set("stops", 30.0);
  EXPECT_EQ(report.summaryTable().find("status:"), std::string::npos);
  report.status = "degraded";
  EXPECT_NE(report.summaryTable().find("status: degraded"),
            std::string::npos);
}

TEST(ObsPipelineIntegration, CalibrateRunReportsAllStages) {
  obs::setTraceEnabled(true);
  obs::clearTrace();

  const auto subject = head::makePopulation(1, 7)[0];
  sim::GestureProfile gesture = sim::defaultGesture();
  gesture.stops = 10;
  const sim::MeasurementSession session;
  const auto capture = session.run(subject, gesture);

  const core::CalibrationPipeline pipeline;
  obs::RunReport report;
  const auto personal = pipeline.run(capture, &report);

  EXPECT_EQ(report.stageNames(),
            (std::vector<std::string>{"extract", "fusion", "nearfield",
                                      "nearfar", "gesture"}));
  for (const auto& stage : report.stages) EXPECT_GE(stage.wallMs, 0.0);

  const auto* extract = report.find("extract");
  ASSERT_NE(extract, nullptr);
  EXPECT_DOUBLE_EQ(extract->value("stops"), 10.0);
  EXPECT_GE(extract->value("tapsDetected"), 6.0);

  const auto* fusion = report.find("fusion");
  ASSERT_NE(fusion, nullptr);
  EXPECT_GE(fusion->value("iterations"), 1.0);
  EXPECT_GE(fusion->value("restarts"), 1.0);
  EXPECT_TRUE(fusion->has("objectiveDeg2"));
  EXPECT_GE(fusion->value("residualRmsDeg"), 0.0);

  const auto* nearfield = report.find("nearfield");
  ASSERT_NE(nearfield, nullptr);
  EXPECT_GE(nearfield->value("usableStops"), 4.0);
  EXPECT_GT(nearfield->value("medianRadiusM"), 0.0);
  EXPECT_GE(nearfield->value("tapAlignRmsUs"), 0.0);

  const auto* nearfar = report.find("nearfar");
  ASSERT_NE(nearfar, nullptr);
  EXPECT_DOUBLE_EQ(nearfar->value("entries"), 181.0);

  // Instrumented result must equal the plain run (same capture, same
  // deterministic pipeline).
  const auto plain = pipeline.run(capture);
  EXPECT_EQ(plain.fusion.iterations, personal.fusion.iterations);
  EXPECT_DOUBLE_EQ(plain.headParams.a, personal.headParams.a);

  const auto spans = obs::collectSpans();
  for (const char* name :
       {"pipeline.run", "pipeline.extract_channels", "dsf.solve_robust",
        "dsf.restart", "nearfield.build", "nearfar.convert"}) {
    EXPECT_NE(findSpan(spans, name), nullptr) << "missing span: " << name;
  }
  const auto* run = findSpan(spans, "pipeline.run");
  const auto* solve = findSpan(spans, "dsf.solve_robust");
  ASSERT_TRUE(run && solve);
  EXPECT_GT(run->durUs, 0.0);

  // The span set exports as valid Chrome trace JSON.
  std::string error;
  EXPECT_TRUE(obs::validateJson(obs::traceEventJson(spans), &error)) << error;
}

}  // namespace
}  // namespace uniq
