#pragma once

#include <cmath>
#include <vector>

#include "head/hrir.h"

namespace uniq::test {

/// Max absolute element difference between two equal-length vectors.
inline double maxAbsDiff(const std::vector<double>& a,
                         const std::vector<double>& b) {
  double m = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  for (std::size_t i = n; i < a.size(); ++i) m = std::max(m, std::fabs(a[i]));
  for (std::size_t i = n; i < b.size(); ++i) m = std::max(m, std::fabs(b[i]));
  return m;
}

inline double energy(const std::vector<double>& v) {
  double e = 0.0;
  for (double x : v) e += x * x;
  return e;
}

}  // namespace uniq::test
