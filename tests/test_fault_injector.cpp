// FaultInjector unit tests: determinism, per-kind corruption signatures,
// and injection-log bookkeeping. The injector is the ground truth the
// robustness suite measures against, so it has to be exactly reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "head/subject.h"
#include "sim/fault_injector.h"
#include "sim/measurement_session.h"
#include "sim/trajectory.h"

namespace uniq {
namespace {

sim::CalibrationCapture makeCapture(std::size_t stops = 24) {
  head::Subject subject;
  subject.name = "fault-probe";
  subject.headParams = head::HeadParameters::average();
  subject.pinnaSeed = 99;
  const sim::MeasurementSession session;
  auto gesture = sim::defaultGesture();
  gesture.stops = stops;
  return session.run(subject, gesture);
}

double peakAbs(const std::vector<double>& x) {
  double peak = 0.0;
  for (double v : x) peak = std::max(peak, std::fabs(v));
  return peak;
}

TEST(FaultInjector, SameSeedSameCorruption) {
  const auto clean = makeCapture();
  sim::FaultInjector a(77), b(77);
  a.add(sim::FaultKind::kBurstNoise, 0.7);
  b.add(sim::FaultKind::kBurstNoise, 0.7);
  const auto ca = a.apply(clean);
  const auto cb = b.apply(clean);
  ASSERT_EQ(ca.stops.size(), cb.stops.size());
  for (std::size_t i = 0; i < ca.stops.size(); ++i) {
    ASSERT_EQ(ca.stops[i].recording.left.size(),
              cb.stops[i].recording.left.size());
    for (std::size_t s = 0; s < ca.stops[i].recording.left.size(); ++s)
      ASSERT_DOUBLE_EQ(ca.stops[i].recording.left[s],
                       cb.stops[i].recording.left[s]);
  }
}

TEST(FaultInjector, DifferentSeedDifferentStops) {
  const auto clean = makeCapture();
  sim::FaultInjectionLog logA, logB;
  sim::FaultInjector(1).add(sim::FaultKind::kAudioDropout, 0.5).apply(clean,
                                                                      &logA);
  sim::FaultInjector(2).add(sim::FaultKind::kAudioDropout, 0.5).apply(clean,
                                                                      &logB);
  // Both corrupt the same number of stops but (with overwhelming
  // probability) not the same set.
  ASSERT_EQ(logA.faults.size(), 1u);
  ASSERT_EQ(logB.faults.size(), 1u);
  EXPECT_EQ(logA.faults[0].stops.size(), logB.faults[0].stops.size());
}

TEST(FaultInjector, CleanCaptureUntouched) {
  const auto clean = makeCapture(12);
  const sim::FaultInjector injector(5);  // no specs queued
  const auto out = injector.apply(clean);
  ASSERT_EQ(out.stops.size(), clean.stops.size());
  for (std::size_t i = 0; i < out.stops.size(); ++i) {
    EXPECT_DOUBLE_EQ(out.stops[i].imuAngleDeg, clean.stops[i].imuAngleDeg);
    for (std::size_t s = 0; s < out.stops[i].recording.left.size(); ++s)
      ASSERT_DOUBLE_EQ(out.stops[i].recording.left[s],
                       clean.stops[i].recording.left[s]);
  }
}

TEST(FaultInjector, ClippingFlattensPeaks) {
  const auto clean = makeCapture(12);
  sim::FaultInjectionLog log;
  sim::FaultInjector injector(9);
  injector.add(sim::FaultSpec{sim::FaultKind::kAudioClipping, 0.8, 0.5});
  const auto out = injector.apply(clean, &log);
  ASSERT_EQ(log.faults.size(), 1u);
  EXPECT_EQ(log.faults[0].stops.size(), 6u);  // 50% of 12
  for (std::size_t i : log.faults[0].stops) {
    // Clamp level is (1 - 0.85*0.8) = 32% of the clean peak.
    EXPECT_LT(peakAbs(out.stops[i].recording.left),
              0.5 * peakAbs(clean.stops[i].recording.left));
  }
}

TEST(FaultInjector, MissingStopsShrinkTheCapture) {
  const auto clean = makeCapture(20);
  sim::FaultInjectionLog log;
  sim::FaultInjector injector(3);
  injector.add(sim::FaultSpec{sim::FaultKind::kMissingStops, 1.0, 0.25});
  const auto out = injector.apply(clean, &log);
  EXPECT_EQ(out.stops.size(), 15u);
  EXPECT_EQ(log.corruptedStops().size(), 5u);
}

TEST(FaultInjector, SwappedEarsIsAnExactExchange) {
  const auto clean = makeCapture(10);
  sim::FaultInjectionLog log;
  sim::FaultInjector injector(11);
  injector.add(sim::FaultSpec{sim::FaultKind::kSwappedEars, 0.5, 0.3});
  const auto out = injector.apply(clean, &log);
  for (std::size_t i : log.faults[0].stops) {
    ASSERT_EQ(out.stops[i].recording.left.size(),
              clean.stops[i].recording.right.size());
    for (std::size_t s = 0; s < out.stops[i].recording.left.size(); ++s) {
      ASSERT_DOUBLE_EQ(out.stops[i].recording.left[s],
                       clean.stops[i].recording.right[s]);
      ASSERT_DOUBLE_EQ(out.stops[i].recording.right[s],
                       clean.stops[i].recording.left[s]);
    }
  }
}

TEST(FaultInjector, FailedChannelSilencesExactlyOneEar) {
  const auto clean = makeCapture(10);
  sim::FaultInjectionLog log;
  sim::FaultInjector injector(13);
  injector.add(sim::FaultSpec{sim::FaultKind::kFailedChannel, 0.5, 0.3});
  const auto out = injector.apply(clean, &log);
  ASSERT_FALSE(log.faults[0].stops.empty());
  for (std::size_t i : log.faults[0].stops) {
    const double l = peakAbs(out.stops[i].recording.left);
    const double r = peakAbs(out.stops[i].recording.right);
    EXPECT_TRUE((l == 0.0) != (r == 0.0))
        << "stop " << i << ": exactly one ear must be dead";
  }
}

TEST(FaultInjector, NameRoundTripAndUnknownNameThrows) {
  for (const auto kind : sim::allFaultKinds())
    EXPECT_EQ(sim::faultKindFromName(sim::faultKindName(kind)), kind);
  EXPECT_THROW(sim::faultKindFromName("sharknado"), InvalidArgument);
}

TEST(FaultInjector, SeverityOutOfRangeThrows) {
  sim::FaultInjector injector(1);
  EXPECT_THROW(injector.add(sim::FaultKind::kGyroBias, 1.5), InvalidArgument);
  EXPECT_THROW(injector.add(sim::FaultKind::kGyroBias, -0.1),
               InvalidArgument);
}

}  // namespace
}  // namespace uniq
