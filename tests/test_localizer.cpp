#include "core/localizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "geometry/diffraction.h"
#include "geometry/polar.h"

namespace uniq::core {
namespace {

struct AngleRadius {
  double angleDeg;
  double radiusM;
};

class LocalizerRoundTrip : public ::testing::TestWithParam<AngleRadius> {
 protected:
  geo::HeadBoundary head_{0.073, 0.102, 0.088, 256};
};

TEST_P(LocalizerRoundTrip, RecoversForwardModelPosition) {
  const auto p = GetParam();
  const geo::Vec2 pos = geo::pointFromPolarDeg(p.angleDeg, p.radiusM);
  const double tL =
      geo::nearFieldPath(head_, pos, geo::Ear::kLeft).length / kSpeedOfSound;
  const double tR =
      geo::nearFieldPath(head_, pos, geo::Ear::kRight).length / kSpeedOfSound;
  const Localizer localizer(head_);
  const auto fix = localizer.locate(tL, tR, p.angleDeg + 3.0);
  ASSERT_TRUE(fix.has_value());
  EXPECT_NEAR(fix->angleDeg, p.angleDeg, 1.0);
  EXPECT_NEAR(fix->radiusM, p.radiusM, 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LocalizerRoundTrip,
    ::testing::Values(AngleRadius{10, 0.3}, AngleRadius{30, 0.25},
                      AngleRadius{45, 0.4}, AngleRadius{60, 0.35},
                      AngleRadius{75, 0.3}, AngleRadius{105, 0.3},
                      AngleRadius{120, 0.45}, AngleRadius{150, 0.35},
                      AngleRadius{170, 0.3}, AngleRadius{45, 0.6}));

class LocalizerTest : public ::testing::Test {
 protected:
  geo::HeadBoundary head_{0.073, 0.102, 0.088, 256};
  Localizer localizer_{head_};

  std::pair<double, double> delaysAt(double angleDeg, double radiusM) const {
    const geo::Vec2 pos = geo::pointFromPolarDeg(angleDeg, radiusM);
    return {geo::nearFieldPath(head_, pos, geo::Ear::kLeft).length /
                kSpeedOfSound,
            geo::nearFieldPath(head_, pos, geo::Ear::kRight).length /
                kSpeedOfSound};
  }
};

TEST_F(LocalizerTest, FrontBackPairFound) {
  // A front position's delays usually admit a back-side solution as well.
  const auto [tL, tR] = delaysAt(40.0, 0.35);
  const auto fixes = localizer_.locateAll(tL, tR);
  ASSERT_GE(fixes.size(), 1u);
  bool hasFront = false;
  for (const auto& f : fixes) {
    if (std::fabs(f.angleDeg - 40.0) < 2.0) hasFront = true;
  }
  EXPECT_TRUE(hasFront);
  if (fixes.size() >= 2) {
    // The ambiguous twin sits on the other side of the ear axis.
    bool hasBack = false;
    for (const auto& f : fixes)
      if (f.angleDeg > 90.0) hasBack = true;
    EXPECT_TRUE(hasBack);
  }
}

TEST_F(LocalizerTest, ImuDisambiguatesFrontBack) {
  const auto [tL, tR] = delaysAt(40.0, 0.35);
  const auto fixes = localizer_.locateAll(tL, tR);
  if (fixes.size() < 2) GTEST_SKIP() << "no ambiguity for this geometry";
  const auto front = localizer_.locate(tL, tR, 35.0);
  const auto back = localizer_.locate(tL, tR, 150.0);
  ASSERT_TRUE(front && back);
  EXPECT_LT(front->angleDeg, 90.0);
  EXPECT_GT(back->angleDeg, 90.0);
}

TEST_F(LocalizerTest, ApproximateFallbackOnSlightMismatch) {
  const auto [tL, tR] = delaysAt(90.0, 0.35);
  // Inflate the interaural difference slightly beyond the model's maximum.
  const double tRBad = tR + 8.0e-6;  // +2.7 mm
  const auto fix = localizer_.locate(tL, tRBad, 90.0);
  ASSERT_TRUE(fix.has_value());
  EXPECT_NEAR(fix->angleDeg, 90.0, 8.0);
}

TEST_F(LocalizerTest, GrossMismatchReturnsNothing) {
  const auto [tL, tR] = delaysAt(60.0, 0.35);
  const auto fix = localizer_.locate(tL, tR + 1.0e-3, 60.0);  // +34 cm
  EXPECT_FALSE(fix.has_value());
}

TEST_F(LocalizerTest, RejectsNonPositiveDelays) {
  EXPECT_THROW(localizer_.locateAll(-1e-3, 1e-3), InvalidArgument);
  EXPECT_THROW(localizer_.locateAll(1e-3, 0.0), InvalidArgument);
}

TEST_F(LocalizerTest, RejectsBadOptions) {
  LocalizerOptions opts;
  opts.minRadiusM = 0.05;  // inside the head
  EXPECT_THROW(Localizer(head_, opts), InvalidArgument);
  LocalizerOptions opts2;
  opts2.maxRadiusM = opts2.minRadiusM;
  EXPECT_THROW(Localizer(head_, opts2), InvalidArgument);
}

}  // namespace
}  // namespace uniq::core
