#include "dsp/fft.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/random.h"

namespace uniq::dsp {
namespace {

TEST(FftHelpers, NextPowerOfTwo) {
  EXPECT_EQ(nextPowerOfTwo(1), 1u);
  EXPECT_EQ(nextPowerOfTwo(2), 2u);
  EXPECT_EQ(nextPowerOfTwo(3), 4u);
  EXPECT_EQ(nextPowerOfTwo(17), 32u);
  EXPECT_EQ(nextPowerOfTwo(1024), 1024u);
  EXPECT_EQ(nextPowerOfTwo(1025), 2048u);
}

TEST(FftHelpers, IsPowerOfTwo) {
  EXPECT_TRUE(isPowerOfTwo(1));
  EXPECT_TRUE(isPowerOfTwo(2));
  EXPECT_TRUE(isPowerOfTwo(4096));
  EXPECT_FALSE(isPowerOfTwo(0));
  EXPECT_FALSE(isPowerOfTwo(3));
  EXPECT_FALSE(isPowerOfTwo(4097));
}

TEST(Fft, RejectsNonPowerOfTwoInPlace) {
  std::vector<Complex> data(3);
  EXPECT_THROW(fftPow2InPlace(data, false), InvalidArgument);
}

TEST(Fft, RejectsEmpty) {
  std::vector<Complex> empty;
  EXPECT_THROW(fft(empty), InvalidArgument);
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<Complex> data(64, Complex(0, 0));
  data[0] = Complex(1, 0);
  fftPow2InPlace(data, false);
  for (const auto& v : data) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SinusoidConcentratesInOneBin) {
  const std::size_t n = 256;
  const std::size_t bin = 12;
  std::vector<Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = Complex(
        std::cos(kTwoPi * static_cast<double>(bin * i) / static_cast<double>(n)),
        0);
  }
  fftPow2InPlace(data, false);
  EXPECT_NEAR(std::abs(data[bin]), static_cast<double>(n) / 2, 1e-9);
  EXPECT_NEAR(std::abs(data[n - bin]), static_cast<double>(n) / 2, 1e-9);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == bin || k == n - bin) continue;
    EXPECT_LT(std::abs(data[k]), 1e-9) << "leakage at bin " << k;
  }
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, ForwardInverseIsIdentity) {
  const std::size_t n = GetParam();
  Pcg32 rng(n * 31 + 1);
  std::vector<Complex> input(n);
  for (auto& v : input) v = Complex(rng.gaussian(), rng.gaussian());
  const auto spectrum = fft(input, false);
  const auto back = fft(spectrum, true);
  ASSERT_EQ(back.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i].real(), input[i].real(), 1e-9);
    EXPECT_NEAR(back[i].imag(), input[i].imag(), 1e-9);
  }
}

TEST_P(FftRoundTrip, ParsevalHolds) {
  const std::size_t n = GetParam();
  Pcg32 rng(n * 7 + 3);
  std::vector<Complex> input(n);
  double timeEnergy = 0.0;
  for (auto& v : input) {
    v = Complex(rng.gaussian(), 0);
    timeEnergy += std::norm(v);
  }
  const auto spectrum = fft(input, false);
  double freqEnergy = 0.0;
  for (const auto& v : spectrum) freqEnergy += std::norm(v);
  freqEnergy /= static_cast<double>(n);
  EXPECT_NEAR(freqEnergy, timeEnergy, 1e-6 * std::max(1.0, timeEnergy));
}

INSTANTIATE_TEST_SUITE_P(PowersAndOddSizes, FftRoundTrip,
                         ::testing::Values(1, 2, 4, 8, 64, 256, 1024,  // pow2
                                           3, 5, 7, 12, 100, 241, 999));

TEST(Fft, LinearityOfTransform) {
  Pcg32 rng(5);
  const std::size_t n = 128;
  std::vector<Complex> a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = Complex(rng.gaussian(), 0);
    b[i] = Complex(rng.gaussian(), 0);
    sum[i] = a[i] + 2.0 * b[i];
  }
  const auto fa = fft(a);
  const auto fb = fft(b);
  const auto fsum = fft(sum);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(fsum[k] - (fa[k] + 2.0 * fb[k])), 0.0, 1e-9);
  }
}

TEST(Fft, RealInputGivesConjugateSymmetricSpectrum) {
  Pcg32 rng(11);
  std::vector<double> x(128);
  for (auto& v : x) v = rng.gaussian();
  const auto spec = fftReal(x);
  for (std::size_t k = 1; k < x.size() / 2; ++k) {
    EXPECT_NEAR(std::abs(spec[k] - std::conj(spec[x.size() - k])), 0.0, 1e-9);
  }
}

TEST(Fft, IfftRealRecoversRealSignal) {
  Pcg32 rng(13);
  std::vector<double> x(200);  // non power of two: exercises Bluestein
  for (auto& v : x) v = rng.gaussian();
  const auto spec = fftReal(x);
  const auto back = ifftReal(spec);
  ASSERT_EQ(back.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(back[i], x[i], 1e-8);
}

TEST(Fft, BluesteinMatchesPow2OnSharedSizes) {
  // Size 256 runs through the pow-2 path; embed it in a 256-point Bluestein
  // run by comparing DFT results computed both ways on the same data.
  Pcg32 rng(17);
  const std::size_t n = 256;
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  auto viaPow2 = fft(x);
  // Naive DFT as ground truth on a few bins.
  for (std::size_t k : {0ul, 1ul, 17ul, 128ul, 255ul}) {
    Complex acc(0, 0);
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = -kTwoPi * static_cast<double>(k * t) /
                         static_cast<double>(n);
      acc += x[t] * Complex(std::cos(ang), std::sin(ang));
    }
    EXPECT_NEAR(std::abs(viaPow2[k] - acc), 0.0, 1e-7);
  }
}

}  // namespace
}  // namespace uniq::dsp
