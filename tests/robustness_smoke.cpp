// End-to-end degraded-capture smoke test (ctest `robustness_smoke`): for
// every fault class at moderate severity, the calibration pipeline must
//   1. complete without throwing,
//   2. report status ok or degraded (never failed at this corruption level),
//   3. keep the head-parameter error within 2x the clean-capture error
//      (plus a small absolute floor for near-zero clean errors), and
//   4. list every fusion-rejected stop in the diagnostics.
// A plain main() (not gtest) so the binary doubles as a manual probe:
// `robustness_smoke` prints one line per fault class.
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/pipeline.h"
#include "head/subject.h"
#include "obs/report.h"
#include "sim/fault_injector.h"
#include "sim/measurement_session.h"
#include "sim/trajectory.h"

using namespace uniq;

namespace {

int failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    ++failures;
    std::cout << "FAIL: " << what << "\n";
  }
}

}  // namespace

int main() {
  const auto subject = head::makePopulation(1, 4242)[0];
  const sim::MeasurementSession session;
  auto gesture = sim::defaultGesture();
  const auto clean = session.run(subject, gesture);
  const core::CalibrationPipeline pipeline;

  const auto cleanRun = pipeline.run(clean);
  const double cleanErr =
      head::maxAxisError(cleanRun.headParams, subject.headParams);
  std::cout << "clean: status " << core::pipelineStatusName(cleanRun.status)
            << ", head error " << cleanErr * 1e3 << " mm\n";
  check(cleanRun.status == core::PipelineStatus::kOk,
        "clean capture must run with status ok");

  // 2x the clean error, floored: a clean solve can land sub-millimeter,
  // and moderate corruption legitimately costs a few millimeters.
  const double errBound = std::max(2.0 * cleanErr, 5e-3);

  for (const auto kind : sim::allFaultKinds()) {
    const char* name = sim::faultKindName(kind);
    sim::FaultInjector injector(0xD15EA5E);
    injector.add(kind, 0.5);  // moderate: ~20% of stops corrupted
    sim::FaultInjectionLog log;
    const auto corrupted = injector.apply(clean, &log);

    obs::RunReport report;
    try {
      const auto run = pipeline.run(corrupted, &report);
      const double err =
          head::maxAxisError(run.headParams, subject.headParams);
      std::ostringstream line;
      line << name << ": status "
           << core::pipelineStatusName(run.status) << ", head error "
           << err * 1e3 << " mm, rejected "
           << run.fusion.rejectedSourceIndices.size() << " stop(s), "
           << run.diagnostics.size() << " diagnostic(s)";
      std::cout << line.str() << "\n";

      check(run.status != core::PipelineStatus::kFailed,
            std::string(name) + ": moderate corruption must not fail over");
      check(err <= errBound,
            std::string(name) + ": head error " + std::to_string(err) +
                " m exceeds bound " + std::to_string(errBound) + " m");

      // Every fusion-rejected stop must be accounted for in a diagnostic.
      for (std::size_t rejectedStop : run.fusion.rejectedSourceIndices) {
        bool listed = false;
        for (const auto& d : run.diagnostics)
          for (std::size_t s : d.stops) listed = listed || s == rejectedStop;
        check(listed, std::string(name) + ": rejected stop " +
                          std::to_string(rejectedStop) +
                          " missing from diagnostics");
      }
      check(report.status == core::pipelineStatusName(run.status),
            std::string(name) + ": report status mirrors pipeline status");
    } catch (const Error& e) {
      check(false, std::string(name) + ": pipeline threw: " + e.what());
    }
  }

  if (failures == 0) {
    std::cout << "robustness smoke: all fault classes OK\n";
    return 0;
  }
  std::cout << "robustness smoke: " << failures << " failure(s)\n";
  return 1;
}
