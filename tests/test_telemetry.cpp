// Continuous-telemetry tests: Histogram::quantile accuracy against exact
// reservoir percentiles, the TelemetrySampler window pipeline, declarative
// SLO rules, the Prometheus exposition + scrape server, and trace-context
// propagation through the thread pool and the calibration service.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "head/subject.h"
#include "obs/export.h"
#include "obs/json_check.h"
#include "obs/metrics.h"
#include "obs/scrape.h"
#include "obs/slo.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "serve/calibration_service.h"
#include "serve/latency_stats.h"
#include "sim/measurement_session.h"

namespace uniq {
namespace {

// ---------------------------------------------------------------------------
// Histogram::quantile

TEST(HistogramQuantile, EmptyAndClampedInputs) {
  obs::Histogram h(obs::HistogramOptions{1.0, 2.0, 8});
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty histogram
  h.observe(3.0);
  // q outside [0, 1] clamps instead of misbehaving.
  EXPECT_GT(h.quantile(-0.5), 0.0);
  EXPECT_GT(h.quantile(1.5), 0.0);
  EXPECT_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_EQ(h.quantile(1.5), h.quantile(1.0));
}

TEST(HistogramQuantile, UnderflowAndOverflowBuckets) {
  obs::Histogram h(obs::HistogramOptions{1.0, 2.0, 4});
  for (int i = 0; i < 10; ++i) h.observe(0.01);  // all underflow
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);        // lo edge

  obs::Histogram over(obs::HistogramOptions{1.0, 2.0, 4});
  for (int i = 0; i < 10; ++i) over.observe(1e9);  // all overflow
  // Last finite edge is lo * growth^bins = 16.
  EXPECT_DOUBLE_EQ(over.quantile(0.5), 16.0);
}

TEST(HistogramQuantile, EstimateStaysInsideTheOwningBucket) {
  const obs::HistogramOptions opts{0.001, 2.0, 32};
  obs::Histogram h(opts);
  std::vector<double> exact;
  Pcg32 rng(2024, 7);
  for (int i = 0; i < 20000; ++i) {
    // Log-normal-ish latencies spanning several decades.
    const double v = std::exp(rng.gaussian() * 1.5 - 2.0);
    h.observe(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());
  // The estimate and the true quantile share a bucket, so they agree within
  // a multiplicative factor of `growth` (the documented error bound; the
  // 1.01 slack covers rank-convention differences at bucket edges).
  for (const double q : {0.10, 0.50, 0.90, 0.99, 0.999}) {
    const double est = h.quantile(q);
    const double truth =
        exact[std::min(exact.size() - 1,
                       static_cast<std::size_t>(
                           q * static_cast<double>(exact.size())))];
    EXPECT_LE(est, truth * opts.growth * 1.01) << "q=" << q;
    EXPECT_GE(est, truth / (opts.growth * 1.01)) << "q=" << q;
  }
}

TEST(HistogramQuantile, SnapshotEntryMatchesLiveHistogram) {
  obs::Registry reg;
  auto& h = reg.histogram("t", obs::HistogramOptions{0.01, 2.0, 16});
  Pcg32 rng(9, 3);
  for (int i = 0; i < 5000; ++i) h.observe(std::exp(rng.gaussian()));
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  for (const double q : {0.25, 0.5, 0.75, 0.99})
    EXPECT_DOUBLE_EQ(snap.histograms[0].quantile(q), h.quantile(q));
}

// The satellite pin: serve-load's exact LatencyReservoir and the log-binned
// histogram must agree on the same latency stream within the bin-growth
// budget — the estimator_check contract the nightly watches.
TEST(HistogramQuantile, AgreesWithLatencyReservoirWithinGrowthBudget) {
  const obs::HistogramOptions opts{1e-4, 2.0, 32};  // serve.load.lookup_ms
  obs::Histogram hist(opts);
  serve::LatencyReservoir reservoir;
  Pcg32 rng(77, 13);
  for (int i = 0; i < 50000; ++i) {
    // Cache-lookup-shaped latencies: a fast mode around a few microseconds
    // with a heavy slow tail.
    const double ms = 0.002 * std::exp(std::abs(rng.gaussian()) * 2.0);
    hist.observe(ms);
    reservoir.record(ms);
  }
  auto sorted = reservoir.samples;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.50, 0.90, 0.99}) {
    const double exact = serve::percentileMs(sorted, q);
    const double est = hist.quantile(q);
    ASSERT_GT(exact, 0.0);
    EXPECT_LE(est / exact, opts.growth * 1.01) << "q=" << q;
    EXPECT_GE(est / exact, 1.0 / (opts.growth * 1.01)) << "q=" << q;
  }
}

// ---------------------------------------------------------------------------
// TelemetrySampler

TEST(TelemetrySampler, WindowsCarryCounterRatesAndHistogramDeltas) {
  obs::Registry reg;
  auto& ops = reg.counter("ops");
  auto& lat = reg.histogram("lat", obs::HistogramOptions{0.01, 2.0, 16});
  obs::TelemetrySampler sampler(reg, {});

  ops.inc(100);
  lat.observe(1.0);
  const auto w0 = sampler.sampleNow();
  EXPECT_EQ(w0.seq, 0u);
  ASSERT_NE(w0.counterRate("ops"), nullptr);
  EXPECT_EQ(w0.counterRate("ops")->delta, 100u);

  ops.inc(50);
  lat.observe(2.0);
  lat.observe(4.0);
  const auto w1 = sampler.sampleNow();
  EXPECT_EQ(w1.seq, 1u);
  EXPECT_EQ(w1.counterRate("ops")->delta, 50u);
  EXPECT_EQ(w1.cumulative.counter("ops"), 150u);
  ASSERT_NE(w1.histogramWindow("lat"), nullptr);
  // The window delta sees only this window's two observations...
  EXPECT_EQ(w1.histogramWindow("lat")->count, 2u);
  // ...and its quantiles are computed on the delta, not the cumulative.
  EXPECT_GT(w1.histogramWindow("lat")->p50, 1.0);
}

TEST(TelemetrySampler, RingBufferIsBoundedButSeqIsNot) {
  obs::Registry reg;
  obs::TelemetrySamplerOptions opts;
  opts.ringCapacity = 4;
  obs::TelemetrySampler sampler(reg, opts);
  for (int i = 0; i < 10; ++i) sampler.sampleNow();
  EXPECT_EQ(sampler.windows().size(), 4u);
  EXPECT_EQ(sampler.windowCount(), 10u);
  EXPECT_EQ(sampler.latest().seq, 9u);
  EXPECT_EQ(sampler.windows().front().seq, 6u);
}

TEST(TelemetrySampler, BackgroundThreadTicksAndStopJoins) {
  obs::Registry reg;
  obs::TelemetrySamplerOptions opts;
  opts.intervalMs = 5;
  obs::TelemetrySampler sampler(reg, opts);
  EXPECT_FALSE(sampler.running());
  sampler.start();
  EXPECT_TRUE(sampler.running());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sampler.windowCount() < 3 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.windowCount(), 3u);
  // Gauges exported back into the registry prove sampler liveness.
  EXPECT_GT(reg.snapshot().gauge("obs.telemetry.window_seq"), 0.0);
}

TEST(TelemetrySampler, OnWindowCallbackSeesEveryTick) {
  obs::Registry reg;
  obs::TelemetrySampler sampler(reg, {});
  std::vector<std::uint64_t> seqs;
  sampler.onWindow(
      [&seqs](const obs::TelemetryWindow& w) { seqs.push_back(w.seq); });
  sampler.sampleNow();
  sampler.sampleNow();
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0], 0u);
  EXPECT_EQ(seqs[1], 1u);
}

// ---------------------------------------------------------------------------
// SloEvaluator

/// Handcrafted sampler window with full control over timing — what the
/// evaluator tests feed so trailing-window logic is deterministic.
obs::TelemetryWindow makeWindow(std::uint64_t seq, double atMs, double dtMs) {
  obs::TelemetryWindow w;
  w.seq = seq;
  w.atMs = atMs;
  w.dtMs = dtMs;
  return w;
}

void addHistogramWindow(obs::TelemetryWindow* w, const std::string& name,
                        const obs::HistogramOptions& opts,
                        const std::vector<std::uint64_t>& counts) {
  obs::TelemetryWindow::HistogramWindow hw;
  hw.name = name;
  hw.delta.name = name;
  hw.delta.options = opts;
  hw.delta.counts = counts;
  for (const auto c : counts) hw.delta.count += c;
  hw.count = hw.delta.count;
  w->histogramWindows.push_back(std::move(hw));
}

TEST(SloEvaluator, ParsesTheDocumentedSchema) {
  std::vector<obs::SloRule> rules;
  std::string error;
  const std::string json = R"({"rules": [
    {"name": "lookup-p99", "metric": "serve.load.lookup_ms",
     "objective": "quantile", "quantile": 0.99, "threshold": 5.0,
     "window_s": 5, "burn_rate": 2.0},
    {"name": "reject-rate", "metric": "serve.jobs.rejected",
     "objective": "rate", "threshold": 10},
    {"name": "depth", "metric": "serve.queue.depth",
     "objective": "gauge", "threshold": 100}
  ]})";
  ASSERT_TRUE(obs::SloEvaluator::parseRules(json, &rules, &error)) << error;
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules[0].objective, obs::SloObjective::kQuantile);
  EXPECT_DOUBLE_EQ(rules[0].quantile, 0.99);
  EXPECT_DOUBLE_EQ(rules[0].burnRate, 2.0);
  EXPECT_EQ(rules[1].objective, obs::SloObjective::kRate);
  EXPECT_DOUBLE_EQ(rules[1].windowS, 5.0);  // default
  EXPECT_DOUBLE_EQ(rules[1].burnRate, 1.0);  // default
  EXPECT_EQ(rules[2].objective, obs::SloObjective::kGauge);
}

TEST(SloEvaluator, RejectsMalformedRules) {
  std::vector<obs::SloRule> rules;
  std::string error;
  const auto rejects = [&](const std::string& json) {
    const bool ok = obs::SloEvaluator::parseRules(json, &rules, &error);
    EXPECT_FALSE(ok) << json;
    EXPECT_FALSE(error.empty());
  };
  rejects("{\"rules\": [");                                   // bad JSON
  rejects("[]");                                              // not an object
  rejects("{}");                                              // no rules
  rejects(R"({"rules": [{"metric": "m", "threshold": 1}]})");  // no name
  rejects(R"({"rules": [{"name": "a", "threshold": 1}]})");    // no metric
  rejects(
      R"({"rules": [{"name": "a", "metric": "m", "threshold": 1,
                     "objective": "median"}]})");  // unknown objective
  rejects(
      R"({"rules": [{"name": "a", "metric": "m", "threshold": 0}]})");
  rejects(
      R"({"rules": [{"name": "a", "metric": "m", "threshold": 1},
                    {"name": "a", "metric": "m", "threshold": 1}]})");
}

TEST(SloEvaluator, QuantileRuleBreachesEdgeTriggeredAndRecovers) {
  obs::Registry reg;
  const obs::HistogramOptions opts{1.0, 2.0, 8};
  obs::SloRule rule;
  rule.name = "p50-lat";
  rule.metric = "lat";
  rule.objective = obs::SloObjective::kQuantile;
  rule.quantile = 0.5;
  rule.threshold = 4.0;
  rule.windowS = 0.05;  // 50 ms trailing window
  rule.burnRate = 1.0;
  obs::SloEvaluator slo(reg, {rule});

  // Window 0: all mass in the first bucket (values ~1-2) — healthy.
  auto w0 = makeWindow(0, 100.0, 100.0);
  addHistogramWindow(&w0, "lat", opts, {10, 0, 0, 0, 0, 0, 0, 0});
  slo.observe(w0);
  EXPECT_FALSE(slo.status()[0].breached);
  EXPECT_TRUE(slo.status()[0].measurable);
  EXPECT_TRUE(slo.breaches().empty());

  // Window 1: mass jumps to bucket 4 (16-32) — p50 way over 4.0.
  auto w1 = makeWindow(1, 200.0, 100.0);
  addHistogramWindow(&w1, "lat", opts, {0, 0, 0, 0, 20, 0, 0, 0});
  slo.observe(w1);
  EXPECT_TRUE(slo.status()[0].breached);
  ASSERT_EQ(slo.breaches().size(), 1u);
  EXPECT_EQ(slo.breaches()[0].rule, "p50-lat");
  EXPECT_EQ(slo.breaches()[0].windowSeq, 1u);

  // Window 2, still breached: edge-triggered events do not repeat.
  auto w2 = makeWindow(2, 300.0, 100.0);
  addHistogramWindow(&w2, "lat", opts, {0, 0, 0, 0, 20, 0, 0, 0});
  slo.observe(w2);
  EXPECT_EQ(slo.breaches().size(), 1u);

  // Window 3: healthy again (old windows aged out of the 50 ms trail).
  auto w3 = makeWindow(3, 400.0, 100.0);
  addHistogramWindow(&w3, "lat", opts, {10, 0, 0, 0, 0, 0, 0, 0});
  slo.observe(w3);
  EXPECT_FALSE(slo.status()[0].breached);
  EXPECT_TRUE(slo.anyBreached());  // sticky for --fail-on-slo

  // Exported instruments reflect the latest evaluation.
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.gauge("slo.p50-lat.breached"), 0.0);
  EXPECT_DOUBLE_EQ(snap.gauge("slo.p50-lat.limit"), 4.0);
  EXPECT_EQ(snap.counter("slo.breach_windows"), 2u);
}

TEST(SloEvaluator, RateAndGaugeObjectivesAndBurnRate) {
  obs::Registry reg;
  obs::SloRule rate;
  rate.name = "err-rate";
  rate.metric = "errors";
  rate.objective = obs::SloObjective::kRate;
  rate.threshold = 10.0;  // events/s
  rate.burnRate = 2.0;    // alert only past 20/s
  rate.windowS = 1.0;
  obs::SloRule gauge;
  gauge.name = "depth";
  gauge.metric = "queue.depth";
  gauge.objective = obs::SloObjective::kGauge;
  gauge.threshold = 8.0;
  gauge.windowS = 1.0;
  obs::SloEvaluator slo(reg, {rate, gauge});

  auto w0 = makeWindow(0, 500.0, 500.0);
  w0.counterRates.push_back({"errors", 6, 12.0});  // 12/s < 20/s limit
  w0.cumulative.gauges.push_back({"queue.depth", 5.0});
  slo.observe(w0);
  EXPECT_FALSE(slo.status()[0].breached);  // burn-rate multiplier protects
  EXPECT_DOUBLE_EQ(slo.status()[0].limit, 20.0);
  EXPECT_FALSE(slo.status()[1].breached);

  auto w1 = makeWindow(1, 1000.0, 500.0);
  w1.counterRates.push_back({"errors", 15, 30.0});
  w1.cumulative.gauges.push_back({"queue.depth", 9.0});
  slo.observe(w1);
  // Rate over the trailing 1 s window: (6 + 15) / 1.0 s = 21/s > 20/s.
  EXPECT_TRUE(slo.status()[0].breached);
  EXPECT_NEAR(slo.status()[0].value, 21.0, 1e-9);
  EXPECT_TRUE(slo.status()[1].breached);  // gauge uses the latest value
}

TEST(SloEvaluator, UnknownMetricIsUnmeasurableNotBreached) {
  obs::Registry reg;
  obs::SloRule rule;
  rule.name = "ghost";
  rule.metric = "does.not.exist";
  rule.threshold = 1.0;
  obs::SloEvaluator slo(reg, {rule});
  slo.observe(makeWindow(0, 100.0, 100.0));
  EXPECT_FALSE(slo.status()[0].measurable);
  EXPECT_FALSE(slo.status()[0].breached);
  EXPECT_FALSE(slo.anyBreached());
}

// ---------------------------------------------------------------------------
// Prometheus exposition + scrape server

TEST(Exposition, NameSanitization) {
  EXPECT_EQ(obs::prometheusName("serve.load.lookup_ms"),
            "uniq_serve_load_lookup_ms");
  EXPECT_EQ(obs::prometheusName("weird name-with/chars"),
            "uniq_weird_name_with_chars");
  EXPECT_EQ(obs::prometheusName("0starts.with.digit"),
            "uniq_0starts_with_digit");  // uniq_ prefix keeps it legal
}

TEST(Exposition, EmptyRegistryProducesEmptyDocument) {
  obs::Registry reg;
  EXPECT_EQ(obs::prometheusText(reg.snapshot()), "");
}

TEST(Exposition, HistogramBucketsAreCumulativeAndConsistent) {
  obs::Registry reg;
  auto& h = reg.histogram("lat.ms", obs::HistogramOptions{1.0, 2.0, 3});
  h.observe(0.5);   // underflow
  h.observe(1.5);   // bucket 0
  h.observe(3.0);   // bucket 1
  h.observe(100.0); // overflow
  const std::string text = obs::prometheusText(reg.snapshot());
  // Underflow folds into the first bucket; +Inf equals _count.
  EXPECT_NE(text.find("uniq_lat_ms_bucket{le=\"2\"} 2\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("uniq_lat_ms_bucket{le=\"4\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("uniq_lat_ms_bucket{le=\"8\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("uniq_lat_ms_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("uniq_lat_ms_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE uniq_lat_ms histogram\n"), std::string::npos);
}

TEST(Exposition, ZeroCountHistogramAndCounterSuffix) {
  obs::Registry reg;
  reg.histogram("empty", obs::HistogramOptions{1.0, 2.0, 2});
  reg.counter("ops").inc(7);
  const std::string text = obs::prometheusText(reg.snapshot());
  EXPECT_NE(text.find("uniq_empty_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("uniq_empty_count 0\n"), std::string::npos);
  EXPECT_NE(text.find("uniq_ops_total 7\n"), std::string::npos);
}

TEST(Exposition, WindowAndSloSectionsRender) {
  obs::Registry reg;
  reg.counter("ops").inc(10);
  reg.histogram("lat", obs::HistogramOptions{1.0, 2.0, 4}).observe(3.0);
  obs::TelemetrySampler sampler(reg, {});
  const auto window = sampler.sampleNow();

  obs::SloRule rule;
  rule.name = "my \"rule\"";  // label value needs escaping
  rule.metric = "lat";
  rule.threshold = 1.0;
  std::vector<obs::SloStatus> status(1);
  status[0].rule = rule;
  status[0].value = 2.0;
  status[0].limit = 1.0;
  status[0].measurable = true;
  status[0].breached = true;

  const std::string text =
      obs::prometheusText(reg.snapshot(), &window, &status);
  EXPECT_NE(text.find("uniq_ops_rate "), std::string::npos);
  EXPECT_NE(text.find("uniq_lat_window_q{q=\"0.5\"} "), std::string::npos);
  EXPECT_NE(text.find("uniq_slo_breached{rule=\"my \\\"rule\\\"\"} 1"),
            std::string::npos)
      << text;
}

TEST(ScrapeServer, ServesExpositionOverLocalhostHttp) {
  obs::Registry reg;
  reg.counter("hits").inc(3);
  const std::uint64_t requestsBefore =
      obs::registry().snapshot().counter("obs.scrape.requests");
  obs::ScrapeServer server(
      [&reg] { return obs::prometheusText(reg.snapshot()); }, 0);
  ASSERT_NE(server.port(), 0);  // ephemeral port resolved

  std::string body, error;
  ASSERT_TRUE(obs::httpGet(server.port(), "/metrics", &body, &error))
      << error;
  EXPECT_NE(body.find("uniq_hits_total 3"), std::string::npos) << body;

  // Second fetch exercises the accept loop again.
  ASSERT_TRUE(obs::httpGet(server.port(), "/metrics", &body, &error));
  EXPECT_GE(obs::registry().snapshot().counter("obs.scrape.requests"),
            requestsBefore + 2);
  server.stop();
  server.stop();  // idempotent
  EXPECT_FALSE(obs::httpGet(server.port(), "/metrics", &body, &error));
}

// ---------------------------------------------------------------------------
// Trace-context propagation

TEST(TraceContext, PoolSubmitCarriesTheSubmittersContext) {
  obs::setTraceEnabled(true);
  obs::clearTrace();
  common::ThreadPool pool(2);
  const obs::TraceId id = obs::newTraceId();
  std::atomic<bool> done{false};
  {
    obs::TraceContextScope scope(id);
    pool.submit([&done] {
      UNIQ_SPAN("ctx.task");
      done.store(true);
    });
  }
  while (!done.load()) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));
  // The span completed on a worker thread, yet carries the submitter's id.
  const auto spans = obs::collectSpans();
  bool found = false;
  for (const auto& s : spans) {
    if (s.name == "ctx.task") {
      EXPECT_EQ(s.traceId, id);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(obs::currentTraceId(), 0u);  // scope restored
}

TEST(TraceContext, ScopesNestAndRestore) {
  const obs::TraceId a = obs::newTraceId();
  const obs::TraceId b = obs::newTraceId();
  EXPECT_NE(a, b);
  EXPECT_EQ(obs::currentTraceId(), 0u);
  {
    obs::TraceContextScope outer(a);
    EXPECT_EQ(obs::currentTraceId(), a);
    {
      obs::TraceContextScope inner(b);
      EXPECT_EQ(obs::currentTraceId(), b);
    }
    EXPECT_EQ(obs::currentTraceId(), a);
  }
  EXPECT_EQ(obs::currentTraceId(), 0u);
}

// The acceptance pin: concurrent service jobs each get a distinct trace id,
// and the "serve.job" spans recorded on whichever pool worker ran them
// attribute to the right job — with the Chrome-trace export grouping by it.
TEST(TraceContext, ConcurrentServeJobsAttributeWorkerSpans) {
  obs::setTraceEnabled(true);
  obs::clearTrace();

  const auto subject = head::makePopulation(1, 4242)[0];
  const sim::MeasurementSession session;
  auto gesture = sim::defaultGesture();
  gesture.stops = 6;
  const auto capture = std::make_shared<const sim::CalibrationCapture>(
      session.run(subject, gesture));

  serve::CalibrationServiceOptions opts;
  opts.workers = 3;
  std::vector<serve::JobResult> results;
  {
    serve::CalibrationService service(opts);
    for (int i = 0; i < 3; ++i)
      service.submit("user" + std::to_string(i), capture);
    results = service.drain();
  }
  ASSERT_EQ(results.size(), 3u);
  std::vector<std::uint64_t> ids;
  for (const auto& r : results) {
    EXPECT_NE(r.traceId, 0u);
    ids.push_back(r.traceId);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end())
      << "trace ids must be distinct per job";

  const auto spans = obs::collectSpans();
  for (const auto& r : results) {
    bool foundJobSpan = false;
    for (const auto& s : spans) {
      if (s.name == "serve.job" && s.traceId == r.traceId)
        foundJobSpan = true;
    }
    EXPECT_TRUE(foundJobSpan)
        << "no serve.job span attributed to job " << r.id;
  }

  // Chrome-trace export groups by trace id: pid = traceId, with a
  // process_name metadata row per job.
  const std::string json = obs::traceEventJson(spans);
  EXPECT_TRUE(obs::validateJson(json));
  for (const auto& r : results) {
    EXPECT_NE(json.find("\"pid\":" + std::to_string(r.traceId)),
              std::string::npos);
    EXPECT_NE(json.find("trace " + std::to_string(r.traceId)),
              std::string::npos);
  }
}

// Satellite pin: the per-thread span cap drops (and counts) spans instead
// of growing without bound.
TEST(TraceContext, SpanCapDropsAndCountsOverflow) {
  obs::setTraceEnabled(true);
  obs::clearTrace();
  const std::size_t oldCap = obs::traceMaxSpansPerThread();
  const std::uint64_t droppedBefore =
      obs::registry().snapshot().counter("obs.trace.dropped");
  obs::setTraceMaxSpansPerThread(4);
  for (int i = 0; i < 10; ++i) {
    UNIQ_SPAN("cap.test");
  }
  std::size_t mine = 0;
  for (const auto& s : obs::collectSpans())
    if (s.name == "cap.test") ++mine;
  EXPECT_EQ(mine, 4u);
  EXPECT_EQ(obs::registry().snapshot().counter("obs.trace.dropped"),
            droppedBefore + 6);
  obs::setTraceMaxSpansPerThread(oldCap);
  obs::clearTrace();
}

// ---------------------------------------------------------------------------
// Export edge cases (satellite: JSON/exposition robustness under races)

TEST(ExportEdgeCases, MetricsJsonOnEmptyRegistryIsValid) {
  obs::Registry reg;
  const std::string json = obs::metricsJson(reg.snapshot());
  std::string error;
  EXPECT_TRUE(obs::validateJson(json, &error)) << error;
  EXPECT_EQ(json, "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(ExportEdgeCases, MetricNamesNeedingEscapingStayValidJson) {
  obs::Registry reg;
  reg.counter("weird\"name\\with\ncontrol\tchars").inc();
  reg.gauge("gauge\"quoted\"").set(1.5);
  const std::string json = obs::metricsJson(reg.snapshot());
  std::string error;
  EXPECT_TRUE(obs::validateJson(json, &error)) << error << "\n" << json;
  // And the exposition sanitizer neutralizes the same names.
  const std::string text = obs::prometheusText(reg.snapshot());
  for (const char c : std::string("\"\n\t\\"))
    EXPECT_EQ(text.find(std::string("uniq_weird") + c), std::string::npos);
}

TEST(ExportEdgeCases, ResetAllRacingObserveIsSafe) {
  obs::Registry reg;
  auto& hist = reg.histogram("race", obs::HistogramOptions{0.1, 2.0, 16});
  auto& ctr = reg.counter("race.ops");
  std::atomic<bool> stop{false};
  std::thread hammer([&] {
    Pcg32 rng(1, 1);
    while (!stop.load(std::memory_order_relaxed)) {
      hist.observe(std::exp(rng.gaussian()));
      ctr.inc();
    }
  });
  for (int i = 0; i < 200; ++i) {
    reg.resetAll();
    const auto snap = reg.snapshot();
    // Quantile on a snapshot taken mid-race must not crash or return junk
    // outside the layout's range.
    ASSERT_EQ(snap.histograms.size(), 1u);
    const double q = snap.histograms[0].quantile(0.99);
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 0.1 * std::pow(2.0, 16));
  }
  stop.store(true);
  hammer.join();
}

}  // namespace
}  // namespace uniq
