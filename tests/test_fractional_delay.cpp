#include "dsp/fractional_delay.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/random.h"
#include "dsp/signal_generators.h"
#include "test_util.h"

namespace uniq::dsp {
namespace {

TEST(AddFractionalTap, IntegerPositionIsExact) {
  std::vector<double> buf(64, 0.0);
  addFractionalTap(buf, 20.0, 0.7);
  EXPECT_NEAR(buf[20], 0.7, 1e-9);
  // Sinc zero crossings at the other integer positions.
  EXPECT_NEAR(buf[19], 0.0, 1e-9);
  EXPECT_NEAR(buf[25], 0.0, 1e-9);
}

TEST(AddFractionalTap, ZeroAmplitudeNoOp) {
  std::vector<double> buf(16, 0.0);
  addFractionalTap(buf, 8.0, 0.0);
  for (double v : buf) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(AddFractionalTap, ClipsAtBufferEdges) {
  std::vector<double> buf(16, 0.0);
  addFractionalTap(buf, 14.5, 1.0, 8);   // kernel extends past the end
  addFractionalTap(buf, 1.5, 1.0, 8);    // kernel extends before the start
  // Must not crash; energy present near both taps.
  EXPECT_GT(std::fabs(buf[14]) + std::fabs(buf[15]), 0.1);
  EXPECT_GT(std::fabs(buf[1]) + std::fabs(buf[2]), 0.1);
}

TEST(AddFractionalTap, RejectsBadHalfWidth) {
  std::vector<double> buf(16, 0.0);
  EXPECT_THROW(addFractionalTap(buf, 8.0, 1.0, 0), InvalidArgument);
}

TEST(AddFractionalTap, EnergyCloseToUnityForInteriorTap) {
  // The Blackman window trims the sinc tails, costing ~5% energy.
  std::vector<double> buf(256, 0.0);
  addFractionalTap(buf, 128.37, 1.0, 16);
  EXPECT_NEAR(uniq::test::energy(buf), 0.95, 0.04);
}

class ShiftRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(ShiftRoundTrip, ShiftThenUnshiftIsNearIdentity) {
  const double shift = GetParam();
  Pcg32 rng(17);
  // Band-limit the test signal a bit (white noise at full band suffers at
  // the interpolation kernel's edge response).
  auto sig = linearChirp(200.0, 18000.0, 512, 48000.0);
  std::vector<double> padded(700, 0.0);
  for (std::size_t i = 0; i < sig.size(); ++i) padded[i + 64] = sig[i];
  const auto shifted = fractionalShift(padded, shift);
  const auto back = fractionalShift(shifted, -shift);
  // Compare away from the edges.
  double maxErr = 0.0;
  for (std::size_t i = 80; i + 80 < padded.size(); ++i)
    maxErr = std::max(maxErr, std::fabs(back[i] - padded[i]));
  EXPECT_LT(maxErr, 0.02) << "shift " << shift;
}

INSTANTIATE_TEST_SUITE_P(Shifts, ShiftRoundTrip,
                         ::testing::Values(0.0, 0.5, 1.25, 3.75, 10.0, -4.5));

TEST(FractionalShift, IntegerShiftMovesSamplesExactly) {
  std::vector<double> sig(32, 0.0);
  sig[10] = 1.0;
  const auto shifted = fractionalShift(sig, 5.0);
  EXPECT_NEAR(shifted[15], 1.0, 1e-9);
  EXPECT_NEAR(shifted[10], 0.0, 1e-9);
}

TEST(FractionalShift, ContentShiftedOutIsLost) {
  std::vector<double> sig(32, 0.0);
  sig[30] = 1.0;
  const auto shifted = fractionalShift(sig, 10.0);
  EXPECT_LT(uniq::test::energy(shifted), 0.05);
}

}  // namespace
}  // namespace uniq::dsp
