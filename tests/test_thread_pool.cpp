#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/constants.h"
#include "common/random.h"
#include "core/sensor_fusion.h"
#include "geometry/diffraction.h"
#include "geometry/polar.h"

namespace uniq::common {
namespace {

/// A deliberately order-sensitive computation: if two threads ever ran the
/// same index, or an index were skipped, the output would differ from the
/// serial fill.
std::vector<double> fill(ThreadPool& pool, std::size_t count,
                         std::size_t maxThreads) {
  std::vector<double> out(count, -1.0);
  pool.parallelFor(
      0, count,
      [&](std::size_t i) {
        out[i] = std::sin(0.1 * static_cast<double>(i)) +
                 std::sqrt(static_cast<double>(i + 1));
      },
      maxThreads);
  return out;
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.parallelFor(0, counts.size(), [&](std::size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ParallelForBitwiseIdenticalAcrossThreadCounts) {
  ThreadPool pool(4);
  const auto serial = fill(pool, 2000, 1);
  for (const std::size_t maxThreads : {0u, 2u, 3u, 5u}) {
    const auto parallel = fill(pool, 2000, maxThreads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      // Bitwise: the same fn(i) ran on some thread, nothing else touched
      // slot i.
      EXPECT_EQ(parallel[i], serial[i]) << "i=" << i;
    }
  }
}

TEST(ThreadPool, ParallelForEmptyAndSingleRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallelFor(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallelFor(7, 8, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 7u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallelFor(0, 100,
                       [](std::size_t i) {
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::vector<std::vector<double>> rows(8);
  pool.parallelFor(0, rows.size(), [&](std::size_t r) {
    rows[r].assign(16, 0.0);
    // Nested call: must complete inline on this worker, never wait on the
    // pool it is running inside.
    pool.parallelFor(0, rows[r].size(), [&](std::size_t c) {
      rows[r][c] = static_cast<double>(r * 100 + c);
    });
  });
  for (std::size_t r = 0; r < rows.size(); ++r)
    for (std::size_t c = 0; c < rows[r].size(); ++c)
      EXPECT_EQ(rows[r][c], static_cast<double>(r * 100 + c));
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(1);
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  pool.submit([&] {
    std::lock_guard<std::mutex> lock(m);
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(m);
  EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                          [&] { return done; }));
}

TEST(ThreadPool, GlobalPoolStatsAdvance) {
  const auto before = poolStats();
  parallelFor(0, 64, [](std::size_t) {});
  const auto after = poolStats();
  EXPECT_GE(after.tasksExecuted, before.tasksExecuted);
  EXPECT_EQ(after.threads, globalPool().threadCount());
}

TEST(ThreadPool, SensorFusionSolveBitwiseIdenticalSerialVsParallel) {
  // End-to-end determinism: the full Nelder-Mead solve must produce the
  // exact same head parameters no matter how many threads evaluate the
  // objective.
  const head::HeadParameters truth{0.071, 0.104, 0.089};
  const geo::HeadBoundary head(truth.a, truth.b, truth.c, 256);
  std::vector<core::FusionMeasurement> measurements;
  Pcg32 rng(11);
  for (int i = 0; i < 18; ++i) {
    const double theta = 5.0 + 170.0 * i / 17.0;
    const geo::Vec2 pos = geo::pointFromPolarDeg(theta, 0.34);
    core::FusionMeasurement m;
    m.delayLeftSec =
        geo::nearFieldPath(head, pos, geo::Ear::kLeft).length / kSpeedOfSound;
    m.delayRightSec =
        geo::nearFieldPath(head, pos, geo::Ear::kRight).length /
        kSpeedOfSound;
    m.imuAngleDeg = theta + rng.gaussian(0.0, 2.0);
    measurements.push_back(m);
  }

  core::SensorFusionOptions serialOpts;
  serialOpts.numThreads = 1;
  serialOpts.maxIterations = 60;
  core::SensorFusionOptions parallelOpts = serialOpts;
  parallelOpts.numThreads = 4;

  const auto serial = core::SensorFusion(serialOpts).solve(measurements);
  const auto parallel = core::SensorFusion(parallelOpts).solve(measurements);

  EXPECT_EQ(serial.headParams.a, parallel.headParams.a);
  EXPECT_EQ(serial.headParams.b, parallel.headParams.b);
  EXPECT_EQ(serial.headParams.c, parallel.headParams.c);
  EXPECT_EQ(serial.localizedCount, parallel.localizedCount);
  EXPECT_EQ(serial.meanSquaredResidualDeg2, parallel.meanSquaredResidualDeg2);
  ASSERT_EQ(serial.stops.size(), parallel.stops.size());
  for (std::size_t i = 0; i < serial.stops.size(); ++i) {
    EXPECT_EQ(serial.stops[i].angleDeg, parallel.stops[i].angleDeg);
    EXPECT_EQ(serial.stops[i].radiusM, parallel.stops[i].radiusM);
  }
}

}  // namespace
}  // namespace uniq::common
