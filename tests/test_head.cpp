#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "eval/metrics.h"
#include "geometry/diffraction.h"
#include "geometry/polar.h"
#include "head/head_parameters.h"
#include "head/hrir.h"
#include "head/hrtf_database.h"
#include "head/pinna_model.h"
#include "head/subject.h"

namespace uniq::head {
namespace {

TEST(HeadParameters, AverageIsPlausible) {
  EXPECT_TRUE(HeadParameters::average().isPlausible());
}

TEST(HeadParameters, SampledHeadsPlausibleAndFrontDeeperThanBack) {
  Pcg32 rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto h = HeadParameters::sample(rng);
    EXPECT_TRUE(h.isPlausible());
    EXPECT_GT(h.b, h.c);
  }
}

TEST(HeadParameters, MaxAxisError) {
  const HeadParameters a{0.07, 0.10, 0.09};
  const HeadParameters b{0.072, 0.095, 0.091};
  EXPECT_NEAR(maxAxisError(a, b), 0.005, 1e-12);
}

TEST(Population, SubjectsDistinctAndDeterministic) {
  const auto popA = makePopulation(5, 2021);
  const auto popB = makePopulation(5, 2021);
  ASSERT_EQ(popA.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(popA[i].pinnaSeed, popB[i].pinnaSeed);
    EXPECT_DOUBLE_EQ(popA[i].headParams.a, popB[i].headParams.a);
    for (std::size_t j = i + 1; j < 5; ++j) {
      EXPECT_NE(popA[i].pinnaSeed, popA[j].pinnaSeed);
    }
    EXPECT_FALSE(popA[i].shapeHarmonics.empty());
  }
}

TEST(PinnaModel, DeterministicForSameSeed) {
  const PinnaModel a(42, geo::Ear::kLeft);
  const PinnaModel b(42, geo::Ear::kLeft);
  const auto irA = a.impulseResponse(30.0, 48000.0);
  const auto irB = b.impulseResponse(30.0, 48000.0);
  for (std::size_t i = 0; i < irA.size(); ++i)
    EXPECT_DOUBLE_EQ(irA[i], irB[i]);
}

TEST(PinnaModel, EarsDifferWithinUser) {
  const PinnaModel left(42, geo::Ear::kLeft);
  const PinnaModel right(42, geo::Ear::kRight);
  const double corr = eval::channelSimilarity(
      left.impulseResponse(0.0, 48000.0), right.impulseResponse(0.0, 48000.0),
      48000.0);
  EXPECT_LT(corr, 0.95);
}

TEST(PinnaModel, ResponseVariesSmoothlyWithAngle) {
  const PinnaModel p(7, geo::Ear::kLeft);
  const auto base = p.impulseResponse(0.0, 48000.0);
  const auto nearAngle = p.impulseResponse(5.0, 48000.0);
  const auto farAngle = p.impulseResponse(90.0, 48000.0);
  const double nearCorr =
      eval::channelSimilarity(base, nearAngle, 48000.0);
  const double farCorr = eval::channelSimilarity(base, farAngle, 48000.0);
  EXPECT_GT(nearCorr, 0.8);
  EXPECT_LT(farCorr, nearCorr);
}

TEST(PinnaModel, DifferentUsersDiffer) {
  const PinnaModel a(1001, geo::Ear::kLeft);
  const PinnaModel b(2002, geo::Ear::kLeft);
  const double corr = eval::channelSimilarity(
      a.impulseResponse(45.0, 48000.0), b.impulseResponse(45.0, 48000.0),
      48000.0);
  EXPECT_LT(corr, 0.85);
}

TEST(PinnaModel, IncidenceAngleConvention) {
  const geo::HeadBoundary head(0.075, 0.10, 0.09, 256);
  // Wave traveling straight into the left ear: propagation +x direction.
  const double frontal =
      PinnaModel::incidenceAngleDeg(head, geo::Ear::kLeft, {1.0, 0.0});
  EXPECT_NEAR(frontal, 0.0, 1.0);
  // Arrival from the front (propagating toward -y at the left ear).
  const double fromFront =
      PinnaModel::incidenceAngleDeg(head, geo::Ear::kLeft, {0.0, -1.0});
  EXPECT_GT(fromFront, 0.0);
  // Mirror case for the right ear.
  const double fromFrontR =
      PinnaModel::incidenceAngleDeg(head, geo::Ear::kRight, {0.0, -1.0});
  EXPECT_NEAR(fromFront, fromFrontR, 1.0);
}

class HrtfDatabaseTest : public ::testing::Test {
 protected:
  static Subject makeSubject() {
    Subject s;
    s.name = "test";
    s.headParams = {0.07, 0.10, 0.09};
    s.pinnaSeed = 77;
    return s;
  }
  HrtfDatabase db_{makeSubject()};
};

TEST_F(HrtfDatabaseTest, NearFieldFirstTapMatchesDiffractionDelay) {
  for (double theta : {10.0, 45.0, 90.0, 135.0, 170.0}) {
    const double r = 0.35;
    const auto hrir = db_.nearField(theta, r);
    const auto src = geo::pointFromPolarDeg(theta, r);
    for (geo::Ear ear : {geo::Ear::kLeft, geo::Ear::kRight}) {
      const auto path = geo::nearFieldPath(db_.boundary(), src, ear);
      const double expectedTap =
          path.length / kSpeedOfSound * db_.options().sampleRate;
      const auto& channel =
          ear == geo::Ear::kLeft ? hrir.left : hrir.right;
      // Find the first sample with significant energy.
      double firstIdx = -1;
      double peak = 0.0;
      for (double v : channel) peak = std::max(peak, std::fabs(v));
      for (std::size_t i = 0; i < channel.size(); ++i) {
        if (std::fabs(channel[i]) > 0.35 * peak) {
          firstIdx = static_cast<double>(i);
          break;
        }
      }
      ASSERT_GE(firstIdx, 0.0);
      EXPECT_NEAR(firstIdx, expectedTap, 3.0)
          << "theta " << theta << " ear " << (ear == geo::Ear::kLeft ? "L" : "R");
    }
  }
}

TEST_F(HrtfDatabaseTest, ShadowedEarQuieterAtNinetyDegrees) {
  const auto hrir = db_.nearField(90.0, 0.35);  // source at the left
  EXPECT_GT(channelEnergy(hrir.left), 4.0 * channelEnergy(hrir.right));
}

TEST_F(HrtfDatabaseTest, FarFieldItdIncreasesTowardNinety) {
  auto firstTap = [&](const std::vector<double>& ch) {
    double peak = 0.0;
    for (double v : ch) peak = std::max(peak, std::fabs(v));
    for (std::size_t i = 0; i < ch.size(); ++i)
      if (std::fabs(ch[i]) > 0.35 * peak) return static_cast<double>(i);
    return -1.0;
  };
  const auto at10 = db_.farField(10.0);
  const auto at90 = db_.farField(90.0);
  const double itd10 = firstTap(at10.right) - firstTap(at10.left);
  const double itd90 = firstTap(at90.right) - firstTap(at90.left);
  EXPECT_GT(itd90, itd10);
  EXPECT_GT(itd90, 20.0);  // ~0.6+ ms at 48 kHz
}

TEST_F(HrtfDatabaseTest, NearFieldRejectsBadRadius) {
  EXPECT_THROW(db_.nearField(45.0, 0.05), uniq::InvalidArgument);
  EXPECT_THROW(db_.nearField(45.0, 2.0), uniq::InvalidArgument);
}

TEST_F(HrtfDatabaseTest, SameSubjectReproducible) {
  const HrtfDatabase db2{HrtfDatabaseTest::makeSubject()};
  const auto a = db_.farField(60.0);
  const auto b = db2.farField(60.0);
  for (std::size_t i = 0; i < a.left.size(); ++i)
    EXPECT_DOUBLE_EQ(a.left[i], b.left[i]);
}

TEST(HrtfDatabaseNoise, MeasurementNoiseLowersCorrelation) {
  Subject s;
  s.headParams = {0.075, 0.1, 0.09};
  s.pinnaSeed = 5;
  const HrtfDatabase db(s);
  const auto clean = db.farField(45.0);
  Pcg32 rng(3);
  const auto noisy = withMeasurementNoise(clean, 10.0, rng);
  const double corr = eval::hrirSimilarity(clean, noisy);
  EXPECT_GT(corr, 0.8);
  EXPECT_LT(corr, 0.999);
}

TEST(Hrir, NormalizePeakPreservesIldRatio) {
  Hrir h;
  h.sampleRate = 48000;
  h.left = {0.0, 2.0, 0.0};
  h.right = {0.0, 1.0, 0.0};
  normalizePeak(h);
  EXPECT_DOUBLE_EQ(h.left[1], 1.0);
  EXPECT_DOUBLE_EQ(h.right[1], 0.5);
}

TEST(Hrir, RenderBinauralConvolves) {
  Hrir h;
  h.sampleRate = 48000;
  h.left = {1.0};
  h.right = {0.0, 0.5};
  const std::vector<double> mono{1.0, 2.0, 3.0};
  const auto out = renderBinaural(h, mono);
  EXPECT_DOUBLE_EQ(out.left[0], 1.0);
  EXPECT_DOUBLE_EQ(out.left[2], 3.0);
  EXPECT_DOUBLE_EQ(out.right[0], 0.0);
  EXPECT_DOUBLE_EQ(out.right[1], 0.5);
}

TEST(GlobalTemplate, DiffersFromRandomSubject) {
  const auto tmpl = globalTemplateSubject();
  const auto pop = makePopulation(3, 99);
  for (const auto& s : pop) EXPECT_NE(s.pinnaSeed, tmpl.pinnaSeed);
  EXPECT_TRUE(tmpl.headParams.isPlausible());
  EXPECT_TRUE(tmpl.shapeHarmonics.empty());  // the template is the ideal shape
}

}  // namespace
}  // namespace uniq::head
