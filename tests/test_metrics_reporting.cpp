#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "common/random.h"
#include "dsp/signal_generators.h"
#include "eval/metrics.h"
#include "eval/reporting.h"

namespace uniq::eval {
namespace {

TEST(Metrics, IdenticalChannelsGiveUnity) {
  Pcg32 rng(1);
  const auto a = dsp::whiteNoise(128, rng);
  EXPECT_NEAR(channelSimilarity(a, a, 48000.0), 1.0, 1e-9);
}

TEST(Metrics, IndependentNoiseGivesLowSimilarity) {
  Pcg32 rng(2);
  const auto a = dsp::whiteNoise(256, rng);
  const auto b = dsp::whiteNoise(256, rng);
  EXPECT_LT(channelSimilarity(a, b, 48000.0), 0.4);
}

TEST(Metrics, ShiftWithinLagWindowForgiven) {
  Pcg32 rng(3);
  auto a = dsp::whiteNoise(256, rng);
  std::vector<double> b(a.size(), 0.0);
  for (std::size_t i = 10; i < a.size(); ++i) b[i] = a[i - 10];
  // 10 samples ~ 0.21 ms at 48 kHz: inside the 1 ms window.
  EXPECT_GT(channelSimilarity(a, b, 48000.0, 1.0), 0.9);
  // But outside a 0.1 ms window.
  EXPECT_LT(channelSimilarity(a, b, 48000.0, 0.1), 0.5);
}

TEST(Metrics, HrirSimilarityAveragesEars) {
  head::Hrir x, y;
  x.sampleRate = y.sampleRate = 48000.0;
  Pcg32 rng(4);
  x.left = dsp::whiteNoise(64, rng);
  x.right = dsp::whiteNoise(64, rng);
  y.left = x.left;                     // identical left
  y.right = dsp::whiteNoise(64, rng);  // independent right
  const auto per = hrirSimilarityPerEar(x, y);
  EXPECT_NEAR(per.left, 1.0, 1e-9);
  EXPECT_LT(per.right, 0.5);
  EXPECT_NEAR(hrirSimilarity(x, y), 0.5 * (per.left + per.right), 1e-12);
}

TEST(Metrics, MeanMedianStd) {
  const std::vector<double> v{1, 2, 3, 4, 100};
  EXPECT_DOUBLE_EQ(mean(v), 22.0);
  EXPECT_DOUBLE_EQ(median(v), 3.0);
  EXPECT_GT(standardDeviation(v), 40.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(standardDeviation({1.0}), 0.0);
}

TEST(Metrics, PercentileInterpolates) {
  const std::vector<double> v{0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 12.5), 5.0);
  EXPECT_THROW(percentile(v, 120.0), InvalidArgument);
}

TEST(Reporting, CdfMonotoneAndNormalized) {
  const auto cdf = computeCdf({5.0, 1.0, 3.0, 2.0});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf.front().value, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 5.0);
  EXPECT_DOUBLE_EQ(cdf.back().probability, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].probability, cdf[i - 1].probability);
  }
  EXPECT_TRUE(computeCdf({}).empty());
}

TEST(Reporting, PrintSeriesFormatsColumns) {
  std::ostringstream os;
  printSeries(os, "demo", {"x", "y"}, {{1.0, 2.0}, {3.0}});
  const auto text = os.str();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("x"), std::string::npos);
  EXPECT_NE(text.find("1.0000"), std::string::npos);
  EXPECT_THROW(printSeries(os, "bad", {"x"}, {{1.0}, {2.0}}),
               InvalidArgument);
}

TEST(Reporting, PrintCdfSummaryShowsPercentiles) {
  std::ostringstream os;
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(static_cast<double>(i));
  printCdfSummary(os, "errors", samples);
  const auto text = os.str();
  EXPECT_NE(text.find("p 50"), std::string::npos);
  EXPECT_NE(text.find("n=100"), std::string::npos);
}

TEST(Reporting, PrintHeader) {
  std::ostringstream os;
  printHeader(os, "Figure 18", "correlation vs angle");
  EXPECT_NE(os.str().find("Figure 18"), std::string::npos);
}

}  // namespace
}  // namespace uniq::eval
