#include "core/channel_extractor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "dsp/convolution.h"
#include "dsp/signal_generators.h"
#include "eval/metrics.h"
#include "geometry/polar.h"
#include "head/hrtf_database.h"
#include "sim/hardware_model.h"
#include "sim/recorder.h"
#include "sim/room_model.h"

namespace uniq::core {
namespace {

constexpr double kFs = 48000.0;

class ChannelExtractorTest : public ::testing::Test {
 protected:
  static head::Subject subject() {
    head::Subject s;
    s.headParams = {0.073, 0.101, 0.089};
    s.pinnaSeed = 21;
    return s;
  }

  head::HrtfDatabase db_{subject()};
  sim::HardwareModel hardware_{};
  sim::RoomModel room_{};
  std::vector<double> chirp_ = dsp::linearChirp(100.0, 20000.0, 960, kFs);
};

TEST_F(ChannelExtractorTest, RecoversTrueChannelShape) {
  sim::BinauralRecorder::Options recOpts;
  recOpts.snrDb = 30.0;
  const sim::BinauralRecorder recorder(db_, hardware_, room_, recOpts);
  Pcg32 rng(1);
  const geo::Vec2 pos = geo::pointFromPolarDeg(50.0, 0.35);
  const auto rec = recorder.recordNearField(pos, chirp_, rng);

  Pcg32 hwRng(2);
  const ChannelExtractor extractor(hardware_.estimateResponse(35.0, hwRng),
                                   kFs);
  const auto channel = extractor.extract(rec.left, rec.right, chirp_);

  const auto truth = db_.nearFieldAt(pos);
  const double simL =
      eval::channelSimilarity(channel.left, truth.left, kFs, 0.5);
  const double simR =
      eval::channelSimilarity(channel.right, truth.right, kFs, 0.5);
  EXPECT_GT(simL, 0.85);
  EXPECT_GT(simR, 0.75);
}

TEST_F(ChannelExtractorTest, FirstTapMatchesPropagationDelay) {
  sim::BinauralRecorder::Options recOpts;
  recOpts.snrDb = 35.0;
  const sim::BinauralRecorder recorder(db_, hardware_, room_, recOpts);
  Pcg32 rng(3);
  for (double theta : {20.0, 70.0, 110.0, 160.0}) {
    const geo::Vec2 pos = geo::pointFromPolarDeg(theta, 0.33);
    const auto rec = recorder.recordNearField(pos, chirp_, rng);
    Pcg32 hwRng(4);
    const ChannelExtractor extractor(hardware_.estimateResponse(35.0, hwRng),
                                     kFs);
    const auto channel = extractor.extract(rec.left, rec.right, chirp_);
    ASSERT_TRUE(channel.firstTapLeftSec.has_value()) << theta;
    ASSERT_TRUE(channel.firstTapRightSec.has_value()) << theta;
    const auto pathL = geo::nearFieldPath(db_.boundary(), pos, geo::Ear::kLeft);
    const auto pathR =
        geo::nearFieldPath(db_.boundary(), pos, geo::Ear::kRight);
    EXPECT_NEAR(*channel.firstTapLeftSec, pathL.length / kSpeedOfSound,
                4e-5)
        << theta;
    EXPECT_NEAR(*channel.firstTapRightSec, pathR.length / kSpeedOfSound,
                6e-5)
        << theta;
  }
}

TEST_F(ChannelExtractorTest, RoomReflectionsRemoved) {
  sim::RoomModel::Options loudRoom;
  loudRoom.firstEchoGain = 0.5;
  const sim::RoomModel room(loudRoom);
  sim::BinauralRecorder::Options recOpts;
  recOpts.snrDb = 40.0;
  const sim::BinauralRecorder recorder(db_, hardware_, room, recOpts);
  Pcg32 rng(5);
  const geo::Vec2 pos = geo::pointFromPolarDeg(40.0, 0.35);
  const auto rec = recorder.recordNearField(pos, chirp_, rng);
  Pcg32 hwRng(6);
  const ChannelExtractor extractor(hardware_.estimateResponse(35.0, hwRng),
                                   kFs);
  const auto channel = extractor.extract(rec.left, rec.right, chirp_);
  ASSERT_TRUE(channel.firstTapLeftSec.has_value());
  // No energy beyond firstTap + headWindow.
  const auto cutoff = static_cast<std::size_t>(
      (*channel.firstTapLeftSec + extractor.options().headWindowSec) * kFs +
      2);
  for (std::size_t i = cutoff; i < channel.left.size(); ++i)
    EXPECT_DOUBLE_EQ(channel.left[i], 0.0);
}

TEST_F(ChannelExtractorTest, HardwareCompensationImprovesEstimate) {
  sim::BinauralRecorder::Options recOpts;
  recOpts.snrDb = 35.0;
  const sim::BinauralRecorder recorder(db_, hardware_, room_, recOpts);
  Pcg32 rng(7);
  const geo::Vec2 pos = geo::pointFromPolarDeg(60.0, 0.35);
  const auto rec = recorder.recordNearField(pos, chirp_, rng);
  const auto truth = db_.nearFieldAt(pos);

  Pcg32 hwRng(8);
  const auto hwEstimate = hardware_.estimateResponse(35.0, hwRng);
  const ChannelExtractor with(hwEstimate, kFs);
  ChannelExtractorOptions noCompOpts;
  noCompOpts.compensateHardware = false;
  const ChannelExtractor without(hwEstimate, kFs, noCompOpts);

  const auto compensated = with.extract(rec.left, rec.right, chirp_);
  const auto raw = without.extract(rec.left, rec.right, chirp_);
  const double simWith =
      eval::channelSimilarity(compensated.left, truth.left, kFs, 0.5);
  const double simWithout =
      eval::channelSimilarity(raw.left, truth.left, kFs, 0.5);
  EXPECT_GT(simWith, simWithout);
}

TEST_F(ChannelExtractorTest, SilenceYieldsNoTap) {
  const ChannelExtractor extractor({}, kFs);
  std::vector<double> silenceL(4096, 0.0), silenceR(4096, 0.0);
  const auto channel = extractor.extract(silenceL, silenceR, chirp_);
  EXPECT_FALSE(channel.firstTapLeftSec.has_value());
  EXPECT_FALSE(channel.firstTapRightSec.has_value());
}

TEST_F(ChannelExtractorTest, RejectsBadConstruction) {
  EXPECT_THROW(ChannelExtractor({}, 100.0), InvalidArgument);
  ChannelExtractorOptions opts;
  opts.channelLength = 8;
  EXPECT_THROW(ChannelExtractor({}, kFs, opts), InvalidArgument);
}

}  // namespace
}  // namespace uniq::core
