#include "audio/wav.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "common/error.h"
#include "common/random.h"
#include "dsp/signal_generators.h"

namespace uniq::audio {
namespace {

std::string tempPath(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(Wav, MonoRoundTrip) {
  Pcg32 rng(1);
  WavData data;
  data.sampleRate = 48000.0;
  data.channels.push_back(dsp::whiteNoise(1000, rng, 0.5));
  const auto path = tempPath("mono.wav");
  writeWav(path, data);
  const auto back = readWav(path);
  ASSERT_EQ(back.channels.size(), 1u);
  EXPECT_EQ(back.sampleRate, 48000.0);
  ASSERT_EQ(back.channels[0].size(), 1000u);
  for (std::size_t i = 0; i < 1000; ++i) {
    // Writing clips to [-1, 1] (Gaussian noise occasionally exceeds it).
    const double expected = std::clamp(data.channels[0][i], -1.0, 1.0);
    EXPECT_NEAR(back.channels[0][i], expected, 1.0 / 32000.0);
  }
  std::remove(path.c_str());
}

TEST(Wav, StereoRoundTripPreservesChannels) {
  Pcg32 rng(2);
  const auto left = dsp::whiteNoise(500, rng, 0.4);
  const auto right = dsp::whiteNoise(500, rng, 0.4);
  const auto path = tempPath("stereo.wav");
  writeStereoWav(path, left, right, 44100.0);
  const auto back = readWav(path);
  ASSERT_EQ(back.channels.size(), 2u);
  EXPECT_EQ(back.sampleRate, 44100.0);
  // writeStereoWav normalizes; correlation with the originals must be ~1.
  double dotL = 0.0, dotR = 0.0, crossLR = 0.0;
  for (std::size_t i = 0; i < 500; ++i) {
    dotL += back.channels[0][i] * left[i];
    dotR += back.channels[1][i] * right[i];
    crossLR += back.channels[0][i] * right[i];
  }
  EXPECT_GT(dotL, 0.0);
  EXPECT_GT(dotR, 0.0);
  EXPECT_LT(std::fabs(crossLR), dotL * 0.2);  // channels not swapped
  std::remove(path.c_str());
}

TEST(Wav, ClipsOutOfRangeSamples) {
  WavData data;
  data.sampleRate = 48000.0;
  data.channels.push_back({2.0, -3.0, 0.5});
  const auto path = tempPath("clip.wav");
  writeWav(path, data);
  const auto back = readWav(path);
  EXPECT_NEAR(back.channels[0][0], 1.0, 1e-4);
  EXPECT_NEAR(back.channels[0][1], -1.0, 1e-4);
  EXPECT_NEAR(back.channels[0][2], 0.5, 1e-4);
  std::remove(path.c_str());
}

TEST(Wav, MismatchedChannelLengthsRejected) {
  WavData data;
  data.sampleRate = 48000.0;
  data.channels.push_back(std::vector<double>(10, 0.0));
  data.channels.push_back(std::vector<double>(11, 0.0));
  EXPECT_THROW(writeWav(tempPath("bad.wav"), data), InvalidArgument);
}

TEST(Wav, ReadMissingFileThrows) {
  EXPECT_THROW(readWav("/nonexistent/definitely/missing.wav"),
               InvalidArgument);
}

TEST(Wav, NormalizeForPlayback) {
  std::vector<std::vector<double>> channels{{0.1, -0.2}, {0.05, 0.4}};
  normalizeForPlayback(channels, 0.8);
  double peak = 0.0;
  for (const auto& ch : channels)
    for (double v : ch) peak = std::max(peak, std::fabs(v));
  EXPECT_NEAR(peak, 0.8, 1e-12);
  // Silence is untouched.
  std::vector<std::vector<double>> silent{{0.0, 0.0}};
  normalizeForPlayback(silent);
  EXPECT_DOUBLE_EQ(silent[0][0], 0.0);
}

}  // namespace
}  // namespace uniq::audio
