#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/math_util.h"
#include "geometry/head_boundary.h"
#include "geometry/polar.h"
#include "geometry/vec2.h"

namespace uniq::geo {
namespace {

TEST(Vec2, BasicOperations) {
  const Vec2 a{3, 4};
  const Vec2 b{1, -2};
  EXPECT_DOUBLE_EQ((a + b).x, 4);
  EXPECT_DOUBLE_EQ((a - b).y, 6);
  EXPECT_DOUBLE_EQ((a * 2.0).x, 6);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(dot(a, b), 3 - 8);
  EXPECT_DOUBLE_EQ(cross(a, b), -6 - 4);
  EXPECT_NEAR(a.normalized().norm(), 1.0, 1e-12);
}

TEST(Vec2, PerpRotatesCcw) {
  const Vec2 x{1, 0};
  EXPECT_DOUBLE_EQ(x.perp().x, 0);
  EXPECT_DOUBLE_EQ(x.perp().y, 1);
  EXPECT_DOUBLE_EQ(dot(x, x.perp()), 0);
}

class PolarRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(PolarRoundTrip, AzimuthRecovered) {
  const double theta = GetParam();
  const Vec2 p = pointFromPolarDeg(theta, 0.5);
  EXPECT_NEAR(azimuthDegOfPoint(p), theta, 1e-9);
  EXPECT_NEAR(radiusOfPoint(p), 0.5, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Angles, PolarRoundTrip,
                         ::testing::Values(0.0, 30.0, 90.0, 135.0, 179.0,
                                           -45.0));

TEST(Polar, ConventionAnchors) {
  // theta=0 -> nose (+y); theta=90 -> left ear (-x); theta=180 -> back (-y).
  EXPECT_NEAR(pointFromPolarDeg(0.0, 1.0).y, 1.0, 1e-12);
  EXPECT_NEAR(pointFromPolarDeg(90.0, 1.0).x, -1.0, 1e-12);
  EXPECT_NEAR(pointFromPolarDeg(180.0, 1.0).y, -1.0, 1e-12);
}

class HeadBoundaryTest : public ::testing::Test {
 protected:
  HeadBoundary head_{0.075, 0.10, 0.09, 256};
};

TEST_F(HeadBoundaryTest, EarsAtExpectedPositions) {
  EXPECT_NEAR(head_.rightEar().x, 0.075, 1e-12);
  EXPECT_NEAR(head_.rightEar().y, 0.0, 1e-12);
  EXPECT_NEAR(head_.leftEar().x, -0.075, 1e-12);
  const Vec2 atRight = head_.point(head_.rightEarIndex());
  const Vec2 atLeft = head_.point(head_.leftEarIndex());
  EXPECT_NEAR(distance(atRight, head_.rightEar()), 0.0, 1e-12);
  EXPECT_NEAR(distance(atLeft, head_.leftEar()), 0.0, 1e-12);
}

TEST_F(HeadBoundaryTest, PerimeterBetweenInnerAndOuterCircle) {
  const double inner = kTwoPi * 0.075;
  const double outer = kTwoPi * 0.10;
  EXPECT_GT(head_.perimeter(), inner);
  EXPECT_LT(head_.perimeter(), outer);
}

TEST_F(HeadBoundaryTest, InsideOutsideClassification) {
  EXPECT_TRUE(head_.isInside({0, 0}));
  EXPECT_TRUE(head_.isInside({0, 0.09}));    // front, inside b=0.10
  EXPECT_FALSE(head_.isInside({0, 0.11}));
  EXPECT_TRUE(head_.isInside({0, -0.085}));  // back, inside c=0.09
  EXPECT_FALSE(head_.isInside({0, -0.095}));
  EXPECT_FALSE(head_.isInside({0.3, 0.2}));
}

TEST_F(HeadBoundaryTest, NormalsPointOutward) {
  for (std::size_t i = 0; i < head_.size(); i += 7) {
    const Vec2 p = head_.point(i);
    const Vec2 n = head_.normal(i);
    EXPECT_NEAR(n.norm(), 1.0, 1e-9);
    EXPECT_FALSE(head_.isInside(p + n * 0.002)) << "sample " << i;
  }
}

TEST_F(HeadBoundaryTest, PointAtInterpolatesAndWraps) {
  const Vec2 p0 = head_.pointAt(0.0);
  EXPECT_NEAR(distance(p0, head_.rightEar()), 0.0, 1e-12);
  const Vec2 wrapped = head_.pointAt(static_cast<double>(head_.size()) + 3.5);
  const Vec2 direct = head_.pointAt(3.5);
  EXPECT_NEAR(distance(wrapped, direct), 0.0, 1e-12);
}

TEST_F(HeadBoundaryTest, ArcForwardFullLoopIsPerimeter) {
  EXPECT_NEAR(head_.arcForward(5.0, 5.0), 0.0, 1e-12);
  const double forward = head_.arcForward(10.0, 50.0);
  const double backward = head_.arcForward(50.0, 10.0);
  EXPECT_NEAR(forward + backward, head_.perimeter(), 1e-9);
  EXPECT_NEAR(head_.arcShortest(10.0, 50.0), std::min(forward, backward),
              1e-12);
}

TEST_F(HeadBoundaryTest, TangentsFromExternalPointAreTangent) {
  const Vec2 p{0.4, 0.25};
  const auto tangents = head_.tangentsFrom(p);
  for (double u : {tangents.u1, tangents.u2}) {
    const Vec2 t = head_.pointAt(u);
    // Tangency: the segment from p to t grazes the boundary; points just
    // inside the segment's continuation must stay outside the head.
    const Vec2 dir = (t - p).normalized();
    EXPECT_FALSE(head_.isInside(p + dir * (distance(p, t) * 0.5)));
    // The visibility value changes sign at the tangency param, so at the
    // interpolated point it should be near zero.
    // The discrete sample adjacent to the interpolated tangency parameter
    // should have a visibility value near the sign change.
    const auto i = static_cast<std::size_t>(u) % head_.size();
    const double g = head_.visibilityValue(p, i);
    EXPECT_LT(std::fabs(g), 0.03);
  }
}

TEST_F(HeadBoundaryTest, TangentsRejectInteriorPoint) {
  EXPECT_THROW(head_.tangentsFrom({0.0, 0.0}), InvalidArgument);
}

TEST_F(HeadBoundaryTest, TerminatorsPerpendicularToDirection) {
  const Vec2 d = Vec2{1.0, 0.4}.normalized();
  const auto terms = head_.terminators(d);
  for (double u : {terms.u1, terms.u2}) {
    const auto i = static_cast<std::size_t>(u) % head_.size();
    EXPECT_LT(std::fabs(dot(d, head_.normal(i))), 0.05);
  }
}

TEST_F(HeadBoundaryTest, IndexWithNormalFindsCrown) {
  // Normal +y is at the nose (front crown).
  const double u = head_.indexWithNormal({0, 1});
  const Vec2 p = head_.pointAt(u);
  EXPECT_NEAR(p.x, 0.0, 0.01);
  EXPECT_NEAR(p.y, 0.10, 0.005);
}

TEST(HeadBoundaryHarmonics, PerturbationStaysSmallAndEarsExact) {
  std::vector<BoundaryHarmonic> harmonics{{2, 0.02, 0.3}, {3, 0.015, 1.1}};
  const HeadBoundary ideal(0.075, 0.10, 0.09, 256);
  const HeadBoundary bumpy(0.075, 0.10, 0.09, harmonics, 256);
  // Ears unchanged.
  EXPECT_NEAR(distance(bumpy.point(bumpy.rightEarIndex()), ideal.rightEar()),
              0.0, 1e-9);
  EXPECT_NEAR(distance(bumpy.point(bumpy.leftEarIndex()), ideal.leftEar()),
              0.0, 1e-9);
  // Deviation bounded by the harmonic amplitudes.
  double maxDev = 0.0;
  for (std::size_t i = 0; i < bumpy.size(); ++i)
    maxDev = std::max(maxDev, distance(bumpy.point(i), ideal.point(i)));
  EXPECT_GT(maxDev, 0.0005);  // actually perturbed
  EXPECT_LT(maxDev, 0.10 * (0.02 + 0.015) + 0.001);
  // Normals remain unit outward.
  for (std::size_t i = 0; i < bumpy.size(); i += 13) {
    EXPECT_NEAR(bumpy.normal(i).norm(), 1.0, 1e-9);
    EXPECT_FALSE(bumpy.isInside(bumpy.point(i) + bumpy.normal(i) * 0.004));
  }
}

TEST(HeadBoundaryValidation, RejectsBadParameters) {
  EXPECT_THROW(HeadBoundary(-0.07, 0.1, 0.09), InvalidArgument);
  EXPECT_THROW(HeadBoundary(0.07, 0.1, 0.09, 15), InvalidArgument);
  EXPECT_THROW(HeadBoundary(0.07, 0.1, 0.09, 33), InvalidArgument);
}

}  // namespace
}  // namespace uniq::geo
