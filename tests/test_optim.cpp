#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "optim/nelder_mead.h"
#include "optim/root_finding.h"

namespace uniq::optim {
namespace {

TEST(NelderMead, MinimizesQuadraticBowl) {
  const auto f = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + 2.0 * (x[1] + 1.0) * (x[1] + 1.0);
  };
  NelderMeadOptions opts;
  opts.maxIterations = 500;
  const auto result = nelderMead(f, {0.0, 0.0}, opts);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 3.0, 1e-4);
  EXPECT_NEAR(result.x[1], -1.0, 1e-4);
  EXPECT_NEAR(result.fValue, 0.0, 1e-7);
}

TEST(NelderMead, MinimizesRosenbrock) {
  const auto f = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opts;
  opts.maxIterations = 3000;
  opts.initialStep = 0.5;
  opts.fTolerance = 1e-14;
  opts.xTolerance = 1e-10;
  const auto result = nelderMead(f, {-1.2, 1.0}, opts);
  EXPECT_NEAR(result.x[0], 1.0, 1e-3);
  EXPECT_NEAR(result.x[1], 1.0, 1e-3);
}

TEST(NelderMead, OneDimensional) {
  const auto f = [](const std::vector<double>& x) {
    return std::cos(x[0]) + x[0] * x[0] / 10.0;
  };
  const auto result = nelderMead(f, {1.0});
  // Minimum of cos(x)+x^2/10: where sin(x) = x/5, x ~ 2.596.
  EXPECT_NEAR(result.x[0], 2.596, 0.05);
}

TEST(NelderMead, RespectsIterationBudget) {
  int evals = 0;
  const auto f = [&evals](const std::vector<double>& x) {
    ++evals;
    return x[0] * x[0];
  };
  NelderMeadOptions opts;
  opts.maxIterations = 10;
  opts.fTolerance = 0.0;  // never converge by tolerance
  opts.xTolerance = 0.0;
  const auto result = nelderMead(f, {5.0}, opts);
  EXPECT_EQ(result.iterations, 10u);
  EXPECT_LT(evals, 100);
}

TEST(NelderMead, RejectsEmptyStart) {
  EXPECT_THROW(nelderMead([](const std::vector<double>&) { return 0.0; }, {}),
               InvalidArgument);
}

TEST(RootFinding, BisectFindsSimpleRoot) {
  const auto f = [](double x) { return x * x - 2.0; };
  const double root = bisect(f, 0.0, 2.0);
  EXPECT_NEAR(root, std::sqrt(2.0), 1e-8);
}

TEST(RootFinding, BisectRejectsBadBracket) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_THROW(bisect(f, -1.0, 1.0), NumericalFailure);
  EXPECT_THROW(bisect(f, 1.0, -1.0), InvalidArgument);
}

TEST(RootFinding, BrentFindsRootFasterThanBisection) {
  int evalsBrent = 0, evalsBisect = 0;
  const auto fb = [&evalsBrent](double x) {
    ++evalsBrent;
    return std::cos(x) - x;
  };
  const auto fbi = [&evalsBisect](double x) {
    ++evalsBisect;
    return std::cos(x) - x;
  };
  RootOptions opts;
  opts.xTolerance = 1e-12;
  const double rb = brent(fb, 0.0, 1.5, opts);
  const double rbi = bisect(fbi, 0.0, 1.5, opts);
  EXPECT_NEAR(rb, rbi, 1e-9);
  EXPECT_NEAR(rb, 0.7390851332, 1e-8);
  EXPECT_LT(evalsBrent, evalsBisect);
}

TEST(RootFinding, BrentHandlesEndpointRoot) {
  const auto f = [](double x) { return x - 1.0; };
  EXPECT_NEAR(brent(f, 1.0, 2.0), 1.0, 1e-12);
}

TEST(RootFinding, FindAllRootsOfSine) {
  const auto f = [](double x) { return std::sin(x); };
  const auto roots = findAllRoots(f, 0.5, 3.5 * kPi, 100);
  ASSERT_EQ(roots.size(), 3u);
  EXPECT_NEAR(roots[0], kPi, 1e-8);
  EXPECT_NEAR(roots[1], 2 * kPi, 1e-8);
  EXPECT_NEAR(roots[2], 3 * kPi, 1e-8);
}

TEST(RootFinding, FindAllRootsEmptyWhenNoSignChange) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_TRUE(findAllRoots(f, -5.0, 5.0, 50).empty());
}

}  // namespace
}  // namespace uniq::optim
