#include "dsp/biquad.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"

namespace uniq::dsp {
namespace {

constexpr double kFs = 48000.0;

std::vector<double> sine(double freq, std::size_t n) {
  std::vector<double> s(n);
  for (std::size_t i = 0; i < n; ++i)
    s[i] = std::sin(kTwoPi * freq * static_cast<double>(i) / kFs);
  return s;
}

double steadyStateRms(const std::vector<double>& s) {
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t i = s.size() / 2; i < s.size(); ++i) {
    acc += s[i] * s[i];
    ++count;
  }
  return std::sqrt(acc / static_cast<double>(count));
}

TEST(Biquad, LowpassAttenuatesHighFrequencies) {
  auto lp = Biquad::lowpass(1000.0, 0.707, kFs);
  const auto lowOut = lp.process(sine(100.0, 4800));
  lp.reset();
  const auto highOut = lp.process(sine(10000.0, 4800));
  EXPECT_GT(steadyStateRms(lowOut), 0.6);
  EXPECT_LT(steadyStateRms(highOut), 0.05);
}

TEST(Biquad, HighpassAttenuatesLowFrequencies) {
  auto hp = Biquad::highpass(1000.0, 0.707, kFs);
  const auto lowOut = hp.process(sine(100.0, 4800));
  hp.reset();
  const auto highOut = hp.process(sine(10000.0, 4800));
  EXPECT_LT(steadyStateRms(lowOut), 0.05);
  EXPECT_GT(steadyStateRms(highOut), 0.6);
}

TEST(Biquad, BandpassPeaksAtCenter) {
  auto bp = Biquad::bandpass(2000.0, 2.0, kFs);
  const double atCenter = bp.magnitudeAt(2000.0, kFs);
  EXPECT_NEAR(atCenter, 1.0, 0.05);
  EXPECT_LT(bp.magnitudeAt(200.0, kFs), 0.25);
  EXPECT_LT(bp.magnitudeAt(18000.0, kFs), 0.25);
}

TEST(Biquad, MagnitudeMatchesMeasuredGain) {
  auto lp = Biquad::lowpass(3000.0, 0.707, kFs);
  const double freq = 2000.0;
  const double predicted = lp.magnitudeAt(freq, kFs);
  const auto out = lp.process(sine(freq, 9600));
  const double measured = steadyStateRms(out) * std::sqrt(2.0);
  EXPECT_NEAR(measured, predicted, 0.03);
}

TEST(Biquad, ResponseAtDcForLowpassIsUnity) {
  auto lp = Biquad::lowpass(1000.0, 0.707, kFs);
  EXPECT_NEAR(std::abs(lp.responseAt(0.0, kFs)), 1.0, 1e-9);
}

TEST(Biquad, RejectsBadParameters) {
  EXPECT_THROW(Biquad::lowpass(0.0, 0.7, kFs), InvalidArgument);
  EXPECT_THROW(Biquad::lowpass(25000.0, 0.7, kFs), InvalidArgument);
  EXPECT_THROW(Biquad::highpass(100.0, 0.0, kFs), InvalidArgument);
  EXPECT_THROW(Biquad::bandpass(-5.0, 1.0, kFs), InvalidArgument);
}

TEST(Biquad, ResetClearsState) {
  auto lp = Biquad::lowpass(500.0, 0.707, kFs);
  const auto first = lp.process(sine(100.0, 256));
  lp.reset();
  const auto second = lp.process(sine(100.0, 256));
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_DOUBLE_EQ(first[i], second[i]);
}

TEST(BiquadCascade, CombinesSections) {
  BiquadCascade cascade;
  cascade.add(Biquad::highpass(300.0, 0.707, kFs));
  cascade.add(Biquad::lowpass(3000.0, 0.707, kFs));
  const auto inBand = cascade.process(sine(1000.0, 4800));
  cascade.reset();
  const auto below = cascade.process(sine(30.0, 4800));
  cascade.reset();
  const auto above = cascade.process(sine(15000.0, 4800));
  EXPECT_GT(steadyStateRms(inBand), 0.5);
  EXPECT_LT(steadyStateRms(below), 0.05);
  EXPECT_LT(steadyStateRms(above), 0.05);
}

}  // namespace
}  // namespace uniq::dsp
