// Failure-injection and robustness sweeps over the full pipeline: degraded
// SNR, constrained angular coverage, loud rooms, heavy IMU noise. These
// exercise the operating conditions the paper's Section 4.6 engineering
// notes exist for.
#include <gtest/gtest.h>

#include "common/error.h"
#include "eval/experiments.h"
#include "eval/metrics.h"

namespace uniq {
namespace {

double uniqMinusGlobal(const eval::CalibratedVolunteer& run) {
  const auto series = eval::correlationVsAngle(run, 15.0);
  const double uniq =
      0.5 * (eval::mean(series.uniqLeft) + eval::mean(series.uniqRight));
  const double global =
      0.5 * (eval::mean(series.globalLeft) + eval::mean(series.globalRight));
  return uniq - global;
}

class SnrSweep : public ::testing::TestWithParam<double> {};

TEST_P(SnrSweep, PersonalizationSurvivesLowSnr) {
  eval::ExperimentConfig config;
  config.session.recordingSnrDb = GetParam();
  const auto population = eval::makeStudyPopulation(config);
  const auto run = eval::calibrate(population[1], config);
  // Even at the lowest SNR, the personalized table must beat the global
  // template by a clear margin.
  EXPECT_GT(uniqMinusGlobal(run), 0.1) << "SNR " << GetParam();
  EXPECT_TRUE(run.personal.headParams.isPlausible());
}

INSTANTIATE_TEST_SUITE_P(Levels, SnrSweep,
                         ::testing::Values(12.0, 20.0, 35.0));

TEST(Robustness, PartialAngularCoverageStillBuildsFullTable) {
  eval::ExperimentConfig config;
  const auto population = eval::makeStudyPopulation(config);
  eval::Volunteer limited = population[2];
  // The user can only sweep a 70-degree window in front.
  limited.gesture.angleStartDeg = 30.0;
  limited.gesture.angleEndDeg = 100.0;
  limited.gesture.stops = 20;
  const auto run = eval::calibrate(limited, config);
  EXPECT_EQ(run.personal.table.farTable().byDegree.size(), 181u);
  // Inside the covered window the estimate is strong...
  head::HrtfDatabase::Options dbOpts;
  const head::HrtfDatabase truthDb(limited.subject, dbOpts);
  const auto truthTable = core::farTableFromDatabase(truthDb);
  const double inWindow = eval::hrirSimilarity(
      run.personal.table.farAt(60.0), truthTable.at(60.0));
  EXPECT_GT(inWindow, 0.6);
}

TEST(Robustness, LoudRoomEchoesHandledByPreprocessing) {
  eval::ExperimentConfig loud;
  loud.session.noiseSeed = 777;  // different room draw
  const auto population = eval::makeStudyPopulation(loud);
  const auto run = eval::calibrate(population[0], loud);
  EXPECT_GT(uniqMinusGlobal(run), 0.15);
}

TEST(Robustness, HeavyImuNoiseDegradesButFlagsOrSurvives) {
  eval::ExperimentConfig config;
  config.session.imuModel.facingErrorDeg = 15.0;
  config.session.imuModel.aimJitterDeg = 8.0;
  const auto population = eval::makeStudyPopulation(config);
  const auto run = eval::calibrate(population[0], config);
  // Either the gesture validator notices, or the output still beats the
  // global template (both are acceptable system behaviours; silently
  // producing a table worse than the global default is not).
  const bool flagged = !run.personal.gestureReport.ok;
  const bool stillBetter = uniqMinusGlobal(run) > 0.0;
  EXPECT_TRUE(flagged || stillBetter);
}

TEST(Robustness, FewStopsRejectedCleanly) {
  eval::ExperimentConfig config;
  const auto population = eval::makeStudyPopulation(config);
  eval::Volunteer sparse = population[0];
  sparse.gesture.stops = 4;
  // Too few stops to personalize: the pipeline must not throw or produce
  // silent garbage — it fails over to the population-average table and says
  // so in the diagnostics.
  const auto run = eval::calibrate(sparse, config);
  EXPECT_EQ(run.personal.status, core::PipelineStatus::kFailed);
  EXPECT_FALSE(run.personal.diagnostics.empty());
  bool sawError = false;
  for (const auto& d : run.personal.diagnostics)
    sawError = sawError || d.severity == obs::Severity::kError;
  EXPECT_TRUE(sawError);
  // The fallback table is still a complete, renderable table.
  EXPECT_EQ(run.personal.table.farTable().byDegree.size(), 181u);
  EXPECT_FALSE(run.personal.gestureReport.ok);
}

TEST(Robustness, DeterministicEndToEnd) {
  eval::ExperimentConfig config;
  const auto population = eval::makeStudyPopulation(config);
  const auto runA = eval::calibrate(population[1], config);
  const auto runB = eval::calibrate(population[1], config);
  EXPECT_DOUBLE_EQ(runA.personal.headParams.a, runB.personal.headParams.a);
  EXPECT_DOUBLE_EQ(runA.personal.headParams.b, runB.personal.headParams.b);
  const auto& ha = runA.personal.table.farAt(42.0);
  const auto& hb = runB.personal.table.farAt(42.0);
  for (std::size_t i = 0; i < ha.left.size(); ++i)
    EXPECT_DOUBLE_EQ(ha.left[i], hb.left[i]);
}

}  // namespace
}  // namespace uniq
