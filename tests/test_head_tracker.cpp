#include "spatial3d/head_tracker.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "core/near_far.h"
#include "dsp/peak_picking.h"
#include "dsp/signal_generators.h"
#include "head/hrtf_database.h"

namespace uniq::spatial3d {
namespace {

constexpr double kFs = 48000.0;

class TrackedRendererTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    head::Subject s;
    s.headParams = {0.074, 0.104, 0.09};
    s.pinnaSeed = 111;
    head::HrtfDatabase::Options dbOpts;
    db_ = new head::HrtfDatabase(s, dbOpts);
    auto far = core::farTableFromDatabase(*db_);
    core::NearFieldTable nearTable;
    nearTable.sampleRate = far.sampleRate;
    nearTable.headParams = far.headParams;
    nearTable.medianRadiusM = 0.35;
    nearTable.byDegree.resize(181);
    nearTable.tapLeftSamples.assign(181, 24.0);
    nearTable.tapRightSamples.assign(181, 28.0);
    for (int deg = 0; deg <= 180; ++deg)
      nearTable.byDegree[deg] = db_->nearField(static_cast<double>(deg), 0.35);
    table_ = new core::HrtfTable(std::move(nearTable), std::move(far));
  }
  static void TearDownTestSuite() {
    delete table_;
    delete db_;
  }
  static head::HrtfDatabase* db_;
  static core::HrtfTable* table_;
};

head::HrtfDatabase* TrackedRendererTest::db_ = nullptr;
core::HrtfTable* TrackedRendererTest::table_ = nullptr;

TEST_F(TrackedRendererTest, StaticHeadMatchesPlainRender) {
  const TrackedRenderer tracked(*table_);
  Pcg32 rng(1);
  const auto mono = dsp::whiteNoise(12000, rng, 0.2);
  const std::vector<double> stillYaw(10, 0.0);
  const auto dynamic = tracked.renderTracked(60.0, mono, stillYaw, 20.0);
  const auto fixed = table_->renderFar(60.0, mono);
  // Same filter throughout: identical up to the crossfade bookkeeping.
  double err = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < fixed.left.size(); ++i) {
    const double d = dynamic.left[i] - fixed.left[i];
    err += d * d;
    ref += fixed.left[i] * fixed.left[i];
  }
  EXPECT_LT(err / ref, 1e-6);
}

TEST_F(TrackedRendererTest, RotationMovesTheImage) {
  const TrackedRenderer tracked(*table_);
  Pcg32 rng(2);
  const auto mono = dsp::whiteNoise(48000, rng, 0.2);  // 1 s
  // The head turns from 0 to 120 degrees over the second; source fixed at
  // world bearing 60 deg: it starts front-left and ends behind-right-ish.
  std::vector<double> yaw(100);
  for (std::size_t i = 0; i < yaw.size(); ++i)
    yaw[i] = 120.0 * static_cast<double>(i) / 99.0;
  const auto out = tracked.renderTracked(60.0, mono, yaw, 100.0);

  // Early window (head at ~0 deg: source on the LEFT, left ear louder) vs
  // late window (head past 60: source on the RIGHT side of the nose).
  auto windowIld = [&](std::size_t from, std::size_t to) {
    double l = 0.0, r = 0.0;
    for (std::size_t i = from; i < to; ++i) {
      l += out.left[i] * out.left[i];
      r += out.right[i] * out.right[i];
    }
    return 10.0 * std::log10(l / r);
  };
  const double early = windowIld(0, 12000);
  const double late = windowIld(36000, 48000);
  EXPECT_GT(early, 3.0);   // clearly left
  EXPECT_LT(late, early - 3.0);  // image moved toward/past the median plane
}

TEST_F(TrackedRendererTest, CrossfadePreventsEnvelopeDips) {
  const TrackedRenderer tracked(*table_);
  // A constant tone: block switching without crossfade would modulate the
  // envelope; with it, mid-signal RMS per window stays flat.
  std::vector<double> tone(24000);
  for (std::size_t i = 0; i < tone.size(); ++i)
    tone[i] = std::sin(kTwoPi * 500.0 * static_cast<double>(i) / kFs);
  const std::vector<double> yaw{0.0, 30.0, 60.0, 90.0};
  const auto out = tracked.renderTracked(45.0, tone, yaw, 8.0);
  std::vector<double> rmsPerWindow;
  for (std::size_t start = 2000; start + 2000 < 22000; start += 1000) {
    double acc = 0.0;
    for (std::size_t i = start; i < start + 2000; ++i)
      acc += out.left[i] * out.left[i];
    rmsPerWindow.push_back(std::sqrt(acc / 2000.0));
  }
  double minRms = 1e18, maxRms = 0.0;
  for (double v : rmsPerWindow) {
    minRms = std::min(minRms, v);
    maxRms = std::max(maxRms, v);
  }
  // The level changes as the filter angle changes, but must never collapse
  // (a missing crossfade would notch the envelope toward zero).
  EXPECT_GT(minRms, 0.15 * maxRms);
}

TEST_F(TrackedRendererTest, Validation) {
  const TrackedRenderer tracked(*table_);
  EXPECT_THROW(tracked.renderTracked(60.0, {}, {0.0}, 10.0),
               InvalidArgument);
  EXPECT_THROW(tracked.renderTracked(60.0, {1.0}, {}, 10.0),
               InvalidArgument);
  TrackedRendererOptions bad;
  bad.crossfadeSamples = bad.blockSize + 1;
  EXPECT_THROW(TrackedRenderer(*table_, bad), InvalidArgument);
}

TEST_F(TrackedRendererTest, NearFieldRadiusChangesCues) {
  // Companion feature: distance-aware near-field rendering.
  const auto closeHrir = table_->nearHrirAt(60.0, 0.18);
  const auto tableHrir = table_->nearHrirAt(60.0, 0.35);
  const auto farHrir = table_->nearHrirAt(60.0, 0.8);
  // Closer source: louder and earlier.
  EXPECT_GT(head::channelEnergy(closeHrir.left),
            head::channelEnergy(tableHrir.left));
  EXPECT_LT(head::channelEnergy(farHrir.left),
            head::channelEnergy(tableHrir.left));
  const auto tapClose = dsp::findFirstTap(closeHrir.left);
  const auto tapFar = dsp::findFirstTap(farHrir.left);
  ASSERT_TRUE(tapClose && tapFar);
  EXPECT_LT(tapClose->position, tapFar->position);
  // At the table radius it's the untouched table entry.
  const auto& raw = table_->nearAt(60.0);
  for (std::size_t i = 0; i < raw.left.size(); ++i)
    EXPECT_DOUBLE_EQ(tableHrir.left[i], raw.left[i]);
  EXPECT_THROW(table_->nearHrirAt(60.0, 0.05), InvalidArgument);
}

}  // namespace
}  // namespace uniq::spatial3d
