#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/error.h"
#include "core/pipeline.h"
#include "dsp/peak_picking.h"
#include "geometry/polar.h"
#include "dsp/signal_generators.h"
#include "eval/experiments.h"
#include "eval/metrics.h"

namespace uniq {
namespace {

/// Full end-to-end calibration is ~2-3 s, so it runs once per suite and the
/// individual tests assert different facets of the same result.
class PipelineIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::ExperimentConfig config;
    const auto population = eval::makeStudyPopulation(config);
    run_ = new eval::CalibratedVolunteer(
        eval::calibrate(population[0], config));
  }
  static void TearDownTestSuite() {
    delete run_;
    run_ = nullptr;
  }
  static eval::CalibratedVolunteer* run_;
};

eval::CalibratedVolunteer* PipelineIntegration::run_ = nullptr;

TEST_F(PipelineIntegration, HeadParametersPlausible) {
  EXPECT_TRUE(run_->personal.headParams.isPlausible());
  // Ear axis within a few millimeters of the truth.
  EXPECT_NEAR(run_->personal.headParams.a,
              run_->volunteer.subject.headParams.a, 0.008);
}

TEST_F(PipelineIntegration, AllStopsProcessed) {
  EXPECT_EQ(run_->personal.fusion.stops.size(),
            run_->capture.stops.size());
  EXPECT_GT(run_->personal.fusion.localizedCount,
            run_->capture.stops.size() * 3 / 4);
}

TEST_F(PipelineIntegration, GestureAccepted) {
  EXPECT_TRUE(run_->personal.gestureReport.ok)
      << (run_->personal.gestureReport.issues.empty()
              ? ""
              : run_->personal.gestureReport.issues[0]);
}

TEST_F(PipelineIntegration, LocalizationMedianErrorSmall) {
  const auto loc = eval::localizationAccuracy(*run_);
  ASSERT_GT(loc.absErrorDeg.size(), 20u);
  EXPECT_LT(eval::median(loc.absErrorDeg), 6.0);
}

TEST_F(PipelineIntegration, PersonalizedBeatsGlobalHeadline) {
  // The paper's key result: the personalized HRTF correlates with the
  // ground truth substantially better than the global template.
  const auto series = eval::correlationVsAngle(*run_, 15.0);
  const double uniqAvg =
      0.5 * (eval::mean(series.uniqLeft) + eval::mean(series.uniqRight));
  const double globalAvg =
      0.5 * (eval::mean(series.globalLeft) + eval::mean(series.globalRight));
  const double repeatAvg =
      0.5 * (eval::mean(series.repeatLeft) + eval::mean(series.repeatRight));
  EXPECT_GT(uniqAvg, globalAvg + 0.15);
  EXPECT_GT(uniqAvg / globalAvg, 1.3);
  EXPECT_GE(repeatAvg, uniqAvg - 0.05);  // repeat measurement ~ upper bound
}

TEST_F(PipelineIntegration, TablesWellFormed) {
  const auto& table = run_->personal.table;
  EXPECT_EQ(table.nearTable().byDegree.size(), 181u);
  EXPECT_EQ(table.farTable().byDegree.size(), 181u);
  EXPECT_GT(table.nearTable().medianRadiusM, 0.2);
  EXPECT_LT(table.nearTable().medianRadiusM, 0.5);
}

TEST_F(PipelineIntegration, RenderedBinauralItdSignCorrect) {
  // A far-field render from the left must reach the left ear first.
  const auto chirp = dsp::linearChirp(200.0, 8000.0, 2400, 48000.0);
  const auto out = run_->personal.table.renderFar(90.0, chirp);
  const auto tapL = dsp::findFirstTap(out.left);
  const auto tapR = dsp::findFirstTap(out.right);
  ASSERT_TRUE(tapL && tapR);
  EXPECT_LT(tapL->position, tapR->position);
}

TEST_F(PipelineIntegration, RenderFromSwitchesNearFar) {
  const std::vector<double> click{1.0, 0.5, 0.25};
  const auto nearOut =
      run_->personal.table.renderFrom(geo::pointFromPolarDeg(60.0, 0.4), click);
  const auto farOut =
      run_->personal.table.renderFrom(geo::pointFromPolarDeg(60.0, 3.0), click);
  const auto nearRef = run_->personal.table.renderNear(60.0, 0.4, click);
  const auto farRef = run_->personal.table.renderFar(60.0, click);
  EXPECT_EQ(nearOut.left, nearRef.left);
  EXPECT_EQ(farOut.left, farRef.left);
  EXPECT_NE(nearOut.left, farOut.left);
}

TEST_F(PipelineIntegration, KnownSourceAoaBeatsGlobal) {
  head::HrtfDatabase::Options dbOpts;
  dbOpts.sampleRate = 48000.0;
  const head::HrtfDatabase truthDb(run_->volunteer.subject, dbOpts);
  const head::HrtfDatabase globalDb(head::globalTemplateSubject(), dbOpts);
  const auto globalTable = core::farTableFromDatabase(globalDb);

  eval::AoaExperimentOptions opts;
  opts.trialAnglesDeg = {25.0, 65.0, 115.0, 155.0};
  const auto personalTrials =
      eval::runAoaTrials(truthDb, run_->personal.table.farTable(), true,
                         eval::SignalKind::kChirp, opts);
  const auto globalTrials = eval::runAoaTrials(
      truthDb, globalTable, true, eval::SignalKind::kChirp, opts);
  EXPECT_LT(eval::mean(eval::absErrors(personalTrials)),
            eval::mean(eval::absErrors(globalTrials)));
  EXPECT_LT(eval::median(eval::absErrors(personalTrials)), 10.0);
}

TEST(PipelineValidation, RejectsEmptyCapture) {
  const core::CalibrationPipeline pipeline;
  sim::CalibrationCapture empty;
  EXPECT_THROW(pipeline.run(empty), InvalidArgument);
}

TEST(PipelineValidation, BadGestureIsFlagged) {
  // A sweep held far too close to the head should trip the validator.
  eval::ExperimentConfig config;
  auto population = eval::makeStudyPopulation(config);
  eval::Volunteer bad = population[1];
  bad.gesture.radiusMeanM = 0.16;
  bad.gesture.radiusWobbleM = 0.01;
  const auto run = eval::calibrate(bad, config);
  EXPECT_FALSE(run.personal.gestureReport.ok);
}

}  // namespace
}  // namespace uniq
