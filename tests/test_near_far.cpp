#include "core/near_far.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "core/near_field_hrtf.h"
#include "dsp/peak_picking.h"
#include "eval/metrics.h"
#include "geometry/diffraction.h"
#include "geometry/polar.h"

namespace uniq::core {
namespace {

constexpr double kFs = 48000.0;

head::Subject testSubject() {
  head::Subject s;
  s.headParams = {0.072, 0.103, 0.090};
  s.pinnaSeed = 41;
  return s;
}

head::Subject otherSubject() {
  head::Subject s;
  s.headParams = {0.080, 0.112, 0.096};
  s.pinnaSeed = 4242;
  return s;
}

/// Ideal near-field table: built straight from the ground-truth database.
NearFieldTable idealNearTable(const head::Subject& subject) {
  head::HrtfDatabase::Options dbOpts;
  dbOpts.sampleRate = kFs;
  const head::HrtfDatabase db(subject, dbOpts);
  std::vector<FusedStop> stops;
  std::vector<BinauralChannel> channels;
  for (double ang = 2; ang <= 178; ang += 4) {
    const geo::Vec2 pos = geo::pointFromPolarDeg(ang, 0.35);
    const auto hrir = db.nearFieldAt(pos);
    FusedStop stop;
    stop.localized = true;
    stop.angleDeg = ang;
    stop.radiusM = 0.35;
    stop.imuAngleDeg = ang;
    BinauralChannel ch;
    ch.sampleRate = kFs;
    ch.left = hrir.left;
    ch.right = hrir.right;
    const auto tapL = dsp::findFirstTap(ch.left);
    const auto tapR = dsp::findFirstTap(ch.right);
    ch.firstTapLeftSec = tapL->position / kFs;
    ch.firstTapRightSec = tapR->position / kFs;
    stops.push_back(stop);
    channels.push_back(std::move(ch));
  }
  const NearFieldHrtfBuilder builder;
  return builder.build(stops, channels, subject.headParams);
}

class NearFarTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    nearTable_ = new NearFieldTable(idealNearTable(testSubject()));
    head::HrtfDatabase::Options dbOpts;
    dbOpts.sampleRate = kFs;
    truthDb_ = new head::HrtfDatabase(testSubject(), dbOpts);
  }
  static void TearDownTestSuite() {
    delete nearTable_;
    delete truthDb_;
    nearTable_ = nullptr;
    truthDb_ = nullptr;
  }
  static NearFieldTable* nearTable_;
  static head::HrtfDatabase* truthDb_;
};

NearFieldTable* NearFarTest::nearTable_ = nullptr;
head::HrtfDatabase* NearFarTest::truthDb_ = nullptr;

TEST_F(NearFarTest, ConvertedTableHasExpectedShape) {
  const NearFarConverter converter;
  const auto far = converter.convert(*nearTable_);
  EXPECT_EQ(far.byDegree.size(), 181u);
  EXPECT_EQ(far.sampleRate, kFs);
  for (const auto& hrir : far.byDegree) {
    EXPECT_GT(head::channelEnergy(hrir.left), 0.0);
    EXPECT_GT(head::channelEnergy(hrir.right), 0.0);
  }
}

TEST_F(NearFarTest, ImposedDelaysMatchPlaneWaveModel) {
  const NearFarConverter converter;
  const auto far = converter.convert(*nearTable_);
  const auto& E = nearTable_->headParams;
  const geo::HeadBoundary boundary(E.a, E.b, E.c, 256);
  for (int deg : {10, 50, 90, 130, 170}) {
    const geo::Vec2 d =
        -geo::directionFromAzimuthDeg(static_cast<double>(deg));
    const double expectedItd =
        (geo::farFieldPath(boundary, d, geo::Ear::kLeft).length -
         geo::farFieldPath(boundary, d, geo::Ear::kRight).length) /
        kSpeedOfSound;
    const double tableItd =
        (far.tapLeftSamples[deg] - far.tapRightSamples[deg]) / kFs;
    EXPECT_NEAR(tableItd, expectedItd, 2e-6) << deg;
  }
}

TEST_F(NearFarTest, ConvertedFarMatchesTruthFarBetterThanOtherSubject) {
  const NearFarConverter converter;
  const auto far = converter.convert(*nearTable_);
  const auto truthFar = farTableFromDatabase(*truthDb_);
  head::HrtfDatabase::Options dbOpts;
  dbOpts.sampleRate = kFs;
  const head::HrtfDatabase otherDb(otherSubject(), dbOpts);
  const auto otherFar = farTableFromDatabase(otherDb);

  double simTruth = 0.0, simOther = 0.0;
  int count = 0;
  for (double ang = 10; ang <= 170; ang += 20) {
    simTruth += eval::hrirSimilarity(far.at(ang), truthFar.at(ang));
    simOther += eval::hrirSimilarity(otherFar.at(ang), truthFar.at(ang));
    ++count;
  }
  simTruth /= count;
  simOther /= count;
  EXPECT_GT(simTruth, 0.7);
  EXPECT_GT(simTruth, simOther + 0.1);
}

TEST_F(NearFarTest, ShadowedEarAttenuatedInFarTable) {
  const NearFarConverter converter;
  const auto far = converter.convert(*nearTable_);
  // Plane wave from the left (90 deg): right ear shadowed.
  const auto& hrir = far.at(90.0);
  EXPECT_GT(head::channelEnergy(hrir.left),
            2.0 * head::channelEnergy(hrir.right));
}

TEST_F(NearFarTest, RejectsWrongTableSize) {
  NearFieldTable bad = *nearTable_;
  bad.byDegree.resize(90);
  const NearFarConverter converter;
  EXPECT_THROW(converter.convert(bad), InvalidArgument);
}

TEST(FarTableFromDatabase, TapsAnchoredAtAlignSample) {
  head::HrtfDatabase::Options dbOpts;
  dbOpts.sampleRate = kFs;
  const head::HrtfDatabase db(testSubject(), dbOpts);
  const auto table = farTableFromDatabase(db, 32.0, 192);
  for (int deg : {0, 45, 90, 135, 180}) {
    const double minTap =
        std::min(table.tapLeftSamples[deg], table.tapRightSamples[deg]);
    EXPECT_NEAR(minTap, 32.0, 1e-9) << deg;
    // Verify the actual channel energy starts near the declared tap.
    const auto& earlier = table.tapLeftSamples[deg] < table.tapRightSamples[deg]
                              ? table.byDegree[deg].left
                              : table.byDegree[deg].right;
    const auto tap = dsp::findFirstTap(earlier);
    ASSERT_TRUE(tap.has_value());
    EXPECT_NEAR(tap->position, 32.0, 2.0) << deg;
  }
}

TEST(FarTableFromDatabase, ItdSymmetricFrontBackForSymmetricHead) {
  head::Subject s;
  s.headParams = {0.075, 0.095, 0.095};
  s.pinnaSeed = 51;
  head::HrtfDatabase::Options dbOpts;
  dbOpts.sampleRate = kFs;
  const head::HrtfDatabase db(s, dbOpts);
  const auto table = farTableFromDatabase(db);
  for (int deg : {20, 40, 60, 80}) {
    const double itdFront =
        table.tapLeftSamples[deg] - table.tapRightSamples[deg];
    const double itdBack = table.tapLeftSamples[180 - deg] -
                           table.tapRightSamples[180 - deg];
    EXPECT_NEAR(itdFront, itdBack, 0.35) << deg;
  }
}

}  // namespace
}  // namespace uniq::core
