#include "core/beamformer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "dsp/correlation.h"
#include "dsp/signal_generators.h"
#include "eval/experiments.h"
#include "head/hrtf_database.h"
#include "sim/recorder.h"

namespace uniq::core {
namespace {

constexpr double kFs = 48000.0;

class BeamformerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    head::Subject s;
    s.headParams = {0.073, 0.105, 0.091};
    s.pinnaSeed = 81;
    head::HrtfDatabase::Options dbOpts;
    db_ = new head::HrtfDatabase(s, dbOpts);
    table_ = new FarFieldTable(farTableFromDatabase(*db_));
    hardware_ = new sim::HardwareModel();
    room_ = new sim::RoomModel(sim::RoomModel::anechoic());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete table_;
    delete hardware_;
    delete room_;
  }

  /// Record target + interferer mixtures at the two ears.
  struct Mixture {
    std::vector<double> left, right;
    std::vector<double> target;      // clean target at the source
    std::vector<double> interferer;  // clean interferer at the source
  };
  Mixture makeMixture(double targetDeg, double interfererDeg,
                      std::uint64_t seed) const {
    sim::BinauralRecorder::Options opts;
    opts.snrDb = 60.0;  // interferer dominates the "noise"
    const sim::BinauralRecorder recorder(*db_, *hardware_, *room_, opts);
    Pcg32 rng(seed);
    Mixture mix;
    Pcg32 tRng = rng.fork(1), iRng = rng.fork(2);
    mix.target = eval::makeSignal(eval::SignalKind::kSpeech, 24000, kFs, tRng);
    mix.interferer =
        eval::makeSignal(eval::SignalKind::kWhiteNoise, 24000, kFs, iRng);
    const auto recT =
        recorder.recordFarField(targetDeg, mix.target, tRng, false);
    const auto recI =
        recorder.recordFarField(interfererDeg, mix.interferer, iRng, false);
    const std::size_t n = std::min(recT.left.size(), recI.left.size());
    mix.left.resize(n);
    mix.right.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      mix.left[i] = recT.left[i] + recI.left[i];
      mix.right[i] = recT.right[i] + recI.right[i];
    }
    return mix;
  }

  static head::HrtfDatabase* db_;
  static FarFieldTable* table_;
  static sim::HardwareModel* hardware_;
  static sim::RoomModel* room_;
};

head::HrtfDatabase* BeamformerTest::db_ = nullptr;
FarFieldTable* BeamformerTest::table_ = nullptr;
sim::HardwareModel* BeamformerTest::hardware_ = nullptr;
sim::RoomModel* BeamformerTest::room_ = nullptr;

TEST_F(BeamformerTest, OnAxisResponseIsMaximal) {
  const BinauralBeamformer beam(*table_);
  EXPECT_NEAR(beam.relativeResponse(60.0, 60.0), 1.0, 1e-9);
  // Responses away from the steering direction are attenuated (the
  // coherence stays fairly high because neighboring-angle HRTFs share the
  // low-frequency structure; the strict bound is < 1).
  EXPECT_LT(beam.relativeResponse(60.0, 120.0), 0.95);
  EXPECT_LT(beam.relativeResponse(30.0, 150.0), 0.95);
  EXPECT_GT(beam.relativeResponse(60.0, 60.0),
            beam.relativeResponse(60.0, 120.0));
}

TEST_F(BeamformerTest, SteeringRecoversTargetBetterThanSingleEar) {
  const BinauralBeamformer beam(*table_);
  const auto mix = makeMixture(40.0, 130.0, 7);
  const auto enhanced = beam.steer(mix.left, mix.right, 40.0);

  // Score: correlation of each candidate output against the clean target.
  const auto score = [&](const std::vector<double>& sig) {
    return dsp::normalizedCorrelationPeak(sig, mix.target).value;
  };
  const double beamScore = score(enhanced);
  const double leftScore = score(mix.left);
  const double rightScore = score(mix.right);
  EXPECT_GT(beamScore, std::max(leftScore, rightScore));
}

TEST_F(BeamformerTest, SteeringTowardInterfererRecoversInterferer) {
  const BinauralBeamformer beam(*table_);
  const auto mix = makeMixture(40.0, 130.0, 8);
  const auto towardTarget = beam.steer(mix.left, mix.right, 40.0);
  const auto towardInterferer = beam.steer(mix.left, mix.right, 130.0);
  const auto corrWith = [&](const std::vector<double>& sig,
                            const std::vector<double>& ref) {
    return dsp::normalizedCorrelationPeak(sig, ref).value;
  };
  EXPECT_GT(corrWith(towardTarget, mix.target),
            corrWith(towardTarget, mix.interferer));
  EXPECT_GT(corrWith(towardInterferer, mix.interferer),
            corrWith(towardInterferer, mix.target));
}

TEST_F(BeamformerTest, RejectsBadInput) {
  const BinauralBeamformer beam(*table_);
  std::vector<double> empty;
  std::vector<double> some(100, 0.1);
  EXPECT_THROW(beam.steer(empty, some, 30.0), InvalidArgument);
  BeamformerOptions bad;
  bad.diagonalLoading = 0.0;
  EXPECT_THROW(BinauralBeamformer(*table_, bad), InvalidArgument);
  BeamformerOptions badFrame;
  badFrame.frameLength = 1000;  // not a power of two
  EXPECT_THROW(BinauralBeamformer(*table_, badFrame), InvalidArgument);
}

}  // namespace
}  // namespace uniq::core
