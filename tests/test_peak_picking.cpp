#include "dsp/peak_picking.h"

#include <gtest/gtest.h>

#include "dsp/fractional_delay.h"

namespace uniq::dsp {
namespace {

TEST(FindTaps, EmptyAndTinyInputs) {
  std::vector<double> empty;
  EXPECT_TRUE(findTaps(empty).empty());
  std::vector<double> two{1.0, 2.0};
  EXPECT_TRUE(findTaps(two).empty());
  EXPECT_FALSE(findFirstTap(two).has_value());
}

TEST(FindTaps, SilenceHasNoTaps) {
  std::vector<double> h(100, 0.0);
  EXPECT_TRUE(findTaps(h).empty());
}

TEST(FindTaps, SingleIntegerTap) {
  std::vector<double> h(64, 0.0);
  h[20] = 1.0;
  const auto taps = findTaps(h);
  ASSERT_EQ(taps.size(), 1u);
  EXPECT_NEAR(taps[0].position, 20.0, 1e-9);
  EXPECT_NEAR(taps[0].amplitude, 1.0, 1e-9);
}

class FractionalTapPosition : public ::testing::TestWithParam<double> {};

TEST_P(FractionalTapPosition, SubSampleAccuracy) {
  const double pos = GetParam();
  std::vector<double> h(128, 0.0);
  addFractionalTap(h, pos, 1.0, 16);
  // Parabolic refinement of a |sinc| mainlobe carries a small systematic
  // bias (worst near +/-0.25 fractional offsets).
  const auto tap = findFirstTap(h);
  ASSERT_TRUE(tap.has_value());
  EXPECT_NEAR(tap->position, pos, 0.25) << "true position " << pos;
}

INSTANTIATE_TEST_SUITE_P(Positions, FractionalTapPosition,
                         ::testing::Values(30.0, 30.25, 30.5, 41.75, 63.33,
                                           77.9));

TEST(FindTaps, NegativeTapDetectedByMagnitude) {
  std::vector<double> h(64, 0.0);
  h[15] = -0.8;
  const auto tap = findFirstTap(h);
  ASSERT_TRUE(tap.has_value());
  EXPECT_NEAR(tap->position, 15.0, 1e-9);
  EXPECT_NEAR(tap->amplitude, 0.8, 1e-9);
}

TEST(FindTaps, ThresholdSuppressesSmallPeaks) {
  std::vector<double> h(64, 0.0);
  h[10] = 0.2;   // below 0.35 * 1.0
  h[30] = 1.0;
  FirstTapOptions opts;
  const auto first = findFirstTap(h, opts);
  ASSERT_TRUE(first.has_value());
  EXPECT_NEAR(first->position, 30.0, 1e-9);
  // Lower the threshold and the early tap becomes the first.
  opts.relativeThreshold = 0.1;
  const auto lowered = findFirstTap(h, opts);
  ASSERT_TRUE(lowered.has_value());
  EXPECT_NEAR(lowered->position, 10.0, 1e-9);
}

TEST(FindTaps, SkipSamplesIgnoresEdgeArtifacts) {
  std::vector<double> h(64, 0.0);
  h[1] = 2.0;  // deconvolution edge artifact
  h[30] = 1.0;
  FirstTapOptions opts;
  opts.skipSamples = 5;
  const auto tap = findFirstTap(h, opts);
  ASSERT_TRUE(tap.has_value());
  EXPECT_NEAR(tap->position, 30.0, 1e-9);
}

TEST(FindTaps, MultipleTapsSortedByPosition) {
  std::vector<double> h(128, 0.0);
  h[20] = 0.6;
  h[50] = 1.0;
  h[80] = 0.5;
  const auto taps = findTaps(h);
  ASSERT_EQ(taps.size(), 3u);
  EXPECT_LT(taps[0].position, taps[1].position);
  EXPECT_LT(taps[1].position, taps[2].position);
}

TEST(FindStrongestTap, PicksLargest) {
  std::vector<double> h(128, 0.0);
  h[20] = 0.6;
  h[50] = -1.0;
  h[80] = 0.5;
  const auto tap = findStrongestTap(h);
  ASSERT_TRUE(tap.has_value());
  EXPECT_NEAR(tap->position, 50.0, 1e-9);
}

TEST(FindTaps, PlateauHandled) {
  // Two equal adjacent samples: should produce exactly one tap (the
  // earlier sample wins via >=, > comparison pair).
  std::vector<double> h(32, 0.0);
  h[10] = 1.0;
  h[11] = 1.0;
  h[12] = 0.2;
  const auto taps = findTaps(h);
  ASSERT_EQ(taps.size(), 1u);
}

}  // namespace
}  // namespace uniq::dsp
