#include "dsp/signal_generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "dsp/fft.h"
#include "dsp/spectrum.h"

namespace uniq::dsp {
namespace {

constexpr double kFs = 48000.0;

TEST(Chirp, LengthAndAmplitudeBounds) {
  const auto c = linearChirp(100.0, 20000.0, 960, kFs, 0.8);
  EXPECT_EQ(c.size(), 960u);
  for (double v : c) EXPECT_LE(std::fabs(v), 0.8 + 1e-12);
}

TEST(Chirp, StartsAndEndsFaded) {
  const auto c = linearChirp(100.0, 20000.0, 960, kFs);
  EXPECT_LT(std::fabs(c.front()), 1e-6);
  EXPECT_LT(std::fabs(c.back()), 1e-6);
}

TEST(Chirp, EnergySpreadAcrossBand) {
  const auto c = linearChirp(1000.0, 10000.0, 4096, kFs);
  const auto spec = fftReal(c);
  const double inBand = bandAverageMagnitude(spec, kFs, 2000.0, 9000.0);
  const double below = bandAverageMagnitude(spec, kFs, 50.0, 500.0);
  const double above = bandAverageMagnitude(spec, kFs, 15000.0, 22000.0);
  EXPECT_GT(inBand, 5.0 * below);
  EXPECT_GT(inBand, 5.0 * above);
}

TEST(Chirp, RejectsBadParameters) {
  EXPECT_THROW(linearChirp(100.0, 1000.0, 1, kFs), InvalidArgument);
  EXPECT_THROW(linearChirp(100.0, -5.0, 100, kFs), InvalidArgument);
  EXPECT_THROW(exponentialChirp(0.0, 1000.0, 100, kFs), InvalidArgument);
  EXPECT_THROW(exponentialChirp(2000.0, 1000.0, 100, kFs), InvalidArgument);
}

TEST(ExponentialChirp, SweepsLowToHigh) {
  const auto c = exponentialChirp(200.0, 16000.0, 9600, kFs);
  EXPECT_EQ(c.size(), 9600u);
  // Count zero crossings in the first and last quarter: frequency rises.
  auto crossings = [&](std::size_t lo, std::size_t hi) {
    int count = 0;
    for (std::size_t i = lo + 1; i < hi; ++i)
      if ((c[i - 1] < 0) != (c[i] < 0)) ++count;
    return count;
  };
  EXPECT_GT(crossings(7200, 9600), 3 * crossings(0, 2400));
}

TEST(WhiteNoise, StatisticsRoughlyGaussian) {
  Pcg32 rng(3);
  const auto n = whiteNoise(20000, rng, 2.0);
  double mean = 0.0;
  for (double v : n) mean += v;
  mean /= static_cast<double>(n.size());
  double var = 0.0;
  for (double v : n) var += (v - mean) * (v - mean);
  var /= static_cast<double>(n.size());
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(SpeechLike, LowFrequencyDominated) {
  Pcg32 rng(4);
  const auto s = speechLike(24000, kFs, rng);
  EXPECT_EQ(s.size(), 24000u);
  EXPECT_GT(rms(s), 0.1);
  const auto spec = fftReal(s);
  const double low = bandAverageMagnitude(spec, kFs, 100.0, 3500.0);
  const double high = bandAverageMagnitude(spec, kFs, 8000.0, 20000.0);
  EXPECT_GT(low, 10.0 * high);
}

TEST(MusicLike, HasEnergyAndNoteStructure) {
  Pcg32 rng(5);
  const auto m = musicLike(24000, kFs, rng);
  EXPECT_EQ(m.size(), 24000u);
  EXPECT_GT(rms(m), 0.1);
}

TEST(MusicLike, DeterministicForSameSeed) {
  Pcg32 rngA(6), rngB(6);
  const auto a = musicLike(4800, kFs, rngA);
  const auto b = musicLike(4800, kFs, rngB);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(NormalizeRms, HitsTarget) {
  std::vector<double> s{1.0, -1.0, 1.0, -1.0};
  normalizeRms(s, 0.5);
  EXPECT_NEAR(rms(s), 0.5, 1e-12);
}

TEST(NormalizeRms, SilenceIsNoOp) {
  std::vector<double> s(16, 0.0);
  normalizeRms(s, 1.0);
  for (double v : s) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(AddNoise, AchievesRequestedSnr) {
  Pcg32 rng(8);
  std::vector<double> clean(48000);
  for (std::size_t i = 0; i < clean.size(); ++i)
    clean[i] = std::sin(kTwoPi * 440.0 * static_cast<double>(i) / kFs);
  auto noisy = clean;
  addNoiseSnrDb(noisy, 20.0, rng);
  double noiseEnergy = 0.0, signalEnergy = 0.0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    noiseEnergy += (noisy[i] - clean[i]) * (noisy[i] - clean[i]);
    signalEnergy += clean[i] * clean[i];
  }
  const double snr = 10.0 * std::log10(signalEnergy / noiseEnergy);
  EXPECT_NEAR(snr, 20.0, 0.5);
}

}  // namespace
}  // namespace uniq::dsp
