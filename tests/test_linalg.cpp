#include "optim/linalg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/random.h"

namespace uniq::optim {
namespace {

TEST(Matrix, BasicOpsAndBounds) {
  Matrix m(2, 3);
  m.at(0, 0) = 1;
  m.at(1, 2) = 5;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 5);
  EXPECT_THROW(m.at(2, 0), InvalidArgument);
  EXPECT_THROW(Matrix(0, 3), InvalidArgument);
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t.at(2, 1), 5);
}

TEST(Matrix, MultiplyKnownExample) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Matrix b(2, 2);
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
}

TEST(Matrix, ApplyVector) {
  Matrix a(2, 3);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      a.at(r, c) = static_cast<double>(r * 3 + c + 1);
  const auto y = a.apply({1.0, 0.0, -1.0});
  EXPECT_DOUBLE_EQ(y[0], 1.0 - 3.0);
  EXPECT_DOUBLE_EQ(y[1], 4.0 - 6.0);
}

TEST(Eigenvalues, DiagonalMatrix) {
  Matrix m(3, 3);
  m.at(0, 0) = 3;
  m.at(1, 1) = -1;
  m.at(2, 2) = 7;
  const auto eig = symmetricEigenvalues(m);
  ASSERT_EQ(eig.size(), 3u);
  EXPECT_NEAR(eig[0], 7, 1e-10);
  EXPECT_NEAR(eig[1], 3, 1e-10);
  EXPECT_NEAR(eig[2], -1, 1e-10);
}

TEST(Eigenvalues, KnownSymmetric2x2) {
  // [[2,1],[1,2]] -> eigenvalues 3 and 1.
  Matrix m(2, 2);
  m.at(0, 0) = 2;
  m.at(0, 1) = 1;
  m.at(1, 0) = 1;
  m.at(1, 1) = 2;
  const auto eig = symmetricEigenvalues(m);
  EXPECT_NEAR(eig[0], 3.0, 1e-10);
  EXPECT_NEAR(eig[1], 1.0, 1e-10);
}

TEST(Eigenvalues, TraceAndSumMatchForRandomSymmetric) {
  Pcg32 rng(5);
  const std::size_t n = 8;
  Matrix m(n, n);
  double trace = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = r; c < n; ++c) {
      const double v = rng.gaussian();
      m.at(r, c) = v;
      m.at(c, r) = v;
    }
    trace += m.at(r, r);
  }
  const auto eig = symmetricEigenvalues(m);
  double sum = 0.0;
  for (double v : eig) sum += v;
  EXPECT_NEAR(sum, trace, 1e-8);
}

TEST(SingularValues, OrthogonalColumnsGiveEqualSingulars) {
  Matrix m(2, 2);
  m.at(0, 0) = 3;
  m.at(1, 1) = 3;  // 3 * identity
  const auto sv = singularValues(m);
  EXPECT_NEAR(sv[0], 3.0, 1e-9);
  EXPECT_NEAR(sv[1], 3.0, 1e-9);
  EXPECT_NEAR(conditionNumber(m), 1.0, 1e-9);
}

TEST(ConditionNumber, SingularMatrixIsInfinite) {
  Matrix m(2, 2);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(1, 0) = 2;
  m.at(1, 1) = 4;  // rank 1
  EXPECT_TRUE(std::isinf(conditionNumber(m)));
}

TEST(SolveLinear, KnownSystem) {
  Matrix m(2, 2);
  m.at(0, 0) = 2;
  m.at(0, 1) = 1;
  m.at(1, 0) = 1;
  m.at(1, 1) = 3;
  const auto x = solveLinear(m, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, SingularThrows) {
  Matrix m(2, 2);
  m.at(0, 0) = 1;
  m.at(0, 1) = 1;
  m.at(1, 0) = 1;
  m.at(1, 1) = 1;
  EXPECT_THROW(solveLinear(m, {1.0, 2.0}), NumericalFailure);
}

TEST(LeastSquares, OverdeterminedConsistentSystem) {
  // Fit y = 2x + 1 from exact samples.
  Matrix a(4, 2);
  std::vector<double> b(4);
  for (int i = 0; i < 4; ++i) {
    a.at(i, 0) = static_cast<double>(i);
    a.at(i, 1) = 1.0;
    b[static_cast<std::size_t>(i)] = 2.0 * i + 1.0;
  }
  const auto x = solveLeastSquares(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], 1.0, 1e-10);
}

TEST(LeastSquares, RegularizationShrinksSolution) {
  Matrix a(3, 1);
  a.at(0, 0) = 1;
  a.at(1, 0) = 1;
  a.at(2, 0) = 1;
  const std::vector<double> b{3.0, 3.0, 3.0};
  const auto plain = solveLeastSquares(a, b, 0.0);
  const auto ridge = solveLeastSquares(a, b, 3.0);
  EXPECT_NEAR(plain[0], 3.0, 1e-10);
  EXPECT_NEAR(ridge[0], 3.0 * 3.0 / (3.0 + 3.0), 1e-10);
}

}  // namespace
}  // namespace uniq::optim
