#include "dsp/fft_plan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/constants.h"
#include "common/error.h"
#include "common/random.h"
#include "dsp/fft.h"

namespace uniq::dsp {
namespace {

std::vector<Complex> randomComplex(std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Complex> v(n);
  for (auto& x : v) x = Complex(rng.gaussian(), rng.gaussian());
  return v;
}

/// O(n^2) DFT, the independent ground truth both FFT paths are checked
/// against.
std::vector<Complex> naiveDft(const std::vector<Complex>& in, bool inverse) {
  const std::size_t n = in.size();
  std::vector<Complex> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    Complex sum(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = sign * kTwoPi * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n);
      sum += in[t] * Complex(std::cos(angle), std::sin(angle));
    }
    if (inverse) sum /= static_cast<double>(n);
    out[k] = sum;
  }
  return out;
}

double maxAbsDiff(const std::vector<Complex>& a,
                  const std::vector<Complex>& b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

TEST(FftPlan, Pow2MatchesSeedReferenceImplementation) {
  for (const std::size_t n : {2u, 8u, 64u, 1024u}) {
    auto planned = randomComplex(n, 10 + n);
    auto reference = planned;
    const auto plan = fftPlan(n);
    plan->forwardInPlace(planned);
    fftPow2ReferenceInPlace(reference, false);
    EXPECT_LT(maxAbsDiff(planned, reference), 1e-9) << "n=" << n;

    plan->inverseInPlace(planned);
    fftPow2ReferenceInPlace(reference, true);
    EXPECT_LT(maxAbsDiff(planned, reference), 1e-9) << "n=" << n;
  }
}

TEST(FftPlan, BluesteinMatchesNaiveDft) {
  for (const std::size_t n : {3u, 7u, 12u, 100u, 129u}) {
    const auto in = randomComplex(n, 20 + n);
    const auto plan = fftPlan(n);
    EXPECT_FALSE(plan->isPow2());
    EXPECT_LT(maxAbsDiff(plan->forward(in), naiveDft(in, false)), 1e-8)
        << "n=" << n;
    EXPECT_LT(maxAbsDiff(plan->inverse(in), naiveDft(in, true)), 1e-8)
        << "n=" << n;
  }
}

TEST(FftPlan, RfftMatchesFullComplexFft) {
  for (const std::size_t n : {2u, 4u, 16u, 1024u}) {
    Pcg32 rng(30 + n);
    std::vector<double> signal(n);
    for (auto& s : signal) s = rng.gaussian();

    std::vector<Complex> full(n);
    for (std::size_t i = 0; i < n; ++i) full[i] = Complex(signal[i], 0.0);
    fftPow2ReferenceInPlace(full, false);

    const auto half = rfft(signal);
    ASSERT_EQ(half.size(), n / 2 + 1) << "n=" << n;
    for (std::size_t k = 0; k <= n / 2; ++k)
      EXPECT_LT(std::abs(half[k] - full[k]), 1e-9) << "n=" << n << " k=" << k;
  }
}

TEST(FftPlan, RfftIrfftRoundTripIsIdentity) {
  for (const std::size_t n : {2u, 4u, 8u, 256u, 4096u}) {
    Pcg32 rng(40 + n);
    std::vector<double> signal(n);
    for (auto& s : signal) s = rng.gaussian();
    const auto back = irfft(rfft(signal), n);
    ASSERT_EQ(back.size(), n);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(back[i], signal[i], 1e-9) << "n=" << n << " i=" << i;
  }
}

TEST(FftPlan, CacheCountsHitsAndMisses) {
  // An uncommon length keeps this test independent of which plans other
  // tests already cached.
  const std::size_t n = 1 << 14;
  fftPlan(n);  // warm: miss on first-ever use, hit otherwise
  resetFftStats();
  const auto before = fftStats();
  EXPECT_EQ(before.planHits, 0u);
  EXPECT_EQ(before.planMisses, 0u);
  fftPlan(n);
  fftPlan(n);
  const auto after = fftStats();
  EXPECT_EQ(after.planHits, 2u);
  EXPECT_EQ(after.planMisses, 0u);
  EXPECT_GE(after.cachedPlans, 1u);
}

TEST(FftPlan, ConcurrentLookupsAndTransformsAreRaceFree) {
  // Several threads hammer the cache with overlapping sizes while
  // transforming; every thread must see results identical to the serial
  // reference.
  const std::vector<std::size_t> sizes = {64, 100, 256, 1000};
  std::vector<std::vector<Complex>> inputs;
  std::vector<std::vector<Complex>> expected;
  for (const auto n : sizes) {
    inputs.push_back(randomComplex(n, 50 + n));
    expected.push_back(naiveDft(inputs.back(), false));
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  std::vector<double> worstPerThread(kThreads, 0.0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      double worst = 0.0;
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t which = static_cast<std::size_t>(t + round) %
                                  sizes.size();
        const auto plan = fftPlan(sizes[which]);
        const auto out = plan->forward(inputs[which]);
        for (std::size_t i = 0; i < out.size(); ++i)
          worst = std::max(worst, std::abs(out[i] - expected[which][i]));
      }
      worstPerThread[static_cast<std::size_t>(t)] = worst;
    });
  }
  for (auto& th : threads) th.join();
  for (const double worst : worstPerThread) EXPECT_LT(worst, 1e-8);
}

TEST(FftPlan, NextPowerOfTwoThrowsInsteadOfOverflowing) {
  constexpr std::size_t kMaxPow2 =
      std::size_t{1} << (std::numeric_limits<std::size_t>::digits - 1);
  EXPECT_EQ(nextPowerOfTwo(kMaxPow2), kMaxPow2);
  EXPECT_THROW(nextPowerOfTwo(kMaxPow2 + 1), InvalidArgument);
  EXPECT_THROW(nextPowerOfTwo(std::numeric_limits<std::size_t>::max()),
               InvalidArgument);
}

}  // namespace
}  // namespace uniq::dsp
