#include "core/ray_decomposition.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace uniq::core {
namespace {

TEST(RayDecomposition, MatrixHasExpectedShape) {
  SpeakerBeamformingStudyOptions opts;
  opts.rayCount = 8;
  opts.patternCount = 20;
  const auto m = buildBeamformingMatrix(opts);
  EXPECT_EQ(m.rows(), 40u);
  EXPECT_EQ(m.cols(), 16u);
}

TEST(RayDecomposition, TwoSpeakerSystemIsIllConditioned) {
  // The paper's finding: two speakers cannot form narrow beams, so the
  // per-ray system is effectively rank-deficient.
  SpeakerBeamformingStudyOptions opts;
  const double cond2 = conditionNumberForSpeakerCount(opts, 2);
  EXPECT_GT(cond2, 1e3);
}

TEST(RayDecomposition, RankIsLimitedBySpeakerCount) {
  // The structural reason for the failure: every beam pattern is a linear
  // combination of S per-speaker steering vectors, so the measurement
  // matrix has (complex) rank at most min(S, rayCount) regardless of how
  // many time-varying patterns are played.
  SpeakerBeamformingStudyOptions opts;  // 12 rays
  const auto phoneMatrix = buildBeamformingMatrix(opts);
  // Tolerance accounts for the Jacobi eigensolver's numerical floor on the
  // squared singular values.
  EXPECT_EQ(optim::numericalRank(phoneMatrix, 1e-5), 4u);  // 2 * 2 speakers

  // Counterfactual: enough ideal emitters make the system solvable.
  const double condMany = conditionNumberForSpeakerCount(opts, 16);
  EXPECT_TRUE(std::isfinite(condMany));
  const double condPhone = conditionNumberForSpeakerCount(opts, 2);
  EXPECT_TRUE(std::isinf(condPhone) || condPhone > 1e6);
}

TEST(RayDecomposition, RecoveryFailsAtRealisticSnr) {
  SpeakerBeamformingStudyOptions opts;
  const auto result = runRayRecoveryStudy(opts, 30.0);
  // Even 30 dB measurements cannot recover the rays through the
  // ill-conditioned system: relative error stays large.
  EXPECT_GT(result.noisyError, 0.3);
  EXPECT_GT(result.conditionNumber, 1e3);
}

TEST(RayDecomposition, FewRaysAreRecoverable) {
  // With very few unknown directions the two-speaker system is (barely)
  // informative — the failure is specific to fine angular decomposition.
  SpeakerBeamformingStudyOptions opts;
  opts.rayCount = 2;
  opts.patternCount = 24;
  const auto result = runRayRecoveryStudy(opts, 40.0);
  EXPECT_LT(result.noiselessError, 0.05);
  EXPECT_LT(result.conditionNumber, 100.0);
}

TEST(RayDecomposition, ErrorGrowsWithNoise) {
  SpeakerBeamformingStudyOptions opts;
  opts.rayCount = 6;
  const auto clean = runRayRecoveryStudy(opts, 60.0);
  const auto noisy = runRayRecoveryStudy(opts, 10.0);
  EXPECT_GT(noisy.noisyError, clean.noisyError);
}

TEST(RayDecomposition, RejectsBadOptions) {
  SpeakerBeamformingStudyOptions opts;
  opts.rayCount = 1;
  EXPECT_THROW(buildBeamformingMatrix(opts), InvalidArgument);
  SpeakerBeamformingStudyOptions opts2;
  opts2.patternCount = 4;
  opts2.rayCount = 12;
  EXPECT_THROW(buildBeamformingMatrix(opts2), InvalidArgument);
  SpeakerBeamformingStudyOptions opts3;
  EXPECT_THROW(conditionNumberForSpeakerCount(opts3, 0), InvalidArgument);
}

}  // namespace
}  // namespace uniq::core
