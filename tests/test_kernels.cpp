// SIMD-vs-scalar equivalence tests for the dsp/kernels tier layer.
//
// Error budgets (documented here, asserted below; eps = 2^-52):
//  - FFT butterfly cascades: the AVX2 tier contracts each butterfly's
//    complex multiply into FMAs (one rounding instead of two), so a log2(n)
//    stage cascade can drift a few ulps per bin. Budget: 8 eps relative to
//    the spectrum's max magnitude (64 eps for Bluestein, whose chirp
//    pre/post multiplies and length-m convolution triple the op count).
//  - Batched vs single transforms: the batched cascade applies the exact
//    same operation sequence per batch member as the single-transform
//    kernels (same stage tables, same FMA idioms), so results are asserted
//    BITWISE equal, per tier.
//  - Pointwise complex kernels: one FMA contraction per element. Budget:
//    4 eps relative to the element magnitude.
//  - Reductions (dot/sumSquares/sum/pearson): the AVX2 tier reorders the
//    sum into 8 partial accumulators. Budget: 1e-12 relative to the sum of
//    absolute terms.
//  - visibilityCrossings: both tiers compute the classifier with explicit
//    mul/sub (never FMA — the AVX2 translation unit uses intrinsics the
//    compiler cannot contract), so crossing counts and fractions are
//    asserted BITWISE equal. This also makes the DSF solve (whose hot loop
//    is this kernel plus tier-independent scalar geometry) bitwise
//    reproducible across tiers, asserted end-to-end via solveRobust.
//
// Every test runs in both the default (UNIQ_SIMD=ON) and the UNIQ_SIMD=OFF
// CI builds; tier-pair comparisons skip themselves when the AVX2 tier is
// not compiled in or the CPU lacks it.

#include "dsp/kernels/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <limits>
#include <vector>

#include "common/constants.h"
#include "common/random.h"
#include "core/sensor_fusion.h"
#include "dsp/fft.h"
#include "dsp/fft_plan.h"
#include "geometry/diffraction.h"
#include "geometry/head_boundary.h"
#include "geometry/polar.h"

namespace uniq {
namespace {

namespace kn = dsp::kernels;

class KernelTiers : public ::testing::Test {
 protected:
  void SetUp() override {
    natural_ = kn::activeIsa();
    haveAvx2_ = kn::setIsaOverride(kn::Isa::kAvx2);
    kn::setIsaOverride(natural_);
  }
  void TearDown() override { kn::setIsaOverride(natural_); }

  /// Run `f` under the given tier and restore the natural tier after.
  template <class F>
  auto under(kn::Isa isa, F&& f) {
    EXPECT_TRUE(kn::setIsaOverride(isa));
    auto result = f();
    kn::setIsaOverride(natural_);
    return result;
  }

  bool haveAvx2_ = false;
  kn::Isa natural_ = kn::Isa::kScalar;
};

constexpr double kEps = std::numeric_limits<double>::epsilon();

std::vector<double> testSignal(std::size_t n, int seed) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto t = static_cast<double>(i);
    x[i] = std::sin(0.013 * t * (seed + 1)) +
           0.5 * std::cos(0.71 * t + seed) + 0.1 * std::sin(2.9 * t);
  }
  return x;
}

std::vector<dsp::Complex> testSpectrum(std::size_t n, int seed) {
  const auto re = testSignal(n, seed);
  const auto im = testSignal(n, seed + 100);
  std::vector<dsp::Complex> z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = {re[i], im[i]};
  return z;
}

double maxMagnitude(const std::vector<dsp::Complex>& z) {
  double m = 0.0;
  for (const auto& v : z) m = std::max(m, std::abs(v));
  return m;
}

void expectSpectraClose(const std::vector<dsp::Complex>& a,
                        const std::vector<dsp::Complex>& b, double ulps) {
  ASSERT_EQ(a.size(), b.size());
  const double tol = ulps * kEps * std::max(maxMagnitude(a), 1.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), tol) << "bin " << i;
    EXPECT_NEAR(a[i].imag(), b[i].imag(), tol) << "bin " << i;
  }
}

TEST_F(KernelTiers, ForwardPow2TiersMatch) {
  if (!haveAvx2_) GTEST_SKIP() << "AVX2 tier unavailable";
  for (std::size_t n : {16ul, 256ul, 4096ul}) {
    const auto plan = dsp::fftPlan(n);
    const auto input = testSpectrum(n, 1);
    const auto scalar =
        under(kn::Isa::kScalar, [&] { return plan->forward(input); });
    const auto avx2 =
        under(kn::Isa::kAvx2, [&] { return plan->forward(input); });
    expectSpectraClose(scalar, avx2, 8.0);
  }
}

TEST_F(KernelTiers, RfftIrfftTiersMatchAndRoundTrip) {
  if (!haveAvx2_) GTEST_SKIP() << "AVX2 tier unavailable";
  for (std::size_t n : {64ul, 2048ul}) {
    const auto plan = dsp::fftPlan(n);
    const auto x = testSignal(n, 2);
    const auto scalarSpec =
        under(kn::Isa::kScalar, [&] { return plan->rfft(x); });
    const auto avx2Spec = under(kn::Isa::kAvx2, [&] { return plan->rfft(x); });
    expectSpectraClose(scalarSpec, avx2Spec, 8.0);

    const auto scalarBack =
        under(kn::Isa::kScalar, [&] { return plan->irfft(scalarSpec); });
    const auto avx2Back =
        under(kn::Isa::kAvx2, [&] { return plan->irfft(avx2Spec); });
    // Round trip and cross-tier time-domain error are bounded by the
    // spectrum's max magnitude folded through the 1/n inverse scaling;
    // 1e-10 absolute (~450 eps of the unit-amplitude signal) covers both
    // with margin while still catching any real kernel defect.
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(scalarBack[i], x[i], 1e-10);
      EXPECT_NEAR(avx2Back[i], scalarBack[i], 1e-10);
    }
  }
}

TEST_F(KernelTiers, BluesteinTiersMatch) {
  if (!haveAvx2_) GTEST_SKIP() << "AVX2 tier unavailable";
  for (std::size_t n : {12ul, 1000ul}) {
    const auto plan = dsp::fftPlan(n);
    const auto input = testSpectrum(n, 3);
    const auto scalar =
        under(kn::Isa::kScalar, [&] { return plan->forward(input); });
    const auto avx2 =
        under(kn::Isa::kAvx2, [&] { return plan->forward(input); });
    expectSpectraClose(scalar, avx2, 64.0);
    const auto scalarInv =
        under(kn::Isa::kScalar, [&] { return plan->inverse(scalar); });
    const auto avx2Inv =
        under(kn::Isa::kAvx2, [&] { return plan->inverse(scalar); });
    expectSpectraClose(scalarInv, avx2Inv, 64.0);
  }
}

TEST_F(KernelTiers, BatchedTransformsBitwiseMatchSingle) {
  std::vector<kn::Isa> tiers{kn::Isa::kScalar};
  if (haveAvx2_) tiers.push_back(kn::Isa::kAvx2);
  for (const kn::Isa isa : tiers) {
    for (std::size_t n : {8ul, 256ul}) {
      for (std::size_t width : {1ul, 3ul, 8ul}) {
        const auto plan = dsp::fftPlan(n);
        std::vector<std::vector<double>> reals;
        std::vector<std::vector<dsp::Complex>> complexes;
        for (std::size_t j = 0; j < width; ++j) {
          reals.push_back(testSignal(n, static_cast<int>(j)));
          complexes.push_back(testSpectrum(n, static_cast<int>(j)));
        }
        under(isa, [&] {
          const auto fwdBatch = plan->forwardBatch(complexes);
          const auto rfftBatch = plan->rfftBatch(reals);
          std::vector<std::vector<dsp::Complex>> halves;
          for (std::size_t j = 0; j < width; ++j)
            halves.push_back(plan->rfft(reals[j]));
          const auto irfftBatch = plan->irfftBatch(halves);
          for (std::size_t j = 0; j < width; ++j) {
            const auto fwd = plan->forward(complexes[j]);
            for (std::size_t k = 0; k < n; ++k) {
              EXPECT_EQ(fwd[k].real(), fwdBatch[j][k].real());
              EXPECT_EQ(fwd[k].imag(), fwdBatch[j][k].imag());
            }
            const auto half = plan->rfft(reals[j]);
            for (std::size_t k = 0; k < half.size(); ++k) {
              EXPECT_EQ(half[k].real(), rfftBatch[j][k].real());
              EXPECT_EQ(half[k].imag(), rfftBatch[j][k].imag());
            }
            const auto back = plan->irfft(halves[j]);
            for (std::size_t k = 0; k < n; ++k)
              EXPECT_EQ(back[k], irfftBatch[j][k]);
          }
          return 0;
        });
      }
    }
  }
}

TEST_F(KernelTiers, PointwiseComplexTiersMatch) {
  if (!haveAvx2_) GTEST_SKIP() << "AVX2 tier unavailable";
  const std::size_t n = 1027;  // odd: exercises the vector tails
  const auto a0 = testSpectrum(n, 4);
  const auto b = testSpectrum(n, 5);

  const auto runCmul = [&](kn::Isa isa, bool conj) {
    return under(isa, [&] {
      auto a = a0;
      if (conj)
        kn::cmulConjInterleaved(a.data(), b.data(), n);
      else
        kn::cmulInterleaved(a.data(), b.data(), n);
      return a;
    });
  };
  for (const bool conj : {false, true}) {
    const auto s = runCmul(kn::Isa::kScalar, conj);
    const auto v = runCmul(kn::Isa::kAvx2, conj);
    for (std::size_t i = 0; i < n; ++i) {
      const double scale = std::max(std::abs(s[i]), 1.0);
      EXPECT_NEAR(s[i].real(), v[i].real(), 4.0 * kEps * scale);
      EXPECT_NEAR(s[i].imag(), v[i].imag(), 4.0 * kEps * scale);
    }
  }

  const auto runDivide = [&](kn::Isa isa) {
    return under(isa, [&] {
      std::vector<dsp::Complex> out(n);
      kn::spectralDivide(a0.data(), b.data(), 1e-4, out.data(), n);
      return out;
    });
  };
  const auto ds = runDivide(kn::Isa::kScalar);
  const auto dv = runDivide(kn::Isa::kAvx2);
  for (std::size_t i = 0; i < n; ++i) {
    const double scale = std::max(std::abs(ds[i]), 1.0);
    EXPECT_NEAR(ds[i].real(), dv[i].real(), 8.0 * kEps * scale);
    EXPECT_NEAR(ds[i].imag(), dv[i].imag(), 8.0 * kEps * scale);
  }

  const double ms =
      under(kn::Isa::kScalar, [&] { return kn::maxNorm(a0.data(), n); });
  const double mv =
      under(kn::Isa::kAvx2, [&] { return kn::maxNorm(a0.data(), n); });
  EXPECT_NEAR(ms, mv, 4.0 * kEps * ms);
}

TEST_F(KernelTiers, ReductionTiersMatch) {
  if (!haveAvx2_) GTEST_SKIP() << "AVX2 tier unavailable";
  const std::size_t n = 1023;
  const auto a = testSignal(n, 6);
  const auto b = testSignal(n, 7);
  double absSum = 0.0;
  for (std::size_t i = 0; i < n; ++i) absSum += std::fabs(a[i] * b[i]);
  const double tol = 1e-12 * std::max(absSum, 1.0);

  EXPECT_NEAR(
      under(kn::Isa::kScalar, [&] { return kn::dotProduct(a.data(), b.data(), n); }),
      under(kn::Isa::kAvx2, [&] { return kn::dotProduct(a.data(), b.data(), n); }),
      tol);
  EXPECT_NEAR(
      under(kn::Isa::kScalar, [&] { return kn::sumSquares(a.data(), n); }),
      under(kn::Isa::kAvx2, [&] { return kn::sumSquares(a.data(), n); }), tol);
  EXPECT_NEAR(under(kn::Isa::kScalar, [&] { return kn::sum(a.data(), n); }),
              under(kn::Isa::kAvx2, [&] { return kn::sum(a.data(), n); }), tol);

  const auto pearsonUnder = [&](kn::Isa isa) {
    return under(isa, [&] {
      std::vector<double> acc(3);
      kn::pearsonAccum(a.data(), b.data(), n, 0.1, -0.2, acc.data());
      return acc;
    });
  };
  const auto ps = pearsonUnder(kn::Isa::kScalar);
  const auto pv = pearsonUnder(kn::Isa::kAvx2);
  for (int k = 0; k < 3; ++k) EXPECT_NEAR(ps[k], pv[k], tol);
}

TEST_F(KernelTiers, VisibilityScanBitwiseAcrossTiers) {
  if (!haveAvx2_) GTEST_SKIP() << "AVX2 tier unavailable";
  // Resolution 18 exercises the scalar tail (18 % 4 != 0), 256 the main
  // vector loop.
  for (const std::size_t resolution : {18ul, 256ul}) {
    const geo::HeadBoundary head(0.072, 0.104, 0.091, resolution);
    for (int k = 0; k < 24; ++k) {
      const double theta = 15.0 * k;
      const geo::Vec2 p = geo::pointFromPolarDeg(theta, 0.2 + 0.01 * k);
      const auto ts =
          under(kn::Isa::kScalar, [&] { return head.tangentsFrom(p); });
      const auto tv =
          under(kn::Isa::kAvx2, [&] { return head.tangentsFrom(p); });
      EXPECT_EQ(ts.u1, tv.u1) << "theta " << theta;
      EXPECT_EQ(ts.u2, tv.u2) << "theta " << theta;
      const geo::Vec2 d = geo::directionFromAzimuthDeg(theta);
      const auto es =
          under(kn::Isa::kScalar, [&] { return head.terminators(d); });
      const auto ev = under(kn::Isa::kAvx2, [&] { return head.terminators(d); });
      EXPECT_EQ(es.u1, ev.u1) << "theta " << theta;
      EXPECT_EQ(es.u2, ev.u2) << "theta " << theta;
    }
  }
}

TEST_F(KernelTiers, SolveRobustEndToEndTiersMatch) {
  if (!haveAvx2_) GTEST_SKIP() << "AVX2 tier unavailable";
  // Forward-model measurements on a known head; the solve's hot loop is
  // scalar geometry plus the visibility kernel, which is bitwise identical
  // across tiers, so the full estimate should match to the last bit
  // (EXPECT_DOUBLE_EQ allows 4 ulp of slack).
  const head::HeadParameters truth{0.070, 0.104, 0.090};
  const geo::HeadBoundary head(truth.a, truth.b, truth.c, 256);
  Pcg32 rng(11);
  std::vector<core::FusionMeasurement> measurements;
  for (std::size_t i = 0; i < 10; ++i) {
    const double theta = 10.0 + 16.0 * static_cast<double>(i);
    const geo::Vec2 pos = geo::pointFromPolarDeg(theta, 0.30);
    core::FusionMeasurement m;
    m.delayLeftSec =
        geo::nearFieldPath(head, pos, geo::Ear::kLeft).length / kSpeedOfSound;
    m.delayRightSec =
        geo::nearFieldPath(head, pos, geo::Ear::kRight).length /
        kSpeedOfSound;
    m.imuAngleDeg = theta + rng.gaussian(0.0, 1.0);
    m.sourceIndex = i;
    measurements.push_back(m);
  }
  core::SensorFusionOptions opts;
  opts.maxIterations = 60;
  opts.restarts = 1;
  opts.numThreads = 1;
  const auto solveUnder = [&](kn::Isa isa) {
    return under(isa, [&] {
      const core::SensorFusion fusion(opts);
      return fusion.solveRobust(measurements);
    });
  };
  const auto rs = solveUnder(kn::Isa::kScalar);
  const auto rv = solveUnder(kn::Isa::kAvx2);
  EXPECT_TRUE(rs.usable);
  EXPECT_DOUBLE_EQ(rs.headParams.a, rv.headParams.a);
  EXPECT_DOUBLE_EQ(rs.headParams.b, rv.headParams.b);
  EXPECT_DOUBLE_EQ(rs.headParams.c, rv.headParams.c);
  EXPECT_DOUBLE_EQ(rs.finalObjectiveDeg2, rv.finalObjectiveDeg2);
  EXPECT_EQ(rs.localizedCount, rv.localizedCount);
}

}  // namespace
}  // namespace uniq
