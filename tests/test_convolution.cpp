#include "dsp/convolution.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/random.h"
#include "test_util.h"

namespace uniq::dsp {
namespace {

std::vector<double> randomSignal(std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.gaussian();
  return v;
}

TEST(Convolution, RejectsEmptyInputs) {
  std::vector<double> a{1.0};
  std::vector<double> empty;
  EXPECT_THROW(convolveDirect(a, empty), InvalidArgument);
  EXPECT_THROW(convolveFft(empty, a), InvalidArgument);
  EXPECT_THROW(convolveOverlapAdd(empty, a), InvalidArgument);
}

TEST(Convolution, KnownSmallExample) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{1, -1};
  const auto c = convolveDirect(a, b);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c[0], 1);
  EXPECT_DOUBLE_EQ(c[1], 1);
  EXPECT_DOUBLE_EQ(c[2], 1);
  EXPECT_DOUBLE_EQ(c[3], -3);
}

TEST(Convolution, IdentityKernel) {
  const auto a = randomSignal(100, 1);
  const std::vector<double> delta{1.0};
  const auto c = convolveDirect(a, delta);
  EXPECT_LT(uniq::test::maxAbsDiff(a, c), 1e-12);
}

TEST(Convolution, DelayKernelShifts) {
  const auto a = randomSignal(50, 2);
  std::vector<double> kernel(5, 0.0);
  kernel[3] = 1.0;
  const auto c = convolveDirect(a, kernel);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(c[i + 3], a[i]);
}

TEST(Convolution, Commutative) {
  const auto a = randomSignal(37, 3);
  const auto b = randomSignal(13, 4);
  EXPECT_LT(uniq::test::maxAbsDiff(convolveDirect(a, b), convolveDirect(b, a)),
            1e-12);
}

struct ConvSizes {
  std::size_t signal;
  std::size_t kernel;
};

class ConvolutionEquivalence : public ::testing::TestWithParam<ConvSizes> {};

TEST_P(ConvolutionEquivalence, FftMatchesDirect) {
  const auto p = GetParam();
  const auto a = randomSignal(p.signal, p.signal);
  const auto b = randomSignal(p.kernel, p.kernel + 100);
  const auto direct = convolveDirect(a, b);
  const auto viaFft = convolveFft(a, b);
  ASSERT_EQ(direct.size(), viaFft.size());
  EXPECT_LT(uniq::test::maxAbsDiff(direct, viaFft), 1e-8);
}

TEST_P(ConvolutionEquivalence, OverlapAddMatchesDirect) {
  const auto p = GetParam();
  const auto a = randomSignal(p.signal, p.signal + 7);
  const auto b = randomSignal(p.kernel, p.kernel + 11);
  const auto direct = convolveDirect(a, b);
  for (std::size_t block : {16ul, 64ul, 1000ul}) {
    const auto ola = convolveOverlapAdd(a, b, block);
    ASSERT_EQ(direct.size(), ola.size());
    EXPECT_LT(uniq::test::maxAbsDiff(direct, ola), 1e-8)
        << "block size " << block;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ConvolutionEquivalence,
    ::testing::Values(ConvSizes{1, 1}, ConvSizes{5, 3}, ConvSizes{64, 64},
                      ConvSizes{100, 7}, ConvSizes{7, 100},
                      ConvSizes{1000, 33}, ConvSizes{513, 257}));

TEST(Convolution, AdaptiveDispatchMatchesDirect) {
  const auto a = randomSignal(300, 21);
  const auto small = randomSignal(8, 22);    // direct path
  const auto large = randomSignal(128, 23);  // FFT path
  EXPECT_LT(uniq::test::maxAbsDiff(convolve(a, small),
                                   convolveDirect(a, small)),
            1e-8);
  EXPECT_LT(uniq::test::maxAbsDiff(convolve(a, large),
                                   convolveDirect(a, large)),
            1e-8);
}

}  // namespace
}  // namespace uniq::dsp
