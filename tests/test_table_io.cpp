#include "core/table_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>

#include "common/error.h"
#include "core/near_field_hrtf.h"
#include "eval/metrics.h"
#include "head/hrtf_database.h"

namespace uniq::core {
namespace {

std::string tempPath(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

/// A compact synthetic table pair straight from a ground-truth database.
HrtfTable makeTable() {
  head::Subject s;
  s.headParams = {0.074, 0.104, 0.09};
  s.pinnaSeed = 101;
  head::HrtfDatabase::Options dbOpts;
  dbOpts.sampleRate = 48000.0;
  const head::HrtfDatabase db(s, dbOpts);
  auto far = farTableFromDatabase(db);
  NearFieldTable nearTable;
  nearTable.sampleRate = far.sampleRate;
  nearTable.headParams = far.headParams;
  nearTable.medianRadiusM = 0.35;
  nearTable.byDegree.resize(181);
  nearTable.tapLeftSamples.assign(181, 24.0);
  nearTable.tapRightSamples.assign(181, 28.0);
  for (int deg = 0; deg <= 180; ++deg) {
    nearTable.byDegree[deg] = db.nearField(static_cast<double>(deg), 0.35);
  }
  return HrtfTable(std::move(nearTable), std::move(far));
}

TEST(TableIo, RoundTripPreservesEverything) {
  const auto table = makeTable();
  const auto path = tempPath("table.uniq");
  saveHrtfTable(path, table);
  const auto loaded = loadHrtfTable(path);

  EXPECT_DOUBLE_EQ(loaded.sampleRate(), table.sampleRate());
  EXPECT_DOUBLE_EQ(loaded.nearTable().headParams.a,
                   table.nearTable().headParams.a);
  EXPECT_DOUBLE_EQ(loaded.nearTable().medianRadiusM,
                   table.nearTable().medianRadiusM);
  for (int deg : {0, 37, 90, 144, 180}) {
    const auto& a = table.farAt(deg);
    const auto& b = loaded.farAt(deg);
    ASSERT_EQ(a.left.size(), b.left.size());
    for (std::size_t i = 0; i < a.left.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.left[i], b.left[i]);
      EXPECT_DOUBLE_EQ(a.right[i], b.right[i]);
    }
    EXPECT_DOUBLE_EQ(
        table.farTable().tapLeftSamples[deg],
        loaded.farTable().tapLeftSamples[deg]);
    const auto& na = table.nearAt(deg);
    const auto& nb = loaded.nearAt(deg);
    for (std::size_t i = 0; i < na.left.size(); ++i)
      EXPECT_DOUBLE_EQ(na.left[i], nb.left[i]);
  }
  std::remove(path.c_str());
}

TEST(TableIo, LoadedTableRendersIdentically) {
  const auto table = makeTable();
  const auto path = tempPath("table2.uniq");
  saveHrtfTable(path, table);
  const auto loaded = loadHrtfTable(path);
  const std::vector<double> click{1.0, -0.5, 0.25};
  const auto a = table.renderFar(72.0, click);
  const auto b = loaded.renderFar(72.0, click);
  for (std::size_t i = 0; i < a.left.size(); ++i)
    EXPECT_DOUBLE_EQ(a.left[i], b.left[i]);
  std::remove(path.c_str());
}

TEST(TableIo, RejectsMissingFile) {
  EXPECT_THROW(loadHrtfTable("/nonexistent/table.uniq"), InvalidArgument);
}

TEST(TableIo, RejectsWrongMagic) {
  const auto path = tempPath("bad_magic.uniq");
  {
    std::ofstream os(path, std::ios::binary);
    os << "NOTUNIQHRTFDATA-and-some-padding-to-be-long-enough";
  }
  EXPECT_THROW(loadHrtfTable(path), InvalidArgument);
  std::remove(path.c_str());
}

TEST(TableIo, RejectsTruncatedFile) {
  const auto table = makeTable();
  const auto path = tempPath("truncated.uniq");
  saveHrtfTable(path, table);
  // Truncate to the first kilobyte.
  std::string contents;
  {
    std::ifstream is(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>());
  }
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(contents.data(), 1024);
  }
  EXPECT_THROW(loadHrtfTable(path), Error);
  std::remove(path.c_str());
}

TEST(TableIo, CorruptPayloadReportsByteOffset) {
  const auto table = makeTable();
  const auto path = tempPath("corrupt_payload.uniq");
  saveHrtfTable(path, table);
  std::string contents;
  {
    std::ifstream is(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_GT(contents.size(), 4096u);
  // Stomp 64 bytes mid-file: depending on alignment this lands in HRIR
  // samples (all-ones doubles are NaN) or a length prefix (absurd length).
  // Either way the loader must refuse with a pinpointed byte offset.
  for (std::size_t i = 0; i < 64; ++i)
    contents[contents.size() / 2 + i] = '\xFF';
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  }
  try {
    loadHrtfTable(path);
    FAIL() << "corrupted table must not load";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos)
        << "message should locate the corruption: " << e.what();
  }
  std::remove(path.c_str());
}

TEST(TableIo, RejectsNaNSample) {
  const auto table = makeTable();
  const auto path = tempPath("nan_sample.uniq");
  saveHrtfTable(path, table);
  std::string contents;
  {
    std::ifstream is(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>());
  }
  // Rewrite one known payload double as a quiet NaN: makeTable stores 24.0
  // in every near-field left tap, so the byte pattern of 24.0 marks a real
  // IEEE-double slot in the file.
  const double marker = 24.0;
  std::string needle(sizeof marker, '\0');
  std::memcpy(needle.data(), &marker, sizeof marker);
  const std::size_t slot = contents.find(needle);
  ASSERT_NE(slot, std::string::npos);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(&contents[slot], &nan, sizeof nan);
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  }
  EXPECT_THROW(loadHrtfTable(path), InvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace uniq::core
