#include "core/table_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>

#include "common/error.h"
#include "core/near_field_hrtf.h"
#include "eval/metrics.h"
#include "head/hrtf_database.h"

namespace uniq::core {
namespace {

std::string tempPath(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

/// A compact synthetic table pair straight from a ground-truth database.
HrtfTable makeTable() {
  head::Subject s;
  s.headParams = {0.074, 0.104, 0.09};
  s.pinnaSeed = 101;
  head::HrtfDatabase::Options dbOpts;
  dbOpts.sampleRate = 48000.0;
  const head::HrtfDatabase db(s, dbOpts);
  auto far = farTableFromDatabase(db);
  NearFieldTable nearTable;
  nearTable.sampleRate = far.sampleRate;
  nearTable.headParams = far.headParams;
  nearTable.medianRadiusM = 0.35;
  nearTable.byDegree.resize(181);
  nearTable.tapLeftSamples.assign(181, 24.0);
  nearTable.tapRightSamples.assign(181, 28.0);
  for (int deg = 0; deg <= 180; ++deg) {
    nearTable.byDegree[deg] = db.nearField(static_cast<double>(deg), 0.35);
  }
  return HrtfTable(std::move(nearTable), std::move(far));
}

TEST(TableIo, RoundTripPreservesEverything) {
  const auto table = makeTable();
  const auto path = tempPath("table.uniq");
  saveHrtfTable(path, table);
  const auto loaded = loadHrtfTable(path);

  EXPECT_DOUBLE_EQ(loaded.sampleRate(), table.sampleRate());
  EXPECT_DOUBLE_EQ(loaded.nearTable().headParams.a,
                   table.nearTable().headParams.a);
  EXPECT_DOUBLE_EQ(loaded.nearTable().medianRadiusM,
                   table.nearTable().medianRadiusM);
  for (int deg : {0, 37, 90, 144, 180}) {
    const auto& a = table.farAt(deg);
    const auto& b = loaded.farAt(deg);
    ASSERT_EQ(a.left.size(), b.left.size());
    for (std::size_t i = 0; i < a.left.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.left[i], b.left[i]);
      EXPECT_DOUBLE_EQ(a.right[i], b.right[i]);
    }
    EXPECT_DOUBLE_EQ(
        table.farTable().tapLeftSamples[deg],
        loaded.farTable().tapLeftSamples[deg]);
    const auto& na = table.nearAt(deg);
    const auto& nb = loaded.nearAt(deg);
    for (std::size_t i = 0; i < na.left.size(); ++i)
      EXPECT_DOUBLE_EQ(na.left[i], nb.left[i]);
  }
  std::remove(path.c_str());
}

TEST(TableIo, LoadedTableRendersIdentically) {
  const auto table = makeTable();
  const auto path = tempPath("table2.uniq");
  saveHrtfTable(path, table);
  const auto loaded = loadHrtfTable(path);
  const std::vector<double> click{1.0, -0.5, 0.25};
  const auto a = table.renderFar(72.0, click);
  const auto b = loaded.renderFar(72.0, click);
  for (std::size_t i = 0; i < a.left.size(); ++i)
    EXPECT_DOUBLE_EQ(a.left[i], b.left[i]);
  std::remove(path.c_str());
}

TEST(TableIo, RejectsMissingFile) {
  EXPECT_THROW(loadHrtfTable("/nonexistent/table.uniq"), InvalidArgument);
}

TEST(TableIo, RejectsWrongMagic) {
  const auto path = tempPath("bad_magic.uniq");
  {
    std::ofstream os(path, std::ios::binary);
    os << "NOTUNIQHRTFDATA-and-some-padding-to-be-long-enough";
  }
  EXPECT_THROW(loadHrtfTable(path), InvalidArgument);
  std::remove(path.c_str());
}

TEST(TableIo, RejectsTruncatedFile) {
  const auto table = makeTable();
  const auto path = tempPath("truncated.uniq");
  saveHrtfTable(path, table);
  // Truncate to the first kilobyte.
  std::string contents;
  {
    std::ifstream is(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>());
  }
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(contents.data(), 1024);
  }
  EXPECT_THROW(loadHrtfTable(path), Error);
  std::remove(path.c_str());
}

TEST(TableIo, CorruptPayloadReportsByteOffset) {
  const auto table = makeTable();
  const auto path = tempPath("corrupt_payload.uniq");
  saveHrtfTable(path, table);
  std::string contents;
  {
    std::ifstream is(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_GT(contents.size(), 4096u);
  // Stomp 64 bytes mid-file: depending on alignment this lands in HRIR
  // samples (all-ones doubles are NaN) or a length prefix (absurd length).
  // Either way the loader must refuse with a pinpointed byte offset.
  for (std::size_t i = 0; i < 64; ++i)
    contents[contents.size() / 2 + i] = '\xFF';
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  }
  try {
    loadHrtfTable(path);
    FAIL() << "corrupted table must not load";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos)
        << "message should locate the corruption: " << e.what();
  }
  std::remove(path.c_str());
}

TEST(TableIo, RejectsNaNSample) {
  const auto table = makeTable();
  const auto path = tempPath("nan_sample.uniq");
  saveHrtfTable(path, table);
  std::string contents;
  {
    std::ifstream is(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>());
  }
  // Rewrite one known payload double as a quiet NaN: makeTable stores 24.0
  // in every near-field left tap, so the byte pattern of 24.0 marks a real
  // IEEE-double slot in the file.
  const double marker = 24.0;
  std::string needle(sizeof marker, '\0');
  std::memcpy(needle.data(), &marker, sizeof marker);
  const std::size_t slot = contents.find(needle);
  ASSERT_NE(slot, std::string::npos);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(&contents[slot], &nan, sizeof nan);
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  }
  EXPECT_THROW(loadHrtfTable(path), InvalidArgument);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Quantized container (UNIQHRTQ)
// ---------------------------------------------------------------------------

/// Max |sample| of one degree entry over both ears — the reference the
/// per-degree quantization scale is derived from.
double degreePeak(const head::Hrir& h) {
  double peak = 0.0;
  for (const double v : h.left) peak = std::max(peak, std::abs(v));
  for (const double v : h.right) peak = std::max(peak, std::abs(v));
  return peak;
}

TEST(TableIoQuantized, RoundTripWithinPinnedErrorBudget) {
  const auto table = makeTable();
  const auto path = tempPath("table_q.uniqq");
  saveHrtfTableQuantized(path, table);
  const auto loaded = loadHrtfTable(path);

  EXPECT_DOUBLE_EQ(loaded.sampleRate(), table.sampleRate());
  EXPECT_DOUBLE_EQ(loaded.nearTable().headParams.a,
                   table.nearTable().headParams.a);
  EXPECT_DOUBLE_EQ(loaded.nearTable().medianRadiusM,
                   table.nearTable().medianRadiusM);

  // Every sample of every degree must land within the documented budget:
  // kQuantSampleError times that degree's peak (the int16 grid step is
  // peak/32767, so half a step plus float32-scale rounding fits in it).
  for (int deg = 0; deg <= 180; ++deg) {
    for (const bool nearField : {true, false}) {
      const auto& a = nearField ? table.nearAt(deg) : table.farAt(deg);
      const auto& b = nearField ? loaded.nearAt(deg) : loaded.farAt(deg);
      ASSERT_EQ(a.left.size(), b.left.size());
      const double budget = kQuantSampleError * degreePeak(a);
      for (std::size_t i = 0; i < a.left.size(); ++i) {
        EXPECT_NEAR(a.left[i], b.left[i], budget);
        EXPECT_NEAR(a.right[i], b.right[i], budget);
      }
    }
    EXPECT_NEAR(table.farTable().tapLeftSamples[deg],
                loaded.farTable().tapLeftSamples[deg],
                kQuantTapErrorSamples);
    EXPECT_NEAR(table.farTable().tapRightSamples[deg],
                loaded.farTable().tapRightSamples[deg],
                kQuantTapErrorSamples);
    EXPECT_NEAR(table.nearTable().tapLeftSamples[deg],
                loaded.nearTable().tapLeftSamples[deg],
                kQuantTapErrorSamples);
  }
  std::remove(path.c_str());
}

TEST(TableIoQuantized, AtLeastFourTimesSmallerThanFloat64) {
  const auto table = makeTable();
  const auto pathF = tempPath("size_f.uniq");
  const auto pathQ = tempPath("size_q.uniqq");
  saveHrtfTable(pathF, table);
  saveHrtfTableQuantized(pathQ, table);
  std::ifstream f(pathF, std::ios::binary | std::ios::ate);
  std::ifstream q(pathQ, std::ios::binary | std::ios::ate);
  const auto sizeF = static_cast<double>(f.tellg());
  const auto sizeQ = static_cast<double>(q.tellg());
  ASSERT_GT(sizeQ, 0.0);
  EXPECT_GE(sizeF / sizeQ, 4.0)
      << "quantized container must be >= 4x smaller (float64 " << sizeF
      << " bytes, quantized " << sizeQ << " bytes)";
  std::remove(pathF.c_str());
  std::remove(pathQ.c_str());
}

TEST(TableIoQuantized, MmapPathBitwiseEqualsBufferedLoader) {
  const auto table = makeTable();
  const auto path = tempPath("mmap_eq.uniqq");
  saveHrtfTableQuantized(path, table);
  const auto viaMmap = loadHrtfTable(path);
  const auto viaBuffer = loadHrtfTableBuffered(path);
  ASSERT_EQ(viaMmap.farTable().byDegree.size(),
            viaBuffer.farTable().byDegree.size());
  for (int deg = 0; deg <= 180; ++deg) {
    const auto& a = viaMmap.farAt(deg);
    const auto& b = viaBuffer.farAt(deg);
    ASSERT_EQ(a.left.size(), b.left.size());
    // Exact equality, not near: both paths decode the same bytes through
    // the same arithmetic, so any difference is a decoder divergence.
    for (std::size_t i = 0; i < a.left.size(); ++i) {
      EXPECT_EQ(a.left[i], b.left[i]);
      EXPECT_EQ(a.right[i], b.right[i]);
    }
    const auto& na = viaMmap.nearAt(deg);
    const auto& nb = viaBuffer.nearAt(deg);
    for (std::size_t i = 0; i < na.left.size(); ++i)
      EXPECT_EQ(na.left[i], nb.left[i]);
    EXPECT_EQ(viaMmap.farTable().tapLeftSamples[deg],
              viaBuffer.farTable().tapLeftSamples[deg]);
  }
  std::remove(path.c_str());
}

TEST(TableIoQuantized, ProbeAndTryLoadAutoDetectBothFormats) {
  const auto table = makeTable();
  const auto pathF = tempPath("probe_f.uniq");
  const auto pathQ = tempPath("probe_q.uniqq");
  saveHrtfTable(pathF, table);
  saveHrtfTableQuantized(pathQ, table);

  ASSERT_TRUE(probeTableFormat(pathF).has_value());
  EXPECT_EQ(*probeTableFormat(pathF), TableFormat::kFloat64);
  ASSERT_TRUE(probeTableFormat(pathQ).has_value());
  EXPECT_EQ(*probeTableFormat(pathQ), TableFormat::kQuantized);
  std::string error;
  EXPECT_FALSE(probeTableFormat("/nonexistent/x.uniq", &error).has_value());
  EXPECT_FALSE(error.empty());

  const auto loadedF = tryLoadHrtfTable(pathF);
  const auto loadedQ = tryLoadHrtfTable(pathQ);
  ASSERT_TRUE(loadedF.has_value());
  ASSERT_TRUE(loadedQ.has_value());
  EXPECT_DOUBLE_EQ(loadedF->sampleRate(), loadedQ->sampleRate());
  std::remove(pathF.c_str());
  std::remove(pathQ.c_str());
}

TEST(TableIoQuantized, RejectsWrongVersion) {
  const auto table = makeTable();
  const auto path = tempPath("bad_version.uniqq");
  saveHrtfTableQuantized(path, table);
  std::string contents;
  {
    std::ifstream is(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>());
  }
  // The u32 version sits right after the 8-byte magic.
  const std::uint32_t bogus = 99;
  std::memcpy(&contents[8], &bogus, sizeof bogus);
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  }
  try {
    loadHrtfTable(path);
    FAIL() << "future-version quantized table must not load";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(TableIoQuantized, RejectsTruncatedFileWithByteOffset) {
  const auto table = makeTable();
  const auto path = tempPath("truncated.uniqq");
  saveHrtfTableQuantized(path, table);
  std::string contents;
  {
    std::ifstream is(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>());
  }
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(contents.data(), 1024);
  }
  try {
    loadHrtfTable(path);
    FAIL() << "truncated quantized table must not load";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos)
        << "message should locate the truncation: " << e.what();
  }
  std::remove(path.c_str());
}

TEST(TableIoQuantized, RejectsCorruptScaleWithByteOffset) {
  const auto table = makeTable();
  const auto path = tempPath("corrupt_scale.uniqq");
  saveHrtfTableQuantized(path, table);
  std::string contents;
  {
    std::ifstream is(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>());
  }
  // Layout: magic(8) + version(4) + five f64 header fields (40), then the
  // near-field HRIR block: count(4) + length(4) + the first degree's f32
  // scale. Stomping that scale to all-ones makes it NaN, which the loader
  // must refuse with the exact byte offset.
  const std::size_t scaleOffset = 8 + 4 + 40 + 4 + 4;
  ASSERT_GT(contents.size(), scaleOffset + 4);
  for (std::size_t i = 0; i < 4; ++i) contents[scaleOffset + i] = '\xFF';
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  }
  try {
    loadHrtfTable(path);
    FAIL() << "quantized table with NaN scale must not load";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos)
        << "message should locate the corruption: " << e.what();
  }
  std::remove(path.c_str());
}

TEST(TableIoQuantized, RejectsTrailingGarbage) {
  const auto table = makeTable();
  const auto path = tempPath("trailing.uniqq");
  saveHrtfTableQuantized(path, table);
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    os << "extra bytes that should not be here";
  }
  EXPECT_THROW(loadHrtfTable(path), InvalidArgument);
  std::remove(path.c_str());
}

TEST(TableIoQuantized, LoadedTableRendersCloseToOriginal) {
  const auto table = makeTable();
  const auto path = tempPath("render_q.uniqq");
  saveHrtfTableQuantized(path, table);
  const auto loaded = loadHrtfTable(path);
  const std::vector<double> click{1.0, -0.5, 0.25};
  const auto a = table.renderFar(72.0, click);
  const auto b = loaded.renderFar(72.0, click);
  ASSERT_EQ(a.left.size(), b.left.size());
  // Rendering convolves ~192 taps, each within the per-sample budget, so
  // the output error is bounded by sum(|x|) * peak * kQuantSampleError.
  const double budget =
      1.75 * degreePeak(table.farAt(72)) * kQuantSampleError *
      static_cast<double>(table.farAt(72).left.size());
  for (std::size_t i = 0; i < a.left.size(); ++i) {
    EXPECT_NEAR(a.left[i], b.left[i], budget);
    EXPECT_NEAR(a.right[i], b.right[i], budget);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace uniq::core
