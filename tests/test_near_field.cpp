#include "core/near_field_hrtf.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "dsp/peak_picking.h"
#include "eval/metrics.h"
#include "geometry/diffraction.h"
#include "geometry/polar.h"
#include "head/hrtf_database.h"

namespace uniq::core {
namespace {

constexpr double kFs = 48000.0;

/// Build synthetic "extracted channels" directly from the ground-truth
/// database (perfect extraction), with matching fused stops.
struct SyntheticStops {
  std::vector<FusedStop> stops;
  std::vector<BinauralChannel> channels;
  head::HeadParameters headParams;
};

SyntheticStops makeStops(const head::Subject& subject,
                         const std::vector<double>& angles,
                         double radius = 0.35) {
  head::HrtfDatabase::Options dbOpts;
  dbOpts.sampleRate = kFs;
  const head::HrtfDatabase db(subject, dbOpts);
  SyntheticStops out;
  out.headParams = subject.headParams;
  for (double ang : angles) {
    const geo::Vec2 pos = geo::pointFromPolarDeg(ang, radius);
    const auto hrir = db.nearFieldAt(pos);
    FusedStop stop;
    stop.localized = true;
    stop.angleDeg = ang;
    stop.radiusM = radius;
    stop.imuAngleDeg = ang;
    stop.acousticAngleDeg = ang;
    BinauralChannel ch;
    ch.sampleRate = kFs;
    ch.left = hrir.left;
    ch.right = hrir.right;
    const auto tapL = dsp::findFirstTap(ch.left);
    const auto tapR = dsp::findFirstTap(ch.right);
    ch.firstTapLeftSec = tapL ? std::optional<double>(tapL->position / kFs)
                              : std::nullopt;
    ch.firstTapRightSec = tapR ? std::optional<double>(tapR->position / kFs)
                               : std::nullopt;
    out.stops.push_back(stop);
    out.channels.push_back(std::move(ch));
  }
  return out;
}

head::Subject testSubject() {
  head::Subject s;
  s.headParams = {0.071, 0.104, 0.089};
  s.pinnaSeed = 31;
  return s;
}

TEST(NearFieldBuilder, TableCoversFullRange) {
  std::vector<double> angles;
  for (double a = 5; a <= 175; a += 5) angles.push_back(a);
  auto data = makeStops(testSubject(), angles);
  const NearFieldHrtfBuilder builder;
  const auto table = builder.build(data.stops, data.channels, data.headParams);
  EXPECT_EQ(table.byDegree.size(), 181u);
  EXPECT_EQ(table.sampleRate, kFs);
  EXPECT_NEAR(table.medianRadiusM, 0.35, 1e-9);
  for (const auto& hrir : table.byDegree) {
    EXPECT_FALSE(hrir.empty());
    EXPECT_GT(head::channelEnergy(hrir.left), 0.0);
  }
}

TEST(NearFieldBuilder, TableMatchesTruthAtMeasuredAngles) {
  std::vector<double> angles;
  for (double a = 5; a <= 175; a += 5) angles.push_back(a);
  auto data = makeStops(testSubject(), angles);
  const NearFieldHrtfBuilder builder;
  const auto table = builder.build(data.stops, data.channels, data.headParams);

  head::HrtfDatabase::Options dbOpts;
  dbOpts.sampleRate = kFs;
  const head::HrtfDatabase db(testSubject(), dbOpts);
  for (double ang : {30.0, 60.0, 90.0, 120.0, 150.0}) {
    const auto truth = db.nearField(ang, 0.35);
    const auto sim = eval::hrirSimilarityPerEar(table.at(ang), truth);
    EXPECT_GT(sim.left, 0.9) << ang;
    EXPECT_GT(sim.right, 0.9) << ang;
  }
}

TEST(NearFieldBuilder, InterpolatedAnglesStillResembleTruth) {
  // Sparse coverage (15-degree spacing): intermediate angles interpolated.
  std::vector<double> angles;
  for (double a = 5; a <= 175; a += 15) angles.push_back(a);
  auto data = makeStops(testSubject(), angles);
  const NearFieldHrtfBuilder builder;
  const auto table = builder.build(data.stops, data.channels, data.headParams);

  head::HrtfDatabase::Options dbOpts;
  dbOpts.sampleRate = kFs;
  const head::HrtfDatabase db(testSubject(), dbOpts);
  for (double ang : {27.0, 42.0, 87.0, 133.0}) {
    const auto truth = db.nearField(ang, 0.35);
    const double sim = eval::hrirSimilarity(table.at(ang), truth);
    EXPECT_GT(sim, 0.7) << ang;
  }
}

TEST(NearFieldBuilder, ModelCorrectionImposesExpectedItd) {
  std::vector<double> angles;
  for (double a = 5; a <= 175; a += 10) angles.push_back(a);
  auto data = makeStops(testSubject(), angles);
  const NearFieldHrtfBuilder builder;
  const auto table = builder.build(data.stops, data.channels, data.headParams);

  const geo::HeadBoundary boundary(data.headParams.a, data.headParams.b,
                                   data.headParams.c, 256);
  for (int deg : {20, 60, 100, 160}) {
    const geo::Vec2 p =
        geo::pointFromPolarDeg(static_cast<double>(deg), table.medianRadiusM);
    const double expectedItd =
        (geo::nearFieldPath(boundary, p, geo::Ear::kLeft).length -
         geo::nearFieldPath(boundary, p, geo::Ear::kRight).length) /
        kSpeedOfSound;
    const double tableItd =
        (table.tapLeftSamples[deg] - table.tapRightSamples[deg]) / kFs;
    EXPECT_NEAR(tableItd, expectedItd, 2e-6) << deg;
    // And the actual channel taps sit where the table says they do.
    const auto tapL = dsp::findFirstTap(table.byDegree[deg].left);
    ASSERT_TRUE(tapL.has_value());
    EXPECT_NEAR(tapL->position, table.tapLeftSamples[deg], 1.5) << deg;
  }
}

TEST(NearFieldBuilder, SkipsUnlocalizedStops) {
  std::vector<double> angles;
  for (double a = 5; a <= 175; a += 10) angles.push_back(a);
  auto data = makeStops(testSubject(), angles);
  // Break half the stops.
  for (std::size_t i = 0; i < data.stops.size(); i += 2)
    data.stops[i].localized = false;
  const NearFieldHrtfBuilder builder;
  const auto table = builder.build(data.stops, data.channels, data.headParams);
  EXPECT_EQ(table.byDegree.size(), 181u);
}

TEST(NearFieldBuilder, RejectsTooFewUsableStops) {
  auto data = makeStops(testSubject(), {30.0, 60.0, 90.0});
  const NearFieldHrtfBuilder builder;
  EXPECT_THROW(builder.build(data.stops, data.channels, data.headParams),
               InvalidArgument);
}

TEST(NearFieldBuilder, RejectsMismatchedInputs) {
  auto data = makeStops(testSubject(), {30.0, 60.0, 90.0, 120.0, 150.0});
  data.channels.pop_back();
  const NearFieldHrtfBuilder builder;
  EXPECT_THROW(builder.build(data.stops, data.channels, data.headParams),
               InvalidArgument);
}

TEST(NearFieldTable, AtClampsOutOfRange) {
  auto data = makeStops(testSubject(), {10.0, 60.0, 110.0, 170.0});
  const NearFieldHrtfBuilder builder;
  const auto table = builder.build(data.stops, data.channels, data.headParams);
  EXPECT_EQ(&table.at(-20.0), &table.byDegree.front());
  EXPECT_EQ(&table.at(200.0), &table.byDegree.back());
  EXPECT_EQ(&table.at(90.4), &table.byDegree[90]);
}

}  // namespace
}  // namespace uniq::core
