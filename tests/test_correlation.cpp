#include "dsp/correlation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/random.h"
#include "dsp/fractional_delay.h"
#include "dsp/signal_generators.h"

namespace uniq::dsp {
namespace {

std::vector<double> naiveXcorr(const std::vector<double>& a,
                               const std::vector<double>& b) {
  // c[lag] = sum_t a[t] * b[t + lag], lag in [-(b-1), a-1]
  const long nb = static_cast<long>(b.size());
  const long na = static_cast<long>(a.size());
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (long lag = -(nb - 1); lag <= na - 1; ++lag) {
    double acc = 0.0;
    for (long t = 0; t < na; ++t) {
      const long bi = t + lag;
      if (bi >= 0 && bi < nb) acc += a[t] * b[bi];
    }
    out[static_cast<std::size_t>(lag + nb - 1)] = acc;
  }
  return out;
}

TEST(CrossCorrelate, MatchesNaiveReference) {
  Pcg32 rng(1);
  for (auto [na, nb] : {std::pair<std::size_t, std::size_t>{8, 8},
                        {16, 5},
                        {5, 16},
                        {33, 20}}) {
    std::vector<double> a(na), b(nb);
    for (auto& v : a) v = rng.gaussian();
    for (auto& v : b) v = rng.gaussian();
    const auto fast = crossCorrelate(a, b);
    const auto slow = naiveXcorr(a, b);
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t i = 0; i < fast.size(); ++i)
      EXPECT_NEAR(fast[i], slow[i], 1e-8) << "at " << i;
  }
}

TEST(CrossCorrelate, RejectsEmpty) {
  std::vector<double> a{1.0};
  std::vector<double> empty;
  EXPECT_THROW(crossCorrelate(a, empty), InvalidArgument);
}

class DelayRecovery : public ::testing::TestWithParam<double> {};

TEST_P(DelayRecovery, NormalizedPeakFindsFractionalDelay) {
  const double delay = GetParam();
  // Band-limited test signal: fractional shifting cannot represent
  // half-sample offsets of content at Nyquist, so full-band noise would
  // legitimately decorrelate.
  auto a = linearChirp(200.0, 18000.0, 512, 48000.0);
  // b is a delayed by `delay` samples.
  std::vector<double> padded(a.size() + 64, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) padded[i] = a[i];
  const auto b = fractionalShift(padded, delay);
  // c[lag] = sum_t padded[t]*b[t+lag] peaks at lag = +delay (b lags padded).
  // The parabolic peak refinement has a known small bias on a sinc-shaped
  // correlation mainlobe, hence the 0.3-sample tolerance.
  const auto peak = normalizedCorrelationPeak(padded, b);
  EXPECT_NEAR(peak.lag, delay, 0.3);
  EXPECT_GT(peak.value, 0.9);
}

INSTANTIATE_TEST_SUITE_P(Lags, DelayRecovery,
                         ::testing::Values(0.0, 1.0, 2.5, 7.25, 13.75, 31.5));

TEST(NormalizedPeak, IdenticalSignalsGiveUnity) {
  Pcg32 rng(3);
  const auto a = whiteNoise(256, rng);
  const auto peak = normalizedCorrelationPeak(a, a);
  EXPECT_NEAR(peak.value, 1.0, 1e-6);
  EXPECT_NEAR(peak.lag, 0.0, 1e-6);
}

TEST(NormalizedPeak, SilenceGivesZero) {
  std::vector<double> a(64, 0.0);
  std::vector<double> b(64, 1.0);
  const auto peak = normalizedCorrelationPeak(a, b);
  EXPECT_DOUBLE_EQ(peak.value, 0.0);
}

TEST(NormalizedPeak, LagRestrictionExcludesTrueLag) {
  Pcg32 rng(4);
  const auto a = whiteNoise(256, rng);
  std::vector<double> b(a.size() + 40, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) b[i + 20] = a[i];
  const auto unrestricted = normalizedCorrelationPeak(a, b);
  EXPECT_NEAR(unrestricted.lag, 20.0, 0.2);
  const auto restricted = normalizedCorrelationPeak(a, b, 5.0);
  EXPECT_LE(std::fabs(restricted.lag), 5.0);
  EXPECT_LT(restricted.value, unrestricted.value);
}

TEST(Pearson, PerfectCorrelationAndAnticorrelation) {
  std::vector<double> a{1, 2, 3, 4, 5};
  std::vector<double> b{2, 4, 6, 8, 10};
  std::vector<double> c{5, 4, 3, 2, 1};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Pearson, RejectsMismatchedSizes) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{1, 2};
  EXPECT_THROW(pearson(a, b), InvalidArgument);
}

TEST(Pearson, ConstantSignalGivesZero) {
  std::vector<double> a{1, 1, 1, 1};
  std::vector<double> b{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

class GccPhatDelay : public ::testing::TestWithParam<double> {};

TEST_P(GccPhatDelay, RecoversDelayOnNoisySignals) {
  const double delay = GetParam();
  Pcg32 rng(7);
  auto a = whiteNoise(2048, rng);
  std::vector<double> padded(a.size() + 64, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) padded[i] = a[i];
  auto b = fractionalShift(padded, delay);
  addNoiseSnrDb(b, 15.0, rng);
  // b lags a by `delay`: estimateDelayGccPhat(a, b) returns that lag.
  const double est = estimateDelayGccPhat(a, b, 50.0);
  EXPECT_NEAR(est, delay, 0.35);
}

INSTANTIATE_TEST_SUITE_P(Lags, GccPhatDelay,
                         ::testing::Values(0.0, 3.0, 10.5, 24.25, -0.0));

}  // namespace
}  // namespace uniq::dsp
