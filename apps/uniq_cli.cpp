// uniq — command-line front end for the UNIQ HRTF personalization library.
//
// Subcommands:
//   calibrate --out table.uniq [--seed N] [--constrained] [--stops N]
//             [--report] [--trace-out trace.json] [--metrics-out m.json]
//       Run a (simulated) calibration sweep for a synthetic subject and
//       save the personalized HRTF lookup table. On real hardware the
//       capture stage would be replaced by the phone/earbud recordings;
//       everything downstream is identical. --report prints the per-stage
//       summary table; the *-out flags dump Chrome trace / metrics JSON.
//   inspect --table table.uniq
//       Print the table's head parameters and structural summary.
//   render --table table.uniq --in mono.wav --out binaural.wav
//          --angle DEG [--elevation DEG]
//       Render a mono WAV through the personalized HRTF.
//   demo-render --table table.uniq --out binaural.wav --angle DEG
//       Same as render with a built-in test signal (no input file needed).
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "audio/wav.h"
#include "common/error.h"
#include "core/pipeline.h"
#include "core/table_io.h"
#include "dsp/resample.h"
#include "dsp/signal_generators.h"
#include "head/subject.h"
#include "obs/export.h"
#include "obs/json_check.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sim/fault_injector.h"
#include "sim/measurement_session.h"
#include "spatial3d/elevation_renderer.h"

using namespace uniq;

namespace {

using Args = std::map<std::string, std::string>;

Args parseArgs(int argc, char** argv, int firstArg) {
  Args args;
  for (int i = firstArg; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw uniq::InvalidArgument("expected --flag, got: " + key);
    }
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args[key] = argv[++i];
    } else {
      args[key] = "1";  // boolean flag
    }
  }
  return args;
}

std::string require(const Args& args, const std::string& key) {
  const auto it = args.find(key);
  if (it == args.end())
    throw uniq::InvalidArgument("missing required flag --" + key);
  return it->second;
}

std::string optional(const Args& args, const std::string& key,
                     const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

/// Serialize, validate, and write one observability JSON export. The CLI
/// checks its own output so a malformed exporter fails the run (and the CI
/// smoke test) instead of producing a file chrome://tracing rejects.
int writeValidatedJson(const std::string& path, const std::string& json,
                       const char* what) {
  std::string error;
  if (!obs::validateJson(json, &error)) {
    std::cerr << "error: generated " << what << " JSON is malformed: " << error
              << "\n";
    return 1;
  }
  if (!obs::writeTextFile(path, json, &error)) {
    std::cerr << "error: writing " << path << ": " << error << "\n";
    return 1;
  }
  std::cout << "wrote " << what << " JSON to " << path << "\n";
  return 0;
}

int cmdCalibrate(const Args& args) {
  const auto outPath = require(args, "out");
  const auto seed =
      static_cast<std::uint64_t>(std::stoull(optional(args, "seed", "42")));
  const bool constrained = args.count("constrained") > 0;
  const bool wantReport = args.count("report") > 0;
  const bool failOnDegraded = args.count("fail-on-degraded") > 0;
  const auto traceOut = optional(args, "trace-out", "");
  const auto metricsOut = optional(args, "metrics-out", "");

  std::cout << "simulating subject (seed " << seed << ")...\n";
  const auto subject = head::makePopulation(1, seed)[0];
  const sim::MeasurementSession session;
  auto gesture =
      constrained ? sim::constrainedGesture() : sim::defaultGesture();
  if (args.count("stops") > 0) {
    gesture.stops = static_cast<std::size_t>(
        std::stoull(require(args, "stops")));
  }
  auto capture = session.run(subject, gesture);

  // Optional fault injection: corrupt the clean capture the way a named
  // real-world defect would, to exercise the degraded paths end to end.
  if (args.count("fault") > 0) {
    const auto kind = sim::faultKindFromName(require(args, "fault"));
    const double severity =
        std::stod(optional(args, "fault-severity", "0.5"));
    sim::FaultInjector injector(seed);
    injector.add(kind, severity);
    sim::FaultInjectionLog log;
    capture = injector.apply(capture, &log);
    std::cout << "injected fault " << sim::faultKindName(kind)
              << " (severity " << severity << ") corrupting "
              << log.corruptedStops().size() << " stop(s)\n";
  }

  core::CalibrationPipelineOptions pipeOpts;
  if (args.count("min-stops") > 0) {
    pipeOpts.minUsableStops = static_cast<std::size_t>(
        std::stoull(require(args, "min-stops")));
  }

  std::cout << "running the UNIQ pipeline on " << capture.stops.size()
            << " stops...\n";
  const core::CalibrationPipeline pipeline(pipeOpts);
  obs::RunReport report;
  const auto personal = pipeline.run(capture, &report);

  std::cout << "status: " << core::pipelineStatusName(personal.status)
            << "\n";
  if (!personal.diagnostics.empty())
    std::cout << "diagnostics:\n" << report.diagnosticsText();
  if (!personal.gestureReport.ok) {
    std::cout << "gesture check FLAGGED:\n";
    for (const auto& issue : personal.gestureReport.issues)
      std::cout << "  - " << issue << "\n";
  }
  std::cout << "estimated head (a,b,c) = (" << personal.headParams.a << ", "
            << personal.headParams.b << ", " << personal.headParams.c
            << ") m, fusion RMS residual "
            << std::sqrt(personal.fusion.meanSquaredResidualDeg2)
            << " deg\n";
  core::saveHrtfTable(outPath, personal.table);
  std::cout << "saved "
            << (personal.status == core::PipelineStatus::kFailed
                    ? "population-average fallback"
                    : "personalized")
            << " HRTF table to " << outPath << "\n";

  if (wantReport) {
    std::cout << "\nrun report\n" << report.summaryTable() << "\n";
  }

  // The perf section reads the process-wide registry, so it also covers
  // instruments the pipeline stages registered on their own.
  std::cout << "perf:\n"
            << obs::summarizeMetrics(obs::registry().snapshot(),
                                     {"fft.", "pool."});

  if (!traceOut.empty()) {
    const int rc = writeValidatedJson(
        traceOut, obs::traceEventJson(obs::collectSpans()), "trace");
    if (rc != 0) return rc;
    if (!obs::traceEnabled()) {
      std::cout << "note: tracing is disabled (UNIQ_OBSERVABILITY=0 or an "
                   "observability-off build); the trace is empty\n";
    }
  }
  if (!metricsOut.empty()) {
    const int rc = writeValidatedJson(
        metricsOut, obs::metricsJson(obs::registry().snapshot()), "metrics");
    if (rc != 0) return rc;
  }

  // Exit-code contract (documented in docs/ROBUSTNESS.md): ok -> 0,
  // degraded -> 0 (or 3 under --fail-on-degraded), failed -> 4. Flag errors
  // and I/O problems keep exiting 1 via the main() catch.
  if (personal.status == core::PipelineStatus::kFailed) return 4;
  if (personal.status == core::PipelineStatus::kDegraded && failOnDegraded)
    return 3;
  return 0;
}

int cmdInspect(const Args& args) {
  const auto table = core::loadHrtfTable(require(args, "table"));
  const auto& nearTable = table.nearTable();
  std::cout << "UNIQ HRTF table\n"
            << "  sample rate:     " << table.sampleRate() << " Hz\n"
            << "  head (a,b,c):    (" << nearTable.headParams.a << ", "
            << nearTable.headParams.b << ", " << nearTable.headParams.c
            << ") m\n"
            << "  median radius:   " << nearTable.medianRadiusM << " m\n"
            << "  angular entries: " << nearTable.byDegree.size()
            << " near + " << table.farTable().byDegree.size() << " far\n"
            << "  HRIR length:     " << nearTable.byDegree[0].left.size()
            << " samples\n";
  const double itd90 = (table.farTable().tapRightSamples[90] -
                        table.farTable().tapLeftSamples[90]) /
                       table.sampleRate() * 1e6;
  std::cout << "  ITD at 90 deg:   " << itd90 << " us\n";
  return 0;
}

int cmdRender(const Args& args, bool demo) {
  const auto table = core::loadHrtfTable(require(args, "table"));
  const auto outPath = require(args, "out");
  const double angle = std::stod(require(args, "angle"));
  const double elevation = std::stod(optional(args, "elevation", "0"));

  std::vector<double> mono;
  double fs = table.sampleRate();
  if (demo) {
    Pcg32 rng(3);
    mono = dsp::musicLike(static_cast<std::size_t>(2.0 * fs), fs, rng);
  } else {
    const auto in = audio::readWav(require(args, "in"));
    if (in.sampleRate != fs) {
      std::cout << "note: input is " << in.sampleRate
                << " Hz, table is " << fs << " Hz; resampling\n";
      mono = dsp::resample(in.channels[0], in.sampleRate, fs);
    } else {
      mono = in.channels[0];
    }
  }

  head::BinauralSignal out;
  if (elevation != 0.0) {
    const auto seed = static_cast<std::uint64_t>(
        std::stoull(optional(args, "seed", "42")));
    const spatial3d::ElevationRenderer renderer(table.farTable(), seed);
    out = renderer.render(angle, elevation, mono);
  } else {
    out = table.renderFar(angle, mono);
  }
  audio::writeStereoWav(outPath, out.left, out.right, fs);
  std::cout << "rendered " << out.left.size() << " samples from azimuth "
            << angle << " deg"
            << (elevation != 0.0
                    ? ", elevation " + std::to_string(elevation) + " deg"
                    : std::string())
            << " -> " << outPath << "\n";
  return 0;
}

void usage() {
  std::cout <<
      "usage: uniq <command> [flags]\n"
      "  calibrate  --out table.uniq [--seed N] [--constrained] [--stops N]\n"
      "             [--report] [--trace-out trace.json]\n"
      "             [--metrics-out metrics.json] [--min-stops N]\n"
      "             [--fail-on-degraded] [--fault KIND]\n"
      "             [--fault-severity X]\n"
      "             exit codes: 0 ok/degraded, 3 degraded with\n"
      "             --fail-on-degraded, 4 failed (fallback table saved)\n"
      "  inspect    --table table.uniq\n"
      "  render     --table table.uniq --in mono.wav --out out.wav\n"
      "             --angle DEG [--elevation DEG]\n"
      "  demo-render --table table.uniq --out out.wav --angle DEG\n"
      "              [--elevation DEG]\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const auto args = parseArgs(argc, argv, 2);
    if (cmd == "calibrate") return cmdCalibrate(args);
    if (cmd == "inspect") return cmdInspect(args);
    if (cmd == "render") return cmdRender(args, false);
    if (cmd == "demo-render") return cmdRender(args, true);
    usage();
    return 2;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
