// uniq — command-line front end for the UNIQ HRTF personalization library.
//
// Subcommands:
//   calibrate --out table.uniq [--seed N] [--constrained] [--stops N]
//             [--report] [--trace-out trace.json] [--metrics-out m.json]
//       Run a (simulated) calibration sweep for a synthetic subject and
//       save the personalized HRTF lookup table. On real hardware the
//       capture stage would be replaced by the phone/earbud recordings;
//       everything downstream is identical. --report prints the per-stage
//       summary table; the *-out flags dump Chrome trace / metrics JSON.
//   inspect --table table.uniq
//       Print the table's head parameters and structural summary.
//   render --table table.uniq --in mono.wav --out binaural.wav
//          --angle DEG [--elevation DEG]
//       Render a mono WAV through the personalized HRTF.
//   demo-render --table table.uniq --out binaural.wav --angle DEG
//       Same as render with a built-in test signal (no input file needed).
//   serve-batch --users N [--workers W] [--queue Q] [--stops N] [--seed N]
//               [--deadline-ms D] [--cancel C] [--cache-capacity K]
//               [--table-dir DIR] [--aoa-queries M] [--compare-serial]
//               [--fault KIND [--fault-severity X] [--fault-every K]]
//               [--metrics-out m.json]
//       Drive the concurrent calibration service end to end with N
//       simulated users: submit every capture as a job, drain, run a
//       batched AoA pass against the cached per-user tables, and print
//       per-job states plus aggregate throughput/cache statistics.
//   serve-load --users N --duration-s S [--threads T] [--skew Z]
//              [--shards K] [--cache-capacity C] [--warm W]
//              [--table-dir DIR] [--load-report out.json]
//              [--metrics-out m.json] [--scrape-port P]
//              [--sample-interval-ms X] [--slo-rules rules.json]
//              [--fail-on-slo] [--exposition-out m.prom]
//       Zipfian-skewed load driver over N simulated users against the
//       sharded serving stack: mostly table lookups, with AoA queries and
//       batch/streaming calibration jobs mixed in. Reports p50/p99/p999
//       latency, per-tier hit rates over time, and saturation throughput
//       (see docs/CAPACITY.md). Runs a continuous-telemetry sampler; with
//       --scrape-port it serves live Prometheus exposition on localhost
//       and with --slo-rules it evaluates burn-rate SLOs per window
//       (--fail-on-slo exits 5 on breach; see docs/OBSERVABILITY.md).
//   monitor --port P [--interval-ms X] [--iterations N]
//       Poll a serve-load scrape endpoint and render a live terminal view
//       of rates, window quantiles, shard depths, and SLO status.
//   convert --in table.uniq --out table.uniqq [--format quantized|float64]
//       Re-encode an HRTF table between the float64 and quantized
//       containers and print the size ratio.
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "audio/wav.h"
#include "common/error.h"
#include "common/math_util.h"
#include "common/random.h"
#include "core/pipeline.h"
#include "core/table_io.h"
#include "dsp/resample.h"
#include "dsp/signal_generators.h"
#include "head/subject.h"
#include "obs/export.h"
#include "obs/json_check.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "obs/scrape.h"
#include "obs/slo.h"
#include "obs/telemetry.h"
#include "serve/batch_aoa.h"
#include "serve/calibration_service.h"
#include "serve/latency_stats.h"
#include "serve/table_cache.h"
#include "sim/fault_injector.h"
#include "sim/measurement_session.h"
#include "spatial3d/elevation_renderer.h"
#include "stream/streaming_session.h"

using namespace uniq;

namespace {

using Args = std::map<std::string, std::string>;

Args parseArgs(int argc, char** argv, int firstArg) {
  Args args;
  for (int i = firstArg; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw uniq::InvalidArgument("expected --flag, got: " + key);
    }
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args[key] = argv[++i];
    } else {
      args[key] = "1";  // boolean flag
    }
  }
  return args;
}

std::string require(const Args& args, const std::string& key) {
  const auto it = args.find(key);
  if (it == args.end())
    throw uniq::InvalidArgument("missing required flag --" + key);
  return it->second;
}

std::string optional(const Args& args, const std::string& key,
                     const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

/// Serialize, validate, and write one observability JSON export. The CLI
/// checks its own output so a malformed exporter fails the run (and the CI
/// smoke test) instead of producing a file chrome://tracing rejects.
int writeValidatedJson(const std::string& path, const std::string& json,
                       const char* what) {
  std::string error;
  if (!obs::validateJson(json, &error)) {
    std::cerr << "error: generated " << what << " JSON is malformed: " << error
              << "\n";
    return 1;
  }
  if (!obs::writeTextFile(path, json, &error)) {
    std::cerr << "error: writing " << path << ": " << error << "\n";
    return 1;
  }
  std::cout << "wrote " << what << " JSON to " << path << "\n";
  return 0;
}

/// Shared by calibrate / calibrate-stream: simulate one subject's capture
/// per --seed/--constrained/--stops and apply the optional --fault.
sim::CalibrationCapture simulateCaptureFromArgs(const Args& args,
                                                std::uint64_t seed) {
  std::cout << "simulating subject (seed " << seed << ")...\n";
  const auto subject = head::makePopulation(1, seed)[0];
  const sim::MeasurementSession session;
  auto gesture = args.count("constrained") > 0 ? sim::constrainedGesture()
                                               : sim::defaultGesture();
  if (args.count("stops") > 0) {
    gesture.stops = static_cast<std::size_t>(
        std::stoull(require(args, "stops")));
  }
  auto capture = session.run(subject, gesture);

  // Optional fault injection: corrupt the clean capture the way a named
  // real-world defect would, to exercise the degraded paths end to end.
  if (args.count("fault") > 0) {
    const auto kind = sim::faultKindFromName(require(args, "fault"));
    const double severity =
        std::stod(optional(args, "fault-severity", "0.5"));
    sim::FaultInjector injector(seed);
    injector.add(kind, severity);
    sim::FaultInjectionLog log;
    capture = injector.apply(capture, &log);
    std::cout << "injected fault " << sim::faultKindName(kind)
              << " (severity " << severity << ") corrupting "
              << log.corruptedStops().size() << " stop(s)\n";
  }
  return capture;
}

core::CalibrationPipelineOptions pipelineOptionsFromArgs(const Args& args) {
  core::CalibrationPipelineOptions pipeOpts;
  if (args.count("min-stops") > 0) {
    pipeOpts.minUsableStops = static_cast<std::size_t>(
        std::stoull(require(args, "min-stops")));
  }
  return pipeOpts;
}

int cmdCalibrate(const Args& args) {
  const auto outPath = require(args, "out");
  const auto seed =
      static_cast<std::uint64_t>(std::stoull(optional(args, "seed", "42")));
  const bool wantReport = args.count("report") > 0;
  const bool failOnDegraded = args.count("fail-on-degraded") > 0;
  const auto traceOut = optional(args, "trace-out", "");
  const auto metricsOut = optional(args, "metrics-out", "");

  auto capture = simulateCaptureFromArgs(args, seed);
  const auto pipeOpts = pipelineOptionsFromArgs(args);

  std::cout << "running the UNIQ pipeline on " << capture.stops.size()
            << " stops...\n";
  const core::CalibrationPipeline pipeline(pipeOpts);
  obs::RunReport report;
  const auto personal = pipeline.run(capture, &report);

  std::cout << "status: " << core::pipelineStatusName(personal.status)
            << "\n";
  if (!personal.diagnostics.empty())
    std::cout << "diagnostics:\n" << report.diagnosticsText();
  if (!personal.gestureReport.ok) {
    std::cout << "gesture check FLAGGED:\n";
    for (const auto& issue : personal.gestureReport.issues)
      std::cout << "  - " << issue << "\n";
  }
  std::cout << "estimated head (a,b,c) = (" << personal.headParams.a << ", "
            << personal.headParams.b << ", " << personal.headParams.c
            << ") m, fusion RMS residual "
            << std::sqrt(personal.fusion.meanSquaredResidualDeg2)
            << " deg\n";
  core::saveHrtfTable(outPath, personal.table);
  std::cout << "saved "
            << (personal.status == core::PipelineStatus::kFailed
                    ? "population-average fallback"
                    : "personalized")
            << " HRTF table to " << outPath << "\n";

  if (wantReport) {
    std::cout << "\nrun report\n" << report.summaryTable() << "\n";
  }

  // The perf section reads the process-wide registry, so it also covers
  // instruments the pipeline stages registered on their own.
  std::cout << "perf:\n"
            << obs::summarizeMetrics(obs::registry().snapshot(),
                                     {"fft.", "pool."});

  if (!traceOut.empty()) {
    const int rc = writeValidatedJson(
        traceOut, obs::traceEventJson(obs::collectSpans()), "trace");
    if (rc != 0) return rc;
    if (!obs::traceEnabled()) {
      std::cout << "note: tracing is disabled (UNIQ_OBSERVABILITY=0 or an "
                   "observability-off build); the trace is empty\n";
    }
  }
  if (!metricsOut.empty()) {
    const int rc = writeValidatedJson(
        metricsOut, obs::metricsJson(obs::registry().snapshot()), "metrics");
    if (rc != 0) return rc;
  }

  // Exit-code contract (documented in docs/ROBUSTNESS.md): ok -> 0,
  // degraded -> 0 (or 3 under --fail-on-degraded), failed -> 4. Flag errors
  // and I/O problems keep exiting 1 via the main() catch.
  if (personal.status == core::PipelineStatus::kFailed) return 4;
  if (personal.status == core::PipelineStatus::kDegraded && failOnDegraded)
    return 3;
  return 0;
}

int cmdCalibrateStream(const Args& args) {
  const auto outPath = require(args, "out");
  const auto seed =
      static_cast<std::uint64_t>(std::stoull(optional(args, "seed", "42")));
  const bool wantReport = args.count("report") > 0;
  const bool failOnDegraded = args.count("fail-on-degraded") > 0;
  const bool earlyStop = args.count("no-early-stop") == 0;
  const bool compareBatch = args.count("compare-batch") > 0;
  const double intervalMs = std::stod(optional(args, "interval-ms", "0"));
  const auto traceOut = optional(args, "trace-out", "");
  const auto metricsOut = optional(args, "metrics-out", "");

  auto capture = simulateCaptureFromArgs(args, seed);

  stream::StreamingSessionOptions sessionOpts;
  sessionOpts.pipeline = pipelineOptionsFromArgs(args);

  // Replay the capture into the streaming session the way a phone would
  // deliver it: one stop at a time, at --interval-ms wall-clock pacing
  // (0 = as fast as the graph absorbs them), with live coverage feedback
  // after every push and an early finish when the table converges.
  std::cout << "streaming " << capture.stops.size() << " stops"
            << (intervalMs > 0.0
                    ? " at " + std::to_string(intervalMs) + " ms/stop"
                    : " at full speed")
            << (earlyStop ? "" : " (early stop disabled)") << "...\n";
  stream::StreamingSession session(
      stream::CaptureHeader::fromCapture(capture), sessionOpts);
  std::size_t pushed = 0;
  for (std::size_t i = 0; i < capture.stops.size(); ++i) {
    if (earlyStop && session.converged()) break;
    session.push(capture.stops[i], i);
    ++pushed;
    if (intervalMs > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(intervalMs));
    }
    const auto snap = session.coverage();
    std::cout << "  stop " << std::setw(2) << i << "  coverage "
              << std::setw(3)
              << static_cast<int>(std::lround(100.0 * snap.coveredFraction))
              << "%  solves " << std::setw(2) << snap.incrementalSolves
              << "  " << snap.hint << "\n";
  }

  obs::RunReport report;
  const auto result = session.finalize(&report);
  const auto& personal = result.personal;

  if (result.convergedEarly && pushed < capture.stops.size()) {
    std::cout << "converged early: finalized after " << pushed << "/"
              << capture.stops.size() << " stops ("
              << std::lround(result.timeToConvergeMs)
              << " ms to convergence) — the user could have stopped "
                 "sweeping here\n";
  } else if (result.convergedEarly) {
    std::cout << "converged during the sweep ("
              << std::lround(result.timeToConvergeMs) << " ms); all "
              << pushed << " stops used\n";
  } else {
    std::cout << "sweep ended without convergence; finalized from all "
              << pushed << " pushed stops\n";
  }

  std::cout << "status: " << core::pipelineStatusName(personal.status)
            << "\n";
  if (!personal.diagnostics.empty())
    std::cout << "diagnostics:\n" << report.diagnosticsText();
  std::cout << "estimated head (a,b,c) = (" << personal.headParams.a << ", "
            << personal.headParams.b << ", " << personal.headParams.c
            << ") m, fusion RMS residual "
            << std::sqrt(personal.fusion.meanSquaredResidualDeg2)
            << " deg\n";
  core::saveHrtfTable(outPath, personal.table);
  std::cout << "saved "
            << (personal.status == core::PipelineStatus::kFailed
                    ? "population-average fallback"
                    : "personalized")
            << " HRTF table to " << outPath << "\n";

  // Equality check against the batch pipeline over the same capture. When
  // every stop was pushed the streaming finalize runs the identical code
  // over identically extracted channels, so the tables must be bitwise
  // equal; an early-stopped session is compared for closeness only.
  if (compareBatch) {
    std::cout << "running batch pipeline for comparison...\n";
    const core::CalibrationPipeline pipeline(sessionOpts.pipeline);
    const auto batch = pipeline.run(capture);
    double maxAbsDiff = 0.0;
    const auto& sFar = personal.table.farTable().byDegree;
    const auto& bFar = batch.table.farTable().byDegree;
    if (sFar.size() != bFar.size()) {
      std::cerr << "error: far-table size mismatch (streaming "
                << sFar.size() << " vs batch " << bFar.size() << ")\n";
      return 1;
    }
    for (std::size_t d = 0; d < sFar.size(); ++d) {
      for (std::size_t k = 0; k < sFar[d].left.size(); ++k) {
        maxAbsDiff = std::max(maxAbsDiff,
                              std::fabs(sFar[d].left[k] - bFar[d].left[k]));
        maxAbsDiff = std::max(
            maxAbsDiff, std::fabs(sFar[d].right[k] - bFar[d].right[k]));
      }
    }
    if (pushed == capture.stops.size()) {
      std::cout << "streaming vs batch (all stops): max abs far-table diff "
                << maxAbsDiff << "\n";
      if (maxAbsDiff != 0.0) {
        std::cerr << "error: full-capture streaming table is not "
                     "bitwise-identical to batch\n";
        return 1;
      }
    } else {
      std::cout << "streaming (early stop, " << pushed << "/"
                << capture.stops.size()
                << " stops) vs batch: max abs far-table diff " << maxAbsDiff
                << "\n";
    }
  }

  if (wantReport) {
    std::cout << "\nrun report\n" << report.summaryTable() << "\n";
  }
  std::cout << "stream metrics:\n"
            << obs::summarizeMetrics(obs::registry().snapshot(),
                                     {"stream."});

  if (!traceOut.empty()) {
    const int rc = writeValidatedJson(
        traceOut, obs::traceEventJson(obs::collectSpans()), "trace");
    if (rc != 0) return rc;
  }
  if (!metricsOut.empty()) {
    const int rc = writeValidatedJson(
        metricsOut, obs::metricsJson(obs::registry().snapshot()), "metrics");
    if (rc != 0) return rc;
  }

  // Same exit-code contract as calibrate (docs/ROBUSTNESS.md): ok -> 0,
  // degraded -> 0 (or 3 under --fail-on-degraded), failed -> 4.
  if (personal.status == core::PipelineStatus::kFailed) return 4;
  if (personal.status == core::PipelineStatus::kDegraded && failOnDegraded)
    return 3;
  return 0;
}

int cmdInspect(const Args& args) {
  const auto path = require(args, "table");
  const auto format = core::probeTableFormat(path);
  const auto table = core::loadHrtfTable(path);
  const auto& nearTable = table.nearTable();
  std::cout << "UNIQ HRTF table\n"
            << "  format:          "
            << (format ? core::tableFormatName(*format) : "unknown") << "\n"
            << "  sample rate:     " << table.sampleRate() << " Hz\n"
            << "  head (a,b,c):    (" << nearTable.headParams.a << ", "
            << nearTable.headParams.b << ", " << nearTable.headParams.c
            << ") m\n"
            << "  median radius:   " << nearTable.medianRadiusM << " m\n"
            << "  angular entries: " << nearTable.byDegree.size()
            << " near + " << table.farTable().byDegree.size() << " far\n"
            << "  HRIR length:     " << nearTable.byDegree[0].left.size()
            << " samples\n";
  const double itd90 = (table.farTable().tapRightSamples[90] -
                        table.farTable().tapLeftSamples[90]) /
                       table.sampleRate() * 1e6;
  std::cout << "  ITD at 90 deg:   " << itd90 << " us\n";
  return 0;
}

int cmdRender(const Args& args, bool demo) {
  const auto table = core::loadHrtfTable(require(args, "table"));
  const auto outPath = require(args, "out");
  const double angle = std::stod(require(args, "angle"));
  const double elevation = std::stod(optional(args, "elevation", "0"));

  std::vector<double> mono;
  double fs = table.sampleRate();
  if (demo) {
    Pcg32 rng(3);
    mono = dsp::musicLike(static_cast<std::size_t>(2.0 * fs), fs, rng);
  } else {
    const auto in = audio::readWav(require(args, "in"));
    if (in.sampleRate != fs) {
      std::cout << "note: input is " << in.sampleRate
                << " Hz, table is " << fs << " Hz; resampling\n";
      mono = dsp::resample(in.channels[0], in.sampleRate, fs);
    } else {
      mono = in.channels[0];
    }
  }

  head::BinauralSignal out;
  if (elevation != 0.0) {
    const auto seed = static_cast<std::uint64_t>(
        std::stoull(optional(args, "seed", "42")));
    const spatial3d::ElevationRenderer renderer(table.farTable(), seed);
    out = renderer.render(angle, elevation, mono);
  } else {
    out = table.renderFar(angle, mono);
  }
  audio::writeStereoWav(outPath, out.left, out.right, fs);
  std::cout << "rendered " << out.left.size() << " samples from azimuth "
            << angle << " deg"
            << (elevation != 0.0
                    ? ", elevation " + std::to_string(elevation) + " deg"
                    : std::string())
            << " -> " << outPath << "\n";
  return 0;
}

int cmdServeBatch(const Args& args) {
  const auto users =
      static_cast<std::size_t>(std::stoull(optional(args, "users", "32")));
  const auto stops =
      static_cast<std::size_t>(std::stoull(optional(args, "stops", "12")));
  const auto seed =
      static_cast<std::uint64_t>(std::stoull(optional(args, "seed", "42")));
  const auto cancelCount =
      static_cast<std::size_t>(std::stoull(optional(args, "cancel", "0")));
  const auto aoaQueries = static_cast<std::size_t>(std::stoull(
      optional(args, "aoa-queries", std::to_string(std::min<std::size_t>(
                                        2 * users, 64)))));
  const double deadlineMs = std::stod(optional(args, "deadline-ms", "0"));
  const bool compareSerial = args.count("compare-serial") > 0;
  const auto metricsOut = optional(args, "metrics-out", "");

  serve::CalibrationServiceOptions serveOpts;
  serveOpts.workers =
      static_cast<std::size_t>(std::stoull(optional(args, "workers", "0")));
  serveOpts.maxQueued = static_cast<std::size_t>(
      std::stoull(optional(args, "queue", std::to_string(2 * users))));
  serveOpts.cacheCapacity = static_cast<std::size_t>(std::stoull(
      optional(args, "cache-capacity", std::to_string(users))));
  serveOpts.persistDir = optional(args, "table-dir", "");
  if (args.count("min-stops") > 0) {
    serveOpts.pipeline.minUsableStops =
        static_cast<std::size_t>(std::stoull(require(args, "min-stops")));
  }

  UNIQ_REQUIRE(users >= 1, "--users must be >= 1");

  // --- Simulate the fleet: one subject + capture per user. -------------
  std::cout << "simulating " << users << " users (seed " << seed << ", "
            << stops << " stops each)...\n";
  const auto subjects = head::makePopulation(users, seed);
  const sim::MeasurementSession session;
  auto gesture = sim::defaultGesture();
  gesture.stops = stops;
  const auto faultEvery = static_cast<std::size_t>(
      std::stoull(optional(args, "fault-every", "4")));
  std::vector<std::shared_ptr<const sim::CalibrationCapture>> captures(users);
  std::vector<std::string> userIds(users);
  for (std::size_t i = 0; i < users; ++i) {
    std::ostringstream name;
    name << "user" << std::setfill('0') << std::setw(4) << i;
    userIds[i] = name.str();
    auto capture = session.run(subjects[i], gesture);
    if (args.count("fault") > 0 && faultEvery > 0 && i % faultEvery == 0) {
      const auto kind = sim::faultKindFromName(require(args, "fault"));
      const double severity =
          std::stod(optional(args, "fault-severity", "0.5"));
      sim::FaultInjector injector(seed + i);
      injector.add(kind, severity);
      capture = injector.apply(capture);
    }
    captures[i] =
        std::make_shared<const sim::CalibrationCapture>(std::move(capture));
  }

  // --- Optional serial baseline: the pre-service one-at-a-time loop. ---
  double serialSec = 0.0;
  if (compareSerial) {
    std::cout << "running serial baseline...\n";
    const core::CalibrationPipeline pipeline(serveOpts.pipeline);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < users; ++i) {
      const auto personal = pipeline.run(*captures[i]);
      (void)personal;
    }
    serialSec = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    std::cout << "serial loop: " << serialSec << " s ("
              << static_cast<double>(users) / serialSec << " jobs/s)\n";
  }

  // --- The service run. ------------------------------------------------
  serve::CalibrationService service(serveOpts);
  std::cout << "service: " << service.workerCount() << " worker(s), queue "
            << serveOpts.maxQueued << ", cache " << serveOpts.cacheCapacity
            << (serveOpts.persistDir.empty()
                    ? std::string()
                    : ", persist dir " + serveOpts.persistDir)
            << "\n";
  serve::JobOptions jobOpts;
  jobOpts.deadlineMs = deadlineMs;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> ids(users, serve::kInvalidJobId);
  std::size_t backpressureRetries = 0;
  for (std::size_t i = 0; i < users; ++i) {
    // Backpressure loop: a rejected submit waits for the queue to drain a
    // little and retries — what a real ingress would do.
    for (;;) {
      ids[i] = service.submit(userIds[i], captures[i], jobOpts);
      if (ids[i] != serve::kInvalidJobId) break;
      ++backpressureRetries;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  for (std::size_t c = 0; c < cancelCount && c < users; ++c)
    service.cancel(ids[users - 1 - c]);
  const auto results = service.drain();
  const double serviceSec = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();

  std::map<std::string, std::size_t> tally;
  for (const auto& r : results) {
    std::string label = serve::jobStateName(r.state);
    if (r.state == serve::JobState::kDone)
      label += std::string("/") + core::pipelineStatusName(r.status);
    ++tally[label];
    std::cout << "  " << r.userId << "  " << label << "  queue "
              << std::lround(r.queueMs) << " ms, run "
              << std::lround(r.runMs) << " ms"
              << (r.error.empty() ? "" : ("  [" + r.error + "]")) << "\n";
  }
  std::cout << "service run: " << serviceSec << " s ("
            << static_cast<double>(users) / serviceSec << " jobs/s, "
            << backpressureRetries << " backpressure retr"
            << (backpressureRetries == 1 ? "y" : "ies") << ")\n";
  for (const auto& [label, count] : tally)
    std::cout << "  " << label << ": " << count << "\n";
  if (compareSerial && serviceSec > 0.0)
    std::cout << "speedup vs serial loop: " << serialSec / serviceSec
              << "x\n";

  // --- Batched AoA against the cached tables. --------------------------
  if (aoaQueries > 0) {
    std::cout << "running " << aoaQueries
              << " batched AoA queries against the table cache...\n";
    const double fs = session.options().sampleRate;
    const auto chirp = dsp::linearChirp(
        200.0, 16000.0, static_cast<std::size_t>(0.05 * fs), fs);
    Pcg32 rng(seed ^ 0x5eedu);
    auto music = dsp::musicLike(static_cast<std::size_t>(0.4 * fs), fs, rng);
    std::vector<serve::AoaQuery> queries(aoaQueries);
    std::vector<double> trueAngles(aoaQueries);
    for (std::size_t j = 0; j < aoaQueries; ++j) {
      const std::size_t u = j % users;
      const double angle = 20.0 + static_cast<double>((j * 37) % 140);
      trueAngles[j] = angle;
      const auto table = service.cache().getOrFallback(userIds[u], fs);
      const bool known = j % 2 == 0;
      const auto& mono = known ? chirp : music;
      const auto rendered = table->renderFar(angle, mono);
      queries[j].userId = userIds[u];
      queries[j].left = rendered.left;
      queries[j].right = rendered.right;
      if (known) queries[j].source = chirp;
    }
    const serve::BatchAoaEngine engine(service.cache());
    const auto a0 = std::chrono::steady_clock::now();
    const auto answers = engine.run(queries);
    const double aoaSec = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - a0)
                              .count();
    double sumErr = 0.0;
    std::size_t personalized = 0;
    for (std::size_t j = 0; j < answers.size(); ++j) {
      sumErr += angularDistanceDeg(answers[j].estimate.angleDeg,
                                   trueAngles[j]);
      if (answers[j].personalized) ++personalized;
    }
    std::cout << "aoa batch: " << aoaSec << " s ("
              << static_cast<double>(aoaQueries) / aoaSec
              << " queries/s), mean abs error "
              << sumErr / static_cast<double>(aoaQueries) << " deg, "
              << personalized << "/" << aoaQueries
              << " answered from personalized tables\n";
  }

  std::cout << "serve metrics:\n"
            << obs::summarizeMetrics(obs::registry().snapshot(), {"serve."});
  if (!metricsOut.empty()) {
    const int rc = writeValidatedJson(
        metricsOut, obs::metricsJson(obs::registry().snapshot()), "metrics");
    if (rc != 0) return rc;
  }

  // Every submitted job must have reached a terminal state; anything else
  // is a service bug worth a hard exit code.
  return results.size() == users ? 0 : 1;
}

int cmdConvert(const Args& args) {
  const auto inPath = require(args, "in");
  const auto outPath = require(args, "out");
  const auto formatName = optional(args, "format", "quantized");
  const auto table = core::loadHrtfTable(inPath);
  if (formatName == "quantized") {
    core::saveHrtfTableQuantized(outPath, table);
  } else if (formatName == "float64") {
    core::saveHrtfTable(outPath, table);
  } else {
    throw uniq::InvalidArgument("unknown --format: " + formatName +
                                " (expected quantized or float64)");
  }
  std::error_code ec;
  const auto inSize = std::filesystem::file_size(inPath, ec);
  const auto outSize = std::filesystem::file_size(outPath, ec);
  std::cout << "converted " << inPath << " (" << inSize << " bytes) -> "
            << outPath << " (" << outSize << " bytes, " << formatName
            << ")";
  if (outSize > 0)
    std::cout << "  ratio " << std::setprecision(3)
              << static_cast<double>(inSize) / static_cast<double>(outSize)
              << "x";
  std::cout << "\n";
  return 0;
}

using serve::LatencyReservoir;
using serve::percentileMs;

std::string percentileJson(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  std::ostringstream out;
  out << std::setprecision(6) << "{\"p50_ms\": " << percentileMs(samples, 0.50)
      << ", \"p99_ms\": " << percentileMs(samples, 0.99)
      << ", \"p999_ms\": " << percentileMs(samples, 0.999) << "}";
  return out.str();
}

int cmdServeLoad(const Args& args) {
  const auto users = static_cast<std::size_t>(
      std::stoull(optional(args, "users", "100000")));
  const double durationS = std::stod(optional(args, "duration-s", "10"));
  const auto threads = static_cast<std::size_t>(std::stoull(optional(
      args, "threads",
      std::to_string(std::clamp<unsigned>(
          std::thread::hardware_concurrency() / 2, 2, 8)))));
  const double skew = std::stod(optional(args, "skew", "1.0"));
  const auto shards =
      static_cast<std::size_t>(std::stoull(optional(args, "shards", "4")));
  const auto cacheCapacity = static_cast<std::size_t>(
      std::stoull(optional(args, "cache-capacity", "4096")));
  const auto seed =
      static_cast<std::uint64_t>(std::stoull(optional(args, "seed", "42")));
  const auto warm = static_cast<std::size_t>(std::stoull(optional(
      args, "warm", std::to_string(std::min(users, cacheCapacity)))));
  const double calibIntervalMs =
      std::stod(optional(args, "calibrate-interval-ms", "2000"));
  const auto aoaEvery = static_cast<std::uint64_t>(
      std::stoull(optional(args, "aoa-every", "256")));
  const auto tableDir = optional(args, "table-dir", "");
  const auto loadReport = optional(args, "load-report", "");
  const auto metricsOut = optional(args, "metrics-out", "");
  const bool scrapeEnabled = args.count("scrape-port") > 0;
  const auto scrapePort = static_cast<std::uint16_t>(
      std::stoul(optional(args, "scrape-port", "0")));
  const auto sampleIntervalMs = static_cast<std::uint64_t>(
      std::stoull(optional(args, "sample-interval-ms", "250")));
  const auto sloRulesPath = optional(args, "slo-rules", "");
  const bool failOnSlo = args.count("fail-on-slo") > 0;
  const auto expositionOut = optional(args, "exposition-out", "");

  UNIQ_REQUIRE(users >= 1, "--users must be >= 1");
  UNIQ_REQUIRE(threads >= 1, "--threads must be >= 1");
  UNIQ_REQUIRE(durationS > 0.0, "--duration-s must be > 0");
  UNIQ_REQUIRE(sampleIntervalMs >= 1,
               "--sample-interval-ms must be >= 1");

  serve::CalibrationServiceOptions serveOpts;
  serveOpts.workers =
      static_cast<std::size_t>(std::stoull(optional(args, "workers", "0")));
  serveOpts.maxQueued = static_cast<std::size_t>(
      std::stoull(optional(args, "queue", "256")));
  serveOpts.shards = shards;
  serveOpts.cacheCapacity = cacheCapacity;
  serveOpts.persistDir = tableDir;

  // --- Fixtures: a tiny capture pool for calibration jobs, one real
  // personalized table for the warm phase, canned AoA query signals. ------
  std::cout << "preparing fixtures (seed " << seed << ")...\n";
  const auto subjects = head::makePopulation(4, seed);
  const sim::MeasurementSession session;
  auto gesture = sim::defaultGesture();
  gesture.stops = 6;
  std::vector<std::shared_ptr<const sim::CalibrationCapture>> captures;
  for (const auto& subject : subjects)
    captures.push_back(std::make_shared<const sim::CalibrationCapture>(
        session.run(subject, gesture)));

  const core::CalibrationPipeline warmPipeline(serveOpts.pipeline);
  auto warmPersonal = warmPipeline.run(*captures[0]);
  const auto warmTable = std::make_shared<const core::HrtfTable>(
      std::move(warmPersonal.table));
  const double fs = warmTable->sampleRate();

  const auto chirp = dsp::linearChirp(
      200.0, 16000.0, static_cast<std::size_t>(0.05 * fs), fs);
  std::vector<serve::AoaQuery> aoaTemplates;
  for (const double angle : {30.0, 75.0, 120.0, 160.0}) {
    const auto rendered = warmTable->renderFar(angle, chirp);
    serve::AoaQuery q;
    q.left = rendered.left;
    q.right = rendered.right;
    q.source = chirp;
    aoaTemplates.push_back(std::move(q));
  }

  // --- The service under load. -----------------------------------------
  serve::CalibrationService service(serveOpts);
  std::cout << "service: " << service.workerCount() << " worker(s), "
            << service.shardCount() << " shard(s), cache " << cacheCapacity
            << " (" << service.cache().shardCount() << " shard(s))"
            << (tableDir.empty() ? std::string()
                                 : ", persist dir " + tableDir)
            << "\n";

  // Warm phase: the hottest `warm` ranks get a personalized table up
  // front, so the memory tier starts at its steady-state occupancy (and
  // the persist dir, when set, holds quantized spill for the overflow).
  std::cout << "warming " << warm << " hottest users...\n";
  for (std::size_t r = 0; r < warm && r < users; ++r)
    service.cache().put("u" + std::to_string(r), warmTable);

  const ZipfSampler zipf(users, skew);
  const serve::BatchAoaEngine engine(service.cache());

  // --- Continuous telemetry: sampler + SLO rules + scrape endpoint. -----
  auto& reg = obs::registry();
  // Lookup latencies feed this registry histogram alongside the exact
  // LatencyReservoir so the two estimators can be cross-checked below.
  obs::Histogram& lookupHist = reg.histogram(
      "serve.load.lookup_ms", obs::HistogramOptions{1e-4, 2.0, 32});

  std::unique_ptr<obs::SloEvaluator> slo;
  if (!sloRulesPath.empty()) {
    std::ifstream rulesIn(sloRulesPath);
    UNIQ_REQUIRE(rulesIn.good(),
                 "cannot read --slo-rules file " + sloRulesPath);
    std::stringstream rulesBuf;
    rulesBuf << rulesIn.rdbuf();
    std::vector<obs::SloRule> rules;
    std::string sloError;
    if (!obs::SloEvaluator::parseRules(rulesBuf.str(), &rules, &sloError)) {
      std::cerr << "error: " << sloError << "\n";
      return 1;
    }
    slo = std::make_unique<obs::SloEvaluator>(reg, std::move(rules));
    std::cout << "slo: " << slo->rules().size() << " rule(s) from "
              << sloRulesPath << "\n";
  }

  obs::TelemetrySamplerOptions samplerOpts;
  samplerOpts.intervalMs = sampleIntervalMs;
  obs::TelemetrySampler sampler(reg, samplerOpts);
  if (slo) {
    sampler.onWindow(
        [&slo](const obs::TelemetryWindow& w) { slo->observe(w); });
  }

  const auto scrapeContent = [&reg, &sampler, &slo] {
    const obs::TelemetryWindow window = sampler.latest();
    const std::vector<obs::SloStatus> sloStatus =
        slo ? slo->status() : std::vector<obs::SloStatus>{};
    return obs::prometheusText(reg.snapshot(), &window,
                               slo ? &sloStatus : nullptr);
  };
  std::unique_ptr<obs::ScrapeServer> scrape;
  if (scrapeEnabled) {
    scrape = std::make_unique<obs::ScrapeServer>(scrapeContent, scrapePort);
    // Flushed immediately: the CI smoke harness parses this line to learn
    // the ephemeral port before the run finishes.
    std::cout << "scrape endpoint: http://127.0.0.1:" << scrape->port()
              << "/metrics" << std::endl;
  }
  sampler.start();

  struct ThreadStats {
    LatencyReservoir lookup;
    std::vector<double> aoaMs;
    std::uint64_t opsLookup = 0, opsAoa = 0, opsBatch = 0, opsStream = 0;
    std::uint64_t tiers[4] = {0, 0, 0, 0};  // memory, disk, fallback, miss
    // per second: [lookups, memory, disk, fallback, totalOps]
    std::vector<std::array<std::uint64_t, 5>> perSec;
    std::vector<std::uint64_t> jobIds;
    std::uint64_t rejected = 0;
  };
  std::vector<ThreadStats> stats(threads);
  const auto secBuckets =
      static_cast<std::size_t>(std::ceil(durationS)) + 2;
  for (auto& st : stats)
    st.perSec.assign(secBuckets, {0, 0, 0, 0, 0});

  std::cout << "driving Zipf(" << skew << ") load over " << users
            << " users with " << threads << " thread(s) for " << durationS
            << " s...\n";
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(durationS));

  auto worker = [&](std::size_t tid) {
    ThreadStats& st = stats[tid];
    Pcg32 rng(seed ^ (0x9e3779b9ULL * (tid + 1)), 2 * tid + 1);
    // Stagger each thread's first calibration so submissions spread out
    // instead of landing as a thundering herd every interval.
    double nextCalibMs =
        calibIntervalMs * static_cast<double>(tid + 1) /
        static_cast<double>(threads);
    std::uint64_t sinceAoa = 0, submitted = 0;
    for (;;) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      const double elapsedMs =
          std::chrono::duration<double, std::milli>(now - start).count();
      const auto sec = std::min<std::size_t>(
          static_cast<std::size_t>(elapsedMs / 1000.0), secBuckets - 1);
      const std::size_t rank = zipf.sample(rng);
      const std::string userId = "u" + std::to_string(rank);

      if (calibIntervalMs > 0.0 && elapsedMs >= nextCalibMs) {
        nextCalibMs += calibIntervalMs;
        serve::JobOptions jobOpts;
        jobOpts.streaming = submitted % 2 == 1;
        const auto id = service.submit(
            userId, captures[submitted % captures.size()], jobOpts);
        ++submitted;
        if (id == serve::kInvalidJobId) {
          ++st.rejected;
        } else {
          st.jobIds.push_back(id);
          ++(jobOpts.streaming ? st.opsStream : st.opsBatch);
          ++st.perSec[sec][4];
        }
        continue;
      }

      if (aoaEvery > 0 && ++sinceAoa >= aoaEvery) {
        sinceAoa = 0;
        auto query = aoaTemplates[rank % aoaTemplates.size()];
        query.userId = userId;
        const auto t0 = std::chrono::steady_clock::now();
        engine.run({std::move(query)}, 1);
        const auto t1 = std::chrono::steady_clock::now();
        st.aoaMs.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        ++st.opsAoa;
        ++st.perSec[sec][4];
        continue;
      }

      serve::CacheTier tier = serve::CacheTier::kMiss;
      const auto t0 = std::chrono::steady_clock::now();
      const auto table = service.cache().getOrFallback(userId, fs, &tier);
      const auto t1 = std::chrono::steady_clock::now();
      (void)table;
      const double lookupElapsedMs =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      st.lookup.record(lookupElapsedMs);
      lookupHist.observe(lookupElapsedMs);
      ++st.opsLookup;
      ++st.tiers[static_cast<std::size_t>(tier)];
      auto& bucket = st.perSec[sec];
      ++bucket[0];
      ++bucket[4];
      if (tier == serve::CacheTier::kMemory) ++bucket[1];
      if (tier == serve::CacheTier::kDisk) ++bucket[2];
      if (tier == serve::CacheTier::kFallback) ++bucket[3];
    }
  };

  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (auto& t : pool) t.join();
  const double wallS = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  // Deterministic tail window covering everything since the last tick,
  // then park the background thread; the scrape server (when on) keeps
  // answering from this final state until the run exits.
  sampler.sampleNow();
  sampler.stop();

  // Calibration jobs were submitted open-loop; their latency is the
  // service-observed queue+run split, collected here.
  const auto jobResults = service.drain();
  std::vector<double> jobMs;
  std::map<std::string, std::size_t> jobStates;
  for (const auto& r : jobResults) {
    ++jobStates[serve::jobStateName(r.state)];
    jobMs.push_back(r.queueMs + r.runMs);
  }

  // --- Aggregate. -------------------------------------------------------
  std::vector<double> lookupMs, aoaMs;
  std::uint64_t opsLookup = 0, opsAoa = 0, opsBatch = 0, opsStream = 0,
                rejected = 0;
  std::uint64_t tiers[4] = {0, 0, 0, 0};
  std::vector<std::array<std::uint64_t, 5>> perSec(secBuckets,
                                                   {0, 0, 0, 0, 0});
  for (const auto& st : stats) {
    lookupMs.insert(lookupMs.end(), st.lookup.samples.begin(),
                    st.lookup.samples.end());
    aoaMs.insert(aoaMs.end(), st.aoaMs.begin(), st.aoaMs.end());
    opsLookup += st.opsLookup;
    opsAoa += st.opsAoa;
    opsBatch += st.opsBatch;
    opsStream += st.opsStream;
    rejected += st.rejected;
    for (std::size_t i = 0; i < 4; ++i) tiers[i] += st.tiers[i];
    for (std::size_t s = 0; s < secBuckets; ++s)
      for (std::size_t i = 0; i < 5; ++i) perSec[s][i] += st.perSec[s][i];
  }
  const std::uint64_t opsTotal = opsLookup + opsAoa + opsBatch + opsStream;
  const double throughput = static_cast<double>(opsTotal) / wallS;
  std::uint64_t saturation = 0;
  for (const auto& bucket : perSec)
    saturation = std::max(saturation, bucket[4]);
  const double hitRate =
      opsLookup > 0
          ? static_cast<double>(tiers[0]) / static_cast<double>(opsLookup)
          : 0.0;

  // Overall latency percentiles over every sampled operation: lookups
  // (stride-sampled), AoA calls, and calibration jobs.
  std::vector<double> allMs;
  allMs.reserve(lookupMs.size() + aoaMs.size() + jobMs.size());
  allMs.insert(allMs.end(), lookupMs.begin(), lookupMs.end());
  allMs.insert(allMs.end(), aoaMs.begin(), aoaMs.end());
  allMs.insert(allMs.end(), jobMs.begin(), jobMs.end());
  auto sortedAll = allMs;
  std::sort(sortedAll.begin(), sortedAll.end());
  const double p50 = percentileMs(sortedAll, 0.50);
  const double p99 = percentileMs(sortedAll, 0.99);
  const double p999 = percentileMs(sortedAll, 0.999);

  reg.gauge("serve.load.ops").set(static_cast<double>(opsTotal));
  reg.gauge("serve.load.throughput_ops_per_s").set(throughput);
  reg.gauge("serve.load.saturation_ops_per_s")
      .set(static_cast<double>(saturation));
  reg.gauge("serve.load.p50_ms").set(p50);
  reg.gauge("serve.load.p99_ms").set(p99);
  reg.gauge("serve.load.p999_ms").set(p999);
  reg.gauge("serve.load.hit_rate").set(hitRate);

  // Estimator cross-check: the exact (stride-sampled) reservoir versus the
  // log-binned histogram over the same lookup-latency stream. Large drift
  // here means the histogram bin layout no longer fits the workload; the
  // nightly flags it from the report JSON.
  auto sortedLookup = lookupMs;
  std::sort(sortedLookup.begin(), sortedLookup.end());
  const double reservoirP50 = percentileMs(sortedLookup, 0.50);
  const double reservoirP99 = percentileMs(sortedLookup, 0.99);
  const double histP50 = lookupHist.quantile(0.50);
  const double histP99 = lookupHist.quantile(0.99);

  std::cout << std::setprecision(4) << "load run: " << wallS << " s wall, "
            << opsTotal << " ops (" << throughput << " ops/s, peak "
            << saturation << " ops/s)\n"
            << "  ops: " << opsLookup << " lookup, " << opsAoa << " aoa, "
            << opsBatch << " batch, " << opsStream << " stream, " << rejected
            << " rejected\n"
            << "  latency: p50 " << p50 << " ms, p99 " << p99
            << " ms, p999 " << p999 << " ms\n"
            << "  tiers: " << tiers[0] << " memory, " << tiers[1]
            << " disk, " << tiers[2] << " fallback, " << tiers[3]
            << " miss (memory hit rate " << 100.0 * hitRate << "%)\n";
  for (const auto& [state, count] : jobStates)
    std::cout << "  jobs " << state << ": " << count << "\n";
  std::cout << "  lookup estimators: reservoir p50 " << reservoirP50
            << " ms / hist p50 " << histP50 << " ms, reservoir p99 "
            << reservoirP99 << " ms / hist p99 " << histP99 << " ms\n"
            << "  telemetry: " << sampler.windowCount() << " window(s) at "
            << sampleIntervalMs << " ms\n";
  if (slo) {
    for (const auto& st : slo->status()) {
      std::cout << "  slo " << st.rule.name << ": "
                << (st.breached ? "BREACHED"
                                : (st.measurable ? "ok" : "no data"))
                << " (value " << st.value << ", limit " << st.limit << ")\n";
    }
  }
  std::cout << "serve metrics:\n"
            << obs::summarizeMetrics(obs::registry().snapshot(), {"serve."});

  if (!loadReport.empty()) {
    std::ostringstream json;
    json << std::setprecision(6);
    json << "{\n  \"schema\": \"uniq-serve-load-v1\",\n";
    json << "  \"config\": {\"users\": " << users << ", \"threads\": "
         << threads << ", \"duration_s\": " << durationS << ", \"skew\": "
         << skew << ", \"shards\": " << shards << ", \"cache_capacity\": "
         << cacheCapacity << ", \"warm\": " << warm
         << ", \"persist\": " << (tableDir.empty() ? "false" : "true")
         << ", \"seed\": " << seed << "},\n";
    json << "  \"ops\": {\"total\": " << opsTotal << ", \"lookup\": "
         << opsLookup << ", \"aoa\": " << opsAoa << ", \"batch\": "
         << opsBatch << ", \"stream\": " << opsStream << ", \"rejected\": "
         << rejected << "},\n";
    json << "  \"throughput_ops_per_s\": " << throughput << ",\n";
    json << "  \"saturation_ops_per_s\": " << saturation << ",\n";
    json << "  \"percentiles\": " << percentileJson(allMs) << ",\n";
    json << "  \"op_percentiles\": {\"lookup\": "
         << percentileJson(lookupMs) << ", \"aoa\": " << percentileJson(aoaMs)
         << ", \"job\": " << percentileJson(jobMs) << "},\n";
    json << "  \"tiers\": {\"memory\": " << tiers[0] << ", \"disk\": "
         << tiers[1] << ", \"fallback\": " << tiers[2] << ", \"miss\": "
         << tiers[3] << "},\n";
    json << "  \"hit_rate\": " << hitRate << ",\n";
    json << "  \"hit_rate_curve\": [";
    bool first = true;
    for (std::size_t s = 0; s < secBuckets; ++s) {
      if (perSec[s][0] == 0) continue;
      if (!first) json << ", ";
      first = false;
      json << "{\"second\": " << s << ", \"lookups\": " << perSec[s][0]
           << ", \"hit_rate\": "
           << static_cast<double>(perSec[s][1]) /
                  static_cast<double>(perSec[s][0])
           << "}";
    }
    json << "],\n";
    json << "  \"estimator_check\": {\"reservoir_p50_ms\": " << reservoirP50
         << ", \"histogram_p50_ms\": " << histP50
         << ", \"reservoir_p99_ms\": " << reservoirP99
         << ", \"histogram_p99_ms\": " << histP99 << "},\n";
    json << "  \"telemetry\": {\"windows\": " << sampler.windowCount()
         << ", \"interval_ms\": " << sampleIntervalMs << "},\n";
    json << "  \"slo\": {\"enabled\": " << (slo ? "true" : "false")
         << ", \"breached\": "
         << (slo && slo->anyBreached() ? "true" : "false")
         << ", \"rules\": [";
    if (slo) {
      bool firstRule = true;
      for (const auto& st : slo->status()) {
        if (!firstRule) json << ", ";
        firstRule = false;
        json << "{\"name\": \"" << obs::jsonEscape(st.rule.name)
             << "\", \"value\": " << st.value << ", \"limit\": " << st.limit
             << ", \"measurable\": " << (st.measurable ? "true" : "false")
             << ", \"breached\": " << (st.breached ? "true" : "false")
             << "}";
      }
    }
    json << "], \"breaches\": [";
    if (slo) {
      bool firstBreach = true;
      for (const auto& b : slo->breaches()) {
        if (!firstBreach) json << ", ";
        firstBreach = false;
        json << "{\"rule\": \"" << obs::jsonEscape(b.rule)
             << "\", \"value\": " << b.value << ", \"limit\": " << b.limit
             << ", \"window\": " << b.windowSeq << "}";
      }
    }
    json << "]},\n";
    json << "  \"jobs\": {";
    first = true;
    for (const auto& [state, count] : jobStates) {
      if (!first) json << ", ";
      first = false;
      json << "\"" << state << "\": " << count;
    }
    json << "}\n}\n";
    const int rc =
        writeValidatedJson(loadReport, json.str(), "serve-load report");
    if (rc != 0) return rc;
  }
  if (!metricsOut.empty()) {
    const int rc = writeValidatedJson(
        metricsOut, obs::metricsJson(obs::registry().snapshot()), "metrics");
    if (rc != 0) return rc;
  }
  if (!expositionOut.empty()) {
    std::string error;
    if (!obs::writeTextFile(expositionOut, scrapeContent(), &error)) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
  }

  // A load run that did no work is a broken run; a breached SLO under
  // --fail-on-slo exits 5 so CI gates can distinguish it from crashes.
  if (opsTotal == 0) return 1;
  if (failOnSlo && slo && slo->anyBreached()) {
    std::cerr << "error: SLO breached (--fail-on-slo)\n";
    return 5;
  }
  return 0;
}

int cmdMonitor(const Args& args) {
  const auto port =
      static_cast<std::uint16_t>(std::stoul(require(args, "port")));
  const auto intervalMs = static_cast<std::uint64_t>(
      std::stoull(optional(args, "interval-ms", "1000")));
  const auto iterations = static_cast<std::uint64_t>(
      std::stoull(optional(args, "iterations", "0")));

  for (std::uint64_t iter = 0; iterations == 0 || iter < iterations; ++iter) {
    if (iter > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(intervalMs));
    std::string body, error;
    if (!obs::httpGet(port, "/metrics", &body, &error)) {
      if (iter == 0) {
        std::cerr << "error: " << error << "\n";
        return 1;
      }
      // The load run under observation finished — that's a clean end.
      std::cout << "endpoint gone (" << error << ") — monitor exiting\n";
      return 0;
    }

    // Flatten the exposition into name{labels} -> value.
    std::map<std::string, double> samples;
    std::istringstream lines(body);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty() || line[0] == '#') continue;
      const auto space = line.rfind(' ');
      if (space == std::string::npos) continue;
      try {
        samples[line.substr(0, space)] = std::stod(line.substr(space + 1));
      } catch (const std::exception&) {
      }
    }

    std::cout << "--- scrape " << iter << " (127.0.0.1:" << port
              << ") ---\n" << std::setprecision(4);
    std::cout << "rates (events/s):\n";
    for (const auto& [key, value] : samples) {
      if (key.size() > 5 && key.compare(key.size() - 5, 5, "_rate") == 0 &&
          value > 0.0)
        std::cout << "  " << key << " " << value << "\n";
    }
    std::cout << "window quantiles (p50/p90/p99):\n";
    for (const auto& [key, value] : samples) {
      const auto tag = key.find("_window_q{q=\"0.5\"}");
      if (tag == std::string::npos) continue;
      const std::string base = key.substr(0, tag);
      const auto p90 = samples.find(base + "_window_q{q=\"0.9\"}");
      const auto p99 = samples.find(base + "_window_q{q=\"0.99\"}");
      std::cout << "  " << base << " " << value << " / "
                << (p90 != samples.end() ? p90->second : 0.0) << " / "
                << (p99 != samples.end() ? p99->second : 0.0) << "\n";
    }
    bool anyShard = false;
    for (const auto& [key, value] : samples) {
      if (key.rfind("uniq_serve_shard_", 0) != 0) continue;
      if (!anyShard) std::cout << "shards:\n";
      anyShard = true;
      std::cout << "  " << key << " " << value << "\n";
    }
    bool anySlo = false;
    for (const auto& [key, value] : samples) {
      if (key.rfind("uniq_slo_breached{", 0) != 0) continue;
      if (!anySlo) std::cout << "slo:\n";
      anySlo = true;
      const std::string rule =
          key.substr(sizeof("uniq_slo_breached{rule=\"") - 1,
                     key.size() - sizeof("uniq_slo_breached{rule=\"") - 1);
      const auto v = samples.find("uniq_slo_value{rule=\"" + rule + "\"}");
      const auto l = samples.find("uniq_slo_limit{rule=\"" + rule + "\"}");
      std::cout << "  " << rule << ": "
                << (value != 0.0 ? "BREACHED" : "ok") << " (value "
                << (v != samples.end() ? v->second : 0.0) << ", limit "
                << (l != samples.end() ? l->second : 0.0) << ")\n";
    }
    std::cout.flush();
  }
  return 0;
}

void usage() {
  std::cout <<
      "usage: uniq <command> [flags]\n"
      "  calibrate  --out table.uniq [--seed N] [--constrained] [--stops N]\n"
      "             [--report] [--trace-out trace.json]\n"
      "             [--metrics-out metrics.json] [--min-stops N]\n"
      "             [--fail-on-degraded] [--fault KIND]\n"
      "             [--fault-severity X]\n"
      "             exit codes: 0 ok/degraded, 3 degraded with\n"
      "             --fail-on-degraded, 4 failed (fallback table saved)\n"
      "  calibrate-stream --out table.uniq [--seed N] [--constrained]\n"
      "             [--stops N] [--interval-ms X] [--no-early-stop]\n"
      "             [--compare-batch] [--report] [--min-stops N]\n"
      "             [--fault KIND] [--fault-severity X]\n"
      "             [--fail-on-degraded] [--trace-out trace.json]\n"
      "             [--metrics-out metrics.json]\n"
      "             replay the capture through the streaming dataflow\n"
      "             (live coverage hints, early stop on convergence);\n"
      "             same exit codes as calibrate\n"
      "  inspect    --table table.uniq\n"
      "  render     --table table.uniq --in mono.wav --out out.wav\n"
      "             --angle DEG [--elevation DEG]\n"
      "  demo-render --table table.uniq --out out.wav --angle DEG\n"
      "              [--elevation DEG]\n"
      "  serve-batch [--users N] [--workers N] [--queue N] [--stops N]\n"
      "              [--seed N] [--deadline-ms X] [--cancel N]\n"
      "              [--cache-capacity N] [--table-dir DIR]\n"
      "              [--aoa-queries N] [--compare-serial] [--min-stops N]\n"
      "              [--fault KIND] [--fault-severity X] [--fault-every N]\n"
      "              [--metrics-out metrics.json]\n"
      "              drives N simulated users through the calibration\n"
      "              service and a batched AoA pass against the cache\n"
      "  serve-load  [--users N] [--duration-s S] [--threads T] [--skew Z]\n"
      "              [--shards K] [--cache-capacity N] [--warm N]\n"
      "              [--workers N] [--queue N] [--seed N]\n"
      "              [--calibrate-interval-ms X] [--aoa-every N]\n"
      "              [--table-dir DIR] [--load-report out.json]\n"
      "              [--metrics-out metrics.json] [--scrape-port P]\n"
      "              [--sample-interval-ms X] [--slo-rules rules.json]\n"
      "              [--fail-on-slo] [--exposition-out metrics.prom]\n"
      "              Zipfian load driver over the sharded serving stack:\n"
      "              reports p50/p99/p999 latency, tier hit rates, and\n"
      "              saturation throughput (docs/CAPACITY.md). With\n"
      "              --scrape-port the run serves live Prometheus\n"
      "              exposition on 127.0.0.1 (0 = ephemeral, port is\n"
      "              printed); --slo-rules evaluates burn-rate SLOs per\n"
      "              sampler window and --fail-on-slo exits 5 on breach\n"
      "              (docs/OBSERVABILITY.md)\n"
      "  monitor     --port P [--interval-ms X] [--iterations N]\n"
      "              live terminal view of a serve-load scrape endpoint:\n"
      "              rates, per-window p50/p90/p99, shard depths, SLO\n"
      "              status (N = 0 polls until the endpoint goes away)\n"
      "  convert     --in table.uniq --out table.uniqq\n"
      "              [--format quantized|float64]\n"
      "              re-encode a table between containers\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const auto args = parseArgs(argc, argv, 2);
    if (cmd == "calibrate") return cmdCalibrate(args);
    if (cmd == "calibrate-stream") return cmdCalibrateStream(args);
    if (cmd == "inspect") return cmdInspect(args);
    if (cmd == "render") return cmdRender(args, false);
    if (cmd == "demo-render") return cmdRender(args, true);
    if (cmd == "serve-batch") return cmdServeBatch(args);
    if (cmd == "serve-load") return cmdServeLoad(args);
    if (cmd == "monitor") return cmdMonitor(args);
    if (cmd == "convert") return cmdConvert(args);
    usage();
    return 2;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
