// Reproduces paper Figure 16: the combined speaker-microphone frequency
// response of commodity hardware — unstable below ~50 Hz, reasonably flat
// over 100 Hz - 10 kHz.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "dsp/spectrum.h"
#include "eval/reporting.h"
#include "sim/hardware_model.h"

using namespace uniq;

int main() {
  eval::printHeader(std::cout, "Figure 16",
                    "speaker-microphone pair frequency response");

  const sim::HardwareModel hardware;
  std::vector<double> freqs, trueDb, estimatedDb;
  Pcg32 rng(5);
  const auto estimate = hardware.estimateResponse(35.0, rng);
  const std::size_t n = estimate.size();
  for (double f = 20.0; f <= 22000.0; f *= 1.25) {
    freqs.push_back(f);
    trueDb.push_back(hardware.magnitudeDbAt(f));
    const std::size_t bin = dsp::frequencyToBin(f, n, hardware.sampleRate());
    estimatedDb.push_back(20.0 *
                          std::log10(std::max(std::abs(estimate[bin]), 1e-12)));
  }
  eval::printSeries(std::cout, "response (dB) vs frequency (Hz)",
                    {"freq_hz", "true_db", "estimated_db"},
                    {freqs, trueDb, estimatedDb});
  std::cout << "20 Hz: " << hardware.magnitudeDbAt(20.0)
            << " dB (unusable), 1 kHz: " << hardware.magnitudeDbAt(1000.0)
            << " dB, 8 kHz: " << hardware.magnitudeDbAt(8000.0) << " dB\n";
  std::cout << "(paper: response unstable below 50 Hz, stabilizes over "
               "[100 Hz, 10 kHz]; UNIQ compensates it per Section 4.6)\n";
  return 0;
}
