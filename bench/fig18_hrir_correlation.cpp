// Reproduces paper Figure 18: cross-correlation of the personalized (UNIQ)
// far-field HRIR, the global-template HRIR, and a repeated ground-truth
// measurement, all against the ground-truth HRIR, per angle and per ear.
// Paper headline: UNIQ averages 0.74 (left) / 0.71 (right) vs 0.41 for the
// global template — a ~1.75x personalization gain.
#include <iostream>
#include <vector>

#include "eval/experiments.h"
#include "eval/metrics.h"
#include "eval/reporting.h"
#include "obs/report.h"

using namespace uniq;

int main() {
  eval::printHeader(std::cout, "Figure 18",
                    "HRIR correlation vs angle: UNIQ / global / "
                    "repeat-measurement, per ear (volunteer 1)");

  eval::ExperimentConfig config;
  const auto population = eval::makeStudyPopulation(config);
  const auto run = eval::calibrate(population[0], config);
  const auto series = eval::correlationVsAngle(run, 5.0);

  eval::printSeries(
      std::cout, "(a) left ear",
      {"angle_deg", "UNIQ", "global", "gnd-repeat"},
      {series.anglesDeg, series.uniqLeft, series.globalLeft,
       series.repeatLeft});
  eval::printSeries(
      std::cout, "(b) right ear",
      {"angle_deg", "UNIQ", "global", "gnd-repeat"},
      {series.anglesDeg, series.uniqRight, series.globalRight,
       series.repeatRight});

  const double uniqL = eval::mean(series.uniqLeft);
  const double uniqR = eval::mean(series.uniqRight);
  const double globalL = eval::mean(series.globalLeft);
  const double globalR = eval::mean(series.globalRight);
  const double repeatL = eval::mean(series.repeatLeft);
  const double repeatR = eval::mean(series.repeatRight);
  std::cout << "\naverages:  UNIQ L/R = " << uniqL << " / " << uniqR
            << "   global L/R = " << globalL << " / " << globalR
            << "   repeat L/R = " << repeatL << " / " << repeatR << "\n";
  const double gain =
      0.5 * (uniqL + uniqR) / (0.5 * (globalL + globalR));
  std::cout << "personalization gain (UNIQ avg / global avg) = " << gain
            << "x   (paper: ~1.75x; UNIQ 0.74/0.71 vs global 0.41)\n";
  std::cout << "(paper also notes the right ear dips near 90 deg where the "
               "phone is opposite that ear and SNR drops)\n";
  uniq::obs::exportMetricsIfRequested();
  return 0;
}
