// Reproduces paper Figure 17: phone localization accuracy during the
// hand-rotation sweep — estimated polar angle vs overhead-camera ground
// truth, and the angular error CDF (paper: median 4.8 degrees, rare
// excursions to ~15 when the volunteer deviates from instructions).
#include <iostream>
#include <vector>

#include "eval/experiments.h"
#include "eval/metrics.h"
#include "eval/reporting.h"
#include "obs/report.h"

using namespace uniq;

int main() {
  eval::printHeader(std::cout, "Figure 17",
                    "phone localization: estimate vs truth + error CDF "
                    "(all 5 volunteers)");

  eval::ExperimentConfig config;
  const auto population = eval::makeStudyPopulation(config);

  std::vector<double> allTruth, allEst, allErr;
  for (const auto& volunteer : population) {
    const auto run = eval::calibrate(volunteer, config);
    const auto series = eval::localizationAccuracy(run);
    allTruth.insert(allTruth.end(), series.truthDeg.begin(),
                    series.truthDeg.end());
    allEst.insert(allEst.end(), series.estimatedDeg.begin(),
                  series.estimatedDeg.end());
    allErr.insert(allErr.end(), series.absErrorDeg.begin(),
                  series.absErrorDeg.end());
    std::cout << volunteer.subject.name << ": median angular error "
              << eval::median(series.absErrorDeg) << " deg over "
              << series.absErrorDeg.size() << " localized stops\n";
  }

  eval::printSeries(std::cout, "(a) groundtruth vs estimated angle (deg)",
                    {"truth_deg", "estimated_deg"}, {allTruth, allEst});
  eval::printCdfSummary(std::cout, "(b) angular error CDF (deg)", allErr);
  std::cout << "overall median error = " << eval::median(allErr)
            << " deg (paper: 4.8 deg; error dominated by imperfect "
               "phone-facing, Section 5.1)\n";
  uniq::obs::exportMetricsIfRequested();
  return 0;
}
