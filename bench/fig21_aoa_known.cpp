// Reproduces paper Figure 21: far-field angle-of-arrival estimation with a
// KNOWN source signal, personalized vs global HRTF. Paper: UNIQ median
// error 7.8 deg vs 45.3 deg for the global template; max error 60 vs >150;
// the global template confuses front/back in 29% of trials.
#include <iostream>
#include <vector>

#include "core/near_far.h"
#include "eval/experiments.h"
#include "eval/metrics.h"
#include "eval/reporting.h"
#include "obs/report.h"

using namespace uniq;

int main() {
  eval::printHeader(std::cout, "Figure 21",
                    "known-source AoA error CDF: UNIQ vs global (all 5 "
                    "volunteers)");

  eval::ExperimentConfig config;
  const auto population = eval::makeStudyPopulation(config);
  head::HrtfDatabase::Options dbOpts;
  const head::HrtfDatabase globalDb(head::globalTemplateSubject(), dbOpts);
  const auto globalTable = core::farTableFromDatabase(globalDb);

  std::vector<double> uniqErrs, globalErrs;
  std::size_t globalFrontBackErrors = 0, trialsTotal = 0;
  for (std::size_t i = 0; i < population.size(); ++i) {
    const auto run = eval::calibrate(population[i], config);
    head::HrtfDatabase truthDb(run.volunteer.subject, dbOpts);
    eval::AoaExperimentOptions opts;
    opts.seed = 100 + i;
    const auto personalTrials =
        eval::runAoaTrials(truthDb, run.personal.table.farTable(), true,
                           eval::SignalKind::kChirp, opts);
    const auto globalTrials = eval::runAoaTrials(
        truthDb, globalTable, true, eval::SignalKind::kChirp, opts);
    for (const auto& t : personalTrials) uniqErrs.push_back(t.absErrorDeg);
    for (const auto& t : globalTrials) {
      globalErrs.push_back(t.absErrorDeg);
      if (!t.frontBackCorrect) ++globalFrontBackErrors;
      ++trialsTotal;
    }
  }

  eval::printCdfSummary(std::cout, "UNIQ personalized HRTF error (deg)",
                        uniqErrs);
  eval::printCdfSummary(std::cout, "global HRTF error (deg)", globalErrs);
  std::cout << "medians: UNIQ " << eval::median(uniqErrs) << " deg vs global "
            << eval::median(globalErrs)
            << " deg  (paper: 7.8 vs 45.3)\n";
  std::cout << "max errors: UNIQ " << eval::percentile(uniqErrs, 100.0)
            << " deg vs global " << eval::percentile(globalErrs, 100.0)
            << " deg  (paper: 60 vs >150)\n";
  std::cout << "global front-back confusions: "
            << 100.0 * static_cast<double>(globalFrontBackErrors) /
                   static_cast<double>(trialsTotal)
            << "%  (paper: 29%)\n";
  std::cout << "improvement of the personalized HRTF: "
            << eval::median(globalErrs) - eval::median(uniqErrs)
            << " deg at the median (paper headline: >20 deg average)\n";
  uniq::obs::exportMetricsIfRequested();
  return 0;
}
