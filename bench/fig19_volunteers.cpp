// Reproduces paper Figure 19: per-volunteer average HRIR correlation for
// UNIQ vs the global template, per ear. Volunteers 4 and 5 moved the phone
// too close to the back of their heads (constrained arm), costing accuracy.
#include <iostream>
#include <vector>

#include "eval/experiments.h"
#include "eval/metrics.h"
#include "eval/reporting.h"
#include "obs/report.h"

using namespace uniq;

int main() {
  eval::printHeader(std::cout, "Figure 19",
                    "per-volunteer mean HRIR correlation, UNIQ vs global");

  eval::ExperimentConfig config;
  const auto population = eval::makeStudyPopulation(config);

  std::vector<double> ids, uniqL, uniqR, globalL, globalR;
  for (std::size_t i = 0; i < population.size(); ++i) {
    const auto run = eval::calibrate(population[i], config);
    const auto series = eval::correlationVsAngle(run, 10.0);
    ids.push_back(static_cast<double>(i + 1));
    uniqL.push_back(eval::mean(series.uniqLeft));
    uniqR.push_back(eval::mean(series.uniqRight));
    globalL.push_back(eval::mean(series.globalLeft));
    globalR.push_back(eval::mean(series.globalRight));
    std::cout << population[i].subject.name
              << (population[i].gesture.armDroopM > 0
                      ? "  [constrained arm gesture]"
                      : "")
              << ": gesture check "
              << (run.personal.gestureReport.ok ? "ok" : "flagged") << "\n";
  }

  eval::printSeries(std::cout, "(a) left ear mean correlation",
                    {"volunteer", "UNIQ", "global"}, {ids, uniqL, globalL});
  eval::printSeries(std::cout, "(b) right ear mean correlation",
                    {"volunteer", "UNIQ", "global"}, {ids, uniqR, globalR});

  bool allBeatGlobal = true;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (uniqL[i] <= globalL[i] || uniqR[i] <= globalR[i])
      allBeatGlobal = false;
  }
  std::cout << "\npersonalization gain consistent across all volunteers: "
            << (allBeatGlobal ? "yes" : "NO") << "  (paper: yes, with "
            << "volunteers 4-5 slightly lower due to arm constraints)\n";
  uniq::obs::exportMetricsIfRequested();
  return 0;
}
