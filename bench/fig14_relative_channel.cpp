// Reproduces paper Figure 14: for an unknown ambient source, the relative
// channel between the two ear recordings shows multiple peaks (poor signal
// auto-correlation + pinna multipath), each proposing a candidate
// interaural delay.
#include <iostream>
#include <vector>

#include "core/near_far.h"
#include "dsp/correlation.h"
#include "dsp/peak_picking.h"
#include "eval/experiments.h"
#include "eval/reporting.h"
#include "sim/recorder.h"

using namespace uniq;

int main() {
  eval::printHeader(std::cout, "Figure 14",
                    "relative channel between the ears: multiple taps per "
                    "unknown source");

  const auto population = head::makePopulation(1, 2021);
  head::HrtfDatabase::Options dbOpts;
  const head::HrtfDatabase db(population[0], dbOpts);
  const sim::HardwareModel hardware;
  const sim::RoomModel room;
  sim::BinauralRecorder::Options recOpts;
  recOpts.snrDb = 25.0;
  const sim::BinauralRecorder recorder(db, hardware, room, recOpts);

  Pcg32 rng(11);
  const auto signal = eval::makeSignal(eval::SignalKind::kWhiteNoise, 24000,
                                       48000.0, rng);
  const auto rec = recorder.recordFarField(40.0, signal, rng, false);

  auto rel = dsp::gccPhat(rec.left, rec.right);
  const double zeroLag = static_cast<double>(rec.right.size() - 1);

  // Print the +/- 1.5 ms neighborhood of zero lag.
  const auto window = static_cast<long>(1.5e-3 * 48000.0);
  std::vector<double> lagMs, value;
  for (long k = -window; k <= window; k += 2) {
    const auto idx = static_cast<std::size_t>(zeroLag + k);
    lagMs.push_back(static_cast<double>(k) / 48.0);  // ms at 48 kHz
    value.push_back(rel[idx]);
  }
  eval::printSeries(std::cout, "relative channel (source at 40 deg)",
                    {"lag_ms", "amplitude"}, {lagMs, value});

  dsp::FirstTapOptions peakOpts;
  peakOpts.relativeThreshold = 0.45;
  const auto taps = dsp::findTaps(rel, peakOpts);
  std::cout << "peaks above threshold within +/-1.2 ms:\n";
  int shown = 0;
  for (const auto& tap : taps) {
    const double lag = tap.position - zeroLag;
    if (std::abs(lag) > 1.2e-3 * 48000.0) continue;
    std::cout << "  delta_t = " << -lag / 48.0 << " ms  (amplitude "
              << tap.amplitude << ")\n";
    ++shown;
  }
  std::cout << shown
            << " candidate interaural delays -> each maps to a front/back "
               "AoA pair (Section 4.5)\n";
  return 0;
}
