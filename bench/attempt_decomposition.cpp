// Reproduces the paper's Section 4.3 "additional attempts" — the honest
// negative result. Attempt 1 proposed shaping time-varying beams with the
// phone's TWO speakers to decompose the near-field HRTF into per-ray
// components (Eq. 6); the paper found "the system of equations being
// ill-ranked", causing "large errors for the estimated H(X_k, theta_i)".
// This bench quantifies exactly that: the measurement matrix's rank is
// capped at the speaker count no matter how many beam patterns are played,
// and recovery error stays large at any realistic SNR.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/ray_decomposition.h"
#include "eval/reporting.h"

using namespace uniq;

int main() {
  eval::printHeader(std::cout, "Section 4.3 attempts",
                    "two-speaker beamforming ray decomposition is "
                    "ill-ranked (negative-result reproduction)");

  core::SpeakerBeamformingStudyOptions opts;

  std::cout << "\nrank of the measurement system (12 ray directions, 48 "
               "patterns):\n";
  const auto phoneMatrix = core::buildBeamformingMatrix(opts);
  std::cout << "  matrix " << phoneMatrix.rows() << " x "
            << phoneMatrix.cols() << ", numerical rank "
            << optim::numericalRank(phoneMatrix, 1e-5) << " (unknowns: "
            << phoneMatrix.cols()
            << ") -> rank-deficient: every beam pattern lies in the span "
               "of 2 per-speaker steering vectors\n";

  std::cout << "\ncounterfactual conditioning vs number of ideal emitters:\n";
  for (std::size_t s : {2ul, 4ul, 8ul, 12ul, 16ul, 24ul}) {
    const double c = core::conditionNumberForSpeakerCount(opts, s);
    std::cout << "  " << s << " speakers: cond = ";
    if (std::isfinite(c) && c < 1e9) {
      std::cout << c << "\n";
    } else {
      std::cout << "singular (rank < unknowns)\n";
    }
  }

  std::cout << "per-ray recovery error with the phone's two speakers:\n";
  std::vector<double> snrs, errors;
  for (double snr : {60.0, 40.0, 30.0, 20.0, 10.0}) {
    const auto result = core::runRayRecoveryStudy(opts, snr);
    snrs.push_back(snr);
    errors.push_back(result.noisyError);
  }
  eval::printSeries(std::cout, "relative L2 error of recovered rays vs SNR",
                    {"snr_db", "rel_error"}, {snrs, errors});

  core::SpeakerBeamformingStudyOptions few = opts;
  few.rayCount = 2;
  const auto fewResult = core::runRayRecoveryStudy(few, 40.0);
  std::cout << "with only 2 ray directions (rank sufficient): rel error "
            << fewResult.noisyError << " at 40 dB — the failure is "
            << "specific to fine angular decomposition\n";
  std::cout << "\nconclusion matches the paper: two speakers cannot form a "
               "spatially narrow beam, the system is ill-ranked, and the "
               "per-ray estimates come out wrong; UNIQ instead uses the "
               "first-order geometric heuristic of Figure 12.\n";
  return 0;
}
