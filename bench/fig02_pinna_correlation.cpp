// Reproduces paper Figure 2: (a) for one user, the pinna's response is
// nearly 1:1 with the angle of arrival (strongly diagonal correlation
// matrix); (b) across two users, the responses are markedly different and
// the best match often lands at a wrong angle.
#include <iostream>
#include <vector>

#include "eval/experiments.h"
#include "eval/metrics.h"
#include "eval/reporting.h"
#include "geometry/diffraction.h"
#include "geometry/polar.h"
#include "head/pinna_model.h"

using namespace uniq;

namespace {

constexpr double kFs = 48000.0;

/// Left-ear response for a far-field probe from azimuth theta, pinna only
/// (the paper keeps the speaker on the ear's side so the head barely
/// matters): pinna IR at the physically correct incidence angle.
std::vector<double> probeResponse(const head::PinnaModel& pinna,
                                  const geo::HeadBoundary& head,
                                  double thetaDeg) {
  const geo::Vec2 d = -geo::directionFromAzimuthDeg(thetaDeg);
  const auto path = geo::farFieldPath(head, d, geo::Ear::kLeft);
  const double incidence = head::PinnaModel::incidenceAngleDeg(
      head, geo::Ear::kLeft, path.arrivalDirection);
  return pinna.impulseResponse(incidence, kFs, 96);
}

}  // namespace

int main() {
  eval::printHeader(std::cout, "Figure 2",
                    "pinna response cross-correlation, same user vs "
                    "different users (18 probe angles, 10-degree steps)");

  const auto population = head::makePopulation(2, 2021);
  const head::Subject& alice = population[0];
  const head::Subject& bob = population[1];
  const geo::HeadBoundary headAlice(alice.headParams.a, alice.headParams.b,
                                    alice.headParams.c, 256);
  const geo::HeadBoundary headBob(bob.headParams.a, bob.headParams.b,
                                  bob.headParams.c, 256);
  const head::PinnaModel pinnaAlice(alice.pinnaSeed, geo::Ear::kLeft);
  const head::PinnaModel pinnaBob(bob.pinnaSeed, geo::Ear::kLeft);

  std::vector<double> angles;
  std::vector<std::vector<double>> aliceIrs, bobIrs;
  for (int k = 0; k < 18; ++k) {
    const double theta = 10.0 * k;
    angles.push_back(theta);
    aliceIrs.push_back(probeResponse(pinnaAlice, headAlice, theta));
    bobIrs.push_back(probeResponse(pinnaBob, headBob, theta));
  }

  // (a) same-user matrix: report per-angle best match and the
  // diagonal-vs-off-diagonal contrast.
  std::cout << "\n(a) same user (Alice vs Alice): best-matching angle per "
               "probe angle\n";
  double diagSum = 0.0, offSum = 0.0;
  int diagN = 0, offN = 0, diagonalHits = 0;
  std::vector<double> col1, col2, col3;
  for (std::size_t i = 0; i < angles.size(); ++i) {
    double bestCorr = -2.0;
    std::size_t bestJ = 0;
    for (std::size_t j = 0; j < angles.size(); ++j) {
      const double c = eval::channelSimilarity(aliceIrs[i], aliceIrs[j], kFs);
      if (i == j) {
        diagSum += c;
        ++diagN;
      } else {
        offSum += c;
        ++offN;
      }
      if (c > bestCorr) {
        bestCorr = c;
        bestJ = j;
      }
    }
    if (bestJ == i) ++diagonalHits;
    col1.push_back(angles[i]);
    col2.push_back(angles[bestJ]);
    col3.push_back(bestCorr);
  }
  eval::printSeries(std::cout, "angle1 -> best angle2 (same user)",
                    {"angle1", "best_angle2", "corr"}, {col1, col2, col3});
  std::cout << "diagonal mean corr = " << diagSum / diagN
            << ", off-diagonal mean corr = " << offSum / offN << "\n";
  std::cout << "1:1 mapping hits: " << diagonalHits << "/18"
            << "  (paper: strongly diagonal matrix, ~20-degree resolution)\n";

  // (b) cross-user matrix.
  std::cout << "\n(b) different users (Alice angle1 vs Bob angle2)\n";
  col1.clear();
  col2.clear();
  col3.clear();
  int crossDiagonalHits = 0;
  double crossDiagSum = 0.0;
  for (std::size_t i = 0; i < angles.size(); ++i) {
    double bestCorr = -2.0;
    std::size_t bestJ = 0;
    for (std::size_t j = 0; j < angles.size(); ++j) {
      const double c = eval::channelSimilarity(aliceIrs[i], bobIrs[j], kFs);
      if (c > bestCorr) {
        bestCorr = c;
        bestJ = j;
      }
      if (i == j) crossDiagSum += c;
    }
    if (bestJ == i) ++crossDiagonalHits;
    col1.push_back(angles[i]);
    col2.push_back(angles[bestJ]);
    col3.push_back(bestCorr);
  }
  eval::printSeries(std::cout, "angle1 -> best angle2 (cross user)",
                    {"angle1", "best_angle2", "corr"}, {col1, col2, col3});
  std::cout << "cross-user diagonal mean corr = " << crossDiagSum / 18
            << " (same-user diagonal was " << diagSum / diagN << ")\n";
  std::cout << "cross-user 1:1 hits: " << crossDiagonalHits
            << "/18  (paper: pinnas do not match across users)\n";
  return 0;
}
