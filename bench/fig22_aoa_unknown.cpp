// Reproduces paper Figure 22: unknown-source AoA error CDFs for white
// noise, music, and speech (a-c), plus front/back identification accuracy
// (d). Paper: personalized HRTF gains are consistent across signal types;
// UNIQ front/back accuracy averages 82.8% (white noise 87.2%, speech
// 72.8%) vs 59.8% for the global template.
#include <iostream>
#include <vector>

#include "core/near_far.h"
#include "eval/experiments.h"
#include "eval/metrics.h"
#include "eval/reporting.h"
#include "obs/report.h"

using namespace uniq;

int main() {
  eval::printHeader(std::cout, "Figure 22",
                    "unknown-source AoA per signal class + front/back "
                    "accuracy (all 5 volunteers)");

  eval::ExperimentConfig config;
  const auto population = eval::makeStudyPopulation(config);
  head::HrtfDatabase::Options dbOpts;
  const head::HrtfDatabase globalDb(head::globalTemplateSubject(), dbOpts);
  const auto globalTable = core::farTableFromDatabase(globalDb);

  // Calibrate once per volunteer, reuse across the three signal classes.
  std::vector<eval::CalibratedVolunteer> runs;
  for (const auto& volunteer : population)
    runs.push_back(eval::calibrate(volunteer, config));

  const eval::SignalKind kinds[3] = {eval::SignalKind::kWhiteNoise,
                                     eval::SignalKind::kMusic,
                                     eval::SignalKind::kSpeech};
  double uniqFbSum = 0.0, globalFbSum = 0.0;
  char panel = 'a';
  for (const auto kind : kinds) {
    std::vector<double> uniqErrs, globalErrs;
    double uniqFbCorrect = 0.0, globalFbCorrect = 0.0;
    std::size_t trials = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      head::HrtfDatabase truthDb(runs[i].volunteer.subject, dbOpts);
      eval::AoaExperimentOptions opts;
      opts.seed = 500 + i * 17 + static_cast<std::size_t>(kind);
      const auto personalTrials =
          eval::runAoaTrials(truthDb, runs[i].personal.table.farTable(),
                             false, kind, opts);
      const auto globalTrials =
          eval::runAoaTrials(truthDb, globalTable, false, kind, opts);
      for (const auto& t : personalTrials) {
        uniqErrs.push_back(t.absErrorDeg);
        uniqFbCorrect += t.frontBackCorrect ? 1.0 : 0.0;
      }
      for (const auto& t : globalTrials) {
        globalErrs.push_back(t.absErrorDeg);
        globalFbCorrect += t.frontBackCorrect ? 1.0 : 0.0;
        ++trials;
      }
    }
    std::cout << "\n(" << panel++ << ") signal class: "
              << eval::signalKindName(kind) << "\n";
    eval::printCdfSummary(std::cout, "UNIQ error (deg)", uniqErrs);
    eval::printCdfSummary(std::cout, "global error (deg)", globalErrs);
    const double uniqFb = uniqFbCorrect / static_cast<double>(trials);
    const double globalFb = globalFbCorrect / static_cast<double>(trials);
    std::cout << "front/back accuracy: UNIQ " << 100.0 * uniqFb
              << "% vs global " << 100.0 * globalFb << "%\n";
    uniqFbSum += uniqFb;
    globalFbSum += globalFb;
  }

  std::cout << "\n(d) front/back accuracy averaged over signal classes:\n"
            << "    UNIQ " << 100.0 * uniqFbSum / 3.0 << "% vs global "
            << 100.0 * globalFbSum / 3.0
            << "%  (paper: 82.8% vs 59.8%; white noise easiest, speech "
               "hardest because it reveals the least of the channel)\n";
  uniq::obs::exportMetricsIfRequested();
  return 0;
}
