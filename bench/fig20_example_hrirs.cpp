// Reproduces paper Figure 20: sample HRIRs in the time domain — best,
// average, and worst cases of the UNIQ estimate next to the ground truth
// and the global template. UNIQ decodes taps at the correct positions even
// in the worst case; the global template misplaces them.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/near_far.h"
#include "eval/experiments.h"
#include "eval/metrics.h"
#include "eval/reporting.h"

using namespace uniq;

int main() {
  eval::printHeader(std::cout, "Figure 20",
                    "example HRIRs: best / average / worst UNIQ estimate");

  eval::ExperimentConfig config;
  const auto population = eval::makeStudyPopulation(config);
  const auto run = eval::calibrate(population[0], config);

  head::HrtfDatabase::Options dbOpts;
  const head::HrtfDatabase truthDb(run.volunteer.subject, dbOpts);
  const head::HrtfDatabase globalDb(head::globalTemplateSubject(), dbOpts);
  const auto truthTable = core::farTableFromDatabase(truthDb);
  const auto globalTable = core::farTableFromDatabase(globalDb);
  const auto& uniqTable = run.personal.table.farTable();

  struct Case {
    double angle;
    double corr;
  };
  std::vector<Case> cases;
  for (double ang = 5; ang <= 175; ang += 5) {
    cases.push_back(
        {ang, eval::hrirSimilarity(uniqTable.at(ang), truthTable.at(ang))});
  }
  std::sort(cases.begin(), cases.end(),
            [](const Case& a, const Case& b) { return a.corr > b.corr; });
  const Case best = cases.front();
  const Case avg = cases[cases.size() / 2];
  const Case worst = cases.back();

  const char* names[3] = {"best", "average", "worst"};
  const Case picks[3] = {best, avg, worst};
  for (int k = 0; k < 3; ++k) {
    const Case& c = picks[k];
    std::cout << "\n(" << static_cast<char>('a' + k) << ") " << names[k]
              << " case: angle " << c.angle << " deg, corr = " << c.corr
              << " (global corr = "
              << eval::hrirSimilarity(globalTable.at(c.angle),
                                      truthTable.at(c.angle))
              << ")\n";
    std::vector<double> idx, uniqV, truthV, globalV;
    const auto& u = uniqTable.at(c.angle).left;
    const auto& t = truthTable.at(c.angle).left;
    const auto& g = globalTable.at(c.angle).left;
    for (std::size_t i = 24; i < 120 && i < u.size(); i += 2) {
      idx.push_back(static_cast<double>(i));
      uniqV.push_back(u[i]);
      truthV.push_back(i < t.size() ? t[i] : 0.0);
      globalV.push_back(i < g.size() ? g[i] : 0.0);
    }
    eval::printSeries(std::cout, "left-ear HRIR samples",
                      {"sample", "UNIQ", "truth", "global"},
                      {idx, uniqV, truthV, globalV});
  }
  std::cout << "\n(paper cases: best corr 0.96, average 0.85, worst 0.43; "
               "global HRIRs almost always inferior)\n";
  return 0;
}
