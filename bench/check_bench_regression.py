#!/usr/bin/env python3
"""Compare two perf reports and fail on regressions.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--threshold 0.25]
        [--percentile-keys p99_ms] [--abs-floor-ms 0.05]

Two report shapes are understood, auto-detected from the files:

google-benchmark reports (a top-level "benchmarks" array)
    Benchmarks are matched by name; only names present in BOTH reports are
    compared (new benchmarks can land without a baseline, removed ones do
    not block). A benchmark regresses when its cpu_time grows by more than
    `threshold` (default 25%) relative to the baseline. real_time is
    reported for context but never gates: wall clock on shared CI runners
    is too noisy, while cpu_time is stable enough to catch real algorithmic
    regressions.

serve-load reports (schema "uniq-serve-load-v1", a "percentiles" object)
    The latency percentiles named by --percentile-keys (default: p99_ms)
    are compared directly; a percentile regresses when it grows by more
    than `threshold` AND by more than --abs-floor-ms absolute (default
    0.05 ms — sub-floor jitter on a cache-hit path measured in tens of
    microseconds is noise, not a regression). Throughput and hit rate are
    printed for context but never gate.

Both files must be the same shape. Exit codes: 0 ok, 1 at least one
regression, 2 bad input.
"""

import argparse
import json
import sys


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def extract_benchmarks(report, path):
    """Return {name: entry} for the aggregate-free benchmark entries."""
    out = {}
    for entry in report.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) from --benchmark_repetitions.
        if entry.get("run_type") == "aggregate":
            continue
        name = entry.get("name")
        if name and "cpu_time" in entry:
            out[name] = entry
    if not out:
        print(f"error: no benchmark entries in {path}", file=sys.stderr)
        sys.exit(2)
    return out


def check_benchmarks(baseline, current, threshold):
    common = sorted(set(baseline) & set(current))
    if not common:
        print("error: baseline and current share no benchmark names",
              file=sys.stderr)
        sys.exit(2)

    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))
    if only_baseline:
        print(f"note: {len(only_baseline)} benchmark(s) only in baseline "
              f"(skipped): {', '.join(only_baseline[:5])}...")
    if only_current:
        print(f"note: {len(only_current)} new benchmark(s) without a "
              f"baseline (skipped): {', '.join(only_current[:5])}...")

    regressions = []
    print(f"comparing {len(common)} benchmark(s), threshold "
          f"+{threshold:.0%} cpu_time")
    for name in common:
        base_cpu = baseline[name]["cpu_time"]
        cur_cpu = current[name]["cpu_time"]
        if base_cpu <= 0:
            continue
        ratio = cur_cpu / base_cpu
        flag = ""
        if ratio > 1.0 + threshold:
            regressions.append((name, ratio))
            flag = "  << REGRESSION"
        print(f"  {name}: {base_cpu:.1f} -> {cur_cpu:.1f} "
              f"{baseline[name].get('time_unit', 'ns')} "
              f"({ratio:.2f}x baseline){flag}")
    return regressions


def check_percentiles(base_report, cur_report, keys, threshold, abs_floor_ms):
    base = base_report.get("percentiles", {})
    cur = cur_report.get("percentiles", {})
    regressions = []
    print(f"comparing latency percentile(s) {', '.join(keys)}, threshold "
          f"+{threshold:.0%} and +{abs_floor_ms:.3f} ms absolute")
    for key in keys:
        if key not in base or key not in cur:
            print(f"error: percentile key '{key}' missing from "
                  f"{'baseline' if key not in base else 'current'} report",
                  file=sys.stderr)
            sys.exit(2)
        base_ms, cur_ms = float(base[key]), float(cur[key])
        flag = ""
        if base_ms > 0:
            ratio = cur_ms / base_ms
            if ratio > 1.0 + threshold and cur_ms - base_ms > abs_floor_ms:
                regressions.append((key, ratio))
                flag = "  << REGRESSION"
            print(f"  {key}: {base_ms:.4f} -> {cur_ms:.4f} ms "
                  f"({ratio:.2f}x baseline){flag}")
        else:
            print(f"  {key}: {base_ms:.4f} -> {cur_ms:.4f} ms "
                  f"(zero baseline, skipped)")
    # Context only — load-dependent and runner-dependent, never gated.
    for label, field in [("throughput", "throughput_ops_per_s"),
                         ("saturation", "saturation_ops_per_s"),
                         ("hit_rate", "hit_rate")]:
        if field in base_report and field in cur_report:
            print(f"  {label} (context): {base_report[field]:.2f} -> "
                  f"{cur_report[field]:.2f}")
    return regressions


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional growth (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--percentile-keys",
        default="p99_ms",
        help="comma-separated percentile keys gated for serve-load reports "
             "(default: p99_ms)",
    )
    parser.add_argument(
        "--abs-floor-ms",
        type=float,
        default=0.05,
        help="serve-load only: a percentile must also grow by this many ms "
             "to count as a regression (default 0.05)",
    )
    args = parser.parse_args()

    base_report = load_report(args.baseline)
    cur_report = load_report(args.current)

    base_is_load = "percentiles" in base_report
    cur_is_load = "percentiles" in cur_report
    if base_is_load != cur_is_load:
        print("error: baseline and current are different report shapes",
              file=sys.stderr)
        sys.exit(2)

    if base_is_load:
        keys = [k for k in args.percentile_keys.split(",") if k]
        regressions = check_percentiles(base_report, cur_report, keys,
                                        args.threshold, args.abs_floor_ms)
        what = "percentile(s)"
    else:
        regressions = check_benchmarks(
            extract_benchmarks(base_report, args.baseline),
            extract_benchmarks(cur_report, args.current),
            args.threshold)
        what = "benchmark(s)"

    if regressions:
        print(f"\nFAIL: {len(regressions)} {what} regressed more than "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x baseline", file=sys.stderr)
        sys.exit(1)
    print("OK: no regression beyond the threshold")


if __name__ == "__main__":
    main()
