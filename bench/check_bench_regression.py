#!/usr/bin/env python3
"""Compare two google-benchmark JSON reports and fail on perf regressions.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--threshold 0.25]

Benchmarks are matched by name; only names present in BOTH reports are
compared (new benchmarks can land without a baseline, removed ones do not
block). A benchmark regresses when its cpu_time grows by more than
`threshold` (default 25%) relative to the baseline. real_time is reported
for context but never gates: wall clock on shared CI runners is too noisy,
while cpu_time is stable enough to catch real algorithmic regressions.

Exit codes: 0 ok, 1 at least one regression, 2 bad input.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """Return {name: entry} for the aggregate-free benchmark entries."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for entry in report.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) from --benchmark_repetitions.
        if entry.get("run_type") == "aggregate":
            continue
        name = entry.get("name")
        if name and "cpu_time" in entry:
            out[name] = entry
    if not out:
        print(f"error: no benchmark entries in {path}", file=sys.stderr)
        sys.exit(2)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional cpu_time growth (default 0.25 = +25%%)",
    )
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)
    common = sorted(set(baseline) & set(current))
    if not common:
        print("error: baseline and current share no benchmark names",
              file=sys.stderr)
        sys.exit(2)

    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))
    if only_baseline:
        print(f"note: {len(only_baseline)} benchmark(s) only in baseline "
              f"(skipped): {', '.join(only_baseline[:5])}...")
    if only_current:
        print(f"note: {len(only_current)} new benchmark(s) without a "
              f"baseline (skipped): {', '.join(only_current[:5])}...")

    regressions = []
    print(f"comparing {len(common)} benchmark(s), threshold "
          f"+{args.threshold:.0%} cpu_time")
    for name in common:
        base_cpu = baseline[name]["cpu_time"]
        cur_cpu = current[name]["cpu_time"]
        if base_cpu <= 0:
            continue
        ratio = cur_cpu / base_cpu
        flag = ""
        if ratio > 1.0 + args.threshold:
            regressions.append((name, ratio))
            flag = "  << REGRESSION"
        print(f"  {name}: {base_cpu:.1f} -> {cur_cpu:.1f} "
              f"{baseline[name].get('time_unit', 'ns')} "
              f"({ratio:.2f}x baseline){flag}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x baseline cpu_time",
                  file=sys.stderr)
        sys.exit(1)
    print("OK: no benchmark regressed beyond the threshold")


if __name__ == "__main__":
    main()
