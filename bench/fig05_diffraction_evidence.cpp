// Reproduces paper Figure 5: acoustic time-difference-of-arrival between a
// reference microphone (right ear) and a test microphone moved along the
// left cheek matches the DIFFRACTED (along-the-surface) path difference,
// not the straight Euclidean one — audible sound does not penetrate the
// head.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/constants.h"
#include "common/random.h"
#include "dsp/convolution.h"
#include "dsp/correlation.h"
#include "dsp/fractional_delay.h"
#include "dsp/signal_generators.h"
#include "eval/reporting.h"
#include "geometry/head_boundary.h"
#include "geometry/polar.h"

using namespace uniq;

namespace {

constexpr double kFs = 48000.0;

/// Shortest acoustic path from an external speaker to a point ON the head
/// surface: straight if visible, otherwise straight to the tangency point
/// plus the creeping arc (same construction the library uses for ears,
/// specialized to an arbitrary surface index).
double surfacePathLength(const geo::HeadBoundary& head, geo::Vec2 speaker,
                         double surfaceIdx) {
  const geo::Vec2 target = head.pointAt(surfaceIdx);
  // Visible test: outward normal at the nearest sample faces the speaker.
  const auto i = static_cast<std::size_t>(surfaceIdx) % head.size();
  if (head.visibilityValue(speaker, i) < 0.0) {
    return geo::distance(speaker, target);
  }
  const auto tangents = head.tangentsFrom(speaker);
  double best = 1e9;
  for (double u : {tangents.u1, tangents.u2}) {
    const geo::Vec2 t = head.pointAt(u);
    const double viaArc = geo::distance(speaker, t) +
                          head.arcShortest(u, surfaceIdx);
    best = std::min(best, viaArc);
  }
  return best;
}

}  // namespace

int main() {
  eval::printHeader(std::cout, "Figure 5",
                    "delta_t * v from audio matches the diffracted path, "
                    "not the Euclidean one");

  const geo::HeadBoundary head(0.075, 0.103, 0.091, 512);
  // Speaker on the user's right, slightly front.
  const geo::Vec2 speaker = geo::pointFromPolarDeg(-50.0, 0.8);
  // Reference mic at the right ear (surface index 0).
  const double refIdx = 0.0;
  const double refPath = surfacePathLength(head, speaker, refIdx);

  Pcg32 rng(7);
  const auto chirp = dsp::linearChirp(200.0, 18000.0, 1920, kFs);

  // Test mic positions along the front-left cheek: surface parameters from
  // just left of the nose toward the left ear.
  std::vector<double> posCm, measured, dDiff, dEuc;
  const double n = static_cast<double>(head.size());
  for (double frac : {0.30, 0.33, 0.36, 0.40, 0.44, 0.48}) {
    const double idx = frac * n;  // 0.25*n = nose, 0.5*n = left ear
    const geo::Vec2 test = head.pointAt(idx);
    const double testPath = surfacePathLength(head, speaker, idx);

    // Synthesize the two wired-synchronized microphone recordings.
    const std::size_t len = 4096;
    std::vector<double> irRef(len, 0.0), irTest(len, 0.0);
    dsp::addFractionalTap(irRef, refPath / kSpeedOfSound * kFs, 1.0);
    dsp::addFractionalTap(irTest, testPath / kSpeedOfSound * kFs,
                          0.8);  // slightly quieter around the head
    auto recRef = dsp::convolve(chirp, irRef);
    auto recTest = dsp::convolve(chirp, irTest);
    dsp::addNoiseSnrDb(recRef, 30.0, rng);
    dsp::addNoiseSnrDb(recTest, 30.0, rng);

    // TDoA: test lags reference by (testPath - refPath)/v.
    const double lag = dsp::estimateDelayGccPhat(recRef, recTest, 300.0);
    const double deltaD = lag / kFs * kSpeedOfSound;

    // Horizontal distance of the test mic from the nose, for the X axis.
    const geo::Vec2 nose = head.pointAt(0.25 * n);
    posCm.push_back(geo::distance(test, nose) * 100.0);
    measured.push_back((deltaD + refPath) * 100.0);  // total path, cm
    dDiff.push_back(testPath * 100.0);
    dEuc.push_back(geo::distance(speaker, test) * 100.0);
  }

  eval::printSeries(std::cout,
                    "mic position on face (cm from nose) vs path length (cm)",
                    {"mic_pos_cm", "dt*v (cm)", "d_diff (cm)", "d_euc (cm)"},
                    {posCm, measured, dDiff, dEuc});

  double errDiff = 0.0, errEuc = 0.0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    errDiff += std::fabs(measured[i] - dDiff[i]);
    errEuc += std::fabs(measured[i] - dEuc[i]);
  }
  std::cout << "mean |dt*v - d_diff| = " << errDiff / measured.size()
            << " cm,  mean |dt*v - d_euc| = " << errEuc / measured.size()
            << " cm\n";
  std::cout << "(paper: the acoustic measurement follows the diffracted "
               "path, diverging from the Euclidean one as the mic moves "
               "toward the shadowed side)\n";
  return 0;
}
