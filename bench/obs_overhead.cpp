// Observability overhead guard: proves that enabling tracing costs less
// than the budget (default 1%, CI threshold slightly looser for timing
// noise) on a span-dense workload — one span per ~10 microseconds of
// numeric work. That is 10-100x *denser* than the instrumented pipeline
// (its tightest span site, "dsf.objective", wraps hundreds of
// microseconds to milliseconds of work), so passing here bounds the
// pipeline's tracing overhead well below the printed ratio.
//
// Methodology: traced and untraced trials are interleaved (so frequency
// scaling and cache state hit both alike) and each configuration is scored
// by its *minimum* trial time, the standard way to reject scheduler noise
// on a shared machine. Exit status is the CI contract: 0 when the ratio is
// under the threshold (UNIQ_OBS_OVERHEAD_MAX, default 1.05), 1 otherwise.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/scrape.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace {

// A few microseconds of plain numeric work: the per-span payload.
double workloadUnit(std::vector<double>& buf) {
  double acc = 0.0;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = buf[i] * 0.9999 + 1e-7 * static_cast<double>(i);
    acc += buf[i];
  }
  return acc;
}

volatile double gSink = 0.0;

double trialSeconds(bool traced, std::size_t iters, std::vector<double>& buf) {
  uniq::obs::setTraceEnabled(traced);
  uniq::obs::clearTrace();
  const auto t0 = std::chrono::steady_clock::now();
  double acc = 0.0;
  for (std::size_t i = 0; i < iters; ++i) {
    UNIQ_SPAN("obs.overhead.unit");
    acc += workloadUnit(buf);
  }
  const auto t1 = std::chrono::steady_clock::now();
  gSink = acc;
  uniq::obs::clearTrace();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  constexpr std::size_t kUnitSize = 16384;  // ~10 microseconds per unit
  constexpr std::size_t kIters = 2000;
  constexpr int kTrials = 7;

  double maxRatio = 1.05;
  if (const char* env = std::getenv("UNIQ_OBS_OVERHEAD_MAX")) {
    const double parsed = std::atof(env);
    if (parsed > 1.0) maxRatio = parsed;
  }

  std::vector<double> buf(kUnitSize, 1.0);
  // Warm up caches and the trace buffers before timing anything.
  trialSeconds(true, kIters / 4, buf);
  trialSeconds(false, kIters / 4, buf);

  double minOff = 1e300, minOn = 1e300;
  for (int t = 0; t < kTrials; ++t) {
    const double off = trialSeconds(false, kIters, buf);
    const double on = trialSeconds(true, kIters, buf);
    if (off < minOff) minOff = off;
    if (on < minOn) minOn = on;
  }
  uniq::obs::setTraceEnabled(true);

  const double ratio = minOn / minOff;
  const double perSpanNs = (minOn - minOff) / static_cast<double>(kIters) * 1e9;
  std::printf("obs overhead: untraced %.3f ms, traced %.3f ms, ratio %.4f "
              "(%+.1f%%), ~%.0f ns/span, budget %.2f\n",
              minOff * 1e3, minOn * 1e3, ratio, (ratio - 1.0) * 100.0,
              perSpanNs > 0 ? perSpanNs : 0.0, maxRatio);
#if !UNIQ_OBSERVABILITY_ENABLED
  std::printf("observability compiled out; spans are no-ops by construction\n");
#endif
  if (ratio > maxRatio) {
    std::printf("FAIL: tracing overhead exceeds budget\n");
    return 1;
  }

  // Phase 2: the same traced workload with the full continuous-telemetry
  // stack live — background sampler on an aggressive 20 ms interval plus a
  // scrape endpoint hammered from a separate polling thread. The scraper
  // runs off the timed thread (scrape latency is not the span hot path);
  // what this bounds is the *interference* cost: registry snapshots, ring
  // maintenance, and socket traffic stealing time from the workload.
  double minTele = 1e300;
  {
    auto& reg = uniq::obs::registry();
    uniq::obs::TelemetrySamplerOptions topts;
    topts.intervalMs = 20;
    uniq::obs::TelemetrySampler sampler(reg, topts);
    sampler.start();
    uniq::obs::ScrapeServer scrape(
        [&reg, &sampler] {
          const uniq::obs::TelemetryWindow window = sampler.latest();
          return uniq::obs::prometheusText(reg.snapshot(), &window, nullptr);
        },
        0);
    std::atomic<bool> stopPolling{false};
    std::thread poller([&scrape, &stopPolling] {
      std::string body;
      while (!stopPolling.load(std::memory_order_relaxed)) {
        uniq::obs::httpGet(scrape.port(), "/metrics", &body);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
    trialSeconds(true, kIters / 4, buf);  // re-warm under telemetry load
    for (int t = 0; t < kTrials; ++t) {
      const double tele = trialSeconds(true, kIters, buf);
      if (tele < minTele) minTele = tele;
    }
    stopPolling.store(true, std::memory_order_relaxed);
    poller.join();
    scrape.stop();
    sampler.stop();
  }
  uniq::obs::setTraceEnabled(true);

  const double teleRatio = minTele / minOff;
  std::printf("obs overhead with telemetry: traced+sampler+scrape %.3f ms, "
              "ratio %.4f (%+.1f%%), budget %.2f\n",
              minTele * 1e3, teleRatio, (teleRatio - 1.0) * 100.0, maxRatio);
  if (teleRatio > maxRatio) {
    std::printf("FAIL: telemetry overhead exceeds budget\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
