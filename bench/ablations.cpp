// Ablation benches for the design choices called out in DESIGN.md:
//  1. near-field model correction (Section 4.2 tap/amplitude adjustment)
//  2. hardware-response compensation (Section 4.6)
//  3. head-parameter prior in sensor fusion
//  4. ray-proximity weighting in the near-far conversion
//  5. frame aggregation in unknown-source AoA
// Each toggle runs the affected slice of the pipeline both ways and prints
// the quality delta.
#include <iostream>

#include <cmath>

#include "common/constants.h"
#include "core/near_far.h"
#include "geometry/diffraction.h"
#include "geometry/polar.h"
#include "eval/experiments.h"
#include "eval/metrics.h"
#include "eval/reporting.h"

using namespace uniq;

namespace {

double farCorrelation(const eval::CalibratedVolunteer& run) {
  const auto series = eval::correlationVsAngle(run, 10.0);
  return 0.5 * (eval::mean(series.uniqLeft) + eval::mean(series.uniqRight));
}

/// Interaural-delay accuracy of the NEAR-field table (microseconds RMS vs
/// the ground-truth geometry). The Section 4.2 model correction acts here;
/// the later near-far stage re-imposes far-field delays of its own, so a
/// far-table metric would mask it.
double nearTableItdErrorUs(const eval::CalibratedVolunteer& run) {
  head::HrtfDatabase::Options dbOpts;
  const head::HrtfDatabase truthDb(run.volunteer.subject, dbOpts);
  const auto& nearTable = run.personal.table.nearTable();
  const double fs = nearTable.sampleRate;
  double acc = 0.0;
  int n = 0;
  for (int deg = 10; deg <= 170; deg += 10) {
    const geo::Vec2 p = geo::pointFromPolarDeg(static_cast<double>(deg),
                                               nearTable.medianRadiusM);
    const double trueItd =
        (geo::nearFieldPath(truthDb.boundary(), p, geo::Ear::kLeft).length -
         geo::nearFieldPath(truthDb.boundary(), p, geo::Ear::kRight).length) /
        kSpeedOfSound;
    const double tableItd =
        (nearTable.tapLeftSamples[deg] - nearTable.tapRightSamples[deg]) / fs;
    acc += (tableItd - trueItd) * (tableItd - trueItd);
    ++n;
  }
  return std::sqrt(acc / n) * 1e6;
}

double unknownAoaFb(const eval::CalibratedVolunteer& run,
                    const core::AoaEstimatorOptions& aoaOpts) {
  head::HrtfDatabase::Options dbOpts;
  const head::HrtfDatabase truthDb(run.volunteer.subject, dbOpts);
  const sim::HardwareModel hardware;
  const sim::RoomModel room;
  sim::BinauralRecorder::Options recOpts;
  recOpts.snrDb = 25.0;
  const sim::BinauralRecorder recorder(truthDb, hardware, room, recOpts);
  const core::AoaEstimator estimator(run.personal.table.farTable(), aoaOpts);
  Pcg32 rng(77);
  std::size_t correct = 0, total = 0;
  for (double truth = 10.0; truth <= 170.0; truth += 10.0) {
    Pcg32 sigRng = rng.fork(static_cast<std::uint64_t>(truth));
    const auto sig =
        eval::makeSignal(eval::SignalKind::kMusic, 24000, 48000.0, sigRng);
    const auto rec = recorder.recordFarField(truth, sig, sigRng, false);
    const auto est = estimator.estimateUnknown(rec.left, rec.right);
    if ((truth <= 90.0) == (est.angleDeg <= 90.0)) ++correct;
    ++total;
  }
  return static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace

int main() {
  eval::printHeader(std::cout, "Ablations",
                    "design-choice toggles and their quality impact "
                    "(volunteer 1)");

  eval::ExperimentConfig base;
  const auto population = eval::makeStudyPopulation(base);
  const auto& volunteer = population[0];

  {
    std::cout << "\n[1] near-field model correction (Section 4.2)\n";
    auto on = base;
    on.pipeline.nearField.modelCorrection = true;
    auto off = base;
    off.pipeline.nearField.modelCorrection = false;
    const auto runOn = eval::calibrate(volunteer, on);
    const auto runOff = eval::calibrate(volunteer, off);
    std::cout << "    near-table ITD RMS error with correction:    "
              << nearTableItdErrorUs(runOn) << " us (far corr "
              << farCorrelation(runOn) << ")\n";
    std::cout << "    near-table ITD RMS error without correction: "
              << nearTableItdErrorUs(runOff) << " us (far corr "
              << farCorrelation(runOff) << ")\n";
  }

  {
    std::cout << "\n[2] hardware-response compensation (Section 4.6)\n";
    auto on = base;
    auto off = base;
    off.pipeline.extractor.compensateHardware = false;
    const auto runOn = eval::calibrate(volunteer, on);
    const auto runOff = eval::calibrate(volunteer, off);
    std::cout << "    far-field corr with compensation:    "
              << farCorrelation(runOn) << "\n";
    std::cout << "    far-field corr without compensation: "
              << farCorrelation(runOff) << "\n";
  }

  {
    std::cout << "\n[3] anthropometric prior in sensor fusion\n";
    auto on = base;
    auto off = base;
    off.pipeline.fusion.priorWeight = 0.0;
    const auto runOn = eval::calibrate(volunteer, on);
    const auto runOff = eval::calibrate(volunteer, off);
    const auto& truth = volunteer.subject.headParams;
    std::cout << "    max |E - truth| with prior:    "
              << head::maxAxisError(runOn.personal.headParams, truth) * 1000
              << " mm (corr " << farCorrelation(runOn) << ")\n";
    std::cout << "    max |E - truth| without prior: "
              << head::maxAxisError(runOff.personal.headParams, truth) * 1000
              << " mm (corr " << farCorrelation(runOff) << ")\n";
  }

  {
    std::cout << "\n[4] ray-proximity weighting in near-far conversion\n";
    auto sharp = base;
    sharp.pipeline.nearFar.raySigmaDivisor = 5.0;
    auto flat = base;
    flat.pipeline.nearFar.raySigmaDivisor = 1.0;  // ~plain arc average
    const auto runSharp = eval::calibrate(volunteer, sharp);
    const auto runFlat = eval::calibrate(volunteer, flat);
    std::cout << "    corr, weighted toward the ear ray: "
              << farCorrelation(runSharp) << "\n";
    std::cout << "    corr, plain arc average:           "
              << farCorrelation(runFlat) << "\n";
  }

  {
    std::cout << "\n[5] frame aggregation in unknown-source AoA (music, "
                 "volunteers 1-3)\n";
    core::AoaEstimatorOptions on;
    on.frameAggregation = true;
    core::AoaEstimatorOptions off;
    off.frameAggregation = false;
    double accOn = 0.0, accOff = 0.0;
    for (int v = 0; v < 3; ++v) {
      const auto run = eval::calibrate(population[v], base);
      accOn += unknownAoaFb(run, on);
      accOff += unknownAoaFb(run, off);
    }
    std::cout << "    front/back accuracy with frames:    "
              << 100.0 * accOn / 3 << "%\n";
    std::cout << "    front/back accuracy single-spectrum: "
              << 100.0 * accOff / 3 << "%\n";
  }

  return 0;
}
