// Reproduces paper Figure 9: the estimated binaural channel impulse
// response has multiple taps (face reflections, pinna echoes); the FIRST
// tap at each ear is the diffraction path and is the one that ties phone
// position to head geometry.
#include <iostream>
#include <vector>

#include "common/constants.h"
#include "core/channel_extractor.h"
#include "dsp/peak_picking.h"
#include "dsp/signal_generators.h"
#include "eval/experiments.h"
#include "eval/reporting.h"
#include "geometry/diffraction.h"
#include "geometry/polar.h"
#include "sim/recorder.h"

using namespace uniq;

int main() {
  eval::printHeader(std::cout, "Figure 9",
                    "binaural channel impulse response; first tap = "
                    "diffraction path");

  const auto population = head::makePopulation(1, 2021);
  head::HrtfDatabase::Options dbOpts;
  const head::HrtfDatabase db(population[0], dbOpts);
  const sim::HardwareModel hardware;
  const sim::RoomModel room;
  sim::BinauralRecorder::Options recOpts;
  recOpts.snrDb = 30.0;
  const sim::BinauralRecorder recorder(db, hardware, room, recOpts);

  const double theta = 60.0;
  const double radius = 0.35;
  const geo::Vec2 pos = geo::pointFromPolarDeg(theta, radius);
  Pcg32 rng(3);
  const auto chirp = dsp::linearChirp(100.0, 20000.0, 960, 48000.0);
  const auto rec = recorder.recordNearField(pos, chirp, rng);

  Pcg32 hwRng(4);
  const core::ChannelExtractor extractor(
      hardware.estimateResponse(35.0, hwRng), 48000.0);
  const auto channel = extractor.extract(rec.left, rec.right, chirp);

  // Print the window around the taps.
  const std::size_t from = 30, to = 130;
  std::vector<double> sampleIdx, left, right;
  for (std::size_t i = from; i < to; ++i) {
    sampleIdx.push_back(static_cast<double>(i));
    left.push_back(channel.left[i]);
    right.push_back(channel.right[i]);
  }
  eval::printSeries(std::cout, "channel impulse response (phone at 60 deg)",
                    {"sample", "left", "right"}, {sampleIdx, left, right});

  const auto tapsL = dsp::findTaps(channel.left);
  const auto tapsR = dsp::findTaps(channel.right);
  std::cout << "left-ear taps: " << tapsL.size()
            << ", right-ear taps: " << tapsR.size() << "\n";
  if (channel.firstTapLeftSec && channel.firstTapRightSec) {
    const auto pathL = geo::nearFieldPath(db.boundary(), pos, geo::Ear::kLeft);
    const auto pathR =
        geo::nearFieldPath(db.boundary(), pos, geo::Ear::kRight);
    std::cout << "first tap L = " << *channel.firstTapLeftSec * 1e3
              << " ms (diffraction model predicts "
              << pathL.length / kSpeedOfSound * 1e3 << " ms)\n";
    std::cout << "first tap R = " << *channel.firstTapRightSec * 1e3
              << " ms (diffraction model predicts "
              << pathR.length / kSpeedOfSound * 1e3 << " ms)\n";
    std::cout << "relative first-tap delay = "
              << (*channel.firstTapRightSec - *channel.firstTapLeftSec) * 1e3
              << " ms — the quantity Eq. 1 ties to (a, b, c, P)\n";
  }
  return 0;
}
