// Performance micro-benchmarks (google-benchmark) for the hot paths of the
// UNIQ pipeline: FFT, convolution, deconvolution, diffraction path queries,
// localization, the fusion objective, HRIR synthesis, and the observability
// primitives (spans, counters, histograms) themselves.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "common/constants.h"
#include "common/thread_pool.h"
#include "core/localizer.h"
#include "core/sensor_fusion.h"
#include "core/table_io.h"
#include "dsp/convolution.h"
#include "dsp/deconvolution.h"
#include "dsp/fft.h"
#include "dsp/fft_plan.h"
#include "dsp/signal_generators.h"
#include "geometry/diffraction.h"
#include "geometry/polar.h"
#include "head/hrtf_database.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "serve/batch_aoa.h"
#include "serve/calibration_service.h"
#include "serve/table_cache.h"
#include "sim/measurement_session.h"
#include "stream/streaming_session.h"

using namespace uniq;

namespace {

void BM_FftPow2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Pcg32 rng(1);
  std::vector<dsp::Complex> data(n);
  for (auto& v : data) v = dsp::Complex(rng.gaussian(), rng.gaussian());
  for (auto _ : state) {
    // The out-of-place API every call site uses; the reference below pays
    // the same input copy via `auto copy = data`.
    auto out = dsp::fft(data, false);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FftPow2)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

// Seed implementation (twiddles recomputed every call): the baseline the
// plan cache is measured against. Same input, same transform.
void BM_FftPow2Reference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Pcg32 rng(1);
  std::vector<dsp::Complex> data(n);
  for (auto& v : data) v = dsp::Complex(rng.gaussian(), rng.gaussian());
  for (auto _ : state) {
    auto copy = data;
    dsp::fftPow2ReferenceInPlace(copy, false);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FftPow2Reference)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

// Real-input fast path: one half-length complex FFT instead of a
// full-length one on a zero-imag signal.
void BM_Rfft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Pcg32 rng(8);
  const auto signal = dsp::whiteNoise(n, rng);
  for (auto _ : state) {
    auto half = dsp::rfft(signal);
    benchmark::DoNotOptimize(half);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Rfft)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_FftBluestein(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Pcg32 rng(2);
  std::vector<dsp::Complex> data(n);
  for (auto& v : data) v = dsp::Complex(rng.gaussian(), 0);
  for (auto _ : state) {
    auto out = dsp::fft(data, false);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FftBluestein)->Arg(1000)->Arg(4097);

void BM_ConvolveFft(benchmark::State& state) {
  Pcg32 rng(3);
  const auto signal = dsp::whiteNoise(static_cast<std::size_t>(state.range(0)),
                                      rng);
  const auto kernel = dsp::whiteNoise(256, rng);
  for (auto _ : state) {
    auto out = dsp::convolveFft(signal, kernel);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ConvolveFft)->Arg(4096)->Arg(24000);

// Direct vs FFT convolution for small kernels on a 4096-sample signal.
// The crossover of these two curves justifies kDirectConvolveCutoff in
// dsp/convolution.h; re-run after changing either path.
void BM_ConvolveDirectSmall(benchmark::State& state) {
  Pcg32 rng(9);
  const auto signal = dsp::whiteNoise(4096, rng);
  const auto kernel =
      dsp::whiteNoise(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    auto out = dsp::convolveDirect(signal, kernel);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ConvolveDirectSmall)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_ConvolveFftSmall(benchmark::State& state) {
  Pcg32 rng(9);
  const auto signal = dsp::whiteNoise(4096, rng);
  const auto kernel =
      dsp::whiteNoise(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    auto out = dsp::convolveFft(signal, kernel);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ConvolveFftSmall)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_Deconvolve(benchmark::State& state) {
  Pcg32 rng(4);
  const auto chirp = dsp::linearChirp(100.0, 20000.0, 960, 48000.0);
  std::vector<double> channel(128, 0.0);
  channel[30] = 1.0;
  channel[50] = 0.4;
  auto received = dsp::convolve(chirp, channel);
  dsp::addNoiseSnrDb(received, 25.0, rng);
  for (auto _ : state) {
    auto h = dsp::deconvolve(received, chirp);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_Deconvolve);

void BM_NearFieldPath(benchmark::State& state) {
  const geo::HeadBoundary head(0.075, 0.103, 0.091,
                               static_cast<std::size_t>(state.range(0)));
  const geo::Vec2 source = geo::pointFromPolarDeg(40.0, 0.35);
  for (auto _ : state) {
    auto path = geo::nearFieldPath(head, source, geo::Ear::kRight);
    benchmark::DoNotOptimize(path);
  }
}
BENCHMARK(BM_NearFieldPath)->Arg(128)->Arg(256)->Arg(512);

void BM_LocalizerLocate(benchmark::State& state) {
  const geo::HeadBoundary head(0.075, 0.103, 0.091, 128);
  const geo::Vec2 source = geo::pointFromPolarDeg(55.0, 0.35);
  const double tL =
      geo::nearFieldPath(head, source, geo::Ear::kLeft).length /
      kSpeedOfSound;
  const double tR =
      geo::nearFieldPath(head, source, geo::Ear::kRight).length /
      kSpeedOfSound;
  const core::Localizer localizer(head);
  for (auto _ : state) {
    auto fix = localizer.locate(tL, tR, 55.0);
    benchmark::DoNotOptimize(fix);
  }
}
BENCHMARK(BM_LocalizerLocate);

void BM_FusionObjective(benchmark::State& state) {
  const head::HeadParameters truth{0.071, 0.104, 0.089};
  const geo::HeadBoundary head(truth.a, truth.b, truth.c, 256);
  std::vector<core::FusionMeasurement> measurements;
  for (int i = 0; i < 36; ++i) {
    const double theta = 5.0 + 170.0 * i / 35.0;
    const geo::Vec2 pos = geo::pointFromPolarDeg(theta, 0.35);
    core::FusionMeasurement m;
    m.imuAngleDeg = theta;
    m.delayLeftSec =
        geo::nearFieldPath(head, pos, geo::Ear::kLeft).length / kSpeedOfSound;
    m.delayRightSec =
        geo::nearFieldPath(head, pos, geo::Ear::kRight).length /
        kSpeedOfSound;
    measurements.push_back(m);
  }
  core::SensorFusionOptions opts;
  opts.numThreads = static_cast<std::size_t>(state.range(0));
  const core::SensorFusion fusion(opts);
  for (auto _ : state) {
    const double cost = fusion.objective(truth, measurements);
    benchmark::DoNotOptimize(cost);
  }
}
// Arg = thread cap (1 = serial baseline, 0 = full global pool). Outputs are
// bitwise identical; only the wall clock moves.
BENCHMARK(BM_FusionObjective)->Arg(1)->Arg(0);

void BM_GroundTruthHrir(benchmark::State& state) {
  head::Subject s;
  s.headParams = {0.075, 0.103, 0.091};
  s.pinnaSeed = 5;
  const head::HrtfDatabase db(s);
  for (auto _ : state) {
    auto hrir = db.farField(60.0);
    benchmark::DoNotOptimize(hrir);
  }
}
BENCHMARK(BM_GroundTruthHrir);

void BM_RenderBinaural(benchmark::State& state) {
  head::Subject s;
  s.headParams = {0.075, 0.103, 0.091};
  s.pinnaSeed = 6;
  const head::HrtfDatabase db(s);
  const auto hrir = db.farField(45.0);
  Pcg32 rng(7);
  const auto mono = dsp::whiteNoise(48000, rng, 0.2);
  for (auto _ : state) {
    auto out = head::renderBinaural(hrir, mono);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 48000);
}
BENCHMARK(BM_RenderBinaural);

// Cost of one recorded span when tracing is runtime-enabled. The trace is
// drained every 64k spans so the per-thread buffers stay bounded; the clear
// amortizes to noise.
void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::setTraceEnabled(true);
  obs::clearTrace();
  std::uint64_t i = 0;
  for (auto _ : state) {
    UNIQ_SPAN("bench.span");
    if ((++i & 0xFFFF) == 0) obs::clearTrace();
  }
  obs::clearTrace();
}
BENCHMARK(BM_ObsSpanEnabled);

// Cost of a span when tracing is runtime-disabled: the ceiling on what
// instrumented-but-quiet code pays (compile-time OFF pays exactly zero).
void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::setTraceEnabled(false);
  for (auto _ : state) {
    UNIQ_SPAN("bench.span");
    benchmark::ClobberMemory();
  }
  obs::setTraceEnabled(true);
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsCounterInc(benchmark::State& state) {
  static obs::Counter& c = obs::registry().counter("bench.counter");
  for (auto _ : state) c.inc();
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramObserve(benchmark::State& state) {
  static obs::Histogram& h = obs::registry().histogram(
      "bench.histogram", obs::HistogramOptions{1e-6, 2.0, 32});
  double v = 1e-6;
  for (auto _ : state) {
    h.observe(v);
    v = v < 1.0 ? v * 1.01 : 1e-6;
  }
}
BENCHMARK(BM_ObsHistogramObserve);

// --- Serving layer ------------------------------------------------------

/// Shared fixture state for the serve benchmarks: a small fleet of distinct
/// captures, simulated once. 8 stops keeps one calibration around a second
/// so the throughput benchmarks finish in sane time while still running the
/// full pipeline.
const std::vector<std::shared_ptr<const sim::CalibrationCapture>>&
serveCaptures() {
  static const auto captures = [] {
    std::vector<std::shared_ptr<const sim::CalibrationCapture>> out;
    const sim::MeasurementSession session;
    auto gesture = sim::defaultGesture();
    gesture.stops = 8;
    const auto subjects = head::makePopulation(4, 1234);
    for (const auto& subject : subjects)
      out.push_back(std::make_shared<const sim::CalibrationCapture>(
          session.run(subject, gesture)));
    return out;
  }();
  return captures;
}

// Calibration throughput through the concurrent service (submit + drain).
// Compare against BM_ServeSerialCalibration: on an N-core host the ratio is
// the service's speedup; on a single core it measures scheduling overhead.
void BM_ServeBatchCalibration(benchmark::State& state) {
  const auto& captures = serveCaptures();
  const auto users = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    serve::CalibrationServiceOptions opts;
    opts.maxQueued = users;
    opts.cacheCapacity = users;
    serve::CalibrationService service(opts);
    for (std::size_t i = 0; i < users; ++i)
      service.submit("user" + std::to_string(i), captures[i % captures.size()]);
    auto results = service.drain();
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(users));
}
BENCHMARK(BM_ServeBatchCalibration)->Arg(4)->Unit(benchmark::kMillisecond);

// The pre-service baseline: the same captures, one pipeline run at a time.
void BM_ServeSerialCalibration(benchmark::State& state) {
  const auto& captures = serveCaptures();
  const auto users = static_cast<std::size_t>(state.range(0));
  const core::CalibrationPipeline pipeline;
  for (auto _ : state) {
    for (std::size_t i = 0; i < users; ++i) {
      auto personal = pipeline.run(*captures[i % captures.size()]);
      benchmark::DoNotOptimize(personal);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(users));
}
BENCHMARK(BM_ServeSerialCalibration)->Arg(4)->Unit(benchmark::kMillisecond);

// End-to-end streaming calibration: push every stop through the dataflow
// graph (extract node -> fuse node with warm-started incremental solves),
// then finalize. Compare against BM_ServeSerialCalibration at Arg(1): the
// delta is the price of incremental solving plus queue hops, paid to get
// live coverage/convergence feedback during the sweep.
void BM_StreamingSession(benchmark::State& state) {
  const auto& captures = serveCaptures();
  const auto& capture = *captures.front();
  for (auto _ : state) {
    stream::StreamingSession session(
        stream::CaptureHeader::fromCapture(capture));
    for (std::size_t i = 0; i < capture.stops.size(); ++i)
      session.push(capture.stops[i], i);
    auto result = session.finalize();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(capture.stops.size()));
}
BENCHMARK(BM_StreamingSession)->Unit(benchmark::kMillisecond);

// Batched known-source AoA against cached tables: the steady-state query
// path (template-spectrum cache + FFT plan cache warm after iteration one).
void BM_ServeBatchAoa(benchmark::State& state) {
  const auto queries = static_cast<std::size_t>(state.range(0));
  static serve::TableCache cache(4);
  const auto table = serve::TableCache::populationAverageTable(48000.0);
  const double fs = table->sampleRate();
  for (std::size_t u = 0; u < 4; ++u)
    cache.put("user" + std::to_string(u), table);
  const auto chirp = dsp::linearChirp(
      200.0, 16000.0, static_cast<std::size_t>(0.05 * fs), fs);
  std::vector<serve::AoaQuery> batch(queries);
  for (std::size_t q = 0; q < queries; ++q) {
    const auto rendered =
        table->renderFar(30.0 + static_cast<double>(q * 17 % 120), chirp);
    batch[q].userId = "user" + std::to_string(q % 4);
    batch[q].left = rendered.left;
    batch[q].right = rendered.right;
    batch[q].source = chirp;
  }
  const serve::BatchAoaEngine engine(cache);
  for (auto _ : state) {
    auto answers = engine.run(batch);
    benchmark::DoNotOptimize(answers);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries));
}
BENCHMARK(BM_ServeBatchAoa)->Arg(16)->Unit(benchmark::kMillisecond);

// Hit-path latency of the LRU table cache under a realistic key mix.
void BM_TableCacheGet(benchmark::State& state) {
  serve::TableCache cache(64);
  const auto table = serve::TableCache::populationAverageTable(48000.0);
  for (std::size_t u = 0; u < 64; ++u)
    cache.put("user" + std::to_string(u), table);
  std::size_t u = 0;
  for (auto _ : state) {
    auto hit = cache.get("user" + std::to_string(u));
    benchmark::DoNotOptimize(hit);
    u = (u + 7) % 64;
  }
}
BENCHMARK(BM_TableCacheGet);

// Same hit-path, sharded. Arg = shard count; Arg(1) is the legacy single
// mutex. Single-threaded the sharded map should cost the same few ns per
// get (one extra hash-and-mask); under contention the shards are what keep
// lookups from serializing, which BM_TableCacheGetContended measures.
void BM_TableCacheGetSharded(benchmark::State& state) {
  serve::TableCacheOptions opts;
  opts.capacity = 64;
  opts.shards = static_cast<std::size_t>(state.range(0));
  serve::TableCache cache(opts);
  const auto table = serve::TableCache::populationAverageTable(48000.0);
  for (std::size_t u = 0; u < 64; ++u)
    cache.put("user" + std::to_string(u), table);
  std::size_t u = 0;
  for (auto _ : state) {
    auto hit = cache.get("user" + std::to_string(u));
    benchmark::DoNotOptimize(hit);
    u = (u + 7) % 64;
  }
}
BENCHMARK(BM_TableCacheGetSharded)->Arg(1)->Arg(4);

// Hit-path under thread contention: every benchmark thread hammers the same
// cache. Run with Threads(2/4); the per-op time at Arg(1) vs Arg(4) is the
// lock-convoy cost sharding removes.
void BM_TableCacheGetContended(benchmark::State& state) {
  static serve::TableCache* cache = nullptr;
  if (state.thread_index() == 0) {
    serve::TableCacheOptions opts;
    opts.capacity = 64;
    opts.shards = static_cast<std::size_t>(state.range(0));
    cache = new serve::TableCache(opts);
    const auto table = serve::TableCache::populationAverageTable(48000.0);
    for (std::size_t u = 0; u < 64; ++u)
      cache->put("user" + std::to_string(u), table);
  }
  std::size_t u = static_cast<std::size_t>(state.thread_index()) * 13;
  for (auto _ : state) {
    auto hit = cache->get("user" + std::to_string(u % 64));
    benchmark::DoNotOptimize(hit);
    u += 7;
  }
  if (state.thread_index() == 0) {
    delete cache;
    cache = nullptr;
  }
}
BENCHMARK(BM_TableCacheGetContended)->Arg(1)->Arg(4)->Threads(2);

// --- Table serialization ------------------------------------------------

/// One personalized table shared by the serialization benchmarks, plus its
/// two on-disk encodings in the build's temp dir (written once).
const core::HrtfTable& benchTable() {
  static const auto table = [] {
    const core::CalibrationPipeline pipeline;
    return pipeline.run(*serveCaptures().front()).table;
  }();
  return table;
}

std::string benchTablePath(const char* suffix) {
  const auto dir = std::filesystem::temp_directory_path() / "uniq_bench_io";
  std::filesystem::create_directories(dir);
  return (dir / (std::string("table") + suffix)).string();
}

void BM_TableSaveFloat64(benchmark::State& state) {
  const auto& table = benchTable();
  const auto path = benchTablePath(".uniq");
  for (auto _ : state) core::saveHrtfTable(path, table);
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(std::filesystem::file_size(path)));
}
BENCHMARK(BM_TableSaveFloat64)->Unit(benchmark::kMillisecond);

void BM_TableSaveQuantized(benchmark::State& state) {
  const auto& table = benchTable();
  const auto path = benchTablePath(".uniqq");
  for (auto _ : state) core::saveHrtfTableQuantized(path, table);
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(std::filesystem::file_size(path)));
}
BENCHMARK(BM_TableSaveQuantized)->Unit(benchmark::kMillisecond);

void BM_TableLoadFloat64(benchmark::State& state) {
  const auto path = benchTablePath(".uniq");
  core::saveHrtfTable(path, benchTable());
  for (auto _ : state) {
    auto table = core::loadHrtfTable(path);
    benchmark::DoNotOptimize(table);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(std::filesystem::file_size(path)));
}
BENCHMARK(BM_TableLoadFloat64)->Unit(benchmark::kMillisecond);

// The serving disk tier's read path: quantized file through the mmap view.
void BM_TableLoadQuantizedMmap(benchmark::State& state) {
  const auto path = benchTablePath(".uniqq");
  core::saveHrtfTableQuantized(path, benchTable());
  for (auto _ : state) {
    auto table = core::loadHrtfTable(path);
    benchmark::DoNotOptimize(table);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(std::filesystem::file_size(path)));
}
BENCHMARK(BM_TableLoadQuantizedMmap)->Unit(benchmark::kMillisecond);

// Same decode through a buffered stream: the delta against the mmap path is
// the read-buffer copy the zero-copy view avoids.
void BM_TableLoadQuantizedBuffered(benchmark::State& state) {
  const auto path = benchTablePath(".uniqq");
  core::saveHrtfTableQuantized(path, benchTable());
  for (auto _ : state) {
    auto table = core::loadHrtfTableBuffered(path);
    benchmark::DoNotOptimize(table);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(std::filesystem::file_size(path)));
}
BENCHMARK(BM_TableLoadQuantizedBuffered)->Unit(benchmark::kMillisecond);

}  // namespace

// Hand-rolled main (instead of BENCHMARK_MAIN) so a run can be asked for
// its metrics JSON via the UNIQ_METRICS_OUT environment variable.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  obs::exportMetricsIfRequested();
  return 0;
}
