// Degraded-capture sweep (robustness companion to the paper's accuracy
// figures): for every fault class in the injector taxonomy and a range of
// severities, corrupt a clean calibration capture, run the full pipeline,
// and report the final status, how many stops the quality gates rejected,
// and the head-parameter error relative to the clean run. The printed
// series is the plot behind docs/ROBUSTNESS.md's "graceful degradation"
// claim: error should grow smoothly with severity while the status moves
// ok -> degraded, with failed reserved for captures that are truly gone.
#include <iostream>
#include <vector>

#include "core/pipeline.h"
#include "eval/reporting.h"
#include "head/subject.h"
#include "obs/report.h"
#include "sim/fault_injector.h"
#include "sim/measurement_session.h"
#include "sim/trajectory.h"

using namespace uniq;

int main() {
  eval::printHeader(std::cout, "Fault sweep",
                    "pipeline status and head error vs fault severity, "
                    "per fault class");

  const auto subject = head::makePopulation(1, 4242)[0];
  const sim::MeasurementSession session;
  const auto clean = session.run(subject, sim::defaultGesture());
  const core::CalibrationPipeline pipeline;

  const auto cleanRun = pipeline.run(clean);
  const double cleanErrMm =
      head::maxAxisError(cleanRun.headParams, subject.headParams) * 1e3;
  std::cout << "clean: status " << core::pipelineStatusName(cleanRun.status)
            << ", head error " << cleanErrMm << " mm\n\n";

  const std::vector<double> severities{0.25, 0.5, 0.75};
  std::vector<double> kindCol, severityCol, errCol, rejectedCol, statusCol;
  for (const auto kind : sim::allFaultKinds()) {
    std::cout << sim::faultKindName(kind) << ":\n";
    for (double severity : severities) {
      sim::FaultInjector injector(0xD15EA5E);
      injector.add(kind, severity);
      sim::FaultInjectionLog log;
      const auto corrupted = injector.apply(clean, &log);

      obs::RunReport report;
      const auto run = pipeline.run(corrupted, &report);
      const double errMm =
          head::maxAxisError(run.headParams, subject.headParams) * 1e3;

      std::cout << "  severity " << severity << ": status "
                << core::pipelineStatusName(run.status) << ", corrupted "
                << log.corruptedStops().size() << " stop(s), rejected "
                << run.fusion.rejectedSourceIndices.size()
                << ", head error " << errMm << " mm, "
                << run.diagnostics.size() << " diagnostic(s)\n";

      kindCol.push_back(static_cast<double>(kind));
      severityCol.push_back(severity);
      errCol.push_back(errMm);
      rejectedCol.push_back(
          static_cast<double>(run.fusion.rejectedSourceIndices.size()));
      statusCol.push_back(static_cast<double>(run.status));
    }
  }

  std::cout << "\n";
  eval::printSeries(
      std::cout,
      "head error and stop rejection vs fault severity "
      "(status: 0 = ok, 1 = degraded, 2 = failed)",
      {"fault_kind", "severity", "head_err_mm", "rejected_stops", "status"},
      {kindCol, severityCol, errCol, rejectedCol, statusCol});
  obs::exportMetricsIfRequested();
  return 0;
}
