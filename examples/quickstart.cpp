// Quickstart: calibrate a personal HRTF with UNIQ and render a directional
// sound through it.
//
// In a real deployment the three inputs come from the user's phone and
// earbuds (paper Section 1): the chirps the phone played, the in-ear
// recordings, and the gyroscope log. Here the measurement session is
// simulated for a synthetic subject, but everything downstream of the
// capture is exactly what would run on real data.
#include <iostream>

#include "core/pipeline.h"
#include "dsp/signal_generators.h"
#include "eval/metrics.h"
#include "head/subject.h"
#include "sim/measurement_session.h"

using namespace uniq;

int main() {
  // 1. A user. (Substitute for a human volunteer: random anatomy.)
  const auto subject = head::makePopulation(1, /*seed=*/42)[0];
  std::cout << "subject: " << subject.name << "  true head (a,b,c) = ("
            << subject.headParams.a << ", " << subject.headParams.b << ", "
            << subject.headParams.c << ") m\n";

  // 2. The at-home measurement sweep: sit down, wear the earbuds, move the
  //    phone around the head (a couple of minutes in the paper's study).
  const sim::MeasurementSession session;
  const auto capture = session.run(subject, sim::defaultGesture());
  std::cout << "captured " << capture.stops.size()
            << " phone stops at " << capture.sampleRate << " Hz\n";

  // 3. The UNIQ pipeline: channel extraction -> diffraction-aware sensor
  //    fusion -> near-field interpolation -> near-far conversion.
  const core::CalibrationPipeline pipeline;
  const auto personal = pipeline.run(capture);
  std::cout << "estimated head (a,b,c) = (" << personal.headParams.a << ", "
            << personal.headParams.b << ", " << personal.headParams.c
            << ") m\n";
  std::cout << "gesture check: "
            << (personal.gestureReport.ok ? "ok" : "redo requested") << "\n";
  for (const auto& issue : personal.gestureReport.issues)
    std::cout << "  note: " << issue << "\n";

  // 4. How personal is it? Compare against this subject's ground truth and
  //    against the global template everyone else ships.
  head::HrtfDatabase::Options dbOpts;
  const head::HrtfDatabase truthDb(subject, dbOpts);
  const head::HrtfDatabase globalDb(head::globalTemplateSubject(), dbOpts);
  double personalSim = 0.0, globalSim = 0.0;
  int n = 0;
  for (double ang = 15.0; ang <= 165.0; ang += 30.0) {
    const auto truth = truthDb.farField(ang);
    personalSim +=
        eval::hrirSimilarity(personal.table.farAt(ang), truth);
    globalSim += eval::hrirSimilarity(
        core::farTableFromDatabase(globalDb).at(ang), truth);
    ++n;
  }
  std::cout << "far-field HRIR correlation vs ground truth: personal "
            << personalSim / n << " vs global template " << globalSim / n
            << "\n";

  // 5. Use it: render a "follow me" voice from 30 degrees front-left.
  Pcg32 rng(7);
  const auto voice = dsp::speechLike(48000, capture.sampleRate, rng);
  const auto binaural = personal.table.renderFar(30.0, voice);
  std::cout << "rendered " << binaural.left.size()
            << " binaural samples; interaural level difference = "
            << 10.0 * std::log10(head::channelEnergy(binaural.left) /
                                 head::channelEnergy(binaural.right))
            << " dB (positive = left louder, source is front-left)\n";
  std::cout << "done.\n";
  return 0;
}
