// Smart hearing aid (paper Section 4.5): when someone calls the user's
// name, the earbuds estimate the direction the voice came from — so the
// device can beamform toward it, or cue the user. Classical array AoA
// fails on earbuds because the head diffracts and the pinna scatters the
// sound; UNIQ matches the binaural structure against the personal HRTF.
#include <iomanip>
#include <iostream>

#include "common/math_util.h"
#include "core/aoa.h"
#include "core/pipeline.h"
#include "eval/experiments.h"
#include "head/subject.h"
#include "sim/measurement_session.h"
#include "sim/recorder.h"

using namespace uniq;

int main() {
  std::cout << "calibrating hearing-aid wearer...\n";
  const auto subject = head::makePopulation(1, 99)[0];
  const sim::MeasurementSession session;
  const auto capture = session.run(subject, sim::defaultGesture());
  const core::CalibrationPipeline pipeline;
  const auto personal = pipeline.run(capture);
  const double fs = capture.sampleRate;

  // Alice calls from a few directions in a reverberant room; her voice is
  // unknown to the device.
  head::HrtfDatabase::Options dbOpts;
  dbOpts.sampleRate = fs;
  const head::HrtfDatabase world(subject, dbOpts);
  const sim::HardwareModel hardware;
  const sim::RoomModel room;
  sim::BinauralRecorder::Options recOpts;
  recOpts.snrDb = 22.0;
  const sim::BinauralRecorder recorder(world, hardware, room, recOpts);

  const core::AoaEstimator personalEstimator(personal.table.farTable());
  const head::HrtfDatabase globalDb(head::globalTemplateSubject(), dbOpts);
  const auto globalTable = core::farTableFromDatabase(globalDb);
  const core::AoaEstimator globalEstimator(globalTable);

  Pcg32 rng(123);
  std::cout << std::fixed << std::setprecision(1);
  double personalErr = 0.0, globalErr = 0.0;
  int n = 0;
  for (double truth : {25.0, 70.0, 120.0, 160.0}) {
    Pcg32 sigRng = rng.fork(static_cast<std::uint64_t>(truth));
    const auto voice = eval::makeSignal(eval::SignalKind::kSpeech,
                                        static_cast<std::size_t>(0.5 * fs),
                                        fs, sigRng);
    const auto rec = recorder.recordFarField(truth, voice, sigRng, false);
    const auto withPersonal =
        personalEstimator.estimateUnknown(rec.left, rec.right);
    const auto withGlobal =
        globalEstimator.estimateUnknown(rec.left, rec.right);
    std::cout << "voice from " << std::setw(5) << truth
              << " deg -> personal HRTF says " << std::setw(5)
              << withPersonal.angleDeg << " deg, global template says "
              << std::setw(5) << withGlobal.angleDeg << " deg\n";
    personalErr += angularDistanceDeg(withPersonal.angleDeg, truth);
    globalErr += angularDistanceDeg(withGlobal.angleDeg, truth);
    ++n;
  }
  std::cout << "mean AoA error: personal " << personalErr / n
            << " deg vs global " << globalErr / n << " deg\n";
  std::cout << "the hearing aid can now beamform toward the caller.\n";
  return 0;
}
