// Immersive room audio (paper Section 7, "Integrating Room Multipath"):
// rendering realistic indoor 3D audio requires filtering the sound with
// both the room impulse response and the personal HRTF. This example
// calibrates a listener, places them in a living room with a speaker in
// the corner, renders the binaural signal with early reflections, and
// writes WAV files you can listen to.
#include <iostream>

#include "audio/wav.h"
#include "core/pipeline.h"
#include "dsp/signal_generators.h"
#include "head/subject.h"
#include "room/binaural_reverb.h"
#include "sim/measurement_session.h"

using namespace uniq;

int main() {
  std::cout << "calibrating listener...\n";
  const auto subject = head::makePopulation(1, 321)[0];
  const sim::MeasurementSession session;
  const auto capture = session.run(subject, sim::defaultGesture());
  const core::CalibrationPipeline pipeline;
  const auto personal = pipeline.run(capture);
  const double fs = capture.sampleRate;

  room::RoomGeometry livingRoom;
  livingRoom.widthM = 5.0;
  livingRoom.depthM = 4.0;
  livingRoom.wallReflection = 0.55;
  livingRoom.maxOrder = 4;
  const room::BinauralRoomRenderer renderer(personal.table.farTable(),
                                            livingRoom);

  const geo::Vec2 listener{2.5, 1.5};
  const geo::Vec2 speaker{4.5, 3.5};  // far corner
  Pcg32 rng(5);
  const auto music = dsp::musicLike(static_cast<std::size_t>(2.0 * fs), fs,
                                    rng);

  std::cout << "rendering with room reflections (order "
            << livingRoom.maxOrder << ")...\n";
  const auto wet = renderer.render(listener, 0.0, speaker, music);

  // For comparison: the same source anechoic (direct path only).
  room::RoomGeometry anechoic = livingRoom;
  anechoic.wallReflection = 0.0;
  anechoic.maxOrder = 0;
  const room::BinauralRoomRenderer dryRenderer(personal.table.farTable(),
                                               anechoic);
  const auto dry = dryRenderer.render(listener, 0.0, speaker, music);

  const auto images = room::computeImageSources(livingRoom, speaker);
  std::cout << "image sources rendered: " << images.size()
            << "; reverberant-to-direct energy ratio "
            << room::reverberantToDirectRatio(images, listener) << "\n";

  audio::writeStereoWav("immersive_room_wet.wav", wet.left, wet.right, fs);
  audio::writeStereoWav("immersive_room_dry.wav", dry.left, dry.right, fs);
  std::cout << "wrote immersive_room_wet.wav and immersive_room_dry.wav — "
               "the wet version carries the early reflections that make "
               "the source sound external and in-the-room.\n";

  // Head rotation: the whole acoustic scene (source AND reflections)
  // counter-rotates, which is what makes externalized audio stable.
  const auto turned = renderer.render(listener, 40.0, speaker, music);
  audio::writeStereoWav("immersive_room_turned.wav", turned.left,
                        turned.right, fs);
  std::cout << "wrote immersive_room_turned.wav (head turned 40 degrees; "
               "the room stays put).\n";
  return 0;
}
