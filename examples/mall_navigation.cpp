// Mall navigation (paper Section 4.5: "earphones could analyze the AoAs of
// music echoes in a shopping mall and enable navigation by triangulating
// the music speakers"). Two ceiling speakers play known jingles; the
// earbuds estimate each speaker's angle of arrival through the personal
// HRTF, and the bearings are triangulated into the user's position.
#include <iomanip>
#include <iostream>

#include "common/constants.h"
#include "common/math_util.h"
#include "core/aoa.h"
#include "core/pipeline.h"
#include "eval/experiments.h"
#include "geometry/polar.h"
#include "head/subject.h"
#include "optim/linalg.h"
#include "sim/measurement_session.h"
#include "sim/recorder.h"

using namespace uniq;

namespace {

/// Least-squares intersection of bearing lines: each speaker P_i is seen
/// from the user along world direction v_i, so the user lies on the line
/// {P_i - t v_i}. Perpendicular constraints n_i^T u = n_i^T P_i stack into
/// a small least-squares system.
geo::Vec2 triangulate(const std::vector<geo::Vec2>& speakers,
                      const std::vector<double>& worldBearingsDeg) {
  optim::Matrix a(speakers.size(), 2);
  std::vector<double> b(speakers.size());
  for (std::size_t i = 0; i < speakers.size(); ++i) {
    const geo::Vec2 v = geo::directionFromAzimuthDeg(worldBearingsDeg[i]);
    const geo::Vec2 n = v.perp();
    a.at(i, 0) = n.x;
    a.at(i, 1) = n.y;
    b[i] = dot(n, speakers[i]);
  }
  const auto u = optim::solveLeastSquares(a, b, 1e-12);
  return {u[0], u[1]};
}

}  // namespace

int main() {
  std::cout << "calibrating shopper...\n";
  const auto subject = head::makePopulation(1, 555)[0];
  const sim::MeasurementSession session;
  const auto capture = session.run(subject, sim::defaultGesture());
  const core::CalibrationPipeline pipeline;
  const auto personal = pipeline.run(capture);
  const double fs = capture.sampleRate;

  // World layout (meters). The user faces +y; both speakers sit in the
  // left-front hemifield the prototype's HRTF covers.
  const geo::Vec2 userTruth{0.0, 0.0};
  const double userYawDeg = 0.0;
  const std::vector<geo::Vec2> speakers = {{-6.0, 9.0}, {-10.0, -2.0}};

  head::HrtfDatabase::Options dbOpts;
  dbOpts.sampleRate = fs;
  const head::HrtfDatabase world(subject, dbOpts);
  const sim::HardwareModel hardware;
  const sim::RoomModel mall;  // echoes included
  sim::BinauralRecorder::Options recOpts;
  recOpts.snrDb = 22.0;
  const sim::BinauralRecorder recorder(world, hardware, mall, recOpts);
  const core::AoaEstimator estimator(personal.table.farTable());

  Pcg32 rng(9);
  std::vector<double> estimatedBearings;
  std::cout << std::fixed << std::setprecision(1);
  for (std::size_t i = 0; i < speakers.size(); ++i) {
    const geo::Vec2 toSpeaker = speakers[i] - userTruth;
    const double trueBearing = geo::azimuthDegOfPoint(toSpeaker);
    const double trueHeadAngle = trueBearing - userYawDeg;

    Pcg32 sigRng = rng.fork(i);
    // Each speaker periodically embeds a known wideband marker in its
    // music (the acoustic-beacon trick of the paper's Dhwani reference);
    // the app correlates against the marker it knows.
    const auto marker = eval::makeSignal(eval::SignalKind::kChirp,
                                         static_cast<std::size_t>(0.25 * fs),
                                         fs, sigRng);
    const auto rec =
        recorder.recordFarField(trueHeadAngle, marker, sigRng, false);
    const auto est = estimator.estimateKnown(rec.left, rec.right, marker);
    const double estBearing = est.angleDeg + userYawDeg;
    estimatedBearings.push_back(estBearing);
    std::cout << "speaker " << i + 1 << " at (" << speakers[i].x << ", "
              << speakers[i].y << "): true bearing " << trueBearing
              << " deg, estimated " << estBearing << " deg\n";
  }

  const geo::Vec2 fix = triangulate(speakers, estimatedBearings);
  std::cout << "triangulated position: (" << fix.x << ", " << fix.y
            << "), truth (0.0, 0.0), error "
            << geo::distance(fix, userTruth) << " m\n";
  std::cout << "the earbuds locate the shopper from ambient mall music "
               "alone.\n";
  return 0;
}
