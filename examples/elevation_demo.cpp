// Elevation rendering (paper Section 7, "3D HRTF"): the prototype measures
// the horizontal-plane HRTF; this demo synthesizes out-of-plane sources
// from the personal table — a drone circling from below the shoulder up to
// nearly overhead — and writes the binaural sweep to a WAV file.
#include <iomanip>
#include <iostream>

#include "audio/wav.h"
#include "core/pipeline.h"
#include "dsp/peak_picking.h"
#include "dsp/signal_generators.h"
#include "head/subject.h"
#include "sim/measurement_session.h"
#include "spatial3d/elevation_renderer.h"

using namespace uniq;

int main() {
  std::cout << "calibrating listener...\n";
  const auto subject = head::makePopulation(1, 888)[0];
  const sim::MeasurementSession session;
  const auto capture = session.run(subject, sim::defaultGesture());
  const core::CalibrationPipeline pipeline;
  const auto personal = pipeline.run(capture);
  const double fs = capture.sampleRate;

  const spatial3d::ElevationRenderer renderer(personal.table.farTable(),
                                              subject.pinnaSeed);

  // A buzzing drone rises in 15-degree steps at a fixed 55-degree azimuth.
  Pcg32 rng(4);
  const auto buzz = dsp::musicLike(static_cast<std::size_t>(0.4 * fs), fs,
                                   rng);
  std::vector<double> left, right;
  std::cout << std::fixed << std::setprecision(1);
  for (double el = -30.0; el <= 75.0; el += 15.0) {
    const auto seg = renderer.render(55.0, el, buzz);
    const auto tapL = dsp::findFirstTap(seg.left);
    const auto tapR = dsp::findFirstTap(seg.right);
    const double itdUs =
        tapL && tapR ? (tapR->position - tapL->position) / fs * 1e6 : 0.0;
    std::cout << "elevation " << std::setw(6) << el
              << " deg: lateral-equivalent angle "
              << renderer.equivalentLateralAngleDeg(55.0, el)
              << " deg, ITD " << std::setprecision(0) << itdUs << " us\n"
              << std::setprecision(1);
    left.insert(left.end(), seg.left.begin(), seg.left.end());
    right.insert(right.end(), seg.right.begin(), seg.right.end());
  }
  audio::writeStereoWav("elevation_sweep.wav", left, right, fs);
  std::cout << "wrote elevation_sweep.wav — the interaural cues collapse "
               "toward the median plane and the pinna notch climbs as the "
               "drone rises.\n";
  return 0;
}
