// Virtual concert (paper Section 1, application 3): each instrument is
// pinned to a fixed direction in the world. As the listener's head rotates
// (earbud motion sensors), the per-instrument HRTF angle is re-derived so
// the piano and the violin stay put in absolute space.
#include <iomanip>
#include <iostream>
#include <vector>

#include "common/math_util.h"
#include "core/pipeline.h"
#include "dsp/signal_generators.h"
#include "head/subject.h"
#include "sim/measurement_session.h"

using namespace uniq;

namespace {

struct Instrument {
  const char* name;
  double worldAngleDeg;  // fixed direction in the room
  double baseFreq;
};

/// Head-relative angle of a world direction given the listener's yaw,
/// clamped into the measured left hemicircle [0, 180].
double headRelativeAngle(double worldDeg, double headYawDeg) {
  const double rel = worldDeg - headYawDeg;
  return clamp(std::fabs(wrapPi(degToRad(rel))) * 180.0 / kPi, 0.0, 180.0);
}

}  // namespace

int main() {
  std::cout << "calibrating listener...\n";
  const auto subject = head::makePopulation(1, 2024)[0];
  const sim::MeasurementSession session;
  const auto capture = session.run(subject, sim::defaultGesture());
  const core::CalibrationPipeline pipeline;
  const auto personal = pipeline.run(capture);

  const std::vector<Instrument> stage = {
      {"piano", 40.0, 220.0},
      {"violin", 90.0, 440.0},
      {"cello", 150.0, 110.0},
  };

  // The listener slowly turns the head; 0.5 s frames.
  const double fs = capture.sampleRate;
  const auto frameLen = static_cast<std::size_t>(0.5 * fs);
  Pcg32 rng(3);

  std::cout << std::fixed << std::setprecision(1);
  for (double yaw : {0.0, 15.0, 30.0, 45.0}) {
    std::vector<double> mixLeft, mixRight;
    std::cout << "head yaw " << yaw << " deg:\n";
    for (const auto& instrument : stage) {
      const double rel = headRelativeAngle(instrument.worldAngleDeg, yaw);
      Pcg32 noteRng = rng.fork(static_cast<std::uint64_t>(
          instrument.worldAngleDeg * 100 + yaw));
      auto notes = dsp::musicLike(frameLen, fs, noteRng);
      const auto binaural = personal.table.renderFar(rel, notes);
      if (mixLeft.empty()) {
        mixLeft.assign(binaural.left.size(), 0.0);
        mixRight.assign(binaural.right.size(), 0.0);
      }
      for (std::size_t i = 0; i < mixLeft.size() && i < binaural.left.size();
           ++i) {
        mixLeft[i] += binaural.left[i];
        mixRight[i] += binaural.right[i];
      }
      std::cout << "  " << instrument.name << " stays at world "
                << instrument.worldAngleDeg << " deg -> HRTF angle " << rel
                << " deg\n";
    }
    const double ild = 10.0 * std::log10(head::channelEnergy(mixLeft) /
                                         head::channelEnergy(mixRight));
    std::cout << "  frame mix: " << mixLeft.size()
              << " samples per ear, stage ILD " << std::setprecision(2)
              << ild << " dB\n"
              << std::setprecision(1);
  }
  std::cout << "the ensemble remains fixed in world coordinates while the "
               "head turns.\n";
  return 0;
}
