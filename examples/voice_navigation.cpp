// Voice navigation (paper Section 1, application 1): instead of looking at
// a map, the user hears "follow me" from the direction of the next
// waypoint. The binaural rendering uses the personal far-field HRTF; the
// perceived direction updates as the user walks.
#include <cmath>
#include <iomanip>
#include <iostream>
#include <vector>

#include "common/math_util.h"
#include "core/pipeline.h"
#include "dsp/peak_picking.h"
#include "dsp/signal_generators.h"
#include "geometry/vec2.h"
#include "head/subject.h"
#include "sim/measurement_session.h"

using namespace uniq;

int main() {
  std::cout << "calibrating pedestrian...\n";
  const auto subject = head::makePopulation(1, 7)[0];
  const sim::MeasurementSession session;
  const auto capture = session.run(subject, sim::defaultGesture());
  const core::CalibrationPipeline pipeline;
  const auto personal = pipeline.run(capture);
  const double fs = capture.sampleRate;

  // A short city walk: the user heads north (+y); waypoints in meters.
  const std::vector<geo::Vec2> waypoints = {
      {0.0, 20.0}, {-15.0, 35.0}, {-15.0, 60.0}, {10.0, 75.0}};
  geo::Vec2 user{0.0, 0.0};
  std::size_t next = 0;

  Pcg32 rng(9);
  const auto phrase = dsp::speechLike(static_cast<std::size_t>(0.4 * fs),
                                      fs, rng);

  std::cout << std::fixed << std::setprecision(1);
  for (int step = 0; step < 20 && next < waypoints.size(); ++step) {
    const geo::Vec2 toGoal = waypoints[next] - user;
    if (toGoal.norm() < 3.0) {
      std::cout << "reached waypoint " << next + 1 << "\n";
      ++next;
      continue;
    }
    // The user walks facing +y; bearing of the goal relative to the nose.
    const double bearing =
        radToDeg(std::atan2(-toGoal.x, toGoal.y));  // matches library azimuth
    const double hrtfAngle = clamp(std::fabs(bearing), 0.0, 180.0);
    const auto binaural = personal.table.renderFar(hrtfAngle, phrase);
    const auto tapL = dsp::findFirstTap(binaural.left);
    const auto tapR = dsp::findFirstTap(binaural.right);
    const double itdUs = tapL && tapR
                             ? (tapR->position - tapL->position) / fs * 1e6
                             : 0.0;
    std::cout << "step " << std::setw(2) << step << ": user at (" << user.x
              << ", " << user.y << "), goal bearing " << bearing
              << " deg -> \"follow me\" rendered with ITD "
              << std::setprecision(0) << itdUs << " us"
              << std::setprecision(1)
              << (bearing < -1 ? " (right ear leads)"
                               : bearing > 1 ? " (left ear leads)"
                                             : " (centered)")
              << "\n";
    // Walk toward the perceived direction (up to 8 m per step, never past
    // the waypoint).
    user += toGoal.normalized() * std::min(8.0, toGoal.norm());
  }
  std::cout << "navigation finished without looking at a single map.\n";
  return 0;
}
