#include "spatial3d/head_tracker.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/math_util.h"
#include "dsp/convolution.h"

namespace uniq::spatial3d {

TrackedRenderer::TrackedRenderer(const core::HrtfTable& table, Options opts)
    : table_(table), opts_(opts) {
  UNIQ_REQUIRE(opts_.blockSize >= 256, "block size too small");
  UNIQ_REQUIRE(opts_.crossfadeSamples <= opts_.blockSize,
               "crossfade longer than a block");
}

head::BinauralSignal TrackedRenderer::renderTracked(
    double worldBearingDeg, const std::vector<double>& mono,
    const std::vector<double>& yawTrajectoryDeg,
    double yawSampleRateHz) const {
  UNIQ_REQUIRE(!mono.empty(), "empty source signal");
  UNIQ_REQUIRE(!yawTrajectoryDeg.empty(), "empty yaw trajectory");
  UNIQ_REQUIRE(yawSampleRateHz > 0, "yaw sample rate must be positive");

  const double fs = table_.sampleRate();
  const std::size_t block = opts_.blockSize;
  const std::size_t fade = opts_.crossfadeSamples;
  const std::size_t hrirLen = table_.farAt(0.0).left.size();

  head::BinauralSignal out;
  out.left.assign(mono.size() + hrirLen + fade, 0.0);
  out.right.assign(out.left.size(), 0.0);

  const auto yawAt = [&](double tSec) {
    const double idx = clamp(tSec * yawSampleRateHz, 0.0,
                             static_cast<double>(yawTrajectoryDeg.size() - 1));
    const auto lo = static_cast<std::size_t>(idx);
    const double f = idx - static_cast<double>(lo);
    const std::size_t hi = std::min(lo + 1, yawTrajectoryDeg.size() - 1);
    return lerp(yawTrajectoryDeg[lo], yawTrajectoryDeg[hi], f);
  };

  for (std::size_t start = 0; start < mono.size(); start += block) {
    const std::size_t len = std::min(block, mono.size() - start);
    const double yaw = yawAt(static_cast<double>(start) / fs);
    double rel = radToDeg(wrapPi(degToRad(worldBearingDeg - yaw)));
    const bool fromRight = rel < 0.0;
    const double tableAngle = clamp(std::fabs(rel), 0.0, 180.0);
    const auto& hrir = table_.farAt(tableAngle);
    const auto& hl = fromRight ? hrir.right : hrir.left;
    const auto& hr = fromRight ? hrir.left : hrir.right;

    // Block with a leading crossfade ramp (except the very first block) and
    // a trailing ramp matching the next block's lead, so consecutive
    // filtered blocks sum to a constant envelope.
    std::vector<double> seg(len + fade, 0.0);
    for (std::size_t i = 0; i < len; ++i) seg[i] = mono[start + i];
    if (start + len < mono.size()) {
      for (std::size_t i = 0; i < fade && start + len + i < mono.size(); ++i)
        seg[len + i] = mono[start + len + i];
    }
    // Ramps.
    if (start > 0) {
      for (std::size_t i = 0; i < fade && i < seg.size(); ++i)
        seg[i] *= static_cast<double>(i) / static_cast<double>(fade);
    }
    if (start + len < mono.size()) {
      for (std::size_t i = 0; i < fade; ++i) {
        const std::size_t pos = len + i;
        if (pos < seg.size())
          seg[pos] *= 1.0 - static_cast<double>(i) / static_cast<double>(fade);
      }
    }

    const auto segL = dsp::convolve(seg, hl);
    const auto segR = dsp::convolve(seg, hr);
    for (std::size_t i = 0; i < segL.size() && start + i < out.left.size();
         ++i) {
      out.left[start + i] += segL[i];
      out.right[start + i] += segR[i];
    }
  }
  return out;
}

}  // namespace uniq::spatial3d
