#include "spatial3d/elevation_renderer.h"

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/math_util.h"
#include "common/random.h"
#include "dsp/biquad.h"
#include "dsp/convolution.h"
#include "dsp/fractional_delay.h"

namespace uniq::spatial3d {

ElevationRenderer::ElevationRenderer(const core::FarFieldTable& table,
                                     std::uint64_t userSeed, Options opts)
    : table_(table), opts_(opts) {
  UNIQ_REQUIRE(table_.byDegree.size() == 181, "table must cover 0..180");
  UNIQ_REQUIRE(opts_.minElevationDeg < 0 && opts_.maxElevationDeg > 0,
               "elevation range must straddle the horizon");
  Pcg32 rng = Pcg32(userSeed).fork(0x3D);
  notchPhase_ = rng.uniform(0.0, kTwoPi);
  notchUserScale_ = rng.uniform(0.85, 1.15);
  shoulderUserScale_ = rng.uniform(0.8, 1.2);
}

double ElevationRenderer::equivalentLateralAngleDeg(
    double azimuthDeg, double elevationDeg) const {
  // Cone of confusion: the interaural time/level cues of direction
  // (az, el) match those of the horizontal-plane direction az' with
  // sin(az') = sin(az) * cos(el), keeping the front/back side of az.
  const double az = degToRad(clamp(azimuthDeg, 0.0, 180.0));
  const double el = degToRad(elevationDeg);
  const double sinLateral = clamp(std::sin(az) * std::cos(el), -1.0, 1.0);
  const double lateral = std::asin(sinLateral);
  const double azPrime =
      azimuthDeg <= 90.0 ? lateral : kPi - lateral;
  return radToDeg(azPrime);
}

head::Hrir ElevationRenderer::hrirAt(double azimuthDeg,
                                     double elevationDeg) const {
  UNIQ_REQUIRE(elevationDeg >= opts_.minElevationDeg &&
                   elevationDeg <= opts_.maxElevationDeg,
               "elevation out of the configured range");
  const double lateral = equivalentLateralAngleDeg(azimuthDeg, elevationDeg);
  head::Hrir hrir = table_.at(lateral);
  if (std::fabs(elevationDeg) < 1e-9) return hrir;  // exact 2D table entry

  // Strength of the monaural elevation cues ramps in smoothly away from
  // the horizon (continuity with the measured 2D table).
  const double strength = clamp(std::fabs(elevationDeg) / 40.0, 0.0, 1.0);
  const double fs = hrir.sampleRate;

  const double notchHz = clamp(
      (opts_.notchBaseHz +
       opts_.notchSlopeHzPerDeg * elevationDeg) * notchUserScale_ +
          300.0 * std::sin(notchPhase_),
      1200.0, 0.45 * fs);
  const double shoulderDelayMs =
      std::max(0.1, (opts_.shoulderDelayMsAtHorizon +
                     opts_.shoulderDelaySlopeMsPerDeg * elevationDeg) *
                        shoulderUserScale_);
  const double shoulderGain = opts_.shoulderGain * strength *
                              (elevationDeg < 0 ? 1.2 : 0.8);

  for (auto* channel : {&hrir.left, &hrir.right}) {
    // Elevation notch.
    dsp::Biquad notch = dsp::Biquad::bandpass(notchHz, opts_.notchQ, fs);
    const auto band = notch.process(*channel);
    for (std::size_t i = 0; i < channel->size(); ++i)
      (*channel)[i] -= opts_.notchDepth * strength * band[i];
    // Shoulder echo.
    const auto echo =
        dsp::fractionalShift(*channel, shoulderDelayMs * 1e-3 * fs);
    for (std::size_t i = 0; i < channel->size(); ++i)
      (*channel)[i] += shoulderGain * echo[i];
  }
  return hrir;
}

head::BinauralSignal ElevationRenderer::render(
    double azimuthDeg, double elevationDeg,
    const std::vector<double>& mono) const {
  UNIQ_REQUIRE(!mono.empty(), "empty source signal");
  const auto hrir = hrirAt(azimuthDeg, elevationDeg);
  head::BinauralSignal out;
  out.left = dsp::convolve(mono, hrir.left);
  out.right = dsp::convolve(mono, hrir.right);
  return out;
}

}  // namespace uniq::spatial3d
