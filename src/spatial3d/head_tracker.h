#pragma once

#include <vector>

#include "core/hrtf_table.h"

namespace uniq::spatial3d {

struct TrackedRendererOptions {
  /// Rendering block size (samples). Each block uses the head pose sampled
  /// at its start; shorter blocks track faster motion.
  std::size_t blockSize = 2048;
  /// Crossfade length between consecutive blocks (samples, <= blockSize).
  /// Without it, switching HRTF filters mid-stream clicks audibly.
  std::size_t crossfadeSamples = 256;
};

/// Dynamic world-anchored rendering (paper Section 1: "even if the head
/// rotates, motion sensors in the earphones can sense the rotation and
/// apply the HRTF for the updated theta. Thus, the piano and the violin
/// can remain fixed in their absolute directions").
///
/// The renderer splits the source signal into blocks, re-derives the
/// head-relative angle from the yaw trajectory per block, filters each
/// block with the matching far-field HRIR, and crossfades across block
/// boundaries so filter switches are inaudible.
class TrackedRenderer {
 public:
  using Options = TrackedRendererOptions;

  explicit TrackedRenderer(const core::HrtfTable& table, Options opts = {});

  /// Render `mono` as a plane wave from the fixed world bearing
  /// `worldBearingDeg`, while the head yaw follows `yawDegAt` — a function
  /// of time in seconds. Bearings outside the measured hemicircle fold to
  /// the mirrored angle with swapped ears.
  head::BinauralSignal renderTracked(
      double worldBearingDeg, const std::vector<double>& mono,
      const std::vector<double>& yawTrajectoryDeg,
      double yawSampleRateHz) const;

 private:
  const core::HrtfTable& table_;
  Options opts_;
};

}  // namespace uniq::spatial3d
