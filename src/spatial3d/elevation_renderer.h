#pragma once

#include <cstdint>
#include <vector>

#include "core/near_far.h"
#include "head/hrir.h"

namespace uniq::spatial3d {

struct ElevationRendererOptions {
  /// Supported elevation range (degrees; 0 = horizontal plane, positive up).
  double minElevationDeg = -40.0;
  double maxElevationDeg = 80.0;
  /// Base frequency of the elevation notch at 0 degrees and its slope —
  /// the classic psychoacoustic elevation cue: the pinna notch migrates
  /// upward in frequency as the source rises.
  double notchBaseHz = 6200.0;
  double notchSlopeHzPerDeg = 38.0;
  double notchQ = 4.0;
  double notchDepth = 0.85;
  /// Shoulder-reflection echo: delay shrinks as the source rises.
  double shoulderDelayMsAtHorizon = 0.75;
  double shoulderDelaySlopeMsPerDeg = -0.004;
  double shoulderGain = 0.25;
};

/// Elevation extension of the UNIQ output (paper Section 7, "3D HRTF"):
/// the paper's prototype estimates the 2D (horizontal-plane) HRTF and
/// sketches the extension — sweep the phone on a sphere and extend the
/// tracking math. This module implements the RENDERING half of that
/// sketch: given the personalized horizontal-plane far-field table, it
/// synthesizes out-of-plane HRIRs by
///   1. compressing the interaural delay/level toward zero as the source
///      leaves the horizontal plane (spherical-geometry cos(elevation)
///      scaling of the lateral angle),
///   2. adding the monaural elevation cues a personal pinna would imprint:
///      an elevation-tracking spectral notch and a shoulder echo, both
///      individualized from the user's seed.
/// Calibration of true 3D measurements remains future work, as in the
/// paper; the substitution is documented in DESIGN.md.
class ElevationRenderer {
 public:
  using Options = ElevationRendererOptions;

  /// `userSeed` individualizes the elevation cues (same seed family the
  /// subject's pinna model uses, so the cues are per-user).
  ElevationRenderer(const core::FarFieldTable& table, std::uint64_t userSeed,
                    Options opts = {});

  /// Synthesized far-field HRIR for (azimuth, elevation).
  /// azimuthDeg in [0, 180] (the measured hemicircle), elevationDeg within
  /// the configured range.
  head::Hrir hrirAt(double azimuthDeg, double elevationDeg) const;

  /// Render a mono sound from (azimuth, elevation).
  head::BinauralSignal render(double azimuthDeg, double elevationDeg,
                              const std::vector<double>& mono) const;

  /// The effective horizontal-plane angle whose interaural cues match the
  /// requested 3D direction (cone-of-confusion mapping). Exposed for tests.
  double equivalentLateralAngleDeg(double azimuthDeg,
                                   double elevationDeg) const;

 private:
  const core::FarFieldTable& table_;
  Options opts_;
  double notchPhase_;
  double notchUserScale_;
  double shoulderUserScale_;
};

}  // namespace uniq::spatial3d
