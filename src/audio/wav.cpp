#include "audio/wav.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>

#include "common/error.h"

namespace uniq::audio {

namespace {

void writeU32(std::ostream& os, std::uint32_t v) {
  char b[4] = {static_cast<char>(v & 0xFF), static_cast<char>((v >> 8) & 0xFF),
               static_cast<char>((v >> 16) & 0xFF),
               static_cast<char>((v >> 24) & 0xFF)};
  os.write(b, 4);
}

void writeU16(std::ostream& os, std::uint16_t v) {
  char b[2] = {static_cast<char>(v & 0xFF), static_cast<char>((v >> 8) & 0xFF)};
  os.write(b, 2);
}

std::uint32_t readU32(std::istream& is) {
  unsigned char b[4];
  is.read(reinterpret_cast<char*>(b), 4);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint16_t readU16(std::istream& is) {
  unsigned char b[2];
  is.read(reinterpret_cast<char*>(b), 2);
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::int16_t toPcm16(double v) {
  const double clipped = std::clamp(v, -1.0, 1.0);
  return static_cast<std::int16_t>(std::lround(clipped * 32767.0));
}

}  // namespace

void writeWav(const std::string& path, const WavData& data) {
  UNIQ_REQUIRE(!data.channels.empty() && data.channels.size() <= 2,
               "writeWav supports 1 or 2 channels");
  UNIQ_REQUIRE(data.sampleRate > 0, "sample rate must be positive");
  const std::size_t frames = data.channels[0].size();
  for (const auto& ch : data.channels)
    UNIQ_REQUIRE(ch.size() == frames, "channel lengths differ");

  std::ofstream os(path, std::ios::binary);
  UNIQ_REQUIRE(os.good(), "cannot open output file: " + path);

  const auto numChannels = static_cast<std::uint16_t>(data.channels.size());
  const auto sampleRate = static_cast<std::uint32_t>(data.sampleRate);
  const std::uint16_t bitsPerSample = 16;
  const std::uint32_t byteRate = sampleRate * numChannels * 2;
  const auto dataBytes =
      static_cast<std::uint32_t>(frames * numChannels * 2);

  os.write("RIFF", 4);
  writeU32(os, 36 + dataBytes);
  os.write("WAVE", 4);
  os.write("fmt ", 4);
  writeU32(os, 16);
  writeU16(os, 1);  // PCM
  writeU16(os, numChannels);
  writeU32(os, sampleRate);
  writeU32(os, byteRate);
  writeU16(os, static_cast<std::uint16_t>(numChannels * 2));
  writeU16(os, bitsPerSample);
  os.write("data", 4);
  writeU32(os, dataBytes);
  for (std::size_t i = 0; i < frames; ++i) {
    for (std::uint16_t c = 0; c < numChannels; ++c) {
      const std::int16_t s = toPcm16(data.channels[c][i]);
      writeU16(os, static_cast<std::uint16_t>(s));
    }
  }
  UNIQ_CHECK(os.good(), "write failed: " + path);
}

void writeStereoWav(const std::string& path, const std::vector<double>& left,
                    const std::vector<double>& right, double sampleRate) {
  WavData data;
  data.sampleRate = sampleRate;
  const std::size_t frames = std::max(left.size(), right.size());
  data.channels.resize(2);
  data.channels[0] = left;
  data.channels[0].resize(frames, 0.0);
  data.channels[1] = right;
  data.channels[1].resize(frames, 0.0);
  normalizeForPlayback(data.channels);
  writeWav(path, data);
}

WavData readWav(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  UNIQ_REQUIRE(is.good(), "cannot open input file: " + path);
  char tag[5] = {0};
  is.read(tag, 4);
  UNIQ_REQUIRE(std::strncmp(tag, "RIFF", 4) == 0, "not a RIFF file");
  readU32(is);  // riff size
  is.read(tag, 4);
  UNIQ_REQUIRE(std::strncmp(tag, "WAVE", 4) == 0, "not a WAVE file");

  WavData data;
  std::uint16_t numChannels = 0;
  std::uint16_t bitsPerSample = 0;
  for (;;) {
    is.read(tag, 4);
    if (!is.good()) break;
    const std::uint32_t chunkSize = readU32(is);
    if (std::strncmp(tag, "fmt ", 4) == 0) {
      const std::uint16_t format = readU16(is);
      UNIQ_REQUIRE(format == 1, "only PCM supported");
      numChannels = readU16(is);
      data.sampleRate = readU32(is);
      readU32(is);  // byte rate
      readU16(is);  // block align
      bitsPerSample = readU16(is);
      UNIQ_REQUIRE(bitsPerSample == 16, "only 16-bit supported");
      is.ignore(chunkSize - 16);
    } else if (std::strncmp(tag, "data", 4) == 0) {
      UNIQ_REQUIRE(numChannels >= 1 && numChannels <= 2,
                   "unsupported channel count");
      const std::size_t frames = chunkSize / (numChannels * 2);
      data.channels.assign(numChannels, std::vector<double>(frames));
      for (std::size_t i = 0; i < frames; ++i) {
        for (std::uint16_t c = 0; c < numChannels; ++c) {
          const auto raw = static_cast<std::int16_t>(readU16(is));
          data.channels[c][i] = static_cast<double>(raw) / 32767.0;
        }
      }
      return data;
    } else {
      is.ignore(chunkSize);
    }
  }
  throw InvalidArgument("no data chunk found in " + path);
}

void normalizeForPlayback(std::vector<std::vector<double>>& channels,
                          double peak) {
  UNIQ_REQUIRE(peak > 0 && peak <= 1.0, "peak must be in (0, 1]");
  double maxAbs = 0.0;
  for (const auto& ch : channels)
    for (double v : ch) maxAbs = std::max(maxAbs, std::fabs(v));
  if (maxAbs < 1e-12) return;
  const double g = peak / maxAbs;
  for (auto& ch : channels)
    for (auto& v : ch) v *= g;
}

}  // namespace uniq::audio
