#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace uniq::audio {

/// Minimal RIFF/WAVE I/O so the examples can export listenable binaural
/// renders. 16-bit PCM, mono or stereo.
struct WavData {
  double sampleRate = 48000.0;
  std::vector<std::vector<double>> channels;  ///< 1 or 2, each in [-1, 1]
};

/// Write a WAV file (16-bit PCM). Samples are clipped to [-1, 1].
void writeWav(const std::string& path, const WavData& data);

/// Convenience: stereo writer for binaural pairs.
void writeStereoWav(const std::string& path, const std::vector<double>& left,
                    const std::vector<double>& right, double sampleRate);

/// Read a 16-bit PCM WAV file written by writeWav (round-trip support for
/// tests and examples; not a general-purpose WAV parser).
WavData readWav(const std::string& path);

/// Peak-normalize a set of channels in place to the given peak (<= 1).
void normalizeForPlayback(std::vector<std::vector<double>>& channels,
                          double peak = 0.9);

}  // namespace uniq::audio
