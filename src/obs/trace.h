#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// Compile-time gate for the tracing macros. The build defines
/// UNIQ_OBSERVABILITY_ENABLED=0 when configured with
/// -DUNIQ_OBSERVABILITY=OFF; spans then compile to nothing and the library
/// carries zero tracing overhead. Default is ON (spans compiled in, runtime
/// toggleable — see uniq::obs::setTraceEnabled).
#ifndef UNIQ_OBSERVABILITY_ENABLED
#define UNIQ_OBSERVABILITY_ENABLED 1
#endif

namespace uniq::obs {

/// 64-bit trace-context id: one per logical job/request, carried across
/// threads so every span a job touches — on whichever pool worker it ran —
/// can be attributed back to it. 0 means "no context".
using TraceId = std::uint64_t;

/// One completed trace span as recorded by a Span object.
struct SpanRecord {
  std::string name;        ///< span name, e.g. "dsf.solve"
  std::uint64_t id = 0;    ///< process-unique span id (creation order)
  std::uint64_t parent = 0;  ///< id of the enclosing span on the same
                             ///< thread; 0 when the span is a root
  std::uint32_t depth = 0;   ///< nesting depth on its thread (root = 0)
  std::uint32_t tid = 0;     ///< small per-thread index (stable per thread)
  TraceId traceId = 0;       ///< owning job's trace context (0 = none)
  double startUs = 0.0;      ///< start time, microseconds since trace epoch
  double durUs = 0.0;        ///< wall duration in microseconds
};

/// Allocate a fresh process-unique trace id (never 0).
TraceId newTraceId();

/// The calling thread's current trace context (0 when none is active).
/// Spans opened on this thread record it; common::ThreadPool::submit
/// captures it at submit time and restores it inside the worker, so the
/// context follows the work, not the thread.
TraceId currentTraceId();

/// RAII trace-context scope: installs `id` as the calling thread's context
/// and restores the previous one on destruction. Used per job by
/// serve::CalibrationService and per session by stream::StreamingSession.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceId id);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceId prev_;
};

/// Whether spans currently record anything. Reads a relaxed atomic; safe to
/// call from any thread. Defaults to true unless the UNIQ_OBSERVABILITY
/// environment variable is set to "0", "off", or "false" at first use.
bool traceEnabled();

/// Turn span recording on or off at runtime. Spans opened while disabled
/// record nothing (their destructors are no-ops), so toggling mid-run is
/// safe. Overrides the environment default.
void setTraceEnabled(bool enabled);

/// Discard every recorded span (all threads) and restart the trace epoch.
/// Call between runs to keep exports scoped to one pipeline invocation.
void clearTrace();

/// Cap on completed spans retained per thread. Once a thread's buffer is
/// full, further spans are dropped (counted in the process-wide
/// `obs.trace.dropped` counter) instead of growing memory without bound —
/// what makes always-on tracing safe through a 100k-user serve-load run.
/// Defaults to the UNIQ_TRACE_MAX_SPANS environment variable at first use
/// (262144 when unset); 0 means unlimited.
std::size_t traceMaxSpansPerThread();

/// Override the per-thread span cap at runtime (0 = unlimited). Takes
/// effect for spans recorded after the call; clearTrace() empties the
/// buffers so a lowered cap applies cleanly from the next run.
void setTraceMaxSpansPerThread(std::size_t cap);

/// Snapshot of all spans completed so far, across every thread, sorted by
/// start time. Spans still open (their Span object is alive) are not
/// included. Thread-safe; may be called while other threads keep tracing.
std::vector<SpanRecord> collectSpans();

/// RAII trace span: records wall time, thread id, and parent/child nesting
/// into a per-thread buffer on destruction. Construction and destruction
/// cost a few nanoseconds when tracing is runtime-disabled and roughly a
/// hundred nanoseconds when enabled (one uncontended per-thread lock).
///
/// Use via the UNIQ_SPAN macro so the whole thing compiles out when the
/// build disables observability:
///
///     void SensorFusion::solve(...) {
///       UNIQ_SPAN("dsf.solve");
///       ...
///     }
class Span {
 public:
  /// `name` must outlive the span (string literals always do).
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint32_t depth_ = 0;
  TraceId traceId_ = 0;
  double startUs_ = 0.0;
  bool active_ = false;
};

/// Microseconds since the trace epoch (process start or the last
/// clearTrace()). Monotonic; used by spans and exposed for exporters.
double nowUs();

}  // namespace uniq::obs

#define UNIQ_OBS_CONCAT_INNER(a, b) a##b
#define UNIQ_OBS_CONCAT(a, b) UNIQ_OBS_CONCAT_INNER(a, b)

#if UNIQ_OBSERVABILITY_ENABLED
/// Opens an RAII trace span covering the rest of the enclosing scope.
#define UNIQ_SPAN(name) \
  ::uniq::obs::Span UNIQ_OBS_CONCAT(uniqObsSpan_, __LINE__)(name)
#else
#define UNIQ_SPAN(name) ((void)0)
#endif
