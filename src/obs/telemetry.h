#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace uniq::obs {

/// One sampler tick: the cumulative registry snapshot at `atMs` plus the
/// derived per-window view (counter rates and histogram deltas) against the
/// previous tick.
struct TelemetryWindow {
  std::uint64_t seq = 0;   ///< window index (0 = first tick after start)
  double atMs = 0.0;       ///< sample time, ms since sampler start
  double dtMs = 0.0;       ///< width of this window in ms (>= 0)
  MetricsSnapshot cumulative;  ///< full registry snapshot at `atMs`

  struct CounterRate {
    std::string name;
    std::uint64_t delta = 0;  ///< increments inside this window
    double perSec = 0.0;      ///< delta / window seconds (0 when dt == 0)
  };
  /// Per-histogram window view: counts observed inside this window only,
  /// with quantiles estimated on the window delta (not the cumulative
  /// distribution), so a latency regression shows up immediately.
  struct HistogramWindow {
    std::string name;
    std::uint64_t count = 0;  ///< observations inside this window
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    /// Window-delta bucket counts; quantile() works on them directly, so
    /// consumers (SLO rules) can ask for arbitrary quantiles or merge
    /// windows.
    MetricsSnapshot::HistogramEntry delta;
  };
  std::vector<CounterRate> counterRates;
  std::vector<HistogramWindow> histogramWindows;

  /// Rate entry for counter `name`, or nullptr when absent.
  const CounterRate* counterRate(const std::string& name) const;
  /// Window view for histogram `name`, or nullptr when absent.
  const HistogramWindow* histogramWindow(const std::string& name) const;
};

struct TelemetrySamplerOptions {
  std::uint64_t intervalMs = 250;  ///< tick period for the background thread
  std::size_t ringCapacity = 240;  ///< windows retained (oldest evicted)
  /// When true, each tick also publishes obs.telemetry.* gauges (window
  /// seq, dt) back into the registry so exports show sampler liveness.
  bool exportGauges = true;
};

/// Background telemetry sampler: snapshots a Registry on a fixed interval,
/// derives per-window counter rates and histogram quantiles, and retains a
/// bounded ring of windows. One instance owns at most one thread; start()
/// and stop() are idempotent and the destructor always joins.
///
/// Windows are also observable synchronously: sampleNow() takes a tick on
/// the calling thread (usable with or without the background thread
/// running), which is what tests and `uniq serve-load`'s final report use
/// for deterministic boundaries.
class TelemetrySampler {
 public:
  using WindowCallback = std::function<void(const TelemetryWindow&)>;

  explicit TelemetrySampler(Registry& reg,
                            const TelemetrySamplerOptions& opts = {});
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Launch the background thread. No-op when already running.
  void start();
  /// Stop and join the background thread (final tick is NOT taken; call
  /// sampleNow() first if the tail window matters). No-op when stopped.
  void stop();
  /// Whether the background thread is running.
  bool running() const;

  /// Take one tick synchronously on the calling thread and return the
  /// produced window. Serialized against background ticks.
  TelemetryWindow sampleNow();

  /// Register a callback invoked after every tick (background or
  /// sampleNow) with the new window, on the ticking thread. Callbacks run
  /// under the sampler's tick lock — keep them short. Must be called
  /// before start().
  void onWindow(WindowCallback cb);

  /// Copy of the retained windows, oldest first.
  std::vector<TelemetryWindow> windows() const;
  /// The most recent window (default-constructed when none yet).
  TelemetryWindow latest() const;
  /// Total ticks taken since construction (monotonic, not capped by the
  /// ring).
  std::uint64_t windowCount() const;

  const TelemetrySamplerOptions& options() const { return opts_; }

 private:
  TelemetryWindow tickLocked();

  Registry& reg_;
  TelemetrySamplerOptions opts_;

  mutable std::mutex mutex_;  ///< guards ring_, prev_, seq_, callbacks
  std::deque<TelemetryWindow> ring_;
  MetricsSnapshot prev_;
  bool havePrev_ = false;
  double prevAtMs_ = 0.0;
  std::uint64_t seq_ = 0;
  std::vector<WindowCallback> callbacks_;

  mutable std::mutex runMutex_;  ///< guards thread_ / stopping_ transitions
  std::condition_variable stopCv_;
  std::thread thread_;
  bool stopping_ = false;
  bool threadRunning_ = false;

  std::chrono::steady_clock::time_point startTime_;
};

}  // namespace uniq::obs
