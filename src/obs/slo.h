#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace uniq::obs {

/// What an SLO rule measures over its window.
enum class SloObjective {
  kQuantile,  ///< histogram quantile over the trailing window (merged deltas)
  kRate,      ///< counter rate (events/sec averaged over the window)
  kGauge,     ///< latest gauge value
};

/// One declarative SLO rule, parsed from JSON. A rule breaches when its
/// measured value exceeds threshold * burnRate over the trailing window —
/// the burn-rate multiplier expresses "alert when we consume error budget
/// N times faster than the objective allows".
struct SloRule {
  std::string name;      ///< unique rule name (exported as slo.<name>.*)
  std::string metric;    ///< instrument name, e.g. "serve.load.lookup_ms"
  SloObjective objective = SloObjective::kQuantile;
  double quantile = 0.99;  ///< for kQuantile only
  double threshold = 0.0;  ///< objective limit in the metric's unit
  double windowS = 5.0;    ///< trailing evaluation window, seconds
  double burnRate = 1.0;   ///< multiplier on threshold before breaching
};

/// One edge-triggered breach event (raised when a rule transitions from
/// healthy to breached; cleared breaches are not recorded).
struct SloBreach {
  std::string rule;
  double value = 0.0;  ///< measured value at breach
  double limit = 0.0;  ///< threshold * burnRate it exceeded
  double atMs = 0.0;   ///< sampler timestamp of the breaching window
  std::uint64_t windowSeq = 0;
};

/// Current per-rule evaluation state.
struct SloStatus {
  SloRule rule;
  double value = 0.0;     ///< latest measured value (NaN until measurable)
  double limit = 0.0;     ///< threshold * burnRate
  bool measurable = false;  ///< false until the metric has data
  bool breached = false;
};

/// Evaluates declarative SLO rules against sampler windows. Feed every
/// TelemetryWindow to observe() (typically from TelemetrySampler::onWindow);
/// each call re-evaluates all rules over their trailing windows, updates
/// slo.<name>.{value,limit,breached} gauges plus the slo.breach_windows
/// counter in `reg`, and records edge-triggered breach events.
///
/// Thread-safe: observe() and the accessors may race (the sampler thread
/// ticks while the CLI polls status()).
class SloEvaluator {
 public:
  /// `reg` receives the exported slo.* instruments.
  explicit SloEvaluator(Registry& reg, std::vector<SloRule> rules);

  /// Parse rules from a JSON document:
  ///
  ///   {"rules": [{"name": "lookup-p99", "metric": "serve.load.lookup_ms",
  ///               "objective": "quantile", "quantile": 0.99,
  ///               "threshold": 5.0, "window_s": 5, "burn_rate": 2.0}]}
  ///
  /// objective is "quantile" (default), "rate", or "gauge"; quantile
  /// defaults to 0.99, window_s to 5, burn_rate to 1. Returns false and
  /// fills `error` on malformed JSON, unknown objectives, missing
  /// name/metric, duplicate names, or non-positive threshold/window.
  static bool parseRules(const std::string& json, std::vector<SloRule>* rules,
                         std::string* error);

  /// Evaluate all rules against the trailing windows ending at `window`.
  void observe(const TelemetryWindow& window);

  /// Latest per-rule status, in rule order.
  std::vector<SloStatus> status() const;
  /// All edge-triggered breach events so far, oldest first.
  std::vector<SloBreach> breaches() const;
  /// Whether any rule has ever breached (sticky; what --fail-on-slo uses).
  bool anyBreached() const;
  const std::vector<SloRule>& rules() const { return rules_; }

 private:
  double evaluateRule(const SloRule& rule, bool* measurable) const;

  Registry& reg_;
  std::vector<SloRule> rules_;

  mutable std::mutex mutex_;
  std::deque<TelemetryWindow> history_;  ///< trailing windows, oldest first
  double maxWindowS_ = 0.0;              ///< widest rule window (history cap)
  std::vector<SloStatus> status_;
  std::vector<SloBreach> breaches_;
  bool everBreached_ = false;
};

}  // namespace uniq::obs
