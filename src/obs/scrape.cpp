#include "obs/scrape.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/error.h"

namespace uniq::obs {

namespace {

/// Prometheus sample-value formatting: finite round-trip precision,
/// non-finite as +Inf/-Inf/NaN (which the exposition format does allow).
void appendValue(std::ostringstream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
    return;
  }
  if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  os << buf;
}

/// Escape a label value: backslash, double-quote, newline.
std::string labelEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string prometheusName(const std::string& name) {
  std::string out = "uniq_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheusText(const MetricsSnapshot& snapshot,
                           const TelemetryWindow* window,
                           const std::vector<SloStatus>* slo) {
  std::ostringstream os;
  for (const auto& c : snapshot.counters) {
    const std::string name = prometheusName(c.name) + "_total";
    os << "# TYPE " << name << " counter\n";
    os << name << " " << c.value << "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = prometheusName(g.name);
    os << "# TYPE " << name << " gauge\n";
    os << name << " ";
    appendValue(os, g.value);
    os << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = prometheusName(h.name);
    os << "# TYPE " << name << " histogram\n";
    // Cumulative buckets: underflow (v < lo) folds into the first finite
    // bucket since Prometheus buckets always start at -Inf; the +Inf
    // bucket equals _count, absorbing overflow.
    std::uint64_t cum = h.underflow;
    double edge = h.options.lo;
    for (std::size_t k = 0; k < h.counts.size(); ++k) {
      cum += h.counts[k];
      edge *= h.options.growth;
      os << name << "_bucket{le=\"";
      appendValue(os, edge);
      os << "\"} " << cum << "\n";
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << name << "_sum ";
    appendValue(os, h.sum);
    os << "\n";
    os << name << "_count " << h.count << "\n";
  }
  if (window != nullptr) {
    for (const auto& r : window->counterRates) {
      const std::string name = prometheusName(r.name) + "_rate";
      os << "# TYPE " << name << " gauge\n";
      os << name << " ";
      appendValue(os, r.perSec);
      os << "\n";
    }
    for (const auto& hw : window->histogramWindows) {
      const std::string name = prometheusName(hw.name) + "_window_q";
      os << "# TYPE " << name << " gauge\n";
      const double qs[] = {0.50, 0.90, 0.99};
      const double vs[] = {hw.p50, hw.p90, hw.p99};
      for (int i = 0; i < 3; ++i) {
        os << name << "{q=\"";
        appendValue(os, qs[i]);
        os << "\"} ";
        appendValue(os, vs[i]);
        os << "\n";
      }
    }
  }
  if (slo != nullptr && !slo->empty()) {
    os << "# TYPE uniq_slo_value gauge\n";
    for (const auto& st : *slo) {
      os << "uniq_slo_value{rule=\"" << labelEscape(st.rule.name) << "\"} ";
      appendValue(os, st.measurable ? st.value : 0.0);
      os << "\n";
    }
    os << "# TYPE uniq_slo_limit gauge\n";
    for (const auto& st : *slo) {
      os << "uniq_slo_limit{rule=\"" << labelEscape(st.rule.name) << "\"} ";
      appendValue(os, st.limit);
      os << "\n";
    }
    os << "# TYPE uniq_slo_breached gauge\n";
    for (const auto& st : *slo) {
      os << "uniq_slo_breached{rule=\"" << labelEscape(st.rule.name)
         << "\"} " << (st.breached ? 1 : 0) << "\n";
    }
  }
  return os.str();
}

ScrapeServer::ScrapeServer(ContentFn content, std::uint16_t port)
    : content_(std::move(content)) {
  UNIQ_REQUIRE(content_ != nullptr, "scrape server needs a content callback");
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  UNIQ_REQUIRE(listenFd_ >= 0, "scrape server: socket() failed");
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  addr.sin_port = htons(port);
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listenFd_, 8) != 0) {
    ::close(listenFd_);
    listenFd_ = -1;
    UNIQ_REQUIRE(false, "scrape server: cannot bind 127.0.0.1:" +
                            std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { serveLoop(); });
}

ScrapeServer::~ScrapeServer() { stop(); }

void ScrapeServer::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
}

void ScrapeServer::serveLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listenFd_;
    pfd.events = POLLIN;
    // Short poll timeout bounds how long stop() waits for the loop to
    // notice the flag.
    const int ready = ::poll(&pfd, 1, 50);
    if (ready <= 0) continue;
    const int client = ::accept(listenFd_, nullptr, nullptr);
    if (client < 0) continue;
    // Drain the request line + headers (one read is enough for the tiny
    // GETs we serve; anything else still gets a response).
    char buf[2048];
    const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
    (void)n;
    registry().counter("obs.scrape.requests").inc();
    std::string body;
    try {
      body = content_();
    } catch (const std::exception& e) {
      body = std::string("# scrape content error: ") + e.what() + "\n";
    }
    std::ostringstream resp;
    resp << "HTTP/1.1 200 OK\r\n"
         << "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
         << "Content-Length: " << body.size() << "\r\n"
         << "Connection: close\r\n\r\n"
         << body;
    const std::string out = resp.str();
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t w = ::send(client, out.data() + sent, out.size() - sent,
                               0);
      if (w <= 0) break;
      sent += static_cast<std::size_t>(w);
    }
    ::close(client);
  }
}

bool httpGet(std::uint16_t port, const std::string& path, std::string* body,
             std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = "socket() failed";
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    if (error) *error = "connect to 127.0.0.1:" + std::to_string(port) +
                        " failed";
    return false;
  }
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                          "Connection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t w = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (w <= 0) {
      ::close(fd);
      if (error) *error = "send failed";
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t split = response.find("\r\n\r\n");
  if (split == std::string::npos) {
    if (error) *error = "malformed HTTP response";
    return false;
  }
  *body = response.substr(split + 4);
  return true;
}

}  // namespace uniq::obs
