#include "obs/export.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace uniq::obs {

namespace {

/// JSON number formatting: finite values print with enough precision to
/// round-trip; non-finite values (not representable in JSON) print as 0.
void appendNumber(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  os << buf;
}

}  // namespace

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string traceEventJson(const std::vector<SpanRecord>& spans) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Chrome trace viewers group rows by pid, so spans are grouped by their
  // trace context (the owning job); context-less spans share pid 1. Trace
  // ids are small sequential integers, safely below the 2^53 JSON limit.
  std::vector<TraceId> seenTraces;
  for (const auto& span : spans) {
    const std::uint64_t pid = span.traceId != 0 ? span.traceId : 1;
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << jsonEscape(span.name)
       << "\",\"cat\":\"uniq\",\"ph\":\"X\",\"pid\":" << pid
       << ",\"tid\":" << span.tid << ",\"ts\":";
    appendNumber(os, span.startUs);
    os << ",\"dur\":";
    appendNumber(os, span.durUs);
    os << ",\"args\":{\"id\":" << span.id << ",\"parent\":" << span.parent
       << ",\"depth\":" << span.depth << ",\"trace\":" << span.traceId
       << "}}";
    if (std::find(seenTraces.begin(), seenTraces.end(), span.traceId) ==
        seenTraces.end()) {
      seenTraces.push_back(span.traceId);
    }
  }
  for (const TraceId traceId : seenTraces) {
    const std::uint64_t pid = traceId != 0 ? traceId : 1;
    const std::string label =
        traceId != 0 ? "trace " + std::to_string(traceId) : "untraced";
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << jsonEscape(label) << "\"}}";
  }
  os << "]}";
  return os.str();
}

std::string metricsJson(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& c : snapshot.counters) {
    if (!first) os << ",";
    first = false;
    os << "\"" << jsonEscape(c.name) << "\":" << c.value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& g : snapshot.gauges) {
    if (!first) os << ",";
    first = false;
    os << "\"" << jsonEscape(g.name) << "\":";
    appendNumber(os, g.value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& h : snapshot.histograms) {
    if (!first) os << ",";
    first = false;
    os << "\"" << jsonEscape(h.name) << "\":{\"lo\":";
    appendNumber(os, h.options.lo);
    os << ",\"growth\":";
    appendNumber(os, h.options.growth);
    os << ",\"counts\":[";
    for (std::size_t k = 0; k < h.counts.size(); ++k) {
      if (k) os << ",";
      os << h.counts[k];
    }
    os << "],\"underflow\":" << h.underflow << ",\"overflow\":" << h.overflow
       << ",\"count\":" << h.count << ",\"sum\":";
    appendNumber(os, h.sum);
    os << "}";
  }
  os << "}}";
  return os.str();
}

bool writeTextFile(const std::string& path, const std::string& content,
                   std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << content;
  out.flush();
  if (!out) {
    if (error) *error = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace uniq::obs
