#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace uniq::obs {

/// Severity of a pipeline diagnostic. The worst severity across a run maps
/// onto the pipeline status: no warnings -> Ok, any warning -> Degraded,
/// any error -> Failed (see docs/ROBUSTNESS.md for the full contract).
enum class Severity { kInfo, kWarning, kError };

/// Lower-case severity label ("info" / "warning" / "error").
const char* severityName(Severity severity);

/// One structured pipeline diagnostic: which stage noticed a problem, how
/// bad it is, and which capture stops it affects. Diagnostics are the
/// machine-readable counterpart of the old abort-on-first-error throws —
/// a degraded capture produces a list of these instead of an exception.
struct Diagnostic {
  std::string stage;                ///< reporting stage, e.g. "fusion"
  Severity severity = Severity::kInfo;
  std::string message;              ///< human-readable description
  std::vector<std::size_t> stops;   ///< affected capture stop indices (may be empty)
};

/// Structured record of one pipeline stage: wall time plus named numeric
/// results (iteration counts, residuals, sizes). Values keep insertion
/// order so the summary table reads the way the stage reported them.
struct StageReport {
  std::string name;    ///< stage name, e.g. "fusion" (see docs/OBSERVABILITY.md)
  double wallMs = 0.0;  ///< stage wall-clock time in milliseconds

  /// Named numeric results, in insertion order.
  std::vector<std::pair<std::string, double>> values;

  /// Set or overwrite the value named `key`.
  void set(const std::string& key, double value);
  /// Value named `key`, or `fallback` when the stage never set it.
  double value(const std::string& key, double fallback = 0.0) const;
  /// Whether the stage set a value named `key`.
  bool has(const std::string& key) const;
};

/// Structured result of one instrumented run: per-stage timings and
/// residuals, in execution order. Returned by
/// core::CalibrationPipeline::run(capture, &report) so callers consume
/// stage data directly instead of parsing logs.
struct RunReport {
  std::vector<StageReport> stages;

  /// Structured diagnostics accumulated across the run, in emission order.
  std::vector<Diagnostic> diagnostics;

  /// Final pipeline status label ("ok" / "degraded" / "failed"); empty when
  /// the producer predates the resilience layer or did not set it.
  std::string status;

  /// Append a diagnostic.
  void diagnose(std::string stage, Severity severity, std::string message,
                std::vector<std::size_t> stops = {});

  /// Worst severity across all diagnostics (kInfo when there are none).
  Severity worstSeverity() const;

  /// Human-readable diagnostics listing, one "  [severity] stage: message
  /// (stops i, j, ...)" line per diagnostic; empty string when there are
  /// none. Printed by `uniq calibrate` after the stage table.
  std::string diagnosticsText() const;

  /// Stage named `name`, appended (with zero wall time) on first use.
  StageReport& stage(const std::string& name);
  /// Stage named `name`, or nullptr when the run never reported it.
  const StageReport* find(const std::string& name) const;
  /// Names of all reported stages, in execution order.
  std::vector<std::string> stageNames() const;

  /// Human-readable per-stage summary table (the body of
  /// `uniq calibrate --report`): one aligned row per stage with wall time
  /// and every reported value.
  std::string summaryTable() const;
};

/// Scoped stage timer: measures wall time from construction to destruction
/// (or stop()) and writes it into `report.stage(name).wallMs`. When
/// `report` is null the timer does nothing, which lets instrumented code
/// accept an optional RunReport without branching at every stage.
class StageTimer {
 public:
  StageTimer(RunReport* report, const char* name);
  ~StageTimer();

  /// Stop early and record the elapsed time; the destructor then no-ops.
  void stop();

  /// The stage being timed, or nullptr when reporting is off. Valid until
  /// another stage is appended to the report.
  StageReport* stage() const;

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  RunReport* report_;
  const char* name_;
  double startUs_ = 0.0;
  bool running_ = false;
};

/// Plain-text lines for the counters/gauges whose names start with one of
/// `prefixes` (every instrument when `prefixes` is empty) — the CLI's
/// "perf:" section. One "name value" line per instrument, sorted by name.
std::string summarizeMetrics(const MetricsSnapshot& snapshot,
                             const std::vector<std::string>& prefixes = {});

/// Write the process-wide registry as metrics JSON to the path named by the
/// UNIQ_METRICS_OUT environment variable, if set. Returns true when a file
/// was written. Bench binaries call this last so any run can be asked for
/// its metrics without new flags.
bool exportMetricsIfRequested();

}  // namespace uniq::obs
