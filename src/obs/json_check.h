#pragma once

#include <string>
#include <string_view>

namespace uniq::obs {

/// Strict single-pass JSON syntax check (RFC 8259 grammar: objects, arrays,
/// strings with escapes, numbers, true/false/null; no trailing commas or
/// comments). Builds no DOM — it only answers "would a JSON parser accept
/// this document?", which is exactly what the exporter tests and the
/// `report_smoke` CTest need. Returns true when `text` is one valid JSON
/// value; on failure fills `error` (when non-null) with a byte offset and
/// reason.
bool validateJson(std::string_view text, std::string* error = nullptr);

}  // namespace uniq::obs
