#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace uniq::obs {

Histogram::Histogram(const HistogramOptions& opts) : opts_(opts) {
  UNIQ_REQUIRE(opts_.lo > 0.0, "histogram lo edge must be positive");
  UNIQ_REQUIRE(opts_.growth > 1.0, "histogram growth must exceed 1");
  UNIQ_REQUIRE(opts_.bins >= 1, "histogram needs at least one bin");
  edges_.resize(opts_.bins + 1);
  double edge = opts_.lo;
  for (std::size_t k = 0; k <= opts_.bins; ++k) {
    edges_[k] = edge;
    edge *= opts_.growth;
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(opts_.bins);
  for (std::size_t k = 0; k < opts_.bins; ++k) counts_[k].store(0);
}

void Histogram::observe(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  double prev = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(prev, prev + v,
                                     std::memory_order_relaxed)) {
  }
  if (!(v >= edges_.front())) {  // NaN and negatives land in underflow
    underflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (v >= edges_.back()) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // First edge strictly greater than v; the bucket starting just below it
  // owns the value, so edge values land in the bucket they open.
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), v);
  const auto k = static_cast<std::size_t>(it - edges_.begin()) - 1;
  counts_[k].fetch_add(1, std::memory_order_relaxed);
}

namespace {

/// Shared log-linear quantile estimator over log-scale bucket counts.
/// `binCount(k)` supplies finite bucket k; buckets cover
/// [lo*growth^k, lo*growth^(k+1)). The rank walks underflow, then the
/// finite buckets, then overflow; inside a finite bucket the value is
/// interpolated geometrically (linear in log space), which is exact for a
/// log-uniform in-bucket distribution and never leaves the bucket.
template <typename BinCountFn>
double quantileFromBins(double q, const HistogramOptions& opts,
                        std::uint64_t underflow, std::uint64_t overflow,
                        std::uint64_t total, const BinCountFn& binCount) {
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in [1, total]: the smallest value with at least q of the
  // mass at or below it.
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  std::uint64_t cum = underflow;
  if (target <= cum) return opts.lo;
  double edge = opts.lo;
  for (std::size_t k = 0; k < opts.bins; ++k, edge *= opts.growth) {
    const std::uint64_t c = binCount(k);
    if (c == 0) continue;
    if (target <= cum + c) {
      const double frac = static_cast<double>(target - cum) /
                          static_cast<double>(c);
      return edge * std::pow(opts.growth, frac);
    }
    cum += c;
  }
  (void)overflow;
  return edge;  // overflow bucket: the last finite edge is the best bound
}

}  // namespace

double Histogram::quantile(double q) const {
  return quantileFromBins(
      q, opts_, underflow(), overflow(), count(),
      [this](std::size_t k) { return binCount(k); });
}

double MetricsSnapshot::HistogramEntry::quantile(double q) const {
  return quantileFromBins(
      q, options, underflow, overflow, count,
      [this](std::size_t k) { return counts[k]; });
}

void Histogram::reset() {
  for (std::size_t k = 0; k < opts_.bins; ++k)
    counts_[k].store(0, std::memory_order_relaxed);
  underflow_.store(0, std::memory_order_relaxed);
  overflow_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : counters_)
    if (entry.name == name) return *entry.instrument;
  counters_.push_back({name, std::make_unique<Counter>()});
  return *counters_.back().instrument;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : gauges_)
    if (entry.name == name) return *entry.instrument;
  gauges_.push_back({name, std::make_unique<Gauge>()});
  return *gauges_.back().instrument;
}

Histogram& Registry::histogram(const std::string& name,
                               const HistogramOptions& opts) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : histograms_)
    if (entry.name == name) return *entry.instrument;
  histograms_.push_back({name, std::make_unique<Histogram>(opts)});
  return *histograms_.back().instrument;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : counters_)
    snap.counters.push_back({entry.name, entry.instrument->value()});
  for (const auto& entry : gauges_)
    snap.gauges.push_back({entry.name, entry.instrument->value()});
  for (const auto& entry : histograms_) {
    MetricsSnapshot::HistogramEntry h;
    h.name = entry.name;
    h.options = entry.instrument->options();
    h.counts.resize(h.options.bins);
    for (std::size_t k = 0; k < h.options.bins; ++k)
      h.counts[k] = entry.instrument->binCount(k);
    h.underflow = entry.instrument->underflow();
    h.overflow = entry.instrument->overflow();
    h.count = entry.instrument->count();
    h.sum = entry.instrument->sum();
    snap.histograms.push_back(std::move(h));
  }
  const auto byName = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), byName);
  std::sort(snap.gauges.begin(), snap.gauges.end(), byName);
  std::sort(snap.histograms.begin(), snap.histograms.end(), byName);
  return snap;
}

void Registry::resetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : counters_) entry.instrument->reset();
  for (auto& entry : gauges_) entry.instrument->reset();
  for (auto& entry : histograms_) entry.instrument->reset();
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& entry : counters)
    if (entry.name == name) return entry.value;
  return 0;
}

double MetricsSnapshot::gauge(const std::string& name) const {
  for (const auto& entry : gauges)
    if (entry.name == name) return entry.value;
  return 0.0;
}

Registry& registry() {
  // Leaked on purpose: instrumented code (pool workers, static dtors) may
  // still record during shutdown.
  static Registry* r = new Registry();
  return *r;
}

}  // namespace uniq::obs
