#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/telemetry.h"

namespace uniq::obs {

/// Sanitize a metric name for the Prometheus text exposition format:
/// every character outside [a-zA-Z0-9_:] becomes '_' and the result is
/// prefixed with "uniq_" (which also keeps leading digits legal).
std::string prometheusName(const std::string& name);

/// Render a snapshot in Prometheus text exposition format 0.0.4:
/// counters gain a _total suffix, gauges export as-is, histograms export
/// cumulative _bucket{le="..."} series (underflow folded into the first
/// bucket, +Inf equal to _count) plus _sum and _count. When `window` is
/// non-null its per-window quantiles export as <name>_window_q{q="..."}
/// gauges and rates as <name>_rate gauges; when `slo` is non-null each
/// rule exports uniq_slo_{value,limit,breached}{rule="..."} series.
std::string prometheusText(const MetricsSnapshot& snapshot,
                           const TelemetryWindow* window = nullptr,
                           const std::vector<SloStatus>* slo = nullptr);

/// Minimal localhost HTTP server for scraping telemetry: binds 127.0.0.1
/// on the requested port (0 = ephemeral; see port()), accepts one
/// connection at a time on a background thread, and answers every request
/// with 200 OK and the content callback's output. Not a general web
/// server — no TLS, no routing, no keep-alive — just enough for
/// `curl localhost:PORT/metrics`, Prometheus, and `uniq monitor`.
class ScrapeServer {
 public:
  using ContentFn = std::function<std::string()>;

  /// Binds and starts serving immediately. Throws common::Error (via
  /// UNIQ_REQUIRE) when the port cannot be bound.
  ScrapeServer(ContentFn content, std::uint16_t port);
  ~ScrapeServer();

  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  /// The actually bound port (resolves port 0 requests).
  std::uint16_t port() const { return port_; }

  /// Stop accepting and join the serving thread. Idempotent; the
  /// destructor calls it.
  void stop();

 private:
  void serveLoop();

  ContentFn content_;
  int listenFd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

/// Blocking one-shot HTTP GET against 127.0.0.1:`port` (the client half of
/// ScrapeServer, reused by `uniq monitor` and tests). Returns false on
/// connect/read failure; on success fills `body` with the response body
/// (headers stripped).
bool httpGet(std::uint16_t port, const std::string& path, std::string* body,
             std::string* error = nullptr);

}  // namespace uniq::obs
