#include "obs/slo.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "obs/json_check.h"

namespace uniq::obs {

namespace {

/// Minimal JSON DOM for the SLO rules file. json_check.h deliberately
/// builds no DOM, and the rules schema is tiny, so a small recursive
/// parser here beats pulling in a dependency. Input is syntax-checked with
/// validateJson() first, so this parser only needs to extract values.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue* out) {
    skipWs();
    if (!parseValue(out)) return false;
    skipWs();
    return pos_ == text_.size();
  }

 private:
  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return parseObject(out);
      case '[':
        return parseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return parseString(&out->str);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return literal("null");
      default:
        return parseNumber(out);
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parseNumber(JsonValue* out) {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(begin, &end);
    if (end == begin) return false;
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  bool parseString(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u':
            // Rule names/metrics are ASCII; keep \u escapes literal rather
            // than decoding UTF-16 surrogates nobody writes in a config.
            if (pos_ + 4 > text_.size()) return false;
            *out += "\\u";
            *out += text_.substr(pos_, 4);
            pos_ += 4;
            break;
          default: return false;
        }
      } else {
        *out += c;
      }
    }
    return false;
  }

  bool parseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    if (!consume('[')) return false;
    skipWs();
    if (consume(']')) return true;
    while (true) {
      JsonValue item;
      skipWs();
      if (!parseValue(&item)) return false;
      out->items.push_back(std::move(item));
      skipWs();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    if (!consume('{')) return false;
    skipWs();
    if (consume('}')) return true;
    while (true) {
      std::string key;
      skipWs();
      if (!parseString(&key)) return false;
      skipWs();
      if (!consume(':')) return false;
      skipWs();
      JsonValue value;
      if (!parseValue(&value)) return false;
      out->members.emplace_back(std::move(key), std::move(value));
      skipWs();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

/// Merge `delta` into `into` (same layout assumed; mismatches skipped so a
/// reconfigured histogram cannot corrupt the merge).
void mergeDelta(MetricsSnapshot::HistogramEntry* into,
                const MetricsSnapshot::HistogramEntry& delta) {
  if (into->counts.empty()) {
    *into = delta;
    return;
  }
  if (into->counts.size() != delta.counts.size()) return;
  for (std::size_t k = 0; k < delta.counts.size(); ++k)
    into->counts[k] += delta.counts[k];
  into->underflow += delta.underflow;
  into->overflow += delta.overflow;
  into->count += delta.count;
  into->sum += delta.sum;
}

}  // namespace

SloEvaluator::SloEvaluator(Registry& reg, std::vector<SloRule> rules)
    : reg_(reg), rules_(std::move(rules)) {
  for (const auto& rule : rules_)
    maxWindowS_ = std::max(maxWindowS_, rule.windowS);
  status_.resize(rules_.size());
  for (std::size_t i = 0; i < rules_.size(); ++i) status_[i].rule = rules_[i];
}

bool SloEvaluator::parseRules(const std::string& json,
                              std::vector<SloRule>* rules,
                              std::string* error) {
  rules->clear();
  std::string syntaxError;
  if (!validateJson(json, &syntaxError))
    return fail(error, "slo rules: " + syntaxError);
  JsonValue root;
  if (!JsonParser(json).parse(&root) ||
      root.type != JsonValue::Type::kObject)
    return fail(error, "slo rules: top level must be a JSON object");
  const JsonValue* list = root.find("rules");
  if (list == nullptr || list->type != JsonValue::Type::kArray)
    return fail(error, "slo rules: missing \"rules\" array");
  for (std::size_t i = 0; i < list->items.size(); ++i) {
    const JsonValue& item = list->items[i];
    const std::string where = "slo rule #" + std::to_string(i);
    if (item.type != JsonValue::Type::kObject)
      return fail(error, where + ": must be an object");
    SloRule rule;
    const auto str = [&](const char* key, std::string* out) {
      const JsonValue* v = item.find(key);
      if (v == nullptr) return true;
      if (v->type != JsonValue::Type::kString) return false;
      *out = v->str;
      return true;
    };
    const auto num = [&](const char* key, double* out) {
      const JsonValue* v = item.find(key);
      if (v == nullptr) return true;
      if (v->type != JsonValue::Type::kNumber) return false;
      *out = v->number;
      return true;
    };
    std::string objective = "quantile";
    if (!str("name", &rule.name))
      return fail(error, where + ": \"name\" must be a string");
    if (!str("metric", &rule.metric))
      return fail(error, where + ": \"metric\" must be a string");
    if (!str("objective", &objective))
      return fail(error, where + ": \"objective\" must be a string");
    if (!num("quantile", &rule.quantile))
      return fail(error, where + ": \"quantile\" must be a number");
    if (!num("threshold", &rule.threshold))
      return fail(error, where + ": \"threshold\" must be a number");
    if (!num("window_s", &rule.windowS))
      return fail(error, where + ": \"window_s\" must be a number");
    if (!num("burn_rate", &rule.burnRate))
      return fail(error, where + ": \"burn_rate\" must be a number");
    if (rule.name.empty())
      return fail(error, where + ": \"name\" is required");
    if (rule.metric.empty())
      return fail(error, where + ": \"metric\" is required");
    if (objective == "quantile") {
      rule.objective = SloObjective::kQuantile;
    } else if (objective == "rate") {
      rule.objective = SloObjective::kRate;
    } else if (objective == "gauge") {
      rule.objective = SloObjective::kGauge;
    } else {
      return fail(error, where + ": unknown objective \"" + objective + "\"");
    }
    if (!(rule.quantile >= 0.0 && rule.quantile <= 1.0))
      return fail(error, where + ": quantile must be in [0, 1]");
    if (!(rule.threshold > 0.0))
      return fail(error, where + ": threshold must be positive");
    if (!(rule.windowS > 0.0))
      return fail(error, where + ": window_s must be positive");
    if (!(rule.burnRate > 0.0))
      return fail(error, where + ": burn_rate must be positive");
    for (const auto& existing : *rules)
      if (existing.name == rule.name)
        return fail(error, where + ": duplicate rule name \"" + rule.name +
                               "\"");
    rules->push_back(std::move(rule));
  }
  return true;
}

double SloEvaluator::evaluateRule(const SloRule& rule,
                                  bool* measurable) const {
  // Caller holds mutex_; history_ is newest-last.
  *measurable = false;
  if (history_.empty()) return 0.0;
  const TelemetryWindow& latest = history_.back();
  const double cutoffMs = latest.atMs - rule.windowS * 1000.0;

  switch (rule.objective) {
    case SloObjective::kGauge: {
      for (const auto& g : latest.cumulative.gauges) {
        if (g.name == rule.metric) {
          *measurable = true;
          return g.value;
        }
      }
      return 0.0;
    }
    case SloObjective::kRate: {
      double delta = 0.0;
      double dtMs = 0.0;
      bool seen = false;
      for (const auto& w : history_) {
        if (w.atMs <= cutoffMs && &w != &latest) continue;
        const auto* r = w.counterRate(rule.metric);
        if (r == nullptr) continue;
        seen = true;
        delta += static_cast<double>(r->delta);
        dtMs += w.dtMs;
      }
      if (!seen || dtMs <= 0.0) return 0.0;
      *measurable = true;
      return delta / (dtMs / 1000.0);
    }
    case SloObjective::kQuantile: {
      MetricsSnapshot::HistogramEntry merged;
      for (const auto& w : history_) {
        if (w.atMs <= cutoffMs && &w != &latest) continue;
        const auto* h = w.histogramWindow(rule.metric);
        if (h == nullptr) continue;
        mergeDelta(&merged, h->delta);
      }
      if (merged.count == 0) return 0.0;
      *measurable = true;
      return merged.quantile(rule.quantile);
    }
  }
  return 0.0;
}

void SloEvaluator::observe(const TelemetryWindow& window) {
  std::vector<SloStatus> statuses;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    history_.push_back(window);
    // Retain just enough trailing history to cover the widest rule window
    // (always keep the latest so every rule sees at least one window).
    const double cutoffMs = window.atMs - maxWindowS_ * 1000.0;
    while (history_.size() > 1 && history_.front().atMs < cutoffMs)
      history_.pop_front();

    for (std::size_t i = 0; i < rules_.size(); ++i) {
      const SloRule& rule = rules_[i];
      SloStatus& st = status_[i];
      const bool wasBreached = st.breached;
      st.limit = rule.threshold * rule.burnRate;
      st.value = evaluateRule(rule, &st.measurable);
      st.breached = st.measurable && st.value > st.limit;
      if (st.breached && !wasBreached) {
        SloBreach breach;
        breach.rule = rule.name;
        breach.value = st.value;
        breach.limit = st.limit;
        breach.atMs = window.atMs;
        breach.windowSeq = window.seq;
        breaches_.push_back(std::move(breach));
      }
      if (st.breached) everBreached_ = true;
    }
    statuses = status_;
  }

  std::uint64_t breachedWindows = 0;
  for (const auto& st : statuses) {
    const std::string base = "slo." + st.rule.name;
    reg_.gauge(base + ".value").set(st.measurable ? st.value : 0.0);
    reg_.gauge(base + ".limit").set(st.limit);
    reg_.gauge(base + ".breached").set(st.breached ? 1.0 : 0.0);
    if (st.breached) ++breachedWindows;
  }
  if (breachedWindows > 0) reg_.counter("slo.breach_windows").inc();
}

std::vector<SloStatus> SloEvaluator::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_;
}

std::vector<SloBreach> SloEvaluator::breaches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return breaches_;
}

bool SloEvaluator::anyBreached() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return everBreached_;
}

}  // namespace uniq::obs
