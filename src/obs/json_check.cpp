#include "obs/json_check.h"

#include <cctype>
#include <cstdio>

namespace uniq::obs {

namespace {

/// Recursive-descent validator over a string_view. Tracks only a cursor;
/// errors unwind as false with the offset of the first offending byte.
class Checker {
 public:
  explicit Checker(std::string_view text) : text_(text) {}

  bool run(std::string* error) {
    skipWs();
    if (!value()) {
      fill(error);
      return false;
    }
    skipWs();
    if (pos_ != text_.size()) {
      reason_ = "trailing characters after top-level value";
      fill(error);
      return false;
    }
    return true;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  bool fail(const char* reason) {
    if (!reason_) reason_ = reason;
    return false;
  }

  void fill(std::string* error) const {
    if (!error) return;
    char buf[128];
    std::snprintf(buf, sizeof(buf), "invalid JSON at byte %zu: %s", pos_,
                  reason_ ? reason_ : "malformed value");
    *error = buf;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skipWs() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("unknown literal");
    pos_ += word.size();
    return true;
  }

  bool value() {
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    bool ok;
    if (eof()) {
      ok = fail("unexpected end of input");
    } else {
      switch (peek()) {
        case '{':
          ok = object();
          break;
        case '[':
          ok = array();
          break;
        case '"':
          ok = string();
          break;
        case 't':
          ok = literal("true");
          break;
        case 'f':
          ok = literal("false");
          break;
        case 'n':
          ok = literal("null");
          break;
        default:
          ok = number();
      }
    }
    --depth_;
    return ok;
  }

  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skipWs();
      if (eof() || peek() != '"') return fail("expected object key string");
      if (!string()) return false;
      skipWs();
      if (eof() || peek() != ':') return fail("expected ':' after key");
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array() {
    ++pos_;  // '['
    skipWs();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool string() {
    ++pos_;  // opening quote
    while (!eof()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (eof()) return fail("unterminated escape");
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i])))
              return fail("bad \\u escape");
          }
          pos_ += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return fail("unknown escape character");
        }
      }
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return fail("expected digit");
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    if (!eof() && peek() == '-') ++pos_;
    if (eof()) return fail("expected number");
    if (peek() == '0') {
      ++pos_;  // leading zero must stand alone
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
  const char* reason_ = nullptr;
};

}  // namespace

bool validateJson(std::string_view text, std::string* error) {
  return Checker(text).run(error);
}

}  // namespace uniq::obs
