#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "obs/metrics.h"

namespace uniq::obs {

namespace {

using Clock = std::chrono::steady_clock;

/// What the record path stores: a plain POD with the span-name *pointer*
/// (names are required to be static literals, so no copy is needed on the
/// hot path — the std::string in the public SpanRecord is materialized
/// only when a snapshot is taken).
struct RawRecord {
  const char* name;
  std::uint64_t id;
  std::uint64_t parent;
  std::uint32_t depth;
  std::uint32_t tid;
  TraceId traceId;
  double startUs;
  double durUs;
};

/// Spans completed on one thread. The owning thread appends under `mutex`;
/// the lock is uncontended except while another thread drains, which keeps
/// the record path cheap ("lock-free enough") without losing spans that
/// finish concurrently with an export.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<RawRecord> records;
  std::uint32_t tid = 0;
};

struct TraceState {
  std::mutex mutex;  ///< guards `buffers` and epoch swaps
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  Clock::time_point epoch = Clock::now();
  std::atomic<std::uint64_t> nextSpanId{1};
  std::atomic<std::uint64_t> nextTraceId{1};
  std::atomic<std::uint32_t> nextTid{1};
  std::atomic<bool> enabled{true};
  std::atomic<std::size_t> maxSpansPerThread{1u << 18};
};

TraceState& state() {
  // Leaked on purpose: spans may still complete during static destruction.
  static TraceState* s = [] {
    auto* t = new TraceState();
    if (const char* env = std::getenv("UNIQ_OBSERVABILITY")) {
      if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
          std::strcmp(env, "false") == 0) {
        t->enabled.store(false, std::memory_order_relaxed);
      }
    }
    if (const char* env = std::getenv("UNIQ_TRACE_MAX_SPANS")) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(env, &end, 10);
      if (end != env) {
        t->maxSpansPerThread.store(static_cast<std::size_t>(parsed),
                                   std::memory_order_relaxed);
      }
    }
    return t;
  }();
  return *s;
}

/// Spans dropped by the per-thread buffer cap. Lives in the process-wide
/// registry so serve-load exports and the scrape endpoint surface it.
Counter& droppedCounter() {
  static Counter& c = registry().counter("obs.trace.dropped");
  return c;
}

/// The calling thread's active trace context (0 = none). A plain
/// thread_local: reads cost a few nanoseconds on the span hot path.
thread_local TraceId tlTraceId = 0;

/// Per-thread recording context. The buffer is shared with the global list
/// so records survive thread exit; the open-span stack is touched only by
/// the owning thread.
struct ThreadContext {
  std::shared_ptr<ThreadBuffer> buffer;
  std::vector<std::uint64_t> openIds;

  ThreadContext() : buffer(std::make_shared<ThreadBuffer>()) {
    auto& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    buffer->tid = s.nextTid.fetch_add(1, std::memory_order_relaxed);
    s.buffers.push_back(buffer);
  }
};

ThreadContext& threadContext() {
  thread_local ThreadContext ctx;
  return ctx;
}

}  // namespace

TraceId newTraceId() {
  return state().nextTraceId.fetch_add(1, std::memory_order_relaxed);
}

TraceId currentTraceId() { return tlTraceId; }

TraceContextScope::TraceContextScope(TraceId id) : prev_(tlTraceId) {
  tlTraceId = id;
}

TraceContextScope::~TraceContextScope() { tlTraceId = prev_; }

std::size_t traceMaxSpansPerThread() {
  return state().maxSpansPerThread.load(std::memory_order_relaxed);
}

void setTraceMaxSpansPerThread(std::size_t cap) {
  state().maxSpansPerThread.store(cap, std::memory_order_relaxed);
}

bool traceEnabled() {
  return state().enabled.load(std::memory_order_relaxed);
}

void setTraceEnabled(bool enabled) {
  state().enabled.store(enabled, std::memory_order_relaxed);
}

double nowUs() {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   state().epoch)
      .count();
}

void clearTrace() {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (auto& buffer : s.buffers) {
    std::lock_guard<std::mutex> bufLock(buffer->mutex);
    buffer->records.clear();
  }
  s.epoch = Clock::now();
}

std::vector<SpanRecord> collectSpans() {
  auto& s = state();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    buffers = s.buffers;
  }
  std::vector<SpanRecord> all;
  for (auto& buffer : buffers) {
    std::lock_guard<std::mutex> bufLock(buffer->mutex);
    all.reserve(all.size() + buffer->records.size());
    for (const auto& raw : buffer->records) {
      SpanRecord rec;
      rec.name = raw.name;
      rec.id = raw.id;
      rec.parent = raw.parent;
      rec.depth = raw.depth;
      rec.tid = raw.tid;
      rec.traceId = raw.traceId;
      rec.startUs = raw.startUs;
      rec.durUs = raw.durUs;
      all.push_back(std::move(rec));
    }
  }
  std::sort(all.begin(), all.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.startUs != b.startUs ? a.startUs < b.startUs
                                            : a.id < b.id;
            });
  return all;
}

Span::Span(const char* name) : name_(name) {
  if (!traceEnabled()) return;
  auto& ctx = threadContext();
  id_ = state().nextSpanId.fetch_add(1, std::memory_order_relaxed);
  parent_ = ctx.openIds.empty() ? 0 : ctx.openIds.back();
  depth_ = static_cast<std::uint32_t>(ctx.openIds.size());
  traceId_ = tlTraceId;
  ctx.openIds.push_back(id_);
  active_ = true;
  startUs_ = nowUs();
}

Span::~Span() {
  if (!active_) return;
  const double endUs = nowUs();
  auto& ctx = threadContext();
  ctx.openIds.pop_back();
  RawRecord record;
  record.name = name_;
  record.id = id_;
  record.parent = parent_;
  record.depth = depth_;
  record.tid = ctx.buffer->tid;
  record.traceId = traceId_;
  record.startUs = startUs_;
  record.durUs = endUs - startUs_;
  const std::size_t cap = traceMaxSpansPerThread();
  {
    std::lock_guard<std::mutex> lock(ctx.buffer->mutex);
    if (cap == 0 || ctx.buffer->records.size() < cap) {
      ctx.buffer->records.push_back(record);
      return;
    }
  }
  // Buffer full: drop the span (never grow without bound) and count it.
  droppedCounter().inc();
}

}  // namespace uniq::obs
