#include "obs/telemetry.h"

#include <algorithm>

namespace uniq::obs {

namespace {

/// Cumulative value of counter `name` in `snap`, or 0 when absent (a
/// counter registered mid-run has no previous value; treating it as 0
/// makes its first window delta equal its full value, which is right).
std::uint64_t counterIn(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& c : snap.counters)
    if (c.name == name) return c.value;
  return 0;
}

const MetricsSnapshot::HistogramEntry* histogramIn(
    const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& h : snap.histograms)
    if (h.name == name) return &h;
  return nullptr;
}

/// `cur - prev` per bucket, saturating at 0 so a resetAll() between ticks
/// produces an empty window instead of wrapped-around garbage.
MetricsSnapshot::HistogramEntry histogramDelta(
    const MetricsSnapshot::HistogramEntry& cur,
    const MetricsSnapshot::HistogramEntry* prev) {
  MetricsSnapshot::HistogramEntry d = cur;
  if (prev == nullptr || prev->counts.size() != cur.counts.size()) return d;
  const auto sub = [](std::uint64_t a, std::uint64_t b) {
    return a >= b ? a - b : 0;
  };
  for (std::size_t k = 0; k < d.counts.size(); ++k)
    d.counts[k] = sub(cur.counts[k], prev->counts[k]);
  d.underflow = sub(cur.underflow, prev->underflow);
  d.overflow = sub(cur.overflow, prev->overflow);
  d.count = sub(cur.count, prev->count);
  d.sum = cur.sum >= prev->sum ? cur.sum - prev->sum : 0.0;
  return d;
}

}  // namespace

const TelemetryWindow::CounterRate* TelemetryWindow::counterRate(
    const std::string& name) const {
  for (const auto& r : counterRates)
    if (r.name == name) return &r;
  return nullptr;
}

const TelemetryWindow::HistogramWindow* TelemetryWindow::histogramWindow(
    const std::string& name) const {
  for (const auto& h : histogramWindows)
    if (h.name == name) return &h;
  return nullptr;
}

TelemetrySampler::TelemetrySampler(Registry& reg,
                                   const TelemetrySamplerOptions& opts)
    : reg_(reg), opts_(opts), startTime_(std::chrono::steady_clock::now()) {
  if (opts_.ringCapacity == 0) opts_.ringCapacity = 1;
}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::start() {
  std::lock_guard<std::mutex> lock(runMutex_);
  if (threadRunning_) return;
  stopping_ = false;
  threadRunning_ = true;
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(runMutex_);
    while (!stopping_) {
      const auto interval = std::chrono::milliseconds(opts_.intervalMs);
      if (stopCv_.wait_for(lock, interval, [this] { return stopping_; }))
        break;
      lock.unlock();
      sampleNow();
      lock.lock();
    }
  });
}

void TelemetrySampler::stop() {
  std::thread toJoin;
  {
    std::lock_guard<std::mutex> lock(runMutex_);
    if (!threadRunning_) return;
    stopping_ = true;
    stopCv_.notify_all();
    toJoin = std::move(thread_);
    threadRunning_ = false;
  }
  if (toJoin.joinable()) toJoin.join();
}

bool TelemetrySampler::running() const {
  std::lock_guard<std::mutex> lock(runMutex_);
  return threadRunning_;
}

TelemetryWindow TelemetrySampler::sampleNow() {
  // Snapshot outside the tick lock: registry snapshotting takes the
  // registry mutex and can be slow with many instruments.
  MetricsSnapshot snap = reg_.snapshot();
  const double atMs =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - startTime_)
          .count();

  std::vector<WindowCallback> callbacks;
  TelemetryWindow window;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    window.seq = seq_++;
    window.atMs = atMs;
    window.dtMs = havePrev_ ? std::max(0.0, atMs - prevAtMs_) : atMs;
    const double dtSec = window.dtMs / 1000.0;

    for (const auto& c : snap.counters) {
      TelemetryWindow::CounterRate rate;
      rate.name = c.name;
      const std::uint64_t before = havePrev_ ? counterIn(prev_, c.name) : 0;
      rate.delta = c.value >= before ? c.value - before : 0;
      rate.perSec =
          dtSec > 0.0 ? static_cast<double>(rate.delta) / dtSec : 0.0;
      window.counterRates.push_back(std::move(rate));
    }
    for (const auto& h : snap.histograms) {
      TelemetryWindow::HistogramWindow hw;
      hw.name = h.name;
      hw.delta = histogramDelta(
          h, havePrev_ ? histogramIn(prev_, h.name) : nullptr);
      hw.count = hw.delta.count;
      hw.p50 = hw.delta.quantile(0.50);
      hw.p90 = hw.delta.quantile(0.90);
      hw.p99 = hw.delta.quantile(0.99);
      window.histogramWindows.push_back(std::move(hw));
    }
    window.cumulative = snap;

    prev_ = std::move(snap);
    havePrev_ = true;
    prevAtMs_ = atMs;

    ring_.push_back(window);
    while (ring_.size() > opts_.ringCapacity) ring_.pop_front();
    callbacks = callbacks_;
  }

  if (opts_.exportGauges) {
    // Registry lookups lock a mutex, but this runs once per tick (a few Hz
    // at most), so the cost is irrelevant — and per-instance caching would
    // be wrong for samplers over different registries.
    reg_.gauge("obs.telemetry.window_seq").set(static_cast<double>(window.seq));
    reg_.gauge("obs.telemetry.window_dt_ms").set(window.dtMs);
  }
  for (const auto& cb : callbacks) cb(window);
  return window;
}

void TelemetrySampler::onWindow(WindowCallback cb) {
  std::lock_guard<std::mutex> lock(mutex_);
  callbacks_.push_back(std::move(cb));
}

std::vector<TelemetryWindow> TelemetrySampler::windows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

TelemetryWindow TelemetrySampler::latest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.empty() ? TelemetryWindow{} : ring_.back();
}

std::uint64_t TelemetrySampler::windowCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seq_;
}

}  // namespace uniq::obs
