#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace uniq::obs {

/// Serialize spans as Chrome trace_event JSON (the "Trace Event Format"):
/// one complete ("ph":"X") event per span with microsecond timestamps.
/// Spans are grouped by trace context — pid is the span's trace id (1 for
/// context-less spans) with a process_name metadata row per trace — so the
/// viewer shows one lane per job rather than one flat lane per thread.
/// Open the result at chrome://tracing or https://ui.perfetto.dev.
std::string traceEventJson(const std::vector<SpanRecord>& spans);

/// Serialize a metrics snapshot as a flat JSON document with "counters",
/// "gauges", and "histograms" objects (see docs/OBSERVABILITY.md for the
/// exact schema).
std::string metricsJson(const MetricsSnapshot& snapshot);

/// Write `content` to `path`, overwriting. Returns false (and fills
/// `error` when non-null) on I/O failure instead of throwing, so exporters
/// can run in destruction paths.
bool writeTextFile(const std::string& path, const std::string& content,
                   std::string* error = nullptr);

/// Escape a string for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string jsonEscape(const std::string& s);

}  // namespace uniq::obs
