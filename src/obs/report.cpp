#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/export.h"
#include "obs/trace.h"

namespace uniq::obs {

namespace {

/// Short fixed-point rendering for table cells: residuals and timings read
/// better at a stable precision than with %g's exponent flips.
std::string formatValue(double v) {
  char buf[48];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

}  // namespace

const char* severityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

void RunReport::diagnose(std::string stage, Severity severity,
                         std::string message, std::vector<std::size_t> stops) {
  diagnostics.push_back(Diagnostic{std::move(stage), severity,
                                   std::move(message), std::move(stops)});
}

Severity RunReport::worstSeverity() const {
  Severity worst = Severity::kInfo;
  for (const auto& d : diagnostics)
    if (static_cast<int>(d.severity) > static_cast<int>(worst))
      worst = d.severity;
  return worst;
}

std::string RunReport::diagnosticsText() const {
  std::ostringstream os;
  for (const auto& d : diagnostics) {
    os << "  [" << severityName(d.severity) << "] " << d.stage << ": "
       << d.message;
    if (!d.stops.empty()) {
      os << " (stops ";
      for (std::size_t i = 0; i < d.stops.size(); ++i) {
        if (i > 0) os << ", ";
        os << d.stops[i];
      }
      os << ")";
    }
    os << "\n";
  }
  return os.str();
}

void StageReport::set(const std::string& key, double v) {
  for (auto& kv : values) {
    if (kv.first == key) {
      kv.second = v;
      return;
    }
  }
  values.emplace_back(key, v);
}

double StageReport::value(const std::string& key, double fallback) const {
  for (const auto& kv : values)
    if (kv.first == key) return kv.second;
  return fallback;
}

bool StageReport::has(const std::string& key) const {
  for (const auto& kv : values)
    if (kv.first == key) return true;
  return false;
}

StageReport& RunReport::stage(const std::string& name) {
  for (auto& s : stages)
    if (s.name == name) return s;
  stages.push_back(StageReport{name, 0.0, {}});
  return stages.back();
}

const StageReport* RunReport::find(const std::string& name) const {
  for (const auto& s : stages)
    if (s.name == name) return &s;
  return nullptr;
}

std::vector<std::string> RunReport::stageNames() const {
  std::vector<std::string> names;
  names.reserve(stages.size());
  for (const auto& s : stages) names.push_back(s.name);
  return names;
}

std::string RunReport::summaryTable() const {
  // Column widths from content so the table stays aligned however large
  // the numbers get.
  std::size_t nameWidth = 5;  // "stage"
  std::size_t timeWidth = 7;  // "wall ms"
  double totalMs = 0.0;
  std::vector<std::string> times;
  for (const auto& s : stages) {
    nameWidth = std::max(nameWidth, s.name.size());
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", s.wallMs);
    times.emplace_back(buf);
    timeWidth = std::max(timeWidth, times.back().size());
    totalMs += s.wallMs;
  }
  char totalBuf[32];
  std::snprintf(totalBuf, sizeof(totalBuf), "%.2f", totalMs);
  const std::string totalStr(totalBuf);
  timeWidth = std::max(timeWidth, totalStr.size());

  std::ostringstream os;
  os << "  " << std::string(nameWidth - 5, ' ') << "stage  "
     << std::string(timeWidth - 7, ' ') << "wall ms  details\n";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const auto& s = stages[i];
    os << "  " << std::string(nameWidth - s.name.size(), ' ') << s.name
       << "  " << std::string(timeWidth - times[i].size(), ' ') << times[i]
       << "  ";
    bool first = true;
    for (const auto& kv : s.values) {
      if (!first) os << "  ";
      first = false;
      os << kv.first << "=" << formatValue(kv.second);
    }
    os << "\n";
  }
  os << "  " << std::string(nameWidth - 5, ' ') << "total  "
     << std::string(timeWidth - totalStr.size(), ' ') << totalStr << "\n";
  if (!status.empty()) os << "  status: " << status << "\n";
  return os.str();
}

StageTimer::StageTimer(RunReport* report, const char* name)
    : report_(report), name_(name) {
  if (!report_) return;
  running_ = true;
  startUs_ = nowUs();
}

void StageTimer::stop() {
  if (!running_) return;
  running_ = false;
  report_->stage(name_).wallMs = (nowUs() - startUs_) / 1000.0;
}

StageTimer::~StageTimer() { stop(); }

StageReport* StageTimer::stage() const {
  return report_ ? &report_->stage(name_) : nullptr;
}

std::string summarizeMetrics(const MetricsSnapshot& snapshot,
                             const std::vector<std::string>& prefixes) {
  const auto matches = [&](const std::string& name) {
    if (prefixes.empty()) return true;
    return std::any_of(prefixes.begin(), prefixes.end(),
                       [&](const std::string& p) {
                         return name.rfind(p, 0) == 0;
                       });
  };
  std::vector<std::string> lines;
  for (const auto& c : snapshot.counters)
    if (matches(c.name))
      lines.push_back("  " + c.name + " " + std::to_string(c.value) + "\n");
  for (const auto& g : snapshot.gauges)
    if (matches(g.name))
      lines.push_back("  " + g.name + " " + formatValue(g.value) + "\n");
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& line : lines) out += line;
  return out;
}

bool exportMetricsIfRequested() {
  const char* path = std::getenv("UNIQ_METRICS_OUT");
  if (!path || !*path) return false;
  return writeTextFile(path, metricsJson(registry().snapshot()));
}

}  // namespace uniq::obs
