#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace uniq::obs {

/// Monotonic event counter. Increments are relaxed atomics, safe and cheap
/// from any thread (including pool workers in tight loops).
class Counter {
 public:
  /// Add `n` to the counter.
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Current value.
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  /// Reset to zero (used by stat-reset hooks such as dsp::resetFftStats).
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value (or running-max) instrument for levels like queue depth or
/// cache size. All operations are thread-safe.
class Gauge {
 public:
  /// Overwrite the gauge with `v`.
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Raise the gauge to `v` if `v` is larger (high-water-mark semantics).
  void setMax(double v) {
    double prev = value_.load(std::memory_order_relaxed);
    while (v > prev &&
           !value_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  /// Add `delta` (may be negative) atomically — up/down-counter semantics
  /// for levels maintained incrementally, like a service queue depth.
  void add(double delta) {
    double prev = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(prev, prev + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  /// Current value.
  double value() const { return value_.load(std::memory_order_relaxed); }
  /// Reset to zero.
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bin layout for a log-scale histogram: `bins` buckets where bucket k
/// covers [lo * growth^k, lo * growth^(k+1)), plus implicit underflow
/// (v < lo, including zero and negatives) and overflow buckets.
struct HistogramOptions {
  double lo = 1.0;      ///< lower edge of bucket 0 (must be > 0)
  double growth = 2.0;  ///< per-bucket multiplicative width (must be > 1)
  std::size_t bins = 32;  ///< bucket count (excluding under/overflow)
};

/// Fixed-bin log-scale histogram. Observations are atomic per-bucket
/// increments — no locking, safe from concurrent pool workers. Bucket
/// edges are precomputed at construction so edge behaviour is exact:
/// a value equal to an edge lands in the bucket whose range starts there.
class Histogram {
 public:
  explicit Histogram(const HistogramOptions& opts);

  /// Record one observation.
  void observe(double v);

  const HistogramOptions& options() const { return opts_; }
  /// Edges of the finite buckets: edges()[k] is the inclusive lower edge of
  /// bucket k; edges() has bins+1 entries (the last is the overflow edge).
  const std::vector<double>& edges() const { return edges_; }

  /// Count in finite bucket `k`.
  std::uint64_t binCount(std::size_t k) const {
    return counts_[k].load(std::memory_order_relaxed);
  }
  std::uint64_t underflow() const {
    return underflow_.load(std::memory_order_relaxed);
  }
  std::uint64_t overflow() const {
    return overflow_.load(std::memory_order_relaxed);
  }
  /// Total observations (all buckets).
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Sum of all observed values.
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Estimated q-quantile (q clamped to [0, 1]) by log-linear interpolation
  /// inside the owning bucket: the true quantile and the estimate share a
  /// bucket, so the estimate is within a multiplicative factor of `growth`
  /// of the truth (see docs/OBSERVABILITY.md, "Quantile semantics").
  /// Returns 0.0 when the histogram is empty; quantiles landing in the
  /// underflow bucket return the lo edge, overflow returns the last edge.
  double quantile(double q) const;

  /// Zero every bucket and the count/sum (bin layout is kept).
  void reset();

 private:
  HistogramOptions opts_;
  std::vector<double> edges_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> underflow_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Read-only copy of every instrument in a registry, taken atomically
/// enough for reporting (individual values are relaxed-loaded; the set of
/// instruments is exact). Entries are sorted by name.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0.0;
  };
  struct HistogramEntry {
    std::string name;
    HistogramOptions options;
    std::vector<std::uint64_t> counts;  ///< finite buckets
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::uint64_t count = 0;
    double sum = 0.0;

    /// Same log-linear quantile estimate as Histogram::quantile, computed
    /// on the copied bucket counts (usable on per-window deltas too).
    double quantile(double q) const;
  };
  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;

  /// Value of counter `name`, or 0 when absent.
  std::uint64_t counter(const std::string& name) const;
  /// Value of gauge `name`, or 0.0 when absent.
  double gauge(const std::string& name) const;
};

/// Process-wide metrics registry. Instruments are created on first lookup
/// and live for the process lifetime, so call sites may cache the returned
/// reference (typically in a function-local static). Lookups take a mutex;
/// the instruments themselves are lock-free.
class Registry {
 public:
  /// Counter named `name`, created on first use.
  Counter& counter(const std::string& name);
  /// Gauge named `name`, created on first use.
  Gauge& gauge(const std::string& name);
  /// Histogram named `name`; `opts` applies on first use only.
  Histogram& histogram(const std::string& name,
                       const HistogramOptions& opts = {});

  /// Copy of every instrument's current value, sorted by name.
  MetricsSnapshot snapshot() const;

  /// Zero every counter, gauge, and histogram (instruments stay
  /// registered). Tests and per-run reporting use this between runs.
  void resetAll();

 private:
  template <typename T>
  struct Named {
    std::string name;
    std::unique_ptr<T> instrument;
  };
  mutable std::mutex mutex_;
  std::vector<Named<Counter>> counters_;
  std::vector<Named<Gauge>> gauges_;
  std::vector<Named<Histogram>> histograms_;
};

/// The process-wide registry used by the library's own instrumentation
/// (FFT plan cache, thread pool, pipeline stages).
Registry& registry();

}  // namespace uniq::obs
