#pragma once

#include <vector>

#include "geometry/vec2.h"

namespace uniq::room {

/// Rectangular room [0, width] x [0, depth] (2D plan view, matching the
/// library's 2D HRTF scope). Implements the paper's Section 7 follow-up:
/// "a real immersive experience can only be achieved by filtering the
/// earphone sound with both the room impulse response (RIR) and the HRTF".
struct RoomGeometry {
  double widthM = 6.0;
  double depthM = 4.0;
  /// Wall amplitude reflection coefficient in [0, 1) (1 - absorption).
  double wallReflection = 0.6;
  /// Maximum reflection order to expand in the image-source method.
  int maxOrder = 3;
};

/// One virtual (image) source produced by mirroring the real source over
/// the walls. `gain` carries the accumulated wall reflection losses but not
/// the distance spreading (the renderer applies 1/r per listener position).
struct ImageSource {
  geo::Vec2 position{};
  double gain = 1.0;
  int order = 0;  ///< total number of wall reflections
};

/// Expand all image sources up to geometry.maxOrder for a real source
/// inside the room. The order-0 entry (the direct source) comes first.
std::vector<ImageSource> computeImageSources(const RoomGeometry& geometry,
                                             geo::Vec2 source);

/// Total reverberant-to-direct energy ratio at a listener position
/// (diagnostic; direct = order 0).
double reverberantToDirectRatio(const std::vector<ImageSource>& images,
                                geo::Vec2 listener);

}  // namespace uniq::room
