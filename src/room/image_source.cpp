#include "room/image_source.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace uniq::room {

std::vector<ImageSource> computeImageSources(const RoomGeometry& geometry,
                                             geo::Vec2 source) {
  UNIQ_REQUIRE(geometry.widthM > 0 && geometry.depthM > 0, "bad room size");
  UNIQ_REQUIRE(geometry.wallReflection >= 0 && geometry.wallReflection < 1,
               "wall reflection must be in [0, 1)");
  UNIQ_REQUIRE(geometry.maxOrder >= 0 && geometry.maxOrder <= 8,
               "maxOrder out of range [0, 8]");
  UNIQ_REQUIRE(source.x > 0 && source.x < geometry.widthM && source.y > 0 &&
                   source.y < geometry.depthM,
               "source must be inside the room");

  // Classic 2D image-source expansion for a rectangle: along each axis the
  // image coordinates are 2*p*L + s (even images, |2p| wall hits) and
  // 2*p*L - s (odd images, |2p - 1| wall hits).
  struct AxisImage {
    double coord;
    int hits;
  };
  const auto axisImages = [&](double s, double length) {
    std::vector<AxisImage> out;
    for (int p = -geometry.maxOrder; p <= geometry.maxOrder; ++p) {
      out.push_back({2.0 * p * length + s, std::abs(2 * p)});
      out.push_back({2.0 * p * length - s, std::abs(2 * p - 1)});
    }
    return out;
  };

  const auto xs = axisImages(source.x, geometry.widthM);
  const auto ys = axisImages(source.y, geometry.depthM);

  std::vector<ImageSource> images;
  for (const auto& xi : xs) {
    for (const auto& yi : ys) {
      const int order = xi.hits + yi.hits;
      if (order > geometry.maxOrder) continue;
      ImageSource img;
      img.position = {xi.coord, yi.coord};
      img.order = order;
      img.gain = std::pow(geometry.wallReflection, order);
      images.push_back(img);
    }
  }
  // Direct source first, then by ascending order (stable, deterministic).
  std::sort(images.begin(), images.end(),
            [](const ImageSource& a, const ImageSource& b) {
              if (a.order != b.order) return a.order < b.order;
              if (a.position.x != b.position.x)
                return a.position.x < b.position.x;
              return a.position.y < b.position.y;
            });
  return images;
}

double reverberantToDirectRatio(const std::vector<ImageSource>& images,
                                geo::Vec2 listener) {
  double direct = 0.0, reverb = 0.0;
  for (const auto& img : images) {
    const double dist = std::max(geo::distance(img.position, listener), 0.1);
    const double amp = img.gain / dist;
    if (img.order == 0) {
      direct += amp * amp;
    } else {
      reverb += amp * amp;
    }
  }
  return direct > 0 ? reverb / direct : 0.0;
}

}  // namespace uniq::room
