#include "room/binaural_reverb.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/math_util.h"
#include "dsp/convolution.h"
#include "dsp/fractional_delay.h"
#include "geometry/polar.h"

namespace uniq::room {

BinauralRoomRenderer::BinauralRoomRenderer(const core::FarFieldTable& hrtf,
                                           RoomGeometry geometry,
                                           Options opts)
    : hrtf_(hrtf), geometry_(geometry), opts_(opts) {
  UNIQ_REQUIRE(hrtf_.byDegree.size() == 181, "HRTF table must cover 0..180");
  UNIQ_REQUIRE(opts_.dynamicRangeDb > 0, "dynamic range must be positive");
}

head::Hrir BinauralRoomRenderer::roomImpulseResponse(geo::Vec2 listener,
                                                     double yawDeg,
                                                     geo::Vec2 source) const {
  UNIQ_REQUIRE(listener.x > 0 && listener.x < geometry_.widthM &&
                   listener.y > 0 && listener.y < geometry_.depthM,
               "listener must be inside the room");
  const auto images = computeImageSources(geometry_, source);
  const double fs = hrtf_.sampleRate;

  // Find the direct amplitude (for the dynamic-range cut) and the latest
  // arrival (for sizing the output).
  double directAmp = 0.0;
  double maxDelaySamples = 0.0;
  for (const auto& img : images) {
    const double dist = std::max(geo::distance(img.position, listener), 0.1);
    if (img.order == 0) directAmp = img.gain / dist;
    maxDelaySamples =
        std::max(maxDelaySamples, dist / kSpeedOfSound * fs);
  }
  UNIQ_CHECK(directAmp > 0, "no direct path found");
  const double cutoff =
      directAmp * std::pow(10.0, -opts_.dynamicRangeDb / 20.0);

  const std::size_t hrirLen = hrtf_.byDegree[0].left.size();
  const auto outLen = static_cast<std::size_t>(maxDelaySamples) + hrirLen +
                      opts_.tailSamples;
  head::Hrir out;
  out.sampleRate = fs;
  out.left.assign(outLen, 0.0);
  out.right.assign(outLen, 0.0);

  for (const auto& img : images) {
    const double dist = std::max(geo::distance(img.position, listener), 0.1);
    const double amp = img.gain / dist;
    if (amp < cutoff) continue;

    // Arrival azimuth in the listener's head frame.
    const geo::Vec2 toImage = img.position - listener;
    const double worldBearing = geo::azimuthDegOfPoint(toImage);
    double rel = worldBearing - yawDeg;
    rel = radToDeg(wrapPi(degToRad(rel)));  // (-180, 180]
    const bool fromRight = rel < 0.0;
    const double tableAngle = clamp(std::fabs(rel), 0.0, 180.0);
    const auto& hrir = hrtf_.at(tableAngle);

    const double delaySamples = dist / kSpeedOfSound * fs;
    // Mirror ears for right-hemifield arrivals (symmetric-head fold).
    const auto& srcL = fromRight ? hrir.right : hrir.left;
    const auto& srcR = fromRight ? hrir.left : hrir.right;
    // The table anchors the earlier ear's tap at its alignSample; shift so
    // that anchor lands at the absolute arrival delay.
    const double anchor =
        std::min(hrtf_.tapLeftSamples[static_cast<std::size_t>(
                     std::lround(tableAngle))],
                 hrtf_.tapRightSamples[static_cast<std::size_t>(
                     std::lround(tableAngle))]);
    for (std::size_t i = 0; i < srcL.size(); ++i) {
      const double pos = delaySamples - anchor + static_cast<double>(i);
      if (pos < 0) continue;
      const auto idx = static_cast<std::size_t>(pos);
      if (idx + 1 >= outLen) break;
      // Linear split of the fractional position (the HRIR is already
      // band-limited, so linear interpolation here is adequate and cheap).
      const double frac = pos - static_cast<double>(idx);
      out.left[idx] += amp * srcL[i] * (1.0 - frac);
      out.left[idx + 1] += amp * srcL[i] * frac;
      out.right[idx] += amp * srcR[i] * (1.0 - frac);
      out.right[idx + 1] += amp * srcR[i] * frac;
    }
  }
  return out;
}

head::BinauralSignal BinauralRoomRenderer::render(
    geo::Vec2 listener, double yawDeg, geo::Vec2 source,
    const std::vector<double>& mono) const {
  UNIQ_REQUIRE(!mono.empty(), "empty source signal");
  const auto rir = roomImpulseResponse(listener, yawDeg, source);
  head::BinauralSignal out;
  out.left = dsp::convolve(mono, rir.left);
  out.right = dsp::convolve(mono, rir.right);
  return out;
}

}  // namespace uniq::room
