#pragma once

#include <vector>

#include "core/near_far.h"
#include "head/hrir.h"
#include "room/image_source.h"

namespace uniq::room {

struct BinauralRoomRendererOptions {
  /// Keep image sources whose direct amplitude (gain/r) falls within this
  /// many dB of the direct path.
  double dynamicRangeDb = 40.0;
  /// Length of the composed binaural room impulse response tail kept after
  /// the latest image arrival, samples.
  std::size_t tailSamples = 256;
};

/// Renders a sound source inside a room to binaural audio: every image
/// source is a plane-wave arrival from its own direction, filtered through
/// the (personalized) far-field HRTF at that angle with the correct delay
/// and level. This is the paper's Section 7 "Integrating Room Multipath"
/// follow-up built on the UNIQ output table.
class BinauralRoomRenderer {
 public:
  using Options = BinauralRoomRendererOptions;

  /// `hrtf` must outlive the renderer. The HRTF table covers azimuths
  /// [0, 180] on the LEFT side; arrivals from the right hemifield use the
  /// mirrored angle with swapped ears (symmetric-head approximation, the
  /// standard practice when only one hemifield is measured).
  BinauralRoomRenderer(const core::FarFieldTable& hrtf,
                       RoomGeometry geometry, Options opts = {});

  /// Compose the binaural room impulse response for a listener at
  /// `listener` facing `yawDeg` (0 = toward +y, the room's depth axis) and
  /// a source at `source` (both in room coordinates, meters).
  head::Hrir roomImpulseResponse(geo::Vec2 listener, double yawDeg,
                                 geo::Vec2 source) const;

  /// Render a mono signal from `source` to the listener's ears.
  head::BinauralSignal render(geo::Vec2 listener, double yawDeg,
                              geo::Vec2 source,
                              const std::vector<double>& mono) const;

  const RoomGeometry& geometry() const { return geometry_; }

 private:
  const core::FarFieldTable& hrtf_;
  RoomGeometry geometry_;
  Options opts_;
};

}  // namespace uniq::room
