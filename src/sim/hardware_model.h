#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "dsp/fft.h"

namespace uniq::sim {

/// Combined speaker + in-ear-microphone frequency response.
///
/// Models the paper's commodity hardware (Figure 16): unusable below
/// ~50 Hz, reasonably flat over 100 Hz - 10 kHz with gentle device-specific
/// ripple, rolling off toward 16 kHz. Every simulated recording passes
/// through this chain, and the UNIQ pipeline must compensate for it
/// (Section 4.6, "System frequency response compensation").
struct HardwareModelOptions {
  double sampleRate = 48000.0;
  double highpassHz = 80.0;
  double lowpassHz = 16000.0;
  double rippleDb = 2.5;        ///< peak-to-peak in-band ripple
  std::uint64_t rippleSeed = 7;
  std::size_t gridSize = 4096;  ///< frequency grid resolution
};

class HardwareModel {
 public:
  using Options = HardwareModelOptions;

  explicit HardwareModel(Options opts = {});

  /// The true complex response sampled on the internal grid (covers
  /// [0, sampleRate) with conjugate symmetry).
  const std::vector<dsp::Complex>& response() const { return response_; }

  double sampleRate() const { return opts_.sampleRate; }

  /// Pass a signal through the speaker-mic chain.
  std::vector<double> apply(const std::vector<double>& signal) const;

  /// Simulate the paper's compensation procedure: play a chirp with the mic
  /// co-located with the speaker and estimate the response by
  /// deconvolution. Returns the (slightly noisy) estimated response on the
  /// same grid as response(). `snrDb` is the co-located recording SNR.
  std::vector<dsp::Complex> estimateResponse(double snrDb, Pcg32& rng) const;

  /// Magnitude (dB) of the true response at a frequency, for reporting.
  double magnitudeDbAt(double freqHz) const;

 private:
  Options opts_;
  std::vector<dsp::Complex> response_;
};

}  // namespace uniq::sim
