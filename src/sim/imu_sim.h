#pragma once

#include <vector>

#include "common/random.h"
#include "sim/trajectory.h"

namespace uniq::sim {

/// A simulated gyroscope log: angular-rate samples around the vertical axis
/// at a fixed rate (the paper logs 100 Hz IMU data, Section 5).
struct GyroTrace {
  double sampleRate = 100.0;
  std::vector<double> rateDegPerSec;  ///< measured angular rate samples
};

/// Gyroscope error model. Angular-rate sensing is good; what ruins IMU
/// *positioning* is the double integration of accelerometer data, which is
/// why UNIQ works in polar coordinates and takes only the angle from the
/// gyro (Section 3.1).
struct ImuNoiseModel {
  double biasDegPerSec = 0.25;    ///< constant-bias magnitude (random sign)
  double noiseDegPerSec = 1.2;    ///< white noise per sample
  /// Slowly-varying facing error: the user cannot keep the phone screen
  /// perfectly aimed at the eyes (paper Section 5.1 attributes most
  /// localization error to this).
  double facingErrorDeg = 4.0;
  /// Independent re-aiming error at each stop (deg, 1 sigma).
  double aimJitterDeg = 2.5;
};

/// Simulate the gyro log for a calibration sweep. The phone's orientation
/// follows the trajectory's polar angle (the user faces the screen toward
/// the eyes), plus facing error; the gyro measures its derivative with bias
/// and noise.
GyroTrace simulateGyro(const std::vector<TrajectoryPoint>& trajectory,
                       const ImuNoiseModel& model, Pcg32& rng,
                       double sampleRate = 100.0);

/// Estimation-side gyro integration: cumulative angle at each gyro sample,
/// starting from `initialAngleDeg` (the sweep's known start pose).
std::vector<double> integrateGyro(const GyroTrace& trace,
                                  double initialAngleDeg);

/// Sample an integrated angle trace at the trajectory stop times.
std::vector<double> anglesAtStops(const GyroTrace& trace,
                                  double initialAngleDeg,
                                  const std::vector<TrajectoryPoint>& stops);

}  // namespace uniq::sim
