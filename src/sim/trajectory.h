#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "geometry/vec2.h"

namespace uniq::sim {

/// How a particular user moves the phone around the head. The paper's
/// volunteers differ exactly here: volunteers 4 and 5 "moved the phone a
/// bit too close to the back of their heads, due to their arm movement
/// constraints" (Section 5.1, Figure 19 discussion).
struct GestureProfile {
  double radiusMeanM = 0.35;       ///< nominal arm radius
  double radiusWobbleM = 0.025;    ///< slow radius variation amplitude
  double angleStartDeg = 2.0;
  double angleEndDeg = 178.0;
  std::size_t stops = 36;          ///< number of measurement positions
  double stopIntervalSec = 0.35;   ///< time between consecutive stops
  double angleJitterDeg = 1.0;     ///< per-stop deviation from uniform grid
  /// Arm droop: radius loss growing toward the back of the head (models a
  /// tiring arm). 0 disables.
  double armDroopM = 0.0;
  /// Angle range beyond which droop applies (deg).
  double armDroopOnsetDeg = 120.0;
};

/// A canonical "careful user" profile.
GestureProfile defaultGesture();

/// A constrained-arm profile matching the paper's volunteers 4-5.
GestureProfile constrainedGesture();

/// One phone stop along the calibration sweep.
struct TrajectoryPoint {
  double timeSec = 0.0;
  double trueAngleDeg = 0.0;  ///< ground-truth polar angle of the phone
  double radiusM = 0.0;       ///< ground-truth polar radius
  geo::Vec2 position{};       ///< cartesian position (derived)
};

/// Generate the ground-truth phone trajectory for a gesture. The overhead-
/// camera ground truth of the paper's testbed is simply this vector.
std::vector<TrajectoryPoint> generateTrajectory(const GestureProfile& profile,
                                                Pcg32& rng);

}  // namespace uniq::sim
