#include "sim/trajectory.h"

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "geometry/polar.h"

namespace uniq::sim {

GestureProfile defaultGesture() { return GestureProfile{}; }

GestureProfile constrainedGesture() {
  GestureProfile g;
  g.radiusMeanM = 0.30;
  g.radiusWobbleM = 0.035;
  g.angleJitterDeg = 2.0;
  g.armDroopM = 0.08;
  g.armDroopOnsetDeg = 100.0;
  return g;
}

std::vector<TrajectoryPoint> generateTrajectory(const GestureProfile& profile,
                                                Pcg32& rng) {
  UNIQ_REQUIRE(profile.stops >= 4, "need at least 4 stops");
  UNIQ_REQUIRE(profile.angleEndDeg > profile.angleStartDeg, "bad angle range");
  UNIQ_REQUIRE(profile.radiusMeanM > 0.12, "radius too small");
  std::vector<TrajectoryPoint> points;
  points.reserve(profile.stops);
  const double wobblePhase = rng.uniform(0.0, kTwoPi);
  const double wobbleCycles = rng.uniform(1.0, 2.5);
  for (std::size_t i = 0; i < profile.stops; ++i) {
    const double u = static_cast<double>(i) /
                     static_cast<double>(profile.stops - 1);
    TrajectoryPoint p;
    p.timeSec = static_cast<double>(i) * profile.stopIntervalSec;
    p.trueAngleDeg = profile.angleStartDeg +
                     u * (profile.angleEndDeg - profile.angleStartDeg) +
                     rng.gaussian(0.0, profile.angleJitterDeg);
    // Keep the sweep ordered and inside [0, 180].
    p.trueAngleDeg = std::min(std::max(p.trueAngleDeg, 0.0), 180.0);
    double radius = profile.radiusMeanM +
                    profile.radiusWobbleM *
                        std::sin(kTwoPi * wobbleCycles * u + wobblePhase);
    if (profile.armDroopM > 0.0 &&
        p.trueAngleDeg > profile.armDroopOnsetDeg) {
      const double over = (p.trueAngleDeg - profile.armDroopOnsetDeg) /
                          (180.0 - profile.armDroopOnsetDeg);
      radius -= profile.armDroopM * over * over;
    }
    p.radiusM = std::max(radius, 0.14);
    p.position = geo::pointFromPolarDeg(p.trueAngleDeg, p.radiusM);
    points.push_back(p);
  }
  return points;
}

}  // namespace uniq::sim
