#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace uniq::sim {

/// Home-environment reverberation: a handful of discrete wall/furniture
/// echoes arriving several milliseconds after the direct sound.
///
/// The paper measures at home rather than in an anechoic chamber and removes
/// room reflections by discarding late channel taps (Section 4.6, "Tackling
/// room reflections") — head diffraction and pinna multipath arrive first
/// because the phone is held close to the head. This model produces exactly
/// that structure: an identity tap followed by echoes no earlier than
/// `minDelaySec`.
struct RoomModelOptions {
  double sampleRate = 48000.0;
  std::size_t echoCount = 6;
  double minDelaySec = 4.5e-3;
  double maxDelaySec = 18.0e-3;
  double firstEchoGain = 0.30;
  double decayTimeSec = 8.0e-3;  ///< exponential gain decay constant
  std::uint64_t seed = 99;
};

class RoomModel {
 public:
  using Options = RoomModelOptions;

  explicit RoomModel(Options opts = {});

  /// An anechoic room (no echoes at all).
  static RoomModel anechoic(double sampleRate = 48000.0);

  /// The room's impulse response (identity tap + echoes).
  const std::vector<double>& impulseResponse() const { return ir_; }

  /// Convolve a signal with the room response (output is trimmed back to
  /// the input length plus the echo tail).
  std::vector<double> apply(const std::vector<double>& signal) const;

  double sampleRate() const { return opts_.sampleRate; }

 private:
  explicit RoomModel(Options opts, bool anechoic);
  Options opts_;
  std::vector<double> ir_;
};

}  // namespace uniq::sim
