#include "sim/measurement_session.h"

#include "common/error.h"
#include "dsp/signal_generators.h"
#include "obs/trace.h"

namespace uniq::sim {

MeasurementSession::MeasurementSession(Options opts) : opts_(opts) {
  UNIQ_REQUIRE(opts_.chirpF1Hz <= opts_.sampleRate / 2.0 * 0.95,
               "chirp end frequency too close to Nyquist");
}

CalibrationCapture MeasurementSession::run(const head::Subject& subject,
                                           const GestureProfile& gesture) const {
  UNIQ_SPAN("sim.session");
  Pcg32 rng(opts_.noiseSeed ^ subject.pinnaSeed);

  head::HrtfDatabase::Options dbOpts;
  dbOpts.sampleRate = opts_.sampleRate;
  const head::HrtfDatabase truth(subject, dbOpts);

  HardwareModel::Options hwOpts;
  hwOpts.sampleRate = opts_.sampleRate;
  const HardwareModel hardware(hwOpts);

  RoomModel::Options roomOpts;
  roomOpts.sampleRate = opts_.sampleRate;
  roomOpts.seed = opts_.noiseSeed * 31 + 7;
  const RoomModel room(roomOpts);

  BinauralRecorder::Options recOpts;
  recOpts.snrDb = opts_.recordingSnrDb;
  const BinauralRecorder recorder(truth, hardware, room, recOpts);

  CalibrationCapture capture;
  capture.sampleRate = opts_.sampleRate;
  const auto chirpSamples = static_cast<std::size_t>(
      opts_.chirpDurationSec * opts_.sampleRate);
  capture.sourceSignal = dsp::linearChirp(opts_.chirpF0Hz, opts_.chirpF1Hz,
                                          chirpSamples, opts_.sampleRate);

  Pcg32 hwRng = rng.fork(0x11);
  {
    UNIQ_SPAN("sim.hardware_estimate");
    capture.hardwareResponseEstimate =
        hardware.estimateResponse(opts_.hardwareEstimateSnrDb, hwRng);
  }

  Pcg32 gestureRng = rng.fork(0x22);
  {
    UNIQ_SPAN("sim.trajectory");
    capture.truth.trajectory = generateTrajectory(gesture, gestureRng);
  }
  capture.truth.subject = subject;

  Pcg32 imuRng = rng.fork(0x33);
  std::vector<double> imuAngles;
  {
    UNIQ_SPAN("sim.imu");
    const auto gyro =
        simulateGyro(capture.truth.trajectory, opts_.imuModel, imuRng);
    // The estimator integrates from the *instructed* start angle.
    imuAngles = anglesAtStops(gyro, gesture.angleStartDeg,
                              capture.truth.trajectory);
  }

  Pcg32 recRng = rng.fork(0x44);
  {
    UNIQ_SPAN("sim.record_stops");
    capture.stops.reserve(capture.truth.trajectory.size());
    for (std::size_t i = 0; i < capture.truth.trajectory.size(); ++i) {
      CalibrationStop stop;
      stop.imuAngleDeg = imuAngles[i];
      stop.recording = recorder.recordNearField(
          capture.truth.trajectory[i].position, capture.sourceSignal, recRng);
      capture.stops.push_back(std::move(stop));
    }
  }
  return capture;
}

}  // namespace uniq::sim
