#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "sim/measurement_session.h"

namespace uniq::sim {

/// Fault classes observed in uncontrolled home captures (hand-swept phone,
/// reverberant rooms, consumer IMUs). Each corrupts a clean
/// CalibrationCapture the way the corresponding real-world defect would.
enum class FaultKind {
  kDroppedImuSamples,    ///< gyro gap: stop inherits the previous stop's angle
  kDuplicatedImuSamples, ///< double-integrated samples: stop angle overshoots
  kGyroBias,             ///< accumulating angle drift over the sweep tail
  kClockDrift,           ///< phone/earbud clocks diverge: taps shift in time
  kAudioClipping,        ///< recording clamped at a fraction of its peak
  kBurstNoise,           ///< loud transient (door slam, speech) mid-recording
  kAudioDropout,         ///< Bluetooth dropout: a zeroed chunk of recording
  kSwappedEars,          ///< left/right channels exchanged at some stops
  kFailedChannel,        ///< one ear silent (earbud fell out / mic died)
  kMissingStops,         ///< stops absent entirely (user paused / app skipped)
};

/// Stable lower-snake name for a fault kind ("audio_clipping", ...).
const char* faultKindName(FaultKind kind);

/// Parse a faultKindName back to the kind; throws InvalidArgument on an
/// unknown name (the CLI surfaces the valid list).
FaultKind faultKindFromName(const std::string& name);

/// Every fault kind, in declaration order (for sweeps and smoke tests).
std::vector<FaultKind> allFaultKinds();

/// One parameterized fault. `severity` in [0, 1] scales both how many stops
/// are hit and how strongly; `stopFraction` overrides the hit fraction when
/// >= 0 (severity 0.5 with the default derivation corrupts ~20% of stops).
struct FaultSpec {
  FaultKind kind = FaultKind::kAudioClipping;
  double severity = 0.5;
  double stopFraction = -1.0;
};

/// What one applied fault actually touched (for asserting that quality
/// gating rejects the right stops).
struct InjectedFault {
  FaultKind kind = FaultKind::kAudioClipping;
  double severity = 0.0;
  std::vector<std::size_t> stops;  ///< corrupted stop indices, ascending
};

struct FaultInjectionLog {
  std::vector<InjectedFault> faults;
  /// Union of all corrupted stop indices, ascending, deduplicated.
  std::vector<std::size_t> corruptedStops() const;
};

/// Composable, seeded capture corruptor: queue any number of FaultSpecs,
/// then apply them (in order) to a copy of a clean capture. All randomness
/// derives from the constructor seed and the spec's position in the queue,
/// so a given (seed, specs) pair corrupts identically on every run and
/// platform — every robustness claim stays reproducible.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0x5eedf417);

  FaultInjector& add(FaultSpec spec);
  FaultInjector& add(FaultKind kind, double severity = 0.5) {
    return add(FaultSpec{kind, severity, -1.0});
  }

  /// Apply every queued fault to a copy of `clean`. `log`, when non-null,
  /// receives one InjectedFault per spec.
  CalibrationCapture apply(const CalibrationCapture& clean,
                           FaultInjectionLog* log = nullptr) const;

  const std::vector<FaultSpec>& specs() const { return specs_; }

 private:
  std::uint64_t seed_;
  std::vector<FaultSpec> specs_;
};

}  // namespace uniq::sim
