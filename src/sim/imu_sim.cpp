#include "sim/imu_sim.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/math_util.h"

namespace uniq::sim {

namespace {

/// Piecewise-linear interpolation of the trajectory's true angle at time t.
double trueAngleAt(const std::vector<TrajectoryPoint>& traj, double t) {
  if (t <= traj.front().timeSec) return traj.front().trueAngleDeg;
  if (t >= traj.back().timeSec) return traj.back().trueAngleDeg;
  for (std::size_t i = 1; i < traj.size(); ++i) {
    if (t <= traj[i].timeSec) {
      const double u = inverseLerp(traj[i - 1].timeSec, traj[i].timeSec, t);
      return lerp(traj[i - 1].trueAngleDeg, traj[i].trueAngleDeg, u);
    }
  }
  return traj.back().trueAngleDeg;
}

}  // namespace

GyroTrace simulateGyro(const std::vector<TrajectoryPoint>& trajectory,
                       const ImuNoiseModel& model, Pcg32& rng,
                       double sampleRate) {
  UNIQ_REQUIRE(trajectory.size() >= 2, "trajectory too short");
  UNIQ_REQUIRE(sampleRate >= 10.0, "gyro rate too low");
  GyroTrace trace;
  trace.sampleRate = sampleRate;
  const double duration = trajectory.back().timeSec;
  const auto n = static_cast<std::size_t>(duration * sampleRate) + 1;
  trace.rateDegPerSec.resize(n);

  const double bias =
      (rng.nextDouble() < 0.5 ? -1.0 : 1.0) * model.biasDegPerSec;
  // Facing error: slow sinusoid plus an independent re-aiming offset at
  // each stop; both perturb the gyro through their derivative.
  const double faceAmp = model.facingErrorDeg;
  const double faceFreq = rng.uniform(0.05, 0.15);  // Hz
  const double facePhase = rng.uniform(0.0, kTwoPi);
  std::vector<double> aimOffsets(trajectory.size());
  for (auto& a : aimOffsets) a = rng.gaussian(0.0, model.aimJitterDeg);

  std::size_t stopIdx = 0;
  const auto aimAt = [&](double t) {
    while (stopIdx + 1 < trajectory.size() &&
           t >= trajectory[stopIdx + 1].timeSec)
      ++stopIdx;
    return aimOffsets[stopIdx];
  };

  const double dt = 1.0 / sampleRate;
  double prevOrientation = trajectory.front().trueAngleDeg +
                           faceAmp * std::sin(facePhase) + aimOffsets[0];
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * dt;
    const double orientation =
        trueAngleAt(trajectory, t) +
        faceAmp * std::sin(kTwoPi * faceFreq * t + facePhase) + aimAt(t);
    const double rate = (orientation - prevOrientation) / dt;
    prevOrientation = orientation;
    trace.rateDegPerSec[i] =
        rate + bias + rng.gaussian(0.0, model.noiseDegPerSec);
  }
  return trace;
}

std::vector<double> integrateGyro(const GyroTrace& trace,
                                  double initialAngleDeg) {
  std::vector<double> angle(trace.rateDegPerSec.size());
  const double dt = 1.0 / trace.sampleRate;
  double acc = initialAngleDeg;
  for (std::size_t i = 0; i < trace.rateDegPerSec.size(); ++i) {
    acc += trace.rateDegPerSec[i] * dt;
    angle[i] = acc;
  }
  return angle;
}

std::vector<double> anglesAtStops(const GyroTrace& trace,
                                  double initialAngleDeg,
                                  const std::vector<TrajectoryPoint>& stops) {
  const auto integrated = integrateGyro(trace, initialAngleDeg);
  std::vector<double> out;
  out.reserve(stops.size());
  for (const auto& stop : stops) {
    const auto idx = static_cast<std::size_t>(
        std::min<double>(stop.timeSec * trace.sampleRate,
                         static_cast<double>(integrated.size() - 1)));
    out.push_back(integrated[idx]);
  }
  return out;
}

}  // namespace uniq::sim
