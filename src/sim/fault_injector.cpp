#include "sim/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"
#include "dsp/fractional_delay.h"

namespace uniq::sim {

namespace {

struct KindName {
  FaultKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::kDroppedImuSamples, "dropped_imu"},
    {FaultKind::kDuplicatedImuSamples, "duplicated_imu"},
    {FaultKind::kGyroBias, "gyro_bias"},
    {FaultKind::kClockDrift, "clock_drift"},
    {FaultKind::kAudioClipping, "audio_clipping"},
    {FaultKind::kBurstNoise, "burst_noise"},
    {FaultKind::kAudioDropout, "audio_dropout"},
    {FaultKind::kSwappedEars, "swapped_ears"},
    {FaultKind::kFailedChannel, "failed_channel"},
    {FaultKind::kMissingStops, "missing_stops"},
};

double peakAbs(const std::vector<double>& x) {
  double peak = 0.0;
  for (double v : x) peak = std::max(peak, std::fabs(v));
  return peak;
}

/// Pick `count` distinct stop indices (deterministic draw order).
std::vector<std::size_t> pickStops(std::size_t total, std::size_t count,
                                   Pcg32& rng) {
  count = std::min(count, total);
  std::set<std::size_t> chosen;
  while (chosen.size() < count)
    chosen.insert(rng.nextBounded(static_cast<std::uint32_t>(total)));
  return {chosen.begin(), chosen.end()};
}

void clipRecording(std::vector<double>& x, double level) {
  for (double& v : x) v = std::clamp(v, -level, level);
}

void addBurst(std::vector<double>& x, double amplitude, std::size_t start,
              std::size_t length, Pcg32& rng) {
  const std::size_t end = std::min(x.size(), start + length);
  for (std::size_t i = start; i < end; ++i)
    x[i] += amplitude * (2.0 * rng.nextDouble() - 1.0);
}

void zeroChunk(std::vector<double>& x, std::size_t start, std::size_t length) {
  const std::size_t end = std::min(x.size(), start + length);
  std::fill(x.begin() + static_cast<std::ptrdiff_t>(start),
            x.begin() + static_cast<std::ptrdiff_t>(end), 0.0);
}

}  // namespace

const char* faultKindName(FaultKind kind) {
  for (const auto& kn : kKindNames)
    if (kn.kind == kind) return kn.name;
  return "unknown";
}

FaultKind faultKindFromName(const std::string& name) {
  for (const auto& kn : kKindNames)
    if (name == kn.name) return kn.kind;
  std::string valid;
  for (const auto& kn : kKindNames) {
    if (!valid.empty()) valid += ", ";
    valid += kn.name;
  }
  throw InvalidArgument("unknown fault kind '" + name + "' (valid: " + valid +
                        ")");
}

std::vector<FaultKind> allFaultKinds() {
  std::vector<FaultKind> kinds;
  for (const auto& kn : kKindNames) kinds.push_back(kn.kind);
  return kinds;
}

std::vector<std::size_t> FaultInjectionLog::corruptedStops() const {
  std::set<std::size_t> all;
  for (const auto& f : faults) all.insert(f.stops.begin(), f.stops.end());
  return {all.begin(), all.end()};
}

FaultInjector::FaultInjector(std::uint64_t seed) : seed_(seed) {}

FaultInjector& FaultInjector::add(FaultSpec spec) {
  UNIQ_REQUIRE(spec.severity >= 0.0 && spec.severity <= 1.0,
               "fault severity must be in [0, 1]");
  UNIQ_REQUIRE(spec.stopFraction <= 1.0, "stopFraction must be <= 1");
  specs_.push_back(spec);
  return *this;
}

CalibrationCapture FaultInjector::apply(const CalibrationCapture& clean,
                                        FaultInjectionLog* log) const {
  CalibrationCapture capture = clean;
  for (std::size_t s = 0; s < specs_.size(); ++s) {
    const FaultSpec& spec = specs_[s];
    // Decoupled stream per queued spec: adding or reordering one fault
    // never changes the draws another sees.
    Pcg32 rng = Pcg32(seed_).fork(0xFA00 + s);
    const std::size_t n = capture.stops.size();
    if (n == 0) break;

    // Default hit fraction: severity 0.5 corrupts 20% of stops, matching
    // the "moderate severity" contract in docs/ROBUSTNESS.md.
    const double fraction =
        spec.stopFraction >= 0.0 ? spec.stopFraction : 0.4 * spec.severity;
    const auto count = static_cast<std::size_t>(
        std::lround(fraction * static_cast<double>(n)));

    InjectedFault injected;
    injected.kind = spec.kind;
    injected.severity = spec.severity;

    switch (spec.kind) {
      case FaultKind::kDroppedImuSamples: {
        // The gyro stream gapped while the hand kept moving: the integrated
        // angle freezes at the previous stop's value.
        injected.stops = pickStops(n, count, rng);
        for (std::size_t i : injected.stops) {
          if (i == 0) continue;
          capture.stops[i].imuAngleDeg = capture.stops[i - 1].imuAngleDeg;
        }
        break;
      }
      case FaultKind::kDuplicatedImuSamples: {
        // Samples delivered twice double-count the angle increment.
        injected.stops = pickStops(n, count, rng);
        for (std::size_t i : injected.stops) {
          if (i == 0) continue;
          const double step = capture.stops[i].imuAngleDeg -
                              capture.stops[i - 1].imuAngleDeg;
          capture.stops[i].imuAngleDeg += step;
        }
        break;
      }
      case FaultKind::kGyroBias: {
        // Uncompensated bias integrates into drift; it dominates the sweep
        // tail, so corrupt the last `fraction` of stops with a linearly
        // growing offset (max ~12 deg at full severity).
        const std::size_t start = n - std::min(n, count);
        const double maxDriftDeg =
            12.0 * spec.severity * (rng.nextDouble() < 0.5 ? -1.0 : 1.0);
        for (std::size_t i = start; i < n; ++i) {
          const double t = count > 0
                               ? static_cast<double>(i - start + 1) /
                                     static_cast<double>(count)
                               : 0.0;
          capture.stops[i].imuAngleDeg += maxDriftDeg * t;
          injected.stops.push_back(i);
        }
        break;
      }
      case FaultKind::kClockDrift: {
        // Phone/earbud clocks diverge: absolute tap times shift by a drift
        // that grows over the sweep tail (max ~0.5 ms at full severity,
        // i.e. ~17 cm of apparent path length).
        const std::size_t start = n - std::min(n, count);
        const double maxDriftSec = 5e-4 * spec.severity;
        for (std::size_t i = start; i < n; ++i) {
          const double t = count > 0
                               ? static_cast<double>(i - start + 1) /
                                     static_cast<double>(count)
                               : 0.0;
          const double shiftSamples =
              maxDriftSec * t * capture.sampleRate;
          auto& rec = capture.stops[i].recording;
          rec.left = dsp::fractionalShift(rec.left, shiftSamples);
          rec.right = dsp::fractionalShift(rec.right, shiftSamples);
          injected.stops.push_back(i);
        }
        break;
      }
      case FaultKind::kAudioClipping: {
        injected.stops = pickStops(n, count, rng);
        for (std::size_t i : injected.stops) {
          auto& rec = capture.stops[i].recording;
          // Clip at a fraction of the stop's own peak (severity 1 clamps
          // at 15% of peak — a badly overdriven mic).
          const double keep = 1.0 - 0.85 * spec.severity;
          clipRecording(rec.left, keep * peakAbs(rec.left));
          clipRecording(rec.right, keep * peakAbs(rec.right));
        }
        break;
      }
      case FaultKind::kBurstNoise: {
        injected.stops = pickStops(n, count, rng);
        for (std::size_t i : injected.stops) {
          auto& rec = capture.stops[i].recording;
          const std::size_t len = rec.left.size();
          if (len == 0) continue;
          const auto burstLen = static_cast<std::size_t>(
              0.01 * capture.sampleRate * (1.0 + 2.0 * rng.nextDouble()));
          const std::size_t at =
              rng.nextBounded(static_cast<std::uint32_t>(len));
          const double amp =
              (0.5 + 4.0 * spec.severity) *
              std::max(peakAbs(rec.left), peakAbs(rec.right));
          addBurst(rec.left, amp, at, burstLen, rng);
          addBurst(rec.right, amp, at, burstLen, rng);
        }
        break;
      }
      case FaultKind::kAudioDropout: {
        injected.stops = pickStops(n, count, rng);
        for (std::size_t i : injected.stops) {
          auto& rec = capture.stops[i].recording;
          const std::size_t len = rec.left.size();
          if (len == 0) continue;
          const auto chunk = static_cast<std::size_t>(
              (0.1 + 0.5 * spec.severity) * static_cast<double>(len));
          const std::size_t at =
              rng.nextBounded(static_cast<std::uint32_t>(len));
          zeroChunk(rec.left, at, chunk);
          zeroChunk(rec.right, at, chunk);
        }
        break;
      }
      case FaultKind::kSwappedEars: {
        injected.stops = pickStops(n, count, rng);
        for (std::size_t i : injected.stops)
          std::swap(capture.stops[i].recording.left,
                    capture.stops[i].recording.right);
        break;
      }
      case FaultKind::kFailedChannel: {
        injected.stops = pickStops(n, count, rng);
        for (std::size_t i : injected.stops) {
          auto& rec = capture.stops[i].recording;
          auto& dead = rng.nextDouble() < 0.5 ? rec.left : rec.right;
          std::fill(dead.begin(), dead.end(), 0.0);
        }
        break;
      }
      case FaultKind::kMissingStops: {
        // Remove whole stops. Note: this shifts stop indices relative to
        // the ground-truth trajectory, so per-stop truth alignment no
        // longer holds downstream (head-parameter and HRTF-level metrics
        // remain valid).
        injected.stops = pickStops(n, count, rng);
        for (auto it = injected.stops.rbegin(); it != injected.stops.rend();
             ++it) {
          capture.stops.erase(capture.stops.begin() +
                              static_cast<std::ptrdiff_t>(*it));
        }
        break;
      }
    }
    if (log) log->faults.push_back(std::move(injected));
  }
  return capture;
}

}  // namespace uniq::sim
