#include "sim/recorder.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "dsp/convolution.h"
#include "dsp/signal_generators.h"

namespace uniq::sim {

BinauralRecorder::BinauralRecorder(const head::HrtfDatabase& truth,
                                   const HardwareModel& hardware,
                                   const RoomModel& room, Options opts)
    : truth_(truth), hardware_(hardware), room_(room), opts_(opts) {
  UNIQ_REQUIRE(truth.options().sampleRate == hardware.sampleRate() &&
                   truth.options().sampleRate == room.sampleRate(),
               "sample rates of truth/hardware/room must match");
}

BinauralRecording BinauralRecorder::assemble(const head::Hrir& ir,
                                             const std::vector<double>& source,
                                             Pcg32& rng,
                                             bool throughHardware) const {
  BinauralRecording rec;
  rec.sampleRate = ir.sampleRate;
  const std::size_t targetLen =
      source.size() + ir.length() + room_.impulseResponse().size() +
      opts_.tailSamples;
  for (int e = 0; e < 2; ++e) {
    const auto& channel = e == 0 ? ir.left : ir.right;
    auto sig = dsp::convolve(source, channel);
    sig = room_.apply(sig);
    if (throughHardware) sig = hardware_.apply(sig);
    sig.resize(targetLen, 0.0);
    (e == 0 ? rec.left : rec.right) = std::move(sig);
  }
  // The microphone noise floor is a property of the hardware, not of the
  // received level: the SNR option refers to the louder ear, so the
  // shadowed ear ends up with less effective SNR (this is why the paper's
  // right-ear accuracy dips when the phone sits at 90 degrees).
  const double refRms = std::max(dsp::rms(rec.left), dsp::rms(rec.right));
  const double noiseRms = refRms * std::pow(10.0, -opts_.snrDb / 20.0);
  for (auto& v : rec.left) v += rng.gaussian(0.0, noiseRms);
  for (auto& v : rec.right) v += rng.gaussian(0.0, noiseRms);
  return rec;
}

BinauralRecording BinauralRecorder::recordNearField(
    geo::Vec2 phonePosition, const std::vector<double>& source,
    Pcg32& rng) const {
  UNIQ_REQUIRE(!source.empty(), "empty source signal");
  const auto ir = truth_.nearFieldAt(phonePosition);
  return assemble(ir, source, rng, true);
}

BinauralRecording BinauralRecorder::recordFarField(
    double thetaDeg, const std::vector<double>& source, Pcg32& rng,
    bool throughHardware) const {
  UNIQ_REQUIRE(!source.empty(), "empty source signal");
  const auto ir = truth_.farField(thetaDeg);
  return assemble(ir, source, rng, throughHardware);
}

}  // namespace uniq::sim
