#pragma once

#include <vector>

#include "common/random.h"
#include "head/hrtf_database.h"
#include "sim/hardware_model.h"
#include "sim/room_model.h"

namespace uniq::sim {

/// A binaural recording: what the two in-ear microphones captured.
struct BinauralRecording {
  std::vector<double> left;
  std::vector<double> right;
  double sampleRate = 0.0;
};

/// Synthesizes in-ear microphone recordings for a subject.
///
/// The full acoustic chain per ear: source signal -> ground-truth head/pinna
/// response (diffraction + multipath) -> room echoes -> speaker+mic
/// frequency response -> additive noise at the configured SNR. This replaces
/// the paper's physical measurement loop (phone speaker playing chirps into
/// SP-TFB-2 in-ear microphones).
struct BinauralRecorderOptions {
  double snrDb = 28.0;
  /// Extra samples of silence kept after the source ends (room tail).
  std::size_t tailSamples = 2048;
};

class BinauralRecorder {
 public:
  using Options = BinauralRecorderOptions;

  BinauralRecorder(const head::HrtfDatabase& truth,
                   const HardwareModel& hardware, const RoomModel& room,
                   Options opts = {});

  /// Record the phone playing `source` from a near-field position.
  BinauralRecording recordNearField(geo::Vec2 phonePosition,
                                    const std::vector<double>& source,
                                    Pcg32& rng) const;

  /// Record an ambient far-field source at polar angle `thetaDeg`.
  /// `throughHardware` models whether the receive chain coloration applies
  /// (it always does for real earbuds; kept switchable for ablations).
  BinauralRecording recordFarField(double thetaDeg,
                                   const std::vector<double>& source,
                                   Pcg32& rng,
                                   bool throughHardware = true) const;

 private:
  BinauralRecording assemble(const head::Hrir& ir,
                             const std::vector<double>& source, Pcg32& rng,
                             bool throughHardware) const;

  const head::HrtfDatabase& truth_;
  const HardwareModel& hardware_;
  const RoomModel& room_;
  Options opts_;
};

}  // namespace uniq::sim
