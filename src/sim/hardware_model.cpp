#include "sim/hardware_model.h"

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/math_util.h"
#include "dsp/biquad.h"
#include "dsp/deconvolution.h"
#include "dsp/fft_plan.h"
#include "dsp/signal_generators.h"
#include "dsp/spectrum.h"

namespace uniq::sim {

HardwareModel::HardwareModel(Options opts) : opts_(opts) {
  UNIQ_REQUIRE(opts_.sampleRate > 8000, "sample rate too low");
  UNIQ_REQUIRE(dsp::isPowerOfTwo(opts_.gridSize), "gridSize must be 2^k");
  UNIQ_REQUIRE(opts_.lowpassHz < opts_.sampleRate / 2, "lowpass beyond Nyquist");

  const dsp::Biquad hp1 =
      dsp::Biquad::highpass(opts_.highpassHz, 0.8, opts_.sampleRate);
  const dsp::Biquad hp2 =
      dsp::Biquad::highpass(opts_.highpassHz * 0.6, 0.9, opts_.sampleRate);
  const dsp::Biquad lp =
      dsp::Biquad::lowpass(opts_.lowpassHz, 0.7, opts_.sampleRate);

  // Smooth device-specific ripple: a few random-phase sinusoids in
  // log-frequency.
  Pcg32 rng(opts_.rippleSeed);
  struct RippleTerm {
    double cycles, phase, weight;
  };
  RippleTerm terms[4];
  double weightSum = 0.0;
  for (auto& t : terms) {
    t.cycles = rng.uniform(1.5, 6.0);
    t.phase = rng.uniform(0.0, kTwoPi);
    t.weight = rng.uniform(0.5, 1.0);
    weightSum += t.weight;
  }

  const std::size_t n = opts_.gridSize;
  response_.assign(n, dsp::Complex(0, 0));
  const double fLo = 40.0;
  const double fHi = opts_.sampleRate / 2.0;
  for (std::size_t k = 0; k <= n / 2; ++k) {
    const double f = dsp::binFrequency(k, n, opts_.sampleRate);
    dsp::Complex h = hp1.responseAt(f, opts_.sampleRate) *
                     hp2.responseAt(f, opts_.sampleRate) *
                     lp.responseAt(f, opts_.sampleRate);
    if (f > fLo) {
      const double u = std::log(f / fLo) / std::log(fHi / fLo);  // 0..1
      double r = 0.0;
      for (const auto& t : terms)
        r += t.weight * std::sin(kTwoPi * t.cycles * u + t.phase);
      r /= weightSum;
      h *= dbToAmplitude(0.5 * opts_.rippleDb * r);
    }
    response_[k] = h;
    if (k > 0 && k < n / 2) response_[n - k] = std::conj(h);
  }
}

std::vector<double> HardwareModel::apply(
    const std::vector<double>& signal) const {
  // Keep a short settling tail so the IIR-like decay is not truncated.
  return dsp::applyFrequencyResponse(signal, response_, 256);
}

std::vector<dsp::Complex> HardwareModel::estimateResponse(double snrDb,
                                                          Pcg32& rng) const {
  // Co-located chirp measurement (Section 4.6): the estimated response is
  // deconvolve(mic recording, chirp), evaluated on the same grid.
  const std::size_t chirpLen = opts_.gridSize / 2;
  auto chirp = dsp::linearChirp(60.0, opts_.sampleRate * 0.45, chirpLen,
                                opts_.sampleRate);
  auto recorded = apply(chirp);
  dsp::addNoiseSnrDb(recorded, snrDb, rng);
  recorded.resize(opts_.gridSize);
  chirp.resize(opts_.gridSize, 0.0);
  // Real-input fast path: divide the half spectra, then mirror back out to
  // the full grid the callers expect.
  const auto fy = dsp::rfft(recorded);
  const auto fx = dsp::rfft(chirp);
  const auto half = dsp::regularizedSpectralDivide(fy, fx, 1e-4);
  const std::size_t n = opts_.gridSize;
  std::vector<dsp::Complex> full(n);
  for (std::size_t k = 0; k < half.size(); ++k) full[k] = half[k];
  for (std::size_t k = 1; k < n - n / 2; ++k)
    full[n - k] = std::conj(half[k]);
  return full;
}

double HardwareModel::magnitudeDbAt(double freqHz) const {
  const std::size_t bin =
      dsp::frequencyToBin(freqHz, opts_.gridSize, opts_.sampleRate);
  return amplitudeToDb(std::abs(response_[bin]));
}

}  // namespace uniq::sim
