#include "sim/room_model.h"

#include <cmath>

#include "common/error.h"
#include "dsp/convolution.h"
#include "dsp/fractional_delay.h"

namespace uniq::sim {

RoomModel::RoomModel(Options opts) : RoomModel(opts, false) {}

RoomModel::RoomModel(Options opts, bool anechoic) : opts_(opts) {
  UNIQ_REQUIRE(opts_.sampleRate > 8000, "sample rate too low");
  UNIQ_REQUIRE(opts_.minDelaySec < opts_.maxDelaySec, "bad echo delay range");
  const auto irLen = static_cast<std::size_t>(
                         opts_.maxDelaySec * opts_.sampleRate) + 64;
  ir_.assign(irLen, 0.0);
  ir_[0] = 1.0;  // direct sound
  if (anechoic || opts_.echoCount == 0) return;
  Pcg32 rng(opts_.seed);
  for (std::size_t k = 0; k < opts_.echoCount; ++k) {
    const double delay =
        rng.uniform(opts_.minDelaySec, opts_.maxDelaySec);
    const double gain = opts_.firstEchoGain *
                        std::exp(-(delay - opts_.minDelaySec) /
                                 opts_.decayTimeSec) *
                        (rng.nextDouble() < 0.5 ? -1.0 : 1.0);
    dsp::addFractionalTap(ir_, delay * opts_.sampleRate, gain, 8);
  }
}

RoomModel RoomModel::anechoic(double sampleRate) {
  Options opts;
  opts.sampleRate = sampleRate;
  opts.echoCount = 0;
  return RoomModel(opts, true);
}

std::vector<double> RoomModel::apply(const std::vector<double>& signal) const {
  return dsp::convolve(signal, ir_);
}

}  // namespace uniq::sim
