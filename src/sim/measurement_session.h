#pragma once

#include <cstdint>
#include <vector>

#include "head/hrtf_database.h"
#include "sim/imu_sim.h"
#include "sim/recorder.h"
#include "sim/trajectory.h"

namespace uniq::sim {

/// One phone stop as seen by the estimation pipeline: the IMU-integrated
/// phone orientation and the binaural recording of the known chirp.
struct CalibrationStop {
  double imuAngleDeg = 0.0;
  BinauralRecording recording;
};

/// Everything the UNIQ pipeline receives from one at-home calibration
/// session — plus the ground truth kept aside for evaluation. Mirrors the
/// paper's three inputs: "the earphone recordings, the IMU recordings, and
/// the played sounds" (Section 1).
struct CalibrationCapture {
  double sampleRate = 0.0;
  std::vector<double> sourceSignal;                ///< the chirp played
  std::vector<dsp::Complex> hardwareResponseEstimate;  ///< from Section 4.6
  std::vector<CalibrationStop> stops;

  /// Ground truth — for evaluation only, never consumed by the estimator.
  struct GroundTruth {
    std::vector<TrajectoryPoint> trajectory;
    head::Subject subject;
  } truth;
};

/// Orchestrates a full simulated calibration session for a subject.
struct MeasurementSessionOptions {
  double sampleRate = 48000.0;
  double chirpF0Hz = 100.0;
  double chirpF1Hz = 20000.0;
  double chirpDurationSec = 0.020;
  double recordingSnrDb = 24.0;
  double hardwareEstimateSnrDb = 35.0;
  ImuNoiseModel imuModel{};
  std::uint64_t noiseSeed = 12345;
};

class MeasurementSession {
 public:
  using Options = MeasurementSessionOptions;

  explicit MeasurementSession(Options opts = {});

  /// Run the sweep: generate the gesture trajectory, simulate IMU and
  /// acoustics, and package the capture.
  CalibrationCapture run(const head::Subject& subject,
                         const GestureProfile& gesture) const;

  const Options& options() const { return opts_; }

 private:
  Options opts_;
};

}  // namespace uniq::sim
