#include "core/gesture_validator.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace uniq::core {

GestureValidator::GestureValidator(Options opts) : opts_(opts) {}

GestureReport GestureValidator::validate(
    const SensorFusionResult& fusion) const {
  GestureReport report;
  std::vector<double> radii;
  std::size_t tooClose = 0;
  for (const auto& stop : fusion.stops) {
    if (!stop.localized) continue;
    radii.push_back(stop.radiusM);
    if (stop.radiusM < opts_.minStopRadiusM) ++tooClose;
  }

  const double localizedFraction =
      fusion.stops.empty()
          ? 0.0
          : static_cast<double>(fusion.localizedCount) /
                static_cast<double>(fusion.stops.size());
  if (localizedFraction < opts_.minLocalizedFraction) {
    std::ostringstream os;
    os << "only " << fusion.localizedCount << "/" << fusion.stops.size()
       << " stops could be localized — redo the sweep";
    report.issues.push_back(os.str());
  }

  if (!radii.empty()) {
    std::sort(radii.begin(), radii.end());
    const double median = radii[radii.size() / 2];
    if (median < opts_.minMedianRadiusM) {
      std::ostringstream os;
      os << "phone held too close to the head (median radius " << median
         << " m) — extend the arm further";
      report.issues.push_back(os.str());
    }
    if (tooClose > radii.size() / 4) {
      report.issues.push_back(
          "arm drooped toward the head on many stops — keep the radius "
          "steady");
    }
  }

  const double rmsResidual = std::sqrt(fusion.meanSquaredResidualDeg2);
  if (rmsResidual > opts_.maxRmsResidualDeg) {
    std::ostringstream os;
    os << "IMU and acoustic angles disagree (RMS " << rmsResidual
       << " deg) — face the phone screen toward the eyes and redo";
    report.issues.push_back(os.str());
  }

  report.ok = report.issues.empty();
  return report;
}

GestureReport GestureValidator::validateImuLog(
    const std::vector<double>& timesSec,
    const std::vector<double>& anglesDeg) const {
  GestureReport report;
  if (timesSec.size() != anglesDeg.size()) {
    report.issues.push_back(
        "IMU log is internally inconsistent (timestamp/angle count "
        "mismatch)");
    report.ok = false;
    return report;
  }
  if (anglesDeg.empty()) {
    report.issues.push_back("IMU log is empty — no sweep was recorded");
    report.ok = false;
    return report;
  }
  if (anglesDeg.size() < opts_.minImuSamples) {
    std::ostringstream os;
    os << "IMU log has only " << anglesDeg.size()
       << " sample(s) — too short to describe a sweep";
    report.issues.push_back(os.str());
  }

  // Frozen or backwards clock: integration over such timestamps is
  // meaningless, so flag once and skip the kinematic checks that depend on
  // ordering.
  bool monotonic = true;
  for (std::size_t i = 1; i < timesSec.size(); ++i) {
    if (timesSec[i] <= timesSec[i - 1]) {
      std::ostringstream os;
      os << "IMU timestamps are not strictly increasing (sample " << i
         << ") — clock glitch or duplicated samples";
      report.issues.push_back(os.str());
      monotonic = false;
      break;
    }
  }

  if (anglesDeg.size() >= 2) {
    double lo = anglesDeg[0], hi = anglesDeg[0];
    for (double a : anglesDeg) {
      lo = std::min(lo, a);
      hi = std::max(hi, a);
    }
    if (hi - lo < opts_.minSweepSpanDeg) {
      std::ostringstream os;
      os << "sweep covers only " << (hi - lo)
         << " deg — move the phone across the full ear-to-ear arc";
      report.issues.push_back(os.str());
    }

    if (monotonic) {
      // Mid-arc direction reversal: track the running extreme in the
      // dominant sweep direction and measure the deepest backtrack from it.
      const bool increasing = anglesDeg.back() >= anglesDeg.front();
      double extreme = anglesDeg[0];
      double worstBacktrack = 0.0;
      for (double a : anglesDeg) {
        if (increasing) {
          extreme = std::max(extreme, a);
          worstBacktrack = std::max(worstBacktrack, extreme - a);
        } else {
          extreme = std::min(extreme, a);
          worstBacktrack = std::max(worstBacktrack, a - extreme);
        }
      }
      if (worstBacktrack > opts_.maxReversalDeg) {
        std::ostringstream os;
        os << "sweep reversed direction mid-arc by " << worstBacktrack
           << " deg — keep the motion one-way and redo";
        report.issues.push_back(os.str());
      }
    }
  }

  report.ok = report.issues.empty();
  return report;
}

}  // namespace uniq::core
