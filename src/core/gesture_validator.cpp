#include "core/gesture_validator.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace uniq::core {

GestureValidator::GestureValidator(Options opts) : opts_(opts) {}

GestureReport GestureValidator::validate(
    const SensorFusionResult& fusion) const {
  GestureReport report;
  std::vector<double> radii;
  std::size_t tooClose = 0;
  for (const auto& stop : fusion.stops) {
    if (!stop.localized) continue;
    radii.push_back(stop.radiusM);
    if (stop.radiusM < opts_.minStopRadiusM) ++tooClose;
  }

  const double localizedFraction =
      fusion.stops.empty()
          ? 0.0
          : static_cast<double>(fusion.localizedCount) /
                static_cast<double>(fusion.stops.size());
  if (localizedFraction < opts_.minLocalizedFraction) {
    std::ostringstream os;
    os << "only " << fusion.localizedCount << "/" << fusion.stops.size()
       << " stops could be localized — redo the sweep";
    report.issues.push_back(os.str());
  }

  if (!radii.empty()) {
    std::sort(radii.begin(), radii.end());
    const double median = radii[radii.size() / 2];
    if (median < opts_.minMedianRadiusM) {
      std::ostringstream os;
      os << "phone held too close to the head (median radius " << median
         << " m) — extend the arm further";
      report.issues.push_back(os.str());
    }
    if (tooClose > radii.size() / 4) {
      report.issues.push_back(
          "arm drooped toward the head on many stops — keep the radius "
          "steady");
    }
  }

  const double rmsResidual = std::sqrt(fusion.meanSquaredResidualDeg2);
  if (rmsResidual > opts_.maxRmsResidualDeg) {
    std::ostringstream os;
    os << "IMU and acoustic angles disagree (RMS " << rmsResidual
       << " deg) — face the phone screen toward the eyes and redo";
    report.issues.push_back(os.str());
  }

  report.ok = report.issues.empty();
  return report;
}

}  // namespace uniq::core
