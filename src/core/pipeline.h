#pragma once

#include <vector>

#include "core/channel_extractor.h"
#include "core/gesture_validator.h"
#include "core/hrtf_table.h"
#include "core/near_far.h"
#include "core/near_field_hrtf.h"
#include "core/sensor_fusion.h"
#include "obs/report.h"
#include "sim/measurement_session.h"

namespace uniq::core {

/// Everything UNIQ produces from one calibration sweep.
struct PersonalHrtf {
  HrtfTable table;
  head::HeadParameters headParams;
  SensorFusionResult fusion;
  GestureReport gestureReport;
};

struct CalibrationPipelineOptions {
  ChannelExtractorOptions extractor{};
  SensorFusionOptions fusion{};
  NearFieldBuilderOptions nearField{};
  NearFarConverterOptions nearFar{};
  GestureValidatorOptions gesture{};
  /// Threads used by the pipeline's parallel stages: the per-stop channel
  /// extraction batch, the sensor-fusion localization loop, and the
  /// per-angle near-field interpolation (0 = size from the global pool,
  /// which honors UNIQ_NUM_THREADS; 1 = fully serial). Stage-specific
  /// values in `fusion`/`nearField` win when set. Every stage is
  /// deterministic, so this knob trades latency only.
  std::size_t numThreads = 0;
};

/// End-to-end UNIQ pipeline (paper Figure 6): channel extraction ->
/// diffraction-aware sensor fusion -> near-field interpolation -> near-far
/// conversion -> exported HRTF table. The input is exactly what the phone
/// and earbuds captured; ground truth in the capture is ignored.
class CalibrationPipeline {
 public:
  using Options = CalibrationPipelineOptions;

  explicit CalibrationPipeline(Options opts = {});

  PersonalHrtf run(const sim::CalibrationCapture& capture) const;

  /// Instrumented run: identical output to run(capture), but additionally
  /// fills `report` (when non-null) with one StageReport per pipeline
  /// stage, in execution order:
  ///
  ///   - "extract"   — wallMs; `stops` (capture stops processed),
  ///                   `tapsDetected` (stops with a first tap in both ears)
  ///   - "fusion"    — wallMs; `iterations` (Nelder-Mead total over
  ///                   restarts), `restarts`, `converged` (0/1),
  ///                   `localized` (stops the localizer placed),
  ///                   `objectiveDeg2` (final Eq. 2 objective incl. prior),
  ///                   `residualRmsDeg` (RMS IMU-vs-acoustic disagreement)
  ///   - "nearfield" — wallMs; `usableStops`, `medianRadiusM`,
  ///                   `tapAlignRmsUs` (per-stop RMS error between the
  ///                   measured interaural first-tap delay and the fused
  ///                   diffraction model's prediction, microseconds)
  ///   - "nearfar"   — wallMs; `entries` (far-field table angles)
  ///   - "gesture"   — wallMs; `ok` (0/1), `issues` (flag count)
  ///
  /// Timings come from a dedicated steady-clock timer, so the report works
  /// even when the build compiles trace spans out.
  PersonalHrtf run(const sim::CalibrationCapture& capture,
                   obs::RunReport* report) const;

  /// Intermediate access for experiments: per-stop channels only.
  std::vector<BinauralChannel> extractChannels(
      const sim::CalibrationCapture& capture) const;

  /// Intermediate access: fusion measurements derived from channels.
  static std::vector<FusionMeasurement> toFusionMeasurements(
      const sim::CalibrationCapture& capture,
      const std::vector<BinauralChannel>& channels);

 private:
  Options opts_;
};

}  // namespace uniq::core
