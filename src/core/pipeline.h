#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "core/channel_extractor.h"
#include "core/gesture_validator.h"
#include "core/hrtf_table.h"
#include "core/near_far.h"
#include "core/near_field_hrtf.h"
#include "core/sensor_fusion.h"
#include "obs/report.h"
#include "sim/measurement_session.h"

namespace uniq::core {

/// Terminal state of one calibration run. The pipeline degrades instead of
/// dying: a capture with some corrupted stops still produces a personalized
/// table (kDegraded), and even an unusable capture produces the
/// population-average table (kFailed) rather than an exception — a
/// calibration service cannot 500 because the user's earbud fell out.
enum class PipelineStatus {
  kOk,        ///< clean run; every quality gate passed
  kDegraded,  ///< usable result, but stops were rejected or coverage is thin
  kFailed,    ///< could not personalize; fallback population-average table
};

/// Stable lower-case name ("ok", "degraded", "failed").
const char* pipelineStatusName(PipelineStatus status);

/// Cooperative cancellation / deadline token for one pipeline run. The
/// serving layer hands the same token to CalibrationPipeline::run and to
/// whoever may cancel the job; the pipeline polls it at stage boundaries
/// only (never mid-stage), so an abort takes effect at the next boundary
/// and an in-flight stage always completes or fails on its own terms.
/// All members are safe to call from any thread.
class RunAbortToken {
 public:
  /// Ask the run to stop at the next stage boundary.
  void requestCancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once requestCancel() was called.
  bool cancelRequested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Abort the run once the steady clock passes `deadline`.
  void setDeadline(std::chrono::steady_clock::time_point deadline) {
    deadlineNs_.store(deadline.time_since_epoch().count(),
                      std::memory_order_relaxed);
  }

  /// True when the run should stop: cancelled, or past the deadline.
  bool due() const {
    if (cancelRequested()) return true;
    const auto ns = deadlineNs_.load(std::memory_order_relaxed);
    return ns != 0 &&
           std::chrono::steady_clock::now().time_since_epoch().count() >= ns;
  }

 private:
  std::atomic<bool> cancelled_{false};
  /// Steady-clock deadline in clock ticks since epoch; 0 = no deadline.
  std::atomic<std::int64_t> deadlineNs_{0};
};

/// Everything UNIQ produces from one calibration sweep.
struct PersonalHrtf {
  HrtfTable table;
  head::HeadParameters headParams;
  SensorFusionResult fusion;
  GestureReport gestureReport;
  PipelineStatus status = PipelineStatus::kOk;
  /// Structured trail of everything that went wrong (or was tolerated):
  /// stage, severity, message, affected stop indices. Mirrored into the
  /// RunReport when one is attached.
  std::vector<obs::Diagnostic> diagnostics;
  /// True when the run stopped early because its RunAbortToken fired
  /// (cancellation or deadline). The result then carries the fallback
  /// table and status kFailed; the serving layer maps this flag onto its
  /// cancelled/expired job states instead of treating it as a real failure.
  bool aborted = false;
};

struct CalibrationPipelineOptions {
  ChannelExtractorOptions extractor{};
  SensorFusionOptions fusion{};
  NearFieldBuilderOptions nearField{};
  NearFarConverterOptions nearFar{};
  GestureValidatorOptions gesture{};
  /// Threads used by the pipeline's parallel stages: the per-stop channel
  /// extraction batch, the sensor-fusion localization loop, and the
  /// per-angle near-field interpolation (0 = size from the global pool,
  /// which honors UNIQ_NUM_THREADS; 1 = fully serial). Stage-specific
  /// values in `fusion`/`nearField` win when set. Every stage is
  /// deterministic, so this knob trades latency only.
  std::size_t numThreads = 0;
  /// Fewest quality-gated stops the pipeline will attempt to personalize
  /// from; below this the run fails over to the population-average table.
  std::size_t minUsableStops = 6;
  /// Angular span (deg) between consecutive usable stops beyond which the
  /// near-field interpolation is flagged as spanning a coverage gap.
  double gapWarnDeg = 25.0;
};

/// End-to-end UNIQ pipeline (paper Figure 6): channel extraction ->
/// diffraction-aware sensor fusion -> near-field interpolation -> near-far
/// conversion -> exported HRTF table. The input is exactly what the phone
/// and earbuds captured; ground truth in the capture is ignored.
class CalibrationPipeline {
 public:
  using Options = CalibrationPipelineOptions;

  explicit CalibrationPipeline(Options opts = {});

  /// Runs the full pipeline. Throws InvalidArgument only for a structurally
  /// empty capture (no stops at all); every data-quality failure —
  /// clipping, dropouts, too few usable stops, non-converging fusion — is
  /// absorbed into the returned status/diagnostics instead of an exception.
  PersonalHrtf run(const sim::CalibrationCapture& capture) const;

  /// Instrumented run: identical output to run(capture), but additionally
  /// fills `report` (when non-null) with one StageReport per pipeline
  /// stage, in execution order:
  ///
  ///   - "extract"   — wallMs; `stops` (capture stops processed),
  ///                   `tapsDetected` (stops with a first tap in both ears)
  ///   - "fusion"    — wallMs; `iterations` (Nelder-Mead total over
  ///                   restarts), `restarts`, `converged` (0/1),
  ///                   `localized` (stops the localizer placed),
  ///                   `objectiveDeg2` (final Eq. 2 objective incl. prior),
  ///                   `residualRmsDeg` (RMS IMU-vs-acoustic disagreement)
  ///   - "nearfield" — wallMs; `usableStops`, `medianRadiusM`,
  ///                   `tapAlignRmsUs` (per-stop RMS error between the
  ///                   measured interaural first-tap delay and the fused
  ///                   diffraction model's prediction, microseconds)
  ///   - "nearfar"   — wallMs; `entries` (far-field table angles)
  ///   - "gesture"   — wallMs; `ok` (0/1), `issues` (flag count)
  ///
  /// Timings come from a dedicated steady-clock timer, so the report works
  /// even when the build compiles trace spans out.
  PersonalHrtf run(const sim::CalibrationCapture& capture,
                   obs::RunReport* report) const;

  /// Abortable run: identical to run(capture, report), but additionally
  /// polls `abort` (when non-null) at every stage boundary. Once the token
  /// is due — cancelled or past its deadline — the pipeline stops doing
  /// work and returns the population-average fallback with status kFailed,
  /// aborted = true, and a diagnostic naming the abort. Null behaves
  /// exactly like the two-argument overload.
  PersonalHrtf run(const sim::CalibrationCapture& capture,
                   obs::RunReport* report, const RunAbortToken* abort) const;

  /// Post-extraction pipeline: quality gating, fusion, near-field,
  /// near-far, and gesture validation over already-extracted per-stop
  /// channels (`channels[i]` belongs to `capture.stops[i]`). This is the
  /// code path batch run() takes after extractChannels, exposed so a
  /// streaming session that extracted its stops incrementally can finalize
  /// through the *identical* stages — which is what makes a streaming
  /// session that saw every stop produce a bitwise-identical table to the
  /// batch run (see docs/STREAMING.md). Same totality, report ("extract"
  /// stage values are set when the report already carries that stage),
  /// and abort semantics as run().
  PersonalHrtf runFromChannels(const sim::CalibrationCapture& capture,
                               const std::vector<BinauralChannel>& channels,
                               obs::RunReport* report = nullptr,
                               const RunAbortToken* abort = nullptr) const;

  /// Public entry to the terminal fallback: the population-average table
  /// with status kFailed and the given diagnostics attached. For callers
  /// that never assembled a usable capture at all (a cancelled or empty
  /// streaming session); batch runs reach the same code internally.
  PersonalHrtf populationFallback(const sim::CalibrationCapture& capture,
                                  std::vector<obs::Diagnostic> diagnostics,
                                  obs::RunReport* report = nullptr) const;

  /// Intermediate access for experiments: per-stop channels only.
  std::vector<BinauralChannel> extractChannels(
      const sim::CalibrationCapture& capture) const;

  /// Intermediate access: fusion measurements derived from channels.
  static std::vector<FusionMeasurement> toFusionMeasurements(
      const sim::CalibrationCapture& capture,
      const std::vector<BinauralChannel>& channels);

 private:
  /// Terminal fallback: population-average table, status kFailed. Used when
  /// the capture cannot support personalization at all.
  PersonalHrtf fallbackResult(const sim::CalibrationCapture& capture,
                              std::vector<obs::Diagnostic> diagnostics,
                              obs::RunReport* report) const;

  Options opts_;
};

}  // namespace uniq::core
