#include "core/near_field_hrtf.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "dsp/fractional_delay.h"
#include "geometry/diffraction.h"
#include "geometry/polar.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace uniq::core {

const head::Hrir& NearFieldTable::at(double thetaDeg) const {
  UNIQ_REQUIRE(!byDegree.empty(), "empty near-field table");
  const auto idx = static_cast<std::size_t>(
      clamp(std::lround(thetaDeg), 0.0, static_cast<double>(byDegree.size() - 1)));
  return byDegree[idx];
}

NearFieldHrtfBuilder::NearFieldHrtfBuilder(Options opts) : opts_(opts) {
  UNIQ_REQUIRE(opts_.outputLength >= 64, "output length too short");
  UNIQ_REQUIRE(opts_.amplitudeBlend >= 0.0 && opts_.amplitudeBlend <= 1.0,
               "amplitudeBlend must be in [0,1]");
}

namespace {

/// One usable calibration stop, with each ear's channel re-anchored so its
/// own first tap sits at `alignSample` (per-ear alignment makes linear
/// interpolation between neighboring angles meaningful — the paper aligns
/// HRIRs "carefully along their first taps before the interpolation").
struct AlignedStop {
  double angleDeg;
  double radiusM;
  std::vector<double> left;   // first tap at alignSample
  std::vector<double> right;  // first tap at alignSample
  double energyLeft;
  double energyRight;
};

std::vector<double> alignChannel(const std::vector<double>& channel,
                                 double tapSeconds, double sampleRate,
                                 double alignSample, std::size_t length) {
  const double shift = alignSample - tapSeconds * sampleRate;
  auto shifted = dsp::fractionalShift(channel, shift);
  shifted.resize(length, 0.0);
  return shifted;
}

}  // namespace

NearFieldTable NearFieldHrtfBuilder::build(
    const std::vector<FusedStop>& stops,
    const std::vector<BinauralChannel>& channels,
    const head::HeadParameters& headParams) const {
  UNIQ_SPAN("nearfield.build");
  UNIQ_REQUIRE(stops.size() == channels.size(),
               "stops and channels must be parallel");

  std::vector<AlignedStop> usable;
  double sampleRate = 0.0;
  std::vector<double> radii;
  for (std::size_t i = 0; i < stops.size(); ++i) {
    const auto& stop = stops[i];
    const auto& ch = channels[i];
    if (!stop.localized || !ch.firstTapLeftSec || !ch.firstTapRightSec)
      continue;
    sampleRate = ch.sampleRate;
    AlignedStop a;
    a.angleDeg = stop.angleDeg;
    a.radiusM = stop.radiusM;
    a.left = alignChannel(ch.left, *ch.firstTapLeftSec, ch.sampleRate,
                          opts_.alignSample, opts_.outputLength);
    a.right = alignChannel(ch.right, *ch.firstTapRightSec, ch.sampleRate,
                           opts_.alignSample, opts_.outputLength);
    a.energyLeft = head::channelEnergy(a.left);
    a.energyRight = head::channelEnergy(a.right);
    if (a.energyLeft < 1e-12 || a.energyRight < 1e-12) continue;
    usable.push_back(std::move(a));
    radii.push_back(stop.radiusM);
  }
  UNIQ_REQUIRE(usable.size() >= 4, "too few usable stops for interpolation");
  obs::registry().gauge("nearfield.usable_stops").set(
      static_cast<double>(usable.size()));

  std::sort(usable.begin(), usable.end(),
            [](const AlignedStop& x, const AlignedStop& y) {
              return x.angleDeg < y.angleDeg;
            });
  std::sort(radii.begin(), radii.end());
  const double medianRadius = radii[radii.size() / 2];

  NearFieldTable table;
  table.sampleRate = sampleRate;
  table.headParams = headParams;
  table.medianRadiusM = medianRadius;
  for (const auto& a : usable) table.sourceAnglesDeg.push_back(a.angleDeg);
  table.byDegree.resize(181);
  table.tapLeftSamples.resize(181);
  table.tapRightSamples.resize(181);

  const geo::HeadBoundary boundary(headParams.a, headParams.b, headParams.c,
                                   opts_.boundaryResolution);

  // Each degree reads shared immutable state (`usable`, the boundary) and
  // writes only its own table entries, so the 181 angles fan out across the
  // pool with thread-count-independent results.
  common::parallelFor(0, 181, [&](std::size_t degIndex) {
    const int deg = static_cast<int>(degIndex);
    // Bracketing measurements (clamped at the sweep ends).
    const double g = static_cast<double>(deg);
    std::size_t hi = 0;
    while (hi < usable.size() && usable[hi].angleDeg < g) ++hi;
    std::size_t lo;
    double w;  // weight of `hi`
    if (hi == 0) {
      lo = hi = 0;
      w = 0.0;
    } else if (hi == usable.size()) {
      lo = hi = usable.size() - 1;
      w = 0.0;
    } else {
      lo = hi - 1;
      const double span = usable[hi].angleDeg - usable[lo].angleDeg;
      w = span > 1e-9 ? (g - usable[lo].angleDeg) / span : 0.0;
    }

    head::Hrir hrir;
    hrir.sampleRate = sampleRate;
    hrir.left.resize(opts_.outputLength);
    hrir.right.resize(opts_.outputLength);
    for (std::size_t s = 0; s < opts_.outputLength; ++s) {
      hrir.left[s] = lerp(usable[lo].left[s], usable[hi].left[s], w);
      hrir.right[s] = lerp(usable[lo].right[s], usable[hi].right[s], w);
    }

    // Model-expected first-tap delays at this angle.
    const geo::Vec2 p = geo::pointFromPolarDeg(g, medianRadius);
    const auto pathL = geo::nearFieldPath(boundary, p, geo::Ear::kLeft);
    const auto pathR = geo::nearFieldPath(boundary, p, geo::Ear::kRight);
    const double dMin = std::min(pathL.length, pathR.length);
    const double tapL =
        opts_.alignSample + (pathL.length - dMin) / kSpeedOfSound * sampleRate;
    const double tapR =
        opts_.alignSample + (pathR.length - dMin) / kSpeedOfSound * sampleRate;

    if (opts_.modelCorrection) {
      // Re-impose the model's interaural time difference: both channels
      // currently have their first taps at alignSample.
      hrir.left = dsp::fractionalShift(hrir.left, tapL - opts_.alignSample);
      hrir.right = dsp::fractionalShift(hrir.right, tapR - opts_.alignSample);

      // Blend the measured interaural level difference toward the model's.
      const double eL = head::channelEnergy(hrir.left);
      const double eR = head::channelEnergy(hrir.right);
      if (eL > 1e-12 && eR > 1e-12 && opts_.amplitudeBlend > 0.0) {
        const double beta = 8.0;  // same creeping attenuation as the model
        const double ampL = (1.0 / std::max(pathL.length, 0.05)) *
                            std::exp(-beta * pathL.arcLength);
        const double ampR = (1.0 / std::max(pathR.length, 0.05)) *
                            std::exp(-beta * pathR.arcLength);
        const double measuredIldDb = 10.0 * std::log10(eL / eR);
        const double modelIldDb = 20.0 * std::log10(ampL / ampR);
        const double correctionDb =
            opts_.amplitudeBlend * (modelIldDb - measuredIldDb);
        const double gain = std::pow(10.0, correctionDb / 40.0);
        for (auto& v : hrir.left) v *= gain;
        for (auto& v : hrir.right) v /= gain;
      }
    } else {
      // No correction: keep per-ear alignment (taps at alignSample).
    }

    table.tapLeftSamples[deg] = opts_.modelCorrection ? tapL
                                                      : opts_.alignSample;
    table.tapRightSamples[deg] = opts_.modelCorrection ? tapR
                                                       : opts_.alignSample;
    table.byDegree[deg] = std::move(hrir);
  }, opts_.numThreads);
  return table;
}

}  // namespace uniq::core
