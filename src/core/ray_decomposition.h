#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "optim/linalg.h"

namespace uniq::core {

/// Reproduction of the paper's Section 4.3 "additional attempts" — the
/// honest negative result. The near-field HRTF at phone position X_k is a
/// sum over ray directions (Eq. 4); if the phone's TWO speakers could shape
/// narrow time-varying beams w_t(theta) (Eq. 6), the per-ray components
/// H(X_k, theta_i) could be solved from multiple measurements. The paper
/// found the system ill-ranked because two speakers cannot form a narrow
/// beam; this module builds that exact system so the conclusion can be
/// demonstrated quantitatively (condition numbers, recovery error vs SNR).
struct SpeakerBeamformingStudyOptions {
  /// Ray directions the decomposition solves for.
  std::size_t rayCount = 12;
  /// Number of time-varying beam patterns (measurements).
  std::size_t patternCount = 48;
  /// Spacing of the phone's two speakers, meters (a phone's earpiece to
  /// loudspeaker distance).
  double speakerSpacingM = 0.12;
  /// Single analysis frequency, Hz (the system is per-frequency).
  double frequencyHz = 4000.0;
  std::uint64_t seed = 17;
};

struct RayRecoveryResult {
  /// 2-norm condition number of the real-embedded beamforming matrix.
  double conditionNumber = 0.0;
  /// Relative L2 error of the recovered per-ray components, noiseless.
  double noiselessError = 0.0;
  /// Relative L2 error at the given measurement SNR.
  double noisyError = 0.0;
  double snrDb = 0.0;
};

/// Build the (2T x 2N) real embedding of the complex system
/// y_t = sum_i w_t(theta_i) H_i for random speaker phase/amplitude
/// patterns. Columns 2i, 2i+1 carry Re/Im of H_i.
optim::Matrix buildBeamformingMatrix(
    const SpeakerBeamformingStudyOptions& opts);

/// Full study: synthesize ground-truth per-ray components, generate the
/// measurements, solve the least-squares system, and report errors.
RayRecoveryResult runRayRecoveryStudy(
    const SpeakerBeamformingStudyOptions& opts, double snrDb = 30.0);

/// Condition number of the same system if the phone had `speakers` ideal
/// emitters (the counterfactual: more speakers -> narrower beams -> better
/// conditioning). Exposed so the bench can show the trend the paper argues.
double conditionNumberForSpeakerCount(
    const SpeakerBeamformingStudyOptions& opts, std::size_t speakers);

}  // namespace uniq::core
