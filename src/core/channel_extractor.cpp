#include "core/channel_extractor.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "dsp/deconvolution.h"
#include "dsp/fft_plan.h"
#include "dsp/peak_picking.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace uniq::core {

namespace {

/// Fraction of samples flat at the waveform peak (within 0.5%): the
/// signature a limiter or ADC overdrive leaves. Clean noisy audio touches
/// its peak only a handful of times.
double clipFraction(const std::vector<double>& x) {
  double peak = 0.0;
  for (double v : x) peak = std::max(peak, std::fabs(v));
  if (peak <= 0.0) return 1.0;  // dead channel: worst case
  std::size_t flat = 0;
  for (double v : x)
    if (std::fabs(v) >= 0.995 * peak) ++flat;
  return static_cast<double>(flat) / static_cast<double>(x.size());
}

/// Peak-to-floor ratio (dB) of a deconvolved channel: the peak magnitude
/// over the median absolute sample. Must run before room-reflection
/// windowing zeroes the floor.
double tapSnrDb(const std::vector<double>& h) {
  if (h.empty()) return 0.0;
  double peak = 0.0;
  std::vector<double> mags(h.size());
  for (std::size_t i = 0; i < h.size(); ++i) {
    mags[i] = std::fabs(h[i]);
    peak = std::max(peak, mags[i]);
  }
  std::nth_element(mags.begin(), mags.begin() + mags.size() / 2, mags.end());
  const double floor = mags[mags.size() / 2];
  if (peak <= 0.0) return 0.0;
  return 20.0 * std::log10(peak / std::max(floor, peak * 1e-9));
}

}  // namespace

ChannelExtractor::ChannelExtractor(
    std::vector<dsp::Complex> hardwareResponseEstimate, double sampleRate,
    Options opts)
    : hardwareEstimate_(std::move(hardwareResponseEstimate)),
      sampleRate_(sampleRate),
      opts_(opts) {
  UNIQ_REQUIRE(sampleRate_ > 8000, "sample rate too low");
  UNIQ_REQUIRE(opts_.channelLength >= 64, "channel length too short");
}

std::vector<double> ChannelExtractor::extractEar(
    const std::vector<double>& recording,
    const std::vector<double>& source) const {
  UNIQ_REQUIRE(!recording.empty() && !source.empty(), "empty input");
  const std::size_t n =
      dsp::nextPowerOfTwo(recording.size() + source.size());
  const auto plan = dsp::fftPlan(n);
  // Real inputs: half-spectrum transforms (bins 0..n/2) carry everything.
  std::vector<double> py(n, 0.0);
  std::vector<double> px(n, 0.0);
  std::copy(recording.begin(), recording.end(), py.begin());
  std::copy(source.begin(), source.end(), px.begin());
  const auto fy = plan->rfft(py);
  auto fx = plan->rfft(px);

  // Fold the estimated hardware response into the known transmit chain so
  // the spectral division compensates it in one step.
  if (opts_.compensateHardware && !hardwareEstimate_.empty()) {
    const std::size_t rn = hardwareEstimate_.size();
    for (std::size_t k = 0; k <= n / 2; ++k) {
      const double frac = static_cast<double>(k) / static_cast<double>(n);
      const auto rk = static_cast<std::size_t>(std::min<double>(
          std::lround(frac * static_cast<double>(rn)),
          static_cast<double>(rn / 2)));
      fx[k] *= hardwareEstimate_[rk];
    }
  }

  const auto fh =
      dsp::regularizedSpectralDivide(fy, fx, opts_.relativeRegularization);
  const auto time = plan->irfft(fh);
  std::vector<double> h(opts_.channelLength, 0.0);
  const std::size_t keep = std::min<std::size_t>(opts_.channelLength, n);
  for (std::size_t i = 0; i < keep; ++i) h[i] = time[i];
  return h;
}

std::pair<std::vector<double>, std::vector<double>>
ChannelExtractor::extractEars(const std::vector<double>& leftRecording,
                              const std::vector<double>& rightRecording,
                              const std::vector<double>& source) const {
  const std::size_t n =
      dsp::nextPowerOfTwo(leftRecording.size() + source.size());
  const auto plan = dsp::fftPlan(n);
  std::vector<std::vector<double>> pads(2, std::vector<double>(n, 0.0));
  std::copy(leftRecording.begin(), leftRecording.end(), pads[0].begin());
  std::copy(rightRecording.begin(), rightRecording.end(), pads[1].begin());
  const auto fys = plan->rfftBatch(pads);

  std::vector<double> px(n, 0.0);
  std::copy(source.begin(), source.end(), px.begin());
  auto fx = plan->rfft(px);
  // Hardware compensation applies to the transmit chain only, so the
  // compensated source spectrum is shared by both ears.
  if (opts_.compensateHardware && !hardwareEstimate_.empty()) {
    const std::size_t rn = hardwareEstimate_.size();
    for (std::size_t k = 0; k <= n / 2; ++k) {
      const double frac = static_cast<double>(k) / static_cast<double>(n);
      const auto rk = static_cast<std::size_t>(std::min<double>(
          std::lround(frac * static_cast<double>(rn)),
          static_cast<double>(rn / 2)));
      fx[k] *= hardwareEstimate_[rk];
    }
  }

  std::vector<std::vector<dsp::Complex>> fhs(2);
  for (int e = 0; e < 2; ++e)
    fhs[static_cast<std::size_t>(e)] = dsp::regularizedSpectralDivide(
        fys[static_cast<std::size_t>(e)], fx, opts_.relativeRegularization);
  const auto times = plan->irfftBatch(fhs);

  std::pair<std::vector<double>, std::vector<double>> out;
  const std::size_t keep = std::min<std::size_t>(opts_.channelLength, n);
  for (int e = 0; e < 2; ++e) {
    auto& h = e == 0 ? out.first : out.second;
    h.assign(opts_.channelLength, 0.0);
    const auto& time = times[static_cast<std::size_t>(e)];
    for (std::size_t i = 0; i < keep; ++i) h[i] = time[i];
  }
  return out;
}

BinauralChannel ChannelExtractor::extract(
    const std::vector<double>& leftRecording,
    const std::vector<double>& rightRecording,
    const std::vector<double>& source) const {
  UNIQ_SPAN("extract.stop");
  static obs::Counter& extracted =
      obs::registry().counter("extract.stops");
  static obs::Counter& tapMisses =
      obs::registry().counter("extract.tap_misses");
  extracted.inc();
  BinauralChannel out;
  out.sampleRate = sampleRate_;
  UNIQ_REQUIRE(!leftRecording.empty() && !rightRecording.empty() &&
                   !source.empty(),
               "empty input");
  if (leftRecording.size() == rightRecording.size()) {
    auto ears = extractEars(leftRecording, rightRecording, source);
    out.left = std::move(ears.first);
    out.right = std::move(ears.second);
  } else {
    // Unequal capture lengths pick different FFT sizes per ear; keep the
    // single-ear path for that case.
    out.left = extractEar(leftRecording, source);
    out.right = extractEar(rightRecording, source);
  }

  out.quality.clipFractionLeft = clipFraction(leftRecording);
  out.quality.clipFractionRight = clipFraction(rightRecording);
  out.quality.tapSnrLeftDb = tapSnrDb(out.left);
  out.quality.tapSnrRightDb = tapSnrDb(out.right);
  out.quality.clipped =
      out.quality.clipFractionLeft > opts_.maxClipFraction ||
      out.quality.clipFractionRight > opts_.maxClipFraction;
  out.quality.lowSnr = out.quality.tapSnrLeftDb < opts_.minTapSnrDb ||
                       out.quality.tapSnrRightDb < opts_.minTapSnrDb;

  dsp::FirstTapOptions tapOpts;
  tapOpts.relativeThreshold = opts_.firstTapRelativeThreshold;
  const double preGuard = opts_.preGuardSec * sampleRate_;
  const double window = opts_.headWindowSec * sampleRate_;

  for (int e = 0; e < 2; ++e) {
    auto& channel = e == 0 ? out.left : out.right;
    auto& tapOut = e == 0 ? out.firstTapLeftSec : out.firstTapRightSec;
    const auto tap = dsp::findFirstTap(channel, tapOpts);
    if (!tap) {
      tapMisses.inc();
      tapOut = std::nullopt;
      continue;
    }
    tapOut = tap->position / sampleRate_;
    // Zero everything outside [tap - preGuard, tap + headWindow]: earlier is
    // deconvolution noise, later is room reverberation.
    const auto lo = static_cast<long>(std::floor(tap->position - preGuard));
    const auto hi = static_cast<long>(std::ceil(tap->position + window));
    for (long i = 0; i < static_cast<long>(channel.size()); ++i) {
      if (i < lo || i > hi) channel[static_cast<std::size_t>(i)] = 0.0;
    }
  }
  out.quality.tapsDetected =
      out.firstTapLeftSec.has_value() && out.firstTapRightSec.has_value();
  return out;
}

}  // namespace uniq::core
