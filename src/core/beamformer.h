#pragma once

#include <vector>

#include "core/near_far.h"

namespace uniq::core {

struct BeamformerOptions {
  /// STFT frame length (power of two) and 50% hop.
  std::size_t frameLength = 4096;
  /// Diagonal loading relative to the per-bin covariance trace (robustness
  /// of the MPDR inverse to single-snapshot covariance estimates).
  double diagonalLoading = 3e-2;
  /// Band outside which the output is muted (matches the usable hardware
  /// band; avoids amplifying unmodeled noise).
  double bandLoHz = 150.0;
  double bandHiHz = 16000.0;
};

/// HRTF-aware binaural beamformer — the hearing-aid application the paper
/// motivates in Section 4.5 ("earphones could serve as hearing aids, and
/// beamform in the direction of a desired speech signal").
///
/// With only two microphones AND head/pinna distortion, classical
/// free-field steering vectors are wrong; instead the steering vector at
/// each frequency is the personalized far-field HRTF pair of the target
/// direction, and the combiner is a per-bin MPDR (minimum power
/// distortionless response):
///   w(f) = (R(f) + dI)^-1 h(f) / (h(f)^H (R(f) + dI)^-1 h(f)),
/// where R is the frame-averaged 2x2 spectral covariance of the ear
/// signals. Sound from the steered direction is passed distortionless
/// (equalized back to its source spectrum); directional interferers are
/// suppressed by the covariance inverse.
class BinauralBeamformer {
 public:
  using Options = BeamformerOptions;

  explicit BinauralBeamformer(const FarFieldTable& table, Options opts = {});

  /// Enhance the signal arriving from `thetaDeg`.
  std::vector<double> steer(const std::vector<double>& leftRecording,
                            const std::vector<double>& rightRecording,
                            double thetaDeg) const;

  /// Beam pattern diagnostic under spatially-white noise (where MPDR
  /// reduces to matched filtering): band-averaged normalized coherence of
  /// the steering template with the probe direction's template. 1.0 at the
  /// steering angle, < 1 elsewhere.
  double relativeResponse(double steerDeg, double probeDeg) const;

 private:
  const FarFieldTable& table_;
  Options opts_;
};

}  // namespace uniq::core
