#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "core/near_far.h"
#include "dsp/fft.h"

namespace uniq::core {

/// Result of a binaural angle-of-arrival estimate.
struct AoaEstimate {
  double angleDeg = 0.0;
  /// Value of the matching objective at the winning angle (lower = better).
  double score = 0.0;
  /// Best score among candidates at least 10 degrees away from the winner
  /// (infinity when no such candidate was scanned). The gap to `score` is
  /// the decision margin.
  double runnerUpScore = 0.0;
  /// Confidence margin: runnerUpScore - score (>= 0; larger = the winning
  /// angle beat genuinely different candidates more clearly). 0 when only
  /// one distinct angle was scanned. Also observed into the
  /// "aoa.known.margin" / "aoa.unknown.margin" metric histograms.
  double scoreMargin = 0.0;
  /// Margin-derived confidence in [0, 1): margin / (margin + 0.2), halved
  /// when the estimator had to fall back to a degraded path. A caller that
  /// needs hard estimates should gate on this rather than trusting every
  /// return equally.
  double confidence = 0.0;
  /// True when the primary estimation path failed (e.g. no detectable first
  /// taps with a known source) and the estimate came from a fallback.
  bool degraded = false;
};

struct AoaEstimatorOptions {
  /// Weight of the first-tap delay term in the known-source objective
  /// (paper Eq. 9's lambda), in units of [1/seconds] so the delay mismatch
  /// is commensurate with the correlation terms.
  double lambdaPerSecond = 3000.0;
  /// Angle grid step for the known-source search (degrees).
  double searchStepDeg = 1.0;
  /// Max correlation lag when matching channel shapes (samples).
  double shapeMaxLagSamples = 8.0;
  /// Deconvolution regularization for known-source channel extraction.
  double relativeRegularization = 1e-3;
  /// Keep this much channel after the first tap (room stripping).
  double headWindowSec = 2.5e-3;
  /// Relative-channel peak threshold for the unknown-source path.
  double peakRelativeThreshold = 0.45;
  /// Spectral band used by the Eq. 11 residual (Hz).
  double bandLoHz = 300.0;
  double bandHiHz = 14000.0;
  /// Aggregate the Eq. 11 residual over short frames instead of one
  /// whole-signal spectrum (helps tonal sources; ablation knob).
  bool frameAggregation = true;
  /// Threads used for the per-candidate template matching (0 = use the
  /// global pool, 1 = serial). Results are identical for any value.
  std::size_t numThreads = 0;
  /// Cache the per-angle template half-spectra the unknown-source residual
  /// (Eq. 11) needs, keyed by FFT size, inside the estimator. Off by
  /// default: a one-shot estimate would pay two extra spectra per candidate
  /// for nothing. The serving layer's BatchAoaEngine turns it on so a batch
  /// of queries against the same personalized table computes each template
  /// spectrum once instead of once per query. Scores are bitwise identical
  /// either way.
  bool cacheTemplateSpectra = false;
};

/// HRTF-aware binaural AoA estimation (paper Section 4.5). Classical array
/// techniques fail on earbuds because the head diffracts and the pinna
/// scatters the arriving signal; instead UNIQ matches the observed binaural
/// structure against the (personal) far-field HRTF templates.
class AoaEstimator {
 public:
  using Options = AoaEstimatorOptions;

  /// `table` provides the per-angle templates; pass a personalized table
  /// (UNIQ output), a ground-truth table, or the global template to compare
  /// personalization levels.
  explicit AoaEstimator(const FarFieldTable& table, Options opts = {});

  /// Known-source estimation (paper Eq. 9): extract the two ear channels by
  /// deconvolution and minimize
  ///   T(theta) = lambda*|t0 - t(theta)| + (1-cL(theta)) + (1-cR(theta)).
  /// When no first tap is detectable in either ear (degraded capture), falls
  /// back to the unknown-source path instead of throwing; the estimate comes
  /// back with degraded = true and halved confidence.
  AoaEstimate estimateKnown(const std::vector<double>& leftRecording,
                            const std::vector<double>& rightRecording,
                            const std::vector<double>& source) const;

  /// Unknown-source estimation (paper Eq. 10/11): peaks of the relative
  /// channel between the ears propose candidate AoAs (a front/back pair per
  /// delay); the multiplicative-form residual
  ///   || L x HRTF_R(theta) - R x HRTF_L(theta) ||
  /// picks the true one.
  AoaEstimate estimateUnknown(const std::vector<double>& leftRecording,
                              const std::vector<double>& rightRecording) const;

  /// Template interaural first-tap delay t(theta) in seconds (left minus
  /// right), as stored in the table; exposed for tests.
  double templateDelaySec(double thetaDeg) const;

 private:
  double knownSourceObjective(double thetaDeg, double t0Sec,
                              const std::vector<double>& hLeft,
                              const std::vector<double>& hRight) const;
  std::vector<double> candidateAnglesForDelay(double deltaSec) const;

  /// Left/right template half-spectra for one table angle at one FFT size.
  struct TemplateSpectra {
    std::vector<dsp::Complex> left;
    std::vector<dsp::Complex> right;
  };
  /// Spectra for table entry `degreeIndex` zero-padded to `n`, computed on
  /// first use and shared afterwards (only when
  /// Options::cacheTemplateSpectra is set; callers then hold a shared_ptr
  /// so a concurrent cache reset cannot pull the data out from under a
  /// running score). A size change drops the previous generation — batches
  /// have one recording length, so thrash is not a concern.
  std::shared_ptr<const TemplateSpectra> cachedTemplateSpectra(
      std::size_t degreeIndex, std::size_t n) const;
  /// Batch-fill the template-spectrum cache for every listed degree index
  /// not yet cached at size `n`, using one batched-FFT pass over all the
  /// missing left/right templates. The batched cascade applies the same
  /// operation sequence per member as a single transform, so the cached
  /// spectra stay bitwise identical to cachedTemplateSpectra's. No-op when
  /// Options::cacheTemplateSpectra is off.
  void prefillTemplateSpectra(const std::vector<std::size_t>& degreeIndices,
                              std::size_t n) const;

  const FarFieldTable& table_;
  Options opts_;
  mutable std::mutex specMutex_;
  mutable std::size_t specN_ = 0;
  mutable std::vector<std::shared_ptr<const TemplateSpectra>> spec_;
};

/// Train the Eq. 9 lambda weight on labelled far-field recordings
/// (the paper: "after training for the appropriate lambda"). Returns the
/// lambda from `grid` with the lowest mean absolute AoA error.
double trainLambda(const FarFieldTable& table,
                   const std::vector<double>& grid,
                   const std::vector<double>& trueAnglesDeg,
                   const std::vector<std::vector<double>>& leftRecordings,
                   const std::vector<std::vector<double>>& rightRecordings,
                   const std::vector<double>& source,
                   const AoaEstimatorOptions& baseOpts = {});

}  // namespace uniq::core
