#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/localizer.h"
#include "head/head_parameters.h"

namespace uniq::core {

/// One calibration stop as seen by the fusion stage.
struct FusionMeasurement {
  double imuAngleDeg = 0.0;       ///< alpha_i, gyro-integrated orientation
  double delayLeftSec = 0.0;      ///< first-tap delay at the left ear
  double delayRightSec = 0.0;     ///< first-tap delay at the right ear
  /// Index of the originating capture stop (bookkeeping for evaluation).
  std::size_t sourceIndex = 0;
};

/// A fused phone fix: the paper's Eq. 3, P((theta_i + alpha_i)/2, r_i).
struct FusedStop {
  double angleDeg = 0.0;
  double radiusM = 0.0;
  double imuAngleDeg = 0.0;
  double acousticAngleDeg = 0.0;
  bool localized = false;
  std::size_t sourceIndex = 0;  ///< originating capture stop
};

struct SensorFusionResult {
  head::HeadParameters headParams;
  std::vector<FusedStop> stops;
  /// Final objective value: mean squared IMU-vs-acoustic angle disagreement
  /// (deg^2) over localized stops.
  double meanSquaredResidualDeg2 = 0.0;
  /// Eq. 2 objective at the winning head parameters (includes the
  /// unlocalized penalty and the anthropometric prior; what the optimizer
  /// actually minimized).
  double finalObjectiveDeg2 = 0.0;
  std::size_t localizedCount = 0;
  /// Total Nelder-Mead iterations spent, summed over restarts.
  std::size_t iterations = 0;
  /// Number of optimizer restarts run (== SensorFusionOptions::restarts).
  std::size_t restartsUsed = 0;
  bool converged = false;
  /// solveRobust bookkeeping. `usable` is false when too few measurements
  /// survived to attempt a solve at all (strict solve() throws instead).
  bool usable = true;
  /// Source indices of stops dropped by the MAD outlier gate, ascending.
  std::vector<std::size_t> rejectedSourceIndices;
  /// Reject-and-retry rounds that actually removed a stop.
  std::size_t rejectRounds = 0;
  /// True when the widened-restart fallback ran after a non-converged solve.
  bool widened = false;
};

struct SensorFusionOptions {
  /// Boundary discretization used inside the optimization loop (coarser
  /// than the final rendering resolution for speed).
  std::size_t boundaryResolution = 128;
  std::size_t maxIterations = 120;
  /// Penalty (deg^2) charged for a stop the localizer cannot place.
  double unlocalizedPenalty = 400.0;
  /// Anthropometric prior pulling E toward the population average
  /// (deg^2 per m^2 of axis deviation); keeps the head estimate from
  /// drifting to the bounds when the IMU is noisy.
  double priorWeight = 5.0e4;
  /// Independent Nelder-Mead starts: restart 0 begins at the population-
  /// average head, later restarts at deterministically perturbed corners of
  /// the squashed parameter box; the best final objective wins. 1 (the
  /// default) reproduces the single-start behaviour exactly. Each restart
  /// is wrapped in a "dsf.restart" trace span.
  std::size_t restarts = 1;
  /// Threads used for the per-measurement localization loop inside the
  /// objective (0 = use the global pool, 1 = serial). The result is bitwise
  /// identical for any value: per-measurement costs land in per-index slots
  /// and are reduced in measurement order.
  std::size_t numThreads = 0;
  LocalizerOptions localizer{};

  // --- solveRobust (degraded-capture) knobs ---
  /// Fewest measurements worth solving with; below this solveRobust returns
  /// usable = false (and strict solve() throws).
  std::size_t minMeasurements = 6;
  /// Reject-and-retry rounds: after each solve, stops whose IMU-vs-acoustic
  /// residual is a MAD outlier are dropped and E is re-solved, at most this
  /// many times.
  std::size_t maxRejectRounds = 2;
  /// A localized stop is an outlier when its absolute residual exceeds
  /// rejectMadMultiplier * 1.4826 * MAD of all residuals...
  double rejectMadMultiplier = 3.5;
  /// ...and also exceeds this absolute floor (deg). Clean captures have
  /// tightly clustered residuals, so a pure MAD rule would reject healthy
  /// stops; a corrupted stop disagrees by tens of degrees.
  double rejectMinResidualDeg = 10.0;
  /// Restart count used by the widened re-solve that solveRobust runs when
  /// the primary solve fails to converge.
  std::size_t widenedRestarts = 8;
};

/// Diffraction-aware sensor fusion (paper Section 4.1): jointly estimates
/// the head parameters E = (a, b, c) and the phone locations by minimizing
/// the disagreement between gyro-integrated phone angles alpha_i and
/// acoustically localized angles theta_i(E) (Eq. 2), then fuses the two
/// angle estimates (Eq. 3).
class SensorFusion {
 public:
  using Options = SensorFusionOptions;

  explicit SensorFusion(Options opts = {});

  SensorFusionResult solve(
      const std::vector<FusionMeasurement>& measurements) const;

  /// Degradation-tolerant solve: never throws on bad data. Returns
  /// usable = false when fewer than Options::minMeasurements stops are
  /// available; otherwise solves, drops MAD-outlier stops (bounded rounds,
  /// never below minMeasurements), and re-solves with widened restarts when
  /// the optimizer fails to converge, keeping whichever result scores the
  /// better objective. Rejected stops still appear in `stops` (localized =
  /// false) so callers can report them; their source indices are listed in
  /// rejectedSourceIndices.
  SensorFusionResult solveRobust(
      const std::vector<FusionMeasurement>& measurements) const;

  /// Warm-started incremental solve for streaming calibration: one
  /// Nelder-Mead start seeded at `seed` (the previous estimate) instead of
  /// the population average, no widening, no outlier rounds. With the same
  /// SensorFusion instance the geometry LRU carries the seed's boundary and
  /// warm Brent brackets over from the previous solve, so a refinement
  /// after one new stop costs a fraction of a cold solve. Accepts any
  /// non-empty measurement set (live feedback wants an estimate long before
  /// solve()'s six-stop minimum); returns usable = false only when
  /// `measurements` is empty. This is a *running* estimate for coverage and
  /// convergence feedback — final tables come from solveRobust.
  SensorFusionResult solveIncremental(
      const std::vector<FusionMeasurement>& measurements,
      const std::optional<head::HeadParameters>& seed = std::nullopt) const;

  /// The Eq. 2 objective for a specific head-parameter candidate; exposed
  /// for tests and ablation benches.
  double objective(const head::HeadParameters& candidate,
                   const std::vector<FusionMeasurement>& measurements) const;

 private:
  /// Shared solve core: optimize E over `measurements` with `restarts`
  /// independent starts, then fuse. Assumes a non-empty measurement set;
  /// public entry points enforce their own minimums. When `seedStart` is
  /// non-null, restart 0 begins there instead of the population average
  /// (the warm start used by solveIncremental).
  SensorFusionResult solveWith(
      const std::vector<FusionMeasurement>& measurements,
      std::size_t restarts,
      const head::HeadParameters* seedStart = nullptr) const;

  /// A candidate head geometry with its localizer, built once per distinct
  /// (a, b, c) and reused. Nelder-Mead re-evaluates simplex vertices
  /// (shrinks, the accepted-point bookkeeping, and the final solve pass),
  /// so keying on the exact parameter bits turns those rebuilds into cache
  /// hits. Immutable after construction; safe to share across threads.
  struct CachedGeometry {
    geo::HeadBoundary boundary;
    Localizer localizer;
    CachedGeometry(const head::HeadParameters& p, std::size_t resolution,
                   const LocalizerOptions& lopts)
        : boundary(p.a, p.b, p.c, resolution), localizer(boundary, lopts) {}
    CachedGeometry(const CachedGeometry&) = delete;
    CachedGeometry& operator=(const CachedGeometry&) = delete;
  };

  /// Geometry for `candidate` from the small LRU cache (built on miss).
  std::shared_ptr<const CachedGeometry> geometryFor(
      const head::HeadParameters& candidate) const;

  Options opts_;

  // LRU of recently used geometries, most recent first. Guarded by
  // geometryMutex_ so concurrent objective() calls stay safe.
  mutable std::mutex geometryMutex_;
  mutable std::list<
      std::pair<head::HeadParameters, std::shared_ptr<const CachedGeometry>>>
      geometryLru_;
};

}  // namespace uniq::core
