#include "core/near_far.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/math_util.h"
#include "dsp/fractional_delay.h"
#include "geometry/diffraction.h"
#include "geometry/polar.h"
#include "obs/trace.h"

namespace uniq::core {

const head::Hrir& FarFieldTable::at(double thetaDeg) const {
  UNIQ_REQUIRE(!byDegree.empty(), "empty far-field table");
  const auto idx = static_cast<std::size_t>(clamp(
      std::lround(thetaDeg), 0.0, static_cast<double>(byDegree.size() - 1)));
  return byDegree[idx];
}

NearFarConverter::NearFarConverter(Options opts) : opts_(opts) {
  UNIQ_REQUIRE(opts_.outputLength >= 64, "output length too short");
}

namespace {

void accumulate(std::vector<double>& acc, const std::vector<double>& channel,
                double currentTap, double targetTap, double weight = 1.0) {
  const auto shifted = dsp::fractionalShift(channel, targetTap - currentTap);
  for (std::size_t i = 0; i < acc.size() && i < shifted.size(); ++i)
    acc[i] += weight * shifted[i];
}

}  // namespace

FarFieldTable NearFarConverter::convert(const NearFieldTable& nearTable) const {
  UNIQ_SPAN("nearfar.convert");
  UNIQ_REQUIRE(nearTable.byDegree.size() == 181, "near table must cover 0-180");
  const auto& E = nearTable.headParams;
  const geo::HeadBoundary boundary(E.a, E.b, E.c, opts_.boundaryResolution);
  const double fs = nearTable.sampleRate;
  const double radius = nearTable.medianRadiusM;

  FarFieldTable far;
  far.sampleRate = fs;
  far.headParams = E;
  far.byDegree.resize(181);
  far.tapLeftSamples.resize(181);
  far.tapRightSamples.resize(181);

  // Precompute measurement-circle positions for all near-table angles.
  std::vector<geo::Vec2> positions(181);
  for (int psi = 0; psi <= 180; ++psi)
    positions[psi] = geo::pointFromPolarDeg(static_cast<double>(psi), radius);

  for (int deg = 0; deg <= 180; ++deg) {
    const double theta = static_cast<double>(deg);
    const geo::Vec2 d = -geo::directionFromAzimuthDeg(theta);
    const geo::Vec2 e = d.perp();

    // Crown point Q: boundary point facing the incoming wave head-on.
    const double crownIdx = boundary.indexWithNormal(-d);
    const double sQ = dot(boundary.pointAt(crownIdx), e);

    head::Hrir hrir;
    hrir.sampleRate = fs;
    hrir.left.assign(opts_.outputLength, 0.0);
    hrir.right.assign(opts_.outputLength, 0.0);

    const auto pathL = geo::farFieldPath(boundary, d, geo::Ear::kLeft);
    const auto pathR = geo::farFieldPath(boundary, d, geo::Ear::kRight);
    const double dMin = std::min(pathL.length, pathR.length);
    const double tapLFar =
        opts_.alignSample + (pathL.length - dMin) / kSpeedOfSound * fs;
    const double tapRFar =
        opts_.alignSample + (pathR.length - dMin) / kSpeedOfSound * fs;

    for (geo::Ear ear : {geo::Ear::kLeft, geo::Ear::kRight}) {
      const auto& path = ear == geo::Ear::kLeft ? pathL : pathR;
      auto& channel = ear == geo::Ear::kLeft ? hrir.left : hrir.right;
      const auto& nearTaps = ear == geo::Ear::kLeft
                                 ? nearTable.tapLeftSamples
                                 : nearTable.tapRightSamples;

      // Impact-parameter band of rays feeding this ear: between the crown
      // ray and the ear's grazing/direct ray.
      const double sEar = path.diffracted ? dot(path.tangentPoint, e)
                                          : dot(earPosition(boundary, ear), e);
      const double sLo = std::min(sQ, sEar);
      const double sHi = std::max(sQ, sEar);
      // Contributions are weighted toward the ray that actually reaches the
      // ear (impact parameter sEar); rays near the crown graze away from it
      // and carry less of this ear's far-field character. The weighting
      // keeps the averaged response angle-specific enough to preserve
      // front/back spectral cues.
      const double sigma =
          std::max((sHi - sLo) / opts_.raySigmaDivisor, 1e-4);
      const double ampFar =
          std::exp(-opts_.arcAttenuationNepersPerMeter * path.arcLength);

      // Each near-field contribution is rescaled by the model's far/near
      // attenuation ratio. This converts the geometric (distance + creep)
      // part of the level to far-field conditions while PRESERVING the
      // measured pinna gain — the interaural level detail that
      // distinguishes front from back for an application like binaural AoA.
      double weightSum = 0.0;
      for (int psi = 0; psi <= 180; ++psi) {
        const geo::Vec2 p = positions[psi];
        if (dot(d, p) >= 0.0) continue;  // downstream of the head center
        const double s = dot(p, e);
        if (s < sLo || s > sHi) continue;
        const double w = std::exp(-0.5 * square((s - sEar) / sigma));
        const auto nearPath = geo::nearFieldPath(boundary, p, ear);
        const double ampNear =
            (1.0 / std::max(nearPath.length, 0.05)) *
            std::exp(-opts_.arcAttenuationNepersPerMeter *
                     nearPath.arcLength);
        const auto& src = ear == geo::Ear::kLeft
                              ? nearTable.byDegree[psi].left
                              : nearTable.byDegree[psi].right;
        accumulate(channel, src, nearTaps[psi], opts_.alignSample,
                   w * ampFar / ampNear);
        weightSum += w;
      }
      if (weightSum < 1e-12) {
        // Sparse-coverage fallback: use the near-field response at the same
        // polar angle.
        const auto nearPath =
            geo::nearFieldPath(boundary, positions[deg], ear);
        const double ampNear =
            (1.0 / std::max(nearPath.length, 0.05)) *
            std::exp(-opts_.arcAttenuationNepersPerMeter *
                     nearPath.arcLength);
        const auto& src = ear == geo::Ear::kLeft
                              ? nearTable.byDegree[deg].left
                              : nearTable.byDegree[deg].right;
        accumulate(channel, src, nearTaps[deg], opts_.alignSample,
                   ampFar / ampNear);
        weightSum = 1.0;
      }
      for (auto& v : channel) v /= weightSum;

      const double targetTap = ear == geo::Ear::kLeft ? tapLFar : tapRFar;
      channel = dsp::fractionalShift(channel, targetTap - opts_.alignSample);
    }

    far.tapLeftSamples[deg] = tapLFar;
    far.tapRightSamples[deg] = tapRFar;
    far.byDegree[deg] = std::move(hrir);
  }
  return far;
}

FarFieldTable farTableFromDatabase(const head::HrtfDatabase& db,
                                   double alignSample,
                                   std::size_t outputLength) {
  const auto& boundary = db.boundary();
  const double fs = db.options().sampleRate;
  FarFieldTable far;
  far.sampleRate = fs;
  far.headParams = db.subject().headParams;
  far.byDegree.resize(181);
  far.tapLeftSamples.resize(181);
  far.tapRightSamples.resize(181);
  for (int deg = 0; deg <= 180; ++deg) {
    const double theta = static_cast<double>(deg);
    const geo::Vec2 d = -geo::directionFromAzimuthDeg(theta);
    const auto pathL = geo::farFieldPath(boundary, d, geo::Ear::kLeft);
    const auto pathR = geo::farFieldPath(boundary, d, geo::Ear::kRight);
    const double dMin = std::min(pathL.length, pathR.length);
    const double tapL = alignSample + (pathL.length - dMin) / kSpeedOfSound * fs;
    const double tapR = alignSample + (pathR.length - dMin) / kSpeedOfSound * fs;
    auto hrir = db.farField(theta);
    // The database anchors taps at leadSec + path/v; move the earlier ear's
    // tap to alignSample while preserving the interaural delay exactly.
    const double currentMinTap =
        (db.options().farFieldLeadSec + dMin / kSpeedOfSound) * fs;
    const double shift = alignSample - currentMinTap;
    hrir.left = dsp::fractionalShift(hrir.left, shift);
    hrir.right = dsp::fractionalShift(hrir.right, shift);
    hrir.left.resize(outputLength, 0.0);
    hrir.right.resize(outputLength, 0.0);
    far.tapLeftSamples[deg] = tapL;
    far.tapRightSamples[deg] = tapR;
    far.byDegree[deg] = std::move(hrir);
  }
  return far;
}

NearFieldTable nearTableFromDatabase(const head::HrtfDatabase& db,
                                     double radiusM, double alignSample,
                                     std::size_t outputLength) {
  UNIQ_REQUIRE(radiusM > 0.0, "radius must be positive");
  const auto& boundary = db.boundary();
  const double fs = db.options().sampleRate;
  NearFieldTable table;
  table.sampleRate = fs;
  table.headParams = db.subject().headParams;
  table.medianRadiusM = radiusM;
  table.byDegree.resize(181);
  table.tapLeftSamples.resize(181);
  table.tapRightSamples.resize(181);
  for (int deg = 0; deg <= 180; ++deg) {
    const double theta = static_cast<double>(deg);
    const geo::Vec2 p = geo::pointFromPolarDeg(theta, radiusM);
    const auto pathL = geo::nearFieldPath(boundary, p, geo::Ear::kLeft);
    const auto pathR = geo::nearFieldPath(boundary, p, geo::Ear::kRight);
    const double dMin = std::min(pathL.length, pathR.length);
    auto hrir = db.nearField(theta, radiusM);
    // The database's time origin is the source emission instant; move the
    // earlier ear's tap to alignSample, preserving the interaural delay.
    const double shift = alignSample - dMin / kSpeedOfSound * fs;
    hrir.left = dsp::fractionalShift(hrir.left, shift);
    hrir.right = dsp::fractionalShift(hrir.right, shift);
    hrir.left.resize(outputLength, 0.0);
    hrir.right.resize(outputLength, 0.0);
    table.tapLeftSamples[deg] =
        alignSample + (pathL.length - dMin) / kSpeedOfSound * fs;
    table.tapRightSamples[deg] =
        alignSample + (pathR.length - dMin) / kSpeedOfSound * fs;
    table.byDegree[deg] = std::move(hrir);
    // Synthesized at every degree: full coverage, no interpolation gaps.
    table.sourceAnglesDeg.push_back(theta);
  }
  return table;
}

}  // namespace uniq::core
