#pragma once

#include <optional>
#include <string>

#include "core/hrtf_table.h"

namespace uniq::core {

/// Serialization of the exported HRTF lookup table (paper Section 4.4:
/// "the near and far-field HRTFs estimated by UNIQ can now be exported to
/// earphone applications as a lookup table"). The format is a simple
/// little-endian binary container: header, head parameters, then per-degree
/// near/far HRIR pairs and their tap anchors.
///
/// Version history:
///   1 — initial format.

/// Write the table to `path`. Throws on I/O failure.
void saveHrtfTable(const std::string& path, const HrtfTable& table);

/// Read a table previously written by saveHrtfTable. Validates the magic,
/// version, row counts, sample-rate consistency, anthropometric plausibility
/// of the head parameters, and that every sample is finite (no NaN/inf ever
/// reaches a playback path); throws InvalidArgument naming the byte offset
/// of anything malformed.
HrtfTable loadHrtfTable(const std::string& path);

/// Non-throwing variant of loadHrtfTable for speculative reads (the serving
/// layer's table cache probes disk on every cold miss, and a missing or
/// corrupt file there is an expected outcome, not an error). Returns the
/// table on success; on failure returns nullopt and, when `error` is
/// non-null, stores the reason — same validation and messages as
/// loadHrtfTable.
std::optional<HrtfTable> tryLoadHrtfTable(const std::string& path,
                                          std::string* error = nullptr);

}  // namespace uniq::core
