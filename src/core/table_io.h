#pragma once

#include <optional>
#include <string>

#include "core/hrtf_table.h"

namespace uniq::core {

/// Serialization of the exported HRTF lookup table (paper Section 4.4:
/// "the near and far-field HRTFs estimated by UNIQ can now be exported to
/// earphone applications as a lookup table"). Two little-endian binary
/// containers share the load path and are told apart by their magic:
///
///   UNIQHRTF (kFloat64)   — header, head parameters, then per-degree
///                           near/far HRIR pairs and tap anchors as raw
///                           IEEE doubles. Version history: 1 — initial.
///   UNIQHRTQ (kQuantized) — same logical content, compact: HRIR samples
///                           are int16 against one float32 scale per
///                           degree (max-abs over both ears), taps are
///                           Q8.8 fixed-point int16. ~4x smaller, sized
///                           for population-scale storage (the serving
///                           layer's disk tier prefers it; see
///                           docs/CAPACITY.md for the error budget and
///                           sizing model). Version history: 1 — initial.
enum class TableFormat {
  kFloat64,   ///< UNIQHRTF: raw double samples (bit-exact round trip)
  kQuantized  ///< UNIQHRTQ: int16 samples + per-degree scale
};

/// Stable lower-case name ("float64", "quantized").
const char* tableFormatName(TableFormat format);

/// Quantization error bounds of the kQuantized container, pinned by tests
/// and documented in docs/CAPACITY.md. For every degree, the absolute
/// round-trip error of any sample is at most kQuantSampleError times that
/// degree's peak |sample| (over both ears): half an int16 step (1/65534)
/// plus headroom for the float32 rounding of the stored scale; tap anchors
/// round-trip within kQuantTapErrorSamples samples.
inline constexpr double kQuantSampleError = (1.0 + 1e-6) / 65534.0;
inline constexpr double kQuantTapErrorSamples = 1.0 / 512.0;

/// Write the table to `path` in the kFloat64 container. Throws on I/O
/// failure.
void saveHrtfTable(const std::string& path, const HrtfTable& table);

/// Write the table to `path` in the compact kQuantized container. Requires
/// uniform HRIR lengths per table (what the pipeline produces) and tap
/// anchors inside the Q8.8 range (|tap| < 128 samples). Throws on I/O
/// failure or a table outside those bounds.
void saveHrtfTableQuantized(const std::string& path, const HrtfTable& table);

/// Read a table previously written by saveHrtfTable or
/// saveHrtfTableQuantized (the magic selects the decoder). Validates the
/// magic, version, row counts, sample-rate consistency, anthropometric
/// plausibility of the head parameters, and that every sample is finite
/// (no NaN/inf ever reaches a playback path); throws InvalidArgument
/// naming the byte offset of anything malformed. Quantized files are
/// decoded from an mmap-ed view when the platform supports it — the file
/// bytes are parsed in place from the page cache, with no intermediate
/// read buffer — and fall back to a buffered read otherwise.
HrtfTable loadHrtfTable(const std::string& path);

/// loadHrtfTable without the mmap fast path: the file is read through a
/// plain buffered stream. Same validation, same messages, and bitwise the
/// same table — tests pin mmap/buffered equality with it, and it is the
/// fallback loadHrtfTable itself uses when mapping fails.
HrtfTable loadHrtfTableBuffered(const std::string& path);

/// Non-throwing variant of loadHrtfTable for speculative reads (the serving
/// layer's table cache probes disk on every cold miss, and a missing or
/// corrupt file there is an expected outcome, not an error). Returns the
/// table on success; on failure returns nullopt and, when `error` is
/// non-null, stores the reason — same validation and messages as
/// loadHrtfTable.
std::optional<HrtfTable> tryLoadHrtfTable(const std::string& path,
                                          std::string* error = nullptr);

/// Container format of the file at `path`, judged by its magic. Returns
/// nullopt (with the reason in `error` when non-null) for unreadable files
/// and unknown magics.
std::optional<TableFormat> probeTableFormat(const std::string& path,
                                            std::string* error = nullptr);

}  // namespace uniq::core
