#pragma once

#include <vector>

#include "core/channel_extractor.h"
#include "core/sensor_fusion.h"
#include "head/head_parameters.h"
#include "head/hrir.h"

namespace uniq::core {

/// Continuous-angle near-field HRTF table on a 1-degree grid over [0, 180]
/// (the measured left hemicircle). Entry k is the HRIR for a source at
/// k degrees and radius `medianRadiusM`.
struct NearFieldTable {
  std::vector<head::Hrir> byDegree;  ///< 181 entries
  /// Model first-tap positions (samples) for each degree and ear, recorded
  /// so downstream stages can re-align channels coherently.
  std::vector<double> tapLeftSamples;
  std::vector<double> tapRightSamples;
  double sampleRate = 0.0;
  head::HeadParameters headParams;
  double medianRadiusM = 0.0;
  /// Angles (deg, ascending) of the usable stops the table was interpolated
  /// from. Lets callers audit coverage: a wide gap between consecutive
  /// entries means the degrees in between are long-range extrapolations.
  std::vector<double> sourceAnglesDeg;

  const head::Hrir& at(double thetaDeg) const;
};

struct NearFieldBuilderOptions {
  /// Anchor sample where the earlier ear's first tap is placed.
  double alignSample = 24.0;
  std::size_t outputLength = 192;
  /// Re-impose model-expected relative delays and blend amplitudes
  /// (Section 4.2: "adjust the channel taps to match the expected
  /// time-difference and the amplitudes"). Disable for ablation.
  bool modelCorrection = true;
  /// 0 = keep measured interaural level difference, 1 = force the model's;
  /// in between blends in the log-amplitude domain.
  double amplitudeBlend = 0.5;
  std::size_t boundaryResolution = 256;
  /// Threads used for the per-degree interpolation/tap-correction loop
  /// (0 = use the global pool, 1 = serial). Results are identical for any
  /// value: each degree writes only its own table entry.
  std::size_t numThreads = 0;
};

/// Builds the interpolated near-field HRTF from fused stops and their
/// extracted channels (paper Section 4.2).
class NearFieldHrtfBuilder {
 public:
  using Options = NearFieldBuilderOptions;

  explicit NearFieldHrtfBuilder(Options opts = {});

  /// `stops` and `channels` are parallel arrays (one per calibration stop).
  /// Stops that failed localization or tap detection are skipped.
  NearFieldTable build(const std::vector<FusedStop>& stops,
                       const std::vector<BinauralChannel>& channels,
                       const head::HeadParameters& headParams) const;

 private:
  Options opts_;
};

}  // namespace uniq::core
