#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/constants.h"
#include "common/error.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "geometry/diffraction.h"
#include "geometry/head_boundary.h"
#include "geometry/polar.h"
#include "head/hrtf_database.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace uniq::core {

namespace {

/// RMS error (microseconds) between each usable stop's measured interaural
/// first-tap delay and the delay the fused diffraction model predicts at
/// that stop's fused position — the per-angle tap-alignment residual the
/// near-field stage then corrects for. Large values mean the head estimate
/// and the measured taps disagree (bad gesture, low SNR, wrong geometry).
double tapAlignmentRmsUs(const std::vector<FusedStop>& stops,
                         const std::vector<BinauralChannel>& channels,
                         const head::HeadParameters& headParams) {
  const geo::HeadBoundary boundary(headParams.a, headParams.b, headParams.c,
                                   128);
  double sumSq = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < stops.size(); ++i) {
    const auto& stop = stops[i];
    const auto& ch = channels[i];
    if (!stop.localized || !ch.firstTapLeftSec || !ch.firstTapRightSec)
      continue;
    const double measuredSec = *ch.firstTapLeftSec - *ch.firstTapRightSec;
    const geo::Vec2 p = geo::pointFromPolarDeg(stop.angleDeg, stop.radiusM);
    const auto pathL = geo::nearFieldPath(boundary, p, geo::Ear::kLeft);
    const auto pathR = geo::nearFieldPath(boundary, p, geo::Ear::kRight);
    const double modelSec = (pathL.length - pathR.length) / kSpeedOfSound;
    sumSq += square((measuredSec - modelSec) * 1e6);
    ++n;
  }
  return n > 0 ? std::sqrt(sumSq / static_cast<double>(n)) : 0.0;
}

PipelineStatus statusFromDiagnostics(
    const std::vector<obs::Diagnostic>& diagnostics) {
  PipelineStatus status = PipelineStatus::kOk;
  for (const auto& d : diagnostics) {
    if (d.severity == obs::Severity::kError) return PipelineStatus::kFailed;
    if (d.severity == obs::Severity::kWarning)
      status = PipelineStatus::kDegraded;
  }
  return status;
}

void publish(obs::RunReport* report,
             const std::vector<obs::Diagnostic>& diagnostics,
             PipelineStatus status) {
  if (!report) return;
  report->diagnostics.insert(report->diagnostics.end(), diagnostics.begin(),
                             diagnostics.end());
  report->status = pipelineStatusName(status);
}

/// Stage-boundary abort poll shared by run() and runFromChannels: when the
/// token is due, records the abort (counter + diagnostic naming `boundary`)
/// and returns true so the caller can hand back the fallback table with
/// aborted = true.
bool abortBoundary(const core::RunAbortToken* abort, const char* boundary,
                   std::vector<obs::Diagnostic>& diagnostics) {
  if (!abort || !abort->due()) return false;
  static obs::Counter& aborts = obs::registry().counter("pipeline.aborts");
  aborts.inc();
  std::ostringstream os;
  os << "run aborted (" << (abort->cancelRequested() ? "cancelled"
                                                     : "deadline exceeded")
     << ") before stage " << boundary;
  diagnostics.push_back(obs::Diagnostic{
      "pipeline", obs::Severity::kError, os.str(), {}});
  return true;
}

}  // namespace

const char* pipelineStatusName(PipelineStatus status) {
  switch (status) {
    case PipelineStatus::kOk:
      return "ok";
    case PipelineStatus::kDegraded:
      return "degraded";
    case PipelineStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

CalibrationPipeline::CalibrationPipeline(Options opts)
    : opts_(std::move(opts)) {}

std::vector<BinauralChannel> CalibrationPipeline::extractChannels(
    const sim::CalibrationCapture& capture) const {
  UNIQ_SPAN("pipeline.extract_channels");
  UNIQ_REQUIRE(!capture.stops.empty(), "capture has no stops");
  const ChannelExtractor extractor(capture.hardwareResponseEstimate,
                                   capture.sampleRate, opts_.extractor);
  // Stops are independent: fan the deconvolution batch out across the pool.
  // Each stop writes its own slot, so the result matches the serial order.
  std::vector<BinauralChannel> channels(capture.stops.size());
  common::parallelFor(
      0, capture.stops.size(),
      [&](std::size_t i) {
        channels[i] = extractor.extract(capture.stops[i].recording.left,
                                        capture.stops[i].recording.right,
                                        capture.sourceSignal);
      },
      opts_.numThreads);
  return channels;
}

std::vector<FusionMeasurement> CalibrationPipeline::toFusionMeasurements(
    const sim::CalibrationCapture& capture,
    const std::vector<BinauralChannel>& channels) {
  UNIQ_REQUIRE(capture.stops.size() == channels.size(),
               "stop/channel count mismatch");
  std::vector<FusionMeasurement> measurements;
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const auto& ch = channels[i];
    if (!ch.firstTapLeftSec || !ch.firstTapRightSec) continue;
    FusionMeasurement m;
    m.imuAngleDeg = capture.stops[i].imuAngleDeg;
    m.delayLeftSec = *ch.firstTapLeftSec;
    m.delayRightSec = *ch.firstTapRightSec;
    m.sourceIndex = i;
    measurements.push_back(m);
  }
  return measurements;
}

PersonalHrtf CalibrationPipeline::run(
    const sim::CalibrationCapture& capture) const {
  return run(capture, nullptr);
}

PersonalHrtf CalibrationPipeline::run(const sim::CalibrationCapture& capture,
                                      obs::RunReport* report) const {
  return run(capture, report, nullptr);
}

PersonalHrtf CalibrationPipeline::run(const sim::CalibrationCapture& capture,
                                      obs::RunReport* report,
                                      const RunAbortToken* abort) const {
  UNIQ_SPAN("pipeline.run");
  UNIQ_REQUIRE(!capture.stops.empty(), "capture has no stops");

  std::vector<obs::Diagnostic> diagnostics;
  if (abortBoundary(abort, "extract", diagnostics)) {
    auto out = fallbackResult(capture, std::move(diagnostics), report);
    out.aborted = true;
    return out;
  }

  try {
    obs::StageTimer extractTimer(report, "extract");
    const auto channels = extractChannels(capture);
    extractTimer.stop();
    return runFromChannels(capture, channels, report, abort);
  } catch (const Error& e) {
    diagnostics.push_back(obs::Diagnostic{
        "pipeline", obs::Severity::kError,
        std::string("stage failed: ") + e.what(), {}});
    return fallbackResult(capture, std::move(diagnostics), report);
  }
}

PersonalHrtf CalibrationPipeline::runFromChannels(
    const sim::CalibrationCapture& capture,
    const std::vector<BinauralChannel>& channels, obs::RunReport* report,
    const RunAbortToken* abort) const {
  UNIQ_SPAN("pipeline.run_from_channels");
  UNIQ_REQUIRE(!capture.stops.empty(), "capture has no stops");

  std::vector<obs::Diagnostic> diagnostics;
  const auto diagnose = [&](const char* stage, obs::Severity severity,
                            std::string message,
                            std::vector<std::size_t> stops =
                                std::vector<std::size_t>{}) {
    diagnostics.push_back(obs::Diagnostic{stage, severity, std::move(message),
                                          std::move(stops)});
  };

  // Stage-boundary abort poll: when the token fires, stop doing work and
  // hand back the fallback table with aborted = true. The serving layer
  // turns that into a cancelled/expired job; callers without a token never
  // take this path.
  const auto abortedHere = [&](const char* boundary) -> bool {
    return abortBoundary(abort, boundary, diagnostics);
  };
  const auto abortResult = [&]() {
    auto out = fallbackResult(capture, std::move(diagnostics), report);
    out.aborted = true;
    return out;
  };

  try {
    auto measurements = toFusionMeasurements(capture, channels);
    const std::size_t tapsDetected = measurements.size();

    // Quality gate: stops whose capture evidence says "don't trust me" are
    // excluded from fusion rather than allowed to poison the head estimate.
    std::vector<std::size_t> noTap, clippedStops, lowSnrStops;
    for (std::size_t i = 0; i < channels.size(); ++i) {
      const auto& q = channels[i].quality;
      if (!q.tapsDetected) noTap.push_back(i);
      if (q.clipped)
        clippedStops.push_back(i);
      else if (q.lowSnr)
        lowSnrStops.push_back(i);
    }
    measurements.erase(
        std::remove_if(measurements.begin(), measurements.end(),
                       [&](const FusionMeasurement& m) {
                         return channels[m.sourceIndex].quality.gated();
                       }),
        measurements.end());

    if (report) {
      // Values land on the "extract" stage the caller's timer created (the
      // batch path, or the streaming session's accumulated per-stop timer).
      auto& stage = report->stage("extract");
      stage.set("stops", static_cast<double>(capture.stops.size()));
      stage.set("tapsDetected", static_cast<double>(tapsDetected));
      stage.set("gatedStops",
                static_cast<double>(tapsDetected - measurements.size()));
    }

    if (!noTap.empty()) {
      // A couple of undetectable stops is normal in the wild; losing more
      // than 10% of the sweep means something is genuinely wrong.
      const auto severity = noTap.size() * 10 > capture.stops.size()
                                ? obs::Severity::kWarning
                                : obs::Severity::kInfo;
      std::ostringstream os;
      os << noTap.size() << " stop(s) had no detectable first taps; "
         << "excluded from fusion";
      diagnose("extract", severity, os.str(), noTap);
    }
    if (!clippedStops.empty()) {
      std::ostringstream os;
      os << clippedStops.size()
         << " stop(s) show audio clipping; excluded from fusion";
      diagnose("extract", obs::Severity::kWarning, os.str(), clippedStops);
    }
    if (!lowSnrStops.empty()) {
      std::ostringstream os;
      os << lowSnrStops.size()
         << " stop(s) have low tap SNR; excluded from fusion";
      diagnose("extract", obs::Severity::kWarning, os.str(), lowSnrStops);
    }

    const std::size_t minUsable =
        std::max<std::size_t>(opts_.minUsableStops, 4);
    if (measurements.size() < minUsable) {
      std::ostringstream os;
      os << "only " << measurements.size()
         << " usable stop(s) after quality gating (need >= " << minUsable
         << ") — cannot personalize";
      diagnose("fusion", obs::Severity::kError, os.str());
      return fallbackResult(capture, std::move(diagnostics), report);
    }

    if (abortedHere("fusion")) return abortResult();

    // The pipeline-level thread knob flows into stages that did not set
    // their own.
    SensorFusionOptions fusionOpts = opts_.fusion;
    if (fusionOpts.numThreads == 0) fusionOpts.numThreads = opts_.numThreads;
    fusionOpts.minMeasurements =
        std::max(std::size_t{4}, std::min(fusionOpts.minMeasurements,
                                          opts_.minUsableStops));
    NearFieldBuilderOptions nearFieldOpts = opts_.nearField;
    if (nearFieldOpts.numThreads == 0)
      nearFieldOpts.numThreads = opts_.numThreads;

    obs::StageTimer fusionTimer(report, "fusion");
    const SensorFusion fusion(fusionOpts);
    auto fusionResult = fusion.solveRobust(measurements);
    if (auto* stage = fusionTimer.stage()) {
      stage->set("iterations", static_cast<double>(fusionResult.iterations));
      stage->set("restarts", static_cast<double>(fusionResult.restartsUsed));
      stage->set("converged", fusionResult.converged ? 1.0 : 0.0);
      stage->set("localized",
                 static_cast<double>(fusionResult.localizedCount));
      stage->set("objectiveDeg2", fusionResult.finalObjectiveDeg2);
      stage->set("residualRmsDeg",
                 std::sqrt(fusionResult.meanSquaredResidualDeg2));
      stage->set("rejected",
                 static_cast<double>(
                     fusionResult.rejectedSourceIndices.size()));
      stage->set("widened", fusionResult.widened ? 1.0 : 0.0);
    }
    fusionTimer.stop();

    if (!fusionResult.usable) {
      diagnose("fusion", obs::Severity::kError,
               "sensor fusion could not produce a usable solve");
      return fallbackResult(capture, std::move(diagnostics), report);
    }
    if (!fusionResult.rejectedSourceIndices.empty()) {
      // Trimming a stop or two is a robust estimator doing its job (clean
      // captures shed the occasional IMU-jitter outlier); shedding more
      // than 10% of the sweep means the capture itself is degraded.
      const auto severity =
          fusionResult.rejectedSourceIndices.size() * 10 >
                  measurements.size()
              ? obs::Severity::kWarning
              : obs::Severity::kInfo;
      std::ostringstream os;
      os << "rejected " << fusionResult.rejectedSourceIndices.size()
         << " outlier stop(s) (IMU-vs-acoustic disagreement) in "
         << fusionResult.rejectRounds << " round(s)";
      diagnose("fusion", severity, os.str(),
               fusionResult.rejectedSourceIndices);
    }
    if (!fusionResult.converged) {
      diagnose("fusion", obs::Severity::kWarning,
               fusionResult.widened
                   ? "optimizer did not converge even with widened restarts"
                   : "optimizer did not converge");
    } else if (fusionResult.widened) {
      diagnose("fusion", obs::Severity::kInfo,
               "converged via widened-restart fallback");
    }

    // Re-expand fused stops to the full capture stop list by source index.
    // Gated and rejected stops come back un-localized so the near-field
    // builder skips them but the report can still account for every stop.
    std::vector<FusedStop> fullStops(capture.stops.size());
    for (std::size_t i = 0; i < fullStops.size(); ++i) {
      fullStops[i].localized = false;
      fullStops[i].imuAngleDeg = capture.stops[i].imuAngleDeg;
      fullStops[i].angleDeg = capture.stops[i].imuAngleDeg;
      fullStops[i].sourceIndex = i;
    }
    for (const auto& s : fusionResult.stops)
      if (s.sourceIndex < fullStops.size()) fullStops[s.sourceIndex] = s;

    std::size_t usableForNear = 0;
    for (std::size_t i = 0; i < fullStops.size(); ++i) {
      if (fullStops[i].localized && channels[i].firstTapLeftSec &&
          channels[i].firstTapRightSec)
        ++usableForNear;
    }
    if (usableForNear < 4) {
      std::ostringstream os;
      os << "only " << usableForNear
         << " localized stop(s) with taps (need >= 4 for interpolation)";
      diagnose("nearfield", obs::Severity::kError, os.str());
      return fallbackResult(capture, std::move(diagnostics), report);
    }

    if (abortedHere("nearfield")) return abortResult();

    obs::StageTimer nearTimer(report, "nearfield");
    const NearFieldHrtfBuilder nearBuilder(nearFieldOpts);
    auto nearTable =
        nearBuilder.build(fullStops, channels, fusionResult.headParams);
    if (auto* stage = nearTimer.stage()) {
      stage->set("usableStops", static_cast<double>(usableForNear));
      stage->set("medianRadiusM", nearTable.medianRadiusM);
      stage->set("tapAlignRmsUs",
                 tapAlignmentRmsUs(fullStops, channels,
                                   fusionResult.headParams));
    }
    nearTimer.stop();

    // Coverage audit: interpolation happily spans any gap, but the degrees
    // inside a wide one are long-range extrapolations worth flagging.
    if (!nearTable.sourceAnglesDeg.empty()) {
      double worstGap = 0.0, gapLo = 0.0, gapHi = 0.0;
      const auto& angles = nearTable.sourceAnglesDeg;
      const auto consider = [&](double lo, double hi) {
        if (hi - lo > worstGap) {
          worstGap = hi - lo;
          gapLo = lo;
          gapHi = hi;
        }
      };
      consider(0.0, angles.front());
      for (std::size_t i = 1; i < angles.size(); ++i)
        consider(angles[i - 1], angles[i]);
      consider(angles.back(), 180.0);
      if (worstGap > opts_.gapWarnDeg) {
        std::ostringstream os;
        os << "near-field interpolation spans a "
           << static_cast<int>(std::lround(worstGap))
           << " deg coverage gap (" << static_cast<int>(std::lround(gapLo))
           << ".." << static_cast<int>(std::lround(gapHi)) << " deg)";
        diagnose("nearfield", obs::Severity::kWarning, os.str());
      }
    }

    if (abortedHere("nearfar")) return abortResult();

    obs::StageTimer farTimer(report, "nearfar");
    const NearFarConverter converter(opts_.nearFar);
    auto farTable = converter.convert(nearTable);
    if (auto* stage = farTimer.stage()) {
      stage->set("entries", static_cast<double>(farTable.byDegree.size()));
    }
    farTimer.stop();

    obs::StageTimer gestureTimer(report, "gesture");
    const GestureValidator validator(opts_.gesture);
    auto gestureReport = validator.validate(fusionResult);
    if (auto* stage = gestureTimer.stage()) {
      stage->set("ok", gestureReport.ok ? 1.0 : 0.0);
      stage->set("issues", static_cast<double>(gestureReport.issues.size()));
    }
    gestureTimer.stop();
    for (const auto& issue : gestureReport.issues)
      diagnose("gesture", obs::Severity::kWarning, issue);

    PersonalHrtf out{HrtfTable(std::move(nearTable), std::move(farTable)),
                     fusionResult.headParams, std::move(fusionResult),
                     std::move(gestureReport), PipelineStatus::kOk,
                     {}, false};
    out.diagnostics = std::move(diagnostics);
    out.status = statusFromDiagnostics(out.diagnostics);
    publish(report, out.diagnostics, out.status);
    return out;
  } catch (const Error& e) {
    // Belt and braces: a stage that still throws on degenerate data turns
    // into a failed-but-alive run, not an escaped exception.
    diagnose("pipeline", obs::Severity::kError,
             std::string("stage failed: ") + e.what());
    return fallbackResult(capture, std::move(diagnostics), report);
  }
}

PersonalHrtf CalibrationPipeline::populationFallback(
    const sim::CalibrationCapture& capture,
    std::vector<obs::Diagnostic> diagnostics, obs::RunReport* report) const {
  return fallbackResult(capture, std::move(diagnostics), report);
}

PersonalHrtf CalibrationPipeline::fallbackResult(
    const sim::CalibrationCapture& capture,
    std::vector<obs::Diagnostic> diagnostics, obs::RunReport* report) const {
  UNIQ_SPAN("pipeline.fallback");
  static obs::Counter& fallbacks =
      obs::registry().counter("pipeline.fallbacks");
  fallbacks.inc();

  // Population-average template at the capture's sample rate: the listener
  // keeps a working (generic) spatializer while the app asks for a redo.
  head::HrtfDatabaseOptions dbOpts;
  if (capture.sampleRate > 8000.0) dbOpts.sampleRate = capture.sampleRate;
  const head::HrtfDatabase db(head::globalTemplateSubject(), dbOpts);
  auto nearTable =
      nearTableFromDatabase(db, dbOpts.referenceDistance,
                            opts_.nearField.alignSample,
                            opts_.nearField.outputLength);
  auto farTable = farTableFromDatabase(db, opts_.nearFar.alignSample,
                                       opts_.nearFar.outputLength);

  SensorFusionResult fusion;
  fusion.usable = false;
  fusion.converged = false;
  fusion.headParams = db.subject().headParams;
  GestureReport gesture;
  gesture.ok = false;
  gesture.issues.push_back(
      "calibration failed — population-average HRTF in use; redo the sweep");

  PersonalHrtf out{HrtfTable(std::move(nearTable), std::move(farTable)),
                   fusion.headParams, std::move(fusion), std::move(gesture),
                   PipelineStatus::kFailed, {}, false};
  out.status = PipelineStatus::kFailed;
  out.diagnostics = std::move(diagnostics);
  publish(report, out.diagnostics, out.status);
  return out;
}

}  // namespace uniq::core
