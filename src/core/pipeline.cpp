#include "core/pipeline.h"

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "geometry/diffraction.h"
#include "geometry/head_boundary.h"
#include "geometry/polar.h"
#include "obs/trace.h"

namespace uniq::core {

namespace {

/// RMS error (microseconds) between each usable stop's measured interaural
/// first-tap delay and the delay the fused diffraction model predicts at
/// that stop's fused position — the per-angle tap-alignment residual the
/// near-field stage then corrects for. Large values mean the head estimate
/// and the measured taps disagree (bad gesture, low SNR, wrong geometry).
double tapAlignmentRmsUs(const std::vector<FusedStop>& stops,
                         const std::vector<BinauralChannel>& channels,
                         const head::HeadParameters& headParams) {
  const geo::HeadBoundary boundary(headParams.a, headParams.b, headParams.c,
                                   128);
  double sumSq = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < stops.size(); ++i) {
    const auto& stop = stops[i];
    const auto& ch = channels[i];
    if (!stop.localized || !ch.firstTapLeftSec || !ch.firstTapRightSec)
      continue;
    const double measuredSec = *ch.firstTapLeftSec - *ch.firstTapRightSec;
    const geo::Vec2 p = geo::pointFromPolarDeg(stop.angleDeg, stop.radiusM);
    const auto pathL = geo::nearFieldPath(boundary, p, geo::Ear::kLeft);
    const auto pathR = geo::nearFieldPath(boundary, p, geo::Ear::kRight);
    const double modelSec = (pathL.length - pathR.length) / kSpeedOfSound;
    sumSq += square((measuredSec - modelSec) * 1e6);
    ++n;
  }
  return n > 0 ? std::sqrt(sumSq / static_cast<double>(n)) : 0.0;
}

}  // namespace

CalibrationPipeline::CalibrationPipeline(Options opts)
    : opts_(std::move(opts)) {}

std::vector<BinauralChannel> CalibrationPipeline::extractChannels(
    const sim::CalibrationCapture& capture) const {
  UNIQ_SPAN("pipeline.extract_channels");
  UNIQ_REQUIRE(!capture.stops.empty(), "capture has no stops");
  const ChannelExtractor extractor(capture.hardwareResponseEstimate,
                                   capture.sampleRate, opts_.extractor);
  // Stops are independent: fan the deconvolution batch out across the pool.
  // Each stop writes its own slot, so the result matches the serial order.
  std::vector<BinauralChannel> channels(capture.stops.size());
  common::parallelFor(
      0, capture.stops.size(),
      [&](std::size_t i) {
        channels[i] = extractor.extract(capture.stops[i].recording.left,
                                        capture.stops[i].recording.right,
                                        capture.sourceSignal);
      },
      opts_.numThreads);
  return channels;
}

std::vector<FusionMeasurement> CalibrationPipeline::toFusionMeasurements(
    const sim::CalibrationCapture& capture,
    const std::vector<BinauralChannel>& channels) {
  UNIQ_REQUIRE(capture.stops.size() == channels.size(),
               "stop/channel count mismatch");
  std::vector<FusionMeasurement> measurements;
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const auto& ch = channels[i];
    if (!ch.firstTapLeftSec || !ch.firstTapRightSec) continue;
    FusionMeasurement m;
    m.imuAngleDeg = capture.stops[i].imuAngleDeg;
    m.delayLeftSec = *ch.firstTapLeftSec;
    m.delayRightSec = *ch.firstTapRightSec;
    m.sourceIndex = i;
    measurements.push_back(m);
  }
  return measurements;
}

PersonalHrtf CalibrationPipeline::run(
    const sim::CalibrationCapture& capture) const {
  return run(capture, nullptr);
}

PersonalHrtf CalibrationPipeline::run(const sim::CalibrationCapture& capture,
                                      obs::RunReport* report) const {
  UNIQ_SPAN("pipeline.run");

  obs::StageTimer extractTimer(report, "extract");
  const auto channels = extractChannels(capture);
  const auto measurements = toFusionMeasurements(capture, channels);
  if (auto* stage = extractTimer.stage()) {
    stage->set("stops", static_cast<double>(capture.stops.size()));
    stage->set("tapsDetected", static_cast<double>(measurements.size()));
  }
  extractTimer.stop();

  // The pipeline-level thread knob flows into stages that did not set
  // their own.
  SensorFusionOptions fusionOpts = opts_.fusion;
  if (fusionOpts.numThreads == 0) fusionOpts.numThreads = opts_.numThreads;
  NearFieldBuilderOptions nearFieldOpts = opts_.nearField;
  if (nearFieldOpts.numThreads == 0) nearFieldOpts.numThreads = opts_.numThreads;

  obs::StageTimer fusionTimer(report, "fusion");
  const SensorFusion fusion(fusionOpts);
  auto fusionResult = fusion.solve(measurements);
  if (auto* stage = fusionTimer.stage()) {
    stage->set("iterations", static_cast<double>(fusionResult.iterations));
    stage->set("restarts", static_cast<double>(fusionResult.restartsUsed));
    stage->set("converged", fusionResult.converged ? 1.0 : 0.0);
    stage->set("localized", static_cast<double>(fusionResult.localizedCount));
    stage->set("objectiveDeg2", fusionResult.finalObjectiveDeg2);
    stage->set("residualRmsDeg",
               std::sqrt(fusionResult.meanSquaredResidualDeg2));
  }
  fusionTimer.stop();

  // Re-expand fused stops to align with the full stop list (stops whose
  // taps were undetectable are marked un-localized so the near-field
  // builder skips them).
  std::vector<FusedStop> fullStops;
  fullStops.reserve(channels.size());
  std::size_t fusedIdx = 0;
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const auto& ch = channels[i];
    if (ch.firstTapLeftSec && ch.firstTapRightSec) {
      fullStops.push_back(fusionResult.stops[fusedIdx++]);
    } else {
      FusedStop skip;
      skip.localized = false;
      skip.imuAngleDeg = capture.stops[i].imuAngleDeg;
      skip.sourceIndex = i;
      fullStops.push_back(skip);
    }
  }

  obs::StageTimer nearTimer(report, "nearfield");
  const NearFieldHrtfBuilder nearBuilder(nearFieldOpts);
  auto nearTable =
      nearBuilder.build(fullStops, channels, fusionResult.headParams);
  if (auto* stage = nearTimer.stage()) {
    std::size_t usable = 0;
    for (const auto& stop : fullStops)
      if (stop.localized) ++usable;
    stage->set("usableStops", static_cast<double>(usable));
    stage->set("medianRadiusM", nearTable.medianRadiusM);
    stage->set("tapAlignRmsUs",
               tapAlignmentRmsUs(fullStops, channels,
                                 fusionResult.headParams));
  }
  nearTimer.stop();

  obs::StageTimer farTimer(report, "nearfar");
  const NearFarConverter converter(opts_.nearFar);
  auto farTable = converter.convert(nearTable);
  if (auto* stage = farTimer.stage()) {
    stage->set("entries", static_cast<double>(farTable.byDegree.size()));
  }
  farTimer.stop();

  obs::StageTimer gestureTimer(report, "gesture");
  const GestureValidator validator(opts_.gesture);
  auto gestureReport = validator.validate(fusionResult);
  if (auto* stage = gestureTimer.stage()) {
    stage->set("ok", gestureReport.ok ? 1.0 : 0.0);
    stage->set("issues", static_cast<double>(gestureReport.issues.size()));
  }
  gestureTimer.stop();

  return PersonalHrtf{HrtfTable(std::move(nearTable), std::move(farTable)),
                      fusionResult.headParams, std::move(fusionResult),
                      std::move(gestureReport)};
}

}  // namespace uniq::core
