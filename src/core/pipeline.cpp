#include "core/pipeline.h"

#include "common/error.h"

namespace uniq::core {

CalibrationPipeline::CalibrationPipeline(Options opts)
    : opts_(std::move(opts)) {}

std::vector<BinauralChannel> CalibrationPipeline::extractChannels(
    const sim::CalibrationCapture& capture) const {
  UNIQ_REQUIRE(!capture.stops.empty(), "capture has no stops");
  const ChannelExtractor extractor(capture.hardwareResponseEstimate,
                                   capture.sampleRate, opts_.extractor);
  std::vector<BinauralChannel> channels;
  channels.reserve(capture.stops.size());
  for (const auto& stop : capture.stops) {
    channels.push_back(extractor.extract(stop.recording.left,
                                         stop.recording.right,
                                         capture.sourceSignal));
  }
  return channels;
}

std::vector<FusionMeasurement> CalibrationPipeline::toFusionMeasurements(
    const sim::CalibrationCapture& capture,
    const std::vector<BinauralChannel>& channels) {
  UNIQ_REQUIRE(capture.stops.size() == channels.size(),
               "stop/channel count mismatch");
  std::vector<FusionMeasurement> measurements;
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const auto& ch = channels[i];
    if (!ch.firstTapLeftSec || !ch.firstTapRightSec) continue;
    FusionMeasurement m;
    m.imuAngleDeg = capture.stops[i].imuAngleDeg;
    m.delayLeftSec = *ch.firstTapLeftSec;
    m.delayRightSec = *ch.firstTapRightSec;
    m.sourceIndex = i;
    measurements.push_back(m);
  }
  return measurements;
}

PersonalHrtf CalibrationPipeline::run(
    const sim::CalibrationCapture& capture) const {
  const auto channels = extractChannels(capture);
  const auto measurements = toFusionMeasurements(capture, channels);

  const SensorFusion fusion(opts_.fusion);
  auto fusionResult = fusion.solve(measurements);

  // Re-expand fused stops to align with the full stop list (stops whose
  // taps were undetectable are marked un-localized so the near-field
  // builder skips them).
  std::vector<FusedStop> fullStops;
  fullStops.reserve(channels.size());
  std::size_t fusedIdx = 0;
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const auto& ch = channels[i];
    if (ch.firstTapLeftSec && ch.firstTapRightSec) {
      fullStops.push_back(fusionResult.stops[fusedIdx++]);
    } else {
      FusedStop skip;
      skip.localized = false;
      skip.imuAngleDeg = capture.stops[i].imuAngleDeg;
      skip.sourceIndex = i;
      fullStops.push_back(skip);
    }
  }

  const NearFieldHrtfBuilder nearBuilder(opts_.nearField);
  auto nearTable =
      nearBuilder.build(fullStops, channels, fusionResult.headParams);

  const NearFarConverter converter(opts_.nearFar);
  auto farTable = converter.convert(nearTable);

  const GestureValidator validator(opts_.gesture);
  auto report = validator.validate(fusionResult);

  return PersonalHrtf{HrtfTable(std::move(nearTable), std::move(farTable)),
                      fusionResult.headParams, std::move(fusionResult),
                      std::move(report)};
}

}  // namespace uniq::core
