#include "core/pipeline.h"

#include "common/error.h"
#include "common/thread_pool.h"

namespace uniq::core {

CalibrationPipeline::CalibrationPipeline(Options opts)
    : opts_(std::move(opts)) {}

std::vector<BinauralChannel> CalibrationPipeline::extractChannels(
    const sim::CalibrationCapture& capture) const {
  UNIQ_REQUIRE(!capture.stops.empty(), "capture has no stops");
  const ChannelExtractor extractor(capture.hardwareResponseEstimate,
                                   capture.sampleRate, opts_.extractor);
  // Stops are independent: fan the deconvolution batch out across the pool.
  // Each stop writes its own slot, so the result matches the serial order.
  std::vector<BinauralChannel> channels(capture.stops.size());
  common::parallelFor(
      0, capture.stops.size(),
      [&](std::size_t i) {
        channels[i] = extractor.extract(capture.stops[i].recording.left,
                                        capture.stops[i].recording.right,
                                        capture.sourceSignal);
      },
      opts_.numThreads);
  return channels;
}

std::vector<FusionMeasurement> CalibrationPipeline::toFusionMeasurements(
    const sim::CalibrationCapture& capture,
    const std::vector<BinauralChannel>& channels) {
  UNIQ_REQUIRE(capture.stops.size() == channels.size(),
               "stop/channel count mismatch");
  std::vector<FusionMeasurement> measurements;
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const auto& ch = channels[i];
    if (!ch.firstTapLeftSec || !ch.firstTapRightSec) continue;
    FusionMeasurement m;
    m.imuAngleDeg = capture.stops[i].imuAngleDeg;
    m.delayLeftSec = *ch.firstTapLeftSec;
    m.delayRightSec = *ch.firstTapRightSec;
    m.sourceIndex = i;
    measurements.push_back(m);
  }
  return measurements;
}

PersonalHrtf CalibrationPipeline::run(
    const sim::CalibrationCapture& capture) const {
  const auto channels = extractChannels(capture);
  const auto measurements = toFusionMeasurements(capture, channels);

  // The pipeline-level thread knob flows into stages that did not set
  // their own.
  SensorFusionOptions fusionOpts = opts_.fusion;
  if (fusionOpts.numThreads == 0) fusionOpts.numThreads = opts_.numThreads;
  NearFieldBuilderOptions nearFieldOpts = opts_.nearField;
  if (nearFieldOpts.numThreads == 0) nearFieldOpts.numThreads = opts_.numThreads;

  const SensorFusion fusion(fusionOpts);
  auto fusionResult = fusion.solve(measurements);

  // Re-expand fused stops to align with the full stop list (stops whose
  // taps were undetectable are marked un-localized so the near-field
  // builder skips them).
  std::vector<FusedStop> fullStops;
  fullStops.reserve(channels.size());
  std::size_t fusedIdx = 0;
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const auto& ch = channels[i];
    if (ch.firstTapLeftSec && ch.firstTapRightSec) {
      fullStops.push_back(fusionResult.stops[fusedIdx++]);
    } else {
      FusedStop skip;
      skip.localized = false;
      skip.imuAngleDeg = capture.stops[i].imuAngleDeg;
      skip.sourceIndex = i;
      fullStops.push_back(skip);
    }
  }

  const NearFieldHrtfBuilder nearBuilder(nearFieldOpts);
  auto nearTable =
      nearBuilder.build(fullStops, channels, fusionResult.headParams);

  const NearFarConverter converter(opts_.nearFar);
  auto farTable = converter.convert(nearTable);

  const GestureValidator validator(opts_.gesture);
  auto report = validator.validate(fusionResult);

  return PersonalHrtf{HrtfTable(std::move(nearTable), std::move(farTable)),
                      fusionResult.headParams, std::move(fusionResult),
                      std::move(report)};
}

}  // namespace uniq::core
