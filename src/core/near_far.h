#pragma once

#include <vector>

#include "core/near_field_hrtf.h"
#include "head/hrtf_database.h"

namespace uniq::core {

/// Far-field HRTF table on a 1-degree grid over [0, 180].
struct FarFieldTable {
  std::vector<head::Hrir> byDegree;  ///< 181 entries
  /// First-tap positions per degree and ear (samples), relative model
  /// delays imposed by the converter.
  std::vector<double> tapLeftSamples;
  std::vector<double> tapRightSamples;
  double sampleRate = 0.0;
  head::HeadParameters headParams;

  const head::Hrir& at(double thetaDeg) const;
};

struct NearFarConverterOptions {
  double alignSample = 32.0;
  std::size_t outputLength = 192;
  /// Creeping-wave attenuation used for the model fine-tuning (must mirror
  /// the physical constant, not fitted).
  double arcAttenuationNepersPerMeter = 8.0;
  /// Sharpness of the ray-proximity weighting across the contribution arc:
  /// sigma = band / raySigmaDivisor. Larger = more selective around the
  /// ray that reaches the ear; ~1 reproduces the paper's plain arc average
  /// (ablation knob).
  double raySigmaDivisor = 5.0;
  std::size_t boundaryResolution = 256;
};

/// Synthesizes the far-field HRTF from the near-field table (paper
/// Section 4.3, Figure 12): for each target angle, parallel rays intersect
/// the measurement circle; near-field HRTFs measured between the crown
/// point C and the left-side grazing ray B average into the left-ear
/// far-field response, those between C and D into the right-ear response.
/// Delays and interaural levels are then re-imposed from the plane-wave
/// diffraction model with the personalized head parameters.
class NearFarConverter {
 public:
  using Options = NearFarConverterOptions;

  explicit NearFarConverter(Options opts = {});

  FarFieldTable convert(const NearFieldTable& nearTable) const;

 private:
  Options opts_;
};

/// Build a far-field table directly from a ground-truth database (used for
/// the paper's upper-bound comparisons and for the "global HRTF" baseline).
FarFieldTable farTableFromDatabase(const head::HrtfDatabase& db,
                                   double alignSample = 32.0,
                                   std::size_t outputLength = 192);

/// Build a near-field table directly from a ground-truth database at radius
/// `radiusM`. Besides upper-bound comparisons, this is the pipeline's
/// population-average fallback: when a capture is too corrupted to
/// personalize, the listener still gets a working (generic) table instead
/// of an exception.
NearFieldTable nearTableFromDatabase(const head::HrtfDatabase& db,
                                     double radiusM,
                                     double alignSample = 24.0,
                                     std::size_t outputLength = 192);

}  // namespace uniq::core
