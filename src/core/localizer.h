#pragma once

#include <optional>
#include <vector>

#include "geometry/head_boundary.h"
#include "head/head_parameters.h"

namespace uniq::core {

/// A localized phone position in polar coordinates around the head center.
struct PolarFix {
  double angleDeg = 0.0;
  double radiusM = 0.0;
};

struct LocalizerOptions {
  double minRadiusM = 0.13;
  double maxRadiusM = 1.2;
  /// Scan step for the exhaustive angle sweep (degrees).
  double scanStepDeg = 3.0;
  /// Allow angles slightly outside [0, 180] (gesture overshoot).
  double angleMarginDeg = 25.0;
  /// Convergence threshold on the residual path-length error (meters).
  double residualToleranceM = 2e-4;
  /// When the two iso-delay curves do not intersect exactly (model
  /// mismatch on a real head), accept the closest-approach point if the
  /// remaining path-length discrepancy is below this (meters); otherwise
  /// report failure.
  double approximateResidualM = 0.02;
};

/// Localizes the phone from the two first-tap (diffraction path) delays,
/// given a candidate head geometry — the intersection of two iso-delay
/// trajectories (paper Section 4.1, Figure 10(b)). The intersection is
/// generally ambiguous (a front and a back solution); `locate` resolves the
/// ambiguity with the IMU angle, while `locateAll` exposes every solution.
class Localizer {
 public:
  using Options = LocalizerOptions;

  explicit Localizer(const geo::HeadBoundary& head, Options opts = {});

  /// All iso-delay intersections for left/right first-tap delays (seconds).
  std::vector<PolarFix> locateAll(double delayLeftSec,
                                  double delayRightSec) const;

  /// The intersection closest to the IMU angle estimate, or nullopt when no
  /// intersection exists (inconsistent delays for this head candidate).
  std::optional<PolarFix> locate(double delayLeftSec, double delayRightSec,
                                 double imuAngleDeg) const;

 private:
  /// Radius at which the left-ear path length equals `targetLen` along the
  /// ray at angleDeg, or nullopt when out of range.
  std::optional<double> radiusForLeftPath(double angleDeg,
                                          double targetLen) const;
  double rightPathResidual(double angleDeg, double targetLenLeft,
                           double targetLenRight) const;

  const geo::HeadBoundary& head_;
  Options opts_;
};

}  // namespace uniq::core
