#pragma once

#include <optional>
#include <vector>

#include "geometry/head_boundary.h"
#include "head/head_parameters.h"

namespace uniq::core {

/// A localized phone position in polar coordinates around the head center.
struct PolarFix {
  double angleDeg = 0.0;
  double radiusM = 0.0;
};

struct LocalizerOptions {
  double minRadiusM = 0.13;
  double maxRadiusM = 1.2;
  /// Scan step for the exhaustive angle sweep (degrees).
  double scanStepDeg = 3.0;
  /// Allow angles slightly outside [0, 180] (gesture overshoot).
  double angleMarginDeg = 25.0;
  /// Convergence threshold on the residual path-length error (meters).
  double residualToleranceM = 2e-4;
  /// When the two iso-delay curves do not intersect exactly (model
  /// mismatch on a real head), accept the closest-approach point if the
  /// remaining path-length discrepancy is below this (meters); otherwise
  /// report failure.
  double approximateResidualM = 0.02;
};

/// Localizes the phone from the two first-tap (diffraction path) delays,
/// given a candidate head geometry — the intersection of two iso-delay
/// trajectories (paper Section 4.1, Figure 10(b)). The intersection is
/// generally ambiguous (a front and a back solution); `locate` resolves the
/// ambiguity with the IMU angle, while `locateAll` exposes every solution.
class Localizer {
 public:
  using Options = LocalizerOptions;

  explicit Localizer(const geo::HeadBoundary& head, Options opts = {});

  /// All iso-delay intersections for left/right first-tap delays (seconds).
  std::vector<PolarFix> locateAll(double delayLeftSec,
                                  double delayRightSec) const;

  /// The intersection closest to the IMU angle estimate, or nullopt when no
  /// intersection exists (inconsistent delays for this head candidate).
  std::optional<PolarFix> locate(double delayLeftSec, double delayRightSec,
                                 double imuAngleDeg) const;

 private:
  /// Radius at which the left-ear path length equals `targetLen` along the
  /// ray with unit direction `dir` (the sin/cos of the scan angle, hoisted
  /// out by the caller so the root-finder's inner evaluations are
  /// trig-free), or nullopt when out of range. `hint` is a warm start from
  /// a nearby scan angle: when the root lies within a small window around
  /// it, Brent runs on that window instead of the full radius range (the
  /// path length is monotone in r for r > ear radius, so a sign change
  /// across the window brackets the unique root).
  std::optional<double> radiusForLeftPath(
      geo::Vec2 dir, double targetLen,
      const std::optional<double>& hint = std::nullopt) const;
  /// Right-ear path residual at the radius solving the left-ear constraint
  /// (NaN when no such radius). `warmRadius`, if non-null, is read as the
  /// hint for the radius solve and updated with the found root — callers
  /// sweeping consecutive angles thread it through the scan.
  double rightPathResidual(geo::Vec2 dir, double targetLenLeft,
                           double targetLenRight,
                           std::optional<double>* warmRadius = nullptr) const;

  const geo::HeadBoundary& head_;
  Options opts_;
};

}  // namespace uniq::core
