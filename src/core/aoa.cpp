#include "core/aoa.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/constants.h"
#include "common/error.h"
#include "common/math_util.h"  // square, clamp, angularDistanceDeg
#include "common/thread_pool.h"
#include "dsp/correlation.h"
#include "dsp/deconvolution.h"
#include "dsp/fft_plan.h"
#include "dsp/fractional_delay.h"
#include "dsp/peak_picking.h"
#include "dsp/spectrum.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace uniq::core {

namespace {

/// Argmin over (angle, score) pairs plus the decision margin: the best
/// score among candidates >= 10 degrees from the winner. Scanned in grid
/// order, so the result is thread-count independent.
AoaEstimate pickBest(const std::vector<double>& angles,
                     const std::vector<double>& scores,
                     const char* marginMetric) {
  AoaEstimate best;
  best.score = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < angles.size(); ++c) {
    if (scores[c] < best.score) {
      best.score = scores[c];
      best.angleDeg = angles[c];
    }
  }
  best.runnerUpScore = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < angles.size(); ++c) {
    if (std::fabs(angles[c] - best.angleDeg) < 10.0) continue;
    best.runnerUpScore = std::min(best.runnerUpScore, scores[c]);
  }
  best.scoreMargin = std::isfinite(best.runnerUpScore)
                         ? best.runnerUpScore - best.score
                         : 0.0;
  // Soft-saturating margin->confidence map: 0 margin -> 0, margin == 0.2
  // (a solid win on either objective's scale) -> 0.5, large margins -> 1.
  best.confidence = best.scoreMargin / (best.scoreMargin + 0.2);
  obs::registry()
      .histogram(marginMetric, obs::HistogramOptions{1e-4, 2.0, 24})
      .observe(best.scoreMargin);
  return best;
}

}  // namespace

AoaEstimator::AoaEstimator(const FarFieldTable& table, Options opts)
    : table_(table), opts_(opts) {
  UNIQ_REQUIRE(table_.byDegree.size() == 181, "table must cover 0..180");
  UNIQ_REQUIRE(opts_.lambdaPerSecond >= 0, "lambda must be >= 0");
}

std::shared_ptr<const AoaEstimator::TemplateSpectra>
AoaEstimator::cachedTemplateSpectra(std::size_t degreeIndex,
                                    std::size_t n) const {
  std::lock_guard<std::mutex> lock(specMutex_);
  if (specN_ != n) {
    specN_ = n;
    spec_.assign(table_.byDegree.size(), nullptr);
  }
  auto& slot = spec_[degreeIndex];
  if (!slot) {
    static obs::Counter& fills =
        obs::registry().counter("aoa.template_cache.fills");
    fills.inc();
    const auto plan = dsp::fftPlan(n);
    auto spectra = std::make_shared<TemplateSpectra>();
    const auto& tmpl = table_.byDegree[degreeIndex];
    std::vector<double> padded(n, 0.0);
    std::copy(tmpl.left.begin(), tmpl.left.end(), padded.begin());
    spectra->left = plan->rfft(padded);
    std::fill(padded.begin(), padded.end(), 0.0);
    std::copy(tmpl.right.begin(), tmpl.right.end(), padded.begin());
    spectra->right = plan->rfft(padded);
    slot = std::move(spectra);
  } else {
    static obs::Counter& hits =
        obs::registry().counter("aoa.template_cache.hits");
    hits.inc();
  }
  return slot;
}

void AoaEstimator::prefillTemplateSpectra(
    const std::vector<std::size_t>& degreeIndices, std::size_t n) const {
  if (!opts_.cacheTemplateSpectra) return;
  std::lock_guard<std::mutex> lock(specMutex_);
  if (specN_ != n) {
    specN_ = n;
    spec_.assign(table_.byDegree.size(), nullptr);
  }
  std::vector<std::size_t> missing;
  for (std::size_t idx : degreeIndices)
    if (!spec_[idx]) missing.push_back(idx);
  if (missing.empty()) return;
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()), missing.end());

  // One batched pass over every missing left/right template pair.
  std::vector<std::vector<double>> padded(
      2 * missing.size(), std::vector<double>(n, 0.0));
  for (std::size_t m = 0; m < missing.size(); ++m) {
    const auto& tmpl = table_.byDegree[missing[m]];
    std::copy(tmpl.left.begin(), tmpl.left.end(), padded[2 * m].begin());
    std::copy(tmpl.right.begin(), tmpl.right.end(),
              padded[2 * m + 1].begin());
  }
  const auto plan = dsp::fftPlan(n);
  auto spectra = plan->rfftBatch(padded);
  static obs::Counter& fills =
      obs::registry().counter("aoa.template_cache.fills");
  fills.inc(missing.size());
  for (std::size_t m = 0; m < missing.size(); ++m) {
    auto entry = std::make_shared<TemplateSpectra>();
    entry->left = std::move(spectra[2 * m]);
    entry->right = std::move(spectra[2 * m + 1]);
    spec_[missing[m]] = std::move(entry);
  }
}

double AoaEstimator::templateDelaySec(double thetaDeg) const {
  const auto idx = static_cast<std::size_t>(
      clamp(std::lround(thetaDeg), 0.0, 180.0));
  return (table_.tapLeftSamples[idx] - table_.tapRightSamples[idx]) /
         table_.sampleRate;
}

namespace {

struct ExtractedChannel {
  std::vector<double> h;
  double tapSec = 0.0;
  bool valid = false;
};

ExtractedChannel extractChannel(const std::vector<double>& recording,
                                const std::vector<double>& source,
                                double sampleRate, double regularization,
                                double headWindowSec) {
  ExtractedChannel out;
  dsp::DeconvolutionOptions dopts;
  dopts.relativeRegularization = regularization;
  dopts.responseLength = 512;
  out.h = dsp::deconvolve(recording, source, dopts);
  dsp::FirstTapOptions tapOpts;
  const auto tap = dsp::findFirstTap(out.h, tapOpts);
  if (!tap) return out;
  out.tapSec = tap->position / sampleRate;
  const auto hi = static_cast<long>(
      std::ceil(tap->position + headWindowSec * sampleRate));
  const auto lo = static_cast<long>(std::floor(tap->position - 16.0));
  for (long i = 0; i < static_cast<long>(out.h.size()); ++i) {
    if (i < lo || i > hi) out.h[static_cast<std::size_t>(i)] = 0.0;
  }
  out.valid = true;
  return out;
}

}  // namespace

double AoaEstimator::knownSourceObjective(
    double thetaDeg, double t0Sec, const std::vector<double>& hLeft,
    const std::vector<double>& hRight) const {
  const auto& tmpl = table_.at(thetaDeg);
  const double tTheta = templateDelaySec(thetaDeg);
  const auto cL = dsp::normalizedCorrelationPeak(hLeft, tmpl.left,
                                                 opts_.shapeMaxLagSamples);
  const auto cR = dsp::normalizedCorrelationPeak(hRight, tmpl.right,
                                                 opts_.shapeMaxLagSamples);
  return opts_.lambdaPerSecond * std::fabs(t0Sec - tTheta) +
         (1.0 - cL.value) + (1.0 - cR.value);
}

AoaEstimate AoaEstimator::estimateKnown(
    const std::vector<double>& leftRecording,
    const std::vector<double>& rightRecording,
    const std::vector<double>& source) const {
  UNIQ_SPAN("aoa.known");
  UNIQ_REQUIRE(!leftRecording.empty() && !rightRecording.empty() &&
                   !source.empty(),
               "empty input");
  const double fs = table_.sampleRate;
  const auto chL = extractChannel(leftRecording, source, fs,
                                  opts_.relativeRegularization,
                                  opts_.headWindowSec);
  const auto chR = extractChannel(rightRecording, source, fs,
                                  opts_.relativeRegularization,
                                  opts_.headWindowSec);
  if (!chL.valid || !chR.valid) {
    // No usable first taps (dropout, dead channel, buried chirp): the Eq. 9
    // objective has nothing to anchor on. Degrade to the unknown-source
    // path, which needs only the raw recordings, rather than throwing —
    // a localization consumer prefers a low-confidence estimate to none.
    static obs::Counter& fallbacks =
        obs::registry().counter("aoa.known.fallbacks");
    fallbacks.inc();
    AoaEstimate est = estimateUnknown(leftRecording, rightRecording);
    est.degraded = true;
    est.confidence *= 0.5;
    return est;
  }
  const double t0 = chL.tapSec - chR.tapSec;

  // Pre-align each measured channel to the template anchor so the shape
  // correlation compares like with like: shift the channel so its first tap
  // lands at that angle's template tap position, per candidate angle. Each
  // angle scores independently, so the sweep fans out across the pool; the
  // argmin below scans in grid order, giving thread-count-independent
  // results.
  std::vector<double> thetas;
  for (double theta = 0.0; theta <= 180.0; theta += opts_.searchStepDeg)
    thetas.push_back(theta);
  std::vector<double> scores(thetas.size());
  common::parallelFor(
      0, thetas.size(),
      [&](std::size_t c) {
        const double theta = thetas[c];
        const auto idx = static_cast<std::size_t>(std::lround(theta));
        auto alignedL = dsp::fractionalShift(
            chL.h, table_.tapLeftSamples[idx] - chL.tapSec * fs);
        auto alignedR = dsp::fractionalShift(
            chR.h, table_.tapRightSamples[idx] - chR.tapSec * fs);
        alignedL.resize(table_.byDegree[idx].left.size(), 0.0);
        alignedR.resize(table_.byDegree[idx].right.size(), 0.0);
        scores[c] = knownSourceObjective(theta, t0, alignedL, alignedR);
      },
      opts_.numThreads);

  return pickBest(thetas, scores, "aoa.known.margin");
}

std::vector<double> AoaEstimator::candidateAnglesForDelay(
    double deltaSec) const {
  // Find all grid angles where the template interaural delay crosses the
  // observed delay.
  std::vector<double> candidates;
  double prev = templateDelaySec(0.0) - deltaSec;
  for (int deg = 1; deg <= 180; ++deg) {
    const double cur = templateDelaySec(static_cast<double>(deg)) - deltaSec;
    if (prev == 0.0) candidates.push_back(static_cast<double>(deg - 1));
    else if ((prev < 0) != (cur < 0)) {
      const double f = prev / (prev - cur);
      candidates.push_back(static_cast<double>(deg - 1) + f);
    }
    prev = cur;
  }
  if (prev == 0.0) candidates.push_back(180.0);
  return candidates;
}

AoaEstimate AoaEstimator::estimateUnknown(
    const std::vector<double>& leftRecording,
    const std::vector<double>& rightRecording) const {
  UNIQ_SPAN("aoa.unknown");
  UNIQ_REQUIRE(!leftRecording.empty() && !rightRecording.empty(),
               "empty input");
  const double fs = table_.sampleRate;

  // Relative channel via GCC-PHAT; each strong peak is a candidate
  // interaural delay (paper Figure 14: pinna multipath produces several).
  const double maxItdSec = 1.2e-3;  // generous physical bound for a head
  auto rel = dsp::gccPhat(leftRecording, rightRecording);
  dsp::FirstTapOptions peakOpts;
  peakOpts.relativeThreshold = opts_.peakRelativeThreshold;
  const auto taps = dsp::findTaps(rel, peakOpts);
  const double zeroLag = static_cast<double>(rightRecording.size() - 1);

  std::vector<double> candidates;
  for (const auto& tap : taps) {
    const double lag = tap.position - zeroLag;  // right lags left by `lag`
    const double delta = -lag / fs;             // t0 = tapL - tapR = -lag/fs
    if (std::fabs(delta) > maxItdSec) continue;
    for (double ang : candidateAnglesForDelay(delta))
      candidates.push_back(ang);
  }
  if (candidates.empty()) {
    for (double ang = 0.0; ang <= 180.0; ang += 4.0)
      candidates.push_back(ang);
  }

  // Disambiguate with the multiplicative relative-channel match (Eq. 11):
  // L(f) * H_R(theta)(f) should equal R(f) * H_L(theta)(f).
  //
  // Two robustness measures for *estimated* templates:
  //  - Magnitude form: the interaural delay already selected the
  //    candidates, so the residual compares level spectra only. Phase at
  //    several kHz rotates wildly per sample of template timing error.
  //  - Frame aggregation: tonal sources (music, speech) excite different
  //    sparse harmonic sets over time; summing per-frame residuals pools
  //    quasi-independent evidence instead of betting on one spectrum.
  const std::size_t total = std::min(leftRecording.size(),
                                     rightRecording.size());
  const std::size_t frameLen = opts_.frameAggregation ? 8192 : total;
  const std::size_t hop = frameLen / 2;
  std::vector<std::size_t> frameStarts;
  if (total <= frameLen) {
    frameStarts.push_back(0);
  } else {
    for (std::size_t s = 0; s + frameLen <= total; s += hop)
      frameStarts.push_back(s);
  }

  const std::size_t n = dsp::nextPowerOfTwo(
      std::max(std::min(total, frameLen), table_.byDegree[0].left.size()) *
      2);
  const std::size_t bLo = dsp::frequencyToBin(opts_.bandLoHz, n, fs);
  const std::size_t bHi =
      std::min(dsp::frequencyToBin(opts_.bandHiHz, n, fs), n / 2);

  // Per-frame half spectra of both ears (real signals; bins above n/2 are
  // redundant and the Eq. 11 band never reaches them). All frames of both
  // ears go through one batched-FFT pass.
  const auto plan = dsp::fftPlan(n);
  std::vector<std::vector<double>> frames(2 * frameStarts.size(),
                                          std::vector<double>(n, 0.0));
  for (std::size_t f = 0; f < frameStarts.size(); ++f) {
    const std::size_t start = frameStarts[f];
    const std::size_t len = std::min(frameLen, total - start);
    for (std::size_t i = 0; i < len; ++i) {
      frames[2 * f][i] = leftRecording[start + i];
      frames[2 * f + 1][i] = rightRecording[start + i];
    }
  }
  auto frameSpectra = plan->rfftBatch(frames);
  std::vector<std::vector<dsp::Complex>> framesL, framesR;
  for (std::size_t f = 0; f < frameStarts.size(); ++f) {
    framesL.push_back(std::move(frameSpectra[2 * f]));
    framesR.push_back(std::move(frameSpectra[2 * f + 1]));
  }

  // Batched serving: compute every candidate's template spectra in one
  // batched pass up front, so the scoring loop below is all cache hits.
  if (opts_.cacheTemplateSpectra) {
    std::vector<std::size_t> indices;
    indices.reserve(candidates.size());
    for (double theta : candidates)
      indices.push_back(static_cast<std::size_t>(clamp(
          std::lround(theta), 0.0,
          static_cast<double>(table_.byDegree.size() - 1))));
    prefillTemplateSpectra(indices, n);
  }

  // Score every candidate independently across the pool, then argmin in
  // candidate order (deterministic for any thread count).
  std::vector<double> scores(candidates.size());
  common::parallelFor(
      0, candidates.size(),
      [&](std::size_t c) {
        const double theta = candidates[c];
        const auto idx = static_cast<std::size_t>(clamp(
            std::lround(theta), 0.0,
            static_cast<double>(table_.byDegree.size() - 1)));
        // Template spectra: either from the per-estimator cache (batched
        // serving; one rfft pair per angle per batch) or computed fresh
        // (one-shot estimate). Same inputs, bitwise-identical spectra.
        std::shared_ptr<const TemplateSpectra> cached;
        std::vector<dsp::Complex> freshL, freshR;
        if (opts_.cacheTemplateSpectra) {
          cached = cachedTemplateSpectra(idx, n);
        } else {
          const auto& tmpl = table_.byDegree[idx];
          std::vector<double> padded(n, 0.0);
          std::copy(tmpl.left.begin(), tmpl.left.end(), padded.begin());
          freshL = plan->rfft(padded);
          std::fill(padded.begin(), padded.end(), 0.0);
          std::copy(tmpl.right.begin(), tmpl.right.end(), padded.begin());
          freshR = plan->rfft(padded);
        }
        const auto& hl = cached ? cached->left : freshL;
        const auto& hr = cached ? cached->right : freshR;
        double score = 0.0;
        for (std::size_t f = 0; f < framesL.size(); ++f) {
          double num = 0.0, den = 0.0;
          for (std::size_t k = bLo; k <= bHi; ++k) {
            const double lhs = std::abs(framesL[f][k] * hr[k]);
            const double rhs = std::abs(framesR[f][k] * hl[k]);
            num += square(lhs - rhs);
            den += square(lhs) + square(rhs);
          }
          score += den > 1e-30 ? num / den : 2.0;
        }
        scores[c] = score / static_cast<double>(framesL.size());
      },
      opts_.numThreads);

  return pickBest(candidates, scores, "aoa.unknown.margin");
}

double trainLambda(const FarFieldTable& table, const std::vector<double>& grid,
                   const std::vector<double>& trueAnglesDeg,
                   const std::vector<std::vector<double>>& leftRecordings,
                   const std::vector<std::vector<double>>& rightRecordings,
                   const std::vector<double>& source,
                   const AoaEstimatorOptions& baseOpts) {
  UNIQ_REQUIRE(!grid.empty(), "empty lambda grid");
  UNIQ_REQUIRE(trueAnglesDeg.size() == leftRecordings.size() &&
                   trueAnglesDeg.size() == rightRecordings.size(),
               "mismatched training set sizes");
  double bestLambda = grid.front();
  double bestErr = std::numeric_limits<double>::infinity();
  for (double lambda : grid) {
    AoaEstimatorOptions opts = baseOpts;
    opts.lambdaPerSecond = lambda;
    const AoaEstimator est(table, opts);
    double err = 0.0;
    for (std::size_t i = 0; i < trueAnglesDeg.size(); ++i) {
      const auto result =
          est.estimateKnown(leftRecordings[i], rightRecordings[i], source);
      err += angularDistanceDeg(result.angleDeg, trueAnglesDeg[i]);
    }
    err /= static_cast<double>(trueAnglesDeg.size());
    if (err < bestErr) {
      bestErr = err;
      bestLambda = lambda;
    }
  }
  return bestLambda;
}

}  // namespace uniq::core
