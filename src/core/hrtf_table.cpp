#include "core/hrtf_table.h"

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/math_util.h"
#include "dsp/fractional_delay.h"
#include "geometry/diffraction.h"
#include "geometry/polar.h"

namespace uniq::core {

HrtfTable::HrtfTable(NearFieldTable nearTable, FarFieldTable farTable)
    : near_(std::move(nearTable)), far_(std::move(farTable)) {
  UNIQ_REQUIRE(near_.byDegree.size() == 181 && far_.byDegree.size() == 181,
               "tables must cover 0..180 degrees");
  UNIQ_REQUIRE(near_.sampleRate == far_.sampleRate,
               "near/far sample rates must match");
  boundary_ = std::make_unique<geo::HeadBoundary>(
      near_.headParams.a, near_.headParams.b, near_.headParams.c, 256);
}

const head::Hrir& HrtfTable::nearAt(double thetaDeg) const {
  return near_.at(thetaDeg);
}

const head::Hrir& HrtfTable::farAt(double thetaDeg) const {
  return far_.at(thetaDeg);
}

head::BinauralSignal HrtfTable::renderFrom(
    geo::Vec2 location, const std::vector<double>& mono) const {
  const double theta = geo::azimuthDegOfPoint(location);
  const double r = geo::radiusOfPoint(location);
  // The 2D prototype covers the left hemicircle [0, 180]; mirror-symmetric
  // requests are clamped (the paper's prototype measures one side).
  const double clamped = clamp(theta, 0.0, 180.0);
  if (r >= kFarFieldBoundaryM) return renderFar(clamped, mono);
  return renderNear(clamped, r, mono);
}

head::BinauralSignal HrtfTable::renderFar(
    double thetaDeg, const std::vector<double>& mono) const {
  return head::renderBinaural(farAt(thetaDeg), mono);
}

head::Hrir HrtfTable::nearHrirAt(double thetaDeg, double radiusM) const {
  UNIQ_REQUIRE(radiusM > 0.12 && radiusM <= kFarFieldBoundaryM + 0.5,
               "near-field radius out of range");
  head::Hrir hrir = nearAt(thetaDeg);
  const double tableRadius = near_.medianRadiusM;
  if (std::fabs(radiusM - tableRadius) < 1e-6) return hrir;

  const double theta = clamp(thetaDeg, 0.0, 180.0);
  const geo::Vec2 pTable = geo::pointFromPolarDeg(theta, tableRadius);
  const geo::Vec2 pWanted = geo::pointFromPolarDeg(theta, radiusM);
  const double fs = near_.sampleRate;
  constexpr double kBeta = 8.0;  // the model's creeping attenuation

  for (geo::Ear ear : {geo::Ear::kLeft, geo::Ear::kRight}) {
    const auto atTable = geo::nearFieldPath(*boundary_, pTable, ear);
    const auto atWanted = geo::nearFieldPath(*boundary_, pWanted, ear);
    const double deltaSamples =
        (atWanted.length - atTable.length) / kSpeedOfSound * fs;
    const double gain =
        (atTable.length / atWanted.length) *
        std::exp(-kBeta * (atWanted.arcLength - atTable.arcLength));
    auto& channel = ear == geo::Ear::kLeft ? hrir.left : hrir.right;
    channel = dsp::fractionalShift(channel, deltaSamples);
    for (auto& v : channel) v *= gain;
  }
  return hrir;
}

head::BinauralSignal HrtfTable::renderNear(
    double thetaDeg, double radiusM, const std::vector<double>& mono) const {
  return head::renderBinaural(nearHrirAt(thetaDeg, radiusM), mono);
}

}  // namespace uniq::core
