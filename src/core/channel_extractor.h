#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "dsp/fft.h"

namespace uniq::core {

/// Per-stop capture-quality evidence, computed during extraction. The
/// pipeline's quality gate uses it to exclude corrupted stops from fusion
/// instead of letting one clipped recording poison the head estimate
/// (in-the-wild HRTF capture lives or dies on rejecting bad measurements).
struct StopQuality {
  /// Fraction of raw recording samples sitting at the waveform peak
  /// (flat-topped). Clean recordings touch their peak a handful of times;
  /// a clipped one plateaus there.
  double clipFractionLeft = 0.0;
  double clipFractionRight = 0.0;
  /// Peak-to-floor ratio of the deconvolved channel (dB): channel peak over
  /// the median absolute sample. Sparse clean channels score high; burst
  /// noise, dropouts, and failed mics crush it.
  double tapSnrLeftDb = 0.0;
  double tapSnrRightDb = 0.0;
  bool tapsDetected = false;  ///< both ears produced a first tap
  bool clipped = false;       ///< either ear's clip fraction beyond threshold
  bool lowSnr = false;        ///< either ear's tap SNR below threshold
  /// True when the stop should not feed sensor fusion.
  bool gated() const { return clipped || lowSnr || !tapsDetected; }
};

/// A per-stop binaural acoustic channel estimate with absolute timing
/// preserved (the phone and earbuds are synchronized, so tap positions are
/// true propagation delays).
struct BinauralChannel {
  std::vector<double> left;
  std::vector<double> right;
  double sampleRate = 0.0;
  /// First-tap (diffraction path) delays in seconds; nullopt when no tap
  /// cleared the detection threshold in that ear.
  std::optional<double> firstTapLeftSec;
  std::optional<double> firstTapRightSec;
  /// Capture-quality evidence for this stop (see StopQuality).
  StopQuality quality;
};

struct ChannelExtractorOptions {
  /// Tikhonov regularization for the spectral division.
  double relativeRegularization = 1e-3;
  /// Keep this much channel after the first tap; everything later is a room
  /// reflection and is zeroed (paper Section 4.6, "Tackling room
  /// reflections": head diffraction and pinna multipath arrive earlier than
  /// room reflections).
  double headWindowSec = 2.5e-3;
  /// Guard window kept before the first tap (hardware ringing).
  double preGuardSec = 0.3e-3;
  /// Output channel length in samples.
  std::size_t channelLength = 256;
  /// First-tap detection threshold relative to the channel peak.
  double firstTapRelativeThreshold = 0.35;
  /// Compensate the speaker-mic frequency response (Section 4.6).
  bool compensateHardware = true;
  /// Quality gate: a stop whose raw recording spends more than this
  /// fraction of samples flat at the waveform peak is marked clipped.
  double maxClipFraction = 5e-3;
  /// Quality gate: minimum deconvolved-channel peak-to-floor ratio (dB)
  /// before the stop's taps are considered trustworthy.
  double minTapSnrDb = 14.0;
};

/// Estimates binaural channels from raw earbud recordings of the known
/// chirp: deconvolution, hardware-response compensation, room-reflection
/// removal, and first-tap extraction.
class ChannelExtractor {
 public:
  using Options = ChannelExtractorOptions;

  /// `hardwareResponseEstimate` is the co-located speaker-mic response
  /// estimate (Section 4.6); pass an empty vector to skip compensation.
  ChannelExtractor(std::vector<dsp::Complex> hardwareResponseEstimate,
                   double sampleRate, Options opts = {});

  /// Extract the binaural channel from one stop's recordings.
  BinauralChannel extract(const std::vector<double>& leftRecording,
                          const std::vector<double>& rightRecording,
                          const std::vector<double>& source) const;

  const Options& options() const { return opts_; }

 private:
  std::vector<double> extractEar(const std::vector<double>& recording,
                                 const std::vector<double>& source) const;
  /// Both ears in one pass when the recordings have equal length (the
  /// normal capture case): the two forward transforms run through the
  /// batched FFT and the source spectrum (plus its hardware compensation)
  /// is computed once and shared.
  std::pair<std::vector<double>, std::vector<double>> extractEars(
      const std::vector<double>& leftRecording,
      const std::vector<double>& rightRecording,
      const std::vector<double>& source) const;

  std::vector<dsp::Complex> hardwareEstimate_;
  double sampleRate_;
  Options opts_;
};

}  // namespace uniq::core
