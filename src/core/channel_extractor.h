#pragma once

#include <optional>
#include <vector>

#include "dsp/fft.h"

namespace uniq::core {

/// A per-stop binaural acoustic channel estimate with absolute timing
/// preserved (the phone and earbuds are synchronized, so tap positions are
/// true propagation delays).
struct BinauralChannel {
  std::vector<double> left;
  std::vector<double> right;
  double sampleRate = 0.0;
  /// First-tap (diffraction path) delays in seconds; nullopt when no tap
  /// cleared the detection threshold in that ear.
  std::optional<double> firstTapLeftSec;
  std::optional<double> firstTapRightSec;
};

struct ChannelExtractorOptions {
  /// Tikhonov regularization for the spectral division.
  double relativeRegularization = 1e-3;
  /// Keep this much channel after the first tap; everything later is a room
  /// reflection and is zeroed (paper Section 4.6, "Tackling room
  /// reflections": head diffraction and pinna multipath arrive earlier than
  /// room reflections).
  double headWindowSec = 2.5e-3;
  /// Guard window kept before the first tap (hardware ringing).
  double preGuardSec = 0.3e-3;
  /// Output channel length in samples.
  std::size_t channelLength = 256;
  /// First-tap detection threshold relative to the channel peak.
  double firstTapRelativeThreshold = 0.35;
  /// Compensate the speaker-mic frequency response (Section 4.6).
  bool compensateHardware = true;
};

/// Estimates binaural channels from raw earbud recordings of the known
/// chirp: deconvolution, hardware-response compensation, room-reflection
/// removal, and first-tap extraction.
class ChannelExtractor {
 public:
  using Options = ChannelExtractorOptions;

  /// `hardwareResponseEstimate` is the co-located speaker-mic response
  /// estimate (Section 4.6); pass an empty vector to skip compensation.
  ChannelExtractor(std::vector<dsp::Complex> hardwareResponseEstimate,
                   double sampleRate, Options opts = {});

  /// Extract the binaural channel from one stop's recordings.
  BinauralChannel extract(const std::vector<double>& leftRecording,
                          const std::vector<double>& rightRecording,
                          const std::vector<double>& source) const;

  const Options& options() const { return opts_; }

 private:
  std::vector<double> extractEar(const std::vector<double>& recording,
                                 const std::vector<double>& source) const;

  std::vector<dsp::Complex> hardwareEstimate_;
  double sampleRate_;
  Options opts_;
};

}  // namespace uniq::core
