#include "core/sensor_fusion.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "common/error.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "dsp/fft_plan.h"
#include "dsp/kernels/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/nelder_mead.h"

namespace uniq::core {

namespace {

/// Map unconstrained optimizer coordinates into the plausible head-parameter
/// box via a smooth logistic squashing, so Nelder-Mead never proposes an
/// invalid geometry.
double squash(double x, double lo, double hi) {
  return lo + (hi - lo) / (1.0 + std::exp(-x));
}

double unsquash(double v, double lo, double hi) {
  const double u = clamp((v - lo) / (hi - lo), 1e-6, 1.0 - 1e-6);
  return std::log(u / (1.0 - u));
}

head::HeadParameters decode(const std::vector<double>& x) {
  head::HeadParameters e;
  e.a = squash(x[0], head::HeadParameters::kMinA, head::HeadParameters::kMaxA);
  e.b = squash(x[1], head::HeadParameters::kMinB, head::HeadParameters::kMaxB);
  e.c = squash(x[2], head::HeadParameters::kMinC, head::HeadParameters::kMaxC);
  return e;
}

std::vector<double> encode(const head::HeadParameters& e) {
  return {
      unsquash(e.a, head::HeadParameters::kMinA, head::HeadParameters::kMaxA),
      unsquash(e.b, head::HeadParameters::kMinB, head::HeadParameters::kMaxB),
      unsquash(e.c, head::HeadParameters::kMinC, head::HeadParameters::kMaxC)};
}

double medianOf(std::vector<double> v) {
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  return v[mid];
}

}  // namespace

SensorFusion::SensorFusion(Options opts) : opts_(opts) {}

std::shared_ptr<const SensorFusion::CachedGeometry> SensorFusion::geometryFor(
    const head::HeadParameters& candidate) const {
  // Keyed on the exact parameter bits: Nelder-Mead revisits vertices
  // verbatim, so bit equality is the right match and never returns stale
  // geometry for a genuinely new candidate.
  constexpr std::size_t kMaxCachedGeometries = 8;
  {
    std::lock_guard<std::mutex> lock(geometryMutex_);
    for (auto it = geometryLru_.begin(); it != geometryLru_.end(); ++it) {
      if (it->first.a == candidate.a && it->first.b == candidate.b &&
          it->first.c == candidate.c) {
        geometryLru_.splice(geometryLru_.begin(), geometryLru_, it);
        return geometryLru_.front().second;
      }
    }
  }
  auto built = std::make_shared<const CachedGeometry>(
      candidate, opts_.boundaryResolution, opts_.localizer);
  std::lock_guard<std::mutex> lock(geometryMutex_);
  geometryLru_.emplace_front(candidate, built);
  if (geometryLru_.size() > kMaxCachedGeometries) geometryLru_.pop_back();
  return built;
}

double SensorFusion::objective(
    const head::HeadParameters& candidate,
    const std::vector<FusionMeasurement>& measurements) const {
  UNIQ_SPAN("dsf.objective");
  static obs::Counter& evals =
      obs::registry().counter("dsf.objective.evals");
  evals.inc();
  const auto geometry = geometryFor(candidate);
  const Localizer& localizer = geometry->localizer;
  // Localize every measurement independently across the pool; reduce in
  // measurement order so the objective is bitwise identical for any thread
  // count.
  std::vector<double> costs(measurements.size());
  common::parallelFor(
      0, measurements.size(),
      [&](std::size_t i) {
        const auto& m = measurements[i];
        const auto fix =
            localizer.locate(m.delayLeftSec, m.delayRightSec, m.imuAngleDeg);
        costs[i] = fix ? square(m.imuAngleDeg - fix->angleDeg)
                       : opts_.unlocalizedPenalty;
      },
      opts_.numThreads);
  double cost = 0.0;
  for (const double c : costs) cost += c;
  cost /= static_cast<double>(measurements.size());
  const auto avg = head::HeadParameters::average();
  cost += opts_.priorWeight *
          (square(candidate.a - avg.a) + square(candidate.b - avg.b) +
           square(candidate.c - avg.c));
  return cost;
}

SensorFusionResult SensorFusion::solve(
    const std::vector<FusionMeasurement>& measurements) const {
  UNIQ_SPAN("dsf.solve");
  UNIQ_REQUIRE(measurements.size() >= 6,
               "sensor fusion needs at least 6 usable stops");
  UNIQ_REQUIRE(opts_.restarts >= 1, "sensor fusion needs >= 1 restart");
  return solveWith(measurements, opts_.restarts);
}

SensorFusionResult SensorFusion::solveIncremental(
    const std::vector<FusionMeasurement>& measurements,
    const std::optional<head::HeadParameters>& seed) const {
  UNIQ_SPAN("dsf.solve_incremental");
  if (measurements.empty()) {
    SensorFusionResult result;
    result.usable = false;
    result.converged = false;
    return result;
  }
  return solveWith(measurements, 1, seed ? &*seed : nullptr);
}

SensorFusionResult SensorFusion::solveWith(
    const std::vector<FusionMeasurement>& measurements,
    std::size_t restarts, const head::HeadParameters* seedStart) const {
  const auto f = [&](const std::vector<double>& x) {
    return objective(decode(x), measurements);
  };

  // Which kernel tier this solve ran on, and how many FFT transforms each
  // objective evaluation cost — both end up in the RunReport metrics
  // snapshot. (The DSF objective is geometry-bound; a nonzero per-eval FFT
  // count flags an unexpected code path.)
  static obs::Counter& evalCounter =
      obs::registry().counter("dsf.objective.evals");
  static obs::Counter& fftCounter =
      obs::registry().counter("dsf.solve.fft_transforms");
  static obs::Gauge& fftPerEval =
      obs::registry().gauge("dsf.solve.fft_per_eval");
  obs::registry()
      .counter(std::string("dsf.solve.kernel.") +
               dsp::kernels::isaName(dsp::kernels::activeIsa()))
      .inc();
  const auto fftBefore = dsp::fftStats();
  const std::uint64_t evalsBefore = evalCounter.value();

  optim::NelderMeadOptions nmOpts;
  nmOpts.maxIterations = opts_.maxIterations;
  nmOpts.initialStep = 0.6;  // in squashed coordinates
  nmOpts.fTolerance = 1e-4;
  nmOpts.xTolerance = 1e-3;

  SensorFusionResult result;
  static obs::Histogram& iterHist = obs::registry().histogram(
      "dsf.restart.iterations", obs::HistogramOptions{1.0, 2.0, 10});
  optim::MinimizeResult best;
  for (std::size_t r = 0; r < restarts; ++r) {
    UNIQ_SPAN("dsf.restart");
    auto start = encode(r == 0 && seedStart ? *seedStart
                                            : head::HeadParameters::average());
    // Restart 0 is the canonical average start (or the caller's warm seed);
    // later restarts probe the corners of a small cube around the average
    // (deterministic, no RNG, so the solve stays reproducible).
    if (r > 0) {
      for (std::size_t j = 0; j < start.size(); ++j)
        start[j] += 0.45 * (((r >> j) & 1) ? 1.0 : -1.0);
    }
    auto min = optim::nelderMead(f, start, nmOpts);
    iterHist.observe(static_cast<double>(min.iterations));
    result.iterations += min.iterations;
    if (r == 0 || min.fValue < best.fValue) best = std::move(min);
  }
  result.restartsUsed = restarts;
  result.headParams = decode(best.x);
  result.converged = best.converged;
  result.finalObjectiveDeg2 = best.fValue;

  // Final pass with the optimal parameters: fuse angles per Eq. 3. The
  // winning vertex was just evaluated by the optimizer, so this is a
  // geometry-cache hit.
  UNIQ_SPAN("dsf.fuse");
  const auto geometry = geometryFor(result.headParams);
  const Localizer& localizer = geometry->localizer;
  double residual = 0.0;
  for (const auto& m : measurements) {
    FusedStop stop;
    stop.sourceIndex = m.sourceIndex;
    stop.imuAngleDeg = m.imuAngleDeg;
    const auto fix =
        localizer.locate(m.delayLeftSec, m.delayRightSec, m.imuAngleDeg);
    if (fix) {
      stop.localized = true;
      stop.acousticAngleDeg = fix->angleDeg;
      stop.angleDeg = 0.5 * (fix->angleDeg + m.imuAngleDeg);
      stop.radiusM = fix->radiusM;
      residual += square(m.imuAngleDeg - fix->angleDeg);
      ++result.localizedCount;
    } else {
      stop.angleDeg = m.imuAngleDeg;
      stop.radiusM = 0.0;
    }
    result.stops.push_back(stop);
  }
  result.meanSquaredResidualDeg2 =
      result.localizedCount > 0
          ? residual / static_cast<double>(result.localizedCount)
          : opts_.unlocalizedPenalty;

  const auto fftAfter = dsp::fftStats();
  const std::uint64_t fftDelta =
      (fftAfter.transforms + fftAfter.batchedTransforms) -
      (fftBefore.transforms + fftBefore.batchedTransforms);
  const std::uint64_t evalDelta = evalCounter.value() - evalsBefore;
  fftCounter.inc(fftDelta);
  fftPerEval.set(evalDelta > 0 ? static_cast<double>(fftDelta) /
                                     static_cast<double>(evalDelta)
                               : 0.0);
  return result;
}

SensorFusionResult SensorFusion::solveRobust(
    const std::vector<FusionMeasurement>& measurements) const {
  UNIQ_SPAN("dsf.solve_robust");
  static obs::Counter& rejectedCounter =
      obs::registry().counter("dsf.rejected_stops");

  SensorFusionResult result;
  if (measurements.size() < opts_.minMeasurements || opts_.restarts < 1) {
    result.usable = false;
    result.converged = false;
    return result;
  }

  std::vector<FusionMeasurement> kept = measurements;
  result = solveWith(kept, opts_.restarts);
  std::vector<std::size_t> rejected;

  for (std::size_t round = 0; round < opts_.maxRejectRounds; ++round) {
    if (kept.size() <= opts_.minMeasurements) break;

    // Absolute IMU-vs-acoustic residual per localized stop. A corrupted
    // stop (clock drift, swapped ears that still localize, IMU glitch)
    // shows up as a gross disagreement the healthy stops never reach.
    std::vector<double> residuals;
    for (const auto& s : result.stops)
      if (s.localized)
        residuals.push_back(std::fabs(s.imuAngleDeg - s.acousticAngleDeg));
    if (residuals.size() < 3) break;

    const double med = medianOf(residuals);
    std::vector<double> deviations;
    deviations.reserve(residuals.size());
    for (double r : residuals) deviations.push_back(std::fabs(r - med));
    const double mad = medianOf(deviations);
    const double threshold =
        std::max(opts_.rejectMadMultiplier * 1.4826 * mad,
                 opts_.rejectMinResidualDeg);

    // Worst offenders first, capped so the survivor count never dips below
    // the minimum the solver needs.
    std::vector<std::pair<double, std::size_t>> outliers;
    for (const auto& s : result.stops) {
      if (!s.localized) continue;
      const double r = std::fabs(s.imuAngleDeg - s.acousticAngleDeg);
      if (r > threshold) outliers.emplace_back(r, s.sourceIndex);
    }
    if (outliers.empty()) break;
    std::sort(outliers.rbegin(), outliers.rend());
    const std::size_t budget = kept.size() - opts_.minMeasurements;
    if (outliers.size() > budget) outliers.resize(budget);
    if (outliers.empty()) break;

    for (const auto& [r, src] : outliers) {
      rejected.push_back(src);
      kept.erase(std::remove_if(kept.begin(), kept.end(),
                                [src = src](const FusionMeasurement& m) {
                                  return m.sourceIndex == src;
                                }),
                 kept.end());
    }
    result = solveWith(kept, opts_.restarts);
    result.rejectRounds = round + 1;
  }

  // Non-convergence fallback: re-solve from widened deterministic starts
  // and keep whichever attempt scored the better objective. Degraded, not
  // dead.
  if (!result.converged && opts_.widenedRestarts > opts_.restarts) {
    const std::size_t rounds = result.rejectRounds;
    auto widenedResult = solveWith(kept, opts_.widenedRestarts);
    if (widenedResult.converged ||
        widenedResult.finalObjectiveDeg2 < result.finalObjectiveDeg2) {
      result = std::move(widenedResult);
      result.rejectRounds = rounds;
    }
    result.widened = true;
  }

  std::sort(rejected.begin(), rejected.end());
  if (!rejected.empty()) rejectedCounter.inc(rejected.size());
  // Surface rejected stops as unlocalized entries so downstream stages see
  // every source index exactly once.
  for (std::size_t src : rejected) {
    const auto it =
        std::find_if(measurements.begin(), measurements.end(),
                     [src](const FusionMeasurement& m) {
                       return m.sourceIndex == src;
                     });
    if (it == measurements.end()) continue;
    FusedStop stop;
    stop.sourceIndex = src;
    stop.imuAngleDeg = it->imuAngleDeg;
    stop.angleDeg = it->imuAngleDeg;
    stop.localized = false;
    result.stops.push_back(stop);
  }
  std::sort(result.stops.begin(), result.stops.end(),
            [](const FusedStop& a, const FusedStop& b) {
              return a.sourceIndex < b.sourceIndex;
            });
  result.rejectedSourceIndices = std::move(rejected);
  return result;
}

}  // namespace uniq::core
