#include "core/sensor_fusion.h"

#include <cmath>

#include "common/error.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/nelder_mead.h"

namespace uniq::core {

namespace {

/// Map unconstrained optimizer coordinates into the plausible head-parameter
/// box via a smooth logistic squashing, so Nelder-Mead never proposes an
/// invalid geometry.
double squash(double x, double lo, double hi) {
  return lo + (hi - lo) / (1.0 + std::exp(-x));
}

double unsquash(double v, double lo, double hi) {
  const double u = clamp((v - lo) / (hi - lo), 1e-6, 1.0 - 1e-6);
  return std::log(u / (1.0 - u));
}

head::HeadParameters decode(const std::vector<double>& x) {
  head::HeadParameters e;
  e.a = squash(x[0], head::HeadParameters::kMinA, head::HeadParameters::kMaxA);
  e.b = squash(x[1], head::HeadParameters::kMinB, head::HeadParameters::kMaxB);
  e.c = squash(x[2], head::HeadParameters::kMinC, head::HeadParameters::kMaxC);
  return e;
}

std::vector<double> encode(const head::HeadParameters& e) {
  return {
      unsquash(e.a, head::HeadParameters::kMinA, head::HeadParameters::kMaxA),
      unsquash(e.b, head::HeadParameters::kMinB, head::HeadParameters::kMaxB),
      unsquash(e.c, head::HeadParameters::kMinC, head::HeadParameters::kMaxC)};
}

}  // namespace

SensorFusion::SensorFusion(Options opts) : opts_(opts) {}

std::shared_ptr<const SensorFusion::CachedGeometry> SensorFusion::geometryFor(
    const head::HeadParameters& candidate) const {
  // Keyed on the exact parameter bits: Nelder-Mead revisits vertices
  // verbatim, so bit equality is the right match and never returns stale
  // geometry for a genuinely new candidate.
  constexpr std::size_t kMaxCachedGeometries = 8;
  {
    std::lock_guard<std::mutex> lock(geometryMutex_);
    for (auto it = geometryLru_.begin(); it != geometryLru_.end(); ++it) {
      if (it->first.a == candidate.a && it->first.b == candidate.b &&
          it->first.c == candidate.c) {
        geometryLru_.splice(geometryLru_.begin(), geometryLru_, it);
        return geometryLru_.front().second;
      }
    }
  }
  auto built = std::make_shared<const CachedGeometry>(
      candidate, opts_.boundaryResolution, opts_.localizer);
  std::lock_guard<std::mutex> lock(geometryMutex_);
  geometryLru_.emplace_front(candidate, built);
  if (geometryLru_.size() > kMaxCachedGeometries) geometryLru_.pop_back();
  return built;
}

double SensorFusion::objective(
    const head::HeadParameters& candidate,
    const std::vector<FusionMeasurement>& measurements) const {
  UNIQ_SPAN("dsf.objective");
  static obs::Counter& evals =
      obs::registry().counter("dsf.objective.evals");
  evals.inc();
  const auto geometry = geometryFor(candidate);
  const Localizer& localizer = geometry->localizer;
  // Localize every measurement independently across the pool; reduce in
  // measurement order so the objective is bitwise identical for any thread
  // count.
  std::vector<double> costs(measurements.size());
  common::parallelFor(
      0, measurements.size(),
      [&](std::size_t i) {
        const auto& m = measurements[i];
        const auto fix =
            localizer.locate(m.delayLeftSec, m.delayRightSec, m.imuAngleDeg);
        costs[i] =
            fix ? square(m.imuAngleDeg - fix->angleDeg) : opts_.unlocalizedPenalty;
      },
      opts_.numThreads);
  double cost = 0.0;
  for (const double c : costs) cost += c;
  cost /= static_cast<double>(measurements.size());
  const auto avg = head::HeadParameters::average();
  cost += opts_.priorWeight *
          (square(candidate.a - avg.a) + square(candidate.b - avg.b) +
           square(candidate.c - avg.c));
  return cost;
}

SensorFusionResult SensorFusion::solve(
    const std::vector<FusionMeasurement>& measurements) const {
  UNIQ_SPAN("dsf.solve");
  UNIQ_REQUIRE(measurements.size() >= 6,
               "sensor fusion needs at least 6 usable stops");
  UNIQ_REQUIRE(opts_.restarts >= 1, "sensor fusion needs >= 1 restart");

  const auto f = [&](const std::vector<double>& x) {
    return objective(decode(x), measurements);
  };

  optim::NelderMeadOptions nmOpts;
  nmOpts.maxIterations = opts_.maxIterations;
  nmOpts.initialStep = 0.6;  // in squashed coordinates
  nmOpts.fTolerance = 1e-4;
  nmOpts.xTolerance = 1e-3;

  SensorFusionResult result;
  static obs::Histogram& iterHist = obs::registry().histogram(
      "dsf.restart.iterations", obs::HistogramOptions{1.0, 2.0, 10});
  optim::MinimizeResult best;
  for (std::size_t r = 0; r < opts_.restarts; ++r) {
    UNIQ_SPAN("dsf.restart");
    auto start = encode(head::HeadParameters::average());
    // Restart 0 is the canonical average start; later restarts probe the
    // corners of a small cube around it (deterministic, no RNG, so the
    // solve stays reproducible).
    if (r > 0) {
      for (std::size_t j = 0; j < start.size(); ++j)
        start[j] += 0.45 * (((r >> j) & 1) ? 1.0 : -1.0);
    }
    auto min = optim::nelderMead(f, start, nmOpts);
    iterHist.observe(static_cast<double>(min.iterations));
    result.iterations += min.iterations;
    if (r == 0 || min.fValue < best.fValue) best = std::move(min);
  }
  result.restartsUsed = opts_.restarts;
  result.headParams = decode(best.x);
  result.converged = best.converged;
  result.finalObjectiveDeg2 = best.fValue;

  // Final pass with the optimal parameters: fuse angles per Eq. 3. The
  // winning vertex was just evaluated by the optimizer, so this is a
  // geometry-cache hit.
  UNIQ_SPAN("dsf.fuse");
  const auto geometry = geometryFor(result.headParams);
  const Localizer& localizer = geometry->localizer;
  double residual = 0.0;
  for (const auto& m : measurements) {
    FusedStop stop;
    stop.sourceIndex = m.sourceIndex;
    stop.imuAngleDeg = m.imuAngleDeg;
    const auto fix =
        localizer.locate(m.delayLeftSec, m.delayRightSec, m.imuAngleDeg);
    if (fix) {
      stop.localized = true;
      stop.acousticAngleDeg = fix->angleDeg;
      stop.angleDeg = 0.5 * (fix->angleDeg + m.imuAngleDeg);
      stop.radiusM = fix->radiusM;
      residual += square(m.imuAngleDeg - fix->angleDeg);
      ++result.localizedCount;
    } else {
      stop.angleDeg = m.imuAngleDeg;
      stop.radiusM = 0.0;
    }
    result.stops.push_back(stop);
  }
  result.meanSquaredResidualDeg2 =
      result.localizedCount > 0
          ? residual / static_cast<double>(result.localizedCount)
          : opts_.unlocalizedPenalty;
  return result;
}

}  // namespace uniq::core
