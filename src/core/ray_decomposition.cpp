#include "core/ray_decomposition.h"

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/math_util.h"
#include "common/random.h"

namespace uniq::core {

namespace {

using Cx = std::complex<double>;

/// Complex beam gain of an array of `speakers` emitters with spacing
/// `spacing`, weights w_s, toward direction theta (broadside convention).
Cx beamGain(const std::vector<Cx>& weights, double spacing, double freqHz,
            double thetaRad) {
  Cx acc(0, 0);
  const double k = kTwoPi * freqHz / kSpeedOfSound;
  for (std::size_t s = 0; s < weights.size(); ++s) {
    const double phase =
        k * spacing * static_cast<double>(s) * std::sin(thetaRad);
    acc += weights[s] * std::polar(1.0, phase);
  }
  return acc;
}

/// Random unit-amplitude weights for each pattern (the paper varies the
/// relative phase and amplitude of the two speakers over time).
std::vector<std::vector<Cx>> makePatterns(std::size_t patterns,
                                          std::size_t speakers, Pcg32& rng) {
  std::vector<std::vector<Cx>> out(patterns);
  for (auto& w : out) {
    w.resize(speakers);
    for (auto& v : w)
      v = std::polar(rng.uniform(0.5, 1.0), rng.uniform(0.0, kTwoPi));
  }
  return out;
}

std::vector<double> rayAnglesRad(std::size_t rayCount) {
  std::vector<double> out(rayCount);
  for (std::size_t i = 0; i < rayCount; ++i) {
    out[i] = degToRad(-80.0 + 160.0 * static_cast<double>(i) /
                                  static_cast<double>(rayCount - 1));
  }
  return out;
}

optim::Matrix buildMatrixFor(const SpeakerBeamformingStudyOptions& opts,
                             std::size_t speakers) {
  UNIQ_REQUIRE(opts.rayCount >= 2, "need at least 2 rays");
  UNIQ_REQUIRE(opts.patternCount >= opts.rayCount,
               "need at least as many patterns as rays");
  Pcg32 rng(opts.seed);
  const auto patterns = makePatterns(opts.patternCount, speakers, rng);
  const auto angles = rayAnglesRad(opts.rayCount);

  // Real embedding: complex y_t = sum_i w_t(theta_i) H_i maps to
  // [Re y; Im y] = M [Re H; Im H].
  optim::Matrix m(2 * opts.patternCount, 2 * opts.rayCount);
  for (std::size_t t = 0; t < opts.patternCount; ++t) {
    for (std::size_t i = 0; i < opts.rayCount; ++i) {
      const Cx w = beamGain(patterns[t], opts.speakerSpacingM,
                            opts.frequencyHz, angles[i]);
      m.at(2 * t, 2 * i) = w.real();
      m.at(2 * t, 2 * i + 1) = -w.imag();
      m.at(2 * t + 1, 2 * i) = w.imag();
      m.at(2 * t + 1, 2 * i + 1) = w.real();
    }
  }
  return m;
}

}  // namespace

optim::Matrix buildBeamformingMatrix(
    const SpeakerBeamformingStudyOptions& opts) {
  return buildMatrixFor(opts, 2);  // a phone has two speakers
}

double conditionNumberForSpeakerCount(
    const SpeakerBeamformingStudyOptions& opts, std::size_t speakers) {
  UNIQ_REQUIRE(speakers >= 1 && speakers <= 64, "speakers out of range");
  return optim::conditionNumber(buildMatrixFor(opts, speakers));
}

RayRecoveryResult runRayRecoveryStudy(
    const SpeakerBeamformingStudyOptions& opts, double snrDb) {
  const auto m = buildBeamformingMatrix(opts);

  // Ground-truth per-ray components: decaying amplitudes with random
  // phases (diffraction delay/attenuation per ray, Eq. 7's A_i delta(tau_i)
  // at one frequency).
  Pcg32 rng(opts.seed * 977 + 3);
  std::vector<double> truth(2 * opts.rayCount);
  for (std::size_t i = 0; i < opts.rayCount; ++i) {
    const double amp = rng.uniform(0.3, 1.0);
    const double phase = rng.uniform(0.0, kTwoPi);
    truth[2 * i] = amp * std::cos(phase);
    truth[2 * i + 1] = amp * std::sin(phase);
  }

  auto measurements = m.apply(truth);

  RayRecoveryResult result;
  result.conditionNumber = optim::conditionNumber(m);
  result.snrDb = snrDb;

  const auto relativeError = [&](const std::vector<double>& estimate) {
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      num += square(estimate[i] - truth[i]);
      den += square(truth[i]);
    }
    return std::sqrt(num / den);
  };

  // Noiseless solve (tiny regularization so the rank-deficient normal
  // equations do not blow up).
  result.noiselessError =
      relativeError(optim::solveLeastSquares(m, measurements, 1e-12));

  // Noisy solve at the requested SNR.
  double sigPow = 0.0;
  for (double v : measurements) sigPow += v * v;
  const double noiseRms = std::sqrt(sigPow / measurements.size()) *
                          std::pow(10.0, -snrDb / 20.0);
  auto noisy = measurements;
  for (auto& v : noisy) v += rng.gaussian(0.0, noiseRms);
  result.noisyError =
      relativeError(optim::solveLeastSquares(m, noisy, 1e-9));
  return result;
}

}  // namespace uniq::core
