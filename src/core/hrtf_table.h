#pragma once

#include <memory>

#include "core/near_far.h"
#include "core/near_field_hrtf.h"
#include "geometry/head_boundary.h"
#include "geometry/vec2.h"
#include "head/hrir.h"

namespace uniq::core {

/// The lookup table UNIQ exports to earphone applications (paper
/// Section 4.4): for each angle theta, the near-field and far-field
/// binaural filter pairs. Applications pick near or far by the desired
/// virtual source distance and filter any sound through the pair.
class HrtfTable {
 public:
  /// Sources beyond this distance use the far-field entry (the paper cites
  /// ~1 m as the conventional near/far boundary).
  static constexpr double kFarFieldBoundaryM = 1.0;

  HrtfTable(NearFieldTable nearTable, FarFieldTable farTable);

  const head::Hrir& nearAt(double thetaDeg) const;
  const head::Hrir& farAt(double thetaDeg) const;

  const NearFieldTable& nearTable() const { return near_; }
  const FarFieldTable& farTable() const { return far_; }
  double sampleRate() const { return near_.sampleRate; }

  /// Render a mono sound as if emitted from a location around the head
  /// (near/far decision by distance).
  head::BinauralSignal renderFrom(geo::Vec2 location,
                                  const std::vector<double>& mono) const;

  /// Render a mono sound as a plane wave from `thetaDeg`.
  head::BinauralSignal renderFar(double thetaDeg,
                                 const std::vector<double>& mono) const;

  /// Render a mono sound from a nearby point at (thetaDeg, radius). The
  /// near table is measured at its median radius; for other radii the
  /// per-ear delays and levels are re-derived from the personalized
  /// diffraction model (head parameters E), so moving a virtual source
  /// closer genuinely changes the interaural cues, not just the loudness.
  head::BinauralSignal renderNear(double thetaDeg, double radiusM,
                                  const std::vector<double>& mono) const;

  /// The radius-adjusted near-field HRIR used by renderNear; exposed for
  /// tests and for applications that cache filters.
  head::Hrir nearHrirAt(double thetaDeg, double radiusM) const;

 private:
  NearFieldTable near_;
  FarFieldTable far_;
  std::unique_ptr<geo::HeadBoundary> boundary_;
};

}  // namespace uniq::core
