#include "core/beamformer.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"
#include "dsp/fft_plan.h"
#include "dsp/spectrum.h"
#include "dsp/window.h"

namespace uniq::core {

namespace {

using Cx = dsp::Complex;

/// Zero-padded half-spectrum FFT of a real signal at length n (bins 0..n/2).
std::vector<Cx> paddedRfft(const dsp::FftPlan& plan,
                           const std::vector<double>& x) {
  std::vector<double> padded(plan.size(), 0.0);
  const std::size_t len = std::min(x.size(), plan.size());
  std::copy(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(len),
            padded.begin());
  return plan.rfft(padded);
}

/// Solve the 2x2 Hermitian system (R + dI) w = h.
void solve2x2(const Cx r00, const Cx r01, const Cx r11, double loading,
              const Cx h0, const Cx h1, Cx& w0, Cx& w1) {
  const Cx a = r00 + loading;
  const Cx d = r11 + loading;
  const Cx b = r01;
  const Cx det = a * d - b * std::conj(b);
  w0 = (d * h0 - b * h1) / det;
  w1 = (a * h1 - std::conj(b) * h0) / det;
}

}  // namespace

BinauralBeamformer::BinauralBeamformer(const FarFieldTable& table,
                                       Options opts)
    : table_(table), opts_(opts) {
  UNIQ_REQUIRE(table_.byDegree.size() == 181, "table must cover 0..180");
  UNIQ_REQUIRE(dsp::isPowerOfTwo(opts_.frameLength) &&
                   opts_.frameLength >= 256,
               "frameLength must be a power of two >= 256");
  UNIQ_REQUIRE(opts_.diagonalLoading > 0, "diagonal loading must be > 0");
  UNIQ_REQUIRE(opts_.bandLoHz < opts_.bandHiHz, "bad band");
}

std::vector<double> BinauralBeamformer::steer(
    const std::vector<double>& leftRecording,
    const std::vector<double>& rightRecording, double thetaDeg) const {
  UNIQ_REQUIRE(!leftRecording.empty() && !rightRecording.empty(),
               "empty input");
  const double fs = table_.sampleRate;
  const std::size_t n = opts_.frameLength;
  const std::size_t hop = n / 2;
  const std::size_t total =
      std::min(leftRecording.size(), rightRecording.size());

  const auto plan = dsp::fftPlan(n);
  const auto& tmpl = table_.at(thetaDeg);
  const auto hl = paddedRfft(*plan, tmpl.left);
  const auto hr = paddedRfft(*plan, tmpl.right);

  const auto window = dsp::makeWindow(dsp::WindowType::kHann, n);

  // Frame the two ear signals (Hann analysis, 50% overlap — COLA).
  std::vector<std::size_t> starts;
  if (total <= n) {
    starts.push_back(0);
  } else {
    for (std::size_t s = 0; s + n <= total + hop; s += hop) starts.push_back(s);
  }

  // Half-spectrum frames: the signals are real, so bins above n/2 are the
  // conjugate mirror and never need to be materialized.
  std::vector<std::vector<Cx>> framesL, framesR;
  framesL.reserve(starts.size());
  framesR.reserve(starts.size());
  std::vector<double> tl(n), tr(n);
  for (std::size_t s : starts) {
    std::fill(tl.begin(), tl.end(), 0.0);
    std::fill(tr.begin(), tr.end(), 0.0);
    for (std::size_t i = 0; i < n && s + i < total; ++i) {
      tl[i] = leftRecording[s + i] * window[i];
      tr[i] = rightRecording[s + i] * window[i];
    }
    framesL.push_back(plan->rfft(tl));
    framesR.push_back(plan->rfft(tr));
  }

  // Per-bin MPDR weights from the frame-averaged 2x2 covariance.
  const std::size_t bLo = dsp::frequencyToBin(opts_.bandLoHz, n, fs);
  const std::size_t bHi =
      std::min(dsp::frequencyToBin(opts_.bandHiHz, n, fs), n / 2);
  std::vector<Cx> w0(n / 2 + 1, Cx(0, 0)), w1(n / 2 + 1, Cx(0, 0));
  const double kf = static_cast<double>(framesL.size());
  for (std::size_t k = bLo; k <= bHi; ++k) {
    Cx r00(0, 0), r01(0, 0), r11(0, 0);
    for (std::size_t f = 0; f < framesL.size(); ++f) {
      const Cx l = framesL[f][k];
      const Cx r = framesR[f][k];
      r00 += l * std::conj(l);
      r01 += l * std::conj(r);
      r11 += r * std::conj(r);
    }
    r00 /= kf;
    r01 /= kf;
    r11 /= kf;
    const double loading =
        opts_.diagonalLoading * 0.5 * (r00.real() + r11.real()) + 1e-30;
    Cx a0, a1;
    solve2x2(r00, r01, r11, loading, hl[k], hr[k], a0, a1);
    // Distortionless constraint: h^H w = 1.
    const Cx denom = std::conj(hl[k]) * a0 + std::conj(hr[k]) * a1;
    if (std::abs(denom) < 1e-18) continue;
    w0[k] = a0 / denom;
    w1[k] = a1 / denom;
  }

  // Apply per frame and overlap-add (Hann at 50% overlap sums to 1).
  std::vector<double> out(total, 0.0);
  std::vector<Cx> fy(n / 2 + 1);
  for (std::size_t f = 0; f < framesL.size(); ++f) {
    std::fill(fy.begin(), fy.end(), Cx(0, 0));
    for (std::size_t k = bLo; k <= bHi; ++k) {
      fy[k] = std::conj(w0[k]) * framesL[f][k] +
              std::conj(w1[k]) * framesR[f][k];
    }
    const auto time = plan->irfft(fy);
    const std::size_t s = starts[f];
    for (std::size_t i = 0; i < n && s + i < total; ++i)
      out[s + i] += time[i];
  }
  return out;
}

double BinauralBeamformer::relativeResponse(double steerDeg,
                                            double probeDeg) const {
  const double fs = table_.sampleRate;
  const std::size_t n = opts_.frameLength;
  const auto plan = dsp::fftPlan(n);
  const auto& steerT = table_.at(steerDeg);
  const auto& probeT = table_.at(probeDeg);
  const auto sl = paddedRfft(*plan, steerT.left);
  const auto sr = paddedRfft(*plan, steerT.right);
  const auto pl = paddedRfft(*plan, probeT.left);
  const auto pr = paddedRfft(*plan, probeT.right);
  const std::size_t bLo = dsp::frequencyToBin(opts_.bandLoHz, n, fs);
  const std::size_t bHi =
      std::min(dsp::frequencyToBin(opts_.bandHiHz, n, fs), n / 2);
  double num = 0.0, denS = 0.0, denP = 0.0;
  for (std::size_t k = bLo; k <= bHi; ++k) {
    const Cx dotSP = std::conj(sl[k]) * pl[k] + std::conj(sr[k]) * pr[k];
    num += std::norm(dotSP);
    const double ns = std::norm(sl[k]) + std::norm(sr[k]);
    const double np = std::norm(pl[k]) + std::norm(pr[k]);
    denS += ns * ns;
    denP += np * np;
  }
  const double den = std::sqrt(denS * denP);
  return den > 1e-30 ? num / den : 0.0;
}

}  // namespace uniq::core
