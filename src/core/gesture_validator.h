#pragma once

#include <string>
#include <vector>

#include "core/sensor_fusion.h"

namespace uniq::core {

/// Outcome of the automatic gesture sanity check (paper Section 4.6,
/// "Automatically correcting user gestures"): UNIQ asks the user to redo
/// the sweep when the estimated phone distance is too small or the fusion
/// residual too large.
struct GestureReport {
  bool ok = true;
  std::vector<std::string> issues;
};

struct GestureValidatorOptions {
  /// Minimum acceptable median phone radius (m): closer and the model's
  /// point-source assumptions and SNR degrade.
  double minMedianRadiusM = 0.22;
  /// Minimum acceptable single-stop radius (m).
  double minStopRadiusM = 0.16;
  /// Maximum acceptable RMS IMU-vs-acoustic disagreement (deg).
  double maxRmsResidualDeg = 8.0;
  /// Minimum fraction of stops the localizer must place.
  double minLocalizedFraction = 0.7;
  /// IMU-log checks (validateImuLog): minimum total angular span (deg) a
  /// sweep must cover to be worth calibrating from.
  double minSweepSpanDeg = 120.0;
  /// Largest tolerated mid-arc backtrack (deg): the sweep should be
  /// monotonic ear-to-ear; a reversal beyond this means the user swung the
  /// phone back.
  double maxReversalDeg = 15.0;
  /// Minimum number of IMU samples for a usable log.
  std::size_t minImuSamples = 4;
};

/// Validates a fusion result against the gesture-quality rules.
class GestureValidator {
 public:
  using Options = GestureValidatorOptions;

  explicit GestureValidator(Options opts = {});

  GestureReport validate(const SensorFusionResult& fusion) const;

  /// Validates the raw gyro-integrated log BEFORE any acoustic processing,
  /// so an obviously broken sweep (empty log, frozen clock, mid-arc
  /// reversal) can be caught and redone without paying for a full pipeline
  /// run. `timesSec` and `anglesDeg` are parallel arrays of integration
  /// timestamps and unwrapped sweep angles. Never throws: a defective log
  /// comes back as ok = false with one issue per defect.
  GestureReport validateImuLog(const std::vector<double>& timesSec,
                               const std::vector<double>& anglesDeg) const;

 private:
  Options opts_;
};

}  // namespace uniq::core
