#pragma once

#include <string>
#include <vector>

#include "core/sensor_fusion.h"

namespace uniq::core {

/// Outcome of the automatic gesture sanity check (paper Section 4.6,
/// "Automatically correcting user gestures"): UNIQ asks the user to redo
/// the sweep when the estimated phone distance is too small or the fusion
/// residual too large.
struct GestureReport {
  bool ok = true;
  std::vector<std::string> issues;
};

struct GestureValidatorOptions {
  /// Minimum acceptable median phone radius (m): closer and the model's
  /// point-source assumptions and SNR degrade.
  double minMedianRadiusM = 0.22;
  /// Minimum acceptable single-stop radius (m).
  double minStopRadiusM = 0.16;
  /// Maximum acceptable RMS IMU-vs-acoustic disagreement (deg).
  double maxRmsResidualDeg = 8.0;
  /// Minimum fraction of stops the localizer must place.
  double minLocalizedFraction = 0.7;
};

/// Validates a fusion result against the gesture-quality rules.
class GestureValidator {
 public:
  using Options = GestureValidatorOptions;

  explicit GestureValidator(Options opts = {});

  GestureReport validate(const SensorFusionResult& fusion) const;

 private:
  Options opts_;
};

}  // namespace uniq::core
