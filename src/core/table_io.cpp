#include "core/table_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/error.h"

namespace uniq::core {

namespace {

constexpr char kMagic[8] = {'U', 'N', 'I', 'Q', 'H', 'R', 'T', 'F'};
constexpr std::uint32_t kVersion = 1;

void writeBytes(std::ostream& os, const void* data, std::size_t n) {
  os.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
}

template <typename T>
void writePod(std::ostream& os, const T& v) {
  writeBytes(os, &v, sizeof(T));
}

void writeVector(std::ostream& os, const std::vector<double>& v) {
  writePod<std::uint64_t>(os, v.size());
  writeBytes(os, v.data(), v.size() * sizeof(double));
}

template <typename T>
T readPod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  UNIQ_REQUIRE(is.good(), "unexpected end of file");
  return v;
}

std::vector<double> readVector(std::istream& is, std::size_t maxLen) {
  const auto n = readPod<std::uint64_t>(is);
  UNIQ_REQUIRE(n <= maxLen, "vector length in file exceeds sane bounds");
  std::vector<double> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  UNIQ_REQUIRE(is.good(), "unexpected end of file");
  return v;
}

void writeHrirs(std::ostream& os, const std::vector<head::Hrir>& hrirs) {
  writePod<std::uint64_t>(os, hrirs.size());
  for (const auto& hrir : hrirs) {
    writePod(os, hrir.sampleRate);
    writeVector(os, hrir.left);
    writeVector(os, hrir.right);
  }
}

std::vector<head::Hrir> readHrirs(std::istream& is) {
  const auto count = readPod<std::uint64_t>(is);
  UNIQ_REQUIRE(count == 181, "table must contain 181 per-degree entries");
  std::vector<head::Hrir> hrirs(count);
  for (auto& hrir : hrirs) {
    hrir.sampleRate = readPod<double>(is);
    hrir.left = readVector(is, 1 << 20);
    hrir.right = readVector(is, 1 << 20);
  }
  return hrirs;
}

}  // namespace

void saveHrtfTable(const std::string& path, const HrtfTable& table) {
  std::ofstream os(path, std::ios::binary);
  UNIQ_REQUIRE(os.good(), "cannot open output file: " + path);
  writeBytes(os, kMagic, sizeof(kMagic));
  writePod(os, kVersion);

  const auto& nearTable = table.nearTable();
  const auto& farTable = table.farTable();
  writePod(os, nearTable.headParams.a);
  writePod(os, nearTable.headParams.b);
  writePod(os, nearTable.headParams.c);
  writePod(os, nearTable.medianRadiusM);
  writePod(os, nearTable.sampleRate);

  writeHrirs(os, nearTable.byDegree);
  writeVector(os, nearTable.tapLeftSamples);
  writeVector(os, nearTable.tapRightSamples);
  writeHrirs(os, farTable.byDegree);
  writeVector(os, farTable.tapLeftSamples);
  writeVector(os, farTable.tapRightSamples);
  UNIQ_CHECK(os.good(), "write failed: " + path);
}

HrtfTable loadHrtfTable(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  UNIQ_REQUIRE(is.good(), "cannot open input file: " + path);
  char magic[8];
  is.read(magic, sizeof(magic));
  UNIQ_REQUIRE(is.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
               "not a UNIQ HRTF table file");
  const auto version = readPod<std::uint32_t>(is);
  UNIQ_REQUIRE(version == kVersion, "unsupported table version");

  NearFieldTable nearTable;
  nearTable.headParams.a = readPod<double>(is);
  nearTable.headParams.b = readPod<double>(is);
  nearTable.headParams.c = readPod<double>(is);
  nearTable.medianRadiusM = readPod<double>(is);
  nearTable.sampleRate = readPod<double>(is);
  UNIQ_REQUIRE(nearTable.sampleRate > 0, "corrupt sample rate");

  nearTable.byDegree = readHrirs(is);
  nearTable.tapLeftSamples = readVector(is, 1024);
  nearTable.tapRightSamples = readVector(is, 1024);
  UNIQ_REQUIRE(nearTable.tapLeftSamples.size() == 181 &&
                   nearTable.tapRightSamples.size() == 181,
               "corrupt tap arrays");

  FarFieldTable farTable;
  farTable.headParams = nearTable.headParams;
  farTable.sampleRate = nearTable.sampleRate;
  farTable.byDegree = readHrirs(is);
  farTable.tapLeftSamples = readVector(is, 1024);
  farTable.tapRightSamples = readVector(is, 1024);
  UNIQ_REQUIRE(farTable.tapLeftSamples.size() == 181 &&
                   farTable.tapRightSamples.size() == 181,
               "corrupt tap arrays");

  return HrtfTable(std::move(nearTable), std::move(farTable));
}

}  // namespace uniq::core
