#include "core/table_io.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#define UNIQ_TABLE_IO_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace uniq::core {

namespace {

constexpr char kMagic[8] = {'U', 'N', 'I', 'Q', 'H', 'R', 'T', 'F'};
constexpr std::uint32_t kVersion = 1;

// Compact container: int16 samples against one float32 scale per degree,
// Q8.8 int16 tap anchors. See table_io.h for the layout contract.
constexpr char kMagicQuant[8] = {'U', 'N', 'I', 'Q', 'H', 'R', 'T', 'Q'};
constexpr std::uint32_t kQuantVersion = 1;
constexpr double kTapFixedScale = 256.0;  // Q8.8
constexpr std::int32_t kQuantMax = 32767;

void writeBytes(std::ostream& os, const void* data, std::size_t n) {
  os.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
}

template <typename T>
void writePod(std::ostream& os, const T& v) {
  writeBytes(os, &v, sizeof(T));
}

void writeVector(std::ostream& os, const std::vector<double>& v) {
  writePod<std::uint64_t>(os, v.size());
  writeBytes(os, v.data(), v.size() * sizeof(double));
}

void writeHrirs(std::ostream& os, const std::vector<head::Hrir>& hrirs) {
  writePod<std::uint64_t>(os, hrirs.size());
  for (const auto& hrir : hrirs) {
    writePod(os, hrir.sampleRate);
    writeVector(os, hrir.left);
    writeVector(os, hrir.right);
  }
}

/// Byte-offset-tracking reader: every validation failure says WHERE the
/// file went bad, so a truncated download is distinguishable from a
/// flipped bit in the middle ("at byte 524371" vs "at byte 16").
class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {}

  std::size_t offset() const { return offset_; }

  [[noreturn]] void fail(const std::string& what, std::size_t at) const {
    throw InvalidArgument("corrupt HRTF table: " + what + " at byte offset " +
                          std::to_string(at));
  }

  void bytes(void* data, std::size_t n, const char* what) {
    is_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (!is_.good()) fail(std::string("unexpected end of file in ") + what,
                          offset_);
    offset_ += n;
  }

  template <typename T>
  T pod(const char* what) {
    T v{};
    bytes(&v, sizeof(T), what);
    return v;
  }

  /// Length-prefixed vector of doubles; rejects absurd lengths and any
  /// non-finite payload (NaN/inf samples render as silence at best and
  /// full-scale noise at worst — never let them into a playback path).
  std::vector<double> vec(std::size_t maxLen, const char* what) {
    const std::size_t at = offset_;
    const auto n = pod<std::uint64_t>(what);
    if (n > maxLen)
      fail(std::string(what) + " length " + std::to_string(n) +
               " exceeds sane bounds",
           at);
    std::vector<double> v(static_cast<std::size_t>(n));
    if (n > 0) bytes(v.data(), v.size() * sizeof(double), what);
    for (double x : v)
      if (!std::isfinite(x))
        fail(std::string("non-finite sample in ") + what, at);
    return v;
  }

 private:
  std::istream& is_;
  std::size_t offset_ = 0;
};

std::vector<head::Hrir> readHrirs(Reader& r, const char* what,
                                  double expectedSampleRate) {
  const std::size_t at = r.offset();
  const auto count = r.pod<std::uint64_t>(what);
  if (count != 181)
    r.fail(std::string(what) + " must contain 181 per-degree entries, found " +
               std::to_string(count),
           at);
  std::vector<head::Hrir> hrirs(count);
  for (auto& hrir : hrirs) {
    const std::size_t entryAt = r.offset();
    hrir.sampleRate = r.pod<double>(what);
    if (hrir.sampleRate != expectedSampleRate)
      r.fail(std::string("per-entry sample rate disagrees with header in ") +
                 what,
             entryAt);
    hrir.left = r.vec(1 << 20, what);
    hrir.right = r.vec(1 << 20, what);
  }
  return hrirs;
}

std::vector<double> readTaps(Reader& r, const char* what) {
  const std::size_t at = r.offset();
  auto taps = r.vec(1024, what);
  if (taps.size() != 181)
    r.fail(std::string(what) + " must have 181 entries, found " +
               std::to_string(taps.size()),
           at);
  return taps;
}

// --- Quantized writer ----------------------------------------------------

std::int16_t quantizeSample(double x, double scale) {
  if (scale <= 0.0) return 0;
  const auto q = static_cast<std::int32_t>(std::lround(x / scale));
  return static_cast<std::int16_t>(std::clamp(q, -kQuantMax, kQuantMax));
}

void writeQuantizedTaps(std::ostream& os, const std::vector<double>& taps,
                        const char* what) {
  for (const double t : taps) {
    UNIQ_REQUIRE(std::isfinite(t) && std::fabs(t) < 127.9,
                 std::string(what) +
                     " outside the Q8.8 range of the quantized format");
    writePod<std::int16_t>(
        os, static_cast<std::int16_t>(std::lround(t * kTapFixedScale)));
  }
}

void writeQuantizedHrirs(std::ostream& os,
                         const std::vector<head::Hrir>& hrirs,
                         double tableRate, const char* what) {
  UNIQ_REQUIRE(!hrirs.empty(), std::string(what) + " is empty");
  const std::size_t len = hrirs.front().left.size();
  UNIQ_REQUIRE(len >= 1 && len <= (1u << 16),
               std::string(what) + " HRIR length outside sane bounds");
  writePod<std::uint32_t>(os, static_cast<std::uint32_t>(hrirs.size()));
  writePod<std::uint32_t>(os, static_cast<std::uint32_t>(len));
  std::vector<std::int16_t> row(2 * len);
  for (const auto& hrir : hrirs) {
    UNIQ_REQUIRE(hrir.left.size() == len && hrir.right.size() == len,
                 std::string(what) +
                     " must have uniform HRIR lengths for quantization");
    UNIQ_REQUIRE(hrir.sampleRate == tableRate,
                 std::string(what) + " per-entry sample rate disagrees with "
                                     "the table rate");
    double peak = 0.0;
    for (const double x : hrir.left) peak = std::max(peak, std::fabs(x));
    for (const double x : hrir.right) peak = std::max(peak, std::fabs(x));
    UNIQ_REQUIRE(std::isfinite(peak), std::string(what) +
                                          " contains non-finite samples");
    // Quantize against the float32-rounded scale the reader will use, not
    // the double it was derived from — otherwise encoder and decoder grids
    // differ by the f32 rounding and the half-step error bound breaks.
    const auto scaleF =
        static_cast<float>(peak / static_cast<double>(kQuantMax));
    writePod<float>(os, scaleF);
    const auto scale = static_cast<double>(scaleF);
    for (std::size_t i = 0; i < len; ++i)
      row[i] = quantizeSample(hrir.left[i], scale);
    for (std::size_t i = 0; i < len; ++i)
      row[len + i] = quantizeSample(hrir.right[i], scale);
    writeBytes(os, row.data(), row.size() * sizeof(std::int16_t));
  }
}

// --- Quantized reader (over a whole-file memory view) --------------------

/// Reader twin for in-memory (mmap-ed or buffered) file views; identical
/// byte-offset error contract so both load paths produce the same messages.
class MemReader {
 public:
  MemReader(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return size_ - offset_; }

  [[noreturn]] void fail(const std::string& what, std::size_t at) const {
    throw InvalidArgument("corrupt HRTF table: " + what + " at byte offset " +
                          std::to_string(at));
  }

  /// Borrow `n` bytes in place (no copy — this is what makes the mmap path
  /// zero-copy: int16 payloads are dequantized straight out of the page
  /// cache).
  const unsigned char* view(std::size_t n, const char* what) {
    if (n > remaining())
      fail(std::string("unexpected end of file in ") + what, offset_);
    const unsigned char* p = data_ + offset_;
    offset_ += n;
    return p;
  }

  template <typename T>
  T pod(const char* what) {
    T v{};
    std::memcpy(&v, view(sizeof(T), what), sizeof(T));
    return v;
  }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

std::vector<head::Hrir> readQuantizedHrirs(MemReader& r, const char* what,
                                           double sampleRate) {
  const std::size_t at = r.offset();
  const auto count = r.pod<std::uint32_t>(what);
  if (count != 181)
    r.fail(std::string(what) + " must contain 181 per-degree entries, found " +
               std::to_string(count),
           at);
  const std::size_t lenAt = r.offset();
  const auto len = r.pod<std::uint32_t>(what);
  if (len == 0 || len > (1u << 16))
    r.fail(std::string(what) + " HRIR length " + std::to_string(len) +
               " exceeds sane bounds",
           lenAt);
  std::vector<head::Hrir> hrirs(count);
  for (auto& hrir : hrirs) {
    const std::size_t entryAt = r.offset();
    const double scale = r.pod<float>(what);
    if (!std::isfinite(scale) || scale < 0.0 || scale > 1e6)
      r.fail(std::string("implausible quantization scale in ") + what,
             entryAt);
    const auto* q = reinterpret_cast<const std::int16_t*>(
        r.view(2 * static_cast<std::size_t>(len) * sizeof(std::int16_t),
               what));
    hrir.sampleRate = sampleRate;
    hrir.left.resize(len);
    hrir.right.resize(len);
    // int16 payloads cannot encode NaN/inf, and scale is already vetted, so
    // unlike the float64 reader there is no per-sample finiteness scan.
    for (std::size_t i = 0; i < len; ++i) {
      std::int16_t s;
      std::memcpy(&s, q + i, sizeof(s));
      hrir.left[i] = static_cast<double>(s) * scale;
      std::memcpy(&s, q + len + i, sizeof(s));
      hrir.right[i] = static_cast<double>(s) * scale;
    }
  }
  return hrirs;
}

std::vector<double> readQuantizedTaps(MemReader& r, const char* what) {
  std::vector<double> taps(181);
  const auto* q = reinterpret_cast<const std::int16_t*>(
      r.view(taps.size() * sizeof(std::int16_t), what));
  for (std::size_t i = 0; i < taps.size(); ++i) {
    std::int16_t s;
    std::memcpy(&s, q + i, sizeof(s));
    taps[i] = static_cast<double>(s) / kTapFixedScale;
  }
  return taps;
}

HrtfTable loadQuantizedFromMemory(const unsigned char* data, std::size_t size,
                                  const std::string& path) {
  MemReader r(data, size);
  char magic[8];
  std::memcpy(magic, r.view(sizeof(magic), "magic"), sizeof(magic));
  if (std::memcmp(magic, kMagicQuant, sizeof(kMagicQuant)) != 0)
    throw InvalidArgument("not a UNIQ quantized HRTF table file: " + path);
  const auto version = r.pod<std::uint32_t>("version");
  if (version != kQuantVersion)
    throw InvalidArgument("unsupported quantized table version " +
                          std::to_string(version) + " in " + path);

  NearFieldTable nearTable;
  const std::size_t headAt = r.offset();
  nearTable.headParams.a = r.pod<double>("head parameter a");
  nearTable.headParams.b = r.pod<double>("head parameter b");
  nearTable.headParams.c = r.pod<double>("head parameter c");
  if (!std::isfinite(nearTable.headParams.a) ||
      !std::isfinite(nearTable.headParams.b) ||
      !std::isfinite(nearTable.headParams.c) ||
      !nearTable.headParams.isPlausible())
    r.fail("head parameters outside anthropometric bounds", headAt);

  const std::size_t radiusAt = r.offset();
  nearTable.medianRadiusM = r.pod<double>("median radius");
  if (!std::isfinite(nearTable.medianRadiusM) ||
      nearTable.medianRadiusM <= 0.0 || nearTable.medianRadiusM > 10.0)
    r.fail("implausible median radius", radiusAt);

  const std::size_t rateAt = r.offset();
  nearTable.sampleRate = r.pod<double>("sample rate");
  if (!std::isfinite(nearTable.sampleRate) ||
      nearTable.sampleRate <= 8000.0 || nearTable.sampleRate > 1e6)
    r.fail("implausible sample rate", rateAt);

  nearTable.byDegree =
      readQuantizedHrirs(r, "near-field HRIRs", nearTable.sampleRate);
  nearTable.tapLeftSamples = readQuantizedTaps(r, "near-field left taps");
  nearTable.tapRightSamples = readQuantizedTaps(r, "near-field right taps");

  FarFieldTable farTable;
  farTable.headParams = nearTable.headParams;
  farTable.sampleRate = nearTable.sampleRate;
  farTable.byDegree =
      readQuantizedHrirs(r, "far-field HRIRs", nearTable.sampleRate);
  farTable.tapLeftSamples = readQuantizedTaps(r, "far-field left taps");
  farTable.tapRightSamples = readQuantizedTaps(r, "far-field right taps");

  if (r.remaining() != 0)
    r.fail(std::to_string(r.remaining()) + " trailing bytes after the table",
           r.offset());
  return HrtfTable(std::move(nearTable), std::move(farTable));
}

// --- Whole-file views ----------------------------------------------------

/// Read-only view of a whole file: an mmap-ed region when the platform
/// supports it (zero-copy — decode straight from the page cache), else a
/// buffered read into an owned vector.
class FileView {
 public:
  FileView() = default;
  FileView(const FileView&) = delete;
  FileView& operator=(const FileView&) = delete;
  ~FileView() {
#ifdef UNIQ_TABLE_IO_HAS_MMAP
    if (mapped_ && mapBase_ != nullptr) ::munmap(mapBase_, mapSize_);
#endif
  }

  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool mapped() const { return mapped_; }

  /// mmap when available and the file is mappable, buffered read otherwise.
  static std::unique_ptr<FileView> open(const std::string& path,
                                        bool preferMmap) {
#ifdef UNIQ_TABLE_IO_HAS_MMAP
    if (preferMmap) {
      const int fd = ::open(path.c_str(), O_RDONLY);
      if (fd >= 0) {
        struct stat st{};
        if (::fstat(fd, &st) == 0 && st.st_size > 0) {
          void* base = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                              PROT_READ, MAP_PRIVATE, fd, 0);
          ::close(fd);  // the mapping keeps the pages alive
          if (base != MAP_FAILED) {
            auto view = std::make_unique<FileView>();
            view->mapBase_ = base;
            view->mapSize_ = static_cast<std::size_t>(st.st_size);
            view->data_ = static_cast<const unsigned char*>(base);
            view->size_ = view->mapSize_;
            view->mapped_ = true;
            return view;
          }
        } else {
          ::close(fd);
        }
      }
      // Fall through to the buffered read; it produces the real error.
    }
#else
    (void)preferMmap;
#endif
    std::ifstream is(path, std::ios::binary);
    UNIQ_REQUIRE(is.good(), "cannot open input file: " + path);
    auto view = std::make_unique<FileView>();
    view->buffer_.assign(std::istreambuf_iterator<char>(is),
                         std::istreambuf_iterator<char>());
    view->data_ = reinterpret_cast<const unsigned char*>(view->buffer_.data());
    view->size_ = view->buffer_.size();
    return view;
  }

 private:
  std::vector<char> buffer_;
  void* mapBase_ = nullptr;
  std::size_t mapSize_ = 0;
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
};

obs::Counter& loadCounter(TableFormat format) {
  static obs::Counter& f64 =
      obs::registry().counter("table_io.load.float64");
  static obs::Counter& quant =
      obs::registry().counter("table_io.load.quantized");
  return format == TableFormat::kQuantized ? quant : f64;
}

HrtfTable loadImpl(const std::string& path, bool preferMmap) {
  std::ifstream is(path, std::ios::binary);
  UNIQ_REQUIRE(is.good(), "cannot open input file: " + path);
  Reader r(is);

  char magic[8];
  r.bytes(magic, sizeof(magic), "magic");
  if (std::memcmp(magic, kMagicQuant, sizeof(kMagicQuant)) == 0) {
    is.close();
    const auto view = FileView::open(path, preferMmap);
    if (view->mapped())
      obs::registry().counter("table_io.load.quantized_mmap").inc();
    loadCounter(TableFormat::kQuantized).inc();
    return loadQuantizedFromMemory(view->data(), view->size(), path);
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw InvalidArgument("not a UNIQ HRTF table file: " + path);
  const auto version = r.pod<std::uint32_t>("version");
  if (version != kVersion)
    throw InvalidArgument("unsupported table version " +
                          std::to_string(version) + " in " + path);

  NearFieldTable nearTable;
  const std::size_t headAt = r.offset();
  nearTable.headParams.a = r.pod<double>("head parameter a");
  nearTable.headParams.b = r.pod<double>("head parameter b");
  nearTable.headParams.c = r.pod<double>("head parameter c");
  if (!std::isfinite(nearTable.headParams.a) ||
      !std::isfinite(nearTable.headParams.b) ||
      !std::isfinite(nearTable.headParams.c) ||
      !nearTable.headParams.isPlausible())
    r.fail("head parameters outside anthropometric bounds", headAt);

  const std::size_t radiusAt = r.offset();
  nearTable.medianRadiusM = r.pod<double>("median radius");
  if (!std::isfinite(nearTable.medianRadiusM) ||
      nearTable.medianRadiusM <= 0.0 || nearTable.medianRadiusM > 10.0)
    r.fail("implausible median radius", radiusAt);

  const std::size_t rateAt = r.offset();
  nearTable.sampleRate = r.pod<double>("sample rate");
  if (!std::isfinite(nearTable.sampleRate) ||
      nearTable.sampleRate <= 8000.0 || nearTable.sampleRate > 1e6)
    r.fail("implausible sample rate", rateAt);

  nearTable.byDegree = readHrirs(r, "near-field HRIRs", nearTable.sampleRate);
  nearTable.tapLeftSamples = readTaps(r, "near-field left taps");
  nearTable.tapRightSamples = readTaps(r, "near-field right taps");

  FarFieldTable farTable;
  farTable.headParams = nearTable.headParams;
  farTable.sampleRate = nearTable.sampleRate;
  farTable.byDegree = readHrirs(r, "far-field HRIRs", nearTable.sampleRate);
  farTable.tapLeftSamples = readTaps(r, "far-field left taps");
  farTable.tapRightSamples = readTaps(r, "far-field right taps");

  loadCounter(TableFormat::kFloat64).inc();
  return HrtfTable(std::move(nearTable), std::move(farTable));
}

}  // namespace

const char* tableFormatName(TableFormat format) {
  switch (format) {
    case TableFormat::kFloat64:
      return "float64";
    case TableFormat::kQuantized:
      return "quantized";
  }
  return "unknown";
}

void saveHrtfTable(const std::string& path, const HrtfTable& table) {
  std::ofstream os(path, std::ios::binary);
  UNIQ_REQUIRE(os.good(), "cannot open output file: " + path);
  writeBytes(os, kMagic, sizeof(kMagic));
  writePod(os, kVersion);

  const auto& nearTable = table.nearTable();
  const auto& farTable = table.farTable();
  writePod(os, nearTable.headParams.a);
  writePod(os, nearTable.headParams.b);
  writePod(os, nearTable.headParams.c);
  writePod(os, nearTable.medianRadiusM);
  writePod(os, nearTable.sampleRate);

  writeHrirs(os, nearTable.byDegree);
  writeVector(os, nearTable.tapLeftSamples);
  writeVector(os, nearTable.tapRightSamples);
  writeHrirs(os, farTable.byDegree);
  writeVector(os, farTable.tapLeftSamples);
  writeVector(os, farTable.tapRightSamples);
  UNIQ_CHECK(os.good(), "write failed: " + path);
}

void saveHrtfTableQuantized(const std::string& path, const HrtfTable& table) {
  std::ofstream os(path, std::ios::binary);
  UNIQ_REQUIRE(os.good(), "cannot open output file: " + path);
  writeBytes(os, kMagicQuant, sizeof(kMagicQuant));
  writePod(os, kQuantVersion);

  const auto& nearTable = table.nearTable();
  const auto& farTable = table.farTable();
  writePod(os, nearTable.headParams.a);
  writePod(os, nearTable.headParams.b);
  writePod(os, nearTable.headParams.c);
  writePod(os, nearTable.medianRadiusM);
  writePod(os, nearTable.sampleRate);

  writeQuantizedHrirs(os, nearTable.byDegree, nearTable.sampleRate,
                      "near-field HRIRs");
  writeQuantizedTaps(os, nearTable.tapLeftSamples, "near-field left taps");
  writeQuantizedTaps(os, nearTable.tapRightSamples, "near-field right taps");
  writeQuantizedHrirs(os, farTable.byDegree, nearTable.sampleRate,
                      "far-field HRIRs");
  writeQuantizedTaps(os, farTable.tapLeftSamples, "far-field left taps");
  writeQuantizedTaps(os, farTable.tapRightSamples, "far-field right taps");
  UNIQ_CHECK(os.good(), "write failed: " + path);
}

HrtfTable loadHrtfTable(const std::string& path) {
  return loadImpl(path, /*preferMmap=*/true);
}

HrtfTable loadHrtfTableBuffered(const std::string& path) {
  return loadImpl(path, /*preferMmap=*/false);
}

std::optional<HrtfTable> tryLoadHrtfTable(const std::string& path,
                                          std::string* error) {
  try {
    return loadHrtfTable(path);
  } catch (const Error& e) {
    if (error) *error = e.what();
    return std::nullopt;
  }
}

std::optional<TableFormat> probeTableFormat(const std::string& path,
                                            std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) {
    if (error) *error = "cannot open input file: " + path;
    return std::nullopt;
  }
  char magic[8] = {};
  is.read(magic, sizeof(magic));
  if (!is.good()) {
    if (error) *error = "file shorter than the 8-byte magic: " + path;
    return std::nullopt;
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) == 0)
    return TableFormat::kFloat64;
  if (std::memcmp(magic, kMagicQuant, sizeof(kMagicQuant)) == 0)
    return TableFormat::kQuantized;
  if (error) *error = "not a UNIQ HRTF table file: " + path;
  return std::nullopt;
}

}  // namespace uniq::core
