#include "core/table_io.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>

#include "common/error.h"

namespace uniq::core {

namespace {

constexpr char kMagic[8] = {'U', 'N', 'I', 'Q', 'H', 'R', 'T', 'F'};
constexpr std::uint32_t kVersion = 1;

void writeBytes(std::ostream& os, const void* data, std::size_t n) {
  os.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
}

template <typename T>
void writePod(std::ostream& os, const T& v) {
  writeBytes(os, &v, sizeof(T));
}

void writeVector(std::ostream& os, const std::vector<double>& v) {
  writePod<std::uint64_t>(os, v.size());
  writeBytes(os, v.data(), v.size() * sizeof(double));
}

void writeHrirs(std::ostream& os, const std::vector<head::Hrir>& hrirs) {
  writePod<std::uint64_t>(os, hrirs.size());
  for (const auto& hrir : hrirs) {
    writePod(os, hrir.sampleRate);
    writeVector(os, hrir.left);
    writeVector(os, hrir.right);
  }
}

/// Byte-offset-tracking reader: every validation failure says WHERE the
/// file went bad, so a truncated download is distinguishable from a
/// flipped bit in the middle ("at byte 524371" vs "at byte 16").
class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {}

  std::size_t offset() const { return offset_; }

  [[noreturn]] void fail(const std::string& what, std::size_t at) const {
    throw InvalidArgument("corrupt HRTF table: " + what + " at byte offset " +
                          std::to_string(at));
  }

  void bytes(void* data, std::size_t n, const char* what) {
    is_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (!is_.good()) fail(std::string("unexpected end of file in ") + what,
                          offset_);
    offset_ += n;
  }

  template <typename T>
  T pod(const char* what) {
    T v{};
    bytes(&v, sizeof(T), what);
    return v;
  }

  /// Length-prefixed vector of doubles; rejects absurd lengths and any
  /// non-finite payload (NaN/inf samples render as silence at best and
  /// full-scale noise at worst — never let them into a playback path).
  std::vector<double> vec(std::size_t maxLen, const char* what) {
    const std::size_t at = offset_;
    const auto n = pod<std::uint64_t>(what);
    if (n > maxLen)
      fail(std::string(what) + " length " + std::to_string(n) +
               " exceeds sane bounds",
           at);
    std::vector<double> v(static_cast<std::size_t>(n));
    if (n > 0) bytes(v.data(), v.size() * sizeof(double), what);
    for (double x : v)
      if (!std::isfinite(x))
        fail(std::string("non-finite sample in ") + what, at);
    return v;
  }

 private:
  std::istream& is_;
  std::size_t offset_ = 0;
};

std::vector<head::Hrir> readHrirs(Reader& r, const char* what,
                                  double expectedSampleRate) {
  const std::size_t at = r.offset();
  const auto count = r.pod<std::uint64_t>(what);
  if (count != 181)
    r.fail(std::string(what) + " must contain 181 per-degree entries, found " +
               std::to_string(count),
           at);
  std::vector<head::Hrir> hrirs(count);
  for (auto& hrir : hrirs) {
    const std::size_t entryAt = r.offset();
    hrir.sampleRate = r.pod<double>(what);
    if (hrir.sampleRate != expectedSampleRate)
      r.fail(std::string("per-entry sample rate disagrees with header in ") +
                 what,
             entryAt);
    hrir.left = r.vec(1 << 20, what);
    hrir.right = r.vec(1 << 20, what);
  }
  return hrirs;
}

std::vector<double> readTaps(Reader& r, const char* what) {
  const std::size_t at = r.offset();
  auto taps = r.vec(1024, what);
  if (taps.size() != 181)
    r.fail(std::string(what) + " must have 181 entries, found " +
               std::to_string(taps.size()),
           at);
  return taps;
}

}  // namespace

void saveHrtfTable(const std::string& path, const HrtfTable& table) {
  std::ofstream os(path, std::ios::binary);
  UNIQ_REQUIRE(os.good(), "cannot open output file: " + path);
  writeBytes(os, kMagic, sizeof(kMagic));
  writePod(os, kVersion);

  const auto& nearTable = table.nearTable();
  const auto& farTable = table.farTable();
  writePod(os, nearTable.headParams.a);
  writePod(os, nearTable.headParams.b);
  writePod(os, nearTable.headParams.c);
  writePod(os, nearTable.medianRadiusM);
  writePod(os, nearTable.sampleRate);

  writeHrirs(os, nearTable.byDegree);
  writeVector(os, nearTable.tapLeftSamples);
  writeVector(os, nearTable.tapRightSamples);
  writeHrirs(os, farTable.byDegree);
  writeVector(os, farTable.tapLeftSamples);
  writeVector(os, farTable.tapRightSamples);
  UNIQ_CHECK(os.good(), "write failed: " + path);
}

HrtfTable loadHrtfTable(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  UNIQ_REQUIRE(is.good(), "cannot open input file: " + path);
  Reader r(is);

  char magic[8];
  r.bytes(magic, sizeof(magic), "magic");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw InvalidArgument("not a UNIQ HRTF table file: " + path);
  const auto version = r.pod<std::uint32_t>("version");
  if (version != kVersion)
    throw InvalidArgument("unsupported table version " +
                          std::to_string(version) + " in " + path);

  NearFieldTable nearTable;
  const std::size_t headAt = r.offset();
  nearTable.headParams.a = r.pod<double>("head parameter a");
  nearTable.headParams.b = r.pod<double>("head parameter b");
  nearTable.headParams.c = r.pod<double>("head parameter c");
  if (!std::isfinite(nearTable.headParams.a) ||
      !std::isfinite(nearTable.headParams.b) ||
      !std::isfinite(nearTable.headParams.c) ||
      !nearTable.headParams.isPlausible())
    r.fail("head parameters outside anthropometric bounds", headAt);

  const std::size_t radiusAt = r.offset();
  nearTable.medianRadiusM = r.pod<double>("median radius");
  if (!std::isfinite(nearTable.medianRadiusM) ||
      nearTable.medianRadiusM <= 0.0 || nearTable.medianRadiusM > 10.0)
    r.fail("implausible median radius", radiusAt);

  const std::size_t rateAt = r.offset();
  nearTable.sampleRate = r.pod<double>("sample rate");
  if (!std::isfinite(nearTable.sampleRate) ||
      nearTable.sampleRate <= 8000.0 || nearTable.sampleRate > 1e6)
    r.fail("implausible sample rate", rateAt);

  nearTable.byDegree = readHrirs(r, "near-field HRIRs", nearTable.sampleRate);
  nearTable.tapLeftSamples = readTaps(r, "near-field left taps");
  nearTable.tapRightSamples = readTaps(r, "near-field right taps");

  FarFieldTable farTable;
  farTable.headParams = nearTable.headParams;
  farTable.sampleRate = nearTable.sampleRate;
  farTable.byDegree = readHrirs(r, "far-field HRIRs", nearTable.sampleRate);
  farTable.tapLeftSamples = readTaps(r, "far-field left taps");
  farTable.tapRightSamples = readTaps(r, "far-field right taps");

  return HrtfTable(std::move(nearTable), std::move(farTable));
}

std::optional<HrtfTable> tryLoadHrtfTable(const std::string& path,
                                          std::string* error) {
  try {
    return loadHrtfTable(path);
  } catch (const Error& e) {
    if (error) *error = e.what();
    return std::nullopt;
  }
}

}  // namespace uniq::core
