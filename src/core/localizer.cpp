#include "core/localizer.h"

#include <cmath>
#include <limits>

#include "common/constants.h"
#include "common/error.h"
#include "common/math_util.h"
#include "geometry/diffraction.h"
#include "geometry/polar.h"
#include "optim/root_finding.h"

namespace uniq::core {

namespace {

double pathLength(const geo::HeadBoundary& head, geo::Vec2 p, geo::Ear ear) {
  return geo::nearFieldPath(head, p, ear).length;
}

}  // namespace

Localizer::Localizer(const geo::HeadBoundary& head, Options opts)
    : head_(head), opts_(opts) {
  UNIQ_REQUIRE(opts_.minRadiusM > head.a() && opts_.minRadiusM > head.b() &&
                   opts_.minRadiusM > head.c(),
               "minRadius must clear the head");
  UNIQ_REQUIRE(opts_.maxRadiusM > opts_.minRadiusM, "bad radius range");
}

std::optional<double> Localizer::radiusForLeftPath(
    geo::Vec2 dir, double targetLen, const std::optional<double>& hint) const {
  // dir * r is exactly pointFromPolarDeg(angleDeg, r) with the sin/cos
  // hoisted out of the root-finder's inner loop.
  const auto f = [&](double r) {
    return pathLength(head_, dir * r, geo::Ear::kLeft) - targetLen;
  };
  optim::RootOptions ropts;
  ropts.xTolerance = 1e-5;
  // Warm start: the root moves slowly across the angle scan, so a narrow
  // window around the previous angle's root usually brackets it and Brent
  // converges in a fraction of the full-range iterations. Monotonicity of
  // the path length in r (the source is well outside the head) makes a
  // bracketing window sufficient — there is only one root to find.
  if (hint) {
    constexpr double kWindowM = 0.03;
    const double lo = std::max(opts_.minRadiusM, *hint - kWindowM);
    const double hi = std::min(opts_.maxRadiusM, *hint + kWindowM);
    if (lo < hi) {
      const double fLo = f(lo);
      if (fLo <= 0.0) {
        const double fHi = f(hi);
        if (fHi >= 0.0) return optim::brentBracketed(f, lo, hi, fLo, fHi, ropts);
      }
    }
  }
  const double fLo = f(opts_.minRadiusM);
  if (fLo > 0.0) return std::nullopt;
  const double fHi = f(opts_.maxRadiusM);
  if (fHi < 0.0) return std::nullopt;
  return optim::brentBracketed(f, opts_.minRadiusM, opts_.maxRadiusM, fLo, fHi,
                               ropts);
}

double Localizer::rightPathResidual(geo::Vec2 dir, double targetLenLeft,
                                    double targetLenRight,
                                    std::optional<double>* warmRadius) const {
  const auto r = radiusForLeftPath(dir, targetLenLeft,
                                   warmRadius ? *warmRadius : std::nullopt);
  if (!r) return std::numeric_limits<double>::quiet_NaN();
  if (warmRadius) *warmRadius = *r;
  return pathLength(head_, dir * *r, geo::Ear::kRight) - targetLenRight;
}

std::vector<PolarFix> Localizer::locateAll(double delayLeftSec,
                                           double delayRightSec) const {
  UNIQ_REQUIRE(delayLeftSec > 0 && delayRightSec > 0, "delays must be > 0");
  const double dL = delayLeftSec * kSpeedOfSound;
  const double dR = delayRightSec * kSpeedOfSound;

  const double lo = -opts_.angleMarginDeg;
  const double hi = 180.0 + opts_.angleMarginDeg;

  std::vector<PolarFix> fixes;
  // Coarse scan for sign changes of the right-ear residual, then refine by
  // interval subdivision (the residual is only defined where the left-ear
  // iso-delay curve exists, so plain Brent could step out of the domain).
  double prevAngle = lo;
  // The left-path radius solve is warm-started with the previous angle's
  // root (it moves slowly along the scan).
  std::optional<double> warm;
  double prevRes =
      rightPathResidual(geo::directionFromAzimuthDeg(lo), dL, dR, &warm);
  for (double ang = lo + opts_.scanStepDeg; ang <= hi + 1e-9;
       ang += opts_.scanStepDeg) {
    const double res =
        rightPathResidual(geo::directionFromAzimuthDeg(ang), dL, dR, &warm);
    if (!std::isnan(prevRes) && !std::isnan(res) &&
        (prevRes < 0) != (res < 0)) {
      // Refine within [prevAngle, ang] by repeated subdivision.
      double a = prevAngle, b = ang;
      double fa = prevRes;
      for (int level = 0; level < 4; ++level) {
        const int kSub = 8;
        double bestA = a, bestB = b, bestFa = fa;
        double x0 = a, f0 = fa;
        bool found = false;
        for (int s = 1; s <= kSub; ++s) {
          const double x1 = a + (b - a) * s / kSub;
          const double f1 = rightPathResidual(
              geo::directionFromAzimuthDeg(s == kSub ? b : x1), dL, dR, &warm);
          if (!std::isnan(f0) && !std::isnan(f1) && (f0 < 0) != (f1 < 0)) {
            bestA = x0;
            bestB = x1;
            bestFa = f0;
            found = true;
            break;
          }
          x0 = x1;
          f0 = f1;
        }
        if (!found) break;
        a = bestA;
        b = bestB;
        fa = bestFa;
      }
      const double angleRoot = 0.5 * (a + b);
      const auto r =
          radiusForLeftPath(geo::directionFromAzimuthDeg(angleRoot), dL, warm);
      if (r) fixes.push_back({angleRoot, *r});
    }
    prevAngle = ang;
    prevRes = res;
  }
  return fixes;
}

std::optional<PolarFix> Localizer::locate(double delayLeftSec,
                                          double delayRightSec,
                                          double imuAngleDeg) const {
  const auto fixes = locateAll(delayLeftSec, delayRightSec);
  if (!fixes.empty()) {
    const PolarFix* best = nullptr;
    double bestErr = std::numeric_limits<double>::infinity();
    for (const auto& fix : fixes) {
      const double err = std::fabs(fix.angleDeg - imuAngleDeg);
      if (err < bestErr) {
        bestErr = err;
        best = &fix;
      }
    }
    return *best;
  }

  // No exact intersection (slight model mismatch): fall back to the angle
  // of closest approach between the two iso-delay curves.
  const double dL = delayLeftSec * kSpeedOfSound;
  const double dR = delayRightSec * kSpeedOfSound;
  const double lo = -opts_.angleMarginDeg;
  const double hi = 180.0 + opts_.angleMarginDeg;
  double bestAngle = 0.0;
  double bestAbs = std::numeric_limits<double>::infinity();
  const double fineStep = opts_.scanStepDeg / 3.0;
  std::optional<double> warm;
  for (double ang = lo; ang <= hi + 1e-9; ang += fineStep) {
    const double res =
        rightPathResidual(geo::directionFromAzimuthDeg(ang), dL, dR, &warm);
    if (std::isnan(res)) continue;
    if (std::fabs(res) < bestAbs) {
      bestAbs = std::fabs(res);
      bestAngle = ang;
    }
  }
  if (bestAbs > opts_.approximateResidualM) return std::nullopt;
  const auto r =
      radiusForLeftPath(geo::directionFromAzimuthDeg(bestAngle), dL, warm);
  if (!r) return std::nullopt;
  return PolarFix{bestAngle, *r};
}

}  // namespace uniq::core
