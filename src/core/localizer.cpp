#include "core/localizer.h"

#include <cmath>
#include <limits>

#include "common/constants.h"
#include "common/error.h"
#include "common/math_util.h"
#include "geometry/diffraction.h"
#include "geometry/polar.h"
#include "optim/root_finding.h"

namespace uniq::core {

namespace {

double pathLength(const geo::HeadBoundary& head, geo::Vec2 p, geo::Ear ear) {
  return geo::nearFieldPath(head, p, ear).length;
}

}  // namespace

Localizer::Localizer(const geo::HeadBoundary& head, Options opts)
    : head_(head), opts_(opts) {
  UNIQ_REQUIRE(opts_.minRadiusM > head.a() && opts_.minRadiusM > head.b() &&
                   opts_.minRadiusM > head.c(),
               "minRadius must clear the head");
  UNIQ_REQUIRE(opts_.maxRadiusM > opts_.minRadiusM, "bad radius range");
}

std::optional<double> Localizer::radiusForLeftPath(double angleDeg,
                                                   double targetLen) const {
  const auto f = [&](double r) {
    return pathLength(head_, geo::pointFromPolarDeg(angleDeg, r),
                      geo::Ear::kLeft) -
           targetLen;
  };
  const double fLo = f(opts_.minRadiusM);
  const double fHi = f(opts_.maxRadiusM);
  if (fLo > 0.0 || fHi < 0.0) return std::nullopt;
  optim::RootOptions ropts;
  ropts.xTolerance = 1e-5;
  return optim::brent(f, opts_.minRadiusM, opts_.maxRadiusM, ropts);
}

double Localizer::rightPathResidual(double angleDeg, double targetLenLeft,
                                    double targetLenRight) const {
  const auto r = radiusForLeftPath(angleDeg, targetLenLeft);
  if (!r) return std::numeric_limits<double>::quiet_NaN();
  return pathLength(head_, geo::pointFromPolarDeg(angleDeg, *r),
                    geo::Ear::kRight) -
         targetLenRight;
}

std::vector<PolarFix> Localizer::locateAll(double delayLeftSec,
                                           double delayRightSec) const {
  UNIQ_REQUIRE(delayLeftSec > 0 && delayRightSec > 0, "delays must be > 0");
  const double dL = delayLeftSec * kSpeedOfSound;
  const double dR = delayRightSec * kSpeedOfSound;

  const double lo = -opts_.angleMarginDeg;
  const double hi = 180.0 + opts_.angleMarginDeg;

  std::vector<PolarFix> fixes;
  // Coarse scan for sign changes of the right-ear residual, then refine by
  // interval subdivision (the residual is only defined where the left-ear
  // iso-delay curve exists, so plain Brent could step out of the domain).
  double prevAngle = lo;
  double prevRes = rightPathResidual(lo, dL, dR);
  for (double ang = lo + opts_.scanStepDeg; ang <= hi + 1e-9;
       ang += opts_.scanStepDeg) {
    const double res = rightPathResidual(ang, dL, dR);
    if (!std::isnan(prevRes) && !std::isnan(res) &&
        (prevRes < 0) != (res < 0)) {
      // Refine within [prevAngle, ang] by repeated subdivision.
      double a = prevAngle, b = ang;
      double fa = prevRes;
      for (int level = 0; level < 4; ++level) {
        const int kSub = 8;
        double bestA = a, bestB = b, bestFa = fa;
        double x0 = a, f0 = fa;
        bool found = false;
        for (int s = 1; s <= kSub; ++s) {
          const double x1 = a + (b - a) * s / kSub;
          const double f1 = s == kSub ? rightPathResidual(b, dL, dR)
                                      : rightPathResidual(x1, dL, dR);
          if (!std::isnan(f0) && !std::isnan(f1) && (f0 < 0) != (f1 < 0)) {
            bestA = x0;
            bestB = x1;
            bestFa = f0;
            found = true;
            break;
          }
          x0 = x1;
          f0 = f1;
        }
        if (!found) break;
        a = bestA;
        b = bestB;
        fa = bestFa;
      }
      const double angleRoot = 0.5 * (a + b);
      const auto r = radiusForLeftPath(angleRoot, dL);
      if (r) fixes.push_back({angleRoot, *r});
    }
    prevAngle = ang;
    prevRes = res;
  }
  return fixes;
}

std::optional<PolarFix> Localizer::locate(double delayLeftSec,
                                          double delayRightSec,
                                          double imuAngleDeg) const {
  const auto fixes = locateAll(delayLeftSec, delayRightSec);
  if (!fixes.empty()) {
    const PolarFix* best = nullptr;
    double bestErr = std::numeric_limits<double>::infinity();
    for (const auto& fix : fixes) {
      const double err = std::fabs(fix.angleDeg - imuAngleDeg);
      if (err < bestErr) {
        bestErr = err;
        best = &fix;
      }
    }
    return *best;
  }

  // No exact intersection (slight model mismatch): fall back to the angle
  // of closest approach between the two iso-delay curves.
  const double dL = delayLeftSec * kSpeedOfSound;
  const double dR = delayRightSec * kSpeedOfSound;
  const double lo = -opts_.angleMarginDeg;
  const double hi = 180.0 + opts_.angleMarginDeg;
  double bestAngle = 0.0;
  double bestAbs = std::numeric_limits<double>::infinity();
  const double fineStep = opts_.scanStepDeg / 3.0;
  for (double ang = lo; ang <= hi + 1e-9; ang += fineStep) {
    const double res = rightPathResidual(ang, dL, dR);
    if (std::isnan(res)) continue;
    if (std::fabs(res) < bestAbs) {
      bestAbs = std::fabs(res);
      bestAngle = ang;
    }
  }
  if (bestAbs > opts_.approximateResidualM) return std::nullopt;
  const auto r = radiusForLeftPath(bestAngle, dL);
  if (!r) return std::nullopt;
  return PolarFix{bestAngle, *r};
}

}  // namespace uniq::core
