#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"

namespace uniq {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u) {
  nextU32();
  state_ += seed;
  nextU32();
}

std::uint32_t Pcg32::nextU32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Pcg32::nextDouble() {
  return static_cast<double>(nextU32()) * (1.0 / 4294967296.0);
}

double Pcg32::uniform(double lo, double hi) {
  return lo + (hi - lo) * nextDouble();
}

double Pcg32::gaussian() {
  if (hasCachedGaussian_) {
    hasCachedGaussian_ = false;
    return cachedGaussian_;
  }
  // Box-Muller; guard against log(0).
  double u1 = nextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = nextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  cachedGaussian_ = r * std::sin(kTwoPi * u2);
  hasCachedGaussian_ = true;
  return r * std::cos(kTwoPi * u2);
}

double Pcg32::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

std::uint32_t Pcg32::nextBounded(std::uint32_t bound) {
  if (bound == 0) return 0;
  const std::uint32_t threshold = (-bound) % bound;
  for (;;) {
    const std::uint32_t r = nextU32();
    if (r >= threshold) return r % bound;
  }
}

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  UNIQ_REQUIRE(n >= 1, "ZipfSampler needs at least one rank");
  UNIQ_REQUIRE(std::isfinite(s) && s >= 0.0,
               "Zipf skew must be finite and >= 0");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::sample(Pcg32& rng) const {
  const double u = rng.nextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t k) const {
  UNIQ_REQUIRE(k < cdf_.size(), "Zipf rank out of range");
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

Pcg32 Pcg32::fork(std::uint64_t tag) const {
  // splitmix-style mixing of state with the tag for decorrelated streams.
  std::uint64_t z = state_ + 0x9e3779b97f4a7c15ULL * (tag + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return Pcg32(z, tag * 2 + 1);
}

}  // namespace uniq
