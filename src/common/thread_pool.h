#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace uniq::common {

/// Snapshot of the process-wide pool counters (see poolStats()).
struct PoolStats {
  std::size_t threads = 0;          ///< worker threads in the global pool
  std::uint64_t tasksExecuted = 0;  ///< tasks drained since process start
  std::uint64_t maxQueueDepth = 0;  ///< high-water mark of the task queue
};

/// A small fixed-size thread pool with no external dependencies.
///
/// Two usage styles:
///  - submit(task): fire-and-forget background task.
///  - parallelFor(begin, end, fn): block until fn(i) ran for every i in
///    [begin, end). Indices are handed out by an atomic counter and the
///    calling thread participates, so the pool never deadlocks even with
///    zero workers. Results are deterministic as long as fn(i) writes only
///    to per-index state: the set of calls is identical for any thread
///    count, only the interleaving differs.
///
/// parallelFor called from inside a pool worker runs inline (no nested
/// fan-out), which keeps composed parallel stages deadlock-free.
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 is allowed; everything then runs inline on
  /// the calling thread).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size(); }

  /// Tasks currently waiting in the queue (not yet picked up by a worker).
  /// Snapshot only — the depth can change the moment the lock is released;
  /// use for observability, not for scheduling decisions.
  std::size_t queueDepth() const;

  /// Enqueue a background task. The submitter's trace context
  /// (obs::currentTraceId) is captured and restored around the task on the
  /// worker, so spans the task records attribute to the submitting job.
  void submit(std::function<void()> task);

  /// Run fn(i) for every i in [begin, end), blocking until all complete.
  /// `maxThreads` caps the number of executing threads for this call
  /// (0 = use every worker plus the caller; 1 = run serially inline). The
  /// first exception thrown by fn is rethrown on the calling thread after
  /// the loop drains.
  void parallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn,
                   std::size_t maxThreads = 0);

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide pool, created on first use. Sized by the UNIQ_NUM_THREADS
/// environment variable when set (total executing threads including the
/// caller), otherwise by std::thread::hardware_concurrency(), clamped to
/// [1, 16].
ThreadPool& globalPool();

/// parallelFor on the global pool. Deterministic for per-index writes (see
/// ThreadPool::parallelFor); `maxThreads` = 0 uses the full pool, 1 forces
/// the serial inline path.
void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn,
                 std::size_t maxThreads = 0);

/// Current global-pool counters (observability; logged by the CLI).
PoolStats poolStats();

}  // namespace uniq::common
