#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

namespace uniq::common {

/// Cache-line / AVX-friendly allocation alignment. 64 bytes covers both the
/// 32-byte AVX2 vector width and the 64-byte cache line, so SIMD kernels
/// never split a load across lines and adjacent buffers never false-share.
inline constexpr std::size_t kSimdAlignment = 64;

/// Round `n` elements of `elem` bytes up to a whole number of alignment
/// units, in elements. Used to pad SoA lanes so vector loops never need a
/// scalar tail on the write side.
inline constexpr std::size_t alignedCount(std::size_t n, std::size_t elem) {
  const std::size_t bytes = n * elem;
  const std::size_t padded =
      (bytes + kSimdAlignment - 1) / kSimdAlignment * kSimdAlignment;
  return padded / elem;
}

/// Move-only owning buffer of uninitialized T with kSimdAlignment-aligned
/// storage. Unlike std::vector it never value-initializes (FFT scratch is
/// always fully overwritten) and its data pointer is guaranteed aligned, so
/// kernels can use aligned vector loads unconditionally.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t n) { resizeDiscard(n); }
  ~AlignedBuffer() { release(); }

  AlignedBuffer(AlignedBuffer&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        size_(std::exchange(o.size_, 0)),
        capacity_(std::exchange(o.capacity_, 0)) {}
  AlignedBuffer& operator=(AlignedBuffer&& o) noexcept {
    if (this != &o) {
      release();
      data_ = std::exchange(o.data_, nullptr);
      size_ = std::exchange(o.size_, 0);
      capacity_ = std::exchange(o.capacity_, 0);
    }
    return *this;
  }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  /// Resize without preserving contents (existing data is discarded; the
  /// new contents are uninitialized). Never shrinks the allocation.
  void resizeDiscard(std::size_t n) {
    if (n > capacity_) {
      release();
      const std::size_t bytes =
          alignedCount(n, sizeof(T)) * sizeof(T);
      data_ = static_cast<T*>(
          ::operator new(bytes, std::align_val_t{kSimdAlignment}));
      capacity_ = n;
    }
    size_ = n;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  void release() {
    if (data_) {
      ::operator delete(data_, std::align_val_t{kSimdAlignment});
      data_ = nullptr;
    }
    size_ = capacity_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

/// Growable bump allocator for transient SIMD scratch (FFT split re/im
/// lanes, batched-transform workspaces). Allocations are kSimdAlignment-
/// aligned and live until the enclosing ArenaScope unwinds; the backing
/// block is reused across calls so steady-state transforms do zero heap
/// traffic.
///
/// Not thread-safe by design: use the thread_local instance from
/// simdScratch(). Reentrancy (an FFT calling a sub-plan's FFT) is handled
/// by nested ArenaScopes.
class ScratchArena {
 public:
  double* allocDoubles(std::size_t n) {
    const std::size_t need = alignedCount(n, sizeof(double));
    if (offset_ + need > block_.size()) grow(offset_ + need);
    double* p = block_.data() + offset_;
    offset_ += need;
    return p;
  }

  std::size_t offset() const { return offset_; }
  void rewind(std::size_t offset) {
    offset_ = offset;
    // Blocks retired by grow() can only be dropped once no scope holds
    // pointers into them, i.e. when the arena is fully unwound.
    if (offset_ == 0 && !retired_.empty()) retired_.clear();
  }

 private:
  void grow(std::size_t need) {
    // Geometric growth. The old block is RETIRED, not freed: allocations
    // made before the grow (in this or an enclosing scope) still point into
    // it and stay valid until the arena unwinds to zero. Only allocations
    // made after the grow land in the new block.
    std::size_t cap = block_.size() < 1024 ? 1024 : block_.size();
    while (cap < need) cap *= 2;
    AlignedBuffer<double> bigger(cap);
    if (block_.size() > 0) retired_.push_back(std::move(block_));
    block_ = std::move(bigger);
    offset_ = 0;
  }

  AlignedBuffer<double> block_;
  std::size_t offset_ = 0;
  std::vector<AlignedBuffer<double>> retired_;
};

/// RAII scope: everything allocated from the arena after construction is
/// released (offset rewound) on destruction.
class ArenaScope {
 public:
  explicit ArenaScope(ScratchArena& arena)
      : arena_(arena), saved_(arena.offset()) {}
  ~ArenaScope() { arena_.rewind(saved_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  ScratchArena& arena_;
  std::size_t saved_;
};

/// The per-thread scratch arena shared by the SIMD kernel layer.
ScratchArena& simdScratch();

}  // namespace uniq::common
