#pragma once

#include <algorithm>
#include <cmath>

#include "common/constants.h"

/// Small, dependency-free math helpers used across all modules.
namespace uniq {

inline constexpr double degToRad(double deg) { return deg * kPi / 180.0; }
inline constexpr double radToDeg(double rad) { return rad * 180.0 / kPi; }

/// Wrap an angle in radians into [0, 2*pi).
inline double wrapTwoPi(double rad) {
  double r = std::fmod(rad, kTwoPi);
  if (r < 0) r += kTwoPi;
  return r;
}

/// Wrap an angle in radians into (-pi, pi].
inline double wrapPi(double rad) {
  double r = wrapTwoPi(rad);
  if (r > kPi) r -= kTwoPi;
  return r;
}

/// Absolute angular distance between two angles in degrees, result in
/// [0, 180]. Used for AoA error metrics.
inline double angularDistanceDeg(double aDeg, double bDeg) {
  double d = std::fmod(std::fabs(aDeg - bDeg), 360.0);
  if (d > 180.0) d = 360.0 - d;
  return d;
}

inline double lerp(double a, double b, double t) { return a + (b - a) * t; }

/// Inverse lerp: the t for which lerp(a, b, t) == x. Requires a != b.
inline double inverseLerp(double a, double b, double x) {
  return (x - a) / (b - a);
}

inline double clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

inline double square(double x) { return x * x; }

/// Convert a linear amplitude ratio to decibels (floor at -300 dB).
inline double amplitudeToDb(double amp) {
  return 20.0 * std::log10(std::max(std::fabs(amp), 1e-15));
}

inline double dbToAmplitude(double db) { return std::pow(10.0, db / 20.0); }

/// True when |a - b| <= tol (absolute tolerance).
inline bool nearAbs(double a, double b, double tol) {
  return std::fabs(a - b) <= tol;
}

}  // namespace uniq
