#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace uniq::common {

namespace {

// Pool counters live in the process-wide metrics registry (poolStats()
// reads them back for the legacy struct API).
obs::Counter& tasksCounter() {
  static obs::Counter& c = obs::registry().counter("pool.tasks");
  return c;
}
obs::Gauge& maxQueueDepthGauge() {
  static obs::Gauge& g = obs::registry().gauge("pool.queue.max_depth");
  return g;
}

// True on threads owned by a pool; parallelFor uses it to degrade to the
// inline path instead of fanning out recursively.
thread_local bool tlInsidePool = false;

void noteQueueDepth(std::size_t depth) {
  maxQueueDepthGauge().setMax(static_cast<double>(depth));
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::workerLoop() {
  tlInsidePool = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    tasksCounter().inc();
  }
}

std::size_t ThreadPool::queueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::submit(std::function<void()> task) {
  // Capture the submitter's trace context so spans recorded inside the
  // task attribute to the job that queued it, not to the worker thread.
  // The common case (no active context) skips the wrapper entirely.
  const obs::TraceId trace = obs::currentTraceId();
  if (trace != 0) {
    task = [trace, inner = std::move(task)] {
      obs::TraceContextScope scope(trace);
      inner();
    };
  }
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  noteQueueDepth(depth);
  cv_.notify_one();
}

void ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn,
                             std::size_t maxThreads) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  std::size_t helpers = workers_.size();
  if (maxThreads > 0) helpers = std::min(helpers, maxThreads - 1);
  helpers = std::min(helpers, count - 1);
  if (helpers == 0 || tlInsidePool) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Shared work descriptor: helpers and the caller pull indices from one
  // atomic counter. Per-index work is disjoint, so results do not depend on
  // which thread runs which index.
  struct Work {
    std::atomic<std::size_t> next;
    std::size_t end;
    const std::function<void(std::size_t)>& fn;
    std::mutex doneMutex;
    std::condition_variable doneCv;
    std::size_t pendingHelpers;
    std::exception_ptr error;

    Work(std::size_t b, std::size_t e,
         const std::function<void(std::size_t)>& f, std::size_t helpers)
        : next(b), end(e), fn(f), pendingHelpers(helpers) {}

    void run() {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= end) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(doneMutex);
          if (!error) error = std::current_exception();
          // Stop handing out further indices after a failure.
          next.store(end, std::memory_order_relaxed);
        }
      }
    }
  };

  auto work = std::make_shared<Work>(begin, end, fn, helpers);
  for (std::size_t t = 0; t < helpers; ++t) {
    submit([work] {
      work->run();
      std::lock_guard<std::mutex> lock(work->doneMutex);
      --work->pendingHelpers;
      work->doneCv.notify_all();
    });
  }
  work->run();
  std::unique_lock<std::mutex> lock(work->doneMutex);
  work->doneCv.wait(lock, [&] { return work->pendingHelpers == 0; });
  if (work->error) std::rethrow_exception(work->error);
}

ThreadPool& globalPool() {
  static ThreadPool pool([] {
    std::size_t n = 0;
    if (const char* env = std::getenv("UNIQ_NUM_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) n = static_cast<std::size_t>(parsed);
    }
    if (n == 0) n = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
    n = std::clamp<std::size_t>(n, 1, 16);
    // n counts executing threads including the caller of parallelFor.
    return n - 1;
  }());
  static const bool gaugeSet = [] {
    obs::registry().gauge("pool.threads").set(
        static_cast<double>(pool.threadCount()));
    // Touch the other pool instruments so a run that never queues work
    // still reports them (as zeros) instead of omitting the lines.
    tasksCounter();
    maxQueueDepthGauge();
    return true;
  }();
  (void)gaugeSet;
  return pool;
}

void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn,
                 std::size_t maxThreads) {
  globalPool().parallelFor(begin, end, fn, maxThreads);
}

PoolStats poolStats() {
  PoolStats s;
  s.threads = globalPool().threadCount();
  s.tasksExecuted = tasksCounter().value();
  s.maxQueueDepth =
      static_cast<std::uint64_t>(maxQueueDepthGauge().value());
  return s;
}

}  // namespace uniq::common
