#pragma once

#include <cstdint>
#include <vector>

namespace uniq {

/// Small, fast, deterministic PCG32 random generator.
///
/// Every stochastic component in the simulation substrate (subject pinna
/// shapes, IMU noise, gesture wobble, measurement noise) draws from an
/// explicitly seeded Pcg32 so that experiments and tests are exactly
/// reproducible across runs and platforms.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Uniform 32-bit value.
  std::uint32_t nextU32();

  /// Uniform double in [0, 1).
  double nextDouble();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal (Box-Muller; one value per call, caches the pair).
  double gaussian();

  /// Gaussian with given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Uniform integer in [0, bound) without modulo bias.
  std::uint32_t nextBounded(std::uint32_t bound);

  /// Derive an independent generator for a named sub-component. Mixing the
  /// tag keeps subsystem draws decoupled when one consumer changes how many
  /// values it pulls.
  Pcg32 fork(std::uint64_t tag) const;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool hasCachedGaussian_ = false;
  double cachedGaussian_ = 0.0;
};

/// Zipf(s) sampler over {0, ..., n-1}: rank k is drawn with probability
/// proportional to 1 / (k+1)^s. This is the canonical model for skewed
/// serving traffic — a few users are hot, the long tail is cold — and the
/// serve-load driver uses it to shape cache pressure realistically.
///
/// Implementation: the full CDF is precomputed (O(n) memory, exact — no
/// rejection-method approximation) and each draw is one uniform plus a
/// binary search, O(log n). n = a few million ranks costs a few tens of MB
/// transiently, fine for a load driver. s = 0 degenerates to uniform.
class ZipfSampler {
 public:
  /// `n` must be >= 1; `s` (the skew exponent) must be finite and >= 0.
  /// Typical serving traffic is modeled with s in [0.9, 1.1].
  ZipfSampler(std::size_t n, double s);

  /// Draw a rank in [0, n), hottest rank 0, using `rng` for the uniform.
  std::size_t sample(Pcg32& rng) const;

  std::size_t size() const { return cdf_.size(); }
  double skew() const { return s_; }

  /// Probability mass of rank `k` (for tests and capacity math).
  double pmf(std::size_t k) const;

 private:
  double s_ = 0.0;
  std::vector<double> cdf_;  ///< cdf_[k] = P(rank <= k); back() == 1.0
};

}  // namespace uniq
