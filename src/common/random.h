#pragma once

#include <cstdint>

namespace uniq {

/// Small, fast, deterministic PCG32 random generator.
///
/// Every stochastic component in the simulation substrate (subject pinna
/// shapes, IMU noise, gesture wobble, measurement noise) draws from an
/// explicitly seeded Pcg32 so that experiments and tests are exactly
/// reproducible across runs and platforms.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Uniform 32-bit value.
  std::uint32_t nextU32();

  /// Uniform double in [0, 1).
  double nextDouble();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal (Box-Muller; one value per call, caches the pair).
  double gaussian();

  /// Gaussian with given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Uniform integer in [0, bound) without modulo bias.
  std::uint32_t nextBounded(std::uint32_t bound);

  /// Derive an independent generator for a named sub-component. Mixing the
  /// tag keeps subsystem draws decoupled when one consumer changes how many
  /// values it pulls.
  Pcg32 fork(std::uint64_t tag) const;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool hasCachedGaussian_ = false;
  double cachedGaussian_ = 0.0;
};

}  // namespace uniq
