#pragma once

/// Physical and numerical constants shared across the UNIQ library.
namespace uniq {

/// Speed of sound in air at ~20 C, meters per second. The paper's acoustic
/// ranging multiplies time-difference-of-arrival by this value (Section 2).
inline constexpr double kSpeedOfSound = 343.0;

/// Pi. (std::numbers::pi exists but keeping a project constant makes the
/// dependency surface of low-level headers minimal.)
inline constexpr double kPi = 3.14159265358979323846;

inline constexpr double kTwoPi = 2.0 * kPi;

/// Default sample rate for all simulated audio, Hz. The paper records at
/// 96 kHz; 48 kHz is used here by default (everything is parameterized on
/// the rate, and first-tap timing uses sub-sample interpolation, so the
/// effective delay resolution is equivalent).
inline constexpr double kDefaultSampleRate = 48000.0;

}  // namespace uniq
