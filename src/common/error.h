#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace uniq {

/// Base exception for all UNIQ library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an iterative numerical procedure fails to converge or a
/// geometric query has no solution.
class NumericalFailure : public Error {
 public:
  explicit NumericalFailure(const std::string& what) : Error(what) {}
};

namespace detail {
inline std::string formatCheckMessage(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  return os.str();
}
}  // namespace detail

}  // namespace uniq

/// Precondition check that throws uniq::InvalidArgument. Always active
/// (these guard public API boundaries, not hot loops).
#define UNIQ_REQUIRE(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) {                                                     \
      throw ::uniq::InvalidArgument(::uniq::detail::formatCheckMessage( \
          #expr, __FILE__, __LINE__, (msg)));                          \
    }                                                                  \
  } while (false)

/// Internal-consistency check that throws uniq::NumericalFailure.
#define UNIQ_CHECK(expr, msg)                                           \
  do {                                                                  \
    if (!(expr)) {                                                      \
      throw ::uniq::NumericalFailure(::uniq::detail::formatCheckMessage( \
          #expr, __FILE__, __LINE__, (msg)));                           \
    }                                                                   \
  } while (false)
