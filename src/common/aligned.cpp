#include "common/aligned.h"

namespace uniq::common {

ScratchArena& simdScratch() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace uniq::common
