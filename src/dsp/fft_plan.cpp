#include "dsp/fft_plan.h"

#include <cmath>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/constants.h"
#include "common/error.h"
#include "obs/metrics.h"

namespace uniq::dsp {

namespace {

// Cache bookkeeping. The map is mutex-guarded; the counters are lock-free so
// hot paths can be instrumented without contention.
std::mutex& cacheMutex() {
  static std::mutex m;
  return m;
}

std::unordered_map<std::size_t, std::shared_ptr<const FftPlan>>& planCache() {
  static std::unordered_map<std::size_t, std::shared_ptr<const FftPlan>> c;
  return c;
}

// Cache counters live in the process-wide metrics registry so the CLI and
// the exporters report them alongside everything else; fftStats() reads
// them back for the legacy struct API.
obs::Counter& planHitCounter() {
  static obs::Counter& c = obs::registry().counter("fft.plan.hits");
  return c;
}
obs::Counter& planMissCounter() {
  static obs::Counter& c = obs::registry().counter("fft.plan.misses");
  return c;
}
obs::Gauge& cachedPlansGauge() {
  static obs::Gauge& g = obs::registry().gauge("fft.plan.cached");
  return g;
}

// Plans are a few hundred KiB at the largest sizes this pipeline uses; cap
// the cache so a pathological caller sweeping many distinct lengths cannot
// grow it without bound.
constexpr std::size_t kMaxCachedPlans = 128;

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n), pow2_(isPowerOfTwo(n)) {
  UNIQ_REQUIRE(n >= 1, "FftPlan needs n >= 1");
  if (pow2_) {
    UNIQ_REQUIRE(n <= (std::size_t{1} << 31),
                 "FftPlan pow2 size exceeds table range");
    bitrev_.resize(n);
    bitrev_[0] = 0;
    for (std::size_t i = 1, j = 0; i < n; ++i) {
      std::size_t bit = n >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      bitrev_[i] = static_cast<std::uint32_t>(j);
      if (i < j) {
        swapPairs_.push_back(static_cast<std::uint32_t>(i));
        swapPairs_.push_back(static_cast<std::uint32_t>(j));
      }
    }
    twiddles_.resize(n / 2);
    inverseTwiddles_.resize(n / 2);
    for (std::size_t k = 0; k < n / 2; ++k) {
      const double ang = -kTwoPi * static_cast<double>(k) /
                         static_cast<double>(n);
      twiddles_[k] = Complex(std::cos(ang), std::sin(ang));
      inverseTwiddles_[k] = std::conj(twiddles_[k]);
    }
    if (n >= 2) halfPlan_ = fftPlan(n / 2);
    return;
  }

  // Bluestein: DFT_n as a circular convolution of length m = 2^k >= 2n+1.
  m_ = nextPowerOfTwo(2 * n + 1);
  chirp_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n avoids precision loss for large k.
    const double kk = static_cast<double>(
        (static_cast<unsigned long long>(k) * k) % (2 * n));
    const double phase = -kPi * kk / static_cast<double>(n);
    chirp_[k] = Complex(std::cos(phase), std::sin(phase));
  }
  convPlan_ = fftPlan(m_);
  std::vector<Complex> b(m_, Complex(0, 0));
  b[0] = std::conj(chirp_[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = std::conj(chirp_[k]);
    b[m_ - k] = b[k];
  }
  convPlan_->forwardInPlace(b);
  kernelSpectrum_ = std::move(b);
}

void FftPlan::transformPow2(std::span<Complex> data, bool inverse) const {
  // In-place bit-reversal via the precomputed pair list, which visits each
  // swap exactly once.
  for (std::size_t p = 0; p + 1 < swapPairs_.size(); p += 2) {
    std::swap(data[swapPairs_[p]], data[swapPairs_[p + 1]]);
  }
  stagesPow2(data, inverse, /*firstStageDone=*/false);
}

void FftPlan::gatherStage2(std::span<const Complex> input,
                           std::span<Complex> out) const {
  const std::size_t n = n_;
  if (n == 1) {
    out[0] = input[0];
    return;
  }
  // One pass replaces copy + permutation + first butterfly stage: the pair
  // written to (2t, 2t+1) reads bit-reversed inputs j and j + n/2, and the
  // len == 2 twiddle is exactly 1.
  const std::size_t h = n / 2;
  for (std::size_t t = 0; t < h; ++t) {
    const std::size_t j = bitrev_[2 * t];
    const Complex u = input[j];
    const Complex v = input[j + h];
    out[2 * t] = u + v;
    out[2 * t + 1] = u - v;
  }
}

void FftPlan::stagesPow2(std::span<Complex> data, bool inverse,
                         bool firstStageDone) const {
  const std::size_t n = n_;
  if (!firstStageDone) {
    // First stage (len == 2): twiddle is exactly 1, no multiply needed.
    for (std::size_t i = 0; i + 1 < n; i += 2) {
      const Complex u = data[i];
      const Complex v = data[i + 1];
      data[i] = u + v;
      data[i + 1] = u - v;
    }
  }

  // Scalar-double butterflies from here on. Spelling the complex
  // arithmetic out keeps GCC from mixing packed and scalar code with stack
  // round-trips, which measured ~2.4x slower than this form on the same
  // tables.
  auto* d = reinterpret_cast<double*>(data.data());

  // Second stage (len == 4): twiddles are exactly 1 and -i (forward) or
  // 1 and +i (inverse), so v = x*w is a component swap with a sign flip.
  if (n >= 4) {
    const double s = inverse ? 1.0 : -1.0;
    for (std::size_t i = 0; i + 3 < n; i += 4) {
      double* p = d + 2 * i;
      const double u0r = p[0], u0i = p[1];
      const double v0r = p[4], v0i = p[5];
      p[0] = u0r + v0r;
      p[1] = u0i + v0i;
      p[4] = u0r - v0r;
      p[5] = u0i - v0i;
      const double u1r = p[2], u1i = p[3];
      const double v1r = -s * p[7], v1i = s * p[6];
      p[2] = u1r + v1r;
      p[3] = u1i + v1i;
      p[6] = u1r - v1r;
      p[7] = u1i - v1i;
    }
  }

  const Complex* tw = inverse ? inverseTwiddles_.data() : twiddles_.data();
  for (std::size_t len = 8; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t step = n / len;
    for (std::size_t i = 0; i < n; i += len) {
      std::size_t idx = 0;
      for (std::size_t k = 0; k < half; ++k, idx += step) {
        const double wr = tw[idx].real();
        const double wi = tw[idx].imag();
        double* a = d + 2 * (i + k);
        double* b = d + 2 * (i + k + half);
        const double xr = b[0];
        const double xi = b[1];
        const double vr = xr * wr - xi * wi;
        const double vi = xr * wi + xi * wr;
        const double ur = a[0];
        const double ui = a[1];
        a[0] = ur + vr;
        a[1] = ui + vi;
        b[0] = ur - vr;
        b[1] = ui - vi;
      }
    }
  }

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= scale;
  }
}

void FftPlan::forwardInPlace(std::span<Complex> data) const {
  UNIQ_REQUIRE(pow2_, "in-place transform needs a power-of-two plan");
  UNIQ_REQUIRE(data.size() == n_, "data length does not match plan");
  transformPow2(data, false);
}

void FftPlan::inverseInPlace(std::span<Complex> data) const {
  UNIQ_REQUIRE(pow2_, "in-place transform needs a power-of-two plan");
  UNIQ_REQUIRE(data.size() == n_, "data length does not match plan");
  transformPow2(data, true);
}

std::vector<Complex> FftPlan::forwardBluestein(
    std::span<const Complex> input) const {
  // Both convolution FFTs skip their permutation pass: the chirp
  // premultiply scatters straight into bit-reversed order, and the kernel
  // multiply permutes in place as it goes (bit reversal is an involution,
  // so it decomposes into disjoint swaps plus fixed points).
  const auto& rev = convPlan_->bitrev_;
  std::vector<Complex> a(m_, Complex(0, 0));
  for (std::size_t k = 0; k < n_; ++k) a[rev[k]] = input[k] * chirp_[k];
  convPlan_->stagesPow2(a, false, /*firstStageDone=*/false);
  for (std::size_t i = 0; i < m_; ++i) {
    const std::size_t j = rev[i];
    if (j > i) {
      const Complex t = a[i] * kernelSpectrum_[i];
      a[i] = a[j] * kernelSpectrum_[j];
      a[j] = t;
    } else if (j == i) {
      a[i] *= kernelSpectrum_[i];
    }
  }
  convPlan_->stagesPow2(a, true, /*firstStageDone=*/false);
  std::vector<Complex> out(n_);
  for (std::size_t k = 0; k < n_; ++k) out[k] = a[k] * chirp_[k];
  return out;
}

std::vector<Complex> FftPlan::forward(std::span<const Complex> input) const {
  UNIQ_REQUIRE(input.size() == n_, "input length does not match plan");
  if (pow2_) {
    std::vector<Complex> data(n_);
    gatherStage2(input, data);
    stagesPow2(data, false, /*firstStageDone=*/n_ > 1);
    return data;
  }
  return forwardBluestein(input);
}

std::vector<Complex> FftPlan::inverse(std::span<const Complex> input) const {
  UNIQ_REQUIRE(input.size() == n_, "input length does not match plan");
  if (pow2_) {
    std::vector<Complex> data(n_);
    gatherStage2(input, data);
    stagesPow2(data, true, /*firstStageDone=*/n_ > 1);
    return data;
  }
  // ifft(x) = conj(fft(conj(x))) / n reuses the forward chirp tables.
  std::vector<Complex> conjIn(n_);
  for (std::size_t k = 0; k < n_; ++k) conjIn[k] = std::conj(input[k]);
  auto out = forwardBluestein(conjIn);
  const double scale = 1.0 / static_cast<double>(n_);
  for (auto& x : out) x = std::conj(x) * scale;
  return out;
}

std::vector<Complex> FftPlan::rfft(std::span<const double> input) const {
  UNIQ_REQUIRE(pow2_, "rfft needs a power-of-two plan");
  UNIQ_REQUIRE(input.size() == n_, "input length does not match plan");
  const std::size_t n = n_;
  if (n == 1) return {Complex(input[0], 0)};

  // Pack even/odd samples into one complex signal of length n/2, transform,
  // then split: X[k] = E[k] + exp(-2*pi*i*k/n) * O[k]. The pack gathers in
  // the half plan's bit-reversed order with its len == 2 stage fused, like
  // gatherStage2().
  const std::size_t h = n / 2;
  std::vector<Complex> z(h);
  if (h == 1) {
    z[0] = Complex(input[0], input[1]);
  } else {
    const auto& rev = halfPlan_->bitrev_;
    for (std::size_t t = 0; t < h / 2; ++t) {
      const std::size_t j = rev[2 * t];
      const Complex u(input[2 * j], input[2 * j + 1]);
      const Complex v(input[2 * (j + h / 2)], input[2 * (j + h / 2) + 1]);
      z[2 * t] = u + v;
      z[2 * t + 1] = u - v;
    }
  }
  halfPlan_->stagesPow2(z, false, /*firstStageDone=*/h > 1);

  std::vector<Complex> out(h + 1);
  out[0] = Complex(z[0].real() + z[0].imag(), 0.0);
  out[h] = Complex(z[0].real() - z[0].imag(), 0.0);
  for (std::size_t k = 1; k < h; ++k) {
    const Complex zk = z[k];
    const Complex znk = std::conj(z[h - k]);
    const Complex even = 0.5 * (zk + znk);
    const Complex odd = Complex(0, -0.5) * (zk - znk);
    out[k] = even + twiddles_[k] * odd;
  }
  return out;
}

std::vector<double> FftPlan::irfft(std::span<const Complex> halfSpectrum) const {
  UNIQ_REQUIRE(pow2_, "irfft needs a power-of-two plan");
  UNIQ_REQUIRE(halfSpectrum.size() == n_ / 2 + 1,
               "half spectrum length does not match plan");
  const std::size_t n = n_;
  if (n == 1) return {halfSpectrum[0].real()};

  const std::size_t h = n / 2;
  std::vector<Complex> z(h);
  for (std::size_t k = 0; k < h; ++k) {
    const Complex xk = halfSpectrum[k];
    const Complex xnk = std::conj(halfSpectrum[h - k]);
    const Complex even = 0.5 * (xk + xnk);
    // Undo the rfft split twiddle: O[k] = (X[k] - E[k]) * exp(+2*pi*i*k/n).
    const Complex odd = 0.5 * (xk - xnk) * std::conj(twiddles_[k]);
    z[k] = even + Complex(0, 1) * odd;
  }
  halfPlan_->inverseInPlace(z);

  std::vector<double> out(n);
  for (std::size_t j = 0; j < h; ++j) {
    out[2 * j] = z[j].real();
    out[2 * j + 1] = z[j].imag();
  }
  return out;
}

std::shared_ptr<const FftPlan> fftPlan(std::size_t n) {
  UNIQ_REQUIRE(n >= 1, "fftPlan needs n >= 1");
  {
    std::lock_guard<std::mutex> lock(cacheMutex());
    auto& cache = planCache();
    const auto it = cache.find(n);
    if (it != cache.end()) {
      planHitCounter().inc();
      return it->second;
    }
  }
  planMissCounter().inc();
  // Build outside the lock: construction may recurse into fftPlan() for the
  // half-length / convolution-length sub-plans.
  auto plan = std::make_shared<const FftPlan>(n);
  std::lock_guard<std::mutex> lock(cacheMutex());
  auto& cache = planCache();
  if (cache.size() >= kMaxCachedPlans) cache.erase(cache.begin());
  const auto [it, inserted] = cache.emplace(n, std::move(plan));
  cachedPlansGauge().set(static_cast<double>(cache.size()));
  return it->second;
}

FftStats fftStats() {
  FftStats s;
  s.planHits = planHitCounter().value();
  s.planMisses = planMissCounter().value();
  std::lock_guard<std::mutex> lock(cacheMutex());
  s.cachedPlans = planCache().size();
  return s;
}

void resetFftStats() {
  planHitCounter().reset();
  planMissCounter().reset();
}

std::vector<Complex> rfft(std::span<const double> input) {
  UNIQ_REQUIRE(!input.empty(), "rfft of empty signal");
  UNIQ_REQUIRE(isPowerOfTwo(input.size()),
               "rfft needs a power-of-two length");
  return fftPlan(input.size())->rfft(input);
}

std::vector<double> irfft(std::span<const Complex> halfSpectrum,
                          std::size_t n) {
  UNIQ_REQUIRE(isPowerOfTwo(n), "irfft needs a power-of-two length");
  return fftPlan(n)->irfft(halfSpectrum);
}

}  // namespace uniq::dsp
