#include "dsp/fft_plan.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/aligned.h"
#include "common/constants.h"
#include "common/error.h"
#include "dsp/kernels/kernels.h"
#include "obs/metrics.h"

namespace uniq::dsp {

namespace {

// Cache bookkeeping. The map is mutex-guarded; the counters are lock-free so
// hot paths can be instrumented without contention.
std::mutex& cacheMutex() {
  static std::mutex m;
  return m;
}

std::unordered_map<std::size_t, std::shared_ptr<const FftPlan>>& planCache() {
  static std::unordered_map<std::size_t, std::shared_ptr<const FftPlan>> c;
  return c;
}

// Cache counters live in the process-wide metrics registry so the CLI and
// the exporters report them alongside everything else; fftStats() reads
// them back for the legacy struct API.
obs::Counter& planHitCounter() {
  static obs::Counter& c = obs::registry().counter("fft.plan.hits");
  return c;
}
obs::Counter& planMissCounter() {
  static obs::Counter& c = obs::registry().counter("fft.plan.misses");
  return c;
}
obs::Gauge& cachedPlansGauge() {
  static obs::Gauge& g = obs::registry().gauge("fft.plan.cached");
  return g;
}
// Executed-transform counters: every user-visible transform (a Bluestein
// transform counts once, not per inner convolution FFT), batch members
// individually. The fusion stage reads deltas of these to report FFT work
// per objective evaluation.
obs::Counter& transformCounter() {
  static obs::Counter& c = obs::registry().counter("fft.transforms");
  return c;
}
obs::Counter& batchedCounter() {
  static obs::Counter& c = obs::registry().counter("fft.transforms.batched");
  return c;
}

// Plans are a few hundred KiB at the largest sizes this pipeline uses; cap
// the cache so a pathological caller sweeping many distinct lengths cannot
// grow it without bound.
constexpr std::size_t kMaxCachedPlans = 128;

// Batched transforms run in chunks of at most this many members: wide
// enough that every butterfly is a full AVX2 vector (and twiddle broadcasts
// amortize), narrow enough that a chunk's working set stays in L1/L2.
constexpr std::size_t kBatchWidth = 8;

/// Row stride (in doubles) for a batch chunk of `w` members: the smallest
/// multiple of 4 holding `w`, so the vector kernels never need a scalar
/// tail in the batch dimension.
std::size_t batchStride(std::size_t w) { return w <= 4 ? 4 : kBatchWidth; }

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n), pow2_(isPowerOfTwo(n)) {
  UNIQ_REQUIRE(n >= 1, "FftPlan needs n >= 1");
  if (pow2_) {
    UNIQ_REQUIRE(n <= (std::size_t{1} << 31),
                 "FftPlan pow2 size exceeds table range");
    bitrev_.resize(n);
    bitrev_[0] = 0;
    for (std::size_t i = 1, j = 0; i < n; ++i) {
      std::size_t bit = n >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      bitrev_[i] = static_cast<std::uint32_t>(j);
    }
    if (n >= 2) {
      // Packed per-stage twiddles, batch layout: stage len at offset
      // len/2 - 1, entries exp(-2*pi*i*k/len) for k < len/2. The offsets
      // telescope (1 + 2 + ... + len/4 == len/2 - 1), n - 1 entries total.
      twRe_.resizeDiscard(n - 1);
      twIm_.resizeDiscard(n - 1);
      invTwIm_.resizeDiscard(n - 1);
      for (std::size_t len = 2; len <= n; len <<= 1) {
        const std::size_t half = len / 2;
        for (std::size_t k = 0; k < half; ++k) {
          const double ang =
              -kTwoPi * static_cast<double>(k) / static_cast<double>(len);
          twRe_[half - 1 + k] = std::cos(ang);
          twIm_[half - 1 + k] = std::sin(ang);
          invTwIm_[half - 1 + k] = -twIm_[half - 1 + k];
        }
      }
      halfPlan_ = fftPlan(n / 2);
    }
    return;
  }

  // Bluestein: DFT_n as a circular convolution of length m = 2^k >= 2n+1.
  m_ = nextPowerOfTwo(2 * n + 1);
  chirpRe_.resizeDiscard(n);
  chirpIm_.resizeDiscard(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n avoids precision loss for large k.
    const double kk = static_cast<double>(
        (static_cast<unsigned long long>(k) * k) % (2 * n));
    const double phase = -kPi * kk / static_cast<double>(n);
    chirpRe_[k] = std::cos(phase);
    chirpIm_[k] = std::sin(phase);
  }
  convPlan_ = fftPlan(m_);
  // Kernel spectrum, stored in the convolution plan's bit-reversed (DIF
  // output) order: transform time multiplies it pointwise against the DIF
  // forward output and feeds the product straight into the DIT inverse —
  // no permutation passes anywhere in the convolution.
  kernRe_.resizeDiscard(m_);
  kernIm_.resizeDiscard(m_);
  std::fill(kernRe_.data(), kernRe_.data() + m_, 0.0);
  std::fill(kernIm_.data(), kernIm_.data() + m_, 0.0);
  kernRe_[0] = chirpRe_[0];
  kernIm_[0] = -chirpIm_[0];
  for (std::size_t k = 1; k < n; ++k) {
    kernRe_[k] = chirpRe_[k];
    kernIm_[k] = -chirpIm_[k];
    kernRe_[m_ - k] = kernRe_[k];
    kernIm_[m_ - k] = kernIm_[k];
  }
  kernels::difStages(kernRe_.data(), kernIm_.data(), m_,
                     convPlan_->stageTwRe(), convPlan_->stageTwIm(false));
}

void FftPlan::gatherSplit(const Complex* input, double* re, double* im) const {
  // One pass replaces deinterleave + permutation + first butterfly stage:
  // the pair written to (2t, 2t+1) reads bit-reversed inputs j and j + n/2,
  // and the len == 2 twiddle is exactly 1.
  const std::size_t h = n_ / 2;
  const auto* d = reinterpret_cast<const double*>(input);
  for (std::size_t t = 0; t < h; ++t) {
    const std::size_t j = bitrev_[2 * t];
    const double ur = d[2 * j], ui = d[2 * j + 1];
    const double vr = d[2 * (j + h)], vi = d[2 * (j + h) + 1];
    re[2 * t] = ur + vr;
    im[2 * t] = ui + vi;
    re[2 * t + 1] = ur - vr;
    im[2 * t + 1] = ui - vi;
  }
}

void FftPlan::transformPow2(std::span<Complex> data, bool inverse) const {
  transformCounter().inc();
  const std::size_t n = n_;
  if (n < 2) return;
  auto& arena = common::simdScratch();
  common::ArenaScope scope(arena);
  const std::size_t lane = common::alignedCount(n, sizeof(double));
  double* re = arena.allocDoubles(2 * lane);
  double* im = re + lane;
  gatherSplit(data.data(), re, im);
  kernels::ditStagesFrom4(re, im, n, stageTwRe(), stageTwIm(inverse));
  auto* d = reinterpret_cast<double*>(data.data());
  if (inverse) {
    const double s = 1.0 / static_cast<double>(n);
    for (std::size_t k = 0; k < n; ++k) {
      d[2 * k] = re[k] * s;
      d[2 * k + 1] = im[k] * s;
    }
  } else {
    for (std::size_t k = 0; k < n; ++k) {
      d[2 * k] = re[k];
      d[2 * k + 1] = im[k];
    }
  }
}

void FftPlan::forwardInPlace(std::span<Complex> data) const {
  UNIQ_REQUIRE(pow2_, "in-place transform needs a power-of-two plan");
  UNIQ_REQUIRE(data.size() == n_, "data length does not match plan");
  transformPow2(data, false);
}

void FftPlan::inverseInPlace(std::span<Complex> data) const {
  UNIQ_REQUIRE(pow2_, "in-place transform needs a power-of-two plan");
  UNIQ_REQUIRE(data.size() == n_, "data length does not match plan");
  transformPow2(data, true);
}

std::vector<Complex> FftPlan::forwardBluestein(
    std::span<const Complex> input) const {
  auto& arena = common::simdScratch();
  common::ArenaScope scope(arena);
  const std::size_t lane = common::alignedCount(m_, sizeof(double));
  double* re = arena.allocDoubles(2 * lane);
  double* im = re + lane;
  // Chirp premultiply in natural order (DIF input order), zero-padded to m.
  for (std::size_t k = 0; k < n_; ++k) {
    const double xr = input[k].real(), xi = input[k].imag();
    const double cr = chirpRe_[k], ci = chirpIm_[k];
    re[k] = xr * cr - xi * ci;
    im[k] = xr * ci + xi * cr;
  }
  std::fill(re + n_, re + m_, 0.0);
  std::fill(im + n_, im + m_, 0.0);
  kernels::difStages(re, im, m_, convPlan_->stageTwRe(),
                     convPlan_->stageTwIm(false));
  kernels::cmulSplit(re, im, kernRe_.data(), kernIm_.data(), m_);
  kernels::ditStages(re, im, m_, convPlan_->stageTwRe(),
                     convPlan_->stageTwIm(true));
  // Chirp postmultiply folds in the inverse convolution's 1/m scaling.
  const double s = 1.0 / static_cast<double>(m_);
  std::vector<Complex> out(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const double ar = re[k] * s, ai = im[k] * s;
    const double cr = chirpRe_[k], ci = chirpIm_[k];
    out[k] = Complex(ar * cr - ai * ci, ar * ci + ai * cr);
  }
  return out;
}

std::vector<Complex> FftPlan::forward(std::span<const Complex> input) const {
  UNIQ_REQUIRE(input.size() == n_, "input length does not match plan");
  if (pow2_) {
    std::vector<Complex> data(input.begin(), input.end());
    transformPow2(data, false);
    return data;
  }
  transformCounter().inc();
  return forwardBluestein(input);
}

std::vector<Complex> FftPlan::inverse(std::span<const Complex> input) const {
  UNIQ_REQUIRE(input.size() == n_, "input length does not match plan");
  if (pow2_) {
    std::vector<Complex> data(input.begin(), input.end());
    transformPow2(data, true);
    return data;
  }
  transformCounter().inc();
  // ifft(x) = conj(fft(conj(x))) / n reuses the forward chirp tables.
  std::vector<Complex> conjIn(n_);
  for (std::size_t k = 0; k < n_; ++k) conjIn[k] = std::conj(input[k]);
  auto out = forwardBluestein(conjIn);
  const double scale = 1.0 / static_cast<double>(n_);
  for (auto& x : out) x = std::conj(x) * scale;
  return out;
}

std::vector<Complex> FftPlan::rfft(std::span<const double> input) const {
  UNIQ_REQUIRE(pow2_, "rfft needs a power-of-two plan");
  UNIQ_REQUIRE(input.size() == n_, "input length does not match plan");
  transformCounter().inc();
  const std::size_t n = n_;
  if (n == 1) return {Complex(input[0], 0)};

  // Pack even/odd samples into one complex signal of length n/2, transform,
  // then split: X[k] = E[k] + exp(-2*pi*i*k/n) * O[k]. The pack gathers in
  // the half plan's bit-reversed order with its len == 2 stage fused, like
  // gatherSplit().
  const std::size_t h = n / 2;
  auto& arena = common::simdScratch();
  common::ArenaScope scope(arena);
  const std::size_t lane = common::alignedCount(h, sizeof(double));
  double* zRe = arena.allocDoubles(2 * lane);
  double* zIm = zRe + lane;
  if (h == 1) {
    zRe[0] = input[0];
    zIm[0] = input[1];
  } else {
    const auto& rev = halfPlan_->bitrev_;
    for (std::size_t t = 0; t < h / 2; ++t) {
      const std::size_t j = rev[2 * t];
      const double ur = input[2 * j], ui = input[2 * j + 1];
      const double vr = input[2 * (j + h / 2)];
      const double vi = input[2 * (j + h / 2) + 1];
      zRe[2 * t] = ur + vr;
      zIm[2 * t] = ui + vi;
      zRe[2 * t + 1] = ur - vr;
      zIm[2 * t + 1] = ui - vi;
    }
    kernels::ditStagesFrom4(zRe, zIm, h, halfPlan_->stageTwRe(),
                            halfPlan_->stageTwIm(false));
  }

  // Split twiddles exp(-2*pi*i*k/n) are exactly the len == n stage slice.
  const double* wr = twRe_.data() + (h - 1);
  const double* wi = twIm_.data() + (h - 1);
  std::vector<Complex> out(h + 1);
  out[0] = Complex(zRe[0] + zIm[0], 0.0);
  out[h] = Complex(zRe[0] - zIm[0], 0.0);
  for (std::size_t k = 1; k < h; ++k) {
    const double er = 0.5 * (zRe[k] + zRe[h - k]);
    const double ei = 0.5 * (zIm[k] - zIm[h - k]);
    const double odr = 0.5 * (zIm[k] + zIm[h - k]);
    const double odi = -0.5 * (zRe[k] - zRe[h - k]);
    out[k] = Complex(er + odr * wr[k] - odi * wi[k],
                     ei + odr * wi[k] + odi * wr[k]);
  }
  return out;
}

std::vector<double> FftPlan::irfft(std::span<const Complex> halfSpectrum) const {
  UNIQ_REQUIRE(pow2_, "irfft needs a power-of-two plan");
  UNIQ_REQUIRE(halfSpectrum.size() == n_ / 2 + 1,
               "half spectrum length does not match plan");
  transformCounter().inc();
  const std::size_t n = n_;
  if (n == 1) return {halfSpectrum[0].real()};

  const std::size_t h = n / 2;
  auto& arena = common::simdScratch();
  common::ArenaScope scope(arena);
  const std::size_t lane = common::alignedCount(h, sizeof(double));
  double* nzRe = arena.allocDoubles(4 * lane);
  double* nzIm = nzRe + lane;
  double* zRe = nzRe + 2 * lane;
  double* zIm = nzRe + 3 * lane;
  // Natural-order z, then gather into bit-reversed order for the inverse
  // cascade. Undo the rfft split twiddle with the conjugate table slice:
  // O[k] = (X[k] - E[k]) * exp(+2*pi*i*k/n).
  const double* wr = twRe_.data() + (h - 1);
  const double* wi = invTwIm_.data() + (h - 1);
  for (std::size_t k = 0; k < h; ++k) {
    const std::size_t nk = h - k;
    const double xkr = halfSpectrum[k].real(), xki = halfSpectrum[k].imag();
    const double xnr = halfSpectrum[nk].real(), xni = -halfSpectrum[nk].imag();
    const double er = 0.5 * (xkr + xnr), ei = 0.5 * (xki + xni);
    const double dr = 0.5 * (xkr - xnr), di = 0.5 * (xki - xni);
    const double odr = dr * wr[k] - di * wi[k];
    const double odi = dr * wi[k] + di * wr[k];
    nzRe[k] = er - odi;
    nzIm[k] = ei + odr;
  }
  if (h == 1) {
    zRe[0] = nzRe[0];
    zIm[0] = nzIm[0];
  } else {
    const auto& rev = halfPlan_->bitrev_;
    for (std::size_t t = 0; t < h / 2; ++t) {
      const std::size_t j = rev[2 * t];
      const double ur = nzRe[j], ui = nzIm[j];
      const double vr = nzRe[j + h / 2], vi = nzIm[j + h / 2];
      zRe[2 * t] = ur + vr;
      zIm[2 * t] = ui + vi;
      zRe[2 * t + 1] = ur - vr;
      zIm[2 * t + 1] = ui - vi;
    }
    kernels::ditStagesFrom4(zRe, zIm, h, halfPlan_->stageTwRe(),
                            halfPlan_->stageTwIm(true));
  }

  const double s = 1.0 / static_cast<double>(h);
  std::vector<double> out(n);
  for (std::size_t j = 0; j < h; ++j) {
    out[2 * j] = zRe[j] * s;
    out[2 * j + 1] = zIm[j] * s;
  }
  return out;
}

std::vector<std::vector<Complex>> FftPlan::forwardBatch(
    std::span<const std::vector<Complex>> inputs) const {
  UNIQ_REQUIRE(pow2_, "forwardBatch needs a power-of-two plan");
  const std::size_t n = n_;
  std::vector<std::vector<Complex>> out(inputs.size());
  auto& arena = common::simdScratch();
  for (std::size_t c = 0; c < inputs.size(); c += kBatchWidth) {
    const std::size_t w = std::min(kBatchWidth, inputs.size() - c);
    const std::size_t stride = batchStride(w);
    common::ArenaScope scope(arena);
    double* re = arena.allocDoubles(2 * n * stride);
    double* im = re + n * stride;
    if (w < stride) std::fill(re, re + 2 * n * stride, 0.0);
    for (std::size_t j = 0; j < w; ++j) {
      UNIQ_REQUIRE(inputs[c + j].size() == n,
                   "batch input length does not match plan");
      const auto* src = inputs[c + j].data();
      for (std::size_t k = 0; k < n; ++k) {
        const Complex x = src[bitrev_[k]];
        re[k * stride + j] = x.real();
        im[k * stride + j] = x.imag();
      }
    }
    kernels::batchDitStages(re, im, stride, n, twRe_.data(), twIm_.data());
    for (std::size_t j = 0; j < w; ++j) {
      auto& dst = out[c + j];
      dst.resize(n);
      for (std::size_t k = 0; k < n; ++k)
        dst[k] = Complex(re[k * stride + j], im[k * stride + j]);
    }
    transformCounter().inc(w);
    batchedCounter().inc(w);
  }
  return out;
}

std::vector<std::vector<Complex>> FftPlan::rfftBatch(
    std::span<const std::vector<double>> inputs) const {
  UNIQ_REQUIRE(pow2_, "rfftBatch needs a power-of-two plan");
  const std::size_t n = n_;
  std::vector<std::vector<Complex>> out(inputs.size());
  if (n == 1) {
    for (std::size_t j = 0; j < inputs.size(); ++j) {
      UNIQ_REQUIRE(inputs[j].size() == 1,
                   "batch input length does not match plan");
      out[j] = {Complex(inputs[j][0], 0)};
    }
    transformCounter().inc(inputs.size());
    batchedCounter().inc(inputs.size());
    return out;
  }
  const std::size_t h = n / 2;
  const double* wr = twRe_.data() + (h - 1);
  const double* wi = twIm_.data() + (h - 1);
  auto& arena = common::simdScratch();
  for (std::size_t c = 0; c < inputs.size(); c += kBatchWidth) {
    const std::size_t w = std::min(kBatchWidth, inputs.size() - c);
    const std::size_t stride = batchStride(w);
    common::ArenaScope scope(arena);
    double* zRe = arena.allocDoubles(2 * h * stride);
    double* zIm = zRe + h * stride;
    if (w < stride) std::fill(zRe, zRe + 2 * h * stride, 0.0);
    const auto& rev = halfPlan_->bitrev_;
    for (std::size_t j = 0; j < w; ++j) {
      UNIQ_REQUIRE(inputs[c + j].size() == n,
                   "batch input length does not match plan");
      const auto* src = inputs[c + j].data();
      // Even/odd pack straight into the half plan's bit-reversed order.
      for (std::size_t k = 0; k < h; ++k) {
        const std::size_t jj = rev[k];
        zRe[k * stride + j] = src[2 * jj];
        zIm[k * stride + j] = src[2 * jj + 1];
      }
    }
    kernels::batchDitStages(zRe, zIm, stride, h, halfPlan_->twRe_.data(),
                            halfPlan_->twIm_.data());
    for (std::size_t j = 0; j < w; ++j) {
      auto& dst = out[c + j];
      dst.resize(h + 1);
      const double z0r = zRe[j], z0i = zIm[j];
      dst[0] = Complex(z0r + z0i, 0.0);
      dst[h] = Complex(z0r - z0i, 0.0);
      for (std::size_t k = 1; k < h; ++k) {
        const double zkr = zRe[k * stride + j], zki = zIm[k * stride + j];
        const double znr = zRe[(h - k) * stride + j];
        const double zni = zIm[(h - k) * stride + j];
        const double er = 0.5 * (zkr + znr);
        const double ei = 0.5 * (zki - zni);
        const double odr = 0.5 * (zki + zni);
        const double odi = -0.5 * (zkr - znr);
        dst[k] = Complex(er + odr * wr[k] - odi * wi[k],
                         ei + odr * wi[k] + odi * wr[k]);
      }
    }
    transformCounter().inc(w);
    batchedCounter().inc(w);
  }
  return out;
}

std::vector<std::vector<double>> FftPlan::irfftBatch(
    std::span<const std::vector<Complex>> halfSpectra) const {
  UNIQ_REQUIRE(pow2_, "irfftBatch needs a power-of-two plan");
  const std::size_t n = n_;
  std::vector<std::vector<double>> out(halfSpectra.size());
  if (n == 1) {
    for (std::size_t j = 0; j < halfSpectra.size(); ++j) {
      UNIQ_REQUIRE(halfSpectra[j].size() == 1,
                   "batch half spectrum length does not match plan");
      out[j] = {halfSpectra[j][0].real()};
    }
    transformCounter().inc(halfSpectra.size());
    batchedCounter().inc(halfSpectra.size());
    return out;
  }
  const std::size_t h = n / 2;
  const double* wr = twRe_.data() + (h - 1);
  const double* wi = invTwIm_.data() + (h - 1);
  auto& arena = common::simdScratch();
  for (std::size_t c = 0; c < halfSpectra.size(); c += kBatchWidth) {
    const std::size_t w = std::min(kBatchWidth, halfSpectra.size() - c);
    const std::size_t stride = batchStride(w);
    common::ArenaScope scope(arena);
    double* zRe = arena.allocDoubles(2 * h * stride);
    double* zIm = zRe + h * stride;
    if (w < stride) std::fill(zRe, zRe + 2 * h * stride, 0.0);
    const auto& rev = halfPlan_->bitrev_;
    for (std::size_t j = 0; j < w; ++j) {
      UNIQ_REQUIRE(halfSpectra[c + j].size() == h + 1,
                   "batch half spectrum length does not match plan");
      const auto* src = halfSpectra[c + j].data();
      // Natural-order z value for index k scatters to its bit-reversed row
      // (bit reversal is an involution).
      for (std::size_t k = 0; k < h; ++k) {
        const std::size_t nk = h - k;
        const double xkr = src[k].real(), xki = src[k].imag();
        const double xnr = src[nk].real(), xni = -src[nk].imag();
        const double er = 0.5 * (xkr + xnr), ei = 0.5 * (xki + xni);
        const double dr = 0.5 * (xkr - xnr), di = 0.5 * (xki - xni);
        const double odr = dr * wr[k] - di * wi[k];
        const double odi = dr * wi[k] + di * wr[k];
        zRe[rev[k] * stride + j] = er - odi;
        zIm[rev[k] * stride + j] = ei + odr;
      }
    }
    kernels::batchDitStages(zRe, zIm, stride, h, halfPlan_->twRe_.data(),
                            halfPlan_->invTwIm_.data());
    const double s = 1.0 / static_cast<double>(h);
    for (std::size_t j = 0; j < w; ++j) {
      auto& dst = out[c + j];
      dst.resize(n);
      for (std::size_t k = 0; k < h; ++k) {
        dst[2 * k] = zRe[k * stride + j] * s;
        dst[2 * k + 1] = zIm[k * stride + j] * s;
      }
    }
    transformCounter().inc(w);
    batchedCounter().inc(w);
  }
  return out;
}

std::shared_ptr<const FftPlan> fftPlan(std::size_t n) {
  UNIQ_REQUIRE(n >= 1, "fftPlan needs n >= 1");
  {
    std::lock_guard<std::mutex> lock(cacheMutex());
    auto& cache = planCache();
    const auto it = cache.find(n);
    if (it != cache.end()) {
      planHitCounter().inc();
      return it->second;
    }
  }
  planMissCounter().inc();
  // Build outside the lock: construction may recurse into fftPlan() for the
  // half-length / convolution-length sub-plans.
  auto plan = std::make_shared<const FftPlan>(n);
  std::lock_guard<std::mutex> lock(cacheMutex());
  auto& cache = planCache();
  if (cache.size() >= kMaxCachedPlans) cache.erase(cache.begin());
  const auto [it, inserted] = cache.emplace(n, std::move(plan));
  cachedPlansGauge().set(static_cast<double>(cache.size()));
  return it->second;
}

FftStats fftStats() {
  FftStats s;
  s.planHits = planHitCounter().value();
  s.planMisses = planMissCounter().value();
  s.transforms = transformCounter().value();
  s.batchedTransforms = batchedCounter().value();
  std::lock_guard<std::mutex> lock(cacheMutex());
  s.cachedPlans = planCache().size();
  return s;
}

void resetFftStats() {
  planHitCounter().reset();
  planMissCounter().reset();
  transformCounter().reset();
  batchedCounter().reset();
}

std::vector<Complex> rfft(std::span<const double> input) {
  UNIQ_REQUIRE(!input.empty(), "rfft of empty signal");
  UNIQ_REQUIRE(isPowerOfTwo(input.size()),
               "rfft needs a power-of-two length");
  return fftPlan(input.size())->rfft(input);
}

std::vector<double> irfft(std::span<const Complex> halfSpectrum,
                          std::size_t n) {
  UNIQ_REQUIRE(isPowerOfTwo(n), "irfft needs a power-of-two length");
  return fftPlan(n)->irfft(halfSpectrum);
}

}  // namespace uniq::dsp
