#include "dsp/biquad.h"

#include <cmath>
#include <complex>

#include "common/constants.h"
#include "common/error.h"

namespace uniq::dsp {

Biquad::Biquad(double b0, double b1, double b2, double a1, double a2)
    : b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}

Biquad Biquad::lowpass(double cutoffHz, double q, double sampleRate) {
  UNIQ_REQUIRE(cutoffHz > 0 && cutoffHz < sampleRate / 2, "bad cutoff");
  UNIQ_REQUIRE(q > 0, "bad Q");
  const double w = kTwoPi * cutoffHz / sampleRate;
  const double alpha = std::sin(w) / (2 * q);
  const double c = std::cos(w);
  const double a0 = 1 + alpha;
  return Biquad((1 - c) / 2 / a0, (1 - c) / a0, (1 - c) / 2 / a0,
                -2 * c / a0, (1 - alpha) / a0);
}

Biquad Biquad::highpass(double cutoffHz, double q, double sampleRate) {
  UNIQ_REQUIRE(cutoffHz > 0 && cutoffHz < sampleRate / 2, "bad cutoff");
  UNIQ_REQUIRE(q > 0, "bad Q");
  const double w = kTwoPi * cutoffHz / sampleRate;
  const double alpha = std::sin(w) / (2 * q);
  const double c = std::cos(w);
  const double a0 = 1 + alpha;
  return Biquad((1 + c) / 2 / a0, -(1 + c) / a0, (1 + c) / 2 / a0,
                -2 * c / a0, (1 - alpha) / a0);
}

Biquad Biquad::bandpass(double centerHz, double q, double sampleRate) {
  UNIQ_REQUIRE(centerHz > 0 && centerHz < sampleRate / 2, "bad center");
  UNIQ_REQUIRE(q > 0, "bad Q");
  const double w = kTwoPi * centerHz / sampleRate;
  const double alpha = std::sin(w) / (2 * q);
  const double c = std::cos(w);
  const double a0 = 1 + alpha;
  return Biquad(alpha / a0, 0.0, -alpha / a0, -2 * c / a0, (1 - alpha) / a0);
}

double Biquad::step(double x) {
  const double y = b0_ * x + z1_;
  z1_ = b1_ * x - a1_ * y + z2_;
  z2_ = b2_ * x - a2_ * y;
  return y;
}

std::vector<double> Biquad::process(std::span<const double> input) {
  std::vector<double> out(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) out[i] = step(input[i]);
  return out;
}

void Biquad::reset() { z1_ = z2_ = 0.0; }

double Biquad::magnitudeAt(double freqHz, double sampleRate) const {
  return std::abs(responseAt(freqHz, sampleRate));
}

std::complex<double> Biquad::responseAt(double freqHz,
                                        double sampleRate) const {
  const double w = kTwoPi * freqHz / sampleRate;
  const std::complex<double> z = std::polar(1.0, -w);
  const std::complex<double> num = b0_ + b1_ * z + b2_ * z * z;
  const std::complex<double> den = 1.0 + a1_ * z + a2_ * z * z;
  return num / den;
}

void BiquadCascade::add(Biquad section) { sections_.push_back(section); }

std::vector<double> BiquadCascade::process(std::span<const double> input) {
  std::vector<double> buf(input.begin(), input.end());
  for (auto& s : sections_) buf = s.process(buf);
  return buf;
}

void BiquadCascade::reset() {
  for (auto& s : sections_) s.reset();
}

}  // namespace uniq::dsp
