#include "dsp/resample.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"

namespace uniq::dsp {

namespace {

double blackman(double u) {
  return 0.42 - 0.5 * std::cos(kTwoPi * u) + 0.08 * std::cos(2 * kTwoPi * u);
}

}  // namespace

std::vector<double> resample(std::span<const double> input, double inputRate,
                             double outputRate, int halfWidth) {
  UNIQ_REQUIRE(!input.empty(), "resample of empty signal");
  UNIQ_REQUIRE(inputRate > 0 && outputRate > 0, "rates must be positive");
  UNIQ_REQUIRE(halfWidth >= 2, "halfWidth must be >= 2");
  const double ratio = outputRate / inputRate;
  const auto outLen = static_cast<std::size_t>(
      std::floor(static_cast<double>(input.size()) * ratio));
  UNIQ_REQUIRE(outLen >= 1, "output would be empty");
  // When downsampling, cut the sinc at the output Nyquist (fc < 1 in units
  // of the input Nyquist) and widen the kernel correspondingly.
  const double fc = std::min(1.0, ratio);
  const int w = static_cast<int>(std::ceil(halfWidth / fc));
  std::vector<double> out(outLen, 0.0);
  for (std::size_t i = 0; i < outLen; ++i) {
    const double srcPos = static_cast<double>(i) / ratio;
    const long lo = static_cast<long>(std::ceil(srcPos)) - w;
    const long hi = static_cast<long>(std::floor(srcPos)) + w;
    double acc = 0.0;
    for (long k = std::max(lo, 0L);
         k <= std::min(hi, static_cast<long>(input.size()) - 1); ++k) {
      const double x = (srcPos - static_cast<double>(k)) * fc;
      double s;
      if (std::fabs(x) < 1e-12) {
        s = 1.0;
      } else {
        s = std::sin(kPi * x) / (kPi * x);
      }
      const double u = (srcPos - static_cast<double>(k) + w) / (2.0 * w);
      acc += input[static_cast<std::size_t>(k)] * s * fc *
             blackman(std::clamp(u, 0.0, 1.0));
    }
    out[i] = acc;
  }
  return out;
}

std::vector<double> upsampleInteger(std::span<const double> input, int factor,
                                    int halfWidth) {
  UNIQ_REQUIRE(factor >= 1, "factor must be >= 1");
  return resample(input, 1.0, static_cast<double>(factor), halfWidth);
}

}  // namespace uniq::dsp
