#pragma once

#include <complex>
#include <span>
#include <vector>

namespace uniq::dsp {

/// Second-order IIR section (RBJ audio-EQ-cookbook designs).
class Biquad {
 public:
  /// Direct coefficient construction (normalized so a0 == 1).
  Biquad(double b0, double b1, double b2, double a1, double a2);

  static Biquad lowpass(double cutoffHz, double q, double sampleRate);
  static Biquad highpass(double cutoffHz, double q, double sampleRate);
  static Biquad bandpass(double centerHz, double q, double sampleRate);

  /// Stream one sample through the filter (direct form II transposed).
  double step(double x);

  /// Filter a whole buffer (stateful; call reset() between signals).
  std::vector<double> process(std::span<const double> input);

  /// Clear the internal delay line.
  void reset();

  /// Complex magnitude response at frequency f (Hz).
  double magnitudeAt(double freqHz, double sampleRate) const;

  /// Complex frequency response at f (Hz).
  std::complex<double> responseAt(double freqHz, double sampleRate) const;

 private:
  double b0_, b1_, b2_, a1_, a2_;
  double z1_ = 0.0, z2_ = 0.0;
};

/// Cascade of biquad sections applied in sequence.
class BiquadCascade {
 public:
  void add(Biquad section);
  std::vector<double> process(std::span<const double> input);
  void reset();

 private:
  std::vector<Biquad> sections_;
};

}  // namespace uniq::dsp
