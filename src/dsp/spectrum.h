#pragma once

#include <span>
#include <vector>

#include "dsp/fft.h"

namespace uniq::dsp {

/// Magnitude of each spectral bin.
std::vector<double> magnitudeSpectrum(std::span<const Complex> spectrum);

/// Magnitude in dB (20*log10), floored at -300 dB.
std::vector<double> magnitudeSpectrumDb(std::span<const Complex> spectrum);

/// Center frequency of bin k for an N-point FFT at `sampleRate`.
double binFrequency(std::size_t bin, std::size_t fftSize, double sampleRate);

/// Nearest bin index for frequency f.
std::size_t frequencyToBin(double freqHz, std::size_t fftSize,
                           double sampleRate);

/// Average magnitude (linear) of `spectrum` over [fLo, fHi] Hz.
double bandAverageMagnitude(std::span<const Complex> spectrum,
                            double sampleRate, double fLo, double fHi);

/// Apply a complex frequency response to a time-domain signal (zero-padded
/// FFT filtering; `response` is resampled onto the FFT grid by nearest bin
/// if sizes differ). Output has the same length as the input plus the
/// settling tail up to `tailSamples`.
std::vector<double> applyFrequencyResponse(std::span<const double> signal,
                                           std::span<const Complex> response,
                                           std::size_t tailSamples = 0);

}  // namespace uniq::dsp
