#include "dsp/correlation.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "dsp/fft.h"
#include "dsp/fft_plan.h"
#include "dsp/kernels/kernels.h"

namespace uniq::dsp {

namespace {

double l2Norm(std::span<const double> x) {
  return std::sqrt(kernels::sumSquares(x.data(), x.size()));
}

/// Parabolic interpolation around a discrete argmax. Returns the refined
/// offset in [-0.5, 0.5] and the interpolated peak value.
struct ParabolicFit {
  double offset;
  double value;
};

ParabolicFit parabolicRefine(double ym1, double y0, double yp1) {
  const double denom = ym1 - 2 * y0 + yp1;
  if (std::fabs(denom) < 1e-30) return {0.0, y0};
  double d = 0.5 * (ym1 - yp1) / denom;
  d = std::clamp(d, -0.5, 0.5);
  const double value = y0 - 0.25 * (ym1 - yp1) * d;
  return {d, value};
}

CorrelationPeak peakSearch(const std::vector<double>& c, std::size_t bSize,
                           double maxLagSamples) {
  const auto lagOf = [&](std::size_t k) {
    return static_cast<double>(k) - static_cast<double>(bSize - 1);
  };
  std::size_t best = 0;
  bool found = false;
  for (std::size_t k = 0; k < c.size(); ++k) {
    if (maxLagSamples > 0.0 && std::fabs(lagOf(k)) > maxLagSamples) continue;
    if (!found || c[k] > c[best]) {
      best = k;
      found = true;
    }
  }
  UNIQ_CHECK(found, "no correlation lag within the allowed range");
  CorrelationPeak peak;
  if (best > 0 && best + 1 < c.size()) {
    const auto fit = parabolicRefine(c[best - 1], c[best], c[best + 1]);
    peak.lag = lagOf(best) + fit.offset;
    peak.value = fit.value;
  } else {
    peak.lag = lagOf(best);
    peak.value = c[best];
  }
  return peak;
}

}  // namespace

std::vector<double> crossCorrelate(std::span<const double> a,
                                   std::span<const double> b) {
  UNIQ_REQUIRE(!a.empty() && !b.empty(), "cross-correlation of empty signal");
  // xcorr(a, b)[lag] = conv(a, reverse(b))[lag + b.size()-1]
  const std::size_t outLen = a.size() + b.size() - 1;
  const std::size_t n = nextPowerOfTwo(outLen);
  const auto plan = fftPlan(n);
  std::vector<double> pa(n, 0.0);
  std::vector<double> pb(n, 0.0);
  std::copy(a.begin(), a.end(), pa.begin());
  std::copy(b.begin(), b.end(), pb.begin());
  auto fa = plan->rfft(pa);
  const auto fb = plan->rfft(pb);
  kernels::cmulConjInterleaved(fa.data(), fb.data(), fa.size());
  const auto r = plan->irfft(fa);
  // IFFT of A*conj(B) yields r[p] = sum_t a[t+p]*b[t] = c[-p] under the
  // header convention c[lag] = sum_t a[t]*b[t+lag]; unwrap accordingly into
  // lags [-(b-1) .. a-1]. c's true support is [-(a-1), b-1]; lags outside
  // it are zero by definition (reading the circular buffer there would
  // alias the opposite tail).
  std::vector<double> out(outLen);
  const std::size_t nb = b.size() - 1;
  const long lagLo = -(static_cast<long>(a.size()) - 1);
  const long lagHi = static_cast<long>(b.size()) - 1;
  for (std::size_t k = 0; k < outLen; ++k) {
    const long lag = static_cast<long>(k) - static_cast<long>(nb);
    if (lag < lagLo || lag > lagHi) {
      out[k] = 0.0;
      continue;
    }
    const long p = -lag;
    const std::size_t idx = p >= 0 ? static_cast<std::size_t>(p)
                                   : n - static_cast<std::size_t>(-p);
    out[k] = r[idx];
  }
  return out;
}

CorrelationPeak normalizedCorrelationPeak(std::span<const double> a,
                                          std::span<const double> b) {
  return normalizedCorrelationPeak(a, b, 0.0);
}

CorrelationPeak normalizedCorrelationPeak(std::span<const double> a,
                                          std::span<const double> b,
                                          double maxLagSamples) {
  const double na = l2Norm(a);
  const double nb = l2Norm(b);
  if (na < 1e-30 || nb < 1e-30) return {0.0, 0.0};
  auto c = crossCorrelate(a, b);
  const double scale = 1.0 / (na * nb);
  for (auto& v : c) v *= scale;
  return peakSearch(c, b.size(), maxLagSamples);
}

double pearson(std::span<const double> a, std::span<const double> b) {
  UNIQ_REQUIRE(a.size() == b.size() && !a.empty(),
               "pearson needs equal non-empty sizes");
  const double n = static_cast<double>(a.size());
  const double ma = kernels::sum(a.data(), a.size()) / n;
  const double mb = kernels::sum(b.data(), b.size()) / n;
  double acc[3];
  kernels::pearsonAccum(a.data(), b.data(), a.size(), ma, mb, acc);
  const double sab = acc[0], saa = acc[1], sbb = acc[2];
  if (saa < 1e-30 || sbb < 1e-30) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

std::vector<double> gccPhat(std::span<const double> a,
                            std::span<const double> b) {
  UNIQ_REQUIRE(!a.empty() && !b.empty(), "gccPhat of empty signal");
  const std::size_t outLen = a.size() + b.size() - 1;
  const std::size_t n = nextPowerOfTwo(outLen);
  const auto plan = fftPlan(n);
  std::vector<double> pa(n, 0.0);
  std::vector<double> pb(n, 0.0);
  std::copy(a.begin(), a.end(), pa.begin());
  std::copy(b.begin(), b.end(), pb.begin());
  auto fa = plan->rfft(pa);
  const auto fb = plan->rfft(pb);
  for (std::size_t i = 0; i < fa.size(); ++i) {
    const Complex cross = fa[i] * std::conj(fb[i]);
    const double mag = std::abs(cross);
    fa[i] = mag > 1e-15 ? cross / mag : Complex(0, 0);
  }
  const auto r = plan->irfft(fa);
  std::vector<double> out(outLen);
  const std::size_t nb = b.size() - 1;
  const long lagLo = -(static_cast<long>(a.size()) - 1);
  const long lagHi = static_cast<long>(b.size()) - 1;
  for (std::size_t k = 0; k < outLen; ++k) {
    const long lag = static_cast<long>(k) - static_cast<long>(nb);
    if (lag < lagLo || lag > lagHi) {
      out[k] = 0.0;
      continue;
    }
    const long p = -lag;
    const std::size_t idx = p >= 0 ? static_cast<std::size_t>(p)
                                   : n - static_cast<std::size_t>(-p);
    out[k] = r[idx];
  }
  return out;
}

double estimateDelayGccPhat(std::span<const double> a,
                            std::span<const double> b,
                            double maxLagSamples) {
  auto c = gccPhat(a, b);
  const auto peak = peakSearch(c, b.size(), maxLagSamples);
  // xcorr(a,b) peaks at lag d when a[t] ~= b[t + d]; b lags a by d.
  return peak.lag;
}

}  // namespace uniq::dsp
