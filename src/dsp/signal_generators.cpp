#include "dsp/signal_generators.h"

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "dsp/biquad.h"
#include "dsp/window.h"

namespace uniq::dsp {

namespace {

void fadeEdges(std::vector<double>& s, std::size_t fadeLen) {
  const std::size_t n = s.size();
  fadeLen = std::min(fadeLen, n / 2);
  for (std::size_t i = 0; i < fadeLen; ++i) {
    const double g =
        0.5 * (1 - std::cos(kPi * static_cast<double>(i) /
                            static_cast<double>(fadeLen)));
    s[i] *= g;
    s[n - 1 - i] *= g;
  }
}

}  // namespace

std::vector<double> linearChirp(double f0, double f1, std::size_t samples,
                                double sampleRate, double amplitude) {
  UNIQ_REQUIRE(samples >= 2, "chirp needs >= 2 samples");
  UNIQ_REQUIRE(sampleRate > 0 && f0 >= 0 && f1 > 0, "bad chirp parameters");
  std::vector<double> s(samples);
  const double duration = static_cast<double>(samples) / sampleRate;
  const double k = (f1 - f0) / duration;
  for (std::size_t i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) / sampleRate;
    const double phase = kTwoPi * (f0 * t + 0.5 * k * t * t);
    s[i] = amplitude * std::sin(phase);
  }
  fadeEdges(s, samples / 16);
  return s;
}

std::vector<double> exponentialChirp(double f0, double f1, std::size_t samples,
                                     double sampleRate, double amplitude) {
  UNIQ_REQUIRE(samples >= 2, "chirp needs >= 2 samples");
  UNIQ_REQUIRE(f0 > 0 && f1 > f0, "exponential chirp needs 0 < f0 < f1");
  std::vector<double> s(samples);
  const double duration = static_cast<double>(samples) / sampleRate;
  const double logRatio = std::log(f1 / f0);
  for (std::size_t i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) / sampleRate;
    const double phase =
        kTwoPi * f0 * duration / logRatio * (std::exp(t / duration * logRatio) - 1.0);
    s[i] = amplitude * std::sin(phase);
  }
  fadeEdges(s, samples / 16);
  return s;
}

std::vector<double> whiteNoise(std::size_t samples, Pcg32& rng,
                               double amplitude) {
  std::vector<double> s(samples);
  for (auto& v : s) v = amplitude * rng.gaussian();
  return s;
}

std::vector<double> speechLike(std::size_t samples, double sampleRate,
                               Pcg32& rng) {
  UNIQ_REQUIRE(sampleRate > 2000, "sample rate too low for speech model");
  std::vector<double> s(samples, 0.0);
  const double f0 = rng.uniform(100.0, 160.0);  // fundamental pitch
  // Glottal pulse train with slight jitter, 12 harmonics, 1/k rolloff.
  double phase = 0.0;
  std::vector<double> raw(samples, 0.0);
  for (std::size_t i = 0; i < samples; ++i) {
    const double jitter = 1.0 + 0.02 * std::sin(kTwoPi * 4.3 *
                                                static_cast<double>(i) /
                                                sampleRate);
    phase += kTwoPi * f0 * jitter / sampleRate;
    double v = 0.0;
    for (int k = 1; k <= 12; ++k)
      v += std::sin(static_cast<double>(k) * phase) / static_cast<double>(k);
    raw[i] = v;
  }
  // Formant resonances (bandpass cascade blend).
  const double formants[3] = {rng.uniform(500, 900), rng.uniform(1100, 1700),
                              rng.uniform(2300, 3000)};
  std::vector<double> shaped(samples, 0.0);
  for (double fc : formants) {
    Biquad bp = Biquad::bandpass(fc, 2.0, sampleRate);
    auto band = bp.process(raw);
    for (std::size_t i = 0; i < samples; ++i) shaped[i] += band[i];
  }
  // Syllabic envelope: ~4 Hz on/off modulation with noise-driven variation.
  for (std::size_t i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) / sampleRate;
    const double env =
        std::max(0.0, std::sin(kTwoPi * 3.7 * t) + 0.3) / 1.3;
    s[i] = shaped[i] * env;
  }
  normalizeRms(s, 0.25);
  return s;
}

std::vector<double> musicLike(std::size_t samples, double sampleRate,
                              Pcg32& rng) {
  UNIQ_REQUIRE(sampleRate > 2000, "sample rate too low for music model");
  std::vector<double> s(samples, 0.0);
  // Pentatonic-ish note pool.
  const double base = 220.0;
  const double ratios[5] = {1.0, 9.0 / 8, 5.0 / 4, 3.0 / 2, 5.0 / 3};
  const double noteDur = 0.08;  // seconds per note event
  const auto noteSamples = static_cast<std::size_t>(noteDur * sampleRate);
  for (std::size_t start = 0; start < samples; start += noteSamples) {
    const double f =
        base * ratios[rng.nextBounded(5)] * std::pow(2.0, rng.nextBounded(3));
    const std::size_t len = std::min(noteSamples * 2, samples - start);
    for (std::size_t i = 0; i < len; ++i) {
      const double t = static_cast<double>(i) / sampleRate;
      const double env = std::exp(-t / 0.05);
      double v = 0.0;
      for (int k = 1; k <= 6; ++k)
        v += std::sin(kTwoPi * f * static_cast<double>(k) * t) /
             static_cast<double>(k * k);
      s[start + i] += env * v;
    }
  }
  normalizeRms(s, 0.25);
  return s;
}

double rms(const std::vector<double>& signal) {
  if (signal.empty()) return 0.0;
  double acc = 0.0;
  for (double v : signal) acc += v * v;
  return std::sqrt(acc / static_cast<double>(signal.size()));
}

void normalizeRms(std::vector<double>& signal, double targetRms) {
  const double r = rms(signal);
  if (r < 1e-30) return;
  const double g = targetRms / r;
  for (auto& v : signal) v *= g;
}

void addNoiseSnrDb(std::vector<double>& signal, double snrDb, Pcg32& rng) {
  const double r = rms(signal);
  if (r < 1e-30) return;
  const double noiseRms = r * std::pow(10.0, -snrDb / 20.0);
  for (auto& v : signal) v += rng.gaussian(0.0, noiseRms);
}

}  // namespace uniq::dsp
