#pragma once

#include <span>
#include <vector>

namespace uniq::dsp {

/// Direct (time-domain) full linear convolution. Output length is
/// a.size() + b.size() - 1. O(N*M); use for short kernels and as the
/// reference implementation in tests.
std::vector<double> convolveDirect(std::span<const double> a,
                                   std::span<const double> b);

/// FFT-based full linear convolution. Identical output to convolveDirect up
/// to floating-point noise.
std::vector<double> convolveFft(std::span<const double> a,
                                std::span<const double> b);

/// Overlap-add convolution for long signals with moderate-size kernels.
/// blockSize is the input partition length (a power of two is chosen
/// internally for the FFTs).
std::vector<double> convolveOverlapAdd(std::span<const double> signal,
                                       std::span<const double> kernel,
                                       std::size_t blockSize = 4096);

/// Shorter-signal length at or below which convolve() picks the direct
/// O(N*M) kernel over the FFT path. Chosen from the crossover of
/// BM_ConvolveDirectSmall vs BM_ConvolveFftSmall in bench/perf_micro.cpp,
/// re-measured after the SIMD kernel layer landed (3-rep medians on a
/// 4096-sample signal): direct still wins at 64 taps (102us vs 130us) and
/// FFT wins from 128 (178us vs 128us) — the vector kernels sped both paths
/// up by a similar factor, so the crossover stayed between 64 and 128 and
/// the pre-SIMD value stands. Re-run those benches (and regenerate
/// BENCH_perf.json) before changing it.
inline constexpr std::size_t kDirectConvolveCutoff = 64;

/// Size-adaptive convolution: direct for tiny kernels (shorter input at or
/// below kDirectConvolveCutoff taps), FFT otherwise.
std::vector<double> convolve(std::span<const double> a,
                             std::span<const double> b);

}  // namespace uniq::dsp
