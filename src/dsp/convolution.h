#pragma once

#include <span>
#include <vector>

namespace uniq::dsp {

/// Direct (time-domain) full linear convolution. Output length is
/// a.size() + b.size() - 1. O(N*M); use for short kernels and as the
/// reference implementation in tests.
std::vector<double> convolveDirect(std::span<const double> a,
                                   std::span<const double> b);

/// FFT-based full linear convolution. Identical output to convolveDirect up
/// to floating-point noise.
std::vector<double> convolveFft(std::span<const double> a,
                                std::span<const double> b);

/// Overlap-add convolution for long signals with moderate-size kernels.
/// blockSize is the input partition length (a power of two is chosen
/// internally for the FFTs).
std::vector<double> convolveOverlapAdd(std::span<const double> signal,
                                       std::span<const double> kernel,
                                       std::size_t blockSize = 4096);

/// Size-adaptive convolution: direct for tiny kernels, FFT otherwise.
std::vector<double> convolve(std::span<const double> a,
                             std::span<const double> b);

}  // namespace uniq::dsp
