#include "dsp/window.h"

#include <cmath>

#include "common/constants.h"
#include "common/error.h"

namespace uniq::dsp {

std::vector<double> makeWindow(WindowType type, std::size_t n,
                               double tukeyAlpha) {
  UNIQ_REQUIRE(n >= 1, "window length must be >= 1");
  std::vector<double> w(n, 1.0);
  if (n == 1) return w;
  const double nm1 = static_cast<double>(n - 1);
  switch (type) {
    case WindowType::kRectangular:
      break;
    case WindowType::kHann:
      for (std::size_t i = 0; i < n; ++i)
        w[i] = 0.5 - 0.5 * std::cos(kTwoPi * static_cast<double>(i) / nm1);
      break;
    case WindowType::kHamming:
      for (std::size_t i = 0; i < n; ++i)
        w[i] = 0.54 - 0.46 * std::cos(kTwoPi * static_cast<double>(i) / nm1);
      break;
    case WindowType::kBlackman:
      for (std::size_t i = 0; i < n; ++i) {
        const double x = kTwoPi * static_cast<double>(i) / nm1;
        w[i] = 0.42 - 0.5 * std::cos(x) + 0.08 * std::cos(2 * x);
      }
      break;
    case WindowType::kTukey: {
      UNIQ_REQUIRE(tukeyAlpha >= 0.0 && tukeyAlpha <= 1.0,
                   "tukey alpha must be in [0,1]");
      const double a = tukeyAlpha;
      if (a <= 0.0) break;  // rectangular
      for (std::size_t i = 0; i < n; ++i) {
        const double x = static_cast<double>(i) / nm1;
        if (x < a / 2) {
          w[i] = 0.5 * (1 + std::cos(kPi * (2 * x / a - 1)));
        } else if (x > 1 - a / 2) {
          w[i] = 0.5 * (1 + std::cos(kPi * (2 * x / a - 2 / a + 1)));
        } else {
          w[i] = 1.0;
        }
      }
      break;
    }
  }
  return w;
}

void applyWindow(std::span<double> signal, std::span<const double> window) {
  UNIQ_REQUIRE(signal.size() == window.size(),
               "signal and window sizes differ");
  for (std::size_t i = 0; i < signal.size(); ++i) signal[i] *= window[i];
}

}  // namespace uniq::dsp
