#pragma once

#include <span>
#include <vector>

namespace uniq::dsp {

/// Full cross-correlation c[k] = sum_t a[t] * b[t + lag], for
/// lag in [-(b.size()-1), a.size()-1]. Index k maps to lag via
/// lag = k - (b.size()-1). FFT-based.
std::vector<double> crossCorrelate(std::span<const double> a,
                                   std::span<const double> b);

/// Result of a peak search over cross-correlation lags.
struct CorrelationPeak {
  double lag = 0.0;    ///< lag in samples (sub-sample, parabolic refined)
  double value = 0.0;  ///< correlation value at the (interpolated) peak
};

/// Normalized cross-correlation peak: max over lags of
/// xcorr(a,b) / (||a|| * ||b||). Value lies in [-1, 1] for same-length
/// signals; this is the similarity measure the paper uses for comparing
/// HRIRs and pinna responses (Section 2, Figure 2; Section 5, Figure 18).
CorrelationPeak normalizedCorrelationPeak(std::span<const double> a,
                                          std::span<const double> b);

/// Same as normalizedCorrelationPeak but restricting the lag search to
/// |lag| <= maxLagSamples. Useful when signals are pre-aligned and large
/// lags would be spurious.
CorrelationPeak normalizedCorrelationPeak(std::span<const double> a,
                                          std::span<const double> b,
                                          double maxLagSamples);

/// Pearson correlation of two equal-length signals at zero lag.
double pearson(std::span<const double> a, std::span<const double> b);

/// GCC-PHAT cross-correlation: phase-transform-weighted generalized cross
/// correlation. Returns the correlation sequence with the same lag layout as
/// crossCorrelate. Robust delay estimation for wideband signals.
std::vector<double> gccPhat(std::span<const double> a,
                            std::span<const double> b);

/// Time-difference estimate (in samples, sub-sample accurate) of b relative
/// to a using GCC-PHAT. Positive means b lags a.
double estimateDelayGccPhat(std::span<const double> a,
                            std::span<const double> b,
                            double maxLagSamples = 0.0);

}  // namespace uniq::dsp
