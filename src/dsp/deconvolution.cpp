#include "dsp/deconvolution.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace uniq::dsp {

std::vector<Complex> regularizedSpectralDivide(
    std::span<const Complex> numerator, std::span<const Complex> denominator,
    double relativeRegularization) {
  UNIQ_REQUIRE(numerator.size() == denominator.size(),
               "spectra must have equal length");
  UNIQ_REQUIRE(relativeRegularization > 0.0,
               "regularization must be positive");
  double maxPow = 0.0;
  for (const auto& d : denominator) maxPow = std::max(maxPow, std::norm(d));
  const double eps = relativeRegularization * std::max(maxPow, 1e-300);
  std::vector<Complex> out(numerator.size());
  for (std::size_t i = 0; i < numerator.size(); ++i) {
    out[i] = numerator[i] * std::conj(denominator[i]) /
             (std::norm(denominator[i]) + eps);
  }
  return out;
}

std::vector<double> deconvolve(std::span<const double> received,
                               std::span<const double> source,
                               const DeconvolutionOptions& opts) {
  UNIQ_REQUIRE(!received.empty() && !source.empty(),
               "deconvolve of empty signal");
  const std::size_t n = nextPowerOfTwo(received.size() + source.size());
  std::vector<Complex> fy(n, Complex(0, 0));
  std::vector<Complex> fx(n, Complex(0, 0));
  for (std::size_t i = 0; i < received.size(); ++i)
    fy[i] = Complex(received[i], 0);
  for (std::size_t i = 0; i < source.size(); ++i)
    fx[i] = Complex(source[i], 0);
  fftPow2InPlace(fy, false);
  fftPow2InPlace(fx, false);
  auto fh =
      regularizedSpectralDivide(fy, fx, opts.relativeRegularization);
  fftPow2InPlace(fh, true);
  std::size_t keep = opts.responseLength == 0
                         ? received.size()
                         : std::min(opts.responseLength, n);
  std::vector<double> h(keep);
  for (std::size_t i = 0; i < keep; ++i) h[i] = fh[i].real();
  return h;
}

}  // namespace uniq::dsp
