#include "dsp/deconvolution.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "dsp/fft_plan.h"
#include "dsp/kernels/kernels.h"

namespace uniq::dsp {

std::vector<Complex> regularizedSpectralDivide(
    std::span<const Complex> numerator, std::span<const Complex> denominator,
    double relativeRegularization) {
  UNIQ_REQUIRE(numerator.size() == denominator.size(),
               "spectra must have equal length");
  UNIQ_REQUIRE(relativeRegularization > 0.0,
               "regularization must be positive");
  const double maxPow = kernels::maxNorm(denominator.data(),
                                         denominator.size());
  const double eps = relativeRegularization * std::max(maxPow, 1e-300);
  std::vector<Complex> out(numerator.size());
  kernels::spectralDivide(numerator.data(), denominator.data(), eps,
                          out.data(), out.size());
  return out;
}

std::vector<double> deconvolve(std::span<const double> received,
                               std::span<const double> source,
                               const DeconvolutionOptions& opts) {
  UNIQ_REQUIRE(!received.empty() && !source.empty(),
               "deconvolve of empty signal");
  const std::size_t n = nextPowerOfTwo(received.size() + source.size());
  const auto plan = fftPlan(n);
  // Both inputs are real: divide the half spectra only. The regularization
  // floor is unchanged because |X(f)|^2 attains its maximum inside the half
  // spectrum of a conjugate-symmetric transform.
  std::vector<double> py(n, 0.0);
  std::vector<double> px(n, 0.0);
  std::copy(received.begin(), received.end(), py.begin());
  std::copy(source.begin(), source.end(), px.begin());
  const auto fy = plan->rfft(py);
  const auto fx = plan->rfft(px);
  const auto fh =
      regularizedSpectralDivide(fy, fx, opts.relativeRegularization);
  const auto time = plan->irfft(fh);
  std::size_t keep = opts.responseLength == 0
                         ? received.size()
                         : std::min(opts.responseLength, n);
  std::vector<double> h(keep);
  for (std::size_t i = 0; i < keep; ++i) h[i] = time[i];
  return h;
}

}  // namespace uniq::dsp
