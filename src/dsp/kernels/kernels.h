#pragma once

#include <complex>
#include <cstddef>
#include <string>

namespace uniq::dsp::kernels {

/// Instruction-set tier the kernel layer can run on. kAuto is only a
/// request value for overrides; the resolved tier is always a concrete ISA.
enum class Isa { kScalar, kAvx2 };

/// Lowercase name of an ISA tier ("scalar" / "avx2").
const char* isaName(Isa isa);

/// The ISA tier the dispatcher resolved for this process. Resolution
/// happens once, on first use: AVX2+FMA when the build enabled UNIQ_SIMD,
/// the CPU reports both features, and the UNIQ_SIMD environment variable is
/// not set to "scalar"; portable scalar otherwise. The result is exported
/// to the metrics registry as the gauge "kernels.avx2" and the counter
/// "kernels.dispatch.<isa>".
Isa activeIsa();

/// True when this binary contains the AVX2 kernel translation unit (i.e.
/// was configured with UNIQ_SIMD=ON and the compiler supported it).
bool avx2Compiled();

/// Test hook: force a specific tier (kScalar is always valid; kAvx2 only
/// when avx2Compiled() and the CPU supports it — returns false and leaves
/// dispatch unchanged otherwise). Passing activeIsa()'s natural resolution
/// back restores default behaviour. Not thread-safe against concurrent
/// kernel calls; intended for single-threaded test setup.
bool setIsaOverride(Isa isa);

// ---------------------------------------------------------------------------
// FFT butterfly kernels over split re/im (SoA) lanes.
//
// Layout contract shared by FftPlan and the kernels:
//  - `re` and `im` are n-element arrays (64-byte aligned, n a power of two).
//  - Packed per-stage twiddle tables concatenate the len = 4, 8, ..., n
//    stage factors w_len^k = exp(-2*pi*i*k/len), k < len/2; the stage for
//    `len` starts at offset len/2 - 2 (n - 2 entries total). The len == 2
//    stage is twiddle-free and handled inside the kernels; keeping the
//    len == 4 stage in the tables lets one generic vector loop cover every
//    multiplying stage, and its exact 0/±1 factors cost no precision.
//    Inverse transforms pass the conjugate tables; the 1/n scaling stays
//    with the caller.
// ---------------------------------------------------------------------------

/// Decimation-in-time butterfly cascade: input in bit-reversed order,
/// output in natural order. Runs stages len = 2, 4, then 8..n from the
/// packed tables.
void ditStages(double* re, double* im, std::size_t n, const double* stageTwRe,
               const double* stageTwIm);

/// As ditStages but skipping the len == 2 stage (the caller fused it into
/// its gather/permutation pass).
void ditStagesFrom4(double* re, double* im, std::size_t n,
                    const double* stageTwRe, const double* stageTwIm);

/// Decimation-in-frequency cascade: natural-order input, bit-reversed
/// output. Same packed tables as ditStages (stages run n..8, then 4, 2).
/// Together with ditStages this gives permutation-free convolution:
/// DIF forward -> pointwise multiply in bit-reversed order -> DIT inverse.
void difStages(double* re, double* im, std::size_t n, const double* stageTwRe,
               const double* stageTwIm);

/// Batched butterfly cascade over batch-interleaved split lanes: element k
/// of batch member j lives at [k * stride + j], stride >= batch width and a
/// multiple of 8. Twiddles broadcast across the batch, so every butterfly
/// is a full-width vector op with contiguous loads. Packed tables here
/// include ALL stages len = 2..n (len/2 entries each, stage offset
/// len/2 - 1, n - 1 entries total), because the batch dimension vectorizes
/// the twiddle-free stages too. Input bit-reversed per batch member,
/// output natural.
void batchDitStages(double* re, double* im, std::size_t stride, std::size_t n,
                    const double* stageTwRe, const double* stageTwIm);

/// Multiply every element by `s` (inverse-FFT 1/n scaling).
void scaleInPlace(double* x, std::size_t n, double s);

// ---------------------------------------------------------------------------
// Complex pointwise kernels.
// ---------------------------------------------------------------------------

/// a[i] *= b[i] over split lanes (Bluestein kernel-spectrum multiply).
void cmulSplit(double* aRe, double* aIm, const double* bRe, const double* bIm,
               std::size_t n);

/// a[i] *= b[i] over interleaved std::complex<double> arrays (spectral
/// convolution).
void cmulInterleaved(std::complex<double>* a, const std::complex<double>* b,
                     std::size_t n);

/// a[i] *= conj(b[i]) (cross-correlation spectra).
void cmulConjInterleaved(std::complex<double>* a,
                         const std::complex<double>* b, std::size_t n);

/// out[i] = num[i] * conj(den[i]) / (|den[i]|^2 + eps) — the regularized
/// spectral division at the heart of deconvolution / channel extraction.
void spectralDivide(const std::complex<double>* num,
                    const std::complex<double>* den, double eps,
                    std::complex<double>* out, std::size_t n);

/// max_i |x[i]|^2 (regularization floor).
double maxNorm(const std::complex<double>* x, std::size_t n);

// ---------------------------------------------------------------------------
// Correlation / reduction kernels.
// ---------------------------------------------------------------------------

/// sum_i a[i] * b[i].
double dotProduct(const double* a, const double* b, std::size_t n);

/// sum_i x[i]^2.
double sumSquares(const double* x, std::size_t n);

/// sum_i x[i].
double sum(const double* x, std::size_t n);

/// Centered second-moment accumulations for Pearson correlation:
/// out[0] = sum (a-ma)(b-mb), out[1] = sum (a-ma)^2, out[2] = sum (b-mb)^2.
void pearsonAccum(const double* a, const double* b, std::size_t n, double ma,
                  double mb, double out[3]);

// ---------------------------------------------------------------------------
// Geometry kernel: boundary visibility scan (the DSF solve hot loop).
// ---------------------------------------------------------------------------

/// One interpolated sign crossing of the visibility classifier
/// g_i = cdot[i] - px*nx[i] - py*ny[i] between samples i and i+1 (wrapping).
struct VisibilityCrossing {
  double u = 0.0;  ///< continuous sample index i + f of the zero crossing
};

/// Scan all n boundary samples (SoA normal tables nx/ny and the
/// precomputed cdot[i] = dot(point_i, normal_i); cdot == nullptr means the
/// plane-wave terminator classifier g = dot(d, n_i) with (px, py) = d).
/// Records the first `maxCrossings` crossings into `crossings` and returns
/// the TOTAL number of sign changes found (callers check == 2). The scan is
/// a single streaming pass; g values are recomputed scalar at the (rare)
/// hit indices with the same mul/sub expression the vector pass used, so
/// the crossing fraction matches the scalar reference exactly:
/// f = clamp(g_i / (g_i - g_{i+1}), 0, 1), or 0.5 when
/// |g_i - g_{i+1}| <= 1e-30. Requires n >= 2.
int visibilityCrossings(const double* nx, const double* ny,
                        const double* cdot, std::size_t n, double px,
                        double py, VisibilityCrossing* crossings,
                        int maxCrossings);

}  // namespace uniq::dsp::kernels
